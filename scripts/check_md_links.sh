#!/bin/sh
# Checks that every relative markdown link ([text](path) without a
# scheme) in the repo's documentation points at a file that exists.
# External http(s) links and pure #anchors are skipped — CI must not
# depend on the network.
set -eu
cd "$(dirname "$0")/.."

fail=0
for md in *.md; do
	links=$(grep -o -E '\]\([^)]+\)' "$md" | sed -E 's/^\]\(//; s/\)$//') || continue
	for link in $links; do
		case "$link" in
		http://* | https://* | mailto:* | '#'*) continue ;;
		esac
		target=${link%%#*}
		[ -n "$target" ] || continue
		if [ ! -e "$target" ]; then
			echo "$md: broken link: $link" >&2
			fail=1
		fi
	done
done

if [ "$fail" -ne 0 ]; then
	exit 1
fi
echo "check_md_links: all relative links resolve"

#!/bin/sh
# CI perf gate: run the pinned fixed-seed tradebench leg and compare its
# summary.json against the checked-in baseline with benchdiff.
#
#   sh scripts/perf_gate.sh            # compare against results/baseline
#   sh scripts/perf_gate.sh -update    # regenerate results/baseline
#
# The gate compares only the machine-independent kinds (-gate stable:
# count and ratio) so the checked-in baseline survives a hardware
# change. Sensitivity slopes are counts in principle but are fitted
# through timed latency points, so at this deliberately tiny CI scale
# they wobble 4-9% between identical builds; they get a widened 25%
# budget here. The allocation-per-interaction counts wobble too —
# optimistic-conflict retries are scheduler-timing-dependent and every
# retried interaction re-allocates its working set (observed ±16% on
# identical builds) — so they get the same 25% budget; the gob codec
# downgrade still trips it and a real per-row allocation leak blows
# far past it. The goroutine high-water mark breathes with scheduler
# timing (a late-exiting worker adds a few), so it gets a 50% budget —
# a leaked per-request goroutine multiplies it and still trips. A real
# protocol regression (say, losing write batching) moves wire round
# trips and sensitivities by >100%, which still trips the widened
# budget with room to spare.
#
# Exit status is benchdiff's: 0 clean, 2 on a gated regression.
set -eu
cd "$(dirname "$0")/.."

baseline=results/baseline
update=0
if [ "${1:-}" = "-update" ]; then
	update=1
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/tradebench" ./cmd/tradebench
go build -o "$tmp/benchdiff" ./cmd/benchdiff

# The pinned leg: fixed seed, fixed scale, two delay points so every
# sweep has a sensitivity slope. Must match the leg that produced
# results/baseline/summary.json exactly.
"$tmp/tradebench" -fig6 -q -sessions 6 -warmup 2 -batches 6 \
	-delays 0ms,1ms -users 10 -symbols 20 -seed 42 -out-dir "$tmp/run"

if [ "$update" = 1 ]; then
	mkdir -p "$baseline"
	cp "$tmp"/run/run-*/summary.json "$baseline/summary.json"
	echo "perf_gate: baseline updated at $baseline/summary.json"
	exit 0
fi

if [ ! -f "$baseline/summary.json" ]; then
	echo "perf_gate: no baseline at $baseline/summary.json (run with -update to create one)" >&2
	exit 1
fi

"$tmp/benchdiff" -gate stable \
	-tol sensitivity.es-rdb.cached-ejbs=0.25 \
	-tol sensitivity.es-rdb.jdbc=0.25 \
	-tol sensitivity.es-rdb.vanilla-ejbs=0.25 \
	-tol sensitivity.es-rbes.cached-ejbs=0.25 \
	-tol sensitivity.clients-ras.cached-ejbs=0.25 \
	-tol sensitivity.clients-ras.jdbc=0.25 \
	-tol sensitivity.clients-ras.vanilla-ejbs=0.25 \
	-tol resource.allocs_per_interaction=0.25 \
	-tol resource.alloc_bytes_per_interaction=0.25 \
	-tol resource.goroutine_high_water=0.5 \
	"$baseline" "$tmp/run"

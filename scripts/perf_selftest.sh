#!/bin/sh
# Self-test for the regression engine: prove benchdiff can tell "same
# build run twice" from "build with a real protocol regression" before
# trusting it to gate CI.
#
#   Leg A, Leg B  identical fixed-seed runs -> benchdiff with the CI
#                 gate (stable kinds, widened sensitivity budgets) must
#                 exit 0: no false positives between identical builds
#   Leg C         same build forced onto -codec gob -batch=false (the
#                 old-peer downgrade path) -> the same gate must exit 2
#                 and flag both a wire round-trip regression (losing
#                 write batching adds one round trip per write) and a
#                 resource regression (gob's reflection decode allocates
#                 ~30% more objects per interaction)
#
# The A/B leg deliberately gates only the stable kinds. Sub-millisecond
# zero-delay latency points swing +-40% between identical builds at
# this scale, which is exactly why time/rate metrics are host-only
# evidence and the gate rides on counts and ratios.
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/tradebench" ./cmd/tradebench
go build -o "$tmp/benchdiff" ./cmd/benchdiff

leg='-fig6 -q -sessions 6 -warmup 2 -batches 6 -delays 0ms,1ms -users 10 -symbols 20 -seed 42'

# shellcheck disable=SC2086 # $leg is a fixed word list, splitting is intended
"$tmp/tradebench" $leg -out-dir "$tmp/a"
# shellcheck disable=SC2086
"$tmp/tradebench" $leg -out-dir "$tmp/b"

echo "== same build, same seed: expect no gated regressions =="
if ! "$tmp/benchdiff" -gate stable \
	-tol sensitivity.es-rdb.cached-ejbs=0.25 \
	-tol sensitivity.es-rdb.jdbc=0.25 \
	-tol sensitivity.es-rdb.vanilla-ejbs=0.25 \
	-tol sensitivity.es-rbes.cached-ejbs=0.25 \
	-tol sensitivity.clients-ras.cached-ejbs=0.25 \
	-tol sensitivity.clients-ras.jdbc=0.25 \
	-tol sensitivity.clients-ras.vanilla-ejbs=0.25 \
	-tol resource.allocs_per_interaction=0.25 \
	-tol resource.alloc_bytes_per_interaction=0.25 \
	-tol resource.goroutine_high_water=0.5 \
	"$tmp/a" "$tmp/b"; then
	echo "perf_selftest: FAIL: identical builds reported a regression" >&2
	exit 1
fi

# shellcheck disable=SC2086
"$tmp/tradebench" $leg -codec gob -batch=false -out-dir "$tmp/c"

echo "== gob fallback, batching off: expect gated wire regressions =="
rc=0
"$tmp/benchdiff" -gate stable "$tmp/a" "$tmp/c" >"$tmp/diff.out" || rc=$?
cat "$tmp/diff.out"
if [ "$rc" != 2 ]; then
	echo "perf_selftest: FAIL: degraded leg exited $rc, want 2" >&2
	exit 1
fi
if ! grep -E 'wire\..*rts_per_interaction.*\+.*regressed' "$tmp/diff.out" >/dev/null; then
	echo "perf_selftest: FAIL: no wire round-trip regression flagged" >&2
	exit 1
fi
if ! grep -E 'resource\..*\+.*regressed' "$tmp/diff.out" >/dev/null; then
	echo "perf_selftest: FAIL: no resource regression flagged (gob decode should cost ~30% more allocs/interaction)" >&2
	exit 1
fi

echo "perf_selftest: ok (clean A/B, degraded leg gated with wire RT and resource regressions)"

#!/bin/sh
# Fails if a metric or span name registered in the code is missing from
# OBSERVABILITY.md. Names are extracted from non-test sources:
#
#   - obs.Default.Counter/Gauge/Histogram("literal")
#   - Counter/Gauge/Histogram(p + "suffix") where p = "wire.<role>."
#     (the wire package builds its names from a role prefix; both roles
#     are expanded here)
#   - obs.StartSpan(ctx, "name"), documented as span.<name>
#
# Dynamically-built names beyond the known wire roles would evade the
# grep; keep registrations literal so this check stays sound.
set -eu
cd "$(dirname "$0")/.."

doc=OBSERVABILITY.md
fail=0

names=$(
	grep -rho --include='*.go' --exclude='*_test.go' \
		-E 'obs\.Default\.(Counter|Gauge|Histogram)\("[^"]+"\)' internal cmd |
		sed -E 's/.*\("([^"]+)"\).*/\1/'
	# wire.<role>.<suffix> names built in newWireMetrics
	suffixes=$(grep -ho -E '(Counter|Gauge|Histogram)\(p \+ "[^"]+"\)' internal/wire/stats.go |
		sed -E 's/.*\(p \+ "([^"]+)"\).*/\1/')
	for role in client server; do
		for s in $suffixes; do echo "wire.$role.$s"; done
	done
	grep -rho --include='*.go' --exclude='*_test.go' \
		-E 'obs\.StartSpan\([^,]+, "[^"]+"' internal cmd |
		sed -E 's/.*, "([^"]+)".*/span.\1/'
	# package obs registers its own metrics without the obs. qualifier
	grep -rho --include='*.go' --exclude='*_test.go' \
		-E '(^|[^.[:alnum:]_])Default\.(Counter|Gauge|Histogram)\("[^"]+"\)' internal/obs |
		sed -E 's/.*\("([^"]+)"\).*/\1/'
)

for name in $(printf '%s\n' "$names" | sort -u); do
	if ! grep -q -F "\`$name\`" "$doc"; then
		echo "undocumented metric: $name (add it to $doc)" >&2
		fail=1
	fi
done

if [ "$fail" -ne 0 ]; then
	exit 1
fi
echo "check_metrics_docs: every registered metric name appears in $doc"

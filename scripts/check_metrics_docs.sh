#!/bin/sh
# Fails if a metric or span name registered in the code is missing from
# OBSERVABILITY.md. Names are extracted from non-test sources:
#
#   - obs.Default.Counter/Gauge/Histogram("literal")
#   - obs.Default.LabeledCounter/LabeledHistogram("base", "key"),
#     documented as base{key=<key>}
#   - Counter/Gauge/Histogram(p + "suffix") where p = "wire.<role>."
#     (the wire package builds its names from a role prefix; both roles
#     are expanded here)
#   - obs.StartSpan(ctx, "name"), documented as span.<name>
#   - forensic event types (EventFoo EventType = "foo" in internal/obs),
#     documented by their type string
#
# Dynamically-built names beyond the known wire roles would evade the
# grep; keep registrations literal so this check stays sound.
set -eu
cd "$(dirname "$0")/.."

doc=OBSERVABILITY.md
fail=0

names=$(
	grep -rho --include='*.go' --exclude='*_test.go' \
		-E 'obs\.Default\.(Counter|Gauge|Histogram)\("[^"]+"\)' internal cmd |
		sed -E 's/.*\("([^"]+)"\).*/\1/'
	# wire.<role>.<suffix> names built in newWireMetrics
	suffixes=$(grep -ho -E '(Counter|Gauge|Histogram)\(p \+ "[^"]+"\)' internal/wire/stats.go |
		sed -E 's/.*\(p \+ "([^"]+)"\).*/\1/')
	for role in client server; do
		for s in $suffixes; do echo "wire.$role.$s"; done
	done
	grep -rho --include='*.go' --exclude='*_test.go' \
		-E 'obs\.StartSpan\([^,]+, "[^"]+"' internal cmd |
		sed -E 's/.*, "([^"]+)".*/span.\1/'
	# spans started on a lane-tagged context: the first StartSpan
	# argument is obs.WithLane(...), which contains commas and nested
	# parens of its own, so take the last quoted string on the line
	grep -rho --include='*.go' --exclude='*_test.go' \
		-E 'obs\.StartSpan\(obs\.WithLane\(.*\), "[^"]+"' internal cmd |
		sed -E 's/.*, "([^"]+)".*/span.\1/'
	# package obs registers its own metrics without the obs. qualifier
	grep -rho --include='*.go' --exclude='*_test.go' \
		-E '(^|[^.[:alnum:]_])Default\.(Counter|Gauge|Histogram)\("[^"]+"\)' internal/obs |
		sed -E 's/.*\("([^"]+)"\).*/\1/'
	# labeled families, documented as base{key=<key>}
	grep -rho --include='*.go' --exclude='*_test.go' \
		-E 'obs\.Default\.Labeled(Counter|Histogram)\("[^"]+", *"[^"]+"\)' internal cmd |
		sed -E 's/.*\("([^"]+)", *"([^"]+)"\).*/\1{\2=<\2>}/'
	# the runtime telemetry sampler registers through named constants
	# (runtimeFooName = "runtime.foo"); extract the literals directly
	grep -rho --include='*.go' --exclude='*_test.go' \
		-E '= "runtime\.[^"]+"' internal/obs/prof |
		sed -E 's/.*"([^"]+)".*/\1/'
)

# Forensic event types must be documented by their type string.
event_types=$(
	grep -rho --include='*.go' --exclude='*_test.go' \
		-E 'Event[A-Za-z]+ EventType = "[^"]+"' internal/obs |
		sed -E 's/.*"([^"]+)".*/\1/'
)
for t in $(printf '%s\n' "$event_types" | sort -u); do
	if ! grep -q -F "\`$t\`" "$doc"; then
		echo "undocumented event type: $t (add it to $doc)" >&2
		fail=1
	fi
done

for name in $(printf '%s\n' "$names" | sort -u); do
	if ! grep -q -F "\`$name\`" "$doc"; then
		echo "undocumented metric: $name (add it to $doc)" >&2
		fail=1
	fi
done

# The finder-cache metric family underpins Fig 6/7 round-trip accounting
# and the finder_cache.csv artifact; require it explicitly so a refactor
# to dynamically-built names can't silently drop it from the extraction
# above (which only sees literal registrations).
required="slicache.finder_hits slicache.finder_misses slicache.finder_invalidations slicache.finder_entries"

# The sharded-tier commit-path split feeds shards.csv and the scaling
# acceptance curve; require the router and participant metrics the same
# way so the 2PC story can't silently lose its instrumentation.
required="$required shard.fastpath_commits shard.readonly_commits shard.2pc_commits shard.2pc_aborts shard.2pc_heuristics shard.scatter_queries sqlstore.prepares sqlstore.prepared_commits sqlstore.prepared_aborts sqlstore.presumed_aborts"

# The runtime telemetry sampler feeds the resource.* summary rows and
# the per-phase time series; require its full name set so a rename in
# internal/obs/prof can't silently drop a gated metric's source.
required="$required runtime.gc_pause runtime.sched_latency runtime.heap_live_bytes runtime.heap_goal_bytes runtime.goroutines runtime.goroutines_highwater runtime.allocs_total runtime.alloc_bytes_total runtime.gc_cycles_total runtime.cpu_ms_total"
for name in $required; do
	if ! printf '%s\n' "$names" | grep -q -F -x "$name"; then
		echo "required metric not registered literally in the code: $name" >&2
		fail=1
	fi
	if ! grep -q -F "\`$name\`" "$doc"; then
		echo "undocumented required metric: $name (add it to $doc)" >&2
		fail=1
	fi
done

# Artifact files downstream tooling depends on by name: the perf gate
# loads summary.json and the attribution table feeds critical_path.csv.
# Both schemas must stay documented.
for artifact in critical_path.csv summary.json MANIFEST.json trace.perfetto.json cpu_hotspots.csv alloc_hotspots.csv; do
	if ! grep -q -F "\`$artifact\`" "$doc"; then
		echo "undocumented artifact: $artifact (add it to $doc)" >&2
		fail=1
	fi
done

# The gated metric namespace: the prefixes benchdiff and the CI perf
# gate key on. Renaming one in the summary builder without updating the
# docs (and the baseline) silently un-gates it.
for prefix in latency. sensitivity. wire. throughput. shards. cache. critpath. resource.; do
	if ! grep -rho --include='*.go' --exclude='*_test.go' -F "\"$prefix" internal/harness >/dev/null; then
		echo "summary metric prefix no longer built: $prefix (update $doc and results/baseline)" >&2
		fail=1
	fi
	if ! grep -q -F "\`$prefix" "$doc"; then
		echo "undocumented summary metric prefix: $prefix (add it to $doc)" >&2
		fail=1
	fi
done

if [ "$fail" -ne 0 ]; then
	exit 1
fi
echo "check_metrics_docs: every registered metric name appears in $doc"

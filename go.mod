module edgeejb

go 1.23

// Package edgeejb_test holds the benchmark harness that regenerates the
// paper's evaluation as testing.B benchmarks: one benchmark per table
// and figure, the ablation benchmarks DESIGN.md calls out, and
// micro-benchmarks for the hot paths.
//
// The figure benchmarks report the quantities the paper plots as custom
// metrics:
//
//	sensitivity   latency-sensitivity slope (Table 2, Figures 6-7)
//	ms/interaction  mean client latency at the largest swept delay
//	B/interaction   bytes on the shared path per interaction (Figure 8)
//
// Sweeps use scaled-down delays (sensitivity is a slope and is invariant
// to the delay scale; DESIGN.md §7). Run everything with:
//
//	go test -bench=. -benchmem
package edgeejb_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"edgeejb/internal/harness"
	"edgeejb/internal/slicache"
	"edgeejb/internal/trade"
)

// benchRun is the mini-sweep configuration shared by the figure
// benchmarks: small enough to keep `go test -bench=.` in seconds per
// benchmark, large enough for stable slopes (R² is reported by
// tradebench for the full-scale runs).
func benchRun() harness.RunOptions {
	return harness.RunOptions{
		Delays:         []time.Duration{0, time.Millisecond, 2 * time.Millisecond},
		Sessions:       6,
		WarmupSessions: 3,
		Batches:        4,
		Workload:       trade.GeneratorConfig{Seed: 42, Users: 20, Symbols: 40},
	}
}

func benchPopulate() trade.PopulateConfig {
	return trade.PopulateConfig{Seed: 42, Users: 20, Symbols: 40, HoldingsPerUser: 3}
}

// sweepBenchmark runs one (architecture, algorithm) sweep per iteration
// and reports the paper's metrics.
func sweepBenchmark(b *testing.B, arch harness.Architecture, algo harness.Algorithm, cacheOpts ...slicache.ManagerOption) {
	b.Helper()
	ctx := context.Background()
	var lastSweep harness.Sweep
	for i := 0; i < b.N; i++ {
		sweep, err := harness.RunSweep(ctx, harness.Options{
			Arch:         arch,
			Algo:         algo,
			Populate:     benchPopulate(),
			CacheOptions: cacheOpts,
		}, benchRun())
		if err != nil {
			b.Fatal(err)
		}
		lastSweep = sweep
	}
	reportSweep(b, lastSweep)
}

func reportSweep(b *testing.B, sweep harness.Sweep) {
	b.Helper()
	b.ReportMetric(sweep.Sensitivity(), "sensitivity")
	last := sweep.Points[len(sweep.Points)-1]
	b.ReportMetric(last.MeanLatencyMs, "ms/interaction")
	b.ReportMetric(last.SharedBytesPerInteraction, "B/interaction")
}

// --- Table 1 ---------------------------------------------------------

// BenchmarkTable1ActionMix measures the workload generator itself and
// reports the realized mean session length (the paper: "about 11
// individual trade actions" per session).
func BenchmarkTable1ActionMix(b *testing.B) {
	gen := trade.NewGenerator(trade.GeneratorConfig{Seed: 1, Users: 50, Symbols: 100})
	total := 0
	sessions := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total += len(gen.Session())
		sessions++
	}
	b.ReportMetric(float64(total)/float64(sessions), "actions/session")
}

// --- Figure 6: comparison of high-latency architectures ---------------

func BenchmarkFig6_ClientsRAS(b *testing.B) {
	sweepBenchmark(b, harness.ClientsRAS, harness.AlgJDBC)
}

func BenchmarkFig6_ESRBES_CachedEJB(b *testing.B) {
	sweepBenchmark(b, harness.ESRBES, harness.AlgCachedEJB)
}

func BenchmarkFig6_ESRDB_Best(b *testing.B) {
	// The paper plots ES/RDB's best algorithm (JDBC) in Figure 6.
	sweepBenchmark(b, harness.ESRDB, harness.AlgJDBC)
}

// --- Figure 7: ES/RDB algorithm comparison -----------------------------

func BenchmarkFig7_ESRDB_CachedEJB(b *testing.B) {
	sweepBenchmark(b, harness.ESRDB, harness.AlgCachedEJB)
}

func BenchmarkFig7_ESRDB_JDBC(b *testing.B) {
	sweepBenchmark(b, harness.ESRDB, harness.AlgJDBC)
}

func BenchmarkFig7_ESRDB_VanillaEJB(b *testing.B) {
	sweepBenchmark(b, harness.ESRDB, harness.AlgVanillaEJB)
}

// --- Table 2: latency sensitivity --------------------------------------

// BenchmarkTable2_Sensitivities runs the full grid once per iteration
// and reports each cell's slope, regenerating Table 2 in one benchmark.
func BenchmarkTable2_Sensitivities(b *testing.B) {
	ctx := context.Background()
	cfg := harness.EvalConfig{Run: benchRun(), Populate: benchPopulate()}
	var eval *harness.Evaluation
	for i := 0; i < b.N; i++ {
		e, err := harness.RunEvaluation(ctx, cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		eval = e
	}
	for _, cell := range eval.Table2() {
		if cell.NA {
			continue
		}
		name := cell.Pair.Arch.String() + "/" + cell.Pair.Algo.String()
		b.ReportMetric(cell.Sensitivity, "sens:"+sanitizeMetric(name))
	}
}

// --- Figure 8: bandwidth -----------------------------------------------

// BenchmarkFig8_Bandwidth measures shared-path bytes per interaction for
// the three Figure 6 configurations at a fixed delay.
func BenchmarkFig8_Bandwidth(b *testing.B) {
	ctx := context.Background()
	run := benchRun()
	run.Delays = []time.Duration{time.Millisecond}
	series := []struct {
		name string
		arch harness.Architecture
		algo harness.Algorithm
	}{
		{"ClientsRAS", harness.ClientsRAS, harness.AlgJDBC},
		{"ESRBES", harness.ESRBES, harness.AlgCachedEJB},
		{"ESRDB", harness.ESRDB, harness.AlgJDBC},
	}
	results := make(map[string]float64, len(series))
	for i := 0; i < b.N; i++ {
		for _, sc := range series {
			sweep, err := harness.RunSweep(ctx, harness.Options{
				Arch: sc.arch, Algo: sc.algo, Populate: benchPopulate(),
			}, run)
			if err != nil {
				b.Fatal(err)
			}
			results[sc.name] = sweep.Points[0].SharedBytesPerInteraction
		}
	}
	for name, v := range results {
		b.ReportMetric(v, "B/interaction:"+name)
	}
}

// --- Ablations (DESIGN.md §5) -------------------------------------------

// BenchmarkAblationCommonStore compares the cached edge architecture
// with and without inter-transaction caching (§2.3's common transient
// store).
func BenchmarkAblationCommonStore(b *testing.B) {
	b.Run("on", func(b *testing.B) {
		sweepBenchmark(b, harness.ESRBES, harness.AlgCachedEJB,
			slicache.WithCommonStore(true))
	})
	b.Run("off", func(b *testing.B) {
		sweepBenchmark(b, harness.ESRBES, harness.AlgCachedEJB,
			slicache.WithCommonStore(false))
	})
}

// BenchmarkAblationInvalidation compares server-pushed invalidation
// against discovering staleness only at commit validation.
func BenchmarkAblationInvalidation(b *testing.B) {
	b.Run("on", func(b *testing.B) {
		sweepBenchmark(b, harness.ESRBES, harness.AlgCachedEJB,
			slicache.WithInvalidation(true))
	})
	b.Run("off", func(b *testing.B) {
		sweepBenchmark(b, harness.ESRBES, harness.AlgCachedEJB,
			slicache.WithInvalidation(false))
	})
}

// BenchmarkAblationCommitShipping isolates the combined-vs-split design
// choice (§4.4): identical cached edge servers, commit shipped
// per-image against the database versus whole-set through the back-end.
func BenchmarkAblationCommitShipping(b *testing.B) {
	b.Run("per-image_ESRDB", func(b *testing.B) {
		sweepBenchmark(b, harness.ESRDB, harness.AlgCachedEJB)
	})
	b.Run("whole-set_ESRBES", func(b *testing.B) {
		sweepBenchmark(b, harness.ESRBES, harness.AlgCachedEJB)
	})
}

// BenchmarkAblationReadOnlyCommit measures how much of the edge
// latency comes from validating read-only transactions (the paper's
// "at least one round-trip per commit"); the ablated variant commits
// read-only transactions locally.
func BenchmarkAblationReadOnlyCommit(b *testing.B) {
	b.Run("validate", func(b *testing.B) {
		sweepBenchmark(b, harness.ESRBES, harness.AlgCachedEJB,
			slicache.WithLocalReadOnlyCommit(false))
	})
	b.Run("local", func(b *testing.B) {
		sweepBenchmark(b, harness.ESRBES, harness.AlgCachedEJB,
			slicache.WithLocalReadOnlyCommit(true))
	})
}

// BenchmarkAblationBatchedCommit measures the future-work batching idea
// (§4.4): three browse actions as three transactions versus one bundled
// transaction, over the split-servers edge with injected delay.
func BenchmarkAblationBatchedCommit(b *testing.B) {
	ctx := context.Background()
	topo, err := harness.Build(harness.Options{
		Arch:        harness.ESRBES,
		Algo:        harness.AlgCachedEJB,
		OneWayDelay: time.Millisecond,
		Populate:    benchPopulate(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer topo.Close()
	svc := topo.Services[0]
	user := trade.UserID(1)
	symbol := trade.SymbolID(1)

	b.Run("separate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := svc.Home(ctx, user); err != nil {
				b.Fatal(err)
			}
			if _, err := svc.GetQuote(ctx, symbol); err != nil {
				b.Fatal(err)
			}
			if _, err := svc.Portfolio(ctx, user); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bundled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := svc.BrowseBundle(ctx, user, symbol); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func sanitizeMetric(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case ' ', '\t':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// --- Extension: throughput under concurrent load -----------------------

// BenchmarkExtensionThroughput sweeps client concurrency on the
// split-servers edge at a fixed delay and reports interactions/second —
// the queuing dimension the paper deliberately factored out.
func BenchmarkExtensionThroughput(b *testing.B) {
	ctx := context.Background()
	var curve harness.ThroughputCurve
	for i := 0; i < b.N; i++ {
		c, err := harness.RunThroughput(ctx, harness.Options{
			Arch:     harness.ESRBES,
			Algo:     harness.AlgCachedEJB,
			Populate: benchPopulate(),
		}, harness.ThroughputOptions{
			ClientCounts:      []int{1, 4},
			OneWayDelay:       time.Millisecond,
			SessionsPerClient: 4,
			WarmupSessions:    2,
			Workload:          trade.GeneratorConfig{Seed: 42, Users: 20, Symbols: 40},
		})
		if err != nil {
			b.Fatal(err)
		}
		curve = c
	}
	for _, p := range curve.Points {
		b.ReportMetric(p.Throughput, fmt.Sprintf("tps@%dclients", p.Clients))
	}
}

// BenchmarkExtensionTimeBoundedReads contrasts strict ACID reads with
// the §1.4-style time-bounded relaxation on the split-servers edge.
func BenchmarkExtensionTimeBoundedReads(b *testing.B) {
	b.Run("strict", func(b *testing.B) {
		sweepBenchmark(b, harness.ESRBES, harness.AlgCachedEJB)
	})
	b.Run("bounded-5s", func(b *testing.B) {
		sweepBenchmark(b, harness.ESRBES, harness.AlgCachedEJB,
			slicache.WithTimeBoundedReads(5*time.Second))
	})
}

// BenchmarkExtensionCacheCapacity quantifies LRU-bounded caches: a
// too-small cache refetches its working set across the delay path.
func BenchmarkExtensionCacheCapacity(b *testing.B) {
	b.Run("unbounded", func(b *testing.B) {
		sweepBenchmark(b, harness.ESRBES, harness.AlgCachedEJB)
	})
	b.Run("capacity-16", func(b *testing.B) {
		sweepBenchmark(b, harness.ESRBES, harness.AlgCachedEJB,
			slicache.WithCacheCapacity(16))
	})
}

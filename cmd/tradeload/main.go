// Command tradeload is the load-generation program of §4.1 as a
// standalone binary: it drives Trade sessions against an application
// server (cmd/edged) from a dedicated machine and reports latency
// statistics. With -clients > 1 it runs the concurrent-load extension.
//
// A full multi-host reproduction:
//
//	hostA$ dbserverd  -addr :7000
//	hostB$ delayproxy -listen :7200 -target hostA:7000 -delay 25ms
//	hostC$ backendd   -addr :7001 -db hostB:7200
//	hostD$ edged      -addr :7100 -target hostC:7001 -algo sli-backend
//	hostE$ tradeload  -target hostD:7100 -sessions 300 -warmup 400
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"edgeejb/internal/appserver"
	"edgeejb/internal/loadgen"
	"edgeejb/internal/trade"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tradeload:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tradeload", flag.ContinueOnError)
	var (
		target   = fs.String("target", "127.0.0.1:7100", "application server address")
		sessions = fs.Int("sessions", 300, "measured sessions (paper: 300)")
		warmup   = fs.Int("warmup", 400, "warmup sessions (paper: 400)")
		batches  = fs.Int("batches", 20, "latency batches (paper: 20)")
		clients  = fs.Int("clients", 1, "concurrent virtual clients (1 = the paper's low-load setup)")
		users    = fs.Int("users", 50, "user population the server was seeded with")
		symbols  = fs.Int("symbols", 100, "symbol population the server was seeded with")
		seed     = fs.Int64("seed", 42, "workload random seed")
		perAct   = fs.Bool("actions", false, "print per-action latency breakdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx := context.Background()
	workload := trade.GeneratorConfig{Seed: *seed, Users: *users, Symbols: *symbols}

	if *clients > 1 {
		res, err := loadgen.RunConcurrent(ctx, loadgen.ConcurrentConfig{
			NewClient:         func() *appserver.Client { return appserver.NewClient(*target) },
			Clients:           *clients,
			SessionsPerClient: *sessions / *clients,
			WarmupSessions:    *warmup,
			Workload:          workload,
		})
		if err != nil {
			return err
		}
		fmt.Printf("clients=%d interactions=%d elapsed=%v\n", res.Clients, res.Interactions, res.Elapsed.Round(1e6))
		fmt.Printf("throughput=%.1f interactions/s\n", res.Throughput)
		fmt.Printf("latency ms: mean=%.2f p50=%.2f p95=%.2f min=%.2f max=%.2f\n",
			res.Latency.Mean, res.Latency.P50, res.Latency.P95, res.Latency.Min, res.Latency.Max)
		fmt.Printf("failures=%d\n", res.Failures)
		return nil
	}

	client := appserver.NewClient(*target)
	defer client.Close()
	res, err := loadgen.Run(ctx, loadgen.Config{
		Client:         client,
		Generator:      trade.NewGenerator(workload),
		WarmupSessions: *warmup,
		Sessions:       *sessions,
		Batches:        *batches,
	})
	if err != nil {
		return err
	}
	fmt.Printf("interactions=%d elapsed=%v\n", res.Interactions, res.Elapsed.Round(1e6))
	fmt.Printf("latency ms: mean=%.2f ±%.2f (95%% CI) p50=%.2f p95=%.2f min=%.2f max=%.2f stddev=%.2f\n",
		res.Latency.Mean, res.CI95, res.Latency.P50, res.Latency.P95,
		res.Latency.Min, res.Latency.Max, res.Latency.Stddev)
	fmt.Printf("failures=%d batches=%d\n", res.Failures, len(res.BatchMeans))
	if *perAct {
		names := make([]string, 0, len(res.PerAction))
		for name := range res.PerAction {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Println("per-action mean latency (ms):")
		for _, name := range names {
			s := res.PerAction[name]
			fmt.Printf("  %-14s %8.2f (n=%d)\n", name, s.Mean, s.N)
		}
	}
	return nil
}

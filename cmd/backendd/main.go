// Command backendd runs the back-end application server of the
// split-servers configuration as a standalone process: it connects to a
// database server (cmd/dbserverd) over its low-latency path and serves
// cache-miss fetches, finder queries, single-round-trip optimistic
// commits, and the invalidation stream to edge servers.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"edgeejb/internal/backend"
	"edgeejb/internal/dbwire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "backendd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("backendd", flag.ContinueOnError)
	var (
		addr = fs.String("addr", "127.0.0.1:7001", "listen address for edge servers")
		db   = fs.String("db", "127.0.0.1:7000", "database server address")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	dbClient := dbwire.Dial(*db)
	defer dbClient.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	err := dbClient.Ping(ctx)
	cancel()
	if err != nil {
		return fmt.Errorf("database %s unreachable: %w", *db, err)
	}

	srv := backend.NewServer(dbClient)
	if err := srv.Start(*addr); err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("backendd: serving split-servers commit logic on %s (database %s)\n", srv.Addr(), *db)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Printf("backendd: shutting down (commits applied=%d rejected=%d)\n",
		srv.CommitsApplied(), srv.CommitsRejected())
	return nil
}

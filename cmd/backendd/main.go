// Command backendd runs the back-end application server of the
// split-servers configuration as a standalone process: it connects to a
// database server (cmd/dbserverd) over its low-latency path and serves
// cache-miss fetches, finder queries, single-round-trip optimistic
// commits, and the invalidation stream to edge servers.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"edgeejb/internal/backend"
	"edgeejb/internal/dbwire"
	"edgeejb/internal/obs"
	"edgeejb/internal/obs/prof"
	"edgeejb/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "backendd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("backendd", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:7001", "listen address for edge servers")
		db       = fs.String("db", "127.0.0.1:7000", "database server address (this shard's dbserverd in a sharded tier)")
		dbWait   = fs.Duration("db-wait", 15*time.Second, "how long to keep retrying the database at boot (crash-restart recovery)")
		debug    = fs.String("debug-addr", "", "serve /metrics, /healthz and /debug/pprof on this address")
		rates    = fs.Bool("profile-rates", false, "enable mutex and block profiling so /debug/pprof/mutex and /debug/pprof/block carry samples (both are empty at the runtime's defaults); costs a sampled stack capture on contended-unlock and blocking paths")
		shards   = fs.Int("shards", 1, "total shards in the deployment (identity only; each backend pairs with one shard's database)")
		shardIdx = fs.Int("shard", 0, "this backend's shard index in [0, -shards)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be >= 1")
	}
	if *shardIdx < 0 || *shardIdx >= *shards {
		return fmt.Errorf("-shard %d out of range [0, %d)", *shardIdx, *shards)
	}

	// Label this process's spans for cross-tier trace assembly.
	obs.SetTier("backend")

	if *rates {
		defer prof.EnableProfileRates()()
	}
	if *debug != "" {
		dbg, err := obs.StartDebug(*debug, obs.DebugOptions{})
		if err != nil {
			return err
		}
		defer dbg.Close()
		// Feed the Go runtime's meters into /metrics alongside the
		// application metrics, so a scrape sees this tier's GC and
		// allocation behavior too.
		rt := prof.StartRuntime(obs.Default, time.Second)
		defer rt.Stop()
		fmt.Printf("backendd: debug endpoints on http://%s/metrics\n", dbg.Addr())
	}

	dbClient := dbwire.Dial(*db)
	defer dbClient.Close()
	if err := waitForDB(dbClient, *dbWait); err != nil {
		return fmt.Errorf("database %s unreachable after %v: %w", *db, *dbWait, err)
	}

	srv := backend.NewServer(dbClient)
	if err := srv.Start(*addr); err != nil {
		return err
	}
	defer srv.Close()
	if *shards > 1 {
		fmt.Printf("backendd: serving split-servers commit logic for shard %d/%d on %s (database %s)\n",
			*shardIdx, *shards, srv.Addr(), *db)
	} else {
		fmt.Printf("backendd: serving split-servers commit logic on %s (database %s)\n", srv.Addr(), *db)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Printf("backendd: shutting down (commits applied=%d rejected=%d)\n",
		srv.CommitsApplied(), srv.CommitsRejected())
	return nil
}

// waitForDB pings the database with jittered exponential backoff until
// it answers or the budget runs out, so a back-end restarted alongside
// (or slightly before) its database comes up without operator help.
func waitForDB(c *dbwire.Client, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	backoff := wire.Backoff{Base: 100 * time.Millisecond, Max: 2 * time.Second, Jitter: 0.5}
	var err error
	for attempt := 0; ; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err = c.Ping(ctx)
		cancel()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return err
		}
		fmt.Fprintf(os.Stderr, "backendd: waiting for database: %v\n", err)
		time.Sleep(backoff.Delay(attempt))
	}
}

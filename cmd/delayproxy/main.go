// Command delayproxy runs the delay proxy as a standalone process: it
// forwards TCP connections to a target while injecting a configurable
// one-way delay, and reports forwarded byte counts — the measurement
// instrument of §4.1 ("the proxy reads the incoming data, interposes a
// specified amount of delay, and only then writes the incoming data to
// the original destination").
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"edgeejb/internal/latency"
	"edgeejb/internal/obs"
	"edgeejb/internal/obs/prof"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "delayproxy:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("delayproxy", flag.ContinueOnError)
	var (
		listen     = fs.String("listen", "127.0.0.1:7200", "listen address")
		target     = fs.String("target", "127.0.0.1:7000", "forward target address")
		delay      = fs.Duration("delay", 10*time.Millisecond, "one-way delay to inject")
		statsEvery = fs.Duration("stats", 10*time.Second, "print byte counters at this interval (0 = off)")
		debug      = fs.String("debug-addr", "", "serve /metrics, /healthz and /debug/pprof on this address")
		rates      = fs.Bool("profile-rates", false, "enable mutex and block profiling so /debug/pprof/mutex and /debug/pprof/block carry samples (both are empty at the runtime's defaults); costs a sampled stack capture on contended-unlock and blocking paths")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Label this process's spans for cross-tier trace assembly.
	obs.SetTier("proxy")

	if *rates {
		defer prof.EnableProfileRates()()
	}
	if *debug != "" {
		dbg, err := obs.StartDebug(*debug, obs.DebugOptions{})
		if err != nil {
			return err
		}
		defer dbg.Close()
		// Feed the Go runtime's meters into /metrics alongside the
		// application metrics, so a scrape sees this tier's GC and
		// allocation behavior too.
		rt := prof.StartRuntime(obs.Default, time.Second)
		defer rt.Stop()
		fmt.Printf("delayproxy: debug endpoints on http://%s/metrics\n", dbg.Addr())
	}

	p := latency.NewProxy(*target, *delay)
	if err := p.Start(*listen); err != nil {
		return err
	}
	defer p.Close()
	fmt.Printf("delayproxy: %s -> %s with %v one-way delay\n", p.Addr(), *target, *delay)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	if *statsEvery > 0 {
		ticker := time.NewTicker(*statsEvery)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				c := p.Counter()
				fmt.Printf("delayproxy: conns=%d toTarget=%dB fromTarget=%dB\n",
					c.Conns(), c.ToTarget(), c.FromTarget())
			case <-stop:
				fmt.Println("delayproxy: shutting down")
				return nil
			}
		}
	}
	<-stop
	fmt.Println("delayproxy: shutting down")
	return nil
}

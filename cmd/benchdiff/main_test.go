package main

import (
	"path/filepath"
	"testing"

	"edgeejb/internal/regress"
)

func writeSummary(t *testing.T, dir, name string, metrics map[string]regress.Metric) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := regress.Save(path, &regress.Summary{Schema: regress.SchemaV1, Metrics: metrics}); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestExitCodes pins the CLI contract CI scripts depend on: 0 clean,
// 2 gated regression, 1 usage/IO error.
func TestExitCodes(t *testing.T) {
	dir := t.TempDir()
	base := writeSummary(t, dir, "base.json", map[string]regress.Metric{
		"wire.rts":  {Kind: regress.KindCount, Better: regress.LowerIsBetter, Mean: 3.6},
		"latency.x": {Kind: regress.KindTime, Better: regress.LowerIsBetter, Mean: 10},
	})
	same := writeSummary(t, dir, "same.json", map[string]regress.Metric{
		"wire.rts":  {Kind: regress.KindCount, Better: regress.LowerIsBetter, Mean: 3.6},
		"latency.x": {Kind: regress.KindTime, Better: regress.LowerIsBetter, Mean: 10.1},
	})
	worse := writeSummary(t, dir, "worse.json", map[string]regress.Metric{
		"wire.rts":  {Kind: regress.KindCount, Better: regress.LowerIsBetter, Mean: 4.4},
		"latency.x": {Kind: regress.KindTime, Better: regress.LowerIsBetter, Mean: 10},
	})

	if code := run([]string{"-q", base, same}); code != 0 {
		t.Errorf("clean compare exit = %d, want 0", code)
	}
	if code := run([]string{"-q", base, worse}); code != 2 {
		t.Errorf("regressed compare exit = %d, want 2", code)
	}
	// The same regression vanishes when count metrics are not gated.
	if code := run([]string{"-q", "-gate", "none", base, worse}); code != 0 {
		t.Errorf("ungated compare exit = %d, want 0", code)
	}
	// A widened per-metric budget absorbs it too.
	if code := run([]string{"-q", "-tol", "wire.rts=0.5", base, worse}); code != 0 {
		t.Errorf("tolerance-overridden exit = %d, want 0", code)
	}
	// Usage and IO errors are 1, distinct from the gate's 2.
	if code := run([]string{"-q", base}); code != 1 {
		t.Errorf("one-arg exit = %d, want 1", code)
	}
	if code := run([]string{"-q", base, filepath.Join(dir, "missing.json")}); code != 1 {
		t.Errorf("missing-file exit = %d, want 1", code)
	}
	if code := run([]string{"-gate", "bogus", base, same}); code != 1 {
		t.Errorf("bad-gate exit = %d, want 1", code)
	}
	if code := run([]string{"-tol", "nonsense", base, same}); code != 1 {
		t.Errorf("bad-tol exit = %d, want 1", code)
	}
}

// Command benchdiff compares two benchmark runs' summary.json files and
// reports per-metric verdicts — the regression engine behind the CI
// perf gate.
//
// Usage:
//
//	benchdiff old.json new.json           # files, run dirs, or artifact
//	                                      # roots (newest run-* wins)
//	benchdiff -gate all runs/a runs/b     # same-machine A/B: gate every
//	                                      # metric
//	benchdiff -gate stable baseline runs  # cross-machine baseline: gate
//	                                      # only machine-independent
//	                                      # kinds (count, ratio)
//	benchdiff -tol latency.es-rdb.d0ms.mean_ms=0.5 a b
//	benchdiff -all a b                    # show unchanged rows too
//
// Exit status: 0 when no gated metric regressed, 2 when one did, 1 on
// usage or I/O errors. A metric counts as regressed only when it
// exceeds its tolerance budget AND (when both runs carry batch-mean
// samples) a Welch two-sample test finds the difference significant at
// the 95% level; exceedances the test cannot distinguish from noise
// report as inconclusive and do not gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"edgeejb/internal/regress"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	var (
		gate  = fs.String("gate", "stable", "which metrics arm the exit code: all, stable, none, or a comma-separated kind list (time,rate,count,ratio)")
		tols  multiFlag
		all   = fs.Bool("all", false, "show unchanged metrics too")
		quiet = fs.Bool("q", false, "suppress the table; exit status only")
	)
	fs.Var(&tols, "tol", "per-metric tolerance override, name=fraction (repeatable; absolute difference for ratio metrics)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: benchdiff [flags] <old> <new>\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 1
	}

	gateFn, err := parseGate(*gate)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		return 1
	}
	tolerance, err := parseTols(tols)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		return 1
	}

	oldS, err := regress.Load(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		return 1
	}
	newS, err := regress.Load(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		return 1
	}

	rep := regress.Compare(oldS, newS, regress.Options{
		Tolerance: tolerance,
		Gate:      gateFn,
	})
	if !*quiet {
		if err := rep.WriteTable(os.Stdout, *all); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			return 1
		}
	}
	if rep.Regressions > 0 {
		return 2
	}
	return 0
}

// parseGate maps the -gate flag to a GateFunc.
func parseGate(s string) (regress.GateFunc, error) {
	switch s {
	case "all":
		return regress.GateAll, nil
	case "stable":
		return regress.GateStable, nil
	case "none":
		return regress.GateNone, nil
	}
	var kinds []regress.Kind
	for _, part := range strings.Split(s, ",") {
		switch k := regress.Kind(strings.TrimSpace(part)); k {
		case regress.KindTime, regress.KindRate, regress.KindCount, regress.KindRatio:
			kinds = append(kinds, k)
		default:
			return nil, fmt.Errorf("bad -gate %q (want all, stable, none, or kinds)", s)
		}
	}
	return regress.GateKinds(kinds...), nil
}

// parseTols maps repeated -tol name=fraction flags to a tolerance map.
func parseTols(tols []string) (map[string]float64, error) {
	if len(tols) == 0 {
		return nil, nil
	}
	out := make(map[string]float64, len(tols))
	for _, t := range tols {
		name, val, ok := strings.Cut(t, "=")
		if !ok {
			return nil, fmt.Errorf("bad -tol %q (want name=fraction)", t)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f < 0 {
			return nil, fmt.Errorf("bad -tol %q (want a non-negative fraction)", t)
		}
		out[name] = f
	}
	return out, nil
}

// multiFlag collects repeated flag occurrences.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

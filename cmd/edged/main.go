// Command edged runs one application server as a standalone process: an
// edge server (ES/RDB or ES/RBES) or the remote application server of
// Clients/RAS, depending on where you deploy it and what you point it
// at. The -algo flag selects the data-access algorithm:
//
//	jdbc        hand-optimized direct access (pessimistic)
//	bmp         vanilla EJB entity beans (pessimistic, uncached)
//	sli-db      cached EJBs, combined-servers: commit per memento image
//	            straight to the database (-target is a dbserverd)
//	sli-backend cached EJBs, split-servers: whole-set commits through a
//	            back-end server (-target is a backendd)
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"edgeejb/internal/appserver"
	"edgeejb/internal/component"
	"edgeejb/internal/dbwire"
	"edgeejb/internal/obs"
	"edgeejb/internal/obs/prof"
	"edgeejb/internal/shard"
	"edgeejb/internal/slicache"
	"edgeejb/internal/storeapi"
	"edgeejb/internal/trade"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "edged:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("edged", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:7100", "listen address for web clients (gob protocol)")
		httpAddr = fs.String("http", "", "also serve plain HTTP on this address (GET /trade/{action})")
		target   = fs.String("target", "127.0.0.1:7000", "database or back-end server address; a comma-separated list (sli-backend only) routes by key across that many shards, ordered by shard index")
		algo     = fs.String("algo", "sli-backend", "data access: jdbc | bmp | sli-db | sli-backend")
		debug    = fs.String("debug-addr", "", "serve /metrics, /healthz and /debug/pprof on this address")
		rates    = fs.Bool("profile-rates", false, "enable mutex and block profiling so /debug/pprof/mutex and /debug/pprof/block carry samples (both are empty at the runtime's defaults); costs a sampled stack capture on contended-unlock and blocking paths")
		shards   = fs.Int("shards", 0, "shard count cross-check: when > 0, must equal the number of -target addresses")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	targets := splitTargets(*target)
	if len(targets) == 0 {
		return fmt.Errorf("-target is required")
	}
	if *shards > 0 && *shards != len(targets) {
		return fmt.Errorf("-shards %d but %d -target addresses", *shards, len(targets))
	}
	if len(targets) > 1 && *algo != "sli-backend" {
		return fmt.Errorf("multiple -target shards require -algo sli-backend (whole-set commit shipping is the unit the router routes)")
	}

	// Label this process's spans for cross-tier trace assembly (the
	// span-name prefix table already covers the built-in span names;
	// this catches any future unprefixed ones).
	obs.SetTier("edge")

	if *rates {
		defer prof.EnableProfileRates()()
	}
	if *debug != "" {
		dbg, err := obs.StartDebug(*debug, obs.DebugOptions{})
		if err != nil {
			return err
		}
		defer dbg.Close()
		// Feed the Go runtime's meters into /metrics alongside the
		// application metrics, so a scrape sees this tier's GC and
		// allocation behavior too.
		rt := prof.StartRuntime(obs.Default, time.Second)
		defer rt.Stop()
		fmt.Printf("edged: debug endpoints on http://%s/metrics\n", dbg.Addr())
	}

	// conn is the cache's datastore handle: one dbwire client against a
	// single target, or a key-routing shard router over one client per
	// shard (single-shard fast-path commits, cross-shard 2PC).
	var conn storeapi.Conn
	dbClient := dbwire.Dial(targets[0])
	if len(targets) == 1 {
		conn = dbClient
		defer dbClient.Close()
	} else {
		conns := make([]storeapi.Conn, len(targets))
		conns[0] = dbClient
		for i := 1; i < len(targets); i++ {
			conns[i] = dbwire.Dial(targets[i])
		}
		ring := shard.NewRing(len(targets), shard.WithPlacement(trade.ShardPlacement))
		router, err := shard.NewRouter(ring, conns, shard.WithQueryAffinity(trade.QueryShardPlacement))
		if err != nil {
			return err
		}
		conn = router
		defer router.Close()
	}

	registry, err := trade.NewEntityRegistry()
	if err != nil {
		return err
	}

	var (
		rm  component.ResourceManager
		mgr *slicache.Manager
	)
	switch *algo {
	case "jdbc":
		rm = component.NewJDBCManager(dbClient)
	case "bmp":
		rm = component.NewBMPManager(dbClient)
	case "sli-db":
		mgr = slicache.NewManager(conn, slicache.WithShipping(slicache.PerImage))
		rm = mgr
	case "sli-backend":
		mgr = slicache.NewManager(conn, slicache.WithShipping(slicache.WholeSet))
		rm = mgr
	default:
		return fmt.Errorf("unknown -algo %q", *algo)
	}
	if mgr != nil {
		if err := mgr.Start(context.Background()); err != nil {
			return fmt.Errorf("start cache invalidation: %w", err)
		}
		defer mgr.Close()
	}

	svc := trade.NewService(component.NewContainer(registry, rm))
	srv := appserver.NewServer(svc)
	if err := srv.Start(*addr); err != nil {
		return err
	}
	defer srv.Close()
	if len(targets) > 1 {
		fmt.Printf("edged: serving Trade (%s) on %s routing %d shards %v\n",
			*algo, srv.Addr(), len(targets), targets)
	} else {
		fmt.Printf("edged: serving Trade (%s) on %s against %s\n", *algo, srv.Addr(), *target)
	}

	if *httpAddr != "" {
		httpSrv := &http.Server{Addr: *httpAddr, Handler: appserver.NewHTTPGateway(srv)}
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "edged: http:", err)
			}
		}()
		defer httpSrv.Close()
		fmt.Printf("edged: HTTP gateway on %s (try /trade/home?user=uid-0)\n", *httpAddr)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Printf("edged: shutting down (requests=%d failures=%d)\n", srv.Requests(), srv.Failures())
	if mgr != nil {
		st := mgr.Stats()
		fmt.Printf("edged: cache hits=%d misses=%d commits=%d conflicts=%d invalidations=%d\n",
			st.Cache.Hits, st.Cache.Misses, st.Commits, st.Conflicts, st.Cache.Invalidations)
	}
	return nil
}

// splitTargets parses the -target value: a comma-separated address list
// ordered by shard index, with blanks trimmed and empties dropped.
func splitTargets(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

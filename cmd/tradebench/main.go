// Command tradebench regenerates the paper's evaluation: Table 1,
// Figures 6-8, and Table 2, by assembling each architecture on loopback
// TCP with the delay proxy on its high-latency path and driving the
// Trade workload through it.
//
// Usage:
//
//	tradebench -all                     # everything (several minutes)
//	tradebench -fig6 -fig8              # selected experiments
//	tradebench -table1                  # no measurement needed
//	tradebench -all -sessions 50 -delays 0ms,2ms,4ms,8ms
//	tradebench -fig6 -out-dir runs      # + per-run artifact directory:
//	                                    # Perfetto trace, waterfalls,
//	                                    # time-series CSVs, MANIFEST.json
//	tradebench -shards 1,2,4            # shard-scaling the datacenter tier
//	tradebench -fig6 -out-dir runs -profile
//	                                    # + per-phase CPU/heap/mutex/block
//	                                    # profiles and hotspot CSVs; add
//	                                    # -profile-remotes db=127.0.0.1:7070
//	                                    # to profile daemons per tier
//
// Latency sensitivities (Table 2 slopes) are delay-scale-invariant, so
// the default sweep uses small delays to keep wall-clock reasonable;
// pass larger -delays for paper-scale runs.
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"edgeejb/internal/harness"
	"edgeejb/internal/latency"
	"edgeejb/internal/obs"
	"edgeejb/internal/obs/collect"
	"edgeejb/internal/obs/prof"
	"edgeejb/internal/slicache"
	"edgeejb/internal/trade"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tradebench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tradebench", flag.ContinueOnError)
	var (
		all     = fs.Bool("all", false, "run every experiment")
		table1  = fs.Bool("table1", false, "print Table 1 (workload characteristics)")
		fig6    = fs.Bool("fig6", false, "reproduce Figure 6 (architecture comparison)")
		fig7    = fs.Bool("fig7", false, "reproduce Figure 7 (ES/RDB algorithms)")
		fig8    = fs.Bool("fig8", false, "reproduce Figure 8 (bandwidth)")
		table2  = fs.Bool("table2", false, "reproduce Table 2 (latency sensitivity)")
		thru    = fs.Bool("throughput", false, "extension: throughput under concurrent clients")
		shards  = fs.String("shards", "", "extension: comma-separated shard counts to sweep (e.g. 1,2,4); each count builds a datacenter tier of that many backend/database pairs behind key-routing edges")
		actions = fs.Bool("actions", false, "print per-action latency breakdown for the Figure 6 configurations")
		faults  = fs.Bool("faults", false, "extension: resilience under fault injection on the Figure 6 configurations")
		csvDir  = fs.String("csv", "", "also export figures/tables as CSV files into this directory")

		metrics   = fs.Bool("metrics", false, "print per-phase process metrics and span-derived latency breakdowns")
		debugAddr = fs.String("debug-addr", "", "serve /metrics, /healthz and /debug/pprof on this address while running")

		profile        = fs.Bool("profile", false, "capture per-phase CPU, heap-delta, mutex, and block profiles plus hotspot CSVs into the artifact directory (needs -out-dir; enables the contention-profile rates for the run)")
		profileRemotes = fs.String("profile-remotes", "", "comma-separated name=host:port -debug-addr listeners of daemons to profile alongside this process (with -profile)")
		profileCPUSec  = fs.Int("profile-cpu-seconds", 5, "remote CPU profile sample window per phase; short phases block until it closes (with -profile)")

		outDir      = fs.String("out-dir", "", "collect per-run artifacts (Perfetto trace, waterfalls, time-series CSVs, registry diffs, reports, MANIFEST.json) under a timestamped directory here")
		sampleEvery = fs.Duration("sample-every", 250*time.Millisecond, "registry sampling interval for -out-dir time series")
		spanBuffer  = fs.Int("span-buffer", 65536, "span ring capacity while collecting artifacts (with -out-dir)")
		eventBuffer = fs.Int("event-buffer", 65536, "forensic event ring capacity while collecting artifacts (with -out-dir)")
		waterfalls  = fs.Int("waterfalls", 3, "number of slowest and of median trace waterfalls to render (with -out-dir)")

		faultReset      = fs.Float64("fault-reset", 0.08, "per-connection probability of an abrupt reset (with -faults)")
		faultResetAfter = fs.Int("fault-reset-after", 64*1024, "max bytes a doomed connection forwards before the reset")
		faultStall      = fs.Float64("fault-stall", 0.01, "per-chunk stall probability (with -faults)")
		faultStallDur   = fs.Duration("fault-stall-dur", 25*time.Millisecond, "duration of each injected stall")
		faultTruncate   = fs.Float64("fault-truncate", 0.005, "per-chunk partial-frame truncation probability (with -faults)")
		faultBlackEvery = fs.Duration("fault-blackhole-every", 0, "blackhole window period (0 disables; with -faults)")
		faultBlackFor   = fs.Duration("fault-blackhole-for", 0, "blackhole window length (with -faults)")
		faultSeed       = fs.Int64("fault-seed", 1, "fault schedule random seed")
		faultSessions   = fs.Int("fault-sessions", 80, "sessions per pass in the fault experiment")
		sessionRetries  = fs.Int("session-retries", 5, "extra attempts a failed session gets (with -faults)")
		stepTimeout     = fs.Duration("step-timeout", 10*time.Second, "per-interaction timeout (with -faults)")
		degradeBound    = fs.Duration("degrade-bound", 5*time.Second, "slicache degraded-read staleness bound (0 disables; with -faults)")

		dbService    = fs.Duration("db-service", 2*time.Millisecond, "modeled per-commit-set validation service time on each database shard; makes commit capacity per shard explicit instead of host-bound (with -shards)")
		shardClients = fs.Int("shard-clients", 24, "concurrent clients per shard-scaling point (with -shards)")

		finderCache = fs.Bool("finder-cache", true, "cache finder (query) results at the edge with footprint-based invalidation; -finder-cache=false reproduces the uncached behavior")

		codec = fs.String("codec", "binary", "dbwire body codec: binary (negotiated per connection) or gob (the pre-negotiation wire format)")
		batch = fs.Bool("batch", true, "coalesce independent statements of one interaction into multi-statement frames; -batch=false reproduces one round trip per statement")

		sessions = fs.Int("sessions", 25, "measured sessions per delay point (paper: 300)")
		warmup   = fs.Int("warmup", 8, "warmup sessions before measurement (paper: 400)")
		batches  = fs.Int("batches", 20, "latency batches (paper: 20)")
		delays   = fs.String("delays", "0ms,1ms,2ms,4ms", "comma-separated one-way delays to sweep")
		mix      = fs.String("mix", "", "override the session action mix as name=weight pairs, e.g. portfolio=40,quote=35,buy=3 (names: home, account, account-update, portfolio, quote, buy, sell, register; empty = the default browse-heavy mix)")
		users    = fs.Int("users", 50, "registered users in the Trade database")
		symbols  = fs.Int("symbols", 100, "quoted securities in the Trade database")
		holdings = fs.Int("holdings", 4, "initial holdings per user")
		seed     = fs.Int64("seed", 42, "workload random seed")
		quiet    = fs.Bool("q", false, "suppress progress output")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	shardCounts, err := parseShardCounts(*shards)
	if err != nil {
		return err
	}
	if *profile && *outDir == "" {
		return fmt.Errorf("-profile writes profile artifacts, so it needs -out-dir")
	}
	profRemotes, err := parseRemotes(*profileRemotes)
	if err != nil {
		return err
	}
	if !*all && !*table1 && !*fig6 && !*fig7 && !*fig8 && !*table2 && !*thru && !*actions && !*faults && len(shardCounts) == 0 {
		fs.Usage()
		return fmt.Errorf("select at least one experiment (-all, -table1, -fig6, -fig7, -fig8, -table2, -throughput, -actions, -faults, -shards)")
	}
	if *all {
		*table1, *fig6, *fig7, *fig8, *table2, *thru, *actions, *faults = true, true, true, true, true, true, true, true
	}

	if *table1 {
		harness.WriteTable1(os.Stdout)
		fmt.Println()
	}

	delayList, err := parseDelays(*delays)
	if err != nil {
		return err
	}
	mixWeights, err := parseMix(*mix)
	if err != nil {
		return err
	}
	cfg := harness.EvalConfig{
		Run: harness.RunOptions{
			Delays:         delayList,
			Sessions:       *sessions,
			WarmupSessions: *warmup,
			Batches:        *batches,
			Workload: trade.GeneratorConfig{
				Seed:    *seed,
				Users:   *users,
				Symbols: *symbols,
				Mix:     mixWeights,
			},
		},
		Populate: trade.PopulateConfig{
			Seed:            *seed,
			Users:           *users,
			Symbols:         *symbols,
			HoldingsPerUser: *holdings,
		},
		CacheOptions: []slicache.ManagerOption{slicache.WithFinderCache(*finderCache)},
		Codec:        *codec,
		Batch:        *batch,
	}
	logf := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", a...)
	}
	if *quiet {
		logf = nil
	}

	if *debugAddr != "" {
		dbg, err := obs.StartDebug(*debugAddr, obs.DebugOptions{})
		if err != nil {
			return err
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "debug endpoints on http://%s/metrics\n", dbg.Addr())
	}

	// With -out-dir, every phase feeds a per-run artifact directory:
	// a widened span ring (so trace assembly sees whole interactions,
	// not the tail of the run), a registry sampler for time-series
	// CSVs, per-phase registry diffs, and — after the measured phases —
	// the assembled cross-tier traces.
	var (
		art     *harness.Artifacts
		sampler *obs.Sampler
	)
	if *outDir != "" {
		obs.DefaultSpans = obs.NewSpanLog(*spanBuffer)
		obs.DefaultEvents = obs.NewEventLog(*eventBuffer)
		var err error
		art, err = harness.NewArtifacts(*outDir, args)
		if err != nil {
			return err
		}
		sampler = obs.NewSampler(obs.Default, *sampleEvery, 0)
		sampler.Start()
		defer sampler.Stop()
		fmt.Fprintf(os.Stderr, "collecting run artifacts in %s\n", art.Dir)
	}

	// The runtime telemetry (runtime.* metric families) rides every
	// export the registry already has — /metrics, per-phase diffs, the
	// time-series CSVs — and feeds summary.json's resource.* metrics.
	var rt *prof.Runtime
	if *outDir != "" || *metrics || *debugAddr != "" {
		rt = prof.StartRuntime(obs.Default, *sampleEvery)
		defer rt.Stop()
	}

	// With -profile, every phase is bracketed by profile capture: CPU
	// profile spanning the phase, allocation/mutex/block deltas, the
	// same fetched from each -profile-remotes daemon.
	var (
		capt      *prof.Capturer
		profFiles []prof.CapturedFile
	)
	if *profile {
		capt, err = prof.NewCapturer(prof.Options{
			Dir:              art.Dir,
			Remotes:          profRemotes,
			RemoteCPUSeconds: *profileCPUSec,
			Rates:            true,
		})
		if err != nil {
			return err
		}
		defer capt.Close()
	}

	// runStart anchors the whole-run counter diff summary.json derives
	// its ratios from (taken after any -out-dir ring swap so the rings
	// and registry cover the same window).
	runStart := obs.Default.Snapshot()

	// finderPhases accumulates one finder-cache accounting row per
	// experiment phase, for the -metrics hit-ratio column and the
	// finder_cache.csv artifact.
	var finderPhases []finderPhaseRow

	// thruCurves and shardPoints capture the extension sweeps for
	// summary.json.
	var (
		thruCurves  []harness.ThroughputCurve
		shardPoints []harness.ShardScalingPoint
	)

	// phase runs one experiment phase and, with -metrics, prints the
	// process metrics it accumulated (a diff, so phases don't bleed into
	// each other). With -out-dir the diff and the phase's metric time
	// series also land in the artifact directory.
	phase := func(name string, f func() error) error {
		if rt != nil {
			rt.Update()
		}
		before := obs.Default.Snapshot()
		start := time.Now()
		if sampler != nil {
			sampler.SampleNow()
		}
		if capt != nil {
			if err := capt.StartPhase(name); err != nil {
				return err
			}
		}
		if err := f(); err != nil {
			return err
		}
		// Fold the phase's runtime activity in before diffing, so the
		// registry diff and time series carry its runtime.* tallies; the
		// profile capture ends after, keeping its own parse work out of
		// the phase's numbers.
		if rt != nil {
			rt.Update()
		}
		diff := obs.Default.Diff(before)
		if capt != nil {
			files, err := capt.EndPhase()
			if err != nil {
				return err
			}
			profFiles = append(profFiles, files...)
		}
		finderPhases = append(finderPhases, finderPhaseRowFrom(name, diff))
		if *metrics {
			fmt.Printf("\nMetrics accumulated by the %s phase:\n", name)
			if err := diff.WriteText(os.Stdout); err != nil {
				return err
			}
		}
		if art != nil {
			sampler.SampleNow()
			end := time.Now()
			art.RecordPhase(name, start, end)
			if err := art.WriteRegistryDiff(name, diff); err != nil {
				return err
			}
			if err := art.WriteTimeSeries(name, sampler.SamplesBetween(start, end.Add(time.Millisecond))); err != nil {
				return err
			}
		}
		return nil
	}

	if *faults {
		fopts := harness.FaultOptions{
			Populate:    cfg.Populate,
			OneWayDelay: delayList[0],
			Sessions:    *faultSessions,
			Plan: latency.FaultPlan{
				Seed:           *faultSeed,
				ResetRate:      *faultReset,
				ResetAfterMax:  *faultResetAfter,
				StallRate:      *faultStall,
				StallFor:       *faultStallDur,
				TruncateRate:   *faultTruncate,
				BlackholeEvery: *faultBlackEvery,
				BlackholeFor:   *faultBlackFor,
			},
			SessionRetries: *sessionRetries,
			StepTimeout:    *stepTimeout,
			DegradeBound:   *degradeBound,
			CacheOptions:   cfg.CacheOptions,
		}
		if err := phase("fault", func() error { return runFaults(fopts, logf) }); err != nil {
			return err
		}
		fmt.Println()
	}

	// finishArtifacts assembles the run's traces, attributes the
	// critical path, and finalizes the artifact directory; it runs at
	// whichever exit the run takes.
	finishArtifacts := func(eval *harness.Evaluation) error {
		if *metrics && len(finderPhases) > 0 {
			fmt.Println()
			writeFinderTable(os.Stdout, finderPhases)
		}
		if rt != nil {
			// Force a GC cycle so even a tiny run has at least one pause
			// in runtime.gc_pause before the final fold — otherwise the
			// gc_pause_p99 resource metric is zero on short legs.
			runtime.GC()
			rt.Update()
		}
		if *metrics && capt != nil {
			fmt.Println()
			if err := capt.Hotspots().WriteTable(os.Stdout, 10); err != nil {
				return err
			}
		}
		if art == nil && !*metrics {
			return nil
		}
		c := collect.NewCollector(collect.FromLog("proc", obs.DefaultSpans))
		if err := c.Poll(); err != nil {
			return err
		}
		traces := c.Traces()
		attr := collect.Attribute(traces)
		if *metrics && attr.Traces > 0 {
			fmt.Println()
			if err := attr.WriteTable(os.Stdout); err != nil {
				return err
			}
		}
		if art == nil {
			return nil
		}
		if err := art.WriteTraces(traces, *waterfalls, obs.DefaultSpans.Dropped()); err != nil {
			return err
		}
		if err := art.WriteCriticalPath(attr); err != nil {
			return err
		}
		runDiff := obs.Default.Diff(runStart)
		var rtSnap *obs.Snapshot
		if rt != nil {
			rtSnap = &runDiff
		}
		if err := art.WriteSummary(harness.BuildSummary(harness.SummaryInput{
			Args:        args,
			Eval:        eval,
			Throughput:  thruCurves,
			Shards:      shardPoints,
			Attribution: attr,
			Counters:    runDiff.Counters,
			Runtime:     rtSnap,
		})); err != nil {
			return err
		}
		if capt != nil {
			if err := art.WriteProfiles(profFiles, capt.Hotspots()); err != nil {
				return err
			}
		}
		if err := art.WriteEvents(obs.DefaultEvents.Since(0)); err != nil {
			return err
		}
		if err := art.WriteFile("finder_cache.csv", "csv",
			"per-phase finder-cache hits, misses, invalidations, and hit ratio", "",
			func(w io.Writer) error { return writeFinderCSV(w, finderPhases) }); err != nil {
			return err
		}
		if eval != nil {
			if err := art.WriteEvalReports(eval); err != nil {
				return err
			}
		}
		if err := art.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "run artifacts in %s (%d traces assembled)\n", art.Dir, len(traces))
		return nil
	}

	needsMeasurement := *fig6 || *fig7 || *fig8 || *table2 || *thru || *actions
	if !needsMeasurement && len(shardCounts) == 0 {
		return finishArtifacts(nil)
	}
	if !needsMeasurement {
		// Shard sweep only: no figure evaluation needed.
		if err := phase("shards", func() error {
			var err error
			shardPoints, err = runShardSweep(shardCounts, *shardClients, *dbService, cfg, art, logf)
			return err
		}); err != nil {
			return err
		}
		return finishArtifacts(nil)
	}

	var eval *harness.Evaluation
	if err := phase("evaluation", func() error {
		var err error
		eval, err = harness.RunEvaluation(context.Background(), cfg, logf)
		return err
	}); err != nil {
		return err
	}
	if *metrics {
		fmt.Println()
	}

	if *fig6 {
		eval.WriteFig6(os.Stdout)
		fmt.Println()
		if *metrics {
			for _, s := range eval.Fig6Series() {
				harness.WriteLatencyBreakdown(os.Stdout, s)
				fmt.Println()
				if err := harness.WriteForensics(os.Stdout, s); err != nil {
					return err
				}
				fmt.Println()
			}
		}
	}
	if *fig7 {
		eval.WriteFig7(os.Stdout)
		fmt.Println()
	}
	if *table2 {
		eval.WriteTable2(os.Stdout)
		fmt.Println()
	}
	if *fig8 {
		eval.WriteFig8(os.Stdout)
	}
	if *actions {
		fmt.Println()
		harness.WriteActionBreakdown(os.Stdout, eval.Fig6Series())
	}
	if *csvDir != "" {
		if err := eval.WriteCSV(*csvDir); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote CSV files to %s\n", *csvDir)
	}
	if *thru {
		fmt.Println()
		if err := phase("throughput", func() error {
			var err error
			thruCurves, err = runThroughput(cfg, *metrics, logf)
			return err
		}); err != nil {
			return err
		}
	}
	if len(shardCounts) > 0 {
		fmt.Println()
		if err := phase("shards", func() error {
			var err error
			shardPoints, err = runShardSweep(shardCounts, *shardClients, *dbService, cfg, art, logf)
			return err
		}); err != nil {
			return err
		}
	}
	return finishArtifacts(eval)
}

// runShardSweep measures the shard-scaling extension and, when an
// artifact directory is active, exports the curve as shards.csv. The
// points also feed summary.json.
func runShardSweep(counts []int, clients int, dbService time.Duration, cfg harness.EvalConfig, art *harness.Artifacts, logf func(string, ...any)) ([]harness.ShardScalingPoint, error) {
	opts := harness.DefaultShardScalingOptions()
	opts.ShardCounts = counts
	opts.Clients = clients
	opts.DBCommitService = dbService
	opts.Populate = cfg.Populate
	opts.Workload = cfg.Run.Workload
	opts.CacheOptions = cfg.CacheOptions
	opts.Codec = cfg.Codec
	points, err := harness.RunShardScaling(context.Background(), opts, logf)
	if err != nil {
		return nil, err
	}
	harness.WriteShardScaling(os.Stdout, points)
	if art != nil {
		if err := art.WriteFile("shards.csv", "csv",
			"shard-scaling sweep: per-shard commit balance and per-point throughput, 2PC fraction, and commit-path split", "",
			func(w io.Writer) error { return harness.WriteShardsCSV(w, points) }); err != nil {
			return nil, err
		}
	}
	return points, nil
}

// parseRemotes parses -profile-remotes: comma-separated name=host:port
// pairs naming the -debug-addr listeners of daemons to profile.
func parseRemotes(s string) ([]prof.Remote, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []prof.Remote
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		name, addr, ok := strings.Cut(p, "=")
		if !ok || strings.TrimSpace(name) == "" || strings.TrimSpace(addr) == "" {
			return nil, fmt.Errorf("bad -profile-remotes entry %q (want name=host:port)", p)
		}
		out = append(out, prof.Remote{Name: strings.TrimSpace(name), Addr: strings.TrimSpace(addr)})
	}
	return out, nil
}

// parseShardCounts parses the -shards list; empty means the sweep is
// off.
func parseShardCounts(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		n, err := strconv.Atoi(p)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad shard count %q", p)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no shard counts given")
	}
	return out, nil
}

// runFaults measures resilience under fault injection for the three
// Figure 6 configurations, then verifies the experiment left no hung
// goroutines behind (the chaos run's leak check).
func runFaults(opts harness.FaultOptions, logf func(string, ...any)) error {
	before := runtime.NumGoroutine()
	reports, err := harness.RunFaultExperiment(context.Background(), opts, logf)
	if err != nil {
		return err
	}
	harness.WriteFaultReport(os.Stdout, reports)

	var succeeded, attempted int
	for _, r := range reports {
		succeeded += r.Faulted.Succeeded
		attempted += r.Faulted.Succeeded + r.Faulted.Failed
	}
	if attempted > 0 {
		fmt.Printf("overall: %d/%d faulted sessions succeeded (%.1f%%)\n",
			succeeded, attempted, 100*float64(succeeded)/float64(attempted))
	}

	// Every topology is closed; the goroutine count must settle back.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		return fmt.Errorf("fault experiment leaked goroutines: %d before, %d after", before, n)
	}
	fmt.Println("goroutine check: clean (no hung goroutines)")
	return nil
}

// runThroughput measures the concurrency extension for the three
// Figure 6 configurations and returns the curves for summary.json.
// With forensics enabled it also prints the per-point conflict
// matrices — the concurrent run is the one workload in the suite where
// optimistic validation actually loses races.
func runThroughput(cfg harness.EvalConfig, forensics bool, logf func(string, ...any)) ([]harness.ThroughputCurve, error) {
	topts := harness.DefaultThroughputOptions()
	topts.Workload = cfg.Run.Workload
	configs := []harness.Pair{
		{Arch: harness.ClientsRAS, Algo: harness.AlgJDBC},
		{Arch: harness.ESRBES, Algo: harness.AlgCachedEJB},
		{Arch: harness.ESRDB, Algo: harness.AlgJDBC},
	}
	var curves []harness.ThroughputCurve
	for _, pair := range configs {
		if logf != nil {
			logf("running throughput %s (clients %v)...", pair, topts.ClientCounts)
		}
		curve, err := harness.RunThroughput(context.Background(), harness.Options{
			Arch:         pair.Arch,
			Algo:         pair.Algo,
			Populate:     cfg.Populate,
			CacheOptions: cfg.CacheOptions,
			Codec:        cfg.Codec,
			Batch:        cfg.Batch,
		}, topts)
		if err != nil {
			return nil, err
		}
		curves = append(curves, curve)
	}
	harness.WriteThroughput(os.Stdout, curves)
	if forensics {
		fmt.Println()
		if err := harness.WriteThroughputForensics(os.Stdout, curves); err != nil {
			return nil, err
		}
	}
	return curves, nil
}

// finderPhaseRow is one experiment phase's finder-cache accounting,
// extracted from the phase's registry diff.
type finderPhaseRow struct {
	Phase         string
	Hits          uint64
	Misses        uint64
	Invalidations uint64
}

func finderPhaseRowFrom(name string, diff obs.Snapshot) finderPhaseRow {
	return finderPhaseRow{
		Phase:         name,
		Hits:          diff.Counters["slicache.finder_hits"],
		Misses:        diff.Counters["slicache.finder_misses"],
		Invalidations: diff.Counters["slicache.finder_invalidations"],
	}
}

// HitRatio is hits/(hits+misses); NaN when the phase ran no finders
// (or the cache was disabled, which records neither hits nor misses).
func (r finderPhaseRow) HitRatio() float64 {
	total := r.Hits + r.Misses
	if total == 0 {
		return math.NaN()
	}
	return float64(r.Hits) / float64(total)
}

// writeFinderTable renders the per-phase finder-cache summary printed
// with -metrics.
func writeFinderTable(w io.Writer, rows []finderPhaseRow) {
	fmt.Fprintln(w, "Finder cache by phase:")
	fmt.Fprintf(w, "%-14s %10s %10s %14s %10s\n", "phase", "hits", "misses", "invalidations", "hit-ratio")
	for _, r := range rows {
		ratio := "n/a"
		if hr := r.HitRatio(); !math.IsNaN(hr) {
			ratio = fmt.Sprintf("%.1f%%", 100*hr)
		}
		fmt.Fprintf(w, "%-14s %10d %10d %14d %10s\n", r.Phase, r.Hits, r.Misses, r.Invalidations, ratio)
	}
}

// writeFinderCSV exports the same rows as the finder_cache.csv
// artifact (schema: phase, hits, misses, invalidations, hit_ratio).
func writeFinderCSV(w io.Writer, rows []finderPhaseRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"phase", "hits", "misses", "invalidations", "hit_ratio"}); err != nil {
		return err
	}
	for _, r := range rows {
		ratio := "n/a"
		if hr := r.HitRatio(); !math.IsNaN(hr) {
			ratio = strconv.FormatFloat(hr, 'f', 4, 64)
		}
		rec := []string{
			r.Phase,
			strconv.FormatUint(r.Hits, 10),
			strconv.FormatUint(r.Misses, 10),
			strconv.FormatUint(r.Invalidations, 10),
			ratio,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// parseMix parses the -mix override: comma-separated name=weight pairs.
// An empty string keeps the zero Mix, which the generator replaces with
// trade.DefaultMix.
func parseMix(s string) (trade.Mix, error) {
	var m trade.Mix
	if strings.TrimSpace(s) == "" {
		return m, nil
	}
	fields := map[string]*int{
		"home":           &m.Home,
		"account":        &m.Account,
		"account-update": &m.AccountUpdate,
		"portfolio":      &m.Portfolio,
		"quote":          &m.Quote,
		"buy":            &m.Buy,
		"sell":           &m.Sell,
		"register":       &m.Register,
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return m, fmt.Errorf("bad mix entry %q (want name=weight)", part)
		}
		dst, known := fields[strings.ToLower(strings.TrimSpace(name))]
		if !known {
			return m, fmt.Errorf("unknown mix action %q", name)
		}
		w, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || w < 0 {
			return m, fmt.Errorf("bad mix weight %q", part)
		}
		*dst = w
	}
	if total := m.Home + m.Account + m.AccountUpdate + m.Portfolio + m.Quote + m.Buy + m.Sell + m.Register; total == 0 {
		return m, fmt.Errorf("mix %q has zero total weight", s)
	}
	return m, nil
}

func parseDelays(s string) ([]time.Duration, error) {
	parts := strings.Split(s, ",")
	out := make([]time.Duration, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		d, err := time.ParseDuration(p)
		if err != nil {
			return nil, fmt.Errorf("bad delay %q: %w", p, err)
		}
		if d < 0 {
			return nil, fmt.Errorf("negative delay %q", p)
		}
		out = append(out, d)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no delays given")
	}
	return out, nil
}

// Command dbserverd runs the database-server tier as a standalone
// process: the persistent datastore populated with the Trade database,
// served over the dbwire protocol. It is the "database server" machine
// of the paper's four-machine test configuration; point edge servers
// (cmd/edged), back-end servers (cmd/backendd), or the delay proxy
// (cmd/delayproxy) at its address.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"edgeejb/internal/dbwire"
	"edgeejb/internal/obs"
	"edgeejb/internal/sqlstore"
	"edgeejb/internal/storeapi"
	"edgeejb/internal/trade"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dbserverd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dbserverd", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:7000", "listen address")
		users       = fs.Int("users", 50, "registered users to populate")
		symbols     = fs.Int("symbols", 100, "quoted securities to populate")
		holdings    = fs.Int("holdings", 4, "initial holdings per user")
		seed        = fs.Int64("seed", 42, "population random seed")
		lockTimeout = fs.Duration("lock-timeout", 5*time.Second, "lock-wait timeout (deadlock resolution)")
		statsEvery  = fs.Duration("stats", 0, "print store stats at this interval (0 = off)")
		snapshot    = fs.String("snapshot", "", "snapshot file: restored at boot if present, written on shutdown")
		snapEvery   = fs.Duration("snapshot-every", 0, "also write the snapshot at this interval, bounding data lost to a crash (0 = shutdown only)")
		debug       = fs.String("debug-addr", "", "serve /metrics, /healthz and /debug/pprof on this address")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Label this process's spans for cross-tier trace assembly.
	obs.SetTier("db")

	if *debug != "" {
		dbg, err := obs.StartDebug(*debug, obs.DebugOptions{})
		if err != nil {
			return err
		}
		defer dbg.Close()
		fmt.Printf("dbserverd: debug endpoints on http://%s/metrics\n", dbg.Addr())
	}

	store := sqlstore.New(sqlstore.WithLockTimeout(*lockTimeout))
	defer store.Close()
	restored := false
	if *snapshot != "" {
		if _, statErr := os.Stat(*snapshot); statErr == nil {
			if err := store.RestoreFile(*snapshot); err != nil {
				return fmt.Errorf("restore %s: %w", *snapshot, err)
			}
			restored = true
			fmt.Printf("dbserverd: restored snapshot %s\n", *snapshot)
		}
	}
	if !restored {
		trade.Populate(store, trade.PopulateConfig{
			Seed:            *seed,
			Users:           *users,
			Symbols:         *symbols,
			HoldingsPerUser: *holdings,
		})
	}
	saveSnapshot := func() {
		if *snapshot == "" {
			return
		}
		if err := store.DumpFile(*snapshot); err != nil {
			fmt.Fprintf(os.Stderr, "dbserverd: snapshot: %v\n", err)
			return
		}
		fmt.Printf("dbserverd: wrote snapshot %s\n", *snapshot)
	}

	srv := dbwire.NewServer(storeapi.Local(store))
	if err := srv.Start(*addr); err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("dbserverd: serving Trade database (%d users, %d symbols) on %s\n",
		*users, *symbols, srv.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	// Optional tickers stay nil channels (never ready) when disabled.
	var statsC, snapC <-chan time.Time
	if *statsEvery > 0 {
		ticker := time.NewTicker(*statsEvery)
		defer ticker.Stop()
		statsC = ticker.C
	}
	if *snapEvery > 0 {
		if *snapshot == "" {
			return fmt.Errorf("-snapshot-every requires -snapshot")
		}
		ticker := time.NewTicker(*snapEvery)
		defer ticker.Stop()
		snapC = ticker.C
	}
	for {
		select {
		case <-statsC:
			st := store.Stats()
			fmt.Printf("dbserverd: commits=%d aborts=%d gets=%d puts=%d queries=%d optOK=%d optFail=%d rows=%d\n",
				st.Commits, st.Aborts, st.Gets, st.Puts, st.Queries,
				st.OptimisticOK, st.OptimisticFail, st.RowsLive)
		case <-snapC:
			saveSnapshot()
		case <-stop:
			fmt.Println("dbserverd: shutting down")
			saveSnapshot()
			return nil
		}
	}
}

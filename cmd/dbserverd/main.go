// Command dbserverd runs the database-server tier as a standalone
// process: the persistent datastore populated with the Trade database,
// served over the dbwire protocol. It is the "database server" machine
// of the paper's four-machine test configuration; point edge servers
// (cmd/edged), back-end servers (cmd/backendd), or the delay proxy
// (cmd/delayproxy) at its address.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"edgeejb/internal/dbwire"
	"edgeejb/internal/memento"
	"edgeejb/internal/obs"
	"edgeejb/internal/obs/prof"
	"edgeejb/internal/shard"
	"edgeejb/internal/sqlstore"
	"edgeejb/internal/storeapi"
	"edgeejb/internal/trade"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dbserverd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dbserverd", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:7000", "listen address")
		users       = fs.Int("users", 50, "registered users to populate")
		symbols     = fs.Int("symbols", 100, "quoted securities to populate")
		holdings    = fs.Int("holdings", 4, "initial holdings per user")
		seed        = fs.Int64("seed", 42, "population random seed")
		lockTimeout = fs.Duration("lock-timeout", 5*time.Second, "lock-wait timeout (deadlock resolution)")
		statsEvery  = fs.Duration("stats", 0, "print store stats at this interval (0 = off)")
		snapshot    = fs.String("snapshot", "", "snapshot file: restored at boot if present, written on shutdown")
		snapEvery   = fs.Duration("snapshot-every", 0, "also write the snapshot at this interval, bounding data lost to a crash (0 = shutdown only)")
		debug       = fs.String("debug-addr", "", "serve /metrics, /healthz and /debug/pprof on this address")
		rates       = fs.Bool("profile-rates", false, "enable mutex and block profiling so /debug/pprof/mutex and /debug/pprof/block carry samples (both are empty at the runtime's defaults); costs a sampled stack capture on contended-unlock and blocking paths")
		shards      = fs.Int("shards", 1, "total database shards in the deployment; this process populates only the rows shard -shard owns")
		shardIdx    = fs.Int("shard", 0, "this process's shard index in [0, -shards)")
		prepareTTL  = fs.Duration("prepare-ttl", 10*time.Second, "presumed-abort timeout for prepared (in-doubt) cross-shard transactions")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be >= 1")
	}
	if *shardIdx < 0 || *shardIdx >= *shards {
		return fmt.Errorf("-shard %d out of range [0, %d)", *shardIdx, *shards)
	}

	// Label this process's spans for cross-tier trace assembly.
	obs.SetTier("db")

	if *rates {
		defer prof.EnableProfileRates()()
	}
	if *debug != "" {
		dbg, err := obs.StartDebug(*debug, obs.DebugOptions{})
		if err != nil {
			return err
		}
		defer dbg.Close()
		// Feed the Go runtime's meters into /metrics alongside the
		// application metrics, so a scrape sees this tier's GC and
		// allocation behavior too.
		rt := prof.StartRuntime(obs.Default, time.Second)
		defer rt.Stop()
		fmt.Printf("dbserverd: debug endpoints on http://%s/metrics\n", dbg.Addr())
	}

	// Disjoint transaction-ID bases keep IDs globally unique across the
	// sharded tier, so edge caches can filter their own commits out of
	// the merged invalidation stream.
	store := sqlstore.New(
		sqlstore.WithLockTimeout(*lockTimeout),
		sqlstore.WithTxIDBase(uint64(*shardIdx)<<40),
		sqlstore.WithPrepareTTL(*prepareTTL),
	)
	defer store.Close()
	restored := false
	if *snapshot != "" {
		if _, statErr := os.Stat(*snapshot); statErr == nil {
			if err := store.RestoreFile(*snapshot); err != nil {
				return fmt.Errorf("restore %s: %w", *snapshot, err)
			}
			restored = true
			fmt.Printf("dbserverd: restored snapshot %s\n", *snapshot)
		}
	}
	if !restored {
		cfg := trade.PopulateConfig{
			Seed:            *seed,
			Users:           *users,
			Symbols:         *symbols,
			HoldingsPerUser: *holdings,
		}
		if *shards == 1 {
			trade.Populate(store, cfg)
		} else {
			// Every shard derives the identical population from the shared
			// seed and keeps exactly the rows the ring assigns to it.
			ring := shard.NewRing(*shards, shard.WithPlacement(trade.ShardPlacement))
			_ = store.CreateIndex(trade.TableHolding, "accountID")
			var owned []memento.Memento
			for _, m := range trade.PopulationRows(cfg) {
				if ring.Of(m.Key) == *shardIdx {
					owned = append(owned, m)
				}
			}
			store.Seed(owned...)
			fmt.Printf("dbserverd: shard %d/%d owns %d of the population rows\n",
				*shardIdx, *shards, len(owned))
		}
	}
	saveSnapshot := func() {
		if *snapshot == "" {
			return
		}
		if err := store.DumpFile(*snapshot); err != nil {
			fmt.Fprintf(os.Stderr, "dbserverd: snapshot: %v\n", err)
			return
		}
		fmt.Printf("dbserverd: wrote snapshot %s\n", *snapshot)
	}

	srv := dbwire.NewServer(storeapi.Local(store))
	if err := srv.Start(*addr); err != nil {
		return err
	}
	defer srv.Close()
	if *shards > 1 {
		fmt.Printf("dbserverd: serving Trade database shard %d/%d (%d users, %d symbols) on %s\n",
			*shardIdx, *shards, *users, *symbols, srv.Addr())
	} else {
		fmt.Printf("dbserverd: serving Trade database (%d users, %d symbols) on %s\n",
			*users, *symbols, srv.Addr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	// Optional tickers stay nil channels (never ready) when disabled.
	var statsC, snapC <-chan time.Time
	if *statsEvery > 0 {
		ticker := time.NewTicker(*statsEvery)
		defer ticker.Stop()
		statsC = ticker.C
	}
	if *snapEvery > 0 {
		if *snapshot == "" {
			return fmt.Errorf("-snapshot-every requires -snapshot")
		}
		ticker := time.NewTicker(*snapEvery)
		defer ticker.Stop()
		snapC = ticker.C
	}
	for {
		select {
		case <-statsC:
			st := store.Stats()
			fmt.Printf("dbserverd: commits=%d aborts=%d gets=%d puts=%d queries=%d optOK=%d optFail=%d rows=%d\n",
				st.Commits, st.Aborts, st.Gets, st.Puts, st.Queries,
				st.OptimisticOK, st.OptimisticFail, st.RowsLive)
		case <-snapC:
			saveSnapshot()
		case <-stop:
			fmt.Println("dbserverd: shutting down")
			saveSnapshot()
			return nil
		}
	}
}

package memento

import (
	"sort"
	"strings"
)

// WriteDesc describes one committed mutation richly enough for
// footprint-overlap tests: the key plus the row's field state before and
// after the write. Before is nil for creates and After is nil for
// removes, so a predicate can be tested against both sides — a row
// moving INTO or OUT OF a result set both change the result. A
// WriteDesc with both sides nil describes a mutation of unknown shape
// (a notice from a peer that predates rich write sets); overlap tests
// must treat it conservatively.
type WriteDesc struct {
	Key    Key
	Before Fields
	After  Fields
}

// Blind reports whether the write carries no field images at all, in
// which case only its key and table are known.
func (w WriteDesc) Blind() bool { return w.Before == nil && w.After == nil }

// DescribeWrites converts a commit set's mutations into write
// descriptors using the set's own images: Writes and Creates carry
// after-images, Removes carry no image (before-images are known only to
// the store). It is the client-side approximation used when a
// transaction must invalidate its own cached query results before the
// store's notice arrives.
func (cs CommitSet) DescribeWrites() []WriteDesc {
	out := make([]WriteDesc, 0, cs.Mutations())
	for _, m := range cs.Writes {
		out = append(out, WriteDesc{Key: m.Key, After: m.Fields})
	}
	for _, m := range cs.Creates {
		out = append(out, WriteDesc{Key: m.Key, After: m.Fields})
	}
	for _, r := range cs.Removes {
		out = append(out, WriteDesc{Key: r.Key})
	}
	return out
}

// Footprint is a typed description of what a read path observed: the
// exact keys it loaded plus the predicate queries whose result sets it
// covered. A footprint is the unit of overlap testing against committed
// write sets — the seam that finder-result caching and pluggable
// validation modes build on. The zero value is an empty footprint.
type Footprint struct {
	// Keys are rows read directly (by primary key). Order is
	// insertion order; AddKey deduplicates.
	Keys []Key
	// Queries are predicate reads: each query's entire result set was
	// observed, so any committed write matching the predicate — before
	// or after images — may change it.
	Queries []Query
}

// KeyFootprint builds a footprint covering exactly the given keys.
func KeyFootprint(keys ...Key) Footprint {
	return Footprint{Keys: append([]Key(nil), keys...)}
}

// QueryFootprint builds the footprint a finder covered: the normalized
// query descriptor plus the keys of the rows it returned (their
// versions are proven individually at commit; the descriptor guards the
// result-set membership).
func QueryFootprint(q Query, results []Memento) Footprint {
	fp := Footprint{Queries: []Query{q.Normalize()}}
	for _, m := range results {
		fp.Keys = append(fp.Keys, m.Key)
	}
	return fp
}

// Empty reports whether the footprint covers nothing.
func (f Footprint) Empty() bool { return len(f.Keys) == 0 && len(f.Queries) == 0 }

// Clone returns a deep-enough copy: the slices are fresh, the queries'
// predicate slices are shared (predicates are treated as immutable).
func (f Footprint) Clone() Footprint {
	return Footprint{
		Keys:    append([]Key(nil), f.Keys...),
		Queries: append([]Query(nil), f.Queries...),
	}
}

// AddKey records a direct key read, deduplicating.
func (f *Footprint) AddKey(k Key) {
	for _, have := range f.Keys {
		if have == k {
			return
		}
	}
	f.Keys = append(f.Keys, k)
}

// AddQuery records a predicate read, deduplicating by canonical form.
func (f *Footprint) AddQuery(q Query) {
	q = q.Normalize()
	ck := q.String()
	for _, have := range f.Queries {
		if have.String() == ck {
			return
		}
	}
	f.Queries = append(f.Queries, q)
}

// Merge folds another footprint into this one.
func (f *Footprint) Merge(o Footprint) {
	for _, k := range o.Keys {
		f.AddKey(k)
	}
	for _, q := range o.Queries {
		f.AddQuery(q)
	}
}

// CoversKey reports whether the footprint read the key directly.
func (f Footprint) CoversKey(k Key) bool {
	for _, have := range f.Keys {
		if have == k {
			return true
		}
	}
	return false
}

// OverlapsWrite reports whether a committed write could have changed
// anything this footprint observed: the written key was read directly,
// or a predicate read's result set may have gained or lost the row.
// Blind writes (no field images) conservatively overlap every predicate
// on the same table.
func (f Footprint) OverlapsWrite(w WriteDesc) bool {
	if f.CoversKey(w.Key) {
		return true
	}
	for _, q := range f.Queries {
		if q.Table != w.Key.Table {
			continue
		}
		if w.Blind() {
			return true
		}
		if (w.Before != nil && q.MatchesFields(w.Before)) ||
			(w.After != nil && q.MatchesFields(w.After)) {
			return true
		}
	}
	return false
}

// Overlaps reports whether any write in a committed set overlaps the
// footprint.
func (f Footprint) Overlaps(writes []WriteDesc) bool {
	for _, w := range writes {
		if f.OverlapsWrite(w) {
			return true
		}
	}
	return false
}

// String renders the footprint for logs and debugging.
func (f Footprint) String() string {
	var sb strings.Builder
	sb.WriteString("footprint{keys: [")
	for i, k := range f.Keys {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(k.String())
	}
	sb.WriteString("], queries: [")
	for i, q := range f.Queries {
		if i > 0 {
			sb.WriteString("; ")
		}
		sb.WriteString(q.String())
	}
	sb.WriteString("]}")
	return sb.String()
}

// MatchesFields reports whether a field map satisfies every predicate
// of the query (table membership is the caller's concern). It is the
// overlap test's half of Matches: write descriptors carry bare field
// images, not whole mementos.
func (q Query) MatchesFields(f Fields) bool {
	for _, p := range q.Where {
		if !p.Matches(f) {
			return false
		}
	}
	return true
}

// Normalize returns a canonical form of the query: predicates sorted by
// field, operator and value so that logically identical finders render
// identically. Result-shaping fields (OrderBy, Desc, Limit) are kept —
// they change the result set, so they distinguish cache keys.
func (q Query) Normalize() Query {
	if len(q.Where) < 2 {
		return q
	}
	where := append([]Predicate(nil), q.Where...)
	sort.SliceStable(where, func(i, j int) bool {
		if where[i].Field != where[j].Field {
			return where[i].Field < where[j].Field
		}
		if where[i].Op != where[j].Op {
			return where[i].Op < where[j].Op
		}
		return where[i].Value.Compare(where[j].Value) < 0
	})
	q.Where = where
	return q
}

// CacheKey renders the canonical query string used to key finder-result
// caches. Two queries with the same cache key return the same result
// set against the same store state.
func (q Query) CacheKey() string { return q.Normalize().String() }

package memento

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Key identifies an entity instance: the table (entity type) it belongs
// to plus its primary key within that table.
type Key struct {
	Table string
	ID    string
}

// String renders the key as "table/id".
func (k Key) String() string { return k.Table + "/" + k.ID }

// Kind enumerates the dynamic type of a Value.
type Kind int

// Supported value kinds. Enums start at one so that the zero Value is
// distinguishable from a deliberately-stored value.
const (
	KindString Kind = iota + 1
	KindInt
	KindFloat
	KindBool
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	default:
		return "invalid"
	}
}

// Value is a typed field value. Exactly one of the payload fields is
// meaningful, selected by Kind. Values are small and copied freely; they
// are encodable by encoding/gob without interface registration.
type Value struct {
	Kind Kind
	Str  string
	Int  int64
	F    float64
	Bool bool
}

// String constructs a string Value.
func String(s string) Value { return Value{Kind: KindString, Str: s} }

// Int constructs an integer Value.
func Int(i int64) Value { return Value{Kind: KindInt, Int: i} }

// Float constructs a floating-point Value.
func Float(f float64) Value { return Value{Kind: KindFloat, F: f} }

// Bool constructs a boolean Value.
func Bool(b bool) Value { return Value{Kind: KindBool, Bool: b} }

// IsZero reports whether v is the zero Value (no kind set).
func (v Value) IsZero() bool { return v.Kind == 0 }

// Equal reports whether two values have the same kind and payload.
func (v Value) Equal(o Value) bool { return v == o }

// Compare orders two values of the same kind. It returns -1, 0, or +1.
// Values of different kinds compare by kind so that ordering is total.
func (v Value) Compare(o Value) int {
	if v.Kind != o.Kind {
		if v.Kind < o.Kind {
			return -1
		}
		return 1
	}
	switch v.Kind {
	case KindString:
		return strings.Compare(v.Str, o.Str)
	case KindInt:
		switch {
		case v.Int < o.Int:
			return -1
		case v.Int > o.Int:
			return 1
		}
	case KindFloat:
		switch {
		case v.F < o.F:
			return -1
		case v.F > o.F:
			return 1
		}
	case KindBool:
		switch {
		case !v.Bool && o.Bool:
			return -1
		case v.Bool && !o.Bool:
			return 1
		}
	}
	return 0
}

// GoString renders the value for debugging output.
func (v Value) GoString() string {
	switch v.Kind {
	case KindString:
		return strconv.Quote(v.Str)
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.Bool)
	default:
		return "<zero>"
	}
}

// Fields maps field names to values: the state portion of a memento.
type Fields map[string]Value

// Clone returns a deep copy of the field map. A nil map clones to nil.
func (f Fields) Clone() Fields {
	if f == nil {
		return nil
	}
	out := make(Fields, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// Equal reports whether two field maps hold exactly the same entries.
func (f Fields) Equal(o Fields) bool {
	if len(f) != len(o) {
		return false
	}
	for k, v := range f {
		ov, ok := o[k]
		if !ok || !v.Equal(ov) {
			return false
		}
	}
	return true
}

// Names returns the sorted field names, for deterministic rendering.
func (f Fields) Names() []string {
	names := make([]string, 0, len(f))
	for k := range f {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Memento is a serializable snapshot of one entity's state. Version is
// the persistent store's row version at the time the snapshot was taken;
// version 0 means the entity has never been persisted (a create).
//
// Mementos share the entity's notion of identity: two mementos with the
// same Key describe the same logical entity, possibly at different
// points in time.
type Memento struct {
	Key     Key
	Version uint64
	Fields  Fields
}

// Clone returns a deep copy of the memento.
func (m Memento) Clone() Memento {
	m.Fields = m.Fields.Clone()
	return m
}

// Equal reports whether two mementos have the same key, version, and
// state.
func (m Memento) Equal(o Memento) bool {
	return m.Key == o.Key && m.Version == o.Version && m.Fields.Equal(o.Fields)
}

// String renders the memento for debugging.
func (m Memento) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s@v%d{", m.Key, m.Version)
	for i, name := range m.Fields.Names() {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s: %s", name, m.Fields[name].GoString())
	}
	sb.WriteByte('}')
	return sb.String()
}

// ReadProof records that a transaction observed an entity at a given
// version. At commit time the server verifies that the row is still at
// that version (or, for Absent proofs, that it still does not exist).
type ReadProof struct {
	Key     Key
	Version uint64
	// Absent marks a proof that the key did NOT exist when read. The
	// commit must fail if the key has since been created.
	Absent bool
}

// CommitSet carries an entire optimistic transaction to the validator:
// the versions it read, the after-images it wrote, the entities it
// created, and the entities it removed. In the split-servers
// configuration the whole set crosses the high-latency path in a single
// round trip; in the combined-servers configuration each element costs
// its own database access.
type CommitSet struct {
	// Reads are entities accessed but not modified. Each must still be
	// at the recorded version for the transaction to commit.
	Reads []ReadProof
	// Writes are after-images of modified entities. Each carries the
	// version observed at read time; the store bumps it on success.
	Writes []Memento
	// Creates are after-images of entities created by the transaction.
	// Each key must not exist at commit time.
	Creates []Memento
	// Removes are entities deleted by the transaction. Each must still
	// exist at the recorded version.
	Removes []ReadProof
}

// IsEmpty reports whether the commit set carries no work at all.
func (cs CommitSet) IsEmpty() bool {
	return len(cs.Reads) == 0 && len(cs.Writes) == 0 &&
		len(cs.Creates) == 0 && len(cs.Removes) == 0
}

// Mutations counts the elements that modify the persistent store.
func (cs CommitSet) Mutations() int {
	return len(cs.Writes) + len(cs.Creates) + len(cs.Removes)
}

// Size counts every element in the commit set; the combined-servers
// commit path performs roughly this many database accesses.
func (cs CommitSet) Size() int {
	return len(cs.Reads) + cs.Mutations()
}

// TouchedKeys returns the keys of every mutated entity, in a
// deterministic order. The store broadcasts these in commit notices so
// that edge caches can invalidate stale entries.
func (cs CommitSet) TouchedKeys() []Key {
	keys := make([]Key, 0, cs.Mutations())
	for _, m := range cs.Writes {
		keys = append(keys, m.Key)
	}
	for _, m := range cs.Creates {
		keys = append(keys, m.Key)
	}
	for _, r := range cs.Removes {
		keys = append(keys, r.Key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Table != keys[j].Table {
			return keys[i].Table < keys[j].Table
		}
		return keys[i].ID < keys[j].ID
	})
	return keys
}

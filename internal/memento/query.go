package memento

import (
	"fmt"
	"sort"
	"strings"
)

// Op enumerates predicate comparison operators.
type Op int

// Comparison operators supported by predicate queries. These are the
// operators the Trade application's custom finders need (equality plus
// ordered comparisons); they are deliberately a conjunction-only subset
// of SQL so the same predicate can be evaluated by the persistent store
// and by the transient (cached) home.
const (
	OpEq Op = iota + 1
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpPrefix
)

// String returns the operator's SQL-ish spelling.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpPrefix:
		return "LIKE-prefix"
	default:
		return "invalid"
	}
}

// Predicate is one field comparison. A missing field never matches.
type Predicate struct {
	Field string
	Op    Op
	Value Value
}

// Matches evaluates the predicate against a field map.
func (p Predicate) Matches(f Fields) bool {
	v, ok := f[p.Field]
	if !ok {
		return false
	}
	if p.Op == OpPrefix {
		return v.Kind == KindString && p.Value.Kind == KindString &&
			strings.HasPrefix(v.Str, p.Value.Str)
	}
	c := v.Compare(p.Value)
	switch p.Op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	default:
		return false
	}
}

// Query is a predicate query ("custom finder") against one table. All
// predicates must match (conjunction). A zero Limit means unlimited.
// OrderBy, when set, sorts results by that field (ties and missing
// fields fall back to primary-key order); otherwise results are in
// primary-key order.
type Query struct {
	Table   string
	Where   []Predicate
	OrderBy string
	Desc    bool
	Limit   int
}

// Matches reports whether a memento from the query's table satisfies
// every predicate.
func (q Query) Matches(m Memento) bool {
	if m.Key.Table != q.Table {
		return false
	}
	for _, p := range q.Where {
		if !p.Matches(m.Fields) {
			return false
		}
	}
	return true
}

// String renders the query for logs and debugging.
func (q Query) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "SELECT * FROM %s", q.Table)
	for i, p := range q.Where {
		if i == 0 {
			sb.WriteString(" WHERE ")
		} else {
			sb.WriteString(" AND ")
		}
		fmt.Fprintf(&sb, "%s %s %s", p.Field, p.Op, p.Value.GoString())
	}
	if q.OrderBy != "" {
		fmt.Fprintf(&sb, " ORDER BY %s", q.OrderBy)
		if q.Desc {
			sb.WriteString(" DESC")
		}
	}
	if q.Limit > 0 {
		fmt.Fprintf(&sb, " LIMIT %d", q.Limit)
	}
	return sb.String()
}

// Sort orders mementos according to the query: by OrderBy field when
// set (missing fields sort first ascending), breaking ties — and
// ordering entirely when OrderBy is empty — by primary key. Sorting is
// deterministic so that finder results are reproducible across the
// persistent store and the transient home.
func (q Query) Sort(ms []Memento) {
	sort.Slice(ms, func(i, j int) bool {
		if q.OrderBy != "" {
			vi, okI := ms[i].Fields[q.OrderBy]
			vj, okJ := ms[j].Fields[q.OrderBy]
			var c int
			switch {
			case okI && okJ:
				c = vi.Compare(vj)
			case okI:
				c = 1
			case okJ:
				c = -1
			}
			if c != 0 {
				if q.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return ms[i].Key.ID < ms[j].Key.ID
	})
}

// Cap truncates ms to the query's limit, if any.
func (q Query) Cap(ms []Memento) []Memento {
	if q.Limit > 0 && len(ms) > q.Limit {
		return ms[:q.Limit]
	}
	return ms
}

// Where is a convenience constructor for an equality predicate.
func Where(field string, v Value) Predicate {
	return Predicate{Field: field, Op: OpEq, Value: v}
}

// Package memento defines the value-object layer shared by every tier of
// the system: entity keys, typed field values, mementos (serializable
// snapshots of entity-bean state), commit sets, and predicate queries.
//
// The paper's caching framework cannot ship EJBs between address spaces
// (the EJB specification forbids serializing entity beans), so it ships
// "mementos" instead (§2.2): value objects that carry the bean's
// identity and state. The memento captured when a transaction first
// touches a bean is its before-image; the memento captured at commit
// time is its after-image; a CommitSet bundles a whole transaction's
// images for the single-round-trip commit of §3.3. This package is
// deliberately free of any storage or network dependency so that every
// tier (edge server, back-end server, database server) can exchange
// these values.
package memento

package memento

import (
	"strings"
	"testing"
)

func fpRow(id, acct string) Memento {
	return Memento{
		Key:     Key{Table: "holding", ID: id},
		Version: 1,
		Fields:  Fields{"acct": String(acct)},
	}
}

func holdingsBy(acct string) Query {
	return Query{Table: "holding", Where: []Predicate{Where("acct", String(acct))}}
}

func TestFootprintKeyOverlap(t *testing.T) {
	fp := KeyFootprint(Key{Table: "t", ID: "1"})
	fp.AddKey(Key{Table: "t", ID: "1"}) // dedup
	if len(fp.Keys) != 1 {
		t.Fatalf("AddKey did not deduplicate: %v", fp.Keys)
	}
	if !fp.OverlapsWrite(WriteDesc{Key: Key{Table: "t", ID: "1"}}) {
		t.Fatal("write to a read key must overlap")
	}
	if fp.OverlapsWrite(WriteDesc{Key: Key{Table: "t", ID: "2"}}) {
		t.Fatal("write to an unread key in a table without predicate reads must not overlap")
	}
}

func TestFootprintQueryOverlap(t *testing.T) {
	q := holdingsBy("u1")
	fp := QueryFootprint(q, []Memento{fpRow("h1", "u1")})
	if !fp.CoversKey(Key{Table: "holding", ID: "h1"}) {
		t.Fatal("result rows must enter the footprint's key set")
	}

	// A create whose after-image matches the predicate changes the
	// result set even though its key was never read.
	create := WriteDesc{Key: Key{Table: "holding", ID: "h-new"}, After: Fields{"acct": String("u1")}}
	if !fp.OverlapsWrite(create) {
		t.Fatal("matching create must overlap the query footprint")
	}

	// An update that moves a row OUT of the result set matches only via
	// its before-image.
	moveOut := WriteDesc{
		Key:    Key{Table: "holding", ID: "h-other"},
		Before: Fields{"acct": String("u1")},
		After:  Fields{"acct": String("u2")},
	}
	if !fp.OverlapsWrite(moveOut) {
		t.Fatal("update moving a row out of the result set must overlap (before-image)")
	}

	// Unrelated rows in the same table do not overlap.
	other := WriteDesc{
		Key:    Key{Table: "holding", ID: "h-far"},
		Before: Fields{"acct": String("u9")},
		After:  Fields{"acct": String("u9")},
	}
	if fp.OverlapsWrite(other) {
		t.Fatal("non-matching write must not overlap")
	}

	// Same predicate, different table.
	otherTable := WriteDesc{Key: Key{Table: "quote", ID: "s1"}, After: Fields{"acct": String("u1")}}
	if fp.OverlapsWrite(otherTable) {
		t.Fatal("write to a different table must not overlap")
	}

	// Blind writes (no field images) conservatively overlap predicates
	// on the same table.
	blind := WriteDesc{Key: Key{Table: "holding", ID: "h-blind"}}
	if !fp.OverlapsWrite(blind) {
		t.Fatal("blind write on the queried table must overlap conservatively")
	}
}

func TestFootprintMerge(t *testing.T) {
	var fp Footprint
	if !fp.Empty() {
		t.Fatal("zero footprint must be empty")
	}
	fp.Merge(KeyFootprint(Key{Table: "t", ID: "1"}))
	fp.Merge(QueryFootprint(holdingsBy("u1"), nil))
	fp.Merge(QueryFootprint(holdingsBy("u1"), nil)) // dedup by canonical form
	if len(fp.Queries) != 1 {
		t.Fatalf("Merge did not deduplicate queries: %v", fp.Queries)
	}
	if fp.Empty() {
		t.Fatal("merged footprint must not be empty")
	}
	c := fp.Clone()
	c.AddKey(Key{Table: "t", ID: "2"})
	if fp.CoversKey(Key{Table: "t", ID: "2"}) {
		t.Fatal("Clone must not share key storage")
	}
	if !strings.Contains(fp.String(), "t/1") {
		t.Fatalf("String missing key: %s", fp.String())
	}
}

func TestQueryNormalizeAndCacheKey(t *testing.T) {
	a := Query{Table: "t", Where: []Predicate{
		{Field: "b", Op: OpEq, Value: Int(2)},
		{Field: "a", Op: OpEq, Value: Int(1)},
	}}
	b := Query{Table: "t", Where: []Predicate{
		{Field: "a", Op: OpEq, Value: Int(1)},
		{Field: "b", Op: OpEq, Value: Int(2)},
	}}
	if a.CacheKey() != b.CacheKey() {
		t.Fatalf("reordered conjunctions must share a cache key:\n  %s\n  %s", a.CacheKey(), b.CacheKey())
	}
	// Normalize must not mutate the receiver's predicate slice order.
	if a.Where[0].Field != "b" {
		t.Fatal("Normalize mutated the original query")
	}
	limited := a
	limited.Limit = 5
	if a.CacheKey() == limited.CacheKey() {
		t.Fatal("Limit must distinguish cache keys")
	}
}

func TestCommitSetDescribeWrites(t *testing.T) {
	cs := CommitSet{
		Writes:  []Memento{fpRow("h1", "u2")},
		Creates: []Memento{fpRow("h2", "u1")},
		Removes: []ReadProof{{Key: Key{Table: "holding", ID: "h3"}, Version: 4}},
	}
	writes := cs.DescribeWrites()
	if len(writes) != 3 {
		t.Fatalf("got %d write descriptors, want 3", len(writes))
	}
	fp := QueryFootprint(holdingsBy("u1"), nil)
	if !fp.Overlaps(writes) {
		t.Fatal("create matching the predicate must overlap")
	}
	fpOther := QueryFootprint(holdingsBy("u7"), nil)
	// The remove carries no image, so it is blind: conservative overlap.
	if !fpOther.Overlaps(writes) {
		t.Fatal("blind remove must overlap conservatively")
	}
}

package memento

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestKeyString(t *testing.T) {
	k := Key{Table: "account", ID: "uid-7"}
	if got, want := k.String(), "account/uid-7"; got != want {
		t.Errorf("Key.String() = %q, want %q", got, want)
	}
}

func TestValueConstructorsAndKinds(t *testing.T) {
	tests := []struct {
		name string
		give Value
		want Kind
	}{
		{"string", String("x"), KindString},
		{"int", Int(42), KindInt},
		{"float", Float(3.5), KindFloat},
		{"bool", Bool(true), KindBool},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.give.Kind != tt.want {
				t.Errorf("kind = %v, want %v", tt.give.Kind, tt.want)
			}
			if tt.give.IsZero() {
				t.Error("constructed value reported zero")
			}
		})
	}
	var zero Value
	if !zero.IsZero() {
		t.Error("zero value not reported zero")
	}
}

func TestValueCompare(t *testing.T) {
	tests := []struct {
		name string
		a, b Value
		want int
	}{
		{"str lt", String("a"), String("b"), -1},
		{"str eq", String("a"), String("a"), 0},
		{"str gt", String("b"), String("a"), 1},
		{"int lt", Int(1), Int(2), -1},
		{"int eq", Int(2), Int(2), 0},
		{"int gt", Int(3), Int(2), 1},
		{"float lt", Float(1.5), Float(2.5), -1},
		{"float eq", Float(2.5), Float(2.5), 0},
		{"bool lt", Bool(false), Bool(true), -1},
		{"bool eq", Bool(true), Bool(true), 0},
		{"bool gt", Bool(true), Bool(false), 1},
		{"cross-kind", String("z"), Int(1), -1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Compare(tt.b); got != tt.want {
				t.Errorf("Compare = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestValueCompareAntisymmetric(t *testing.T) {
	f := func(a, b Value) bool {
		return a.Compare(b) == -b.Compare(a)
	}
	cfg := &quick.Config{Values: randomValuePair}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// randomValuePair generates two arbitrary Values of arbitrary kinds.
func randomValuePair(args []reflect.Value, rng *rand.Rand) {
	for i := range args {
		args[i] = reflect.ValueOf(randomValue(rng))
	}
}

func randomValue(rng *rand.Rand) Value {
	switch rng.Intn(4) {
	case 0:
		return String(randomString(rng))
	case 1:
		return Int(rng.Int63n(1000) - 500)
	case 2:
		return Float(rng.NormFloat64())
	default:
		return Bool(rng.Intn(2) == 0)
	}
}

func randomString(rng *rand.Rand) string {
	n := rng.Intn(8)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}

func randomMemento(rng *rand.Rand) Memento {
	fields := make(Fields)
	for i, n := 0, rng.Intn(6); i < n; i++ {
		fields[randomString(rng)+"f"] = randomValue(rng)
	}
	return Memento{
		Key:     Key{Table: randomString(rng) + "t", ID: randomString(rng) + "i"},
		Version: uint64(rng.Intn(10)),
		Fields:  fields,
	}
}

func TestFieldsCloneIndependence(t *testing.T) {
	f := Fields{"a": Int(1), "b": String("x")}
	c := f.Clone()
	c["a"] = Int(2)
	if f["a"].Int != 1 {
		t.Error("mutating clone affected original")
	}
	if !f.Equal(Fields{"a": Int(1), "b": String("x")}) {
		t.Error("original changed")
	}
	var nilFields Fields
	if nilFields.Clone() != nil {
		t.Error("nil Fields should clone to nil")
	}
}

func TestFieldsEqual(t *testing.T) {
	tests := []struct {
		name string
		a, b Fields
		want bool
	}{
		{"both empty", Fields{}, Fields{}, true},
		{"nil vs empty", nil, Fields{}, true},
		{"same", Fields{"x": Int(1)}, Fields{"x": Int(1)}, true},
		{"different value", Fields{"x": Int(1)}, Fields{"x": Int(2)}, false},
		{"different key", Fields{"x": Int(1)}, Fields{"y": Int(1)}, false},
		{"subset", Fields{"x": Int(1)}, Fields{"x": Int(1), "y": Int(2)}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Equal(tt.b); got != tt.want {
				t.Errorf("Equal = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestMementoCloneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomMemento(rng)
		c := m.Clone()
		if !m.Equal(c) {
			return false
		}
		// Mutating the clone must not affect the original.
		for k := range c.Fields {
			c.Fields[k] = Int(99999)
			break
		}
		c.Version++
		return m.Equal(m.Clone())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMementoGobRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomMemento(rng)
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(m); err != nil {
			return false
		}
		var out Memento
		if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
			return false
		}
		return m.Equal(out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMementoString(t *testing.T) {
	m := Memento{
		Key:     Key{Table: "quote", ID: "s-1"},
		Version: 3,
		Fields:  Fields{"price": Float(10), "company": String("ACME")},
	}
	got := m.String()
	want := `quote/s-1@v3{company: "ACME", price: 10}`
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestCommitSetAccounting(t *testing.T) {
	var empty CommitSet
	if !empty.IsEmpty() {
		t.Error("zero CommitSet should be empty")
	}
	cs := CommitSet{
		Reads:   []ReadProof{{Key: Key{Table: "a", ID: "1"}, Version: 1}},
		Writes:  []Memento{{Key: Key{Table: "b", ID: "2"}, Version: 1}},
		Creates: []Memento{{Key: Key{Table: "a", ID: "3"}}},
		Removes: []ReadProof{{Key: Key{Table: "c", ID: "4"}, Version: 2}},
	}
	if cs.IsEmpty() {
		t.Error("populated CommitSet reported empty")
	}
	if got, want := cs.Mutations(), 3; got != want {
		t.Errorf("Mutations = %d, want %d", got, want)
	}
	if got, want := cs.Size(), 4; got != want {
		t.Errorf("Size = %d, want %d", got, want)
	}
	keys := cs.TouchedKeys()
	want := []Key{{Table: "a", ID: "3"}, {Table: "b", ID: "2"}, {Table: "c", ID: "4"}}
	if !reflect.DeepEqual(keys, want) {
		t.Errorf("TouchedKeys = %v, want %v", keys, want)
	}
}

func TestKindStrings(t *testing.T) {
	kinds := map[Kind]string{
		KindString: "string", KindInt: "int", KindFloat: "float",
		KindBool: "bool", Kind(0): "invalid",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestValueGoString(t *testing.T) {
	tests := []struct {
		give Value
		want string
	}{
		{String("x"), `"x"`},
		{Int(-3), "-3"},
		{Float(2.5), "2.5"},
		{Bool(true), "true"},
		{Value{}, "<zero>"},
	}
	for _, tt := range tests {
		if got := tt.give.GoString(); got != tt.want {
			t.Errorf("GoString(%v) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

package memento_test

import (
	"fmt"

	"edgeejb/internal/memento"
)

// Example shows the value layer: a memento snapshot of an entity and a
// custom-finder query over its fields.
func Example() {
	holding := memento.Memento{
		Key:     memento.Key{Table: "holding", ID: "h-42"},
		Version: 3,
		Fields: memento.Fields{
			"accountID": memento.String("uid-7"),
			"quantity":  memento.Float(25),
		},
	}

	finder := memento.Query{
		Table: "holding",
		Where: []memento.Predicate{
			memento.Where("accountID", memento.String("uid-7")),
			{Field: "quantity", Op: memento.OpGt, Value: memento.Float(10)},
		},
	}
	fmt.Println(finder)
	fmt.Println("matches:", finder.Matches(holding))
	// Output:
	// SELECT * FROM holding WHERE accountID = "uid-7" AND quantity > 10
	// matches: true
}

// ExampleCommitSet shows the payload an optimistic transaction ships to
// the validator: read proofs plus after-images.
func ExampleCommitSet() {
	cs := memento.CommitSet{
		Reads: []memento.ReadProof{
			{Key: memento.Key{Table: "quote", ID: "s-1"}, Version: 9},
		},
		Writes: []memento.Memento{{
			Key:     memento.Key{Table: "account", ID: "uid-7"},
			Version: 4, // version observed at read time
			Fields:  memento.Fields{"balance": memento.Float(990)},
		}},
	}
	fmt.Println("size:", cs.Size(), "mutations:", cs.Mutations())
	for _, k := range cs.TouchedKeys() {
		fmt.Println("touches:", k)
	}
	// Output:
	// size: 2 mutations: 1
	// touches: account/uid-7
}

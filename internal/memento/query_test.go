package memento

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPredicateMatches(t *testing.T) {
	fields := Fields{
		"name":  String("bravo"),
		"count": Int(5),
		"price": Float(9.5),
		"open":  Bool(true),
	}
	tests := []struct {
		name string
		give Predicate
		want bool
	}{
		{"eq hit", Predicate{"name", OpEq, String("bravo")}, true},
		{"eq miss", Predicate{"name", OpEq, String("alpha")}, false},
		{"ne", Predicate{"name", OpNe, String("alpha")}, true},
		{"lt", Predicate{"count", OpLt, Int(6)}, true},
		{"lt boundary", Predicate{"count", OpLt, Int(5)}, false},
		{"le boundary", Predicate{"count", OpLe, Int(5)}, true},
		{"gt", Predicate{"price", OpGt, Float(9.0)}, true},
		{"ge boundary", Predicate{"price", OpGe, Float(9.5)}, true},
		{"prefix hit", Predicate{"name", OpPrefix, String("bra")}, true},
		{"prefix miss", Predicate{"name", OpPrefix, String("vo")}, false},
		{"prefix non-string", Predicate{"count", OpPrefix, String("5")}, false},
		{"missing field", Predicate{"ghost", OpEq, Int(1)}, false},
		{"bool eq", Predicate{"open", OpEq, Bool(true)}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.give.Matches(fields); got != tt.want {
				t.Errorf("Matches = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestQueryMatchesConjunction(t *testing.T) {
	m := Memento{
		Key:    Key{Table: "holding", ID: "h-1"},
		Fields: Fields{"accountID": String("u1"), "quantity": Float(10)},
	}
	q := Query{
		Table: "holding",
		Where: []Predicate{
			Where("accountID", String("u1")),
			{Field: "quantity", Op: OpGt, Value: Float(5)},
		},
	}
	if !q.Matches(m) {
		t.Error("conjunction should match")
	}
	q.Where[1].Value = Float(50)
	if q.Matches(m) {
		t.Error("failing predicate should fail the conjunction")
	}
	other := m
	other.Key.Table = "quote"
	q.Where[1].Value = Float(5)
	if q.Matches(other) {
		t.Error("wrong table should never match")
	}
}

func TestQueryEmptyWhereMatchesTable(t *testing.T) {
	q := Query{Table: "t"}
	if !q.Matches(Memento{Key: Key{Table: "t", ID: "1"}}) {
		t.Error("empty WHERE should match any row of the table")
	}
}

func TestQueryString(t *testing.T) {
	q := Query{
		Table: "holding",
		Where: []Predicate{Where("accountID", String("u1"))},
		Limit: 5,
	}
	want := `SELECT * FROM holding WHERE accountID = "u1" LIMIT 5`
	if got := q.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// Property: OpEq and OpNe partition the value space.
func TestEqNePartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := randomValue(rng)
		w := randomValue(rng)
		fields := Fields{"f": v}
		eq := Predicate{"f", OpEq, w}.Matches(fields)
		ne := Predicate{"f", OpNe, w}.Matches(fields)
		return eq != ne
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Lt is equivalent to Le-and-Ne for same-kind values.
func TestOrderingConsistencyProperty(t *testing.T) {
	f := func(a, b int64) bool {
		fields := Fields{"f": Int(a)}
		lt := Predicate{"f", OpLt, Int(b)}.Matches(fields)
		le := Predicate{"f", OpLe, Int(b)}.Matches(fields)
		ne := Predicate{"f", OpNe, Int(b)}.Matches(fields)
		return lt == (le && ne)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuerySortAndCap(t *testing.T) {
	rows := []Memento{
		{Key: Key{Table: "t", ID: "c"}, Fields: Fields{"p": Int(2)}},
		{Key: Key{Table: "t", ID: "a"}, Fields: Fields{"p": Int(3)}},
		{Key: Key{Table: "t", ID: "b"}, Fields: Fields{"p": Int(1)}},
		{Key: Key{Table: "t", ID: "d"}}, // missing field sorts first asc
	}
	q := Query{Table: "t", OrderBy: "p"}
	q.Sort(rows)
	gotIDs := []string{rows[0].Key.ID, rows[1].Key.ID, rows[2].Key.ID, rows[3].Key.ID}
	want := []string{"d", "b", "c", "a"}
	for i := range want {
		if gotIDs[i] != want[i] {
			t.Fatalf("ascending order = %v, want %v", gotIDs, want)
		}
	}
	q.Desc = true
	q.Sort(rows)
	if rows[0].Key.ID != "a" || rows[3].Key.ID != "d" {
		t.Fatalf("descending order = %v", rows)
	}
	q.Limit = 2
	capped := q.Cap(rows)
	if len(capped) != 2 {
		t.Fatalf("cap = %d rows", len(capped))
	}
	q.Limit = 0
	if got := q.Cap(rows); len(got) != 4 {
		t.Fatalf("no-limit cap = %d rows", len(got))
	}
}

func TestQuerySortTieBreaksByID(t *testing.T) {
	rows := []Memento{
		{Key: Key{Table: "t", ID: "z"}, Fields: Fields{"p": Int(1)}},
		{Key: Key{Table: "t", ID: "a"}, Fields: Fields{"p": Int(1)}},
	}
	q := Query{Table: "t", OrderBy: "p"}
	q.Sort(rows)
	if rows[0].Key.ID != "a" {
		t.Error("ties not broken by primary key")
	}
}

func TestQueryStringWithOrderBy(t *testing.T) {
	q := Query{Table: "t", OrderBy: "price", Desc: true, Limit: 3}
	want := "SELECT * FROM t ORDER BY price DESC LIMIT 3"
	if got := q.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestOpStrings(t *testing.T) {
	ops := map[Op]string{
		OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=",
		OpGt: ">", OpGe: ">=", OpPrefix: "LIKE-prefix", Op(99): "invalid",
	}
	for op, want := range ops {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
}

package backend

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"edgeejb/internal/memento"
	"edgeejb/internal/sqlstore"
	"edgeejb/internal/storeapi"
)

// gatedConn delays the first Begin until released — it parks the group
// leader inside its first (batch-of-one) apply so the test can pile
// followers into the queue deterministically — and counts grouped
// exchanges with the database tier.
type gatedConn struct {
	storeapi.Conn
	mu         sync.Mutex
	armed      bool
	entered    chan struct{}
	release    chan struct{}
	groupCalls atomic.Int32
}

func (g *gatedConn) Begin(ctx context.Context) (storeapi.Txn, error) {
	g.mu.Lock()
	first := g.armed
	g.armed = false
	g.mu.Unlock()
	if first {
		close(g.entered)
		<-g.release
	}
	return g.Conn.Begin(ctx)
}

func (g *gatedConn) ApplyCommitSets(ctx context.Context, sets []memento.CommitSet) ([]sqlstore.ApplySetResult, error) {
	g.groupCalls.Add(1)
	return g.Conn.ApplyCommitSets(ctx, sets)
}

func queueLen(l *logic) int {
	l.gmu.Lock()
	defer l.gmu.Unlock()
	return len(l.queue)
}

// TestGroupCommitCoalescesWithAttribution drives three concurrent
// commits through the coalescer: the leader parks inside its own
// apply, two more sets queue behind it, and the drained batch must go
// to the database as ONE grouped exchange. Inside that batch the two
// sets race for the same row — the loser's error must be an attributed
// *sqlstore.ConflictError naming the intra-batch winner's transaction,
// exactly as if the sets had arrived serially.
func TestGroupCommitCoalescesWithAttribution(t *testing.T) {
	store := sqlstore.New()
	t.Cleanup(store.Close)
	store.Seed(row("1", 10, 0)) // seeded at version 1
	g := &gatedConn{
		Conn:    storeapi.Local(store),
		armed:   true,
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
	be := NewServer(g)
	l := be.logic
	ctx := context.Background()

	type outcome struct {
		res sqlstore.ApplyResult
		err error
	}
	apply := func(cs memento.CommitSet) chan outcome {
		ch := make(chan outcome, 1)
		go func() {
			res, err := l.ApplyCommitSet(ctx, cs)
			ch <- outcome{res, err}
		}()
		return ch
	}
	waitQueue := func(n int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for queueLen(l) != n {
			if time.Now().After(deadline) {
				t.Fatalf("queue never reached %d entries (at %d)", n, queueLen(l))
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Leader: an independent create; it parks at the gated Begin.
	chA := apply(memento.CommitSet{Creates: []memento.Memento{row("a", 1, 0)}})
	<-g.entered

	// Followers B then C, both claiming row 1 at version 1. B enters
	// the queue first, so B wins and C must lose to B.
	chB := apply(memento.CommitSet{Writes: []memento.Memento{row("1", 11, 1)}})
	waitQueue(1)
	chC := apply(memento.CommitSet{Writes: []memento.Memento{row("1", 12, 1)}})
	waitQueue(2)

	close(g.release)
	a, b, c := <-chA, <-chB, <-chC

	if a.err != nil {
		t.Fatalf("leader set failed: %v", a.err)
	}
	if b.err != nil {
		t.Fatalf("winner set failed: %v", b.err)
	}
	if b.res.NewVersions[key("1")] != 2 {
		t.Errorf("winner NewVersions = %v, want row 1 at 2", b.res.NewVersions)
	}
	var ce *sqlstore.ConflictError
	if !errors.As(c.err, &ce) {
		t.Fatalf("loser error = %v, want *sqlstore.ConflictError", c.err)
	}
	if ce.WinnerTx != b.res.TxID {
		t.Errorf("loser attributes winner tx %d, want %d (the intra-batch winner)",
			ce.WinnerTx, b.res.TxID)
	}
	if ce.Key != key("1") || ce.Expected != 1 || ce.Actual != 2 {
		t.Errorf("conflict detail = %+v", ce)
	}

	if got := g.groupCalls.Load(); got != 1 {
		t.Errorf("database saw %d grouped exchanges, want exactly 1 (the coalesced batch)", got)
	}
	if be.CommitsApplied() != 2 || be.CommitsRejected() != 1 {
		t.Errorf("counters applied=%d rejected=%d, want 2/1",
			be.CommitsApplied(), be.CommitsRejected())
	}

	// Row state must reflect the winner, not the loser.
	res, err := storeapi.Local(store).AutoGet(ctx, "t", "1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Mem.Fields["n"].Int != 11 || res.Mem.Version != 2 {
		t.Errorf("row 1 = %v, want the winner's write at version 2", res.Mem)
	}
}

// TestGroupCommitDisabled pins the opt-out: with WithGroupCommit(false)
// every set takes the classic statement-by-statement path and no
// grouped exchange ever reaches the database.
func TestGroupCommitDisabled(t *testing.T) {
	store := sqlstore.New()
	t.Cleanup(store.Close)
	g := &gatedConn{Conn: storeapi.Local(store)}
	be := NewServer(g, WithGroupCommit(false))
	ctx := context.Background()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		id := string(rune('a' + i))
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := be.logic.ApplyCommitSet(ctx, memento.CommitSet{
				Creates: []memento.Memento{row(id, 1, 0)},
			}); err != nil {
				t.Errorf("apply %s: %v", id, err)
			}
		}()
	}
	wg.Wait()
	if got := g.groupCalls.Load(); got != 0 {
		t.Errorf("grouping disabled but database saw %d grouped exchanges", got)
	}
	if be.CommitsApplied() != 4 {
		t.Errorf("CommitsApplied = %d, want 4", be.CommitsApplied())
	}
}

package backend

import (
	"sync/atomic"

	"edgeejb/internal/obs"
)

// counter is a tiny alias-free wrapper so the logic struct reads well.
type counter struct {
	v atomic.Uint64
}

func (c *counter) Add(n uint64) { c.v.Add(n) }
func (c *counter) Load() uint64 { return c.v.Load() }

// Process-wide obs mirrors of the commit-set validation outcomes,
// summed across every backend logic instance in the process.
var (
	obsCommitsApplied  = obs.Default.Counter("backend.commits_applied")
	obsCommitsRejected = obs.Default.Counter("backend.commits_rejected")
	// obsGroupSize records how many commit sets each group-commit batch
	// coalesced — 1 means no concurrent arrival, larger values are round
	// trips saved. Observed as a count (1 unit = 1 set), not a duration.
	obsGroupSize = obs.Default.Histogram("backend.group_commit_size")
)

package backend

import "sync/atomic"

// counter is a tiny alias-free wrapper so the logic struct reads well.
type counter struct {
	v atomic.Uint64
}

func (c *counter) Add(n uint64) { c.v.Add(n) }
func (c *counter) Load() uint64 { return c.v.Load() }

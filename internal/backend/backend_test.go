package backend

import (
	"context"
	"errors"
	"testing"
	"time"

	"edgeejb/internal/dbwire"
	"edgeejb/internal/memento"
	"edgeejb/internal/sqlstore"
	"edgeejb/internal/storeapi"
)

func key(id string) memento.Key { return memento.Key{Table: "t", ID: id} }

func row(id string, n int64, version uint64) memento.Memento {
	return memento.Memento{
		Key:     key(id),
		Version: version,
		Fields:  memento.Fields{"n": memento.Int(n)},
	}
}

// newStack builds dbserver <- backend <- edge client, all over real TCP.
func newStack(t *testing.T) (*sqlstore.Store, *Server, *dbwire.Client) {
	t.Helper()
	store := sqlstore.New()
	dbSrv := dbwire.NewServer(storeapi.Local(store))
	if err := dbSrv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	dbClient := dbwire.Dial(dbSrv.Addr())
	be := NewServer(dbClient)
	if err := be.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	edge := dbwire.Dial(be.Addr())
	t.Cleanup(func() {
		_ = edge.Close()
		be.Close()
		_ = dbClient.Close()
		dbSrv.Close()
		store.Close()
	})
	return store, be, edge
}

func TestBackendServesCacheMisses(t *testing.T) {
	store, _, edge := newStack(t)
	store.Seed(row("1", 10, 0))
	ctx := context.Background()

	res, err := edge.AutoGet(ctx, "t", "1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Mem.Fields["n"].Int != 10 || res.Mem.Version != 1 {
		t.Errorf("AutoGet = %v", res.Mem)
	}
	if !res.FP.CoversKey(memento.Key{Table: "t", ID: "1"}) {
		t.Errorf("AutoGet footprint %v does not cover the key", res.FP)
	}
	qres, err := edge.AutoQuery(ctx, memento.Query{Table: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if len(qres.Mems) != 1 {
		t.Errorf("AutoQuery rows = %d, want 1", len(qres.Mems))
	}
	if len(qres.FP.Queries) != 1 {
		t.Errorf("AutoQuery footprint %v carries no query descriptor", qres.FP)
	}
}

func TestBackendCommitIsOneEdgeRoundTrip(t *testing.T) {
	store, be, edge := newStack(t)
	store.Seed(row("1", 10, 0))
	ctx := context.Background()
	if err := edge.Ping(ctx); err != nil {
		t.Fatal(err)
	}

	before := edge.RoundTrips()
	res, err := edge.ApplyCommitSet(ctx, memento.CommitSet{
		Reads:   []memento.ReadProof{{Key: key("1"), Version: 1}},
		Creates: []memento.Memento{row("2", 5, 0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := edge.RoundTrips() - before; got != 1 {
		t.Errorf("commit cost %d edge round trips, want exactly 1", got)
	}
	if res.NewVersions[key("2")] != 1 {
		t.Errorf("NewVersions = %v", res.NewVersions)
	}
	if be.CommitsApplied() != 1 {
		t.Errorf("CommitsApplied = %d, want 1", be.CommitsApplied())
	}
	if v, _ := store.CurrentVersion(key("2")); v != 1 {
		t.Error("create not applied at the database")
	}
}

func TestBackendRejectsConflicts(t *testing.T) {
	store, be, edge := newStack(t)
	store.Seed(row("1", 10, 0))
	ctx := context.Background()

	tests := []struct {
		name string
		cs   memento.CommitSet
	}{
		{"stale read", memento.CommitSet{
			Reads: []memento.ReadProof{{Key: key("1"), Version: 9}},
		}},
		{"stale write", memento.CommitSet{
			Writes: []memento.Memento{row("1", 11, 9)},
		}},
		{"create over existing", memento.CommitSet{
			Creates: []memento.Memento{row("1", 0, 0)},
		}},
		{"remove missing", memento.CommitSet{
			Removes: []memento.ReadProof{{Key: key("gone"), Version: 1}},
		}},
		{"remove never persisted", memento.CommitSet{
			Removes: []memento.ReadProof{{Key: key("1"), Version: 0}},
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := edge.ApplyCommitSet(ctx, tt.cs); !errors.Is(err, sqlstore.ErrConflict) {
				t.Fatalf("got %v, want ErrConflict", err)
			}
		})
	}
	if be.CommitsRejected() != uint64(len(tests)) {
		t.Errorf("CommitsRejected = %d, want %d", be.CommitsRejected(), len(tests))
	}
	if v, _ := store.CurrentVersion(key("1")); v != 1 {
		t.Error("store changed by rejected commits")
	}
}

func TestBackendForwardsInvalidationStream(t *testing.T) {
	store, _, edge := newStack(t)
	store.Seed(row("1", 10, 0))
	ctx := context.Background()

	ch, cancel, err := edge.Subscribe(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	res, err := edge.ApplyCommitSet(ctx, memento.CommitSet{
		Writes: []memento.Memento{row("1", 11, 1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-ch:
		if n.TxID != res.TxID {
			t.Errorf("notice tx = %d, want %d (ids must be stable across tiers)", n.TxID, res.TxID)
		}
		if len(n.Keys) != 1 || n.Keys[0] != key("1") {
			t.Errorf("notice keys = %v", n.Keys)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("invalidation not forwarded through the back-end")
	}
}

func TestBackendDrivesDatabasePerStatement(t *testing.T) {
	// The back-end must expand a commit set into per-statement database
	// work ("the back-end server will, in turn, perform multiple
	// accesses to the database server", §4.4).
	store := sqlstore.New()
	defer store.Close()
	store.Seed(row("a", 1, 0), row("b", 1, 0))
	counting := storeapi.NewCountingConn(storeapi.Local(store))
	be := NewServer(counting)
	if err := be.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	edge := dbwire.Dial(be.Addr())
	defer edge.Close()
	ctx := context.Background()

	before := counting.Ops()
	if _, err := edge.ApplyCommitSet(ctx, memento.CommitSet{
		Reads:  []memento.ReadProof{{Key: key("a"), Version: 1}},
		Writes: []memento.Memento{row("b", 2, 1)},
	}); err != nil {
		t.Fatal(err)
	}
	// begin + CheckVersion + CheckedPut + commit = 4 database accesses.
	if got := counting.Ops() - before; got != 4 {
		t.Errorf("back-end drove %d database statements, want 4", got)
	}
}

// Package backend implements the back-end application server of the
// split-servers configuration (§2.4, Figure 1): a process deployed next
// to the database that hosts the cache-miss and optimistic-commit logic
// on behalf of cache-enhanced edge application servers.
//
// The edge servers talk to the back-end over the dbwire protocol across
// the high-latency path: one round trip for a cache-miss fetch, one
// round trip for a finder query, and — crucially — one round trip for an
// entire transaction commit (ApplyCommitSet). The back-end then performs
// the per-image validation work against the database server over its
// low-latency path, statement by statement, exactly as the paper
// describes: "the back-end server will, in turn, perform multiple
// accesses to the database server. However, these occur over a
// low-latency path" (§4.4).
//
// Whole-set validation is timed as a "backend.apply" trace span and
// counted by backend.commits_applied / backend.commits_rejected (see
// OBSERVABILITY.md).
package backend

package backend

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"edgeejb/internal/dbwire"
	"edgeejb/internal/memento"
	"edgeejb/internal/obs"
	"edgeejb/internal/sqlstore"
	"edgeejb/internal/storeapi"
	"edgeejb/internal/wire"
)

// Server is the back-end application server. It serves the dbwire
// protocol (so edge servers use the ordinary dbwire.Client against it)
// over a logic layer that expands whole commit sets into per-statement
// database work.
type Server struct {
	inner *dbwire.Server
	logic *logic
}

// Option configures a Server.
type Option func(*logic)

// WithGroupCommit toggles commit-set coalescing (default on): commit
// sets that arrive while another is being applied are queued and
// applied as one grouped exchange with the database tier — one
// round trip and one invalidation fan-out for the whole batch instead
// of one each. Per-set outcomes (including conflict attribution) are
// unchanged; only the round-trip economics differ.
func WithGroupCommit(on bool) Option { return func(l *logic) { l.noGroup = !on } }

// NewServer builds a back-end server over its (low-latency) handle to
// the database tier. Call Start/Close as with dbwire.Server.
func NewServer(db storeapi.Conn, opts ...Option) *Server {
	l := &logic{db: db}
	for _, o := range opts {
		o(l)
	}
	return &Server{inner: dbwire.NewServer(l), logic: l}
}

// Start listens on addr and serves in the background.
func (s *Server) Start(addr string) error { return s.inner.Start(addr) }

// Addr returns the listen address.
func (s *Server) Addr() string { return s.inner.Addr() }

// Close shuts the server down. It does not close the database handle.
func (s *Server) Close() { s.inner.Close() }

// CommitsApplied returns the number of commit sets validated and
// applied successfully.
func (s *Server) CommitsApplied() uint64 { return s.logic.applied.Load() }

// CommitsRejected returns the number of commit sets rejected with a
// conflict.
func (s *Server) CommitsRejected() uint64 { return s.logic.rejected.Load() }

// logic is the storeapi.Conn the embedded dbwire server dispatches to.
// Reads, queries and pessimistic transactions pass straight through to
// the database handle; ApplyCommitSet is replaced by the split-servers
// commit logic.
type logic struct {
	db      storeapi.Conn
	noGroup bool

	applied  counter
	rejected counter

	// Group-commit state: arrivals append to queue; the first arrival
	// with no leader becomes the leader and drains the queue in grouped
	// batches until it is empty.
	gmu    sync.Mutex
	queue  []*groupEntry
	leader bool
}

// groupEntry is one queued commit set awaiting the group leader.
type groupEntry struct {
	cs   memento.CommitSet
	done chan struct{}
	res  sqlstore.ApplyResult
	err  error
}

var _ storeapi.Conn = (*logic)(nil)

func (l *logic) Begin(ctx context.Context) (storeapi.Txn, error) { return l.db.Begin(ctx) }

func (l *logic) AutoGet(ctx context.Context, table, id string) (storeapi.GetResult, error) {
	return l.db.AutoGet(ctx, table, id)
}

func (l *logic) AutoQuery(ctx context.Context, q memento.Query) (storeapi.QueryResult, error) {
	return l.db.AutoQuery(ctx, q)
}

func (l *logic) Subscribe(ctx context.Context) (<-chan sqlstore.Notice, func(), error) {
	return l.db.Subscribe(ctx)
}

func (l *logic) Close() error { return nil }

// beginRetry opens a database transaction, retrying transient failures
// (a database server restarting under the back-end) under a short
// jittered backoff. Conflicts and context cancellation are surfaced
// immediately — only transport-level begin failures are worth waiting
// out, and the edge's own retry budget bounds the total wait.
func (l *logic) beginRetry(ctx context.Context) (storeapi.Txn, error) {
	backoff := wire.Backoff{Base: 10 * time.Millisecond, Max: 250 * time.Millisecond, Jitter: 0.5}
	const attempts = 3
	for i := 0; ; i++ {
		txn, err := l.db.Begin(ctx)
		if err == nil {
			return txn, nil
		}
		if errors.Is(err, sqlstore.ErrConflict) || ctx.Err() != nil || i+1 >= attempts {
			return nil, err
		}
		if !backoff.Sleep(i, ctx.Done()) {
			return nil, err
		}
	}
}

// ApplyCommitSet validates and applies a whole commit set. Under group
// commit (the default) concurrently arriving sets coalesce: the first
// arrival becomes the batch leader and drains the queue, applying each
// batch through one grouped database exchange and one invalidation
// fan-out; later arrivals just wait for their own result. A batch of
// one takes the classic statement-by-statement path, so serial traffic
// renders the exact per-statement span waterfall of Figure 7.
func (l *logic) ApplyCommitSet(ctx context.Context, cs memento.CommitSet) (sqlstore.ApplyResult, error) {
	if l.noGroup {
		obsGroupSize.Observe(1)
		return l.applyOne(ctx, cs)
	}
	e := &groupEntry{cs: cs, done: make(chan struct{})}
	l.gmu.Lock()
	l.queue = append(l.queue, e)
	if l.leader {
		// A leader is already draining; it will carry this entry.
		l.gmu.Unlock()
		select {
		case <-e.done:
			return e.res, e.err
		case <-ctx.Done():
			// The set still applies server-side (the leader runs detached
			// from follower contexts); only this wait is abandoned.
			return sqlstore.ApplyResult{}, ctx.Err()
		}
	}
	l.leader = true
	l.gmu.Unlock()
	// Drain until empty. Later batches carry other transactions' sets,
	// so they run detached from this caller's cancellation.
	for {
		l.gmu.Lock()
		batch := l.queue
		l.queue = nil
		if len(batch) == 0 {
			l.leader = false
			l.gmu.Unlock()
			break
		}
		l.gmu.Unlock()
		l.runBatch(context.WithoutCancel(ctx), batch)
	}
	<-e.done // the leader's own entry was in some drained batch
	return e.res, e.err
}

// runBatch applies one coalesced batch and resolves its entries.
func (l *logic) runBatch(ctx context.Context, batch []*groupEntry) {
	obsGroupSize.Observe(time.Duration(len(batch)))
	if len(batch) == 1 {
		e := batch[0]
		e.res, e.err = l.applyOne(ctx, e.cs)
		close(e.done)
		return
	}
	gctx, sp := obs.StartSpan(ctx, "backend.apply_group")
	sets := make([]memento.CommitSet, len(batch))
	for i, e := range batch {
		sets[i] = e.cs
	}
	results, err := l.db.ApplyCommitSets(gctx, sets)
	sp.End()
	if err == nil && len(results) != len(batch) {
		err = fmt.Errorf("backend: group commit: %d results for %d sets", len(results), len(batch))
	}
	if err != nil {
		// Whole-group transport failure: neither applied nor rejected.
		for _, e := range batch {
			e.err = err
			close(e.done)
		}
		return
	}
	for i, e := range batch {
		if results[i].Err != nil {
			e.err = results[i].Err
			l.rejected.Add(1)
			obsCommitsRejected.Inc()
		} else {
			e.res = results[i].Res
			l.applied.Add(1)
			obsCommitsApplied.Inc()
		}
		close(e.done)
	}
}

// ApplyCommitSets forwards a grouped apply straight to the database
// handle — one exchange end to end when a downstream backend (or the
// store itself) is on the other side — keeping per-set counters.
func (l *logic) ApplyCommitSets(ctx context.Context, sets []memento.CommitSet) ([]sqlstore.ApplySetResult, error) {
	results, err := l.db.ApplyCommitSets(ctx, sets)
	if err != nil {
		return nil, err
	}
	for i := range results {
		if results[i].Err != nil {
			l.rejected.Add(1)
			obsCommitsRejected.Inc()
		} else {
			l.applied.Add(1)
			obsCommitsApplied.Inc()
		}
	}
	return results, nil
}

// Prepare relays 2PC's first phase to the database tier, counting the
// outcome like any other commit-set validation. A database handle
// without prepare support fails the relay with an error, which the
// coordinator treats as a no vote and aborts the global transaction —
// the same safe outcome as an old backend binary's "unknown op".
func (l *logic) Prepare(ctx context.Context, gid string, cs memento.CommitSet) error {
	ctx, sp := obs.StartSpan(ctx, "backend.prepare")
	defer sp.End()
	p, ok := l.db.(storeapi.Preparer)
	if !ok {
		return fmt.Errorf("backend: database handle does not support prepare")
	}
	if err := p.Prepare(ctx, gid, cs); err != nil {
		l.rejected.Add(1)
		obsCommitsRejected.Inc()
		return err
	}
	return nil
}

// CommitPrepared relays 2PC's commit decision to the database tier.
func (l *logic) CommitPrepared(ctx context.Context, gid string) (sqlstore.ApplyResult, error) {
	ctx, sp := obs.StartSpan(ctx, "backend.commit_prepared")
	defer sp.End()
	p, ok := l.db.(storeapi.Preparer)
	if !ok {
		return sqlstore.ApplyResult{}, fmt.Errorf("backend: database handle does not support prepare")
	}
	res, err := p.CommitPrepared(ctx, gid)
	if err != nil {
		return sqlstore.ApplyResult{}, err
	}
	l.applied.Add(1)
	obsCommitsApplied.Inc()
	return res, nil
}

// AbortPrepared relays 2PC's abort decision to the database tier.
func (l *logic) AbortPrepared(ctx context.Context, gid string) error {
	ctx, sp := obs.StartSpan(ctx, "backend.abort_prepared")
	defer sp.End()
	p, ok := l.db.(storeapi.Preparer)
	if !ok {
		return fmt.Errorf("backend: database handle does not support prepare")
	}
	return p.AbortPrepared(ctx, gid)
}

// applyOne validates and applies a whole commit set by driving the
// database statement-by-statement over the low-latency path.
func (l *logic) applyOne(ctx context.Context, cs memento.CommitSet) (sqlstore.ApplyResult, error) {
	ctx, sp := obs.StartSpan(ctx, "backend.apply")
	defer sp.End()
	txn, err := l.beginRetry(ctx)
	if err != nil {
		return sqlstore.ApplyResult{}, fmt.Errorf("backend: begin: %w", err)
	}
	abort := func(err error) (sqlstore.ApplyResult, error) {
		_ = txn.Abort(ctx)
		l.rejected.Add(1)
		obsCommitsRejected.Inc()
		return sqlstore.ApplyResult{}, err
	}
	for _, r := range cs.Reads {
		want := r.Version
		if r.Absent {
			want = 0
		}
		if err := txn.CheckVersion(ctx, r.Key, want); err != nil {
			return abort(err)
		}
	}
	newVersions := make(map[memento.Key]uint64, len(cs.Writes)+len(cs.Creates))
	for _, w := range cs.Writes {
		if err := txn.CheckedPut(ctx, w); err != nil {
			return abort(err)
		}
		newVersions[w.Key] = w.Version + 1
	}
	for _, c := range cs.Creates {
		create := c
		create.Version = 0
		if err := txn.CheckedPut(ctx, create); err != nil {
			return abort(err)
		}
		newVersions[c.Key] = 1
	}
	for _, r := range cs.Removes {
		if r.Version == 0 {
			return abort(fmt.Errorf("%w: remove of never-persisted %s", sqlstore.ErrConflict, r.Key))
		}
		if err := txn.CheckedDelete(ctx, r.Key, r.Version); err != nil {
			return abort(err)
		}
	}
	if err := txn.Commit(ctx); err != nil {
		l.rejected.Add(1)
		obsCommitsRejected.Inc()
		return sqlstore.ApplyResult{}, err
	}
	l.applied.Add(1)
	obsCommitsApplied.Inc()
	return sqlstore.ApplyResult{TxID: txn.ID(), NewVersions: newVersions}, nil
}

package backend

import (
	"context"
	"errors"
	"fmt"
	"time"

	"edgeejb/internal/dbwire"
	"edgeejb/internal/memento"
	"edgeejb/internal/obs"
	"edgeejb/internal/sqlstore"
	"edgeejb/internal/storeapi"
	"edgeejb/internal/wire"
)

// Server is the back-end application server. It serves the dbwire
// protocol (so edge servers use the ordinary dbwire.Client against it)
// over a logic layer that expands whole commit sets into per-statement
// database work.
type Server struct {
	inner *dbwire.Server
	logic *logic
}

// NewServer builds a back-end server over its (low-latency) handle to
// the database tier. Call Start/Close as with dbwire.Server.
func NewServer(db storeapi.Conn) *Server {
	l := &logic{db: db}
	return &Server{inner: dbwire.NewServer(l), logic: l}
}

// Start listens on addr and serves in the background.
func (s *Server) Start(addr string) error { return s.inner.Start(addr) }

// Addr returns the listen address.
func (s *Server) Addr() string { return s.inner.Addr() }

// Close shuts the server down. It does not close the database handle.
func (s *Server) Close() { s.inner.Close() }

// CommitsApplied returns the number of commit sets validated and
// applied successfully.
func (s *Server) CommitsApplied() uint64 { return s.logic.applied.Load() }

// CommitsRejected returns the number of commit sets rejected with a
// conflict.
func (s *Server) CommitsRejected() uint64 { return s.logic.rejected.Load() }

// logic is the storeapi.Conn the embedded dbwire server dispatches to.
// Reads, queries and pessimistic transactions pass straight through to
// the database handle; ApplyCommitSet is replaced by the split-servers
// commit logic.
type logic struct {
	db storeapi.Conn

	applied  counter
	rejected counter
}

var _ storeapi.Conn = (*logic)(nil)

func (l *logic) Begin(ctx context.Context) (storeapi.Txn, error) { return l.db.Begin(ctx) }

func (l *logic) AutoGet(ctx context.Context, table, id string) (storeapi.GetResult, error) {
	return l.db.AutoGet(ctx, table, id)
}

func (l *logic) AutoQuery(ctx context.Context, q memento.Query) (storeapi.QueryResult, error) {
	return l.db.AutoQuery(ctx, q)
}

func (l *logic) Subscribe(ctx context.Context) (<-chan sqlstore.Notice, func(), error) {
	return l.db.Subscribe(ctx)
}

func (l *logic) Close() error { return nil }

// beginRetry opens a database transaction, retrying transient failures
// (a database server restarting under the back-end) under a short
// jittered backoff. Conflicts and context cancellation are surfaced
// immediately — only transport-level begin failures are worth waiting
// out, and the edge's own retry budget bounds the total wait.
func (l *logic) beginRetry(ctx context.Context) (storeapi.Txn, error) {
	backoff := wire.Backoff{Base: 10 * time.Millisecond, Max: 250 * time.Millisecond, Jitter: 0.5}
	const attempts = 3
	for i := 0; ; i++ {
		txn, err := l.db.Begin(ctx)
		if err == nil {
			return txn, nil
		}
		if errors.Is(err, sqlstore.ErrConflict) || ctx.Err() != nil || i+1 >= attempts {
			return nil, err
		}
		if !backoff.Sleep(i, ctx.Done()) {
			return nil, err
		}
	}
}

// ApplyCommitSet validates and applies a whole commit set by driving the
// database statement-by-statement over the low-latency path.
func (l *logic) ApplyCommitSet(ctx context.Context, cs memento.CommitSet) (sqlstore.ApplyResult, error) {
	ctx, sp := obs.StartSpan(ctx, "backend.apply")
	defer sp.End()
	txn, err := l.beginRetry(ctx)
	if err != nil {
		return sqlstore.ApplyResult{}, fmt.Errorf("backend: begin: %w", err)
	}
	abort := func(err error) (sqlstore.ApplyResult, error) {
		_ = txn.Abort(ctx)
		l.rejected.Add(1)
		obsCommitsRejected.Inc()
		return sqlstore.ApplyResult{}, err
	}
	for _, r := range cs.Reads {
		want := r.Version
		if r.Absent {
			want = 0
		}
		if err := txn.CheckVersion(ctx, r.Key, want); err != nil {
			return abort(err)
		}
	}
	newVersions := make(map[memento.Key]uint64, len(cs.Writes)+len(cs.Creates))
	for _, w := range cs.Writes {
		if err := txn.CheckedPut(ctx, w); err != nil {
			return abort(err)
		}
		newVersions[w.Key] = w.Version + 1
	}
	for _, c := range cs.Creates {
		create := c
		create.Version = 0
		if err := txn.CheckedPut(ctx, create); err != nil {
			return abort(err)
		}
		newVersions[c.Key] = 1
	}
	for _, r := range cs.Removes {
		if r.Version == 0 {
			return abort(fmt.Errorf("%w: remove of never-persisted %s", sqlstore.ErrConflict, r.Key))
		}
		if err := txn.CheckedDelete(ctx, r.Key, r.Version); err != nil {
			return abort(err)
		}
	}
	if err := txn.Commit(ctx); err != nil {
		l.rejected.Add(1)
		obsCommitsRejected.Inc()
		return sqlstore.ApplyResult{}, err
	}
	l.applied.Add(1)
	obsCommitsApplied.Inc()
	return sqlstore.ApplyResult{TxID: txn.ID(), NewVersions: newVersions}, nil
}

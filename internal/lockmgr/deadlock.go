package lockmgr

import "errors"

// ErrDeadlock is returned to a requester whose wait would close a cycle
// in the waits-for graph. The requester is chosen as the victim (it
// holds the fewest resources invested in the cycle's formation at that
// instant and is already positioned to abort), mirroring the
// immediate-restart policy common in lock managers. Timeout-based
// resolution (ErrTimeout) remains as a backstop for waits the graph
// cannot see, such as cross-store dependencies.
var ErrDeadlock = errors.New("lockmgr: deadlock detected")

// wouldDeadlock reports whether owner blocking on res (with the given
// effective mode) would create a cycle in the waits-for graph. Called
// with m.mu held, before the request is enqueued.
//
// Edges: a waiter waits for (a) every current holder whose mode is
// incompatible with the waiter's requested mode, and (b) every waiter
// queued ahead of it on the same resource with an incompatible mode —
// FIFO granting means those waiters will be granted first.
func (m *Manager) wouldDeadlock(owner Owner, res Resource, mode Mode) bool {
	// start set: the owners this new wait would block on.
	blockers := m.blockersFor(owner, res, mode, len(m.locks[res].waiters))
	if len(blockers) == 0 {
		return false
	}
	// DFS over the waits-for graph looking for a path back to owner.
	seen := make(map[Owner]bool)
	stack := blockers
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == owner {
			return true
		}
		if seen[cur] {
			continue
		}
		seen[cur] = true
		stack = append(stack, m.waitsFor(cur)...)
	}
	return false
}

// waitsFor returns the owners that owner currently waits on, derived
// from the lock table. Called with m.mu held.
func (m *Manager) waitsFor(owner Owner) []Owner {
	var out []Owner
	for res, st := range m.locks {
		for pos, w := range st.waiters {
			if w.owner != owner {
				continue
			}
			out = append(out, m.blockersFor(owner, res, w.mode, pos)...)
		}
	}
	return out
}

// blockersFor lists the distinct owners that block a request by owner
// for mode on res, considering holders and the first queuePos waiters.
// Called with m.mu held.
func (m *Manager) blockersFor(owner Owner, res Resource, mode Mode, queuePos int) []Owner {
	st := m.locks[res]
	if st == nil {
		return nil
	}
	seen := make(map[Owner]bool)
	var out []Owner
	add := func(o Owner) {
		if o != owner && !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	for holder, hm := range st.holders {
		if holder == owner {
			continue
		}
		if !Compatible(mode, hm) {
			add(holder)
		}
	}
	for i := 0; i < queuePos && i < len(st.waiters); i++ {
		w := st.waiters[i]
		if w.owner == owner {
			continue
		}
		if !Compatible(mode, w.mode) {
			add(w.owner)
		}
	}
	return out
}

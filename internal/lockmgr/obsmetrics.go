package lockmgr

import "edgeejb/internal/obs"

// Process-wide obs mirrors of lock-manager activity, summed across every
// Manager in the process. obsWait records only the blocking waits — the
// queue time of requests that could not be granted immediately — so its
// count matches lockmgr.waits, not lockmgr.acquires. Names are
// documented in OBSERVABILITY.md.
var (
	obsAcquires  = obs.Default.Counter("lockmgr.acquires")
	obsWaits     = obs.Default.Counter("lockmgr.waits")
	obsTimeouts  = obs.Default.Counter("lockmgr.timeouts")
	obsDeadlocks = obs.Default.Counter("lockmgr.deadlocks")
	obsWait      = obs.Default.Histogram("lockmgr.wait")
)

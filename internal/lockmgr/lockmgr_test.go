package lockmgr

import (
	"context"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCompatibilityMatrix(t *testing.T) {
	modes := []Mode{Shared, IntentExclusive, SharedIntentExclusive, Exclusive}
	want := map[[2]Mode]bool{
		{Shared, Shared}:                   true,
		{IntentExclusive, IntentExclusive}: true,
	}
	for _, a := range modes {
		for _, b := range modes {
			expect := want[[2]Mode{a, b}] || want[[2]Mode{b, a}]
			if got := Compatible(a, b); got != expect {
				t.Errorf("Compatible(%v, %v) = %v, want %v", a, b, got, expect)
			}
		}
	}
}

func TestJoinLattice(t *testing.T) {
	tests := []struct {
		a, b, want Mode
	}{
		{Shared, Shared, Shared},
		{Shared, IntentExclusive, SharedIntentExclusive},
		{IntentExclusive, Shared, SharedIntentExclusive},
		{Shared, Exclusive, Exclusive},
		{SharedIntentExclusive, IntentExclusive, SharedIntentExclusive},
		{SharedIntentExclusive, Exclusive, Exclusive},
		{0, Shared, Shared},
		{IntentExclusive, 0, IntentExclusive},
	}
	for _, tt := range tests {
		if got := Join(tt.a, tt.b); got != tt.want {
			t.Errorf("Join(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

// Property: Join is commutative, idempotent, and Covers(Join(a,b), a).
func TestJoinProperties(t *testing.T) {
	f := func(ai, bi uint8) bool {
		a := Mode(ai%4) + Shared
		b := Mode(bi%4) + Shared
		j := Join(a, b)
		return j == Join(b, a) && Join(a, a) == a && Covers(j, a) && Covers(j, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSharedLocksCoexist(t *testing.T) {
	m := New()
	ctx := context.Background()
	if err := m.Acquire(ctx, 1, "r", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(ctx, 2, "r", Shared); err != nil {
		t.Fatalf("second shared lock should not block: %v", err)
	}
	if !m.Holds(1, "r", Shared) || !m.Holds(2, "r", Shared) {
		t.Error("holders not recorded")
	}
}

func TestExclusiveBlocksOthers(t *testing.T) {
	m := New(WithTimeout(50 * time.Millisecond))
	ctx := context.Background()
	if err := m.Acquire(ctx, 1, "r", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(ctx, 2, "r", Shared); !errors.Is(err, ErrTimeout) {
		t.Fatalf("expected timeout, got %v", err)
	}
	m.Release(1, "r")
	if err := m.Acquire(ctx, 2, "r", Shared); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func TestReacquireIsNoop(t *testing.T) {
	m := New()
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := m.Acquire(ctx, 1, "r", Exclusive); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.HeldCount(1); got != 1 {
		t.Errorf("HeldCount = %d, want 1", got)
	}
	// X covers S.
	if err := m.Acquire(ctx, 1, "r", Shared); err != nil {
		t.Fatalf("downgrade request should be covered: %v", err)
	}
	if !m.Holds(1, "r", Exclusive) {
		t.Error("exclusive lock lost after covered request")
	}
}

func TestUpgradeWhenSoleHolder(t *testing.T) {
	m := New()
	ctx := context.Background()
	if err := m.Acquire(ctx, 1, "r", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(ctx, 1, "r", Exclusive); err != nil {
		t.Fatalf("sole-holder upgrade should be immediate: %v", err)
	}
	if !m.Holds(1, "r", Exclusive) {
		t.Error("upgrade not recorded")
	}
}

func TestUpgradeWaitsForOtherReaders(t *testing.T) {
	m := New()
	ctx := context.Background()
	if err := m.Acquire(ctx, 1, "r", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(ctx, 2, "r", Shared); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Acquire(ctx, 1, "r", Exclusive) }()
	select {
	case err := <-done:
		t.Fatalf("upgrade granted while another reader holds: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	m.Release(2, "r")
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("upgrade after release: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("upgrade never granted")
	}
	if !m.Holds(1, "r", Exclusive) {
		t.Error("upgrade not recorded")
	}
}

func TestUpgradeDeadlockResolvesByTimeout(t *testing.T) {
	m := New(WithTimeout(60 * time.Millisecond))
	ctx := context.Background()
	if err := m.Acquire(ctx, 1, "r", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(ctx, 2, "r", Shared); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, owner := range []Owner{1, 2} {
		i, owner := i, owner
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = m.Acquire(ctx, owner, "r", Exclusive)
		}()
	}
	wg.Wait()
	timeouts := 0
	for _, err := range errs {
		if errors.Is(err, ErrTimeout) {
			timeouts++
		}
	}
	if timeouts == 0 {
		t.Errorf("expected at least one upgrade to time out, got %v", errs)
	}
}

func TestFIFOOrderingNoStarvation(t *testing.T) {
	m := New()
	ctx := context.Background()
	if err := m.Acquire(ctx, 1, "r", Exclusive); err != nil {
		t.Fatal(err)
	}
	// Writer 2 queues first, then reader 3. Reader 3 must not jump the
	// queued writer.
	got := make(chan Owner, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := m.Acquire(ctx, 2, "r", Exclusive); err == nil {
			got <- 2
			m.Release(2, "r")
		}
	}()
	time.Sleep(20 * time.Millisecond) // let writer 2 enqueue
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := m.Acquire(ctx, 3, "r", Shared); err == nil {
			got <- 3
		}
	}()
	time.Sleep(20 * time.Millisecond)
	m.Release(1, "r")
	wg.Wait()
	first := <-got
	if first != 2 {
		t.Errorf("queued writer should be granted before later reader; first = %d", first)
	}
}

func TestContextCancellation(t *testing.T) {
	m := New(WithTimeout(10 * time.Second))
	bg := context.Background()
	if err := m.Acquire(bg, 1, "r", Exclusive); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(bg)
	done := make(chan error, 1)
	go func() { done <- m.Acquire(ctx, 2, "r", Shared) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("expected context.Canceled, got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled Acquire never returned")
	}
	// The abandoned waiter must not block later grants.
	m.Release(1, "r")
	if err := m.Acquire(bg, 3, "r", Exclusive); err != nil {
		t.Fatalf("lock leaked after abandoned waiter: %v", err)
	}
}

func TestReleaseAll(t *testing.T) {
	m := New()
	ctx := context.Background()
	for _, res := range []string{"a", "b", "c"} {
		if err := m.Acquire(ctx, 1, res, Exclusive); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.HeldCount(1); got != 3 {
		t.Fatalf("HeldCount = %d, want 3", got)
	}
	m.ReleaseAll(1)
	if got := m.HeldCount(1); got != 0 {
		t.Fatalf("HeldCount after ReleaseAll = %d, want 0", got)
	}
	for _, res := range []string{"a", "b", "c"} {
		if err := m.Acquire(ctx, 2, res, Exclusive); err != nil {
			t.Fatalf("resource %s still locked: %v", res, err)
		}
	}
}

func TestIntentExclusiveBlocksTableShared(t *testing.T) {
	m := New(WithTimeout(40 * time.Millisecond))
	ctx := context.Background()
	if err := m.Acquire(ctx, 1, "table", IntentExclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(ctx, 2, "table", Shared); !errors.Is(err, ErrTimeout) {
		t.Fatalf("table S must wait for IX holder, got %v", err)
	}
	if err := m.Acquire(ctx, 3, "table", IntentExclusive); err != nil {
		t.Fatalf("IX-IX must be compatible: %v", err)
	}
}

func TestSIXUpgradePath(t *testing.T) {
	m := New(WithTimeout(40 * time.Millisecond))
	ctx := context.Background()
	// A transaction that queried (table S) then writes (table IX) holds SIX.
	if err := m.Acquire(ctx, 1, "table", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(ctx, 1, "table", IntentExclusive); err != nil {
		t.Fatal(err)
	}
	if !m.Holds(1, "table", SharedIntentExclusive) {
		t.Error("expected SIX after S + IX")
	}
	// SIX blocks everything from other owners.
	if err := m.Acquire(ctx, 2, "table", Shared); !errors.Is(err, ErrTimeout) {
		t.Errorf("S vs SIX should block, got %v", err)
	}
	if err := m.Acquire(ctx, 3, "table", IntentExclusive); !errors.Is(err, ErrTimeout) {
		t.Errorf("IX vs SIX should block, got %v", err)
	}
}

func TestClosedManagerRejects(t *testing.T) {
	m := New()
	m.Close()
	if err := m.Acquire(context.Background(), 1, "r", Shared); !errors.Is(err, ErrClosed) {
		t.Fatalf("expected ErrClosed, got %v", err)
	}
}

func TestInvalidMode(t *testing.T) {
	m := New()
	if err := m.Acquire(context.Background(), 1, "r", Mode(42)); err == nil {
		t.Fatal("expected error for invalid mode")
	}
}

// TestConcurrentStress exercises the manager with many owners hammering
// a few resources; correctness condition: at any instant a resource has
// either one X holder or only compatible holders, checked indirectly by
// a mutual-exclusion counter.
func TestConcurrentStress(t *testing.T) {
	m := New(WithTimeout(2 * time.Second))
	ctx := context.Background()
	const (
		owners = 8
		rounds = 200
	)
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		inX     = make(map[string]int)
		maxSeen int
	)
	resources := []string{"a", "b"}
	for o := 1; o <= owners; o++ {
		owner := Owner(o)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				res := resources[i%len(resources)]
				if err := m.Acquire(ctx, owner, res, Exclusive); err != nil {
					continue
				}
				mu.Lock()
				inX[res]++
				if inX[res] > maxSeen {
					maxSeen = inX[res]
				}
				mu.Unlock()
				mu.Lock()
				inX[res]--
				mu.Unlock()
				m.Release(owner, res)
			}
		}()
	}
	wg.Wait()
	if maxSeen > 1 {
		t.Fatalf("mutual exclusion violated: %d concurrent X holders", maxSeen)
	}
}

package lockmgr

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Mode is a lock mode.
type Mode int

// Lock modes. Shared and IntentExclusive are incomparable; their join is
// SharedIntentExclusive. Exclusive dominates everything.
const (
	Shared Mode = iota + 1
	IntentExclusive
	SharedIntentExclusive
	Exclusive
)

// String returns the mode's conventional abbreviation.
func (m Mode) String() string {
	switch m {
	case Shared:
		return "S"
	case IntentExclusive:
		return "IX"
	case SharedIntentExclusive:
		return "SIX"
	case Exclusive:
		return "X"
	default:
		return "invalid"
	}
}

func (m Mode) valid() bool { return m >= Shared && m <= Exclusive }

// Join returns the least mode at least as strong as both arguments.
func Join(a, b Mode) Mode {
	if a == b {
		return a
	}
	if a == Exclusive || b == Exclusive {
		return Exclusive
	}
	if a == 0 {
		return b
	}
	if b == 0 {
		return a
	}
	// Any distinct combination of {S, IX, SIX} joins to SIX.
	return SharedIntentExclusive
}

// Covers reports whether holding mode a makes a request for mode b
// redundant.
func Covers(a, b Mode) bool { return Join(a, b) == a }

// Compatible reports whether two different owners may hold modes a and b
// on the same resource simultaneously.
func Compatible(a, b Mode) bool {
	switch {
	case a == Exclusive || b == Exclusive:
		return false
	case a == Shared && b == Shared:
		return true
	case a == IntentExclusive && b == IntentExclusive:
		return true
	default:
		// S vs IX, anything vs SIX.
		return false
	}
}

// Owner identifies a lock holder (typically a transaction ID).
type Owner uint64

// Resource identifies a lockable object. The datastore uses table names
// for table locks and memento.Key values for row locks; any comparable
// value works.
type Resource any

var (
	// ErrTimeout is returned when a lock cannot be acquired before the
	// context deadline or the manager's default timeout elapses. The
	// store treats it as a deadlock-resolution signal: the waiting
	// transaction aborts.
	ErrTimeout = errors.New("lockmgr: lock wait timed out (possible deadlock)")
	// ErrClosed is returned when the manager has been shut down.
	ErrClosed = errors.New("lockmgr: manager closed")
)

// request is a queued lock acquisition. mode is the effective (joined)
// mode the owner needs to end up holding.
type request struct {
	owner Owner
	mode  Mode
	ready chan struct{} // closed when granted
}

// lockState tracks the grant table and waiter queue for one resource.
type lockState struct {
	holders map[Owner]Mode
	waiters []*request
}

// Manager grants and releases locks. The zero value is not usable; call
// New.
type Manager struct {
	mu             sync.Mutex
	locks          map[Resource]*lockState
	held           map[Owner]map[Resource]struct{}
	defaultTimeout time.Duration
	closed         bool
}

// Option configures a Manager.
type Option interface {
	apply(*Manager)
}

type timeoutOption time.Duration

func (t timeoutOption) apply(m *Manager) { m.defaultTimeout = time.Duration(t) }

// WithTimeout sets the default lock-wait timeout used when the caller's
// context has no deadline. The default is one second.
func WithTimeout(d time.Duration) Option { return timeoutOption(d) }

// New returns a ready-to-use Manager.
func New(opts ...Option) *Manager {
	m := &Manager{
		locks:          make(map[Resource]*lockState),
		held:           make(map[Owner]map[Resource]struct{}),
		defaultTimeout: time.Second,
	}
	for _, o := range opts {
		o.apply(m)
	}
	return m
}

// Acquire obtains a lock on res in (at least) the given mode on behalf
// of owner, blocking until the lock is granted, the context is done, or
// the wait times out. If owner already holds a lock on res, the request
// is treated as an upgrade to the join of the held and requested modes;
// requests already covered by the held mode return immediately.
func (m *Manager) Acquire(ctx context.Context, owner Owner, res Resource, mode Mode) error {
	if !mode.valid() {
		return fmt.Errorf("lockmgr: invalid mode %d", mode)
	}
	obsAcquires.Inc()
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	st := m.locks[res]
	if st == nil {
		st = &lockState{holders: make(map[Owner]Mode)}
		m.locks[res] = st
	}
	held := st.holders[owner]
	want := Join(held, mode)
	if held != 0 && Covers(held, want) {
		m.mu.Unlock()
		return nil // already strong enough
	}
	if st.compatible(owner, want) && (held != 0 || len(st.waiters) == 0) {
		// Immediate grant. Upgrades may bypass the waiter queue (the
		// standard trick that avoids the trivial upgrade self-deadlock);
		// fresh requests respect FIFO order behind existing waiters.
		st.holders[owner] = want
		m.recordHeld(owner, res)
		m.mu.Unlock()
		return nil
	}
	if m.wouldDeadlock(owner, res, want) {
		m.mu.Unlock()
		obsDeadlocks.Inc()
		return ErrDeadlock
	}
	req := &request{owner: owner, mode: want, ready: make(chan struct{})}
	st.waiters = append(st.waiters, req)
	m.mu.Unlock()

	obsWaits.Inc()
	waitStart := time.Now()
	defer func() { obsWait.Observe(time.Since(waitStart)) }()

	timeout := m.defaultTimeout
	if dl, ok := ctx.Deadline(); ok {
		timeout = time.Until(dl)
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()

	select {
	case <-req.ready:
		return nil
	case <-ctx.Done():
		if m.abandon(res, req) {
			return nil // granted in the race window; keep the lock
		}
		return ctx.Err()
	case <-timer.C:
		if m.abandon(res, req) {
			return nil
		}
		obsTimeouts.Inc()
		return ErrTimeout
	}
}

// abandon removes a timed-out or cancelled waiter. It reports true when
// the request was granted concurrently with the timeout, in which case
// the grant stands.
func (m *Manager) abandon(res Resource, req *request) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	select {
	case <-req.ready:
		return true
	default:
	}
	st := m.locks[res]
	if st == nil {
		return false
	}
	for i, w := range st.waiters {
		if w == req {
			st.waiters = append(st.waiters[:i], st.waiters[i+1:]...)
			break
		}
	}
	st.pump(m, res)
	m.gcLocked(res, st)
	return false
}

// Release drops owner's lock on one resource. Releasing a lock that is
// not held is a no-op.
func (m *Manager) Release(owner Owner, res Resource) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.releaseLocked(owner, res)
}

// ReleaseAll drops every lock held by owner; transactions call it at
// commit or abort (strict two-phase locking).
func (m *Manager) ReleaseAll(owner Owner) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for res := range m.held[owner] {
		m.releaseLocked(owner, res)
	}
}

// HeldCount returns the number of resources on which owner holds locks.
func (m *Manager) HeldCount(owner Owner) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.held[owner])
}

// Holds reports whether owner currently holds a lock on res at least as
// strong as mode.
func (m *Manager) Holds(owner Owner, res Resource, mode Mode) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.locks[res]
	if st == nil {
		return false
	}
	held, ok := st.holders[owner]
	return ok && Covers(held, mode)
}

// Close fails all future Acquire calls and wakes current waiters with
// ErrClosed-equivalent timeouts. Held locks remain recorded so in-flight
// releases stay harmless.
func (m *Manager) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
}

func (m *Manager) releaseLocked(owner Owner, res Resource) {
	st := m.locks[res]
	if st == nil {
		return
	}
	if _, ok := st.holders[owner]; !ok {
		return
	}
	delete(st.holders, owner)
	if hr := m.held[owner]; hr != nil {
		delete(hr, res)
		if len(hr) == 0 {
			delete(m.held, owner)
		}
	}
	st.pump(m, res)
	m.gcLocked(res, st)
}

func (m *Manager) gcLocked(res Resource, st *lockState) {
	if len(st.holders) == 0 && len(st.waiters) == 0 {
		delete(m.locks, res)
	}
}

func (m *Manager) recordHeld(owner Owner, res Resource) {
	hr := m.held[owner]
	if hr == nil {
		hr = make(map[Resource]struct{})
		m.held[owner] = hr
	}
	hr[res] = struct{}{}
}

// compatible reports whether owner could be granted mode given the other
// current holders.
func (s *lockState) compatible(owner Owner, mode Mode) bool {
	for h, hm := range s.holders {
		if h == owner {
			continue
		}
		if !Compatible(mode, hm) {
			return false
		}
	}
	return true
}

// pump grants queued waiters. Upgrades (waiters that already hold a
// lock) are scanned first so a release that leaves an upgrader as the
// only blocker resolves immediately; remaining waiters are granted in
// FIFO order until the head is incompatible.
func (s *lockState) pump(m *Manager, res Resource) {
	for i := 0; i < len(s.waiters); {
		w := s.waiters[i]
		if _, holds := s.holders[w.owner]; holds && s.compatible(w.owner, w.mode) {
			s.holders[w.owner] = Join(s.holders[w.owner], w.mode)
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			close(w.ready)
			continue
		}
		i++
	}
	for len(s.waiters) > 0 {
		w := s.waiters[0]
		if !s.compatible(w.owner, w.mode) {
			return
		}
		s.holders[w.owner] = Join(s.holders[w.owner], w.mode)
		m.recordHeld(w.owner, res)
		s.waiters = s.waiters[1:]
		close(w.ready)
	}
}

// Package lockmgr implements the lock manager used by the persistent
// datastore for pessimistic (two-phase) concurrency control. It supports
// the classic multi-granularity mode lattice (S, IX, SIX, X) on
// arbitrary comparable resources, lock upgrades, FIFO-fair waiting,
// wait-for-graph deadlock detection, and timeout-based deadlock
// resolution — the standard design described in Gray & Reuter that the
// paper's pessimistic "JDBC Resource Manager" relies on. Lock
// contention is observable through the lockmgr.* metrics, including a
// queue-time histogram (see OBSERVABILITY.md).
//
// A single owner (transaction) is assumed to issue lock requests
// serially, never concurrently from multiple goroutines; different
// owners may of course contend concurrently.
package lockmgr

package lockmgr

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestTwoTransactionDeadlockDetectedImmediately: the classic A->B, B->A
// cycle must be broken by ErrDeadlock well before any timeout.
func TestTwoTransactionDeadlockDetectedImmediately(t *testing.T) {
	m := New(WithTimeout(10 * time.Second)) // timeout must NOT be the resolver
	ctx := context.Background()

	if err := m.Acquire(ctx, 1, "a", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(ctx, 2, "b", Exclusive); err != nil {
		t.Fatal(err)
	}

	// Owner 1 blocks on b.
	blocked := make(chan error, 1)
	go func() { blocked <- m.Acquire(ctx, 1, "b", Exclusive) }()
	waitUntilWaiting(t, m, "b")

	// Owner 2 requesting a would close the cycle: must fail fast.
	start := time.Now()
	err := m.Acquire(ctx, 2, "a", Exclusive)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("got %v, want ErrDeadlock", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("deadlock resolution took %v; detector did not fire", elapsed)
	}

	// The victim aborts, releasing its locks; the survivor proceeds.
	m.ReleaseAll(2)
	select {
	case err := <-blocked:
		if err != nil {
			t.Fatalf("survivor's blocked acquire failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("survivor never granted after victim release")
	}
}

// TestUpgradeDeadlockDetected: two S holders both upgrading to X is the
// canonical upgrade deadlock; the second upgrader must get ErrDeadlock.
func TestUpgradeDeadlockDetected(t *testing.T) {
	m := New(WithTimeout(10 * time.Second))
	ctx := context.Background()
	if err := m.Acquire(ctx, 1, "r", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(ctx, 2, "r", Shared); err != nil {
		t.Fatal(err)
	}
	first := make(chan error, 1)
	go func() { first <- m.Acquire(ctx, 1, "r", Exclusive) }()
	waitUntilWaiting(t, m, "r")

	if err := m.Acquire(ctx, 2, "r", Exclusive); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("second upgrader: got %v, want ErrDeadlock", err)
	}
	m.ReleaseAll(2)
	select {
	case err := <-first:
		if err != nil {
			t.Fatalf("first upgrader failed after victim release: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("first upgrader never granted")
	}
}

// TestThreeWayDeadlockDetected: a cycle through three owners.
func TestThreeWayDeadlockDetected(t *testing.T) {
	m := New(WithTimeout(10 * time.Second))
	ctx := context.Background()
	for i, res := range []string{"a", "b", "c"} {
		if err := m.Acquire(ctx, Owner(i+1), res, Exclusive); err != nil {
			t.Fatal(err)
		}
	}
	// 1 waits for b (held by 2), 2 waits for c (held by 3).
	done1 := make(chan error, 1)
	go func() { done1 <- m.Acquire(ctx, 1, "b", Exclusive) }()
	waitUntilWaiting(t, m, "b")
	done2 := make(chan error, 1)
	go func() { done2 <- m.Acquire(ctx, 2, "c", Exclusive) }()
	waitUntilWaiting(t, m, "c")

	// 3 requesting a closes the three-way cycle.
	if err := m.Acquire(ctx, 3, "a", Exclusive); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("got %v, want ErrDeadlock", err)
	}
	m.ReleaseAll(3)
	if err := <-done2; err != nil {
		t.Fatalf("owner 2: %v", err)
	}
	m.ReleaseAll(2)
	if err := <-done1; err != nil {
		t.Fatalf("owner 1: %v", err)
	}
}

// TestNoFalsePositiveOnChain: a linear wait chain (no cycle) must not
// trigger the detector.
func TestNoFalsePositiveOnChain(t *testing.T) {
	m := New(WithTimeout(time.Second))
	ctx := context.Background()
	if err := m.Acquire(ctx, 1, "a", Exclusive); err != nil {
		t.Fatal(err)
	}
	done2 := make(chan error, 1)
	go func() { done2 <- m.Acquire(ctx, 2, "a", Exclusive) }()
	waitUntilWaiting(t, m, "a")
	done3 := make(chan error, 1)
	go func() { done3 <- m.Acquire(ctx, 3, "a", Exclusive) }()
	waitUntilWaiting2(t, m, "a", 2)

	m.Release(1, "a")
	if err := <-done2; err != nil {
		t.Fatalf("owner 2 in chain: %v", err)
	}
	m.Release(2, "a")
	if err := <-done3; err != nil {
		t.Fatalf("owner 3 in chain: %v", err)
	}
}

// TestDeadlockStress: many owners locking pairs of resources in
// conflicting orders; every acquire must terminate quickly with either a
// grant or ErrDeadlock, and the system must make progress.
func TestDeadlockStress(t *testing.T) {
	m := New(WithTimeout(5 * time.Second))
	ctx := context.Background()
	const owners = 6
	const rounds = 50
	var wg sync.WaitGroup
	var granted, deadlocked, timedOut int
	var mu sync.Mutex
	resources := []string{"x", "y"}
	for o := 1; o <= owners; o++ {
		owner := Owner(o)
		order := o % 2 // half lock x->y, half y->x
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				first, second := resources[order], resources[1-order]
				if err := m.Acquire(ctx, owner, first, Exclusive); err != nil {
					continue
				}
				err := m.Acquire(ctx, owner, second, Exclusive)
				mu.Lock()
				switch {
				case err == nil:
					granted++
				case errors.Is(err, ErrDeadlock):
					deadlocked++
				case errors.Is(err, ErrTimeout):
					timedOut++
				}
				mu.Unlock()
				m.ReleaseAll(owner)
			}
		}()
	}
	wg.Wait()
	if granted == 0 {
		t.Error("no progress under contention")
	}
	if timedOut > 0 {
		t.Errorf("%d timeouts: detector missed cycles (granted=%d deadlocked=%d)",
			timedOut, granted, deadlocked)
	}
	t.Logf("granted=%d deadlocked=%d", granted, deadlocked)
}

// waitUntilWaiting spins until res has at least one queued waiter.
func waitUntilWaiting(t *testing.T, m *Manager, res Resource) {
	t.Helper()
	waitUntilWaiting2(t, m, res, 1)
}

func waitUntilWaiting2(t *testing.T, m *Manager, res Resource, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		m.mu.Lock()
		st := m.locks[res]
		waiting := 0
		if st != nil {
			waiting = len(st.waiters)
		}
		m.mu.Unlock()
		if waiting >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("resource %v never reached %d waiters", res, n)
		}
		time.Sleep(time.Millisecond)
	}
}

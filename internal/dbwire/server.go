package dbwire

import (
	"context"
	"sync"

	"edgeejb/internal/storeapi"
	"edgeejb/internal/wire"
)

// Server exposes any storeapi.Conn over the wire protocol. Serving a
// local store (storeapi.Local) yields the paper's "database server";
// serving a composed Conn yields middle tiers such as the back-end
// server of the split-servers configuration (see package backend).
//
// Framing, accept loops, and graceful drain live in the shared
// transport (package wire); this file is only the protocol dispatch.
type Server struct {
	inner *wire.Server
}

// NewServer wraps a datastore handle. Call Start to begin listening.
func NewServer(backend storeapi.Conn) *Server {
	s := &Server{}
	s.inner = wire.NewServer(func() wire.ConnHandler {
		return &connHandler{backend: backend, txs: make(map[uint64]storeapi.Txn)}
	})
	return s
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port) and
// serves connections in the background until Close.
func (s *Server) Start(addr string) error { return s.inner.Start(addr) }

// Addr returns the server's listen address. It panics if Start has not
// been called.
func (s *Server) Addr() string { return s.inner.Addr() }

// WireStats returns the server-side transport counters.
func (s *Server) WireStats() wire.Stats { return s.inner.Stats() }

// Close drains the server: stop accepting, finish in-flight requests
// (bounded), then tear down every connection, aborting any transactions
// still open on them. It does not close the wrapped datastore handle.
func (s *Server) Close() { s.inner.Close() }

// connHandler holds one connection's protocol state. Transactions begun
// on a connection belong to it; if the connection drops they are
// aborted, mirroring a JDBC connection's session semantics. Requests on
// one connection may execute concurrently (the client multiplexes), so
// the transaction table is locked.
type connHandler struct {
	backend storeapi.Conn

	mu  sync.Mutex
	txs map[uint64]storeapi.Txn

	pushers sync.WaitGroup
}

func (h *connHandler) NewRequest() any { return new(Request) }

func (h *connHandler) Handle(ctx context.Context, sess *wire.Session, id uint64, req any) any {
	r := req.(*Request)
	switch r.Op {
	case OpSubscribe:
		return h.subscribe(ctx, sess, id)
	case OpHello:
		return h.hello(sess, id, r)
	}
	return h.handle(ctx, r)
}

// hello answers the codec handshake. Accepting switches the session's
// read side immediately — every request after the hello arrives in the
// negotiated codec — and arms the write side to switch right after this
// reply is written, so the acceptance itself still travels in gob, the
// format the client can decode before it learns the outcome.
func (h *connHandler) hello(sess *wire.Session, id uint64, r *Request) *Response {
	for _, name := range r.Codecs {
		if name == codecBinary {
			sess.SetReadCodec(binCodec)
			sess.SetWriteCodecAfter(id, binCodec)
			wire.NoteCodec(codecBinary)
			return &Response{Code: CodeOK, Codec: codecBinary}
		}
	}
	wire.NoteCodec(codecGob)
	return &Response{Code: CodeOK, Codec: codecGob}
}

// batch executes an OpBatch's sub-requests sequentially, stopping at
// the first failure — the exact semantics of the statements arriving
// one frame at a time, minus the per-statement round trips. Sub-request
// results come back positionally; a truncated result slice tells the
// client the remaining statements never ran.
func (h *connHandler) batch(ctx context.Context, req *Request) *Response {
	out := &Response{Code: CodeOK, Batch: make([]Response, 0, len(req.Batch))}
	for i := range req.Batch {
		sub := &req.Batch[i]
		switch sub.Op {
		case OpBegin, OpSubscribe, OpHello, OpBatch, OpApplyCommitSets,
			OpPrepare, OpCommitPrepared, OpAbortPrepared:
			return &Response{Code: CodeBadRequest, Msg: "op " + sub.Op.String() + " not allowed in a batch"}
		}
		if sub.Tx == 0 {
			sub.Tx = req.Tx
		}
		r := h.handle(ctx, sub)
		out.Batch = append(out.Batch, *r)
		if r.Code != CodeOK {
			break
		}
	}
	return out
}

// Close aborts the connection's open transactions and reaps its push
// goroutines. The wire server calls it after the last in-flight Handle
// has returned and the session context is cancelled.
func (h *connHandler) Close() {
	h.pushers.Wait()
	h.mu.Lock()
	txs := h.txs
	h.txs = make(map[uint64]storeapi.Txn)
	h.mu.Unlock()
	ctx := context.Background()
	for _, tx := range txs {
		_ = tx.Abort(ctx)
	}
}

// subscribe switches the connection into push mode: every commit notice
// is forwarded until the client hangs up or the server drains.
func (h *connHandler) subscribe(ctx context.Context, sess *wire.Session, id uint64) *Response {
	ch, cancel, err := h.backend.Subscribe(ctx)
	if err != nil {
		return errResponse(err)
	}
	h.pushers.Add(1)
	go func() {
		defer h.pushers.Done()
		defer cancel()
		for {
			select {
			case n, ok := <-ch:
				if !ok {
					// The upstream notice source died (e.g. the database
					// behind a back-end server restarted). Sever this
					// connection too: a silent stop would leave the
					// subscriber trusting a stream that will never
					// deliver again, serving stale cache entries forever.
					// The hangup makes the edge clear its cache and
					// resubscribe.
					sess.Hangup()
					return
				}
				if err := sess.Push(id, &Response{Code: CodeOK, Notice: n}); err != nil {
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}()
	return &Response{Code: CodeOK}
}

// lookup resolves a transaction handle; remove also unregisters it
// (commit/abort ends the pin).
func (h *connHandler) lookup(id uint64, remove bool) (storeapi.Txn, *Response) {
	h.mu.Lock()
	defer h.mu.Unlock()
	tx, ok := h.txs[id]
	if !ok {
		return nil, &Response{Code: CodeBadRequest, Msg: "unknown transaction"}
	}
	if remove {
		delete(h.txs, id)
	}
	return tx, nil
}

func (h *connHandler) handle(ctx context.Context, req *Request) *Response {
	fail := errResponse

	switch req.Op {
	case OpPing:
		return &Response{Code: CodeOK}

	case OpBegin:
		tx, err := h.backend.Begin(ctx)
		if err != nil {
			return fail(err)
		}
		h.mu.Lock()
		h.txs[tx.ID()] = tx
		h.mu.Unlock()
		return &Response{Code: CodeOK, Tx: tx.ID()}

	case OpGet, OpGetForUpdate:
		tx, errResp := h.lookup(req.Tx, false)
		if errResp != nil {
			return errResp
		}
		get := tx.Get
		if req.Op == OpGetForUpdate {
			get = tx.GetForUpdate
		}
		res, err := get(ctx, req.Table, req.ID)
		if err != nil {
			return fail(err)
		}
		return &Response{Code: CodeOK, Mem: res.Mem, FP: &res.FP}

	case OpPut, OpInsert, OpCheckedPut:
		tx, errResp := h.lookup(req.Tx, false)
		if errResp != nil {
			return errResp
		}
		var err error
		switch req.Op {
		case OpPut:
			err = tx.Put(ctx, req.Mem)
		case OpInsert:
			err = tx.Insert(ctx, req.Mem)
		default:
			err = tx.CheckedPut(ctx, req.Mem)
		}
		if err != nil {
			return fail(err)
		}
		return &Response{Code: CodeOK}

	case OpDelete:
		tx, errResp := h.lookup(req.Tx, false)
		if errResp != nil {
			return errResp
		}
		if err := tx.Delete(ctx, req.Table, req.ID); err != nil {
			return fail(err)
		}
		return &Response{Code: CodeOK}

	case OpCheckedDelete:
		tx, errResp := h.lookup(req.Tx, false)
		if errResp != nil {
			return errResp
		}
		if err := tx.CheckedDelete(ctx, req.Key, req.Version); err != nil {
			return fail(err)
		}
		return &Response{Code: CodeOK}

	case OpCheckVersion:
		tx, errResp := h.lookup(req.Tx, false)
		if errResp != nil {
			return errResp
		}
		if err := tx.CheckVersion(ctx, req.Key, req.Version); err != nil {
			return fail(err)
		}
		return &Response{Code: CodeOK}

	case OpQuery:
		tx, errResp := h.lookup(req.Tx, false)
		if errResp != nil {
			return errResp
		}
		res, err := tx.Query(ctx, req.Query)
		if err != nil {
			return fail(err)
		}
		return &Response{Code: CodeOK, Mems: res.Mems, FP: &res.FP}

	case OpCommit:
		tx, errResp := h.lookup(req.Tx, true)
		if errResp != nil {
			return errResp
		}
		if err := tx.Commit(ctx); err != nil {
			return fail(err)
		}
		return &Response{Code: CodeOK, Tx: req.Tx}

	case OpAbort:
		tx, errResp := h.lookup(req.Tx, true)
		if errResp != nil {
			return errResp
		}
		if err := tx.Abort(ctx); err != nil {
			return fail(err)
		}
		return &Response{Code: CodeOK}

	case OpApplyCommitSet:
		res, err := h.backend.ApplyCommitSet(ctx, req.Set)
		if err != nil {
			return fail(err)
		}
		return &Response{Code: CodeOK, Tx: res.TxID, NewVersions: res.NewVersions}

	case OpApplyCommitSets:
		results, err := h.backend.ApplyCommitSets(ctx, req.Sets)
		if err != nil {
			return fail(err)
		}
		out := &Response{Code: CodeOK, Batch: make([]Response, len(results))}
		for i := range results {
			if results[i].Err != nil {
				out.Batch[i] = *errResponse(results[i].Err)
				continue
			}
			out.Batch[i] = Response{Code: CodeOK, Tx: results[i].Res.TxID, NewVersions: results[i].Res.NewVersions}
		}
		return out

	case OpBatch:
		return h.batch(ctx, req)

	// The 2PC participant ops require the wrapped Conn to expose
	// prepare support; a Conn that doesn't (an older relay, a wrapper)
	// gets the same "unknown op" answer an old server would give, so
	// the coordinator's downgrade logic covers both cases identically.
	case OpPrepare:
		p, ok := h.backend.(storeapi.Preparer)
		if !ok {
			return &Response{Code: CodeBadRequest, Msg: "unknown op " + req.Op.String()}
		}
		if err := p.Prepare(ctx, req.Gid, req.Set); err != nil {
			return fail(err)
		}
		return &Response{Code: CodeOK}

	case OpCommitPrepared:
		p, ok := h.backend.(storeapi.Preparer)
		if !ok {
			return &Response{Code: CodeBadRequest, Msg: "unknown op " + req.Op.String()}
		}
		res, err := p.CommitPrepared(ctx, req.Gid)
		if err != nil {
			return fail(err)
		}
		return &Response{Code: CodeOK, Tx: res.TxID, NewVersions: res.NewVersions}

	case OpAbortPrepared:
		p, ok := h.backend.(storeapi.Preparer)
		if !ok {
			return &Response{Code: CodeBadRequest, Msg: "unknown op " + req.Op.String()}
		}
		if err := p.AbortPrepared(ctx, req.Gid); err != nil {
			return fail(err)
		}
		return &Response{Code: CodeOK}

	case OpAutoGet:
		res, err := h.backend.AutoGet(ctx, req.Table, req.ID)
		if err != nil {
			return fail(err)
		}
		return &Response{Code: CodeOK, Mem: res.Mem, FP: &res.FP}

	case OpAutoQuery:
		res, err := h.backend.AutoQuery(ctx, req.Query)
		if err != nil {
			return fail(err)
		}
		return &Response{Code: CodeOK, Mems: res.Mems, FP: &res.FP}

	default:
		return &Response{Code: CodeBadRequest, Msg: "unknown op " + req.Op.String()}
	}
}

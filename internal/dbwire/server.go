package dbwire

import (
	"bufio"
	"context"
	"encoding/gob"
	"errors"
	"net"
	"sync"

	"edgeejb/internal/storeapi"
)

// Server exposes any storeapi.Conn over the wire protocol. Serving a
// local store (storeapi.Local) yields the paper's "database server";
// serving a composed Conn yields middle tiers such as the back-end
// server of the split-servers configuration (see package backend).
type Server struct {
	backend storeapi.Conn

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps a datastore handle. Call Start to begin listening.
func NewServer(backend storeapi.Conn) *Server {
	return &Server{
		backend: backend,
		conns:   make(map[net.Conn]struct{}),
	}
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port) and
// serves connections in the background until Close.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close()
		return errors.New("dbwire: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the server's listen address. It panics if Start has not
// been called.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener, tears down every connection (aborting any
// in-flight transactions), and waits for the handlers to exit. It does
// not close the wrapped datastore handle.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	s.wg.Wait()
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		if !s.track(conn) {
			_ = conn.Close()
			return
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, c)
}

// serveConn handles one connection's request/response loop. Transactions
// begun on a connection belong to it; if the connection drops they are
// aborted, mirroring a JDBC connection's session semantics.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer s.untrack(conn)
	defer conn.Close()

	bw := bufio.NewWriter(conn)
	dec := gob.NewDecoder(bufio.NewReader(conn))
	enc := gob.NewEncoder(bw)

	ctx := context.Background()
	txs := make(map[uint64]storeapi.Txn)
	defer func() {
		for _, tx := range txs {
			_ = tx.Abort(ctx)
		}
	}()

	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		if req.Op == OpSubscribe {
			s.serveSubscription(ctx, conn, enc, bw)
			return
		}
		resp := s.handle(ctx, txs, &req)
		if err := enc.Encode(resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// serveSubscription switches the connection into push mode: every commit
// notice is forwarded until the client closes the connection or the
// server shuts down.
func (s *Server) serveSubscription(ctx context.Context, conn net.Conn, enc *gob.Encoder, bw *bufio.Writer) {
	ch, cancel, err := s.backend.Subscribe(ctx)
	if err != nil {
		code, msg := encodeErr(err)
		_ = enc.Encode(&Response{Code: code, Msg: msg})
		_ = bw.Flush()
		return
	}
	defer cancel()

	// Acknowledge the subscription so the client knows push mode began.
	if err := enc.Encode(&Response{Code: CodeOK}); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}

	// Detect client departure: the client never sends again, so any read
	// completion means the connection is gone.
	connClosed := make(chan struct{})
	go func() {
		defer close(connClosed)
		var buf [1]byte
		_, _ = conn.Read(buf[:])
	}()

	for {
		select {
		case n, ok := <-ch:
			if !ok {
				return
			}
			if err := enc.Encode(&Response{Code: CodeOK, Notice: n}); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
		case <-connClosed:
			return
		}
	}
}

func (s *Server) handle(ctx context.Context, txs map[uint64]storeapi.Txn, req *Request) *Response {
	fail := func(err error) *Response {
		code, msg := encodeErr(err)
		return &Response{Code: code, Msg: msg}
	}
	lookup := func() (storeapi.Txn, *Response) {
		tx, ok := txs[req.Tx]
		if !ok {
			return nil, &Response{Code: CodeBadRequest, Msg: "unknown transaction"}
		}
		return tx, nil
	}

	switch req.Op {
	case OpPing:
		return &Response{Code: CodeOK}

	case OpBegin:
		tx, err := s.backend.Begin(ctx)
		if err != nil {
			return fail(err)
		}
		txs[tx.ID()] = tx
		return &Response{Code: CodeOK, Tx: tx.ID()}

	case OpGet, OpGetForUpdate:
		tx, errResp := lookup()
		if errResp != nil {
			return errResp
		}
		get := tx.Get
		if req.Op == OpGetForUpdate {
			get = tx.GetForUpdate
		}
		m, err := get(ctx, req.Table, req.ID)
		if err != nil {
			return fail(err)
		}
		return &Response{Code: CodeOK, Mem: m}

	case OpPut, OpInsert, OpCheckedPut:
		tx, errResp := lookup()
		if errResp != nil {
			return errResp
		}
		var err error
		switch req.Op {
		case OpPut:
			err = tx.Put(ctx, req.Mem)
		case OpInsert:
			err = tx.Insert(ctx, req.Mem)
		default:
			err = tx.CheckedPut(ctx, req.Mem)
		}
		if err != nil {
			return fail(err)
		}
		return &Response{Code: CodeOK}

	case OpDelete:
		tx, errResp := lookup()
		if errResp != nil {
			return errResp
		}
		if err := tx.Delete(ctx, req.Table, req.ID); err != nil {
			return fail(err)
		}
		return &Response{Code: CodeOK}

	case OpCheckedDelete:
		tx, errResp := lookup()
		if errResp != nil {
			return errResp
		}
		if err := tx.CheckedDelete(ctx, req.Key, req.Version); err != nil {
			return fail(err)
		}
		return &Response{Code: CodeOK}

	case OpCheckVersion:
		tx, errResp := lookup()
		if errResp != nil {
			return errResp
		}
		if err := tx.CheckVersion(ctx, req.Key, req.Version); err != nil {
			return fail(err)
		}
		return &Response{Code: CodeOK}

	case OpQuery:
		tx, errResp := lookup()
		if errResp != nil {
			return errResp
		}
		mems, err := tx.Query(ctx, req.Query)
		if err != nil {
			return fail(err)
		}
		return &Response{Code: CodeOK, Mems: mems}

	case OpCommit:
		tx, errResp := lookup()
		if errResp != nil {
			return errResp
		}
		delete(txs, req.Tx)
		if err := tx.Commit(ctx); err != nil {
			return fail(err)
		}
		return &Response{Code: CodeOK, Tx: req.Tx}

	case OpAbort:
		tx, errResp := lookup()
		if errResp != nil {
			return errResp
		}
		delete(txs, req.Tx)
		if err := tx.Abort(ctx); err != nil {
			return fail(err)
		}
		return &Response{Code: CodeOK}

	case OpApplyCommitSet:
		res, err := s.backend.ApplyCommitSet(ctx, req.Set)
		if err != nil {
			return fail(err)
		}
		return &Response{Code: CodeOK, Tx: res.TxID, NewVersions: res.NewVersions}

	case OpAutoGet:
		m, err := s.backend.AutoGet(ctx, req.Table, req.ID)
		if err != nil {
			return fail(err)
		}
		return &Response{Code: CodeOK, Mem: m}

	case OpAutoQuery:
		mems, err := s.backend.AutoQuery(ctx, req.Query)
		if err != nil {
			return fail(err)
		}
		return &Response{Code: CodeOK, Mems: mems}

	default:
		return &Response{Code: CodeBadRequest, Msg: "unknown op " + req.Op.String()}
	}
}

package dbwire

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"edgeejb/internal/latency"
	"edgeejb/internal/sqlstore"
	"edgeejb/internal/storeapi"
)

// stallListener accepts connections and never answers — the "database
// server wedged" scenario.
func stallListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()
	return ln
}

// TestAutoGetHonorsDeadlineOnStalledServer: the regression for the old
// client ignoring ctx once a connection was checked out — an in-flight
// call against a stalled server must return by the context deadline.
func TestAutoGetHonorsDeadlineOnStalledServer(t *testing.T) {
	ln := stallListener(t)
	client := Dial(ln.Addr().String())
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := client.AutoGet(ctx, "t", "1")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("AutoGet against stalled server succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("AutoGet hung %v past its 150ms deadline", elapsed)
	}
}

// TestTxnCallHonorsDeadline: deadlines propagate on pinned transaction
// streams too, not just one-shot calls.
func TestTxnCallHonorsDeadline(t *testing.T) {
	store := sqlstore.New(sqlstore.WithLockTimeout(10 * time.Second))
	defer store.Close()
	seed(store, "t", "1", 1)
	srv := NewServer(storeapi.Local(store))
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := Dial(srv.Addr())
	defer client.Close()
	ctx := context.Background()

	// Holder transaction takes the row lock and sits on it.
	holder, err := client.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Abort(ctx)
	if _, err := holder.GetForUpdate(ctx, "t", "1"); err != nil {
		t.Fatal(err)
	}

	// The contender blocks server-side on the lock; its deadline must
	// cut the wait short from the client side.
	contender, err := client.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	dctx, cancel := context.WithTimeout(ctx, 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = contender.GetForUpdate(dctx, "t", "1")
	if err == nil {
		t.Fatal("contended GetForUpdate succeeded under a 200ms deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("txn call hung %v past its deadline", elapsed)
	}
	_ = contender.Abort(ctx)
}

// TestMultiplexedAutoGetsShareRoundTrip is the tentpole's acceptance
// check: N concurrent autocommit reads through the 8ms delay proxy must
// complete in ~1 round-trip wall time over the shared connections — at
// seed each would have paid its own round trip (or connection).
func TestMultiplexedAutoGetsShareRoundTrip(t *testing.T) {
	store := sqlstore.New()
	defer store.Close()
	const rows = 16
	for i := 0; i < rows; i++ {
		seed(store, "t", string(rune('a'+i)), int64(i))
	}
	srv := NewServer(storeapi.Local(store))
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	proxy := latency.NewProxy(srv.Addr(), 8*time.Millisecond)
	if err := proxy.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	client := Dial(proxy.Addr())
	defer client.Close()
	ctx := context.Background()

	// Warm the connection (dial + gob typedefs) so the measured window
	// is pure round-trip time.
	if err := client.Ping(ctx); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, rows)
	for i := 0; i < rows; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := client.AutoGet(ctx, "t", string(rune('a'+i))); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	elapsed := time.Since(start)

	// One round trip through the proxy costs 2×8ms = 16ms. Serialized,
	// 16 reads would cost ≥256ms; multiplexed they overlap on the wire.
	// Allow generous slack for scheduling: well under half the serial
	// floor still proves pipelining.
	if elapsed > 120*time.Millisecond {
		t.Fatalf("16 concurrent AutoGets took %v through an 8ms proxy — not multiplexed (serial floor ≈ 256ms)", elapsed)
	}
	if d := client.WireStats().Dials; d > 2 {
		t.Fatalf("used %d connections, want ≤ 2 shared conns", d)
	}
}

package dbwire

import (
	"context"
	"errors"
	"testing"
	"time"

	"edgeejb/internal/latency"
	"edgeejb/internal/memento"
	"edgeejb/internal/sqlstore"
	"edgeejb/internal/storeapi"
	"edgeejb/internal/wire"
)

// legacyHandler emulates a server that predates the codec handshake and
// the batched ops: it answers the three new opcodes with the exact
// CodeBadRequest reply an old connHandler's default case produces, and
// delegates everything else. The interop tests dial it with a new
// client to prove the downgrade paths.
type legacyHandler struct {
	inner *connHandler
}

func (h *legacyHandler) NewRequest() any { return h.inner.NewRequest() }

func (h *legacyHandler) Handle(ctx context.Context, sess *wire.Session, id uint64, req any) any {
	r := req.(*Request)
	switch r.Op {
	case OpHello, OpBatch, OpApplyCommitSets:
		return &Response{Code: CodeBadRequest, Msg: "unknown op " + r.Op.String()}
	}
	return h.inner.Handle(ctx, sess, id, req)
}

func (h *legacyHandler) Close() { h.inner.Close() }

func startLegacyServer(t *testing.T, store *sqlstore.Store) *wire.Server {
	t.Helper()
	srv := wire.NewServer(func() wire.ConnHandler {
		return &legacyHandler{inner: &connHandler{
			backend: storeapi.Local(store),
			txs:     make(map[uint64]storeapi.Txn),
		}}
	})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// exerciseConn drives every protocol surface the codec negotiation and
// the fallback latches touch: autocommit reads, pessimistic CRUD,
// batched statements, queries, grouped optimistic applies, and conflict
// attribution. It must behave identically on every cell of the interop
// matrix.
func exerciseConn(t *testing.T, store *sqlstore.Store, c *Client) {
	t.Helper()
	ctx := context.Background()

	res, err := c.AutoGet(ctx, "t", "1")
	if err != nil {
		t.Fatalf("AutoGet: %v", err)
	}
	if res.Mem.Fields["v"].Int != 10 || res.Mem.Version != 1 {
		t.Fatalf("AutoGet = %v", res.Mem)
	}

	// Pessimistic CRUD on a pinned stream.
	txn, err := c.Begin(ctx)
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	got, err := txn.GetForUpdate(ctx, "t", "1")
	if err != nil {
		t.Fatalf("GetForUpdate: %v", err)
	}
	m := got.Mem
	m.Fields["v"] = memento.Int(11)
	if err := txn.Put(ctx, m); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := txn.Insert(ctx, memento.Memento{
		Key:    memento.Key{Table: "t", ID: "2"},
		Fields: memento.Fields{"v": memento.Int(5)},
	}); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := txn.Commit(ctx); err != nil {
		t.Fatalf("Commit: %v", err)
	}

	// Batched statements (single frame against a new server, serial
	// fallback against a legacy one — same results either way).
	txn2, err := c.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	results, err := storeapi.ExecBatch(ctx, txn2, []storeapi.Stmt{
		{Kind: storeapi.StmtGet, Table: "t", ID: "1"},
		{Kind: storeapi.StmtGet, Table: "t", ID: "2"},
		{Kind: storeapi.StmtCommit},
	})
	if err != nil {
		t.Fatalf("ExecBatch: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("ExecBatch returned %d results, want 3", len(results))
	}
	if v := results[0].Get.Mem.Fields["v"].Int; v != 11 {
		t.Errorf("batched get t/1 = %d, want 11", v)
	}
	if v := results[1].Get.Mem.Fields["v"].Int; v != 5 {
		t.Errorf("batched get t/2 = %d, want 5", v)
	}
	if results[2].Err != nil {
		t.Errorf("batched commit: %v", results[2].Err)
	}

	qres, err := c.AutoQuery(ctx, memento.Query{Table: "t"})
	if err != nil {
		t.Fatalf("AutoQuery: %v", err)
	}
	if len(qres.Mems) != 2 {
		t.Errorf("AutoQuery rows = %d, want 2", len(qres.Mems))
	}

	// Grouped optimistic applies (one frame new, per-set fallback old).
	out, err := c.ApplyCommitSets(ctx, []memento.CommitSet{
		{Creates: []memento.Memento{{
			Key:    memento.Key{Table: "t", ID: "3"},
			Fields: memento.Fields{"v": memento.Int(30)},
		}}},
		{Creates: []memento.Memento{{
			Key:    memento.Key{Table: "t", ID: "4"},
			Fields: memento.Fields{"v": memento.Int(40)},
		}}},
	})
	if err != nil {
		t.Fatalf("ApplyCommitSets: %v", err)
	}
	if len(out) != 2 {
		t.Fatalf("ApplyCommitSets returned %d results, want 2", len(out))
	}
	for i, r := range out {
		if r.Err != nil {
			t.Fatalf("set %d: %v", i, r.Err)
		}
		if r.Res.TxID == 0 {
			t.Errorf("set %d: no TxID in result", i)
		}
	}
	if v, _ := store.CurrentVersion(memento.Key{Table: "t", ID: "3"}); v != 1 {
		t.Errorf("create t/3 not applied (version %d)", v)
	}

	// Conflict attribution survives every codec/fallback combination.
	_, err = c.ApplyCommitSet(ctx, memento.CommitSet{
		Writes: []memento.Memento{{
			Key:     memento.Key{Table: "t", ID: "1"},
			Version: 1, // stale: the CRUD commit above moved it to 2
			Fields:  memento.Fields{"v": memento.Int(99)},
		}},
	})
	var ce *sqlstore.ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("stale apply error = %v, want *sqlstore.ConflictError", err)
	}
	if ce.WinnerTx == 0 {
		t.Error("conflict lost its winner attribution across the wire")
	}
}

// TestCodecInteropMatrix proves every pairing of old and new peers
// works: binary negotiated against a new server, forced gob against a
// new server, and a new (binary-preferring) client downgrading against
// a legacy server that answers the handshake with "unknown op". The
// same workload must produce the same answers in every cell, and the
// negotiated binary leg must move fewer bytes than the gob leg.
func TestCodecInteropMatrix(t *testing.T) {
	bytesMoved := map[string]uint64{}
	cells := []struct {
		name   string
		legacy bool
		opts   []Option
		hellos bool // whether the client should attempt the handshake
	}{
		{name: "binary-new", hellos: true},
		{name: "gob-new", opts: []Option{WithCodec("gob")}},
		{name: "binary-legacy", legacy: true, hellos: true},
		{name: "gob-legacy", legacy: true, opts: []Option{WithCodec("gob")}},
	}
	for _, cell := range cells {
		t.Run(cell.name, func(t *testing.T) {
			store := sqlstore.New(sqlstore.WithLockTimeout(time.Second))
			t.Cleanup(store.Close)
			seed(store, "t", "1", 10)
			var addr string
			if cell.legacy {
				addr = startLegacyServer(t, store).Addr()
			} else {
				srv := NewServer(storeapi.Local(store))
				if err := srv.Start("127.0.0.1:0"); err != nil {
					t.Fatal(err)
				}
				t.Cleanup(srv.Close)
				addr = srv.Addr()
			}
			client := Dial(addr, cell.opts...)
			t.Cleanup(func() { _ = client.Close() })

			exerciseConn(t, store, client)

			// The handshake runs once per fresh connection (the pool
			// pins extra conns for transactions), so binary legs see at
			// least one hello and gob legs none at all.
			stats := client.WireStats()
			if got := stats.Ops["Hello"].Count; cell.hellos && got == 0 {
				t.Error("binary client never attempted the handshake")
			} else if !cell.hellos && got != 0 {
				t.Errorf("gob client sent %d hellos, want 0", got)
			}
			bytesMoved[cell.name] = stats.BytesSent + stats.BytesReceived
		})
	}
	// The whole point of the negotiated codec: same workload, same
	// server, strictly fewer bytes than gob.
	if b, g := bytesMoved["binary-new"], bytesMoved["gob-new"]; b == 0 || g == 0 || b >= g {
		t.Errorf("binary leg moved %d bytes, gob leg %d — want binary strictly smaller", b, g)
	}
}

// TestHelloExcludedFromRoundTrips pins the accounting contract: the
// handshake is transport overhead, not workload traffic, so the very
// first data access on a fresh binary connection still reports exactly
// one round trip — the number every Figure 6/7 pinned test builds on.
func TestHelloExcludedFromRoundTrips(t *testing.T) {
	store, client := newPair(t)
	seed(store, "t", "1", 10)
	if _, err := client.AutoGet(context.Background(), "t", "1"); err != nil {
		t.Fatal(err)
	}
	if got := client.RoundTrips(); got != 1 {
		t.Errorf("first AutoGet cost %d accounted round trips, want 1", got)
	}
	if got := client.WireStats().Ops["Hello"].Count; got != 1 {
		t.Errorf("Hello count = %d, want 1 (handshake must actually run)", got)
	}
}

// TestBatchIsOneRoundTrip pins the pipelining economics: N statements
// of one transaction in a single frame cost a single round trip.
func TestBatchIsOneRoundTrip(t *testing.T) {
	store, client := newPair(t)
	seed(store, "t", "1", 10)
	seed(store, "t", "2", 20)
	ctx := context.Background()

	txn, err := client.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	before := client.RoundTrips()
	results, err := storeapi.ExecBatch(ctx, txn, []storeapi.Stmt{
		{Kind: storeapi.StmtGet, Table: "t", ID: "1"},
		{Kind: storeapi.StmtGet, Table: "t", ID: "2"},
		{Kind: storeapi.StmtCommit},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := client.RoundTrips() - before; got != 1 {
		t.Errorf("3-statement batch cost %d round trips, want exactly 1", got)
	}
	if len(results) != 3 || results[0].Get.Mem.Fields["v"].Int != 10 ||
		results[1].Get.Mem.Fields["v"].Int != 20 || results[2].Err != nil {
		t.Errorf("batch results wrong: %+v", results)
	}
}

// TestBatchFallbackRoundTrips pins the downgrade economics against a
// legacy server: the first batch pays one rejected probe plus one trip
// per statement; once the latch is set, later batches skip the probe.
func TestBatchFallbackRoundTrips(t *testing.T) {
	store := sqlstore.New(sqlstore.WithLockTimeout(time.Second))
	t.Cleanup(store.Close)
	seed(store, "t", "1", 10)
	client := Dial(startLegacyServer(t, store).Addr())
	t.Cleanup(func() { _ = client.Close() })
	ctx := context.Background()

	run := func() uint64 {
		txn, err := client.Begin(ctx)
		if err != nil {
			t.Fatal(err)
		}
		before := client.RoundTrips()
		results, err := storeapi.ExecBatch(ctx, txn, []storeapi.Stmt{
			{Kind: storeapi.StmtGet, Table: "t", ID: "1"},
			{Kind: storeapi.StmtCommit},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != 2 || results[0].Get.Mem.Fields["v"].Int != 10 || results[1].Err != nil {
			t.Fatalf("fallback batch results wrong: %+v", results)
		}
		return client.RoundTrips() - before
	}
	if got := run(); got != 3 {
		t.Errorf("first fallback batch cost %d round trips, want 3 (probe + 2 serial)", got)
	}
	if got := run(); got != 2 {
		t.Errorf("latched fallback batch cost %d round trips, want 2 (serial only)", got)
	}
}

// TestGroupApplyRoundTrips pins both sides of OpApplyCommitSets: one
// trip for the whole group against a new server; probe + one trip per
// set, then latched per-set, against a legacy server.
func TestGroupApplyRoundTrips(t *testing.T) {
	sets := func(ids ...string) []memento.CommitSet {
		out := make([]memento.CommitSet, len(ids))
		for i, id := range ids {
			out[i] = memento.CommitSet{Creates: []memento.Memento{{
				Key:    memento.Key{Table: "t", ID: id},
				Fields: memento.Fields{"v": memento.Int(int64(i))},
			}}}
		}
		return out
	}
	ctx := context.Background()

	t.Run("new server", func(t *testing.T) {
		_, client := newPair(t)
		if err := client.Ping(ctx); err != nil {
			t.Fatal(err)
		}
		before := client.RoundTrips()
		out, err := client.ApplyCommitSets(ctx, sets("a", "b", "c"))
		if err != nil {
			t.Fatal(err)
		}
		if got := client.RoundTrips() - before; got != 1 {
			t.Errorf("3-set group apply cost %d round trips, want exactly 1", got)
		}
		for i, r := range out {
			if r.Err != nil {
				t.Errorf("set %d: %v", i, r.Err)
			}
		}
	})

	t.Run("legacy fallback", func(t *testing.T) {
		store := sqlstore.New(sqlstore.WithLockTimeout(time.Second))
		t.Cleanup(store.Close)
		client := Dial(startLegacyServer(t, store).Addr())
		t.Cleanup(func() { _ = client.Close() })
		if err := client.Ping(ctx); err != nil {
			t.Fatal(err)
		}

		before := client.RoundTrips()
		if _, err := client.ApplyCommitSets(ctx, sets("a", "b")); err != nil {
			t.Fatal(err)
		}
		if got := client.RoundTrips() - before; got != 3 {
			t.Errorf("first fallback group cost %d round trips, want 3 (probe + 2 sets)", got)
		}
		before = client.RoundTrips()
		if _, err := client.ApplyCommitSets(ctx, sets("c", "d")); err != nil {
			t.Fatal(err)
		}
		if got := client.RoundTrips() - before; got != 2 {
			t.Errorf("latched fallback group cost %d round trips, want 2", got)
		}
	})
}

// TestPipelinedBatchFaultOrdering puts the batched path under the
// fault injector: truncated frames and connection resets mid-batch.
// The invariant under chaos is positional integrity — a result slot
// either holds its own statement's answer or an error, never a
// neighbour's — plus clean recovery once the faults stop.
func TestPipelinedBatchFaultOrdering(t *testing.T) {
	store := sqlstore.New(sqlstore.WithLockTimeout(300 * time.Millisecond))
	t.Cleanup(store.Close)
	seed(store, "t", "a", 1)
	seed(store, "t", "b", 2)
	srv := NewServer(storeapi.Local(store))
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	proxy := latency.NewProxy(srv.Addr(), 0)
	if err := proxy.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proxy.Close)
	proxy.SetFaults(&latency.FaultPlan{
		Seed:          42,
		ResetRate:     0.4,
		ResetAfterMax: 2048,
		TruncateRate:  0.05,
	})
	client := Dial(proxy.Addr())
	t.Cleanup(func() { _ = client.Close() })

	keyA := memento.Key{Table: "t", ID: "a"}
	confirmed := 0
	for i := 0; i < 40; i++ {
		err := func() error {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			txn, err := client.Begin(ctx)
			if err != nil {
				return err
			}
			results, err := storeapi.ExecBatch(ctx, txn, []storeapi.Stmt{
				{Kind: storeapi.StmtGetForUpdate, Table: "t", ID: "a"},
				{Kind: storeapi.StmtPut, Mem: memento.Memento{
					Key:    keyA,
					Fields: memento.Fields{"v": memento.Int(int64(100 + i))},
				}},
				{Kind: storeapi.StmtGet, Table: "t", ID: "b"},
				{Kind: storeapi.StmtCommit},
			})
			if err != nil {
				_ = txn.Abort(context.Background())
				return err
			}
			// Positional integrity: slot 0 is row a, slot 2 is row b —
			// under every interleaving the scatter-gather may produce.
			if r := results[0]; r.Err == nil && r.Get.Mem.Key != keyA {
				t.Fatalf("iteration %d: slot 0 answered with %v, want %v", i, r.Get.Mem.Key, keyA)
			}
			if r := results[2]; r.Err == nil && r.Get.Mem.Key != (memento.Key{Table: "t", ID: "b"}) {
				t.Fatalf("iteration %d: slot 2 answered with %v", i, r.Get.Mem.Key)
			}
			if results[3].Err == nil {
				confirmed++
			}
			return nil
		}()
		_ = err // transport errors are the faults doing their job
	}

	// Faults off: the client must reconnect and the store must reflect
	// at least every confirmed commit (version bumps once per commit;
	// commits whose ack was lost may add more).
	proxy.SetFaults(nil)
	res, err := client.AutoGet(context.Background(), "t", "a")
	if err != nil {
		t.Fatalf("post-fault AutoGet: %v", err)
	}
	if confirmed == 0 {
		t.Log("no batch survived the fault schedule; recovery still verified")
	}
	if int(res.Mem.Version) < confirmed+1 {
		t.Errorf("row a at version %d after %d confirmed commits", res.Mem.Version, confirmed)
	}
}

// TestPipelinedBatchCancellation: a cancelled context must fail the
// batch with the context error and leave the transaction abortable —
// the pinned stream goes back to the pool instead of leaking.
func TestPipelinedBatchCancellation(t *testing.T) {
	store, client := newPair(t)
	seed(store, "t", "1", 10)

	txn, err := client.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = storeapi.ExecBatch(ctx, txn, []storeapi.Stmt{
		{Kind: storeapi.StmtGet, Table: "t", ID: "1"},
		{Kind: storeapi.StmtCommit},
	})
	if err == nil {
		t.Fatal("batch on a cancelled context succeeded")
	}
	_ = txn.Abort(context.Background())

	// The client must still be usable afterwards.
	if _, err := client.AutoGet(context.Background(), "t", "1"); err != nil {
		t.Fatalf("client unusable after cancelled batch: %v", err)
	}
}

// BenchmarkPipelinedGets measures an 8-statement read batch on a live
// connection — the shape a portfolio-page interaction takes with
// batching on. CI budgets its allocs/op.
func BenchmarkPipelinedGets(b *testing.B) {
	store := sqlstore.New()
	defer store.Close()
	ids := []string{"0", "1", "2", "3", "4", "5", "6", "7"}
	stmts := make([]storeapi.Stmt, len(ids))
	for i, id := range ids {
		seed(store, "t", id, int64(i))
		stmts[i] = storeapi.Stmt{Kind: storeapi.StmtGet, Table: "t", ID: id}
	}
	srv := NewServer(storeapi.Local(store))
	if err := srv.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client := Dial(srv.Addr())
	defer client.Close()

	ctx := context.Background()
	txn, err := client.Begin(ctx)
	if err != nil {
		b.Fatal(err)
	}
	defer txn.Abort(ctx)
	if _, err := storeapi.ExecBatch(ctx, txn, stmts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := storeapi.ExecBatch(ctx, txn, stmts)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != len(stmts) {
			b.Fatalf("got %d results", len(results))
		}
	}
}

package dbwire

import (
	"context"
	"net"
	"testing"
	"time"

	"edgeejb/internal/sqlstore"
	"edgeejb/internal/storeapi"
	"edgeejb/internal/trade"
	"edgeejb/internal/wire"
)

// startServer starts a dbwire server over a fresh store.
func startServer(t *testing.T) (*sqlstore.Store, *Server) {
	t.Helper()
	store := sqlstore.New()
	srv := NewServer(storeapi.Local(store))
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		store.Close()
	})
	return store, srv
}

// TestServerSurvivesGarbageFrames: raw garbage on the wire must close
// that connection cleanly without disturbing other clients.
func TestServerSurvivesGarbageFrames(t *testing.T) {
	store, srv := startServer(t)
	seed(store, "t", "1", 1)
	client := Dial(srv.Addr())
	t.Cleanup(func() { _ = client.Close() })
	ctx := context.Background()

	// Blast garbage at the server on raw connections. "GET / HTTP/1.1"
	// parses as an absurd length prefix; the zero payload parses as a
	// zero-length frame; both are protocol violations.
	for _, payload := range [][]byte{
		[]byte("GET / HTTP/1.1\r\n\r\n"),
		{0x00, 0x01, 0x02, 0x03, 0xff, 0xfe},
		make([]byte, 4096), // zeros
	} {
		raw, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		_, _ = raw.Write(payload)
		_ = raw.SetReadDeadline(time.Now().Add(2 * time.Second))
		buf := make([]byte, 64)
		_, _ = raw.Read(buf) // server should close; any response is fine
		_ = raw.Close()
	}

	// A well-behaved client still works.
	if err := client.Ping(ctx); err != nil {
		t.Fatalf("server died after garbage: %v", err)
	}
	if _, err := client.AutoGet(ctx, "t", "1"); err != nil {
		t.Fatalf("server state corrupted: %v", err)
	}
}

// TestServerRejectsUnknownOp: a syntactically valid request with a bogus
// op code gets a BadRequest response, and the connection stays usable.
func TestServerRejectsUnknownOp(t *testing.T) {
	store, srv := startServer(t)
	seed(store, "t", "1", 1)
	ctx := context.Background()

	// A raw wire client speaks correct framing but sends an op the
	// protocol dispatch does not know.
	w := wire.NewClient(srv.Addr())
	defer w.Close()

	resp := new(Response)
	if err := w.Call(ctx, &Request{Op: OpCode(200)}, resp); err != nil {
		t.Fatal(err)
	}
	if resp.Code != CodeBadRequest {
		t.Fatalf("code = %v, want BadRequest", resp.Code)
	}

	// Same client (and its connection) keeps working for valid requests.
	resp2 := new(Response)
	if err := w.Call(ctx, &Request{Op: OpPing}, resp2); err != nil {
		t.Fatal(err)
	}
	if resp2.Code != CodeOK {
		t.Fatalf("ping after bad request: %v", resp2.Code)
	}
}

// TestUnknownTransactionRejected: operating on a transaction id that was
// never begun (or was already finished) is a BadRequest, not a crash.
func TestUnknownTransactionRejected(t *testing.T) {
	store, srv := startServer(t)
	seed(store, "t", "1", 1)
	ctx := context.Background()

	w := wire.NewClient(srv.Addr())
	defer w.Close()

	for _, op := range []OpCode{OpGet, OpPut, OpCommit, OpAbort, OpQuery} {
		resp := new(Response)
		if err := w.Call(ctx, &Request{Op: op, Tx: 424242, Table: "t", ID: "1"}, resp); err != nil {
			t.Fatal(err)
		}
		if resp.Code != CodeBadRequest {
			t.Errorf("%s on unknown tx: code %v, want BadRequest", op, resp.Code)
		}
	}
}

// TestStaleConnectionRetryAfterServerRestart: a pooled client connection
// outlives a server restart; the next one-shot op must transparently
// redial instead of failing.
func TestStaleConnectionRetryAfterServerRestart(t *testing.T) {
	store := sqlstore.New()
	defer store.Close()
	store.Seed((&trade.Quote{Symbol: "s-1", Price: 10}).ToMemento())

	srv := NewServer(storeapi.Local(store))
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	client := Dial(addr)
	defer client.Close()
	ctx := context.Background()

	if _, err := client.AutoGet(ctx, trade.TableQuote, "s-1"); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv2 := NewServer(storeapi.Local(store))
	if err := srv2.Start(addr); err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()

	// The pooled connection is stale; the client must retry on a fresh
	// dial without surfacing an error.
	if _, err := client.AutoGet(ctx, trade.TableQuote, "s-1"); err != nil {
		t.Fatalf("stale pooled connection not retried: %v", err)
	}
	// Begin must also survive a stale pooled connection.
	txn, err := client.Begin(ctx)
	if err != nil {
		t.Fatalf("begin after restart: %v", err)
	}
	_ = txn.Abort(ctx)
}

package dbwire

import (
	"bufio"
	"context"
	"encoding/gob"
	"net"
	"testing"
	"time"

	"edgeejb/internal/sqlstore"
	"edgeejb/internal/storeapi"
	"edgeejb/internal/trade"
)

// TestServerSurvivesGarbageFrames: raw garbage on the wire must close
// that connection cleanly without disturbing other clients.
func TestServerSurvivesGarbageFrames(t *testing.T) {
	store, client := newPair(t)
	seed(store, "t", "1", 1)
	ctx := context.Background()

	// Blast garbage at the server on raw connections.
	srvAddr := client.addr
	for _, payload := range [][]byte{
		[]byte("GET / HTTP/1.1\r\n\r\n"),
		{0x00, 0x01, 0x02, 0x03, 0xff, 0xfe},
		make([]byte, 4096), // zeros
	} {
		raw, err := net.Dial("tcp", srvAddr)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = raw.Write(payload)
		_ = raw.SetReadDeadline(time.Now().Add(2 * time.Second))
		buf := make([]byte, 64)
		_, _ = raw.Read(buf) // server should close; any response is fine
		_ = raw.Close()
	}

	// A well-behaved client still works.
	if err := client.Ping(ctx); err != nil {
		t.Fatalf("server died after garbage: %v", err)
	}
	if _, err := client.AutoGet(ctx, "t", "1"); err != nil {
		t.Fatalf("server state corrupted: %v", err)
	}
}

// TestServerRejectsUnknownOp: a syntactically valid request with a bogus
// op code gets a BadRequest response, and the connection stays usable.
func TestServerRejectsUnknownOp(t *testing.T) {
	store, _ := newPair(t)
	seed(store, "t", "1", 1)

	srv := NewServer(storeapi.Local(store))
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	enc := gob.NewEncoder(bw)
	dec := gob.NewDecoder(bufio.NewReader(conn))

	if err := enc.Encode(&Request{Op: OpCode(200)}); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Code != CodeBadRequest {
		t.Fatalf("code = %v, want BadRequest", resp.Code)
	}

	// Same connection keeps working for valid requests. (Decode into a
	// FRESH struct: gob omits zero-valued fields, so reusing resp would
	// leave the previous non-zero Code behind — the same reason the
	// client's roundTrip allocates a new Response per call.)
	if err := enc.Encode(&Request{Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	var resp2 Response
	if err := dec.Decode(&resp2); err != nil {
		t.Fatal(err)
	}
	if resp2.Code != CodeOK {
		t.Fatalf("ping after bad request: %v", resp2.Code)
	}
}

// TestUnknownTransactionRejected: operating on a transaction id that was
// never begun (or was already finished) is a BadRequest, not a crash.
func TestUnknownTransactionRejected(t *testing.T) {
	store, _ := newPair(t)
	seed(store, "t", "1", 1)
	srv := NewServer(storeapi.Local(store))
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	enc := gob.NewEncoder(bw)
	dec := gob.NewDecoder(bufio.NewReader(conn))

	for _, op := range []OpCode{OpGet, OpPut, OpCommit, OpAbort, OpQuery} {
		if err := enc.Encode(&Request{Op: op, Tx: 424242, Table: "t", ID: "1"}); err != nil {
			t.Fatal(err)
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		var resp Response
		if err := dec.Decode(&resp); err != nil {
			t.Fatal(err)
		}
		if resp.Code != CodeBadRequest {
			t.Errorf("%s on unknown tx: code %v, want BadRequest", op, resp.Code)
		}
	}
}

// TestStaleConnectionRetryAfterServerRestart: a pooled client connection
// outlives a server restart; the next one-shot op must transparently
// redial instead of failing.
func TestStaleConnectionRetryAfterServerRestart(t *testing.T) {
	store := sqlstore.New()
	defer store.Close()
	store.Seed((&trade.Quote{Symbol: "s-1", Price: 10}).ToMemento())

	srv := NewServer(storeapi.Local(store))
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	client := Dial(addr)
	defer client.Close()
	ctx := context.Background()

	if _, err := client.AutoGet(ctx, trade.TableQuote, "s-1"); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv2 := NewServer(storeapi.Local(store))
	if err := srv2.Start(addr); err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()

	// The pooled connection is stale; the client must retry on a fresh
	// dial without surfacing an error.
	if _, err := client.AutoGet(ctx, trade.TableQuote, "s-1"); err != nil {
		t.Fatalf("stale pooled connection not retried: %v", err)
	}
	// Begin must also survive a stale pooled connection.
	txn, err := client.Begin(ctx)
	if err != nil {
		t.Fatalf("begin after restart: %v", err)
	}
	_ = txn.Abort(ctx)
}

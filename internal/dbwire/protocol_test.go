package dbwire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"

	"edgeejb/internal/latency"
	"edgeejb/internal/memento"
	"edgeejb/internal/sqlstore"
	"edgeejb/internal/storeapi"
)

func TestOpCodeStrings(t *testing.T) {
	want := map[OpCode]string{
		OpBegin: "Begin", OpGet: "Get", OpGetForUpdate: "GetForUpdate",
		OpPut: "Put", OpInsert: "Insert", OpDelete: "Delete",
		OpQuery: "Query", OpCheckVersion: "CheckVersion",
		OpCheckedPut: "CheckedPut", OpCheckedDelete: "CheckedDelete",
		OpCommit: "Commit", OpAbort: "Abort",
		OpApplyCommitSet: "ApplyCommitSet", OpSubscribe: "Subscribe",
		OpPing: "Ping", OpAutoGet: "AutoGet", OpAutoQuery: "AutoQuery",
		OpCode(250): "OpCode(250)",
	}
	for op, s := range want {
		if got := op.String(); got != s {
			t.Errorf("OpCode(%d).String() = %q, want %q", op, got, s)
		}
	}
}

// TestErrorCodecRoundTrip: every sentinel must survive encode/decode so
// errors.Is works across the wire; unknown errors map to Internal.
func TestErrorCodecRoundTrip(t *testing.T) {
	sentinels := []error{
		sqlstore.ErrNotFound,
		sqlstore.ErrExists,
		sqlstore.ErrConflict,
		sqlstore.ErrTxDone,
		sqlstore.ErrClosed,
	}
	for _, sentinel := range sentinels {
		wrapped := fmt.Errorf("context: %w", sentinel)
		code, msg := encodeErr(wrapped)
		back := decodeErr(&Response{Code: code, Msg: msg})
		if !errors.Is(back, sentinel) {
			t.Errorf("sentinel %v lost across codec (code %d)", sentinel, code)
		}
		if back.Error() != wrapped.Error() {
			t.Errorf("message %q != %q", back.Error(), wrapped.Error())
		}
	}
	// nil round trip.
	if code, msg := encodeErr(nil); decodeErr(&Response{Code: code, Msg: msg}) != nil {
		t.Error("nil error did not survive")
	}
	// Unknown errors map to Internal and stay errors.
	code, msg := encodeErr(errors.New("boom"))
	if code != CodeInternal {
		t.Errorf("unknown error code = %d", code)
	}
	if got := decodeErr(&Response{Code: code, Msg: msg}); got == nil || !strings.Contains(got.Error(), "boom") {
		t.Errorf("internal error mangled: %v", got)
	}
	// BadRequest decodes to a plain error.
	if got := decodeErr(&Response{Code: CodeBadRequest, Msg: "nope"}); got == nil || !strings.Contains(got.Error(), "nope") {
		t.Errorf("bad request mangled: %v", got)
	}
	// Empty message falls back to the sentinel's text.
	if got := decodeErr(&Response{Code: CodeNotFound}); got.Error() != sqlstore.ErrNotFound.Error() {
		t.Errorf("empty-message fallback = %q", got.Error())
	}
}

func TestRemoteCheckedOps(t *testing.T) {
	store, client := newPair(t)
	seed(store, "t", "1", 10)
	ctx := context.Background()

	txn, err := client.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	key := memento.Key{Table: "t", ID: "1"}
	if err := txn.CheckedPut(ctx, memento.Memento{
		Key: key, Version: 1, Fields: memento.Fields{"v": memento.Int(11)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	txn2, err := client.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := txn2.CheckedDelete(ctx, key, 1); !errors.Is(err, sqlstore.ErrConflict) {
		t.Fatalf("stale remote CheckedDelete: %v", err)
	}
	_ = txn2.Abort(ctx)
	txn3, err := client.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := txn3.CheckedDelete(ctx, key, 2); err != nil {
		t.Fatal(err)
	}
	if err := txn3.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if store.RowCount("t") != 0 {
		t.Error("remote checked delete not applied")
	}
}

func TestRemoteGetForUpdate(t *testing.T) {
	store, client := newPair(t)
	seed(store, "t", "1", 10)
	ctx := context.Background()

	txn, err := client.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	res, err := txn.GetForUpdate(ctx, "t", "1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Mem.Fields["v"].Int != 10 {
		t.Errorf("v = %d", res.Mem.Fields["v"].Int)
	}
	// The X lock blocks a second transaction's read until release.
	txn2, err := client.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := txn2.Get(ctx, "t", "1"); !errors.Is(err, sqlstore.ErrConflict) {
		t.Fatalf("expected lock conflict through the wire, got %v", err)
	}
	_ = txn2.Abort(ctx)
	_ = txn.Abort(ctx)
}

// TestWithDialer verifies custom dialers are honored (here: counting
// bytes on the client side of the path).
func TestWithDialer(t *testing.T) {
	store, _ := newPair(t)
	seed(store, "t", "1", 1)
	srv := NewServer(storeapi.Local(store))
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var counter latency.Counter
	client := Dial(srv.Addr(), WithDialer(func(ctx context.Context, addr string) (net.Conn, error) {
		var d net.Dialer
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return nil, err
		}
		return latency.NewCountingConn(conn, &counter), nil
	}))
	defer client.Close()

	if _, err := client.AutoGet(context.Background(), "t", "1"); err != nil {
		t.Fatal(err)
	}
	if counter.ToTarget() == 0 || counter.FromTarget() == 0 {
		t.Errorf("custom dialer bypassed: %d/%d bytes", counter.ToTarget(), counter.FromTarget())
	}
	if counter.Conns() != 1 {
		t.Errorf("conns = %d", counter.Conns())
	}
}

func TestWireErrorMessageFallback(t *testing.T) {
	e := wireError{sentinel: sqlstore.ErrConflict}
	if e.Error() != sqlstore.ErrConflict.Error() {
		t.Errorf("fallback = %q", e.Error())
	}
	e = wireError{sentinel: sqlstore.ErrConflict, msg: "specific"}
	if e.Error() != "specific" {
		t.Errorf("message = %q", e.Error())
	}
}

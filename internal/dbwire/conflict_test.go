package dbwire

import (
	"context"
	"errors"
	"testing"

	"edgeejb/internal/memento"
	"edgeejb/internal/obs"
	"edgeejb/internal/sqlstore"
	"edgeejb/internal/storeapi"
)

// TestConflictAttributionSurvivesTheWire: a commit rejected at the
// store comes back over the protocol as a *sqlstore.ConflictError with
// the key, versions, and winner attribution intact, not just as the
// bare ErrConflict sentinel.
func TestConflictAttributionSurvivesTheWire(t *testing.T) {
	store, client := newPair(t)
	seed(store, "t", "x", 1)
	ctx := context.Background()

	winnerCtx, winnerTrace := obs.WithNewTrace(context.Background())
	winRes, err := store.ApplyCommitSet(winnerCtx, memento.CommitSet{
		Writes: []memento.Memento{{
			Key:     memento.Key{Table: "t", ID: "x"},
			Version: 1,
			Fields:  memento.Fields{"v": memento.Int(2)},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}

	_, err = client.ApplyCommitSet(ctx, memento.CommitSet{
		Writes: []memento.Memento{{
			Key:     memento.Key{Table: "t", ID: "x"},
			Version: 1,
			Fields:  memento.Fields{"v": memento.Int(3)},
		}},
	})
	if !errors.Is(err, sqlstore.ErrConflict) {
		t.Fatalf("got %v, want ErrConflict", err)
	}
	var ce *sqlstore.ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("wire error %T lost the conflict attribution", err)
	}
	if ce.Key != (memento.Key{Table: "t", ID: "x"}) {
		t.Errorf("key = %v", ce.Key)
	}
	if ce.Expected != 1 || ce.Actual != 2 {
		t.Errorf("versions = (%d, %d), want (1, 2)", ce.Expected, ce.Actual)
	}
	if ce.WinnerTrace != winnerTrace || ce.WinnerTx != winRes.TxID {
		t.Errorf("winner = (tx %d, trace %d), want (tx %d, trace %d)",
			ce.WinnerTx, ce.WinnerTrace, winRes.TxID, winnerTrace)
	}
	if ce.CommittedAt.IsZero() {
		t.Error("winner commit time lost on the wire")
	}
	if ce.Detail == "" {
		t.Error("conflict detail lost on the wire")
	}
}

// TestConflictAttributionSurvivesRelay covers the two-hop composition
// the split-servers back end uses: edge → backend server → store. The
// middle hop decodes the conflict and must re-encode it intact.
func TestConflictAttributionSurvivesRelay(t *testing.T) {
	store := sqlstore.New()
	defer store.Close()
	seed(store, "t", "x", 1)

	inner := NewServer(storeapi.Local(store))
	if err := inner.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	mid := Dial(inner.Addr())
	defer mid.Close()
	outer := NewServer(mid)
	if err := outer.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer outer.Close()
	client := Dial(outer.Addr())
	defer client.Close()

	winnerCtx, winnerTrace := obs.WithNewTrace(context.Background())
	if _, err := store.ApplyCommitSet(winnerCtx, memento.CommitSet{
		Writes: []memento.Memento{{
			Key:     memento.Key{Table: "t", ID: "x"},
			Version: 1,
			Fields:  memento.Fields{"v": memento.Int(2)},
		}},
	}); err != nil {
		t.Fatal(err)
	}

	_, err := client.ApplyCommitSet(context.Background(), memento.CommitSet{
		Reads: []memento.ReadProof{{Key: memento.Key{Table: "t", ID: "x"}, Version: 1}},
	})
	var ce *sqlstore.ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("relayed error %T lost the conflict attribution (%v)", err, err)
	}
	if ce.WinnerTrace != winnerTrace {
		t.Errorf("winner trace = %d, want %d after relay", ce.WinnerTrace, winnerTrace)
	}
}

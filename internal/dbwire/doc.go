// Package dbwire implements the network protocol between application
// servers and the database tier: a gob RPC over the shared transport in
// package wire, in which every statement is one request/response round
// trip. This mirrors the role of the JDBC driver protocol in the paper —
// the per-statement round trip is precisely what makes the ES/RDB
// architecture sensitive to path latency (Table 2), and the
// single-message ApplyCommitSet operation is what lets the
// split-servers configuration commit in one round trip.
//
// The same protocol also carries the server-push invalidation stream
// that cache-enhanced application servers subscribe to ("invalidation
// when notified by the server about an update", §1.4).
package dbwire

package dbwire

import (
	"bufio"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"edgeejb/internal/memento"
	"edgeejb/internal/sqlstore"
	"edgeejb/internal/storeapi"
)

// DialFunc opens a connection to the database tier. The experiment
// harness supplies dialers that route through the delay proxy or wrap
// connections in byte counters.
type DialFunc func(ctx context.Context, addr string) (net.Conn, error)

// Client is the application-server-side driver: the JDBC-driver
// equivalent. It maintains a small connection pool; a transaction pins
// one connection for its lifetime (JDBC session semantics) and every
// statement is one round trip.
//
// Client implements storeapi.Conn.
type Client struct {
	addr string
	dial DialFunc

	mu     sync.Mutex
	idle   []*wireConn
	subs   []net.Conn
	closed bool

	roundTrips atomic.Uint64
}

var _ storeapi.Conn = (*Client)(nil)

// Option configures a Client.
type Option interface {
	apply(*Client)
}

type dialerOption DialFunc

func (d dialerOption) apply(c *Client) { c.dial = DialFunc(d) }

// WithDialer overrides how connections are opened (e.g. to inject byte
// counting on the measured path).
func WithDialer(d DialFunc) Option { return dialerOption(d) }

// Dial creates a client for the database server at addr. Connections are
// opened lazily.
func Dial(addr string, opts ...Option) *Client {
	c := &Client{
		addr: addr,
		dial: func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		},
	}
	for _, o := range opts {
		o.apply(c)
	}
	return c
}

// RoundTrips returns the number of request/response round trips the
// client has performed. Tests use it to verify the per-algorithm access
// counts that drive the paper's latency-sensitivity results.
func (c *Client) RoundTrips() uint64 { return c.roundTrips.Load() }

// Close closes idle pooled connections and subscription connections.
// Connections pinned by in-flight transactions close when those
// transactions finish.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, wc := range c.idle {
		_ = wc.c.Close()
	}
	c.idle = nil
	for _, sc := range c.subs {
		_ = sc.Close()
	}
	c.subs = nil
	return nil
}

// wireConn is one pooled connection with its codec state.
type wireConn struct {
	c   net.Conn
	bw  *bufio.Writer
	enc *gob.Encoder
	dec *gob.Decoder
}

// checkout returns a connection plus whether it came from the idle pool
// (a pooled connection may have gone stale — e.g. the server restarted —
// so one-shot operations retry once on a fresh dial when a pooled
// connection fails).
func (c *Client) checkout(ctx context.Context) (*wireConn, bool, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, false, errors.New("dbwire: client closed")
	}
	if n := len(c.idle); n > 0 {
		wc := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return wc, true, nil
	}
	c.mu.Unlock()

	conn, err := c.dial(ctx, c.addr)
	if err != nil {
		return nil, false, fmt.Errorf("dbwire: dial %s: %w", c.addr, err)
	}
	bw := bufio.NewWriter(conn)
	return &wireConn{
		c:   conn,
		bw:  bw,
		enc: gob.NewEncoder(bw),
		dec: gob.NewDecoder(bufio.NewReader(conn)),
	}, false, nil
}

// oneShot runs a single request/response exchange on a pooled
// connection, retrying once on a fresh connection if a pooled one turns
// out to be stale.
func (c *Client) oneShot(ctx context.Context, req *Request) (*Response, error) {
	for attempt := 0; ; attempt++ {
		wc, reused, err := c.checkout(ctx)
		if err != nil {
			return nil, err
		}
		resp, err := c.roundTrip(wc, req)
		c.checkin(wc, err != nil)
		if err != nil {
			if reused && attempt == 0 {
				continue // stale pooled connection; retry fresh
			}
			return nil, err
		}
		return resp, nil
	}
}

// checkin returns a healthy connection to the pool; broken connections
// are closed instead.
func (c *Client) checkin(wc *wireConn, broken bool) {
	if broken {
		_ = wc.c.Close()
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || len(c.idle) >= 4 {
		_ = wc.c.Close()
		return
	}
	c.idle = append(c.idle, wc)
}

// roundTrip performs one request/response exchange.
func (c *Client) roundTrip(wc *wireConn, req *Request) (*Response, error) {
	if err := wc.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("dbwire: send %s: %w", req.Op, err)
	}
	if err := wc.bw.Flush(); err != nil {
		return nil, fmt.Errorf("dbwire: flush %s: %w", req.Op, err)
	}
	var resp Response
	if err := wc.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("dbwire: recv %s: %w", req.Op, err)
	}
	c.roundTrips.Add(1)
	return &resp, nil
}

// Ping verifies connectivity with one round trip.
func (c *Client) Ping(ctx context.Context) error {
	resp, err := c.oneShot(ctx, &Request{Op: OpPing})
	if err != nil {
		return err
	}
	return decodeErr(resp.Code, resp.Msg)
}

// Begin starts a remote transaction, pinning a connection until the
// transaction commits or aborts. A stale pooled connection is retried
// once on a fresh dial.
func (c *Client) Begin(ctx context.Context) (storeapi.Txn, error) {
	for attempt := 0; ; attempt++ {
		wc, reused, err := c.checkout(ctx)
		if err != nil {
			return nil, err
		}
		resp, err := c.roundTrip(wc, &Request{Op: OpBegin})
		if err != nil {
			c.checkin(wc, true)
			if reused && attempt == 0 {
				continue
			}
			return nil, err
		}
		if err := decodeErr(resp.Code, resp.Msg); err != nil {
			c.checkin(wc, false)
			return nil, err
		}
		return &remoteTxn{client: c, wc: wc, id: resp.Tx}, nil
	}
}

// ApplyCommitSet ships a whole optimistic commit set in ONE round trip —
// the split-servers commit path.
//
// Retry safety: oneShot retries only when a POOLED connection fails —
// the "went bad while idle" case (server restarted under the pool), in
// which the request never reached a live server. In the rare window
// where a server dies after applying but before replying, a retry would
// re-submit the set; version validation then rejects the duplicate with
// a conflict (every write's expected version has already been bumped),
// so the store is never corrupted — the caller sees a spurious conflict
// and re-runs its transaction, which is exactly the optimistic
// programming model.
func (c *Client) ApplyCommitSet(ctx context.Context, cs memento.CommitSet) (sqlstore.ApplyResult, error) {
	resp, err := c.oneShot(ctx, &Request{Op: OpApplyCommitSet, Set: cs})
	if err != nil {
		return sqlstore.ApplyResult{}, err
	}
	if err := decodeErr(resp.Code, resp.Msg); err != nil {
		return sqlstore.ApplyResult{}, err
	}
	return sqlstore.ApplyResult{TxID: resp.Tx, NewVersions: resp.NewVersions}, nil
}

// AutoGet reads one row in an autocommit transaction: one round trip.
func (c *Client) AutoGet(ctx context.Context, table, id string) (memento.Memento, error) {
	resp, err := c.oneShot(ctx, &Request{Op: OpAutoGet, Table: table, ID: id})
	if err != nil {
		return memento.Memento{}, err
	}
	if err := decodeErr(resp.Code, resp.Msg); err != nil {
		return memento.Memento{}, err
	}
	return resp.Mem, nil
}

// AutoQuery runs one predicate query in an autocommit transaction: one
// round trip.
func (c *Client) AutoQuery(ctx context.Context, q memento.Query) ([]memento.Memento, error) {
	resp, err := c.oneShot(ctx, &Request{Op: OpAutoQuery, Query: q})
	if err != nil {
		return nil, err
	}
	if err := decodeErr(resp.Code, resp.Msg); err != nil {
		return nil, err
	}
	return resp.Mems, nil
}

// Subscribe opens a dedicated connection carrying the server-push
// invalidation stream. The returned channel closes when cancel is called
// or the connection drops.
func (c *Client) Subscribe(ctx context.Context) (<-chan sqlstore.Notice, func(), error) {
	conn, err := c.dial(ctx, c.addr)
	if err != nil {
		return nil, nil, fmt.Errorf("dbwire: dial %s: %w", c.addr, err)
	}
	bw := bufio.NewWriter(conn)
	enc := gob.NewEncoder(bw)
	dec := gob.NewDecoder(bufio.NewReader(conn))
	if err := enc.Encode(&Request{Op: OpSubscribe}); err != nil {
		_ = conn.Close()
		return nil, nil, err
	}
	if err := bw.Flush(); err != nil {
		_ = conn.Close()
		return nil, nil, err
	}
	var ack Response
	if err := dec.Decode(&ack); err != nil {
		_ = conn.Close()
		return nil, nil, err
	}
	if err := decodeErr(ack.Code, ack.Msg); err != nil {
		_ = conn.Close()
		return nil, nil, err
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		_ = conn.Close()
		return nil, nil, errors.New("dbwire: client closed")
	}
	c.subs = append(c.subs, conn)
	c.mu.Unlock()

	ch := make(chan sqlstore.Notice, 64)
	var once sync.Once
	cancel := func() { once.Do(func() { _ = conn.Close() }) }
	go func() {
		defer close(ch)
		defer cancel()
		for {
			var resp Response
			if err := dec.Decode(&resp); err != nil {
				return
			}
			select {
			case ch <- resp.Notice:
			default:
				// Drop rather than stall the stream; notices are hints.
			}
		}
	}()
	return ch, cancel, nil
}

// remoteTxn drives one server-side transaction over a pinned connection.
type remoteTxn struct {
	client *Client
	wc     *wireConn
	id     uint64
	done   bool
	broken bool
}

var _ storeapi.Txn = (*remoteTxn)(nil)

// ID returns the datastore transaction identifier assigned at Begin.
func (t *remoteTxn) ID() uint64 { return t.id }

func (t *remoteTxn) call(req *Request) (*Response, error) {
	if t.done {
		return nil, sqlstore.ErrTxDone
	}
	req.Tx = t.id
	resp, err := t.client.roundTrip(t.wc, req)
	if err != nil {
		// The connection is unusable; the server aborts the transaction
		// when it notices the drop.
		t.broken = true
		t.finish()
		return nil, err
	}
	if derr := decodeErr(resp.Code, resp.Msg); derr != nil {
		return nil, derr
	}
	return resp, nil
}

func (t *remoteTxn) finish() {
	if t.done {
		return
	}
	t.done = true
	t.client.checkin(t.wc, t.broken)
}

func (t *remoteTxn) Get(ctx context.Context, table, id string) (memento.Memento, error) {
	resp, err := t.call(&Request{Op: OpGet, Table: table, ID: id})
	if err != nil {
		return memento.Memento{}, err
	}
	return resp.Mem, nil
}

func (t *remoteTxn) GetForUpdate(ctx context.Context, table, id string) (memento.Memento, error) {
	resp, err := t.call(&Request{Op: OpGetForUpdate, Table: table, ID: id})
	if err != nil {
		return memento.Memento{}, err
	}
	return resp.Mem, nil
}

func (t *remoteTxn) Put(ctx context.Context, m memento.Memento) error {
	_, err := t.call(&Request{Op: OpPut, Mem: m})
	return err
}

func (t *remoteTxn) Insert(ctx context.Context, m memento.Memento) error {
	_, err := t.call(&Request{Op: OpInsert, Mem: m})
	return err
}

func (t *remoteTxn) Delete(ctx context.Context, table, id string) error {
	_, err := t.call(&Request{Op: OpDelete, Table: table, ID: id})
	return err
}

func (t *remoteTxn) Query(ctx context.Context, q memento.Query) ([]memento.Memento, error) {
	resp, err := t.call(&Request{Op: OpQuery, Query: q})
	if err != nil {
		return nil, err
	}
	return resp.Mems, nil
}

func (t *remoteTxn) CheckVersion(ctx context.Context, key memento.Key, version uint64) error {
	_, err := t.call(&Request{Op: OpCheckVersion, Key: key, Version: version})
	return err
}

func (t *remoteTxn) CheckedPut(ctx context.Context, m memento.Memento) error {
	_, err := t.call(&Request{Op: OpCheckedPut, Mem: m})
	return err
}

func (t *remoteTxn) CheckedDelete(ctx context.Context, key memento.Key, version uint64) error {
	_, err := t.call(&Request{Op: OpCheckedDelete, Key: key, Version: version})
	return err
}

func (t *remoteTxn) Commit(ctx context.Context) error {
	_, err := t.call(&Request{Op: OpCommit})
	t.finish()
	return err
}

func (t *remoteTxn) Abort(ctx context.Context) error {
	_, err := t.call(&Request{Op: OpAbort})
	t.finish()
	return err
}

package dbwire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"time"

	"edgeejb/internal/memento"
	"edgeejb/internal/obs"
	"edgeejb/internal/sqlstore"
	"edgeejb/internal/storeapi"
	"edgeejb/internal/wire"
)

// obsPipelineDepth records how many statements each batched frame kept
// in flight together — the pipelining depth the batch path buys over
// one-statement-per-round-trip. Observed as a count (1 unit = 1
// statement), not a duration.
var obsPipelineDepth = obs.Default.Histogram("dbwire.pipeline_depth")

// DialFunc opens a connection to the database tier. The experiment
// harness supplies dialers that route through the delay proxy or wrap
// connections in byte counters.
type DialFunc func(ctx context.Context, addr string) (net.Conn, error)

// Client is the application-server-side driver: the JDBC-driver
// equivalent, built on the shared wire transport. One-shot (autocommit)
// operations multiplex over shared connections; a transaction pins one
// connection for its lifetime (JDBC session semantics) and every
// statement is one round trip.
//
// Client implements storeapi.Conn.
type Client struct {
	w *wire.Client
	// noBatch / noGroup latch when the server answers "unknown op" for
	// OpBatch / OpApplyCommitSets: the peer predates them, so every later
	// batch falls straight back to one round trip per statement (set)
	// without re-probing.
	noBatch atomic.Bool
	noGroup atomic.Bool
}

var _ storeapi.Conn = (*Client)(nil)

// Option configures a Client.
type Option interface {
	apply(*clientConfig)
}

type clientConfig struct {
	wopts []wire.Option
	codec string
}

type dialerOption DialFunc

func (d dialerOption) apply(cfg *clientConfig) {
	cfg.wopts = append(cfg.wopts, wire.WithDialer(wire.DialFunc(d)))
}

// WithDialer overrides how connections are opened (e.g. to inject byte
// counting on the measured path).
func WithDialer(d DialFunc) Option { return dialerOption(d) }

type retryOption wire.RetryPolicy

func (o retryOption) apply(cfg *clientConfig) {
	cfg.wopts = append(cfg.wopts, wire.WithRetryPolicy(wire.RetryPolicy(o)))
}

// WithRetryPolicy overrides the retry budget for one-shot operations
// and the Begin/Subscribe handshakes. The dbwire protocol is safe to
// retry: reads are idempotent and commit sets are duplicate-rejected by
// version validation (see ApplyCommitSet).
func WithRetryPolicy(p wire.RetryPolicy) Option { return retryOption(p) }

type codecOption string

func (o codecOption) apply(cfg *clientConfig) { cfg.codec = string(o) }

// WithCodec selects the body codec the client negotiates on each fresh
// connection: "binary" (the default — compact hand-rolled encoding) or
// "gob" (no negotiation, the wire format every peer speaks). With
// "binary" the client sends an OpHello first on every new connection;
// peers that predate the handshake answer "unknown op" and the
// connection simply stays on gob, so mixed versions interoperate.
func WithCodec(name string) Option { return codecOption(name) }

// Dial creates a client for the database server at addr. Connections
// are opened lazily. Failed one-shot operations and pinned-stream
// handshakes are retried on fresh connections under a bounded, jittered
// backoff budget (wire.DefaultRetryPolicy unless overridden); the
// retries consumed are surfaced in WireStats().Retries.
func Dial(addr string, opts ...Option) *Client {
	cfg := &clientConfig{wopts: []wire.Option{wire.WithRetry()}, codec: codecBinary}
	for _, o := range opts {
		o.apply(cfg)
	}
	if cfg.codec != codecGob {
		cfg.wopts = append(cfg.wopts, wire.WithPreflight(negotiateCodec(cfg.codec)))
	}
	return &Client{w: wire.NewClient(addr, cfg.wopts...)}
}

// negotiateCodec is the connection preflight that runs the OpHello
// handshake on every fresh connection, before it carries any caller
// traffic. The hello itself always travels in gob; only after the
// server's acceptance do both directions switch. Any non-acceptance —
// an old peer's "unknown op", a declined offer — leaves the connection
// on gob, which every peer speaks.
func negotiateCodec(name string) func(ctx context.Context, pc wire.PreflightConn) error {
	return func(ctx context.Context, pc wire.PreflightConn) error {
		resp := new(Response)
		if err := pc.Call(ctx, &Request{Op: OpHello, Codecs: []string{name}}, resp); err != nil {
			return err
		}
		if resp.Code == CodeOK && resp.Codec == codecBinary && name == codecBinary {
			pc.SetBodyCodec(binCodec)
			wire.NoteCodec(codecBinary)
			return nil
		}
		wire.NoteCodec(codecGob)
		return nil
	}
}

// RoundTrips returns the number of request/response round trips the
// client has performed. Tests use it to verify the per-algorithm access
// counts that drive the paper's latency-sensitivity results. The
// subscription and codec handshakes are excluded: they set up the
// connection (a push stream, a body codec) rather than performing a
// data access, and the hello in particular is a per-connection cost
// amortized over the connection's life, not a per-statement one.
func (c *Client) RoundTrips() uint64 {
	s := c.w.Stats()
	return s.RoundTrips - s.Ops[OpSubscribe.String()].Count - s.Ops[OpHello.String()].Count
}

// WireStats returns the transport counters (bytes, round trips, per-op
// latency) for every connection this client has opened.
func (c *Client) WireStats() wire.Stats { return c.w.Stats() }

// NumConns returns the number of TCP connections currently open,
// including pooled idle ones. Leak tests use it to prove that aborted
// and panicked transactions release their pinned connections.
func (c *Client) NumConns() int { return c.w.NumConns() }

// Close tears down every connection, including ones pinned by
// in-flight transactions and subscriptions.
func (c *Client) Close() error { return c.w.Close() }

// oneShot runs a single request/response exchange on a shared
// multiplexed connection (retry-once semantics live in the transport).
func (c *Client) oneShot(ctx context.Context, req *Request) (*Response, error) {
	resp := new(Response)
	if err := c.w.Call(ctx, req, resp); err != nil {
		return nil, fmt.Errorf("dbwire: %s: %w", req.Op, err)
	}
	return resp, nil
}

// Ping verifies connectivity with one round trip.
func (c *Client) Ping(ctx context.Context) error {
	resp, err := c.oneShot(ctx, &Request{Op: OpPing})
	if err != nil {
		return err
	}
	return decodeErr(resp)
}

// handshakeRetry drives the bounded retry loop of the pinned-stream
// handshakes (Begin, Subscribe), which the transport's one-shot retry
// cannot cover. Stale pooled streams are retried for free — the
// request never reached a live server — while fresh failures consume
// the client's policy budget with jittered backoff between attempts.
type handshakeRetry struct {
	pol     wire.RetryPolicy
	attempt int
	free    int
}

// next reports whether the handshake may run again after a failure.
// reused marks a failure on a pooled (possibly stale) stream.
func (r *handshakeRetry) next(ctx context.Context, c *Client, op OpCode, reused bool, err error) bool {
	if errors.Is(err, wire.ErrClosed) || ctx.Err() != nil {
		return false
	}
	if reused && r.free < 8 {
		r.free++
		c.w.RecordRetry(op.String())
		return true
	}
	if r.attempt+1 >= max(1, r.pol.MaxAttempts) {
		return false
	}
	if !r.pol.Backoff.Sleep(r.attempt, ctx.Done()) {
		return false
	}
	r.attempt++
	c.w.RecordRetry(op.String())
	return true
}

// Begin starts a remote transaction, pinning a connection until the
// transaction commits or aborts. Stale pooled connections and transient
// transport failures are retried under the client's policy.
func (c *Client) Begin(ctx context.Context) (storeapi.Txn, error) {
	retry := handshakeRetry{pol: c.w.RetryPolicy()}
	for {
		st, err := c.w.OpenStream(ctx)
		if err != nil {
			if retry.next(ctx, c, OpBegin, false, err) {
				continue
			}
			return nil, err
		}
		resp := new(Response)
		if err := st.Call(ctx, &Request{Op: OpBegin}, resp); err != nil {
			reused := st.Reused()
			st.Hangup()
			if retry.next(ctx, c, OpBegin, reused, err) {
				continue
			}
			return nil, fmt.Errorf("dbwire: %s: %w", OpBegin, err)
		}
		if err := decodeErr(resp); err != nil {
			st.Close()
			return nil, err
		}
		return &remoteTxn{c: c, st: st, id: resp.Tx}, nil
	}
}

// ApplyCommitSet ships a whole optimistic commit set in ONE round trip —
// the split-servers commit path.
//
// Retry safety: the transport retries only when a PREVIOUSLY-USED
// connection fails — the "went bad while idle" case (server restarted
// under the pool), in which the request never reached a live server. In
// the rare window where a server dies after applying but before
// replying, a retry would re-submit the set; version validation then
// rejects the duplicate with a conflict (every write's expected version
// has already been bumped), so the store is never corrupted — the
// caller sees a spurious conflict and re-runs its transaction, which is
// exactly the optimistic programming model.
func (c *Client) ApplyCommitSet(ctx context.Context, cs memento.CommitSet) (sqlstore.ApplyResult, error) {
	resp, err := c.oneShot(ctx, &Request{Op: OpApplyCommitSet, Set: cs})
	if err != nil {
		return sqlstore.ApplyResult{}, err
	}
	if err := decodeErr(resp); err != nil {
		return sqlstore.ApplyResult{}, err
	}
	return sqlstore.ApplyResult{TxID: resp.Tx, NewVersions: resp.NewVersions}, nil
}

// ApplyCommitSets ships several independent commit sets in ONE round
// trip — the group-commit path. Each set succeeds or fails on its own
// (per-set Err; conflicts keep their full attribution). Against a peer
// that predates the op, the client falls back to one ApplyCommitSet
// round trip per set and remembers the downgrade.
func (c *Client) ApplyCommitSets(ctx context.Context, sets []memento.CommitSet) ([]sqlstore.ApplySetResult, error) {
	if len(sets) == 0 {
		return nil, nil
	}
	if !c.noGroup.Load() {
		obsPipelineDepth.Observe(time.Duration(len(sets)))
		resp, err := c.oneShot(ctx, &Request{Op: OpApplyCommitSets, Sets: sets})
		if err != nil {
			return nil, err
		}
		if !(resp.Code == CodeBadRequest && strings.Contains(resp.Msg, "unknown op")) {
			if err := decodeErr(resp); err != nil {
				return nil, err
			}
			if len(resp.Batch) != len(sets) {
				return nil, fmt.Errorf("dbwire: %s: %d results for %d sets", OpApplyCommitSets, len(resp.Batch), len(sets))
			}
			out := make([]sqlstore.ApplySetResult, len(sets))
			for i := range resp.Batch {
				sub := &resp.Batch[i]
				if err := decodeErr(sub); err != nil {
					out[i].Err = err
					continue
				}
				out[i].Res = sqlstore.ApplyResult{TxID: sub.Tx, NewVersions: sub.NewVersions}
			}
			return out, nil
		}
		c.noGroup.Store(true)
	}
	// Older peer: one round trip per set. ApplyCommitSet cannot tell a
	// transport failure from a per-set rejection, so every error lands in
	// the set's own slot; callers reading per-set errors see the same
	// shape either way.
	out := make([]sqlstore.ApplySetResult, len(sets))
	for i := range sets {
		out[i].Res, out[i].Err = c.ApplyCommitSet(ctx, sets[i])
	}
	return out, nil
}

// Prepare/commit/abort round-trip counters for the sharded tier's
// two-phase path; documented in OBSERVABILITY.md.
var (
	obsWirePrepares       = obs.Default.Counter("dbwire.prepares")
	obsWirePrepareCommits = obs.Default.Counter("dbwire.prepare_commits")
	obsWirePrepareAborts  = obs.Default.Counter("dbwire.prepare_aborts")
)

// Prepare ships 2PC's first phase in one round trip: the server
// validates the sub-set and holds its locks under gid. A peer that
// predates the op answers "unknown op" (CodeBadRequest), which comes
// back as an error — a no vote, so the coordinator aborts the global
// transaction rather than committing partially.
func (c *Client) Prepare(ctx context.Context, gid string, cs memento.CommitSet) error {
	obsWirePrepares.Inc()
	resp, err := c.oneShot(ctx, &Request{Op: OpPrepare, Gid: gid, Set: cs})
	if err != nil {
		return err
	}
	return decodeErr(resp)
}

// CommitPrepared ships 2PC's commit decision in one round trip.
func (c *Client) CommitPrepared(ctx context.Context, gid string) (sqlstore.ApplyResult, error) {
	obsWirePrepareCommits.Inc()
	resp, err := c.oneShot(ctx, &Request{Op: OpCommitPrepared, Gid: gid})
	if err != nil {
		return sqlstore.ApplyResult{}, err
	}
	if err := decodeErr(resp); err != nil {
		return sqlstore.ApplyResult{}, err
	}
	return sqlstore.ApplyResult{TxID: resp.Tx, NewVersions: resp.NewVersions}, nil
}

// AbortPrepared ships 2PC's abort decision in one round trip.
func (c *Client) AbortPrepared(ctx context.Context, gid string) error {
	obsWirePrepareAborts.Inc()
	resp, err := c.oneShot(ctx, &Request{Op: OpAbortPrepared, Gid: gid})
	if err != nil {
		return err
	}
	return decodeErr(resp)
}

var _ storeapi.Preparer = (*Client)(nil)

// getResult assembles a GetResult from a read response, synthesizing
// the footprint locally when the server (an older peer) did not stamp
// one — a key read's footprint is fully determined by its arguments.
func getResult(resp *Response, table, id string) storeapi.GetResult {
	res := storeapi.GetResult{Mem: resp.Mem}
	if resp.FP != nil {
		res.FP = *resp.FP
	} else {
		res.FP = memento.KeyFootprint(memento.Key{Table: table, ID: id})
	}
	return res
}

// queryResult assembles a QueryResult from a read response, deriving
// the footprint from the query and its rows when the server did not
// stamp one.
func queryResult(resp *Response, q memento.Query) storeapi.QueryResult {
	res := storeapi.QueryResult{Mems: resp.Mems}
	if resp.FP != nil {
		res.FP = *resp.FP
	} else {
		res.FP = memento.QueryFootprint(q, resp.Mems)
	}
	return res
}

// AutoGet reads one row in an autocommit transaction: one round trip.
func (c *Client) AutoGet(ctx context.Context, table, id string) (storeapi.GetResult, error) {
	resp, err := c.oneShot(ctx, &Request{Op: OpAutoGet, Table: table, ID: id})
	if err != nil {
		return storeapi.GetResult{}, err
	}
	if err := decodeErr(resp); err != nil {
		return storeapi.GetResult{}, err
	}
	return getResult(resp, table, id), nil
}

// AutoQuery runs one predicate query in an autocommit transaction: one
// round trip.
func (c *Client) AutoQuery(ctx context.Context, q memento.Query) (storeapi.QueryResult, error) {
	resp, err := c.oneShot(ctx, &Request{Op: OpAutoQuery, Query: q})
	if err != nil {
		return storeapi.QueryResult{}, err
	}
	if err := decodeErr(resp); err != nil {
		return storeapi.QueryResult{}, err
	}
	return queryResult(resp, q), nil
}

// Subscribe opens a pinned connection carrying the server-push
// invalidation stream. The returned channel closes when cancel is called
// or the connection drops. Stale pooled connections and transient
// transport failures are retried under the client's policy.
func (c *Client) Subscribe(ctx context.Context) (<-chan sqlstore.Notice, func(), error) {
	retry := handshakeRetry{pol: c.w.RetryPolicy()}
	for {
		st, err := c.w.OpenStream(ctx)
		if err != nil {
			if retry.next(ctx, c, OpSubscribe, false, err) {
				continue
			}
			return nil, nil, err
		}
		ch := make(chan sqlstore.Notice, 64)
		// The sink must be in place before the subscribe call: the
		// server may push a notice immediately after the ack.
		st.OnPush(
			func() any { return new(Response) },
			func(v any) {
				select {
				case ch <- v.(*Response).Notice:
				default:
					// Drop rather than stall the stream; notices are hints.
				}
			},
			func() { close(ch) },
		)
		resp := new(Response)
		if err := st.Call(ctx, &Request{Op: OpSubscribe}, resp); err != nil {
			reused := st.Reused()
			st.Hangup()
			if retry.next(ctx, c, OpSubscribe, reused, err) {
				continue
			}
			return nil, nil, fmt.Errorf("dbwire: %s: %w", OpSubscribe, err)
		}
		if err := decodeErr(resp); err != nil {
			st.Hangup()
			return nil, nil, err
		}
		return ch, st.Hangup, nil
	}
}

// remoteTxn drives one server-side transaction over a pinned stream.
type remoteTxn struct {
	c      *Client
	st     *wire.Stream
	id     uint64
	done   bool
	broken bool
}

var (
	_ storeapi.Txn      = (*remoteTxn)(nil)
	_ storeapi.BatchTxn = (*remoteTxn)(nil)
)

// ID returns the datastore transaction identifier assigned at Begin.
func (t *remoteTxn) ID() uint64 { return t.id }

func (t *remoteTxn) call(ctx context.Context, req *Request) (*Response, error) {
	if t.done {
		return nil, sqlstore.ErrTxDone
	}
	req.Tx = t.id
	resp := new(Response)
	if err := t.st.Call(ctx, req, resp); err != nil {
		// The connection is unusable; the server aborts the transaction
		// when it notices the drop.
		t.broken = true
		t.finish()
		return nil, fmt.Errorf("dbwire: %s: %w", req.Op, err)
	}
	if derr := decodeErr(resp); derr != nil {
		return nil, derr
	}
	return resp, nil
}

func (t *remoteTxn) finish() {
	if t.done {
		return
	}
	t.done = true
	if t.broken {
		t.st.Hangup()
	} else {
		t.st.Close()
	}
}

func (t *remoteTxn) Get(ctx context.Context, table, id string) (storeapi.GetResult, error) {
	resp, err := t.call(ctx, &Request{Op: OpGet, Table: table, ID: id})
	if err != nil {
		return storeapi.GetResult{}, err
	}
	return getResult(resp, table, id), nil
}

func (t *remoteTxn) GetForUpdate(ctx context.Context, table, id string) (storeapi.GetResult, error) {
	resp, err := t.call(ctx, &Request{Op: OpGetForUpdate, Table: table, ID: id})
	if err != nil {
		return storeapi.GetResult{}, err
	}
	return getResult(resp, table, id), nil
}

func (t *remoteTxn) Put(ctx context.Context, m memento.Memento) error {
	_, err := t.call(ctx, &Request{Op: OpPut, Mem: m})
	return err
}

func (t *remoteTxn) Insert(ctx context.Context, m memento.Memento) error {
	_, err := t.call(ctx, &Request{Op: OpInsert, Mem: m})
	return err
}

func (t *remoteTxn) Delete(ctx context.Context, table, id string) error {
	_, err := t.call(ctx, &Request{Op: OpDelete, Table: table, ID: id})
	return err
}

func (t *remoteTxn) Query(ctx context.Context, q memento.Query) (storeapi.QueryResult, error) {
	resp, err := t.call(ctx, &Request{Op: OpQuery, Query: q})
	if err != nil {
		return storeapi.QueryResult{}, err
	}
	return queryResult(resp, q), nil
}

func (t *remoteTxn) CheckVersion(ctx context.Context, key memento.Key, version uint64) error {
	_, err := t.call(ctx, &Request{Op: OpCheckVersion, Key: key, Version: version})
	return err
}

func (t *remoteTxn) CheckedPut(ctx context.Context, m memento.Memento) error {
	_, err := t.call(ctx, &Request{Op: OpCheckedPut, Mem: m})
	return err
}

func (t *remoteTxn) CheckedDelete(ctx context.Context, key memento.Key, version uint64) error {
	_, err := t.call(ctx, &Request{Op: OpCheckedDelete, Key: key, Version: version})
	return err
}

func (t *remoteTxn) Commit(ctx context.Context) error {
	_, err := t.call(ctx, &Request{Op: OpCommit})
	t.finish()
	return err
}

func (t *remoteTxn) Abort(ctx context.Context) error {
	_, err := t.call(ctx, &Request{Op: OpAbort})
	t.finish()
	return err
}

// stmtRequest maps one batch statement to its wire sub-request.
func stmtRequest(st storeapi.Stmt) (Request, error) {
	switch st.Kind {
	case storeapi.StmtGet:
		return Request{Op: OpGet, Table: st.Table, ID: st.ID}, nil
	case storeapi.StmtGetForUpdate:
		return Request{Op: OpGetForUpdate, Table: st.Table, ID: st.ID}, nil
	case storeapi.StmtQuery:
		return Request{Op: OpQuery, Query: st.Query}, nil
	case storeapi.StmtPut:
		return Request{Op: OpPut, Mem: st.Mem}, nil
	case storeapi.StmtInsert:
		return Request{Op: OpInsert, Mem: st.Mem}, nil
	case storeapi.StmtDelete:
		return Request{Op: OpDelete, Table: st.Table, ID: st.ID}, nil
	case storeapi.StmtCheckVersion:
		return Request{Op: OpCheckVersion, Key: st.Key, Version: st.Version}, nil
	case storeapi.StmtCheckedPut:
		return Request{Op: OpCheckedPut, Mem: st.Mem}, nil
	case storeapi.StmtCheckedDelete:
		return Request{Op: OpCheckedDelete, Key: st.Key, Version: st.Version}, nil
	case storeapi.StmtCommit:
		return Request{Op: OpCommit}, nil
	case storeapi.StmtAbort:
		return Request{Op: OpAbort}, nil
	default:
		return Request{}, fmt.Errorf("dbwire: unbatchable statement kind %d", st.Kind)
	}
}

// ExecBatch ships the whole statement sequence as one OpBatch frame —
// one round trip instead of len(stmts) — and scatter-gathers the
// per-statement results back into storeapi's shape. Semantics match
// the serial calls exactly: the server executes sub-requests in order
// and stops at the first failure; statements past it come back as
// ErrStmtSkipped. Against a peer that predates OpBatch the client
// falls back to one round trip per statement and remembers the
// downgrade for the connection pool's lifetime.
func (t *remoteTxn) ExecBatch(ctx context.Context, stmts []storeapi.Stmt) ([]storeapi.StmtResult, error) {
	if len(stmts) == 0 {
		return nil, nil
	}
	if t.c != nil && t.c.noBatch.Load() {
		return storeapi.ExecSerial(ctx, t, stmts)
	}
	if t.done {
		return nil, sqlstore.ErrTxDone
	}
	req := &Request{Op: OpBatch, Tx: t.id, Batch: make([]Request, len(stmts))}
	for i := range stmts {
		sub, err := stmtRequest(stmts[i])
		if err != nil {
			return nil, err
		}
		sub.Tx = t.id
		req.Batch[i] = sub
	}
	obsPipelineDepth.Observe(time.Duration(len(stmts)))
	resp := new(Response)
	if err := t.st.Call(ctx, req, resp); err != nil {
		t.broken = true
		t.finish()
		return nil, fmt.Errorf("dbwire: %s: %w", OpBatch, err)
	}
	if resp.Code == CodeBadRequest && strings.Contains(resp.Msg, "unknown op") {
		if t.c != nil {
			t.c.noBatch.Store(true)
		}
		return storeapi.ExecSerial(ctx, t, stmts)
	}
	if derr := decodeErr(resp); derr != nil {
		return nil, derr
	}
	out := make([]storeapi.StmtResult, len(stmts))
	for i := range stmts {
		if i >= len(resp.Batch) {
			out[i].Err = storeapi.ErrStmtSkipped
			continue
		}
		sub := &resp.Batch[i]
		if err := decodeErr(sub); err != nil {
			out[i].Err = err
			continue
		}
		switch stmts[i].Kind {
		case storeapi.StmtGet, storeapi.StmtGetForUpdate:
			out[i].Get = getResult(sub, stmts[i].Table, stmts[i].ID)
		case storeapi.StmtQuery:
			out[i].Q = queryResult(sub, stmts[i].Query)
		}
	}
	// A trailing Commit/Abort that actually executed (whether it
	// succeeded or conflicted) ended the server-side transaction; release
	// the pinned stream to match.
	last := stmts[len(stmts)-1].Kind
	if (last == storeapi.StmtCommit || last == storeapi.StmtAbort) && len(resp.Batch) == len(stmts) {
		t.finish()
	}
	return out, nil
}

package dbwire

import (
	"reflect"
	"testing"
	"time"

	"edgeejb/internal/memento"
	"edgeejb/internal/sqlstore"
)

// ts builds a timestamp the binary codec round-trips exactly: the codec
// carries UnixNano (like gob it drops the monotonic clock reading), so
// constructing from nanoseconds makes reflect.DeepEqual hold.
func ts(n int64) time.Time { return time.Unix(0, n) }

func codecMem(id string, v uint64) memento.Memento {
	return memento.Memento{
		Key:     memento.Key{Table: "quote", ID: id},
		Version: v,
		Fields: memento.Fields{
			"symbol": memento.String("s:" + id),
			"price":  memento.Float(101.25),
			"volume": memento.Int(42),
			"open":   memento.Bool(true),
		},
	}
}

func codecSet(tx uint64) memento.CommitSet {
	return memento.CommitSet{
		Reads: []memento.ReadProof{
			{Key: memento.Key{Table: "quote", ID: "a"}, Version: 3},
			{Key: memento.Key{Table: "quote", ID: "gone"}, Absent: true},
		},
		Writes:  []memento.Memento{codecMem("a", 3)},
		Creates: []memento.Memento{codecMem("new", 0)},
		Removes: []memento.ReadProof{{Key: memento.Key{Table: "quote", ID: "b"}, Version: 7}},
	}
}

func codecQuery() memento.Query {
	return memento.Query{
		Table: "quote",
		Where: []memento.Predicate{
			{Field: "symbol", Op: memento.OpEq, Value: memento.String("IBM")},
			{Field: "volume", Op: memento.OpGt, Value: memento.Int(10)},
		},
		OrderBy: "price",
		Desc:    true,
		Limit:   25,
	}
}

// TestBinaryCodecRoundTrip drives the hand-rolled codec over a matrix
// of representative messages — every field the protocol can populate,
// including the nested OpBatch / OpApplyCommitSets shapes — and
// requires exact structural equality after a round trip.
func TestBinaryCodecRoundTrip(t *testing.T) {
	requests := map[string]*Request{
		"zero":  {},
		"ping":  {Op: OpPing},
		"begin": {Op: OpBegin},
		"get":   {Op: OpGet, Tx: 9, Table: "quote", ID: "a"},
		"put":   {Op: OpPut, Tx: 9, Mem: codecMem("a", 3)},
		"query": {Op: OpQuery, Tx: 9, Query: codecQuery()},
		"checked put": {
			Op: OpCheckedPut, Tx: 9,
			Key: memento.Key{Table: "quote", ID: "a"}, Version: 4,
			Mem: codecMem("a", 4),
		},
		"apply": {Op: OpApplyCommitSet, Set: codecSet(1)},
		"hello": {Op: OpHello, Codecs: []string{"binary", "gob"}},
		"batch": {
			Op: OpBatch, Tx: 9,
			Batch: []Request{
				{Op: OpGet, Table: "quote", ID: "a"},
				{Op: OpPut, Mem: codecMem("a", 3)},
				{Op: OpCommit, Tx: 9},
			},
		},
		"apply sets": {
			Op:   OpApplyCommitSets,
			Sets: []memento.CommitSet{codecSet(1), codecSet(2), {}},
		},
		"nil fields mem": {
			Op:  OpPut,
			Mem: memento.Memento{Key: memento.Key{Table: "t", ID: "x"}},
		},
	}
	for name, req := range requests {
		t.Run("request/"+name, func(t *testing.T) {
			data, err := binCodec.EncodeBody(nil, req)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			got := new(Request)
			if err := binCodec.DecodeBody(data, got); err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !reflect.DeepEqual(got, req) {
				t.Errorf("round trip mismatch:\n got %#v\nwant %#v", got, req)
			}
		})
	}

	responses := map[string]*Response{
		"zero":  {},
		"ok tx": {Code: CodeOK, Tx: 77},
		"mem": {
			Code: CodeOK, Mem: codecMem("a", 3),
			FP: &memento.Footprint{Keys: []memento.Key{{Table: "quote", ID: "a"}}},
		},
		"mems": {
			Code: CodeOK,
			Mems: []memento.Memento{codecMem("a", 1), codecMem("b", 2)},
			FP:   &memento.Footprint{Queries: []memento.Query{codecQuery()}},
		},
		"error": {Code: CodeNotFound, Msg: "sqlstore: not found"},
		"conflict": {
			Code: CodeConflict, Msg: "sqlstore: optimistic conflict: quote/a",
			Conflict: &ConflictInfo{
				Key:      memento.Key{Table: "quote", ID: "a"},
				Expected: 3, Actual: 4,
				WinnerTx: 12, WinnerTrace: 99,
				CommittedAt: ts(1_723_000_000_000_000_123),
			},
		},
		"versions": {
			Code: CodeOK, Tx: 5,
			NewVersions: map[memento.Key]uint64{
				{Table: "quote", ID: "a"}: 4,
				{Table: "quote", ID: "b"}: 9,
			},
		},
		"notice": {
			Code: CodeOK,
			Notice: sqlstore.Notice{
				TxID: 31,
				Keys: []memento.Key{{Table: "quote", ID: "a"}},
				Writes: []memento.WriteDesc{{
					Key:    memento.Key{Table: "quote", ID: "a"},
					Before: memento.Fields{"price": memento.Float(1)},
					After:  memento.Fields{"price": memento.Float(2)},
				}, {
					// A blind write: nil Before must stay nil, not
					// come back as an empty map (Blind() depends on it).
					Key:   memento.Key{Table: "quote", ID: "b"},
					After: memento.Fields{"price": memento.Float(3)},
				}},
				CommittedAt: ts(1_723_000_000_000_000_456),
				OriginTrace: 555,
			},
		},
		"hello": {Code: CodeOK, Codec: "binary"},
		"batch": {
			Code: CodeOK,
			Batch: []Response{
				{Code: CodeOK, Mem: codecMem("a", 3)},
				{Code: CodeConflict, Msg: "conflict", Conflict: &ConflictInfo{WinnerTx: 8}},
			},
		},
	}
	for name, resp := range responses {
		t.Run("response/"+name, func(t *testing.T) {
			data, err := binCodec.EncodeBody(nil, resp)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			got := new(Response)
			if err := binCodec.DecodeBody(data, got); err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !reflect.DeepEqual(got, resp) {
				t.Errorf("round trip mismatch:\n got %#v\nwant %#v", got, resp)
			}
		})
	}
}

// TestBinaryCodecNilVsEmptyFields pins the presence-byte encoding of
// Fields maps: a nil map and an empty map are different values (a nil
// Before marks a blind write in WriteDesc.Blind) and must survive the
// wire as themselves.
func TestBinaryCodecNilVsEmptyFields(t *testing.T) {
	for _, tc := range []struct {
		name   string
		fields memento.Fields
	}{
		{"nil", nil},
		{"empty", memento.Fields{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			req := &Request{Op: OpPut, Mem: memento.Memento{
				Key:    memento.Key{Table: "t", ID: "x"},
				Fields: tc.fields,
			}}
			data, err := binCodec.EncodeBody(nil, req)
			if err != nil {
				t.Fatal(err)
			}
			got := new(Request)
			if err := binCodec.DecodeBody(data, got); err != nil {
				t.Fatal(err)
			}
			if (got.Mem.Fields == nil) != (tc.fields == nil) {
				t.Errorf("nil-ness changed: sent nil=%v, got nil=%v",
					tc.fields == nil, got.Mem.Fields == nil)
			}
			if len(got.Mem.Fields) != len(tc.fields) {
				t.Errorf("len changed: %d -> %d", len(tc.fields), len(got.Mem.Fields))
			}
		})
	}
}

// TestBinaryCodecTruncatedInput feeds every strict prefix of a valid
// encoding to the decoder: each must return an error (never panic,
// never succeed on partial data). This is the sticky-error reader and
// its bounded length reads under test — the path a truncated frame from
// a fault-injected connection takes.
func TestBinaryCodecTruncatedInput(t *testing.T) {
	req := &Request{
		Op: OpBatch, Tx: 9,
		Batch: []Request{
			{Op: OpQuery, Query: codecQuery()},
			{Op: OpApplyCommitSet, Set: codecSet(1)},
		},
	}
	data, err := binCodec.EncodeBody(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n++ {
		if err := binCodec.DecodeBody(data[:n], new(Request)); err == nil {
			t.Fatalf("decoding %d/%d-byte prefix succeeded", n, len(data))
		}
	}

	resp := &Response{Code: CodeOK, Mems: []memento.Memento{codecMem("a", 1)},
		NewVersions: map[memento.Key]uint64{{Table: "t", ID: "x"}: 1}}
	data, err = binCodec.EncodeBody(nil, resp)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n++ {
		if err := binCodec.DecodeBody(data[:n], new(Response)); err == nil {
			t.Fatalf("decoding %d/%d-byte prefix succeeded", n, len(data))
		}
	}
}

// TestBinaryCodecBoundedLengths: a corrupted length prefix claiming
// more elements than the buffer could possibly hold must fail cleanly
// instead of attempting a huge allocation.
func TestBinaryCodecBoundedLengths(t *testing.T) {
	// Request with Op=OpHello and the Codecs bit set, followed by a
	// varint length claiming ~1<<40 strings in a 16-byte buffer.
	data, err := binCodec.EncodeBody(nil, &Request{Op: OpHello, Codecs: []string{"binary"}})
	if err != nil {
		t.Fatal(err)
	}
	// The codecs-count varint sits right after op byte + presence mask;
	// splice in an absurd count and keep the tail.
	corrupt := append([]byte{}, data[:2]...)
	corrupt = append(corrupt, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f) // huge uvarint
	corrupt = append(corrupt, data[3:]...)
	if err := binCodec.DecodeBody(corrupt, new(Request)); err == nil {
		t.Fatal("decoder accepted a length far beyond the buffer")
	}
}

// BenchmarkBinaryCodec measures encode+decode of a representative
// read-response (the hot shape of the Figure 6 workload) for the
// allocs/op budget CI enforces.
func BenchmarkBinaryCodec(b *testing.B) {
	resp := &Response{
		Code: CodeOK, Mem: codecMem("a", 3),
		FP: &memento.Footprint{Keys: []memento.Key{{Table: "quote", ID: "a"}}},
	}
	var (
		buf []byte
		err error
	)
	got := new(Response)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = binCodec.EncodeBody(buf[:0], resp)
		if err != nil {
			b.Fatal(err)
		}
		*got = Response{}
		if err := binCodec.DecodeBody(buf, got); err != nil {
			b.Fatal(err)
		}
	}
}

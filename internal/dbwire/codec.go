package dbwire

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"edgeejb/internal/memento"
	"edgeejb/internal/sqlstore"
	"edgeejb/internal/wire"
)

// Body codec names used in the OpHello handshake.
const (
	codecGob    = "gob"
	codecBinary = "binary"
)

// binCodec is a hand-rolled binary codec for the protocol's two body
// types. Compared to gob it drops the reflection walk and the
// per-message field-id framing: messages open with a presence bitmask
// and encode only the non-zero fields, integers as varints, so the
// high-volume Get/Query/Commit traffic — the traffic Figure 8 weighs —
// is both cheaper to encode and smaller on the wire. Absent fields
// decode to their zero values exactly as gob's omitted fields do, so
// the two codecs are semantically interchangeable message by message.
//
// The encoding is not self-describing: both peers must agree on the
// field order below, which is why the codec is only ever enabled by the
// OpHello handshake (see negotiation in client.go / server.go). Schema
// changes need a new codec name, not a silent field reorder.
var binCodec wire.BodyCodec = binaryCodec{}

type binaryCodec struct{}

func (binaryCodec) Name() string { return codecBinary }

func (binaryCodec) EncodeBody(dst []byte, body any) ([]byte, error) {
	switch b := body.(type) {
	case *Request:
		return appendRequest(dst, b), nil
	case *Response:
		return appendResponse(dst, b), nil
	default:
		return nil, fmt.Errorf("dbwire: binary codec cannot encode %T", body)
	}
}

func (binaryCodec) DecodeBody(data []byte, body any) error {
	r := &breader{b: data}
	switch b := body.(type) {
	case *Request:
		readRequest(r, b)
	case *Response:
		readResponse(r, b)
	default:
		return fmt.Errorf("dbwire: binary codec cannot decode %T", body)
	}
	return r.err
}

// Request field bits (after the always-present Op byte).
const (
	reqTx = 1 << iota
	reqTable
	reqID
	reqKey
	reqVersion
	reqMem
	reqQuery
	reqSet
	reqCodecs
	reqBatch
	reqSets
	// reqGid was appended for the 2PC prepare ops. Appending new bits
	// (with their payloads encoded after all earlier fields) keeps the
	// codec name stable: an old decoder reads every field it knows and
	// leaves the trailing bytes unconsumed — harmless, since it then
	// answers "unknown op" for the new opcode anyway.
	reqGid
)

func appendRequest(dst []byte, q *Request) []byte {
	dst = append(dst, byte(q.Op))
	var mask uint64
	if q.Tx != 0 {
		mask |= reqTx
	}
	if q.Table != "" {
		mask |= reqTable
	}
	if q.ID != "" {
		mask |= reqID
	}
	if q.Key != (memento.Key{}) {
		mask |= reqKey
	}
	if q.Version != 0 {
		mask |= reqVersion
	}
	if !memIsZero(q.Mem) {
		mask |= reqMem
	}
	if !queryIsZero(q.Query) {
		mask |= reqQuery
	}
	if !q.Set.IsEmpty() {
		mask |= reqSet
	}
	if len(q.Codecs) > 0 {
		mask |= reqCodecs
	}
	if len(q.Batch) > 0 {
		mask |= reqBatch
	}
	if len(q.Sets) > 0 {
		mask |= reqSets
	}
	if q.Gid != "" {
		mask |= reqGid
	}
	dst = binary.AppendUvarint(dst, mask)
	if mask&reqTx != 0 {
		dst = binary.AppendUvarint(dst, q.Tx)
	}
	if mask&reqTable != 0 {
		dst = appendString(dst, q.Table)
	}
	if mask&reqID != 0 {
		dst = appendString(dst, q.ID)
	}
	if mask&reqKey != 0 {
		dst = appendKey(dst, q.Key)
	}
	if mask&reqVersion != 0 {
		dst = binary.AppendUvarint(dst, q.Version)
	}
	if mask&reqMem != 0 {
		dst = appendMemento(dst, q.Mem)
	}
	if mask&reqQuery != 0 {
		dst = appendQuery(dst, q.Query)
	}
	if mask&reqSet != 0 {
		dst = appendCommitSet(dst, q.Set)
	}
	if mask&reqCodecs != 0 {
		dst = binary.AppendUvarint(dst, uint64(len(q.Codecs)))
		for _, s := range q.Codecs {
			dst = appendString(dst, s)
		}
	}
	if mask&reqBatch != 0 {
		dst = binary.AppendUvarint(dst, uint64(len(q.Batch)))
		for i := range q.Batch {
			dst = appendRequest(dst, &q.Batch[i])
		}
	}
	if mask&reqSets != 0 {
		dst = binary.AppendUvarint(dst, uint64(len(q.Sets)))
		for i := range q.Sets {
			dst = appendCommitSet(dst, q.Sets[i])
		}
	}
	if mask&reqGid != 0 {
		dst = appendString(dst, q.Gid)
	}
	return dst
}

func readRequest(r *breader, q *Request) {
	q.Op = OpCode(r.byte1())
	mask := r.uvarint()
	if mask&reqTx != 0 {
		q.Tx = r.uvarint()
	}
	if mask&reqTable != 0 {
		q.Table = r.str()
	}
	if mask&reqID != 0 {
		q.ID = r.str()
	}
	if mask&reqKey != 0 {
		q.Key = readKey(r)
	}
	if mask&reqVersion != 0 {
		q.Version = r.uvarint()
	}
	if mask&reqMem != 0 {
		q.Mem = readMemento(r)
	}
	if mask&reqQuery != 0 {
		q.Query = readQuery(r)
	}
	if mask&reqSet != 0 {
		q.Set = readCommitSet(r)
	}
	if mask&reqCodecs != 0 {
		n := r.length()
		q.Codecs = make([]string, 0, n)
		for i := 0; i < n; i++ {
			q.Codecs = append(q.Codecs, r.str())
		}
	}
	if mask&reqBatch != 0 {
		n := r.length()
		q.Batch = make([]Request, n)
		for i := 0; i < n && r.err == nil; i++ {
			readRequest(r, &q.Batch[i])
		}
	}
	if mask&reqSets != 0 {
		n := r.length()
		q.Sets = make([]memento.CommitSet, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			q.Sets = append(q.Sets, readCommitSet(r))
		}
	}
	if mask&reqGid != 0 {
		q.Gid = r.str()
	}
}

// Response field bits (after the always-present Code byte).
const (
	respMsg = 1 << iota
	respTx
	respMem
	respMems
	respNewVersions
	respNotice
	respConflict
	respFP
	respBatch
	respCodec
)

func appendResponse(dst []byte, p *Response) []byte {
	dst = append(dst, byte(p.Code))
	var mask uint64
	if p.Msg != "" {
		mask |= respMsg
	}
	if p.Tx != 0 {
		mask |= respTx
	}
	if !memIsZero(p.Mem) {
		mask |= respMem
	}
	if len(p.Mems) > 0 {
		mask |= respMems
	}
	if len(p.NewVersions) > 0 {
		mask |= respNewVersions
	}
	if !noticeIsZero(p.Notice) {
		mask |= respNotice
	}
	if p.Conflict != nil {
		mask |= respConflict
	}
	if p.FP != nil {
		mask |= respFP
	}
	if len(p.Batch) > 0 {
		mask |= respBatch
	}
	if p.Codec != "" {
		mask |= respCodec
	}
	dst = binary.AppendUvarint(dst, mask)
	if mask&respMsg != 0 {
		dst = appendString(dst, p.Msg)
	}
	if mask&respTx != 0 {
		dst = binary.AppendUvarint(dst, p.Tx)
	}
	if mask&respMem != 0 {
		dst = appendMemento(dst, p.Mem)
	}
	if mask&respMems != 0 {
		dst = binary.AppendUvarint(dst, uint64(len(p.Mems)))
		for i := range p.Mems {
			dst = appendMemento(dst, p.Mems[i])
		}
	}
	if mask&respNewVersions != 0 {
		dst = binary.AppendUvarint(dst, uint64(len(p.NewVersions)))
		for k, v := range p.NewVersions {
			dst = appendKey(dst, k)
			dst = binary.AppendUvarint(dst, v)
		}
	}
	if mask&respNotice != 0 {
		dst = appendNotice(dst, p.Notice)
	}
	if mask&respConflict != 0 {
		dst = appendConflict(dst, p.Conflict)
	}
	if mask&respFP != 0 {
		dst = appendFootprint(dst, p.FP)
	}
	if mask&respBatch != 0 {
		dst = binary.AppendUvarint(dst, uint64(len(p.Batch)))
		for i := range p.Batch {
			dst = appendResponse(dst, &p.Batch[i])
		}
	}
	if mask&respCodec != 0 {
		dst = appendString(dst, p.Codec)
	}
	return dst
}

func readResponse(r *breader, p *Response) {
	p.Code = ErrCode(r.byte1())
	mask := r.uvarint()
	if mask&respMsg != 0 {
		p.Msg = r.str()
	}
	if mask&respTx != 0 {
		p.Tx = r.uvarint()
	}
	if mask&respMem != 0 {
		p.Mem = readMemento(r)
	}
	if mask&respMems != 0 {
		n := r.length()
		p.Mems = make([]memento.Memento, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			p.Mems = append(p.Mems, readMemento(r))
		}
	}
	if mask&respNewVersions != 0 {
		n := r.length()
		p.NewVersions = make(map[memento.Key]uint64, n)
		for i := 0; i < n && r.err == nil; i++ {
			k := readKey(r)
			p.NewVersions[k] = r.uvarint()
		}
	}
	if mask&respNotice != 0 {
		p.Notice = readNotice(r)
	}
	if mask&respConflict != 0 {
		p.Conflict = readConflict(r)
	}
	if mask&respFP != 0 {
		p.FP = readFootprint(r)
	}
	if mask&respBatch != 0 {
		n := r.length()
		p.Batch = make([]Response, n)
		for i := 0; i < n && r.err == nil; i++ {
			readResponse(r, &p.Batch[i])
		}
	}
	if mask&respCodec != 0 {
		p.Codec = r.str()
	}
}

// Zero checks mirroring "what gob would omit". Fields maps use nil-ness
// (not emptiness): WriteDesc.Blind() gives nil a meaning an empty map
// does not have, so the codec preserves the distinction everywhere.

func memIsZero(m memento.Memento) bool {
	return m.Key == (memento.Key{}) && m.Version == 0 && m.Fields == nil
}

func queryIsZero(q memento.Query) bool {
	return q.Table == "" && len(q.Where) == 0 && q.OrderBy == "" && !q.Desc && q.Limit == 0
}

func noticeIsZero(n sqlstore.Notice) bool {
	return n.TxID == 0 && len(n.Keys) == 0 && len(n.Writes) == 0 &&
		n.CommittedAt.IsZero() && n.OriginTrace == 0
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendKey(dst []byte, k memento.Key) []byte {
	dst = appendString(dst, k.Table)
	return appendString(dst, k.ID)
}

func readKey(r *breader) memento.Key {
	var k memento.Key
	k.Table = r.str()
	k.ID = r.str()
	return k
}

func appendValue(dst []byte, v memento.Value) []byte {
	dst = append(dst, byte(v.Kind))
	switch v.Kind {
	case memento.KindString:
		dst = appendString(dst, v.Str)
	case memento.KindInt:
		dst = binary.AppendVarint(dst, v.Int)
	case memento.KindFloat:
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v.F))
	case memento.KindBool:
		dst = appendBool(dst, v.Bool)
	}
	return dst
}

func readValue(r *breader) memento.Value {
	var v memento.Value
	v.Kind = memento.Kind(r.byte1())
	switch v.Kind {
	case memento.KindString:
		v.Str = r.str()
	case memento.KindInt:
		v.Int = r.varint()
	case memento.KindFloat:
		v.F = math.Float64frombits(r.u64())
	case memento.KindBool:
		v.Bool = r.bool1()
	}
	return v
}

// appendFields encodes a field map with an explicit nil/present marker.
func appendFields(dst []byte, f memento.Fields) []byte {
	if f == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	dst = binary.AppendUvarint(dst, uint64(len(f)))
	for name, v := range f {
		dst = appendString(dst, name)
		dst = appendValue(dst, v)
	}
	return dst
}

func readFields(r *breader) memento.Fields {
	if r.byte1() == 0 {
		return nil
	}
	n := r.length()
	f := make(memento.Fields, n)
	for i := 0; i < n && r.err == nil; i++ {
		name := r.str()
		f[name] = readValue(r)
	}
	return f
}

func appendMemento(dst []byte, m memento.Memento) []byte {
	dst = appendKey(dst, m.Key)
	dst = binary.AppendUvarint(dst, m.Version)
	return appendFields(dst, m.Fields)
}

func readMemento(r *breader) memento.Memento {
	var m memento.Memento
	m.Key = readKey(r)
	m.Version = r.uvarint()
	m.Fields = readFields(r)
	return m
}

func appendReadProof(dst []byte, p memento.ReadProof) []byte {
	dst = appendKey(dst, p.Key)
	dst = binary.AppendUvarint(dst, p.Version)
	return appendBool(dst, p.Absent)
}

func readReadProof(r *breader) memento.ReadProof {
	var p memento.ReadProof
	p.Key = readKey(r)
	p.Version = r.uvarint()
	p.Absent = r.bool1()
	return p
}

func appendWriteDesc(dst []byte, w memento.WriteDesc) []byte {
	dst = appendKey(dst, w.Key)
	dst = appendFields(dst, w.Before)
	return appendFields(dst, w.After)
}

func readWriteDesc(r *breader) memento.WriteDesc {
	var w memento.WriteDesc
	w.Key = readKey(r)
	w.Before = readFields(r)
	w.After = readFields(r)
	return w
}

func appendCommitSet(dst []byte, cs memento.CommitSet) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(cs.Reads)))
	for _, p := range cs.Reads {
		dst = appendReadProof(dst, p)
	}
	dst = binary.AppendUvarint(dst, uint64(len(cs.Writes)))
	for i := range cs.Writes {
		dst = appendMemento(dst, cs.Writes[i])
	}
	dst = binary.AppendUvarint(dst, uint64(len(cs.Creates)))
	for i := range cs.Creates {
		dst = appendMemento(dst, cs.Creates[i])
	}
	dst = binary.AppendUvarint(dst, uint64(len(cs.Removes)))
	for _, p := range cs.Removes {
		dst = appendReadProof(dst, p)
	}
	return dst
}

func readCommitSet(r *breader) memento.CommitSet {
	var cs memento.CommitSet
	if n := r.length(); n > 0 {
		cs.Reads = make([]memento.ReadProof, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			cs.Reads = append(cs.Reads, readReadProof(r))
		}
	}
	if n := r.length(); n > 0 {
		cs.Writes = make([]memento.Memento, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			cs.Writes = append(cs.Writes, readMemento(r))
		}
	}
	if n := r.length(); n > 0 {
		cs.Creates = make([]memento.Memento, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			cs.Creates = append(cs.Creates, readMemento(r))
		}
	}
	if n := r.length(); n > 0 {
		cs.Removes = make([]memento.ReadProof, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			cs.Removes = append(cs.Removes, readReadProof(r))
		}
	}
	return cs
}

func appendQuery(dst []byte, q memento.Query) []byte {
	dst = appendString(dst, q.Table)
	dst = binary.AppendUvarint(dst, uint64(len(q.Where)))
	for _, p := range q.Where {
		dst = appendString(dst, p.Field)
		dst = append(dst, byte(p.Op))
		dst = appendValue(dst, p.Value)
	}
	dst = appendString(dst, q.OrderBy)
	dst = appendBool(dst, q.Desc)
	return binary.AppendVarint(dst, int64(q.Limit))
}

func readQuery(r *breader) memento.Query {
	var q memento.Query
	q.Table = r.str()
	if n := r.length(); n > 0 {
		q.Where = make([]memento.Predicate, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			var p memento.Predicate
			p.Field = r.str()
			p.Op = memento.Op(r.byte1())
			p.Value = readValue(r)
			q.Where = append(q.Where, p)
		}
	}
	q.OrderBy = r.str()
	q.Desc = r.bool1()
	q.Limit = int(r.varint())
	return q
}

func appendFootprint(dst []byte, fp *memento.Footprint) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(fp.Keys)))
	for _, k := range fp.Keys {
		dst = appendKey(dst, k)
	}
	dst = binary.AppendUvarint(dst, uint64(len(fp.Queries)))
	for _, q := range fp.Queries {
		dst = appendQuery(dst, q)
	}
	return dst
}

func readFootprint(r *breader) *memento.Footprint {
	fp := new(memento.Footprint)
	if n := r.length(); n > 0 {
		fp.Keys = make([]memento.Key, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			fp.Keys = append(fp.Keys, readKey(r))
		}
	}
	if n := r.length(); n > 0 {
		fp.Queries = make([]memento.Query, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			fp.Queries = append(fp.Queries, readQuery(r))
		}
	}
	return fp
}

func appendNotice(dst []byte, n sqlstore.Notice) []byte {
	dst = binary.AppendUvarint(dst, n.TxID)
	dst = binary.AppendUvarint(dst, uint64(len(n.Keys)))
	for _, k := range n.Keys {
		dst = appendKey(dst, k)
	}
	dst = binary.AppendUvarint(dst, uint64(len(n.Writes)))
	for i := range n.Writes {
		dst = appendWriteDesc(dst, n.Writes[i])
	}
	dst = appendTime(dst, n.CommittedAt)
	return binary.AppendUvarint(dst, n.OriginTrace)
}

func readNotice(r *breader) sqlstore.Notice {
	var n sqlstore.Notice
	n.TxID = r.uvarint()
	if c := r.length(); c > 0 {
		n.Keys = make([]memento.Key, 0, c)
		for i := 0; i < c && r.err == nil; i++ {
			n.Keys = append(n.Keys, readKey(r))
		}
	}
	if c := r.length(); c > 0 {
		n.Writes = make([]memento.WriteDesc, 0, c)
		for i := 0; i < c && r.err == nil; i++ {
			n.Writes = append(n.Writes, readWriteDesc(r))
		}
	}
	n.CommittedAt = readTime(r)
	n.OriginTrace = r.uvarint()
	return n
}

func appendConflict(dst []byte, ci *ConflictInfo) []byte {
	dst = appendKey(dst, ci.Key)
	dst = binary.AppendUvarint(dst, ci.Expected)
	dst = binary.AppendUvarint(dst, ci.Actual)
	dst = binary.AppendUvarint(dst, ci.WinnerTx)
	dst = binary.AppendUvarint(dst, ci.WinnerTrace)
	return appendTime(dst, ci.CommittedAt)
}

func readConflict(r *breader) *ConflictInfo {
	ci := new(ConflictInfo)
	ci.Key = readKey(r)
	ci.Expected = r.uvarint()
	ci.Actual = r.uvarint()
	ci.WinnerTx = r.uvarint()
	ci.WinnerTrace = r.uvarint()
	ci.CommittedAt = readTime(r)
	return ci
}

// appendTime encodes a wall-clock instant: a presence byte (the zero
// time is not unix zero) plus fixed 8-byte unix nanoseconds. The
// monotonic reading is dropped, as gob's time encoding also does.
func appendTime(dst []byte, t time.Time) []byte {
	if t.IsZero() {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	return binary.BigEndian.AppendUint64(dst, uint64(t.UnixNano()))
}

func readTime(r *breader) time.Time {
	if r.byte1() == 0 {
		return time.Time{}
	}
	return time.Unix(0, int64(r.u64()))
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// breader decodes the primitives with a sticky error: after the first
// malformed read every further read returns zero values, and DecodeBody
// surfaces the error once at the end.
type breader struct {
	b   []byte
	off int
	err error
}

func (r *breader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("dbwire: binary codec: truncated or malformed body at offset %d", r.off)
	}
}

func (r *breader) byte1() byte {
	if r.err != nil || r.off >= len(r.b) {
		r.fail()
		return 0
	}
	b := r.b[r.off]
	r.off++
	return b
}

func (r *breader) bool1() bool { return r.byte1() != 0 }

func (r *breader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *breader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// length reads a collection count, bounded by the bytes remaining so a
// corrupt frame cannot induce a huge allocation.
func (r *breader) length() int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if v > uint64(len(r.b)-r.off) {
		r.fail()
		return 0
	}
	return int(v)
}

func (r *breader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *breader) str() string {
	n := r.length()
	if r.err != nil || n == 0 {
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

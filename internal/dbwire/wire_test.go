package dbwire

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"edgeejb/internal/memento"
	"edgeejb/internal/sqlstore"
	"edgeejb/internal/storeapi"
)

// newPair starts a server over a fresh store and returns a client.
func newPair(t *testing.T) (*sqlstore.Store, *Client) {
	t.Helper()
	store := sqlstore.New(sqlstore.WithLockTimeout(200 * time.Millisecond))
	srv := NewServer(storeapi.Local(store))
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("start server: %v", err)
	}
	client := Dial(srv.Addr())
	t.Cleanup(func() {
		_ = client.Close()
		srv.Close()
		store.Close()
	})
	return store, client
}

func seed(s *sqlstore.Store, table, id string, v int64) {
	s.Seed(memento.Memento{
		Key:    memento.Key{Table: table, ID: id},
		Fields: memento.Fields{"v": memento.Int(v)},
	})
}

func TestPing(t *testing.T) {
	_, client := newPair(t)
	if err := client.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteTxnCRUD(t *testing.T) {
	store, client := newPair(t)
	seed(store, "t", "1", 10)
	ctx := context.Background()

	txn, err := client.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if txn.ID() == 0 {
		t.Error("remote txn must expose the store transaction id")
	}
	res, err := txn.Get(ctx, "t", "1")
	if err != nil {
		t.Fatal(err)
	}
	m := res.Mem
	if m.Fields["v"].Int != 10 {
		t.Errorf("v = %d, want 10", m.Fields["v"].Int)
	}
	if !res.FP.CoversKey(memento.Key{Table: "t", ID: "1"}) {
		t.Errorf("Get footprint %v does not cover the key", res.FP)
	}
	m.Fields["v"] = memento.Int(11)
	if err := txn.Put(ctx, m); err != nil {
		t.Fatal(err)
	}
	if err := txn.Insert(ctx, memento.Memento{
		Key:    memento.Key{Table: "t", ID: "2"},
		Fields: memento.Fields{"v": memento.Int(2)},
	}); err != nil {
		t.Fatal(err)
	}
	qres, err := txn.Query(ctx, memento.Query{Table: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if len(qres.Mems) != 2 {
		t.Fatalf("query rows = %d, want 2", len(qres.Mems))
	}
	if len(qres.FP.Queries) != 1 || len(qres.FP.Keys) != 2 {
		t.Errorf("query footprint = %v, want 1 query + 2 keys", qres.FP)
	}
	if err := txn.Delete(ctx, "t", "2"); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if v, _ := store.CurrentVersion(memento.Key{Table: "t", ID: "1"}); v != 2 {
		t.Errorf("committed version = %d, want 2", v)
	}
	if store.RowCount("t") != 1 {
		t.Error("deleted row survived")
	}
}

func TestErrorSentinelsSurviveTheWire(t *testing.T) {
	store, client := newPair(t)
	seed(store, "t", "1", 1)
	ctx := context.Background()

	txn, err := client.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer txn.Abort(ctx)
	if _, err := txn.Get(ctx, "t", "missing"); !errors.Is(err, sqlstore.ErrNotFound) {
		t.Errorf("NotFound lost: %v", err)
	}
	if err := txn.Insert(ctx, memento.Memento{Key: memento.Key{Table: "t", ID: "1"}}); !errors.Is(err, sqlstore.ErrExists) {
		t.Errorf("Exists lost: %v", err)
	}
	if err := txn.CheckVersion(ctx, memento.Key{Table: "t", ID: "1"}, 42); !errors.Is(err, sqlstore.ErrConflict) {
		t.Errorf("Conflict lost: %v", err)
	}
}

func TestAutoOpsAreSingleRoundTrips(t *testing.T) {
	store, client := newPair(t)
	seed(store, "t", "1", 10)
	ctx := context.Background()
	// Prime the pooled connection so dial cost is out of the way.
	if err := client.Ping(ctx); err != nil {
		t.Fatal(err)
	}

	before := client.RoundTrips()
	if _, err := client.AutoGet(ctx, "t", "1"); err != nil {
		t.Fatal(err)
	}
	if got := client.RoundTrips() - before; got != 1 {
		t.Errorf("AutoGet cost %d round trips, want 1", got)
	}
	before = client.RoundTrips()
	if _, err := client.AutoQuery(ctx, memento.Query{Table: "t"}); err != nil {
		t.Fatal(err)
	}
	if got := client.RoundTrips() - before; got != 1 {
		t.Errorf("AutoQuery cost %d round trips, want 1", got)
	}
}

func TestApplyCommitSetSingleRoundTrip(t *testing.T) {
	store, client := newPair(t)
	seed(store, "t", "1", 1)
	ctx := context.Background()
	if err := client.Ping(ctx); err != nil {
		t.Fatal(err)
	}

	before := client.RoundTrips()
	res, err := client.ApplyCommitSet(ctx, memento.CommitSet{
		Writes: []memento.Memento{{
			Key:     memento.Key{Table: "t", ID: "1"},
			Version: 1,
			Fields:  memento.Fields{"v": memento.Int(2)},
		}},
		Creates: []memento.Memento{{
			Key:    memento.Key{Table: "t", ID: "2"},
			Fields: memento.Fields{"v": memento.Int(5)},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := client.RoundTrips() - before; got != 1 {
		t.Errorf("ApplyCommitSet cost %d round trips, want exactly 1", got)
	}
	if res.NewVersions[memento.Key{Table: "t", ID: "1"}] != 2 {
		t.Errorf("NewVersions = %v", res.NewVersions)
	}
	if v, _ := store.CurrentVersion(memento.Key{Table: "t", ID: "2"}); v != 1 {
		t.Error("create not applied")
	}

	// Conflicts surface as ErrConflict.
	if _, err := client.ApplyCommitSet(ctx, memento.CommitSet{
		Writes: []memento.Memento{{
			Key:     memento.Key{Table: "t", ID: "1"},
			Version: 1,
			Fields:  memento.Fields{"v": memento.Int(3)},
		}},
	}); !errors.Is(err, sqlstore.ErrConflict) {
		t.Fatalf("got %v, want ErrConflict", err)
	}
}

func TestSubscriptionDeliversNotices(t *testing.T) {
	store, client := newPair(t)
	seed(store, "t", "1", 1)
	ctx := context.Background()

	ch, cancel, err := client.Subscribe(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	res, err := client.ApplyCommitSet(ctx, memento.CommitSet{
		Writes: []memento.Memento{{
			Key:     memento.Key{Table: "t", ID: "1"},
			Version: 1,
			Fields:  memento.Fields{"v": memento.Int(2)},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-ch:
		if n.TxID != res.TxID {
			t.Errorf("notice tx = %d, want %d", n.TxID, res.TxID)
		}
		if len(n.Keys) != 1 {
			t.Errorf("notice keys = %v", n.Keys)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no notice within deadline")
	}

	cancel()
	// Channel must close after cancel.
	deadline := time.After(2 * time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("channel not closed after cancel")
		}
	}
}

func TestConnDropAbortsTransaction(t *testing.T) {
	store, _ := newPair(t)
	seed(store, "t", "1", 1)
	ctx := context.Background()

	// A second client begins a transaction holding a lock, then drops.
	srv := NewServer(storeapi.Local(store))
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c2 := Dial(srv.Addr())
	txn, err := c2.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := txn.GetForUpdate(ctx, "t", "1"); err != nil {
		t.Fatal(err)
	}
	_ = c2.Close() // closes idle pool, but txn pins its conn
	// Drop the pinned connection by closing the whole server.
	srv.Close()

	// The lock must be released (server aborts on disconnect).
	deadline := time.Now().Add(2 * time.Second)
	for {
		tx, err := store.Begin(ctx)
		if err != nil {
			t.Fatal(err)
		}
		_, err = tx.GetForUpdate(ctx, "t", "1")
		tx.Abort()
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("lock still held after connection drop: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestConcurrentClients(t *testing.T) {
	store, client := newPair(t)
	ctx := context.Background()
	const keys = 8
	for i := 0; i < keys; i++ {
		seed(store, "t", fmt.Sprintf("%d", i), 0)
	}

	var wg sync.WaitGroup
	errs := make(chan error, keys)
	for i := 0; i < keys; i++ {
		id := fmt.Sprintf("%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 10; rep++ {
				txn, err := client.Begin(ctx)
				if err != nil {
					errs <- err
					return
				}
				res, err := txn.Get(ctx, "t", id)
				if err != nil {
					errs <- err
					return
				}
				m := res.Mem
				m.Fields["v"] = memento.Int(m.Fields["v"].Int + 1)
				if err := txn.Put(ctx, m); err != nil {
					errs <- err
					return
				}
				if err := txn.Commit(ctx); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := 0; i < keys; i++ {
		res, err := storeapi.Local(store).AutoGet(ctx, "t", fmt.Sprintf("%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if res.Mem.Fields["v"].Int != 10 {
			t.Errorf("key %d = %d, want 10", i, res.Mem.Fields["v"].Int)
		}
	}
}

func TestClientRejectsAfterClose(t *testing.T) {
	_, client := newPair(t)
	_ = client.Close()
	if _, err := client.Begin(context.Background()); err == nil {
		t.Fatal("expected error from closed client")
	}
}

func TestChainedServers(t *testing.T) {
	// A dbwire server can serve another dbwire client: the composition
	// the back-end server relies on.
	store := sqlstore.New()
	defer store.Close()
	seed(store, "t", "1", 7)

	inner := NewServer(storeapi.Local(store))
	if err := inner.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer inner.Close()

	mid := Dial(inner.Addr())
	defer mid.Close()
	outer := NewServer(mid)
	if err := outer.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer outer.Close()

	client := Dial(outer.Addr())
	defer client.Close()
	ctx := context.Background()
	res, err := client.AutoGet(ctx, "t", "1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Mem.Fields["v"].Int != 7 {
		t.Errorf("v = %d, want 7", res.Mem.Fields["v"].Int)
	}

	// A transaction through two hops still reports the store's tx id.
	txn, err := client.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer txn.Abort(ctx)
	if txn.ID() == 0 {
		t.Error("chained txn lost the store id")
	}
}

package dbwire

import (
	"errors"
	"fmt"

	"edgeejb/internal/memento"
	"edgeejb/internal/sqlstore"
)

// OpCode identifies a request operation.
type OpCode uint8

// Protocol operations.
const (
	OpBegin OpCode = iota + 1
	OpGet
	OpGetForUpdate
	OpPut
	OpInsert
	OpDelete
	OpQuery
	OpCheckVersion
	OpCheckedPut
	OpCheckedDelete
	OpCommit
	OpAbort
	OpApplyCommitSet
	OpSubscribe
	OpPing
	OpAutoGet
	OpAutoQuery
)

// String returns the operation name.
func (o OpCode) String() string {
	switch o {
	case OpBegin:
		return "Begin"
	case OpGet:
		return "Get"
	case OpGetForUpdate:
		return "GetForUpdate"
	case OpPut:
		return "Put"
	case OpInsert:
		return "Insert"
	case OpDelete:
		return "Delete"
	case OpQuery:
		return "Query"
	case OpCheckVersion:
		return "CheckVersion"
	case OpCheckedPut:
		return "CheckedPut"
	case OpCheckedDelete:
		return "CheckedDelete"
	case OpCommit:
		return "Commit"
	case OpAbort:
		return "Abort"
	case OpApplyCommitSet:
		return "ApplyCommitSet"
	case OpSubscribe:
		return "Subscribe"
	case OpPing:
		return "Ping"
	case OpAutoGet:
		return "AutoGet"
	case OpAutoQuery:
		return "AutoQuery"
	default:
		return fmt.Sprintf("OpCode(%d)", uint8(o))
	}
}

// Request is one client-to-server message. Fields beyond Op are
// populated according to the operation.
type Request struct {
	Op      OpCode
	Tx      uint64
	Table   string
	ID      string
	Key     memento.Key
	Version uint64
	Mem     memento.Memento
	Query   memento.Query
	Set     memento.CommitSet
}

// WireLabel names the request for per-op transport stats.
func (r *Request) WireLabel() string { return r.Op.String() }

// ErrCode classifies a response outcome so sentinel errors survive the
// wire: the client reconstructs an error for which errors.Is matches the
// corresponding sqlstore sentinel.
type ErrCode uint8

// Response outcome codes.
const (
	CodeOK ErrCode = iota
	CodeNotFound
	CodeExists
	CodeConflict
	CodeTxDone
	CodeClosed
	CodeBadRequest
	CodeInternal
)

// Response is one server-to-client message: either an RPC reply or (on
// subscription connections) a pushed invalidation notice.
type Response struct {
	Code        ErrCode
	Msg         string
	Tx          uint64
	Mem         memento.Memento
	Mems        []memento.Memento
	NewVersions map[memento.Key]uint64
	Notice      sqlstore.Notice
}

// encodeErr maps a server-side error to a wire code and message.
func encodeErr(err error) (ErrCode, string) {
	switch {
	case err == nil:
		return CodeOK, ""
	case errors.Is(err, sqlstore.ErrNotFound):
		return CodeNotFound, err.Error()
	case errors.Is(err, sqlstore.ErrExists):
		return CodeExists, err.Error()
	case errors.Is(err, sqlstore.ErrConflict):
		return CodeConflict, err.Error()
	case errors.Is(err, sqlstore.ErrTxDone):
		return CodeTxDone, err.Error()
	case errors.Is(err, sqlstore.ErrClosed):
		return CodeClosed, err.Error()
	default:
		return CodeInternal, err.Error()
	}
}

// decodeErr reconstructs a sentinel-matching error from a wire response.
func decodeErr(code ErrCode, msg string) error {
	switch code {
	case CodeOK:
		return nil
	case CodeNotFound:
		return wireError{sentinel: sqlstore.ErrNotFound, msg: msg}
	case CodeExists:
		return wireError{sentinel: sqlstore.ErrExists, msg: msg}
	case CodeConflict:
		return wireError{sentinel: sqlstore.ErrConflict, msg: msg}
	case CodeTxDone:
		return wireError{sentinel: sqlstore.ErrTxDone, msg: msg}
	case CodeClosed:
		return wireError{sentinel: sqlstore.ErrClosed, msg: msg}
	case CodeBadRequest:
		return fmt.Errorf("dbwire: bad request: %s", msg)
	default:
		return fmt.Errorf("dbwire: server error: %s", msg)
	}
}

// wireError carries a server error across the wire while preserving
// errors.Is matching against the sqlstore sentinels.
type wireError struct {
	sentinel error
	msg      string
}

func (e wireError) Error() string {
	if e.msg != "" {
		return e.msg
	}
	return e.sentinel.Error()
}

func (e wireError) Unwrap() error { return e.sentinel }

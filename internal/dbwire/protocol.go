package dbwire

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"edgeejb/internal/memento"
	"edgeejb/internal/sqlstore"
)

// OpCode identifies a request operation.
type OpCode uint8

// Protocol operations.
const (
	OpBegin OpCode = iota + 1
	OpGet
	OpGetForUpdate
	OpPut
	OpInsert
	OpDelete
	OpQuery
	OpCheckVersion
	OpCheckedPut
	OpCheckedDelete
	OpCommit
	OpAbort
	OpApplyCommitSet
	OpSubscribe
	OpPing
	OpAutoGet
	OpAutoQuery
	// OpHello is the codec handshake, sent as the first request on a
	// fresh connection by clients that support non-gob body codecs. It
	// always travels in gob; peers that predate it answer CodeBadRequest
	// ("unknown op"), which the client treats as "stay on gob".
	OpHello
	// OpBatch carries several statements of one transaction in a single
	// frame, executed sequentially server-side with per-statement
	// results — one round trip instead of len(Batch).
	OpBatch
	// OpApplyCommitSets carries several independent commit sets in one
	// frame (the backend's group commit), with per-set results.
	OpApplyCommitSets
	// OpPrepare is two-phase commit's first phase: validate the commit
	// sub-set in Set and hold its locks under the global identifier in
	// Gid. Peers that predate sharding answer CodeBadRequest ("unknown
	// op"), which the coordinator surfaces as a conflict.
	OpPrepare
	// OpCommitPrepared commits the transaction prepared under Gid.
	OpCommitPrepared
	// OpAbortPrepared aborts the transaction prepared under Gid.
	OpAbortPrepared
)

// String returns the operation name.
func (o OpCode) String() string {
	switch o {
	case OpBegin:
		return "Begin"
	case OpGet:
		return "Get"
	case OpGetForUpdate:
		return "GetForUpdate"
	case OpPut:
		return "Put"
	case OpInsert:
		return "Insert"
	case OpDelete:
		return "Delete"
	case OpQuery:
		return "Query"
	case OpCheckVersion:
		return "CheckVersion"
	case OpCheckedPut:
		return "CheckedPut"
	case OpCheckedDelete:
		return "CheckedDelete"
	case OpCommit:
		return "Commit"
	case OpAbort:
		return "Abort"
	case OpApplyCommitSet:
		return "ApplyCommitSet"
	case OpSubscribe:
		return "Subscribe"
	case OpPing:
		return "Ping"
	case OpAutoGet:
		return "AutoGet"
	case OpAutoQuery:
		return "AutoQuery"
	case OpHello:
		return "Hello"
	case OpBatch:
		return "Batch"
	case OpApplyCommitSets:
		return "ApplyCommitSets"
	case OpPrepare:
		return "Prepare"
	case OpCommitPrepared:
		return "CommitPrepared"
	case OpAbortPrepared:
		return "AbortPrepared"
	default:
		return fmt.Sprintf("OpCode(%d)", uint8(o))
	}
}

// Request is one client-to-server message. Fields beyond Op are
// populated according to the operation.
type Request struct {
	Op      OpCode
	Tx      uint64
	Table   string
	ID      string
	Key     memento.Key
	Version uint64
	Mem     memento.Memento
	Query   memento.Query
	Set     memento.CommitSet
	// Codecs lists the body codecs the client supports, in preference
	// order (OpHello only).
	Codecs []string
	// Batch carries the sub-requests of an OpBatch, each a statement of
	// the transaction named by Tx.
	Batch []Request
	// Sets carries the commit sets of an OpApplyCommitSets.
	Sets []memento.CommitSet
	// Gid names the global (cross-shard) transaction of a prepare-phase
	// op; the coordinator generates it and every participant keys its
	// prepared state on it.
	Gid string
}

// WireLabel names the request for per-op transport stats.
func (r *Request) WireLabel() string { return r.Op.String() }

// ErrCode classifies a response outcome so sentinel errors survive the
// wire: the client reconstructs an error for which errors.Is matches the
// corresponding sqlstore sentinel.
type ErrCode uint8

// Response outcome codes.
const (
	CodeOK ErrCode = iota
	CodeNotFound
	CodeExists
	CodeConflict
	CodeTxDone
	CodeClosed
	CodeBadRequest
	CodeInternal
)

// Response is one server-to-client message: either an RPC reply or (on
// subscription connections) a pushed invalidation notice.
type Response struct {
	Code        ErrCode
	Msg         string
	Tx          uint64
	Mem         memento.Memento
	Mems        []memento.Memento
	NewVersions map[memento.Key]uint64
	Notice      sqlstore.Notice
	// Conflict carries conflict attribution when Code is CodeConflict and
	// the server-side error was an attributed *sqlstore.ConflictError
	// (nil otherwise; gob omits it for free).
	Conflict *ConflictInfo
	// FP carries the footprint a Get/Query covered, stamped by the
	// server on read responses. Nil on every other response — and on
	// responses from peers that predate footprints, since gob omits the
	// nil pointer and old decoders ignore the unknown field; the client
	// synthesizes an equivalent footprint locally in that case, so mixed
	// versions interoperate.
	FP *memento.Footprint
	// Batch carries per-statement results of an OpBatch (one entry per
	// executed sub-request; execution stops at the first failure, so it
	// may be shorter than the request's Batch) or the per-set results of
	// an OpApplyCommitSets (always one entry per set).
	Batch []Response
	// Codec names the body codec the server selected (OpHello only).
	Codec string
}

// ConflictInfo is the wire form of sqlstore.ConflictError's attribution
// fields. It mirrors the struct rather than embedding it so the wire
// schema is explicit and independent of sqlstore's internals.
type ConflictInfo struct {
	Key                   memento.Key
	Expected, Actual      uint64
	WinnerTx, WinnerTrace uint64
	CommittedAt           time.Time
}

// encodeErr maps a server-side error to a wire code and message.
func encodeErr(err error) (ErrCode, string) {
	switch {
	case err == nil:
		return CodeOK, ""
	case errors.Is(err, sqlstore.ErrNotFound):
		return CodeNotFound, err.Error()
	case errors.Is(err, sqlstore.ErrExists):
		return CodeExists, err.Error()
	case errors.Is(err, sqlstore.ErrConflict):
		return CodeConflict, err.Error()
	case errors.Is(err, sqlstore.ErrTxDone):
		return CodeTxDone, err.Error()
	case errors.Is(err, sqlstore.ErrClosed):
		return CodeClosed, err.Error()
	default:
		return CodeInternal, err.Error()
	}
}

// errResponse builds the error reply for a server-side failure: the
// sentinel code and message from encodeErr plus, for attributed
// conflicts, the ConflictInfo payload.
func errResponse(err error) *Response {
	code, msg := encodeErr(err)
	resp := &Response{Code: code, Msg: msg}
	var ce *sqlstore.ConflictError
	if code == CodeConflict && errors.As(err, &ce) {
		resp.Conflict = &ConflictInfo{
			Key:         ce.Key,
			Expected:    ce.Expected,
			Actual:      ce.Actual,
			WinnerTx:    ce.WinnerTx,
			WinnerTrace: ce.WinnerTrace,
			CommittedAt: ce.CommittedAt,
		}
	}
	return resp
}

// decodeErr reconstructs a sentinel-matching error from a wire response.
// An attributed conflict comes back as a *sqlstore.ConflictError, so
// errors.As works identically on both sides of the wire (and across a
// relayed hop: the backend's client decodes it, and its server's
// errResponse re-encodes it).
func decodeErr(resp *Response) error {
	switch resp.Code {
	case CodeOK:
		return nil
	case CodeNotFound:
		return wireError{sentinel: sqlstore.ErrNotFound, msg: resp.Msg}
	case CodeExists:
		return wireError{sentinel: sqlstore.ErrExists, msg: resp.Msg}
	case CodeConflict:
		if ci := resp.Conflict; ci != nil {
			return &sqlstore.ConflictError{
				Key:         ci.Key,
				Expected:    ci.Expected,
				Actual:      ci.Actual,
				WinnerTx:    ci.WinnerTx,
				WinnerTrace: ci.WinnerTrace,
				CommittedAt: ci.CommittedAt,
				Detail:      strings.TrimPrefix(resp.Msg, sqlstore.ErrConflict.Error()+": "),
			}
		}
		return wireError{sentinel: sqlstore.ErrConflict, msg: resp.Msg}
	case CodeTxDone:
		return wireError{sentinel: sqlstore.ErrTxDone, msg: resp.Msg}
	case CodeClosed:
		return wireError{sentinel: sqlstore.ErrClosed, msg: resp.Msg}
	case CodeBadRequest:
		return fmt.Errorf("dbwire: bad request: %s", resp.Msg)
	default:
		return fmt.Errorf("dbwire: server error: %s", resp.Msg)
	}
}

// wireError carries a server error across the wire while preserving
// errors.Is matching against the sqlstore sentinels.
type wireError struct {
	sentinel error
	msg      string
}

func (e wireError) Error() string {
	if e.msg != "" {
		return e.msg
	}
	return e.sentinel.Error()
}

func (e wireError) Unwrap() error { return e.sentinel }

package obs

import (
	"strings"
	"sync"
)

// Labeled metric families give counters and histograms one dimension of
// attribution (`slicache.hits{bean=quote}`) without pulling in a full
// label model. Each (family, value) child is an ordinary registry
// metric whose name embeds the label, so snapshots, diffs, text/JSON
// output, and the sampler all handle labeled children with no extra
// code; WritePrometheus parses the embedded label back out and emits
// proper Prometheus label syntax.
//
// Cardinality is bounded per family: after MaxLabelValues distinct
// values, further values collapse into the reserved "other" child, so a
// bug that labels by an unbounded dimension (user ID, session ID)
// degrades accounting instead of exhausting memory.

// MaxLabelValues is the per-family bound on distinct label values; the
// value after the last slot is folded into LabelOverflow.
const MaxLabelValues = 32

// LabelOverflow is the reserved label value absorbing observations once
// a family exceeds MaxLabelValues distinct values.
const LabelOverflow = "other"

// LabeledCounter is a counter family keyed by one label dimension.
type LabeledCounter struct {
	r    *Registry
	base string
	key  string

	mu       sync.Mutex
	children map[string]*Counter
}

// LabeledCounter returns the counter family registered under base with
// the given label key, creating it on first use. Calling again with the
// same base returns the same family (the label key of the first call
// wins).
func (r *Registry) LabeledCounter(base, key string) *LabeledCounter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.labeledCounters[base]
	if f == nil {
		f = &LabeledCounter{r: r, base: base, key: key, children: make(map[string]*Counter)}
		r.labeledCounters[base] = f
	}
	return f
}

// With returns the child counter for one label value, creating it on
// first use. Beyond MaxLabelValues distinct values the overflow child is
// returned instead.
func (f *LabeledCounter) With(value string) *Counter {
	f.mu.Lock()
	defer f.mu.Unlock()
	value = sanitizeLabelValue(value)
	c, ok := f.children[value]
	if !ok {
		if len(f.children) >= MaxLabelValues && value != LabelOverflow {
			value = LabelOverflow
			if c, ok = f.children[value]; ok {
				return c
			}
		}
		c = f.r.Counter(labelName(f.base, f.key, value))
		f.children[value] = c
	}
	return c
}

// Base returns the family's base metric name.
func (f *LabeledCounter) Base() string { return f.base }

// Key returns the family's label key.
func (f *LabeledCounter) Key() string { return f.key }

// LabeledHistogram is a histogram family keyed by one label dimension.
type LabeledHistogram struct {
	r    *Registry
	base string
	key  string

	mu       sync.Mutex
	children map[string]*Histogram
}

// LabeledHistogram returns the histogram family registered under base
// with the given label key, creating it on first use.
func (r *Registry) LabeledHistogram(base, key string) *LabeledHistogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.labeledHists[base]
	if f == nil {
		f = &LabeledHistogram{r: r, base: base, key: key, children: make(map[string]*Histogram)}
		r.labeledHists[base] = f
	}
	return f
}

// With returns the child histogram for one label value, creating it on
// first use; overflow folds into LabelOverflow as for counters.
func (f *LabeledHistogram) With(value string) *Histogram {
	f.mu.Lock()
	defer f.mu.Unlock()
	value = sanitizeLabelValue(value)
	h, ok := f.children[value]
	if !ok {
		if len(f.children) >= MaxLabelValues && value != LabelOverflow {
			value = LabelOverflow
			if h, ok = f.children[value]; ok {
				return h
			}
		}
		h = f.r.Histogram(labelName(f.base, f.key, value))
		f.children[value] = h
	}
	return h
}

// Base returns the family's base metric name.
func (f *LabeledHistogram) Base() string { return f.base }

// Key returns the family's label key.
func (f *LabeledHistogram) Key() string { return f.key }

// labelName embeds one label pair in a metric name: base{key=value}.
func labelName(base, key, value string) string {
	return base + "{" + key + "=" + value + "}"
}

// SplitLabel parses a metric name minted by labelName back into its
// parts. Plain (unlabeled) names return ok == false with base set to
// the whole name.
func SplitLabel(name string) (base, key, value string, ok bool) {
	if !strings.HasSuffix(name, "}") {
		return name, "", "", false
	}
	open := strings.IndexByte(name, '{')
	if open < 1 {
		return name, "", "", false
	}
	pair := name[open+1 : len(name)-1]
	eq := strings.IndexByte(pair, '=')
	if eq < 1 {
		return name, "", "", false
	}
	return name[:open], pair[:eq], pair[eq+1:], true
}

// sanitizeLabelValue keeps label values unambiguous inside embedded
// names (and legal in the Prometheus exposition): the delimiter
// characters, quotes, and whitespace become '_', and an empty value
// becomes "none".
func sanitizeLabelValue(v string) string {
	if v == "" {
		return "none"
	}
	var b strings.Builder
	for _, r := range v {
		switch {
		case r == '{' || r == '}' || r == '=' || r == '"' || r == ',' || r == '\\' || r <= ' ':
			b.WriteByte('_')
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"time"
)

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (served by /metrics?format=prom), so any standard
// scraper can collect the registry without a sidecar:
//
//   - counters become `<name>_total` counters
//   - gauges stay gauges
//   - histograms become native Prometheus histograms: cumulative
//     `_bucket{le="<seconds>"}` series over the power-of-two duration
//     buckets, plus `_sum` and `_count` (sums in seconds, per
//     Prometheus base-unit convention)
//   - labeled-family children (`base{key=value}` names, see
//     LabeledCounter) are folded back into proper label syntax: one
//     TYPE line per family, one series per value
//   - histograms carrying an exemplar emit it OpenMetrics-style on the
//     bucket containing the exemplar observation, linking the bucket to
//     a trace in the span log
//
// Metric names are sanitized to the Prometheus grammar (every character
// outside [a-zA-Z0-9_:] becomes '_', so "slicache.hits" scrapes as
// "slicache_hits").
func (s Snapshot) WritePrometheus(w io.Writer) error {
	if err := writePromCounters(w, s.Counters); err != nil {
		return err
	}
	if err := writePromGauges(w, s.Gauges); err != nil {
		return err
	}
	return writePromHists(w, s.Histograms)
}

// promFamily groups the series sharing one base name: at most one
// unlabeled series plus any labeled children.
type promFamily struct {
	base   string
	series []promSeries
}

type promSeries struct {
	key, value string // empty key = unlabeled
	name       string // original snapshot name
}

// groupFamilies buckets metric names into families by base name, both
// levels sorted, so each family emits exactly one TYPE line followed by
// its series.
func groupFamilies(names []string) []promFamily {
	byBase := make(map[string]*promFamily)
	for _, n := range names {
		base, key, value, _ := SplitLabel(n)
		f := byBase[base]
		if f == nil {
			f = &promFamily{base: base}
			byBase[base] = f
		}
		f.series = append(f.series, promSeries{key: key, value: value, name: n})
	}
	out := make([]promFamily, 0, len(byBase))
	for _, f := range byBase {
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].value < f.series[j].value })
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].base < out[j].base })
	return out
}

func writePromCounters(w io.Writer, counters map[string]uint64) error {
	names := make([]string, 0, len(counters))
	for n := range counters {
		names = append(names, n)
	}
	for _, f := range groupFamilies(names) {
		pn := promName(f.base) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", pn); err != nil {
			return err
		}
		for _, ser := range f.series {
			if _, err := fmt.Fprintf(w, "%s%s %d\n", pn, promLabels(ser, ""), counters[ser.name]); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromGauges(w io.Writer, gauges map[string]int64) error {
	names := make([]string, 0, len(gauges))
	for n := range gauges {
		names = append(names, n)
	}
	for _, f := range groupFamilies(names) {
		pn := promName(f.base)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", pn); err != nil {
			return err
		}
		for _, ser := range f.series {
			if _, err := fmt.Fprintf(w, "%s%s %d\n", pn, promLabels(ser, ""), gauges[ser.name]); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromHists(w io.Writer, hists map[string]HistSnapshot) error {
	names := make([]string, 0, len(hists))
	for n := range hists {
		names = append(names, n)
	}
	for _, f := range groupFamilies(names) {
		pn := promName(f.base) + "_seconds"
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		for _, ser := range f.series {
			if err := writePromHist(w, pn, ser, hists[ser.name]); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromHist(w io.Writer, pn string, ser promSeries, h HistSnapshot) error {
	// The bucket index holding the exemplar observation (see Observe's
	// bucketing); -1 when the histogram has no exemplar.
	exIdx := -1
	if h.ExemplarTrace != 0 {
		exIdx = bits.Len64(uint64(h.ExemplarDur / time.Microsecond))
		if exIdx >= HistBuckets {
			exIdx = HistBuckets - 1
		}
	}
	exemplar := func(i int) string {
		if i != exIdx {
			return ""
		}
		// OpenMetrics exemplar syntax: value in seconds, trace ID as the
		// conventional trace_id label (hex, matching Perfetto export).
		return fmt.Sprintf(" # {trace_id=\"%x\"} %g", h.ExemplarTrace, h.ExemplarDur.Seconds())
	}
	var cum uint64
	for i, c := range h.Buckets {
		cum += c
		// Bucket i counts observations < 1µs<<i; the final bucket is
		// the +Inf overflow.
		if i == HistBuckets-1 {
			break
		}
		if cum == 0 {
			continue // skip leading empty buckets; the tail stays cumulative
		}
		le := float64(time.Microsecond<<i) / float64(time.Second)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n",
			pn, promLabels(ser, fmt.Sprintf("%g", le)), cum, exemplar(i)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n",
		pn, promLabels(ser, "+Inf"), h.Count, exemplar(HistBuckets-1)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", pn, promLabels(ser, ""), h.Sum.Seconds()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", pn, promLabels(ser, ""), h.Count)
	return err
}

// promLabels renders a series' label set: the family label (if any)
// plus, for histogram bucket lines, the le bound.
func promLabels(ser promSeries, le string) string {
	var parts []string
	if ser.key != "" {
		parts = append(parts, fmt.Sprintf("%s=%q", promName(ser.key), ser.value))
	}
	if le != "" {
		parts = append(parts, fmt.Sprintf("le=%q", le))
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// promName maps a dotted obs metric name onto the Prometheus grammar.
func promName(n string) string {
	var b strings.Builder
	b.Grow(len(n))
	for i, r := range n {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			r = '_'
		}
		b.WriteRune(r)
	}
	return b.String()
}

package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (served by /metrics?format=prom), so any standard
// scraper can collect the registry without a sidecar:
//
//   - counters become `<name>_total` counters
//   - gauges stay gauges
//   - histograms become native Prometheus histograms: cumulative
//     `_bucket{le="<seconds>"}` series over the power-of-two duration
//     buckets, plus `_sum` and `_count` (sums in seconds, per
//     Prometheus base-unit convention)
//
// Metric names are sanitized to the Prometheus grammar (every character
// outside [a-zA-Z0-9_:] becomes '_', so "slicache.hits" scrapes as
// "slicache_hits").
func (s Snapshot) WritePrometheus(w io.Writer) error {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		pn := promName(n) + "_seconds"
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		var cum uint64
		for i, c := range h.Buckets {
			cum += c
			// Bucket i counts observations < 1µs<<i; the final bucket is
			// the +Inf overflow.
			if i == HistBuckets-1 {
				break
			}
			if cum == 0 {
				continue // skip leading empty buckets; the tail stays cumulative
			}
			le := float64(time.Microsecond<<i) / float64(time.Second)
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", pn, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n", pn, h.Sum.Seconds()); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count %d\n", pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promName maps a dotted obs metric name onto the Prometheus grammar.
func promName(n string) string {
	var b strings.Builder
	b.Grow(len(n))
	for i, r := range n {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			r = '_'
		}
		b.WriteRune(r)
	}
	return b.String()
}

package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Sample is one timed registry snapshot.
type Sample struct {
	T    time.Time
	Snap Snapshot
}

// Sampler snapshots a registry at a fixed interval into a bounded ring,
// turning the registry's point-in-time view into a time series. The
// ring keeps the most recent Capacity samples; a long run loses its
// oldest samples, never its newest.
type Sampler struct {
	reg      *Registry
	interval time.Duration

	mu   sync.Mutex
	ring []Sample
	next int
	full bool
	stop chan struct{}
	done chan struct{}
}

// NewSampler returns a sampler over reg (Default when nil) at the given
// interval (100ms minimum, 1s when non-positive), retaining up to
// capacity samples (4096 when non-positive). Call Start to begin.
func NewSampler(reg *Registry, interval time.Duration, capacity int) *Sampler {
	if reg == nil {
		reg = Default
	}
	if interval <= 0 {
		interval = time.Second
	}
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	if capacity <= 0 {
		capacity = 4096
	}
	return &Sampler{reg: reg, interval: interval, ring: make([]Sample, capacity)}
}

// Start launches the sampling goroutine (idempotent). The first sample
// is taken immediately, so even a short phase gets a data point.
func (s *Sampler) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stop != nil {
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go s.run(s.stop, s.done)
}

func (s *Sampler) run(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	s.record()
	tick := time.NewTicker(s.interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			s.record()
		case <-stop:
			// One final sample so the series covers up to Stop.
			s.record()
			return
		}
	}
}

func (s *Sampler) record() {
	sample := Sample{T: time.Now(), Snap: s.reg.Snapshot()}
	s.mu.Lock()
	s.ring[s.next] = sample
	s.next++
	if s.next == len(s.ring) {
		s.next = 0
		s.full = true
	}
	s.mu.Unlock()
}

// SampleNow takes an immediate sample outside the ticker cadence —
// the benchmark driver pins one at each phase boundary so even a phase
// shorter than the interval gets endpoints in its time series.
func (s *Sampler) SampleNow() { s.record() }

// Stop halts sampling after one final sample and waits for the
// goroutine to exit. The gathered samples remain readable.
func (s *Sampler) Stop() {
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Samples returns the retained samples, oldest first.
func (s *Sampler) Samples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Sample
	if s.full {
		out = append(out, s.ring[s.next:]...)
	}
	out = append(out, s.ring[:s.next]...)
	return out
}

// SamplesBetween returns the retained samples with from <= T < to,
// oldest first (zero times mean unbounded) — the per-phase slice the
// benchmark driver writes to CSV.
func (s *Sampler) SamplesBetween(from, to time.Time) []Sample {
	all := s.Samples()
	out := all[:0:0]
	for _, sm := range all {
		if !from.IsZero() && sm.T.Before(from) {
			continue
		}
		if !to.IsZero() && !sm.T.Before(to) {
			continue
		}
		out = append(out, sm)
	}
	return out
}

// WriteSamplesCSV renders samples as a long-format CSV time series, one
// row per (sample, metric):
//
//	t_unix_ms,kind,name,value,count,sum_ns,p50_ns,p95_ns,p99_ns,max_ns
//
// Counters and gauges fill only value; histograms fill count through
// max_ns and leave value empty. Rows are ordered by time, then kind,
// then name, so the file diffs and plots cleanly.
func WriteSamplesCSV(w io.Writer, samples []Sample) error {
	if _, err := fmt.Fprintln(w, "t_unix_ms,kind,name,value,count,sum_ns,p50_ns,p95_ns,p99_ns,max_ns"); err != nil {
		return err
	}
	for _, sm := range samples {
		ms := sm.T.UnixMilli()
		names := make([]string, 0, len(sm.Snap.Counters))
		for n := range sm.Snap.Counters {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if _, err := fmt.Fprintf(w, "%d,counter,%s,%d,,,,,,\n", ms, n, sm.Snap.Counters[n]); err != nil {
				return err
			}
		}
		names = names[:0]
		for n := range sm.Snap.Gauges {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if _, err := fmt.Fprintf(w, "%d,gauge,%s,%d,,,,,,\n", ms, n, sm.Snap.Gauges[n]); err != nil {
				return err
			}
		}
		names = names[:0]
		for n := range sm.Snap.Histograms {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			h := sm.Snap.Histograms[n]
			if _, err := fmt.Fprintf(w, "%d,hist,%s,,%d,%d,%d,%d,%d,%d\n",
				ms, n, h.Count, int64(h.Sum),
				int64(h.Quantile(0.50)), int64(h.Quantile(0.95)),
				int64(h.Quantile(0.99)), int64(h.Max)); err != nil {
				return err
			}
		}
	}
	return nil
}

package obs

import (
	"context"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestDebugEndpointsSmoke starts a real debug listener and exercises
// every endpoint the daemons expose behind -debug-addr.
func TestDebugEndpointsSmoke(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("smoke.requests").Add(3)
	reg.Histogram("smoke.latency").Observe(2 * time.Millisecond)
	spans := NewSpanLog(16)
	ctx, id := WithNewTrace(context.Background())
	_, sp := StartSpan(ctx, "smoke.root")
	sp.End()
	spans.add(sp.rec)

	healthy := true
	srv, err := StartDebug("127.0.0.1:0", DebugOptions{
		Registry: reg,
		Spans:    spans,
		Healthy:  func() bool { return healthy },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string, wantStatus int) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != wantStatus {
			t.Fatalf("GET %s: status %d, want %d\n%s", path, resp.StatusCode, wantStatus, body)
		}
		return string(body)
	}

	if out := get("/metrics", 200); !strings.Contains(out, "counter smoke.requests 3") ||
		!strings.Contains(out, "hist smoke.latency count=1") {
		t.Fatalf("/metrics missing expected lines:\n%s", out)
	}
	if out := get("/metrics?format=json", 200); !strings.Contains(out, `"smoke.requests": 3`) {
		t.Fatalf("/metrics json missing counter:\n%s", out)
	}
	if out := get("/healthz", 200); !strings.Contains(out, "ok") {
		t.Fatalf("/healthz = %q", out)
	}
	healthy = false
	get("/healthz", 503)
	healthy = true

	if out := get("/debug/spans", 200); !strings.Contains(out, "smoke.root") {
		t.Fatalf("/debug/spans missing span:\n%s", out)
	}
	if out := get("/debug/spans?trace="+strconv.FormatUint(id, 10), 200); !strings.Contains(out, "smoke.root") {
		t.Fatalf("/debug/spans?trace missing span:\n%s", out)
	}
	if out := get("/debug/pprof/", 200); !strings.Contains(out, "goroutine") {
		t.Fatalf("/debug/pprof/ index unexpected:\n%s", out)
	}
}

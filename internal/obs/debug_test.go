package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestDebugEndpointsSmoke starts a real debug listener and exercises
// every endpoint the daemons expose behind -debug-addr.
func TestDebugEndpointsSmoke(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("smoke.requests").Add(3)
	reg.Histogram("smoke.latency").Observe(2 * time.Millisecond)
	spans := NewSpanLog(16)
	ctx, id := WithNewTrace(context.Background())
	_, sp := StartSpan(ctx, "smoke.root")
	sp.End()
	spans.add(sp.rec)

	healthy := true
	srv, err := StartDebug("127.0.0.1:0", DebugOptions{
		Registry: reg,
		Spans:    spans,
		Healthy:  func() bool { return healthy },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string, wantStatus int) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != wantStatus {
			t.Fatalf("GET %s: status %d, want %d\n%s", path, resp.StatusCode, wantStatus, body)
		}
		return string(body)
	}

	if out := get("/metrics", 200); !strings.Contains(out, "counter smoke.requests 3") ||
		!strings.Contains(out, "hist smoke.latency count=1") {
		t.Fatalf("/metrics missing expected lines:\n%s", out)
	}
	if out := get("/metrics?format=json", 200); !strings.Contains(out, `"smoke.requests": 3`) {
		t.Fatalf("/metrics json missing counter:\n%s", out)
	}
	if out := get("/healthz", 200); !strings.Contains(out, "ok") {
		t.Fatalf("/healthz = %q", out)
	}
	healthy = false
	get("/healthz", 503)
	healthy = true

	if out := get("/debug/spans", 200); !strings.Contains(out, "smoke.root") {
		t.Fatalf("/debug/spans missing span:\n%s", out)
	}
	if out := get("/debug/spans?trace="+strconv.FormatUint(id, 10), 200); !strings.Contains(out, "smoke.root") {
		t.Fatalf("/debug/spans?trace missing span:\n%s", out)
	}
	if out := get("/debug/pprof/", 200); !strings.Contains(out, "goroutine") {
		t.Fatalf("/debug/pprof/ index unexpected:\n%s", out)
	}
}

// TestDebugLimitParam exercises the response-size cap both cursor
// endpoints expose to pollers: limit truncates oldest-first (so a
// capped page still advances the cursor), and malformed values are
// 400s, not silent defaults.
func TestDebugLimitParam(t *testing.T) {
	spans := NewSpanLog(64)
	ctx, _ := WithNewTrace(context.Background())
	for i := 0; i < 8; i++ {
		_, sp := StartSpan(ctx, "limit.span")
		sp.End()
		spans.add(sp.rec)
	}
	events := NewEventLog(64)
	for i := 0; i < 8; i++ {
		events.Emit(Event{Type: EventConflict, Op: "buy"})
	}
	srv, err := StartDebug("127.0.0.1:0", DebugOptions{
		Spans:  spans,
		Events: events,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string, wantStatus int) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != wantStatus {
			t.Fatalf("GET %s: status %d, want %d\n%s", path, resp.StatusCode, wantStatus, body)
		}
		return string(body)
	}

	// Spans: the JSON export respects limit and keeps the OLDEST
	// records, so the poller's next since= resumes from the cut.
	var recs []SpanRecord
	if err := json.Unmarshal([]byte(get("/debug/spans?format=json&limit=3", 200)), &recs); err != nil {
		t.Fatalf("spans json: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("spans limit=3 returned %d records", len(recs))
	}
	all := spans.Since(time.Time{})
	if recs[0].Span != all[0].Span || recs[2].Span != all[2].Span {
		t.Fatalf("spans limit did not keep the oldest records: got %v, want prefix of %v", recs, all[:3])
	}

	// Events: same contract on the sequence cursor.
	lines := strings.Split(strings.TrimSpace(get("/debug/events?format=json&limit=2", 200)), "\n")
	if len(lines) != 2 {
		t.Fatalf("events limit=2 returned %d lines", len(lines))
	}
	var first Event
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("events json: %v", err)
	}
	if first.Seq != 1 {
		t.Fatalf("events limit kept seq %d first, want the oldest (1)", first.Seq)
	}

	// Text mode is capped too.
	if out := get("/debug/spans?limit=2", 200); strings.Count(out, "limit.span") != 2 {
		t.Fatalf("spans text limit=2:\n%s", out)
	}

	// Malformed limits are 400s on both endpoints.
	for _, bad := range []string{"limit=0", "limit=-1", "limit=abc"} {
		get("/debug/spans?"+bad, 400)
		get("/debug/events?"+bad, 400)
	}
}

package obs

import (
	"math"
	"sort"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Max != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
	if got := s.Mean(); got != 0 {
		t.Fatalf("empty Mean = %v, want 0", got)
	}
	for _, p := range []float64{0.5, 0.95, 0.99, 1} {
		if got := s.Quantile(p); got != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", p, got)
		}
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 3*time.Millisecond || s.Max != 3*time.Millisecond {
		t.Fatalf("snapshot = %+v", s)
	}
	if got := s.Mean(); got != 3*time.Millisecond {
		t.Fatalf("Mean = %v", got)
	}
	// Every quantile of a single sample lands in its bucket; the answer
	// is that bucket's upper edge, which must bracket the sample within
	// the 2x bucket resolution.
	for _, p := range []float64{0.01, 0.5, 0.99, 1} {
		q := s.Quantile(p)
		if q < 3*time.Millisecond || q > 8*time.Millisecond {
			t.Fatalf("Quantile(%v) = %v, want in [3ms, 8ms]", p, q)
		}
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	var h Histogram
	huge := 90 * time.Second // beyond the last bucket edge (~67s)
	h.Observe(huge)
	h.Observe(2 * huge)
	s := h.Snapshot()
	if s.Buckets[HistBuckets-1] != 2 {
		t.Fatalf("overflow bucket = %d, want 2", s.Buckets[HistBuckets-1])
	}
	// Quantiles that land in the overflow bucket interpolate toward the
	// true max, never past it; Quantile(1) reaches it exactly.
	if got := s.Quantile(0.99); got <= huge || got > 2*huge {
		t.Fatalf("Quantile(0.99) = %v, want in (%v, %v]", got, huge, 2*huge)
	}
	if got := s.Quantile(1); got != 2*huge {
		t.Fatalf("Quantile(1) = %v, want %v", got, 2*huge)
	}
	if s.Max != 2*huge {
		t.Fatalf("Max = %v, want %v", s.Max, 2*huge)
	}
}

func TestHistogramNegativeCountsAsZero(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 0 || s.Buckets[0] != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	p50, p95, p99 := s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99)
	if !(p50 <= p95 && p95 <= p99 && p99 <= s.Max) {
		t.Fatalf("quantiles not monotone: p50=%v p95=%v p99=%v max=%v", p50, p95, p99, s.Max)
	}
	// The median sample (~50ms) lands in the 32.768–65.536ms bucket, so
	// the reported upper bound is that bucket's 65.536ms edge.
	if p50 < 32*time.Millisecond || p50 > 66*time.Millisecond {
		t.Fatalf("p50 = %v, want the 65.536ms bucket edge region", p50)
	}
}

func TestHistSnapshotSub(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	before := h.Snapshot()
	h.Observe(2 * time.Millisecond)
	h.Observe(4 * time.Millisecond)
	diff := h.Snapshot().Sub(before)
	if diff.Count != 2 {
		t.Fatalf("diff.Count = %d, want 2", diff.Count)
	}
	if diff.Sum != 6*time.Millisecond {
		t.Fatalf("diff.Sum = %v, want 6ms", diff.Sum)
	}
	// Sub against a fresher snapshot (counter reset) clamps at zero.
	clamped := before.Sub(h.Snapshot())
	if clamped.Count != 0 || clamped.Sum != 0 {
		t.Fatalf("clamped = %+v", clamped)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(5)
	g.Add(-2)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
}

// TestQuantileInterpolation pins the worst-case relative error of the
// interpolated quantile estimator against exact quantiles of known
// samples. Power-of-two buckets alone guarantee only "within 2x"
// (a pure upper-bound estimate can overstate by ~100%); within-bucket
// linear interpolation must hold every tested distribution and
// quantile to 35% relative error, and smooth distributions far closer.
// summary.json percentiles lean on this bound being honest.
func TestQuantileInterpolation(t *testing.T) {
	// Deterministic LCG so the "random" distributions are reproducible.
	seed := uint64(12345)
	next := func() uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed >> 33
	}
	distributions := map[string][]time.Duration{
		"uniform-one-bucket": func() []time.Duration {
			// 1000 values uniform in [16µs, 32µs): a single bucket, the
			// case pure upper bounds butcher (every quantile = 32µs).
			out := make([]time.Duration, 1000)
			for i := range out {
				out[i] = 16*time.Microsecond + time.Duration(next()%16000)*time.Nanosecond
			}
			return out
		}(),
		"uniform-wide": func() []time.Duration {
			out := make([]time.Duration, 2000)
			for i := range out {
				out[i] = time.Duration(1+next()%100000) * time.Microsecond
			}
			return out
		}(),
		"bimodal": func() []time.Duration {
			out := make([]time.Duration, 1000)
			for i := range out {
				if i%10 == 0 {
					out[i] = 20*time.Millisecond + time.Duration(next()%10000)*time.Microsecond
				} else {
					out[i] = 100*time.Microsecond + time.Duration(next()%400)*time.Microsecond
				}
			}
			return out
		}(),
	}
	const maxRelErr = 0.35
	for name, values := range distributions {
		var h Histogram
		sorted := append([]time.Duration(nil), values...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, v := range values {
			h.Observe(v)
		}
		s := h.Snapshot()
		for _, p := range []float64{0.25, 0.50, 0.90, 0.95, 0.99, 1} {
			// Exact quantile by rank, matching the estimator's
			// ceil(p*count) target.
			rank := int(p * float64(len(sorted)))
			if rank < 1 {
				rank = 1
			}
			exact := sorted[rank-1]
			got := s.Quantile(p)
			rel := math.Abs(float64(got)-float64(exact)) / float64(exact)
			if rel > maxRelErr {
				t.Errorf("%s: Quantile(%v) = %v, exact %v, rel err %.2f > %.2f",
					name, p, got, exact, rel, maxRelErr)
			}
		}
		if got := s.Quantile(1); got != s.Max {
			t.Errorf("%s: Quantile(1) = %v, want max %v", name, got, s.Max)
		}
	}
}

package obs

import (
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Max != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
	if got := s.Mean(); got != 0 {
		t.Fatalf("empty Mean = %v, want 0", got)
	}
	for _, p := range []float64{0.5, 0.95, 0.99, 1} {
		if got := s.Quantile(p); got != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", p, got)
		}
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 3*time.Millisecond || s.Max != 3*time.Millisecond {
		t.Fatalf("snapshot = %+v", s)
	}
	if got := s.Mean(); got != 3*time.Millisecond {
		t.Fatalf("Mean = %v", got)
	}
	// Every quantile of a single sample lands in its bucket; the answer
	// is that bucket's upper edge, which must bracket the sample within
	// the 2x bucket resolution.
	for _, p := range []float64{0.01, 0.5, 0.99, 1} {
		q := s.Quantile(p)
		if q < 3*time.Millisecond || q > 8*time.Millisecond {
			t.Fatalf("Quantile(%v) = %v, want in [3ms, 8ms]", p, q)
		}
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	var h Histogram
	huge := 90 * time.Second // beyond the last bucket edge (~67s)
	h.Observe(huge)
	h.Observe(2 * huge)
	s := h.Snapshot()
	if s.Buckets[HistBuckets-1] != 2 {
		t.Fatalf("overflow bucket = %d, want 2", s.Buckets[HistBuckets-1])
	}
	// Quantiles that land in the overflow bucket report the true max,
	// not a bucket edge.
	if got := s.Quantile(0.99); got != 2*huge {
		t.Fatalf("Quantile(0.99) = %v, want %v", got, 2*huge)
	}
	if s.Max != 2*huge {
		t.Fatalf("Max = %v, want %v", s.Max, 2*huge)
	}
}

func TestHistogramNegativeCountsAsZero(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 0 || s.Buckets[0] != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	p50, p95, p99 := s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99)
	if !(p50 <= p95 && p95 <= p99 && p99 <= s.Max) {
		t.Fatalf("quantiles not monotone: p50=%v p95=%v p99=%v max=%v", p50, p95, p99, s.Max)
	}
	// The median sample (~50ms) lands in the 32.768–65.536ms bucket, so
	// the reported upper bound is that bucket's 65.536ms edge.
	if p50 < 32*time.Millisecond || p50 > 66*time.Millisecond {
		t.Fatalf("p50 = %v, want the 65.536ms bucket edge region", p50)
	}
}

func TestHistSnapshotSub(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	before := h.Snapshot()
	h.Observe(2 * time.Millisecond)
	h.Observe(4 * time.Millisecond)
	diff := h.Snapshot().Sub(before)
	if diff.Count != 2 {
		t.Fatalf("diff.Count = %d, want 2", diff.Count)
	}
	if diff.Sum != 6*time.Millisecond {
		t.Fatalf("diff.Sum = %v, want 6ms", diff.Sum)
	}
	// Sub against a fresher snapshot (counter reset) clamps at zero.
	clamped := before.Sub(h.Snapshot())
	if clamped.Count != 0 || clamped.Sum != 0 {
		t.Fatalf("clamped = %+v", clamped)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(5)
	g.Add(-2)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
}

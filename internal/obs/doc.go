// Package obs is the observability layer: a dependency-free metrics
// and tracing subsystem every tier of the system reports into, so a
// running edge server, back-end, database server, or proxy can be
// watched live instead of being scraped for counters after a run ends.
//
// It has three parts:
//
//   - Metrics: atomic Counters and Gauges, and log-bucketed latency
//     Histograms with p50/p95/p99 estimates, collected in a named
//     Registry. Snapshot captures every metric at a point in time;
//     Snapshot.Sub diffs two captures, which is how the benchmark
//     harness attributes activity to one experiment phase.
//   - Trace spans: a trace ID is planted in a context (WithNewTrace)
//     at the edge of the system — one ID per client interaction — and
//     propagates across process boundaries in the wire transport's
//     frame header. Each tier brackets its hot work in StartSpan/End;
//     finished spans feed a per-name latency histogram ("span.<name>")
//     and a bounded in-memory SpanLog from which a single Trade2
//     interaction can be reconstructed as edge → (cache hit | back-end
//     round trip) → datastore with per-hop durations.
//   - Debug endpoints: StartDebug serves /metrics (text and JSON),
//     /healthz, /debug/spans, and /debug/pprof/* on an opt-in address;
//     every daemon exposes it behind its -debug-addr flag.
//
// The package deliberately depends on the standard library only, sits
// below every other internal package, and costs nothing measurable when
// idle: counters are single atomic adds, and StartSpan on a context
// without a trace returns a nil span whose End is a no-op.
//
// Every metric and span name is documented in OBSERVABILITY.md at the
// repository root; CI fails if a registered name is missing there.
package obs

package obs

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestLabeledCounterChildren(t *testing.T) {
	r := NewRegistry()
	f := r.LabeledCounter("cache.hits", "bean")
	f.With("quote").Add(3)
	f.With("account").Inc()
	f.With("quote").Inc()

	snap := r.Snapshot()
	if got := snap.Counters[`cache.hits{bean=quote}`]; got != 4 {
		t.Fatalf("quote child = %d, want 4", got)
	}
	if got := snap.Counters[`cache.hits{bean=account}`]; got != 1 {
		t.Fatalf("account child = %d, want 1", got)
	}
}

func TestLabeledCounterFamilyReuse(t *testing.T) {
	r := NewRegistry()
	a := r.LabeledCounter("f", "bean")
	b := r.LabeledCounter("f", "other") // first call's key wins
	if a != b {
		t.Fatal("same base should return the same family")
	}
	if b.Key() != "bean" {
		t.Fatalf("Key() = %q, want first call's %q", b.Key(), "bean")
	}
	if b.Base() != "f" {
		t.Fatalf("Base() = %q", b.Base())
	}
	// Same (family, value) → same child counter.
	if a.With("x") != b.With("x") {
		t.Fatal("same value should return the same child")
	}
}

func TestLabeledCounterOverflow(t *testing.T) {
	r := NewRegistry()
	f := r.LabeledCounter("f", "k")
	for i := 0; i < MaxLabelValues; i++ {
		f.With(fmt.Sprintf("v%d", i)).Inc()
	}
	// These two land past the cap and must fold into the overflow child.
	f.With("extra1").Inc()
	f.With("extra2").Inc()

	snap := r.Snapshot()
	if got := snap.Counters[labelName("f", "k", LabelOverflow)]; got != 2 {
		t.Fatalf("overflow child = %d, want 2", got)
	}
	if _, ok := snap.Counters[labelName("f", "k", "extra1")]; ok {
		t.Fatal("past-cap value minted its own child")
	}
	// A value seen before the cap keeps resolving to its own child.
	f.With("v0").Inc()
	if got := r.Snapshot().Counters[labelName("f", "k", "v0")]; got != 2 {
		t.Fatalf("pre-cap child = %d, want 2", got)
	}
}

func TestLabeledCounterSanitizesValues(t *testing.T) {
	r := NewRegistry()
	f := r.LabeledCounter("f", "k")
	f.With("").Inc()
	f.With(`a{b}=c"d,e f`).Inc()
	snap := r.Snapshot()
	if got := snap.Counters[labelName("f", "k", "none")]; got != 1 {
		t.Fatalf("empty value child = %d, want 1 under %q", got, "none")
	}
	if got := snap.Counters[labelName("f", "k", "a_b__c_d_e_f")]; got != 1 {
		t.Fatalf("sanitized child = %d, want 1", got)
	}
}

func TestLabeledHistogram(t *testing.T) {
	r := NewRegistry()
	f := r.LabeledHistogram("lat", "bean")
	f.With("quote").Observe(2 * time.Millisecond)
	f.With("quote").Observe(4 * time.Millisecond)
	f.With("holding").Observe(time.Millisecond)

	snap := r.Snapshot()
	if got := snap.Histograms[`lat{bean=quote}`].Count; got != 2 {
		t.Fatalf("quote count = %d, want 2", got)
	}
	if got := snap.Histograms[`lat{bean=holding}`].Count; got != 1 {
		t.Fatalf("holding count = %d, want 1", got)
	}
}

func TestLabeledChildrenInDiff(t *testing.T) {
	r := NewRegistry()
	f := r.LabeledCounter("f", "k")
	f.With("a").Add(5)
	before := r.Snapshot()
	f.With("a").Add(2)
	f.With("b").Inc()
	diff := r.Diff(before)
	if got := diff.Counters[labelName("f", "k", "a")]; got != 2 {
		t.Fatalf("diff a = %d, want 2", got)
	}
	if got := diff.Counters[labelName("f", "k", "b")]; got != 1 {
		t.Fatalf("diff b = %d, want 1", got)
	}
}

func TestSplitLabel(t *testing.T) {
	cases := []struct {
		name             string
		base, key, value string
		ok               bool
	}{
		{"a{k=v}", "a", "k", "v", true},
		{"slicache.hits{bean=quote}", "slicache.hits", "bean", "quote", true},
		{"plain", "plain", "", "", false},
		{"{k=v}", "{k=v}", "", "", false}, // no base
		{"a{kv}", "a{kv}", "", "", false}, // no '='
		{"a{=v}", "a{=v}", "", "", false}, // empty key
		{"a{k=v", "a{k=v", "", "", false}, // unterminated
		{"a{k=}", "a", "k", "", true},     // empty value parses
		{"a{k=v=w}", "a", "k", "v=w", true} /* first '=' splits */}
	for _, c := range cases {
		base, key, value, ok := SplitLabel(c.name)
		if base != c.base || key != c.key || value != c.value || ok != c.ok {
			t.Errorf("SplitLabel(%q) = (%q, %q, %q, %v), want (%q, %q, %q, %v)",
				c.name, base, key, value, ok, c.base, c.key, c.value, c.ok)
		}
	}
	// Round trip through labelName.
	base, key, value, ok := SplitLabel(labelName("m.x", "bean", "quote"))
	if !ok || base != "m.x" || key != "bean" || value != "quote" {
		t.Fatalf("round trip = (%q, %q, %q, %v)", base, key, value, ok)
	}
}

func TestPrometheusLabeledFamilies(t *testing.T) {
	r := NewRegistry()
	f := r.LabeledCounter("cache.hits", "bean")
	f.With("quote").Add(7)
	f.With("account").Add(2)
	r.Counter("cache.hits").Add(9) // unlabeled series in the same family
	r.Gauge("cache.entries").Set(5)

	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	if got := strings.Count(out, "# TYPE cache_hits_total counter"); got != 1 {
		t.Fatalf("want exactly one TYPE line for the family, got %d:\n%s", got, out)
	}
	for _, want := range []string{
		"cache_hits_total{bean=\"quote\"} 7",
		"cache_hits_total{bean=\"account\"} 2",
		"cache_hits_total 9",
		"# TYPE cache_entries gauge",
		"cache_entries 5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusHistogramExemplar(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("req.latency")
	h.Observe(time.Millisecond)
	h.ObserveTrace(8*time.Millisecond, 0xabcd)

	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `# {trace_id="abcd"} 0.008`) {
		t.Fatalf("prom output missing exemplar:\n%s", out)
	}
	// The exemplar must sit on a bucket line, not on sum/count.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "trace_id") && !strings.Contains(line, "_bucket") {
			t.Fatalf("exemplar on a non-bucket line: %s", line)
		}
	}
}

func TestHistogramExemplarTracksMax(t *testing.T) {
	h := &Histogram{}
	h.ObserveTrace(2*time.Millisecond, 1)
	h.ObserveTrace(10*time.Millisecond, 2)
	h.ObserveTrace(time.Millisecond, 3) // smaller: must not displace
	s := h.Snapshot()
	if s.ExemplarTrace != 2 || s.ExemplarDur != 10*time.Millisecond {
		t.Fatalf("exemplar = (trace %d, %v), want (2, 10ms)", s.ExemplarTrace, s.ExemplarDur)
	}
	// Untraced observations never store an exemplar.
	h2 := &Histogram{}
	h2.Observe(time.Second)
	if s := h2.Snapshot(); s.ExemplarTrace != 0 {
		t.Fatalf("untraced observation stored exemplar trace %d", s.ExemplarTrace)
	}
}

func TestHistSnapshotSubKeepsLaterExemplar(t *testing.T) {
	h := &Histogram{}
	h.ObserveTrace(time.Millisecond, 7)
	before := h.Snapshot()
	h.ObserveTrace(5*time.Millisecond, 9)
	diff := h.Snapshot().Sub(before)
	if diff.ExemplarTrace != 9 {
		t.Fatalf("diff exemplar trace = %d, want 9", diff.ExemplarTrace)
	}
}

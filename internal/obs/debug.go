package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"strconv"
	"time"
)

// DebugOptions configures a debug listener. The zero value serves the
// Default registry and span log and always reports healthy.
type DebugOptions struct {
	// Registry served by /metrics (Default when nil).
	Registry *Registry
	// Spans served by /debug/spans (DefaultSpans when nil).
	Spans *SpanLog
	// Events served by /debug/events (DefaultEvents when nil).
	Events *EventLog
	// Healthy decides /healthz (always healthy when nil).
	Healthy func() bool
}

// NewDebugMux builds the debug HTTP handler:
//
//	/metrics       text snapshot of the registry (?format=json for JSON,
//	               ?format=prom for Prometheus exposition)
//	/healthz       200 while Healthy() (503 otherwise); the body carries
//	               uptime, build info, and the registered metric count so
//	               liveness checks can assert more than reachability
//	/debug/spans   recent spans (?trace=ID for one trace, ?n=N to limit
//	               the text listing, ?format=json&since=UNIXNANO to
//	               export records for trace assembly, ?limit=N to cap
//	               the response)
//	/debug/events  recent forensic events (?since=SEQ for the events
//	               after a sequence number, ?format=json for JSON Lines,
//	               ?limit=N to cap the response)
//	/debug/pprof/  the standard pprof handlers
//
// The two endpoints' cursors differ deliberately and are easy to mix
// up: /debug/spans?since= takes a START TIME in unix NANOSECONDS and is
// inclusive (records with Start >= since), because spans are keyed by
// wall-clock start for cross-process assembly; /debug/events?since=
// takes a SEQUENCE NUMBER and is exclusive (events with Seq > since),
// because events carry a log-assigned monotonic Seq. A poller advances
// the span cursor to the last record's start (tolerating the one-
// instant overlap — the assembler dedups) and the event cursor to the
// last event's Seq. Both endpoints accept ?limit=N (N >= 1) to bound
// the response for pollers: the OLDEST N matching records are returned,
// so a capped poll still advances the cursor without skipping.
//
// Malformed query parameters (an unparsable since or limit, an unknown
// format) are rejected with 400 rather than silently treated as
// defaults, so a collector with a typo finds out instead of silently
// draining from zero.
func NewDebugMux(opts DebugOptions) *http.ServeMux {
	reg := opts.Registry
	if reg == nil {
		reg = Default
	}
	spans := opts.Spans
	if spans == nil {
		spans = DefaultSpans
	}
	events := opts.Events
	if events == nil {
		events = DefaultEvents
	}
	healthy := opts.Healthy
	if healthy == nil {
		healthy = func() bool { return true }
	}

	// parseLimit reads the optional limit query param (0 = unlimited).
	// Malformed or non-positive values are rejected with 400; the
	// bool result reports whether the caller should return.
	parseLimit := func(w http.ResponseWriter, r *http.Request) (int, bool) {
		s := r.URL.Query().Get("limit")
		if s == "" {
			return 0, true
		}
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			http.Error(w, "bad limit (want positive integer)", http.StatusBadRequest)
			return 0, false
		}
		return v, true
	}

	started := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := reg.Snapshot()
		switch r.URL.Query().Get("format") {
		case "json":
			w.Header().Set("Content-Type", "application/json")
			_ = snap.WriteJSON(w)
		case "prom":
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = snap.WritePrometheus(w)
		default:
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = snap.WriteText(w)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if !healthy() {
			http.Error(w, "unhealthy", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
		fmt.Fprintf(w, "uptime %s\n", time.Since(started).Round(time.Millisecond))
		fmt.Fprintf(w, "metrics %d\n", reg.NumMetrics())
		if bi, ok := debug.ReadBuildInfo(); ok {
			fmt.Fprintf(w, "go %s\n", bi.GoVersion)
			fmt.Fprintf(w, "module %s\n", bi.Main.Path)
			for _, s := range bi.Settings {
				switch s.Key {
				case "vcs.revision", "vcs.time", "vcs.modified":
					fmt.Fprintf(w, "%s %s\n", s.Key, s.Value)
				}
			}
		}
	})
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		format := q.Get("format")
		switch format {
		case "", "text", "json":
		default:
			http.Error(w, "bad format (want json or text)", http.StatusBadRequest)
			return
		}
		var since time.Time
		if s := q.Get("since"); s != "" {
			ns, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				http.Error(w, "bad since (want unix nanoseconds)", http.StatusBadRequest)
				return
			}
			since = time.Unix(0, ns)
		}
		limit, ok := parseLimit(w, r)
		if !ok {
			return
		}
		if format == "json" {
			w.Header().Set("Content-Type", "application/json")
			recs := spans.Since(since)
			if limit > 0 && len(recs) > limit {
				// Oldest-first truncation: the poller's next since
				// picks up exactly where the capped page ended.
				recs = recs[:limit]
			}
			if recs == nil {
				recs = []SpanRecord{}
			}
			_ = json.NewEncoder(w).Encode(recs)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if t := q.Get("trace"); t != "" {
			id, err := strconv.ParseUint(t, 10, 64)
			if err != nil {
				http.Error(w, "bad trace id", http.StatusBadRequest)
				return
			}
			_ = WriteTrace(w, spans.Trace(id))
			return
		}
		if q.Get("last") != "" {
			_ = WriteTrace(w, spans.Trace(spans.LastTrace()))
			return
		}
		n := 100
		if s := q.Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				n = v
			}
		}
		if limit > 0 {
			n = limit
		}
		for _, rec := range spans.Recent(n) {
			fmt.Fprintf(w, "trace=%d span=%d parent=%d [%s] %-24s %s\n",
				rec.Trace, rec.Span, rec.Parent, rec.Tier, rec.Name, fmtDur(rec.Dur))
		}
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		format := q.Get("format")
		switch format {
		case "", "text", "json":
		default:
			http.Error(w, "bad format (want json or text)", http.StatusBadRequest)
			return
		}
		var since uint64
		if s := q.Get("since"); s != "" {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, "bad since (want event sequence number)", http.StatusBadRequest)
				return
			}
			since = v
		}
		limit, ok := parseLimit(w, r)
		if !ok {
			return
		}
		evs := events.Since(since)
		if limit > 0 && len(evs) > limit {
			// Oldest-first truncation; the poller advances since to the
			// last returned event's seq and drains the rest next poll.
			evs = evs[:limit]
		}
		if format == "json" {
			w.Header().Set("Content-Type", "application/x-ndjson")
			_ = WriteEventsJSONL(w, evs)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "events seq=%d dropped=%d\n", events.Seq(), events.Dropped())
		_ = WriteEventsText(w, evs)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugServer is a running debug listener.
type DebugServer struct {
	srv *http.Server
	ln  net.Listener
}

// StartDebug serves the debug mux on addr (e.g. "127.0.0.1:6060" or
// ":0") in the background. The returned server reports its bound Addr
// and must be Closed by the caller.
func StartDebug(addr string, opts DebugOptions) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen %s: %w", addr, err)
	}
	d := &DebugServer{
		srv: &http.Server{Handler: NewDebugMux(opts), ReadHeaderTimeout: 5 * time.Second},
		ln:  ln,
	}
	go func() { _ = d.srv.Serve(ln) }()
	return d, nil
}

// Addr returns the bound listen address.
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the listener and closes open debug connections.
func (d *DebugServer) Close() error { return d.srv.Close() }

package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// DebugOptions configures a debug listener. The zero value serves the
// Default registry and span log and always reports healthy.
type DebugOptions struct {
	// Registry served by /metrics (Default when nil).
	Registry *Registry
	// Spans served by /debug/spans (DefaultSpans when nil).
	Spans *SpanLog
	// Healthy decides /healthz (always healthy when nil).
	Healthy func() bool
}

// NewDebugMux builds the debug HTTP handler:
//
//	/metrics       text snapshot of the registry (?format=json for JSON)
//	/healthz       200 "ok" while Healthy() (503 otherwise)
//	/debug/spans   recent spans (?trace=ID for one trace, ?n=N to limit)
//	/debug/pprof/  the standard pprof handlers
func NewDebugMux(opts DebugOptions) *http.ServeMux {
	reg := opts.Registry
	if reg == nil {
		reg = Default
	}
	spans := opts.Spans
	if spans == nil {
		spans = DefaultSpans
	}
	healthy := opts.Healthy
	if healthy == nil {
		healthy = func() bool { return true }
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := reg.Snapshot()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = snap.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = snap.WriteText(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if !healthy() {
			http.Error(w, "unhealthy", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		q := r.URL.Query()
		if t := q.Get("trace"); t != "" {
			id, err := strconv.ParseUint(t, 10, 64)
			if err != nil {
				http.Error(w, "bad trace id", http.StatusBadRequest)
				return
			}
			_ = WriteTrace(w, spans.Trace(id))
			return
		}
		if q.Get("last") != "" {
			_ = WriteTrace(w, spans.Trace(spans.LastTrace()))
			return
		}
		n := 100
		if s := q.Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				n = v
			}
		}
		for _, rec := range spans.Recent(n) {
			fmt.Fprintf(w, "trace=%d span=%d parent=%d %-24s %s\n",
				rec.Trace, rec.Span, rec.Parent, rec.Name, fmtDur(rec.Dur))
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugServer is a running debug listener.
type DebugServer struct {
	srv *http.Server
	ln  net.Listener
}

// StartDebug serves the debug mux on addr (e.g. "127.0.0.1:6060" or
// ":0") in the background. The returned server reports its bound Addr
// and must be Closed by the caller.
func StartDebug(addr string, opts DebugOptions) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen %s: %w", addr, err)
	}
	d := &DebugServer{
		srv: &http.Server{Handler: NewDebugMux(opts), ReadHeaderTimeout: 5 * time.Second},
		ln:  ln,
	}
	go func() { _ = d.srv.Serve(ln) }()
	return d, nil
}

// Addr returns the bound listen address.
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the listener and closes open debug connections.
func (d *DebugServer) Close() error { return d.srv.Close() }

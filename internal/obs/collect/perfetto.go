package collect

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// The Chrome trace-event format (the JSON dialect ui.perfetto.dev and
// chrome://tracing both load): a process ("pid") per tier, a thread
// ("tid") per trace within the tier, and one complete ("ph":"X") event
// per span. Metadata events name the lanes.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type traceEventFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTraceEvents renders assembled traces as Chrome trace-event JSON.
// Timestamps are microseconds relative to the earliest span across all
// traces. Each tier becomes a "process" lane; each trace gets one
// thread per tier it touches, so a cross-tier interaction reads as a
// waterfall stepping down the tier lanes.
func WriteTraceEvents(w io.Writer, traces []*Trace) error {
	// Stable pid per tier, in the architectural top-down order so
	// repeated runs diff cleanly; unknown tiers follow alphabetically.
	present := make(map[string]bool)
	for _, t := range traces {
		for _, tier := range t.Tiers() {
			present[tier] = true
		}
	}
	var tiers []string
	for _, tier := range []string{"client", "edge", "backend", "db", "proxy", "proc"} {
		if present[tier] {
			tiers = append(tiers, tier)
			delete(present, tier)
		}
	}
	var extra []string
	for tier := range present {
		extra = append(extra, tier)
	}
	sort.Strings(extra)
	tiers = append(tiers, extra...)
	tierPid := make(map[string]int, len(tiers))
	for i, tier := range tiers {
		tierPid[tier] = i + 1
	}

	var t0 time.Time
	for _, t := range traces {
		if s := t.Start(); t0.IsZero() || (!s.IsZero() && s.Before(t0)) {
			t0 = s
		}
	}

	file := traceEventFile{DisplayTimeUnit: "ms", TraceEvents: []traceEvent{}}
	for tier, pid := range tierPid {
		file.TraceEvents = append(file.TraceEvents, traceEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": tier},
		})
	}
	// Deterministic metadata order (map iteration above is random).
	sort.Slice(file.TraceEvents, func(i, j int) bool {
		return file.TraceEvents[i].Pid < file.TraceEvents[j].Pid
	})

	for i, t := range traces {
		tid := i + 1
		for _, s := range t.Spans {
			ev := traceEvent{
				Name: s.Name,
				Cat:  s.Tier,
				Ph:   "X",
				Ts:   float64(s.Adjusted.Sub(t0)) / float64(time.Microsecond),
				Dur:  float64(s.Dur) / float64(time.Microsecond),
				Pid:  tierPid[s.Tier],
				Tid:  tid,
				Args: map[string]any{
					"trace": s.Trace,
					"span":  s.Span,
				},
			}
			if s.Parent != 0 {
				ev.Args["parent"] = s.Parent
			}
			if !t.Complete {
				ev.Args["incomplete_trace"] = true
			}
			file.TraceEvents = append(file.TraceEvents, ev)
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(file)
}

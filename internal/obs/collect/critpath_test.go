package collect

import (
	"bytes"
	"sort"
	"strings"
	"testing"
	"time"

	"edgeejb/internal/obs"
)

// buildTrace assembles hand-written records through the real Assemble
// path so the golden tests exercise the same trees production does.
func buildTrace(t *testing.T, recs []obs.SpanRecord) *Trace {
	t.Helper()
	traces := Assemble(Batch{Source: "proc", Spans: recs})
	if len(traces) != 1 {
		t.Fatalf("Assemble built %d traces, want 1", len(traces))
	}
	return traces[0]
}

// pathSelf flattens CriticalPath steps into name -> total self time
// (summing if a name appears on the path more than once).
func pathSelf(steps []PathStep) map[string]time.Duration {
	out := make(map[string]time.Duration)
	for _, s := range steps {
		out[s.Span.Name] = out[s.Span.Name] + s.Self
	}
	return out
}

func sumSelf(steps []PathStep) time.Duration {
	var sum time.Duration
	for _, s := range steps {
		sum += s.Self
	}
	return sum
}

// TestCriticalPathSerialChain pins the simplest golden case: a
// root -> edge -> db chain where each level is charged exactly the
// time its children leave uncovered.
func TestCriticalPathSerialChain(t *testing.T) {
	t0 := time.Unix(0, 0)
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	tr := buildTrace(t, []obs.SpanRecord{
		{Trace: 1, Span: 1, Name: "client.interaction", Tier: "client", Start: t0, Dur: ms(10)},
		{Trace: 1, Span: 2, Parent: 1, Name: "edge.request", Tier: "edge", Start: t0.Add(ms(1)), Dur: ms(8)},
		{Trace: 1, Span: 3, Parent: 2, Name: "sqlstore.get", Tier: "db", Start: t0.Add(ms(3)), Dur: ms(4)},
	})
	steps := CriticalPath(tr)
	self := pathSelf(steps)
	want := map[string]time.Duration{
		"client.interaction": ms(2), // 1ms before edge + 1ms after
		"edge.request":       ms(4), // 2ms before db + 2ms after
		"sqlstore.get":       ms(4),
	}
	for name, d := range want {
		if self[name] != d {
			t.Errorf("self[%s] = %v, want %v", name, self[name], d)
		}
	}
	if got := sumSelf(steps); got != ms(10) {
		t.Fatalf("path sum = %v, want root duration 10ms", got)
	}
}

// TestCriticalPathParallelFanOut pins the defining property of a
// blocking path: when children overlap, only the slowest sibling is on
// the path, and a fully-covered fast sibling contributes nothing.
func TestCriticalPathParallelFanOut(t *testing.T) {
	t0 := time.Unix(0, 0)
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	tr := buildTrace(t, []obs.SpanRecord{
		{Trace: 2, Span: 1, Name: "edge.request", Tier: "edge", Start: t0, Dur: ms(12)},
		// Two children started together at +1ms: fast finishes at +4ms,
		// slow at +11ms. Fast is entirely inside slow's window.
		{Trace: 2, Span: 2, Parent: 1, Name: "backend.fast", Tier: "backend", Start: t0.Add(ms(1)), Dur: ms(3)},
		{Trace: 2, Span: 3, Parent: 1, Name: "backend.slow", Tier: "backend", Start: t0.Add(ms(1)), Dur: ms(10)},
	})
	steps := CriticalPath(tr)
	self := pathSelf(steps)
	if _, on := self["backend.fast"]; on {
		t.Fatalf("backend.fast is on the critical path (self=%v), want off", self["backend.fast"])
	}
	if self["backend.slow"] != ms(10) {
		t.Errorf("backend.slow self = %v, want 10ms", self["backend.slow"])
	}
	if self["edge.request"] != ms(2) {
		t.Errorf("edge.request self = %v, want 2ms (1ms each side)", self["edge.request"])
	}
	if got := sumSelf(steps); got != ms(12) {
		t.Fatalf("path sum = %v, want root duration 12ms", got)
	}

	// Staggered overlap: a child that starts first but ends inside a
	// later sibling only keeps its uncovered prefix.
	tr2 := buildTrace(t, []obs.SpanRecord{
		{Trace: 3, Span: 1, Name: "edge.request", Tier: "edge", Start: t0, Dur: ms(10)},
		{Trace: 3, Span: 2, Parent: 1, Name: "shard.a", Tier: "edge", Start: t0.Add(ms(1)), Dur: ms(5)},
		{Trace: 3, Span: 3, Parent: 1, Name: "shard.b", Tier: "edge", Start: t0.Add(ms(3)), Dur: ms(6)},
	})
	steps2 := CriticalPath(tr2)
	self2 := pathSelf(steps2)
	// shard.b owns [3,9], shard.a keeps only its uncovered [1,3) prefix.
	if self2["shard.b"] != ms(6) {
		t.Errorf("shard.b self = %v, want 6ms", self2["shard.b"])
	}
	if self2["shard.a"] != ms(2) {
		t.Errorf("shard.a self = %v, want 2ms (clipped by shard.b)", self2["shard.a"])
	}
	if self2["edge.request"] != ms(2) {
		t.Errorf("edge.request self = %v, want 2ms", self2["edge.request"])
	}
	if got := sumSelf(steps2); got != ms(10) {
		t.Fatalf("path sum = %v, want root duration 10ms", got)
	}
}

// TestCriticalPathSharded2PC is the sharded-commit golden case: a
// coordinator fans prepare out to two laned participants in parallel,
// then commits. The slow participant's remote subtree inherits its
// lane; the fast participant stays off the path.
func TestCriticalPathSharded2PC(t *testing.T) {
	t0 := time.Unix(0, 0)
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	tr := buildTrace(t, []obs.SpanRecord{
		{Trace: 4, Span: 1, Name: "shard.2pc", Tier: "edge", Start: t0, Dur: ms(20)},
		// Prepare phase, parallel: shard0 takes 4ms, shard1 takes 10ms.
		{Trace: 4, Span: 2, Parent: 1, Name: "shard.prepare", Tier: "edge", Lane: "shard0", Start: t0.Add(ms(1)), Dur: ms(4)},
		{Trace: 4, Span: 3, Parent: 1, Name: "shard.prepare", Tier: "edge", Lane: "shard1", Start: t0.Add(ms(1)), Dur: ms(10)},
		// Each prepare's remote backend work: unlaned records that must
		// inherit the participant's lane through the walk.
		{Trace: 4, Span: 4, Parent: 2, Name: "backend.prepare", Tier: "backend", Start: t0.Add(ms(2)), Dur: ms(2)},
		{Trace: 4, Span: 5, Parent: 3, Name: "backend.prepare", Tier: "backend", Start: t0.Add(ms(2)), Dur: ms(8)},
		// Commit phase, serial after prepares: shard1 again slower.
		{Trace: 4, Span: 6, Parent: 1, Name: "shard.commit_prepared", Tier: "edge", Lane: "shard0", Start: t0.Add(ms(12)), Dur: ms(3)},
		{Trace: 4, Span: 7, Parent: 1, Name: "shard.commit_prepared", Tier: "edge", Lane: "shard1", Start: t0.Add(ms(12)), Dur: ms(7)},
	})
	steps := CriticalPath(tr)

	byLane := make(map[string]time.Duration)
	for _, s := range steps {
		byLane[s.Lane] += s.Self
	}
	// shard0's prepare [1,5] is inside shard1's [1,11]; its commit [12,15]
	// inside shard1's [12,19]: shard0 must contribute nothing.
	if byLane["shard0"] != 0 {
		t.Errorf("shard0 lane on path for %v, want 0", byLane["shard0"])
	}
	// shard1 owns prepare [1,11] and commit [12,19]: 17ms.
	if byLane["shard1"] != ms(17) {
		t.Errorf("shard1 lane = %v, want 17ms", byLane["shard1"])
	}
	// Coordinator keeps the gaps: [0,1) + [11,12) + [19,20) = 3ms.
	if byLane[""] != ms(3) {
		t.Errorf("coordinator (no lane) = %v, want 3ms", byLane[""])
	}

	// The remote backend.prepare under shard1's prepare inherited the
	// lane even though its own record is unlaned.
	var sawInherited bool
	for _, s := range steps {
		if s.Span.Name == "backend.prepare" {
			if s.Lane != "shard1" {
				t.Errorf("backend.prepare lane = %q, want inherited shard1", s.Lane)
			}
			if s.Self != ms(8) {
				t.Errorf("backend.prepare self = %v, want 8ms", s.Self)
			}
			sawInherited = true
		}
	}
	if !sawInherited {
		t.Error("slow participant's backend.prepare missing from the path")
	}
	if got := sumSelf(steps); got != ms(20) {
		t.Fatalf("path sum = %v, want root duration 20ms", got)
	}

	// The aggregated table keys the lanes apart.
	a := Attribute([]*Trace{tr})
	var lanes []string
	for _, r := range a.Rows {
		if r.Key.Lane != "" && !contains(lanes, r.Key.Lane) {
			lanes = append(lanes, r.Key.Lane)
		}
	}
	sort.Strings(lanes)
	if len(lanes) != 1 || lanes[0] != "shard1" {
		t.Errorf("attribution lanes = %v, want [shard1] only", lanes)
	}
	var buf bytes.Buffer
	if err := a.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if out := buf.String(); !strings.Contains(out, "lane") || !strings.Contains(out, "shard1") {
		t.Errorf("table missing lane column:\n%s", out)
	}
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// TestCriticalPathProperty is the conservation check: over randomized
// trees (children possibly overlapping, possibly outlasting their
// parent, nested arbitrarily), per-trace path self-times sum exactly to
// the root duration.
func TestCriticalPathProperty(t *testing.T) {
	seed := uint64(987654321)
	next := func(n uint64) uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return (seed >> 33) % n
	}
	t0 := time.Unix(0, 0)
	for iter := 0; iter < 200; iter++ {
		var recs []obs.SpanRecord
		id := uint64(1)
		var gen func(parent uint64, start time.Time, dur time.Duration, depth int)
		gen = func(parent uint64, start time.Time, dur time.Duration, depth int) {
			span := id
			id++
			recs = append(recs, obs.SpanRecord{
				Trace: 1, Span: span, Parent: parent,
				Name: "n", Tier: "t",
				Start: start, Dur: dur,
			})
			if depth >= 4 || dur < 4*time.Microsecond {
				return
			}
			kids := next(4)
			for k := uint64(0); k < kids; k++ {
				// Child windows chosen freely inside (and occasionally
				// past) the parent: starts anywhere in the parent, length
				// up to 125% of the remaining window.
				off := time.Duration(next(uint64(dur))) * 1
				maxLen := dur - off + dur/4
				cdur := time.Duration(1 + next(uint64(maxLen)))
				gen(span, start.Add(off), cdur, depth+1)
			}
		}
		rootDur := time.Duration(1000+next(100000)) * time.Microsecond
		gen(0, t0, rootDur, 0)
		tr := buildTrace(t, recs)
		steps := CriticalPath(tr)
		if got := sumSelf(steps); got != rootDur {
			t.Fatalf("iter %d: path sum %v != root duration %v (%d spans)",
				iter, got, rootDur, len(recs))
		}
		for _, s := range steps {
			if s.Self < 0 {
				t.Fatalf("iter %d: negative self time %v for span %d", iter, s.Self, s.Span.Span)
			}
		}
	}
}

// TestSelfTimes pins the non-path self-time computation: children's
// windows union out of the parent, overlap counted once.
func TestSelfTimes(t *testing.T) {
	t0 := time.Unix(0, 0)
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	tr := buildTrace(t, []obs.SpanRecord{
		{Trace: 9, Span: 1, Name: "root", Tier: "edge", Start: t0, Dur: ms(10)},
		{Trace: 9, Span: 2, Parent: 1, Name: "a", Tier: "edge", Start: t0.Add(ms(1)), Dur: ms(4)}, // [1,5]
		{Trace: 9, Span: 3, Parent: 1, Name: "b", Tier: "edge", Start: t0.Add(ms(3)), Dur: ms(4)}, // [3,7] overlaps a
	})
	st := SelfTimes(tr)
	root := tr.Root()
	// Children cover [1,7] = 6ms of the 10ms root: self = 4ms.
	if st[root] != ms(4) {
		t.Fatalf("root self = %v, want 4ms", st[root])
	}
}

// TestAttributeTails checks the tail grouping: a bucket that only costs
// time in slow traces shows up in the >=p95 column, not just overall.
func TestAttributeTails(t *testing.T) {
	t0 := time.Unix(0, 0)
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	var traces []*Trace
	// 99 fast traces: 2ms, all in edge.request.
	for i := 0; i < 99; i++ {
		traces = append(traces, buildTrace(t, []obs.SpanRecord{
			{Trace: uint64(100 + i), Span: 1, Name: "edge.request", Tier: "edge", Start: t0, Dur: ms(2)},
		}))
	}
	// 1 slow trace: 50ms, dominated by lockmgr.wait.
	traces = append(traces, buildTrace(t, []obs.SpanRecord{
		{Trace: 999, Span: 1, Name: "edge.request", Tier: "edge", Start: t0, Dur: ms(50)},
		{Trace: 999, Span: 2, Parent: 1, Name: "lockmgr.wait", Tier: "db", Start: t0.Add(ms(1)), Dur: ms(48)},
	}))
	a := Attribute(traces)
	if a.Traces != 100 {
		t.Fatalf("Traces = %d, want 100", a.Traces)
	}
	if a.N99 != 1 {
		t.Fatalf("N99 = %d, want 1 (only the slow trace)", a.N99)
	}
	var lock *AttrRow
	for i := range a.Rows {
		if a.Rows[i].Key.Name == "lockmgr.wait" {
			lock = &a.Rows[i]
		}
	}
	if lock == nil {
		t.Fatal("lockmgr.wait missing from attribution")
	}
	if lock.TotalP99 != ms(48) {
		t.Errorf("lockmgr.wait >=p99 total = %v, want 48ms", lock.TotalP99)
	}
	// Per-trace means: 0.48ms across all traces, 48ms in the p99 tail.
	if got := msPerTrace(lock.Total, a.Traces); got != 0.48 {
		t.Errorf("ms/trace overall = %v, want 0.48", got)
	}
	if got := msPerTrace(lock.TotalP99, a.N99); got != 48 {
		t.Errorf("ms/trace p99 = %v, want 48", got)
	}

	// CSV artifact has the documented header and one row per bucket.
	var buf bytes.Buffer
	if err := WriteCriticalPathCSV(&buf, a); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if want := 1 + len(a.Rows); len(lines) != want {
		t.Fatalf("csv has %d lines, want %d", len(lines), want)
	}
	if !strings.HasPrefix(lines[0], "lane,tier,span,steps,total_ms,ms_per_trace") {
		t.Fatalf("csv header = %q", lines[0])
	}
}

// TestAttributeEmpty keeps the degenerate paths total-friendly: no
// traces, and a rootless trace, neither panics.
func TestAttributeEmpty(t *testing.T) {
	a := Attribute(nil)
	if a.Traces != 0 || len(a.Rows) != 0 {
		t.Fatalf("empty attribution = %+v", a)
	}
	var buf bytes.Buffer
	if err := a.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no rooted traces") {
		t.Fatalf("empty table = %q", buf.String())
	}
	if err := WriteCriticalPathCSV(&buf, a); err != nil {
		t.Fatal(err)
	}
	if steps := CriticalPath(&Trace{}); steps != nil {
		t.Fatalf("rootless CriticalPath = %v, want nil", steps)
	}
}

package collect

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// Critical-path attribution answers "where did the latency actually
// go": for each assembled trace it walks the blocking path from the
// root span's end backwards — at every instant exactly one span is
// charged, the deepest one covering that instant whose subtree ends
// latest — and attributes each slice to the span holding it. Gaps a
// parent spends with no child in flight (queueing, local compute,
// network time the wire span does not subdivide) are charged to the
// parent. Parallel children overlap; only the slowest sibling at each
// moment is on the path, so speeding up an off-path span provably
// cannot move the root latency. Per-trace attributions sum exactly to
// the root span's duration (pinned by TestCriticalPathProperty), which
// makes the aggregated tables conservation-checked rather than vibes.

// PathStep is one span's total contribution to a single trace's
// blocking path.
type PathStep struct {
	// Span is the contributing span.
	Span *Span
	// Lane is the span's effective lane: its own, or the nearest laned
	// ancestor's (the shard router lanes coordinator-side spans, and the
	// participant's whole remote subtree inherits here).
	Lane string
	// Self is the blocking-path time charged to this span: the slices
	// of the root's window where this span was the deepest cover.
	Self time.Duration
}

// CriticalPath attributes one trace's root window across its blocking
// path and returns one step per on-path span (off-path spans do not
// appear). Traces without a root return nil. Incomplete traces are
// attributed from their earliest root only — the gap is visible as that
// root's window, not silently stitched.
func CriticalPath(t *Trace) []PathStep {
	root := t.Root()
	if root == nil {
		return nil
	}
	var steps []PathStep
	attribute(root, root.Adjusted, root.End(), "", &steps)
	return steps
}

// attribute charges the window [lo, hi] of span s to s and its blocking
// descendants. The cursor walks backward from hi: the child whose end
// is latest takes the tail of the window (clipped to the cursor), the
// gap between that child's end and the cursor is charged to s, and the
// cursor jumps to the child's start. Children fully covered by a
// later-ending sibling are off the path and skipped.
func attribute(s *Span, lo, hi time.Time, lane string, steps *[]PathStep) {
	if s.SpanRecord.Lane != "" {
		lane = s.SpanRecord.Lane
	}
	if a := s.Adjusted; a.After(lo) {
		lo = a
	}
	if !hi.After(lo) {
		return
	}
	children := append([]*Span(nil), s.Children...)
	sort.SliceStable(children, func(i, j int) bool {
		return children[i].End().After(children[j].End())
	})
	cur := hi
	var self time.Duration
	for _, c := range children {
		if !cur.After(lo) {
			break
		}
		cEnd, cStart := c.End(), c.Adjusted
		if cEnd.After(cur) {
			cEnd = cur
		}
		if cStart.Before(lo) {
			cStart = lo
		}
		if !cEnd.After(cStart) {
			continue // off the path: covered by a later-ending sibling
		}
		self += cur.Sub(cEnd)
		attribute(c, cStart, cEnd, lane, steps)
		cur = cStart
	}
	if cur.After(lo) {
		self += cur.Sub(lo)
	}
	*steps = append(*steps, PathStep{Span: s, Lane: lane, Self: self})
}

// SelfTimes computes every span's self time — its duration minus the
// union of its children's windows (clipped to the span) — keyed by
// span. Unlike CriticalPath this charges overlapping parallel children
// each in full, so the per-trace sum can exceed the root duration; it
// answers "how much work ran inside this span itself", not "what was
// blocking".
func SelfTimes(t *Trace) map[*Span]time.Duration {
	out := make(map[*Span]time.Duration, len(t.Spans))
	for _, s := range t.Spans {
		out[s] = selfTime(s)
	}
	return out
}

func selfTime(s *Span) time.Duration {
	type window struct{ lo, hi time.Time }
	ws := make([]window, 0, len(s.Children))
	lo, hi := s.Adjusted, s.End()
	for _, c := range s.Children {
		clo, chi := c.Adjusted, c.End()
		if clo.Before(lo) {
			clo = lo
		}
		if chi.After(hi) {
			chi = hi
		}
		if chi.After(clo) {
			ws = append(ws, window{clo, chi})
		}
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i].lo.Before(ws[j].lo) })
	covered := time.Duration(0)
	cur := lo
	for _, w := range ws {
		if w.hi.Before(cur) {
			continue
		}
		if w.lo.After(cur) {
			cur = w.lo
		}
		covered += w.hi.Sub(cur)
		cur = w.hi
	}
	return hi.Sub(lo) - covered
}

// PathKey identifies one attribution bucket: a lane (empty outside
// sharded runs), the tier the span ran in, and the span name.
type PathKey struct {
	Lane string
	Tier string
	Name string
}

// AttrRow is one (lane, tier, span) bucket of an aggregated
// attribution. The four totals cover the whole run and the duration
// tails: traces at or above the run's p50, p95, and p99 root duration.
// Dividing by the matching trace counts in Attribution yields the
// "ms per trace" columns of the table.
type AttrRow struct {
	Key   PathKey
	Steps uint64
	// Total is blocking-path time charged to this bucket over all
	// attributed traces; TotalP50/P95/P99 restrict to the tail groups.
	Total    time.Duration
	TotalP50 time.Duration
	TotalP95 time.Duration
	TotalP99 time.Duration
}

// Attribution aggregates critical paths across a run's traces.
type Attribution struct {
	// Traces is how many rooted traces were attributed; Skipped counts
	// traces dropped for having no root span.
	Traces  int
	Skipped int
	// N50/N95/N99 are the tail-group sizes: traces whose root duration
	// is at or above the run's p50/p95/p99 root duration.
	N50, N95, N99 int
	// Q50/Q95/Q99 are those root-duration thresholds.
	Q50, Q95, Q99 time.Duration
	// TotalAttributed is the sum of all root durations — the
	// conservation total every row's Total divides into.
	TotalAttributed time.Duration
	// Rows is the aggregated table, sorted by Total descending.
	Rows []AttrRow
}

// Attribute computes the blocking-path attribution of every rooted
// trace and aggregates it per (lane, tier, span name), with separate
// totals for the p50/p95/p99 root-duration tails — the "where did the
// p99 go" table.
func Attribute(traces []*Trace) *Attribution {
	a := &Attribution{}
	durs := make([]time.Duration, 0, len(traces))
	for _, t := range traces {
		if t.Root() == nil {
			a.Skipped++
			continue
		}
		durs = append(durs, t.Root().Dur)
	}
	a.Traces = len(durs)
	if a.Traces == 0 {
		return a
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	a.Q50 = quantileDur(sorted, 0.50)
	a.Q95 = quantileDur(sorted, 0.95)
	a.Q99 = quantileDur(sorted, 0.99)

	rows := make(map[PathKey]*AttrRow)
	for _, t := range traces {
		root := t.Root()
		if root == nil {
			continue
		}
		d := root.Dur
		in50, in95, in99 := d >= a.Q50, d >= a.Q95, d >= a.Q99
		if in50 {
			a.N50++
		}
		if in95 {
			a.N95++
		}
		if in99 {
			a.N99++
		}
		a.TotalAttributed += d
		for _, step := range CriticalPath(t) {
			k := PathKey{Lane: step.Lane, Tier: step.Span.Tier, Name: step.Span.Name}
			row := rows[k]
			if row == nil {
				row = &AttrRow{Key: k}
				rows[k] = row
			}
			row.Steps++
			row.Total += step.Self
			if in50 {
				row.TotalP50 += step.Self
			}
			if in95 {
				row.TotalP95 += step.Self
			}
			if in99 {
				row.TotalP99 += step.Self
			}
		}
	}
	a.Rows = make([]AttrRow, 0, len(rows))
	for _, r := range rows {
		a.Rows = append(a.Rows, *r)
	}
	sort.Slice(a.Rows, func(i, j int) bool {
		if a.Rows[i].Total != a.Rows[j].Total {
			return a.Rows[i].Total > a.Rows[j].Total
		}
		return a.Rows[i].Key.Name < a.Rows[j].Key.Name
	})
	return a
}

// quantileDur returns the p-th tail threshold of a sorted duration
// slice: the smallest value of the top ceil((1-p)*n) slowest entries,
// so "d >= threshold" selects at least that top fraction (ties at the
// threshold enlarge the group rather than emptying it — with exactly
// 1% slow traces the p99 tail is the slow 1%, not everything).
func quantileDur(sorted []time.Duration, p float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	k := n - int(p*float64(n))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return sorted[n-k]
}

// msPerTrace converts an attributed total into mean milliseconds per
// trace of the given group size.
func msPerTrace(total time.Duration, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(total) / float64(n) / float64(time.Millisecond)
}

// WriteTable renders the attribution as the text table tradebench
// -metrics prints: mean blocking-path milliseconds per trace, over all
// traces and over the slow tails, plus each bucket's share of all
// attributed time.
func (a *Attribution) WriteTable(w io.Writer) error {
	if a.Traces == 0 {
		_, err := fmt.Fprintln(w, "Critical path: no rooted traces to attribute")
		return err
	}
	if _, err := fmt.Fprintf(w,
		"Critical path: blocking-path time by span (ms per trace; %d traces, %d skipped)\n"+
			"(tails: traces with root duration >= run p50 %.2fms / p95 %.2fms / p99 %.2fms)\n",
		a.Traces, a.Skipped,
		float64(a.Q50)/float64(time.Millisecond),
		float64(a.Q95)/float64(time.Millisecond),
		float64(a.Q99)/float64(time.Millisecond)); err != nil {
		return err
	}
	hasLane := false
	for _, r := range a.Rows {
		if r.Key.Lane != "" {
			hasLane = true
			break
		}
	}
	if hasLane {
		if _, err := fmt.Fprintf(w, "%-8s", "lane"); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%-8s %-26s %9s %9s %9s %9s %7s\n",
		"tier", "span", "all", ">=p50", ">=p95", ">=p99", "share"); err != nil {
		return err
	}
	for _, r := range a.Rows {
		if hasLane {
			if _, err := fmt.Fprintf(w, "%-8s", r.Key.Lane); err != nil {
				return err
			}
		}
		share := 0.0
		if a.TotalAttributed > 0 {
			share = 100 * float64(r.Total) / float64(a.TotalAttributed)
		}
		if _, err := fmt.Fprintf(w, "%-8s %-26s %9.3f %9.3f %9.3f %9.3f %6.1f%%\n",
			r.Key.Tier, r.Key.Name,
			msPerTrace(r.Total, a.Traces),
			msPerTrace(r.TotalP50, a.N50),
			msPerTrace(r.TotalP95, a.N95),
			msPerTrace(r.TotalP99, a.N99),
			share); err != nil {
			return err
		}
	}
	return nil
}

// WriteCriticalPathCSV exports the attribution in long format, one row
// per (lane, tier, span) bucket (schema documented in
// OBSERVABILITY.md). Headers are always written so the artifact is
// valid even when no traces assembled.
func WriteCriticalPathCSV(w io.Writer, a *Attribution) error {
	cw := csv.NewWriter(w)
	header := []string{
		"lane", "tier", "span", "steps",
		"total_ms", "ms_per_trace",
		"ms_per_trace_p50tail", "ms_per_trace_p95tail", "ms_per_trace_p99tail",
		"share",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range a.Rows {
		share := 0.0
		if a.TotalAttributed > 0 {
			share = float64(r.Total) / float64(a.TotalAttributed)
		}
		rec := []string{
			r.Key.Lane,
			r.Key.Tier,
			r.Key.Name,
			strconv.FormatUint(r.Steps, 10),
			strconv.FormatFloat(float64(r.Total)/float64(time.Millisecond), 'f', 4, 64),
			strconv.FormatFloat(msPerTrace(r.Total, a.Traces), 'f', 4, 64),
			strconv.FormatFloat(msPerTrace(r.TotalP50, a.N50), 'f', 4, 64),
			strconv.FormatFloat(msPerTrace(r.TotalP95, a.N95), 'f', 4, 64),
			strconv.FormatFloat(msPerTrace(r.TotalP99, a.N99), 'f', 4, 64),
			strconv.FormatFloat(share, 'f', 4, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

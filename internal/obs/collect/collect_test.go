package collect

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"edgeejb/internal/obs"
)

// rec builds a SpanRecord relative to a fixed base time.
func rec(trace, span, parent uint64, name string, startMs, durMs int) obs.SpanRecord {
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	return obs.SpanRecord{
		Trace:  trace,
		Span:   span,
		Parent: parent,
		Name:   name,
		Tier:   obs.TierOf(name),
		Start:  base.Add(time.Duration(startMs) * time.Millisecond),
		Dur:    time.Duration(durMs) * time.Millisecond,
	}
}

func TestAssembleOutOfOrder(t *testing.T) {
	// Children delivered before their parents, spread across two batches.
	traces := Assemble(
		Batch{Source: "proc", Spans: []obs.SpanRecord{
			rec(1, 30, 20, "backend.apply", 2, 4),
			rec(1, 10, 0, "client.interaction", 0, 10),
		}},
		Batch{Source: "proc", Spans: []obs.SpanRecord{
			rec(1, 20, 10, "edge.request", 1, 8),
		}},
	)
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if !tr.Complete {
		t.Fatalf("trace should be complete: %d roots, %d orphans", len(tr.Roots), tr.Orphans)
	}
	root := tr.Root()
	if root.Name != "client.interaction" {
		t.Fatalf("root = %q, want client.interaction", root.Name)
	}
	if len(root.Children) != 1 || root.Children[0].Name != "edge.request" {
		t.Fatalf("bad tree under root: %+v", root.Children)
	}
	if got := root.Children[0].Children[0].Name; got != "backend.apply" {
		t.Fatalf("grandchild = %q, want backend.apply", got)
	}
	if got := strings.Join(tr.Tiers(), ">"); got != "client>edge>backend" {
		t.Fatalf("tiers = %q", got)
	}
	if tr.Duration() != 10*time.Millisecond {
		t.Fatalf("duration = %v, want 10ms", tr.Duration())
	}
}

func TestAssembleMissingParent(t *testing.T) {
	traces := Assemble(Batch{Source: "proc", Spans: []obs.SpanRecord{
		rec(7, 1, 0, "client.interaction", 0, 10),
		// Parent span 99 was never exported (evicted from the ring).
		rec(7, 2, 99, "backend.apply", 3, 2),
	}})
	tr := traces[0]
	if tr.Complete {
		t.Fatal("trace with a missing parent must be incomplete")
	}
	if len(tr.Roots) != 2 || tr.Orphans != 1 {
		t.Fatalf("roots=%d orphans=%d, want 2 and 1", len(tr.Roots), tr.Orphans)
	}
}

func TestAssembleDedupAndSkipInvalid(t *testing.T) {
	r := rec(3, 5, 0, "client.interaction", 0, 1)
	traces := Assemble(
		Batch{Source: "a", Spans: []obs.SpanRecord{r, r}}, // duplicate within a batch
		Batch{Source: "b", Spans: []obs.SpanRecord{
			r,                       // duplicate across batches (poll overlap)
			rec(0, 9, 0, "x", 0, 1), // zero trace: untraced, skipped
			rec(3, 0, 0, "x", 0, 1), // zero span id: invalid, skipped
		}},
	)
	if len(traces) != 1 || len(traces[0].Spans) != 1 {
		t.Fatalf("dedup failed: %d traces, %d spans", len(traces), len(traces[0].Spans))
	}
	if traces[0].Spans[0].Source != "a" {
		t.Fatalf("first occurrence should win; got source %q", traces[0].Spans[0].Source)
	}
}

func TestAssembleCycleGuard(t *testing.T) {
	// Corrupt input: two spans each claiming the other as parent, with no
	// true root. The cycle guard must still surface them.
	traces := Assemble(Batch{Source: "proc", Spans: []obs.SpanRecord{
		rec(9, 1, 2, "edge.request", 0, 5),
		rec(9, 2, 1, "backend.apply", 1, 3),
	}})
	tr := traces[0]
	if len(tr.Spans) != 2 {
		t.Fatalf("cycle spans lost: %d", len(tr.Spans))
	}
	if tr.Complete {
		t.Fatal("cyclic trace must not report complete")
	}
	if len(tr.Roots) == 0 {
		t.Fatal("cycle guard promoted no roots")
	}
}

func TestAssembleSkewRepair(t *testing.T) {
	// Edge (source "edge") calls backend (source "backend") whose clock
	// runs 10 full seconds ahead. The parent span's window is the wire
	// round trip: start 0ms, 8ms long; the child claims to start at
	// +10002ms and run 4ms.
	parent := rec(4, 1, 0, "edge.request", 0, 8)
	child := rec(4, 2, 1, "backend.apply", 10002, 4)
	traces := Assemble(
		Batch{Source: "edge", Spans: []obs.SpanRecord{parent}},
		Batch{Source: "backend", Spans: []obs.SpanRecord{child}},
	)
	tr := traces[0]
	if !tr.Complete {
		t.Fatalf("expected complete trace, got %d roots", len(tr.Roots))
	}
	root := tr.Root()
	c := root.Children[0]
	// Centered inside the parent window: (8ms - 4ms)/2 = +2ms.
	want := root.Adjusted.Add(2 * time.Millisecond)
	if !c.Adjusted.Equal(want) {
		t.Fatalf("skew repair: child adjusted to %v, want %v (raw %v)", c.Adjusted, want, c.Start)
	}
	if c.End().After(root.End()) {
		t.Fatalf("repaired child must fit inside parent: child ends %v, parent ends %v", c.End(), root.End())
	}
	if tr.Duration() != 8*time.Millisecond {
		t.Fatalf("repaired trace duration = %v, want 8ms", tr.Duration())
	}
}

func TestAssembleSkewRepairChildOutlastsParent(t *testing.T) {
	// Pathological: the child claims a longer duration than the parent's
	// whole window. Its start pins to the parent's, never earlier.
	parent := rec(4, 1, 0, "edge.request", 0, 3)
	child := rec(4, 2, 1, "backend.apply", 500, 9)
	traces := Assemble(
		Batch{Source: "edge", Spans: []obs.SpanRecord{parent}},
		Batch{Source: "backend", Spans: []obs.SpanRecord{child}},
	)
	root := traces[0].Root()
	if c := root.Children[0]; !c.Adjusted.Equal(root.Adjusted) {
		t.Fatalf("child start %v, want pinned to parent %v", c.Adjusted, root.Adjusted)
	}
}

func TestAssembleSameSourceInheritsShift(t *testing.T) {
	// A skewed cross-source child's own (same-source) child must inherit
	// the repair shift, keeping intra-process offsets intact.
	traces := Assemble(
		Batch{Source: "edge", Spans: []obs.SpanRecord{
			rec(5, 1, 0, "edge.request", 0, 10),
		}},
		Batch{Source: "db", Spans: []obs.SpanRecord{
			rec(5, 2, 1, "sqlstore.apply", 5000, 6),
			rec(5, 3, 2, "lockmgr.wait", 5001, 2),
		}},
	)
	root := traces[0].Root()
	mid := root.Children[0]
	leaf := mid.Children[0]
	// The db-internal +1ms offset between spans 2 and 3 must survive.
	if got := leaf.Adjusted.Sub(mid.Adjusted); got != time.Millisecond {
		t.Fatalf("intra-source offset = %v, want 1ms", got)
	}
}

func TestSlowestAndMedians(t *testing.T) {
	var batch Batch
	batch.Source = "proc"
	for i := 0; i < 5; i++ {
		// Durations 1..5 ms, trace IDs 101..105.
		batch.Spans = append(batch.Spans,
			rec(uint64(101+i), uint64(1+i), 0, "client.interaction", i*20, i+1))
	}
	traces := Assemble(batch)
	slow := Slowest(traces, 2)
	if len(slow) != 2 || slow[0].ID != 105 || slow[1].ID != 104 {
		t.Fatalf("Slowest: got %v", []uint64{slow[0].ID, slow[1].ID})
	}
	med := Medians(traces, 1)
	if len(med) != 1 || med[0].ID != 103 {
		t.Fatalf("Medians: got trace %d, want 103", med[0].ID)
	}
	if got := Medians(traces, 10); len(got) != 5 {
		t.Fatalf("Medians with n > len: got %d, want all 5", len(got))
	}
	if got := Slowest(traces, 0); len(got) != 0 {
		t.Fatalf("Slowest(0): got %d", len(got))
	}
}

func TestWriteWaterfall(t *testing.T) {
	traces := Assemble(Batch{Source: "proc", Spans: []obs.SpanRecord{
		rec(42, 1, 0, "client.interaction", 0, 10),
		rec(42, 2, 1, "edge.request", 1, 8),
	}})
	var b bytes.Buffer
	if err := WriteWaterfall(&b, traces[0]); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"trace 42 — 2 spans, tiers client>edge, 10ms, complete",
		"client.interaction",
		"edge.request",
		"+1ms",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("waterfall missing %q:\n%s", want, out)
		}
	}
	// Child indented under parent.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[2], "  +") {
		t.Fatalf("bad indentation:\n%s", out)
	}
}

func TestWriteWaterfallIncomplete(t *testing.T) {
	traces := Assemble(Batch{Source: "proc", Spans: []obs.SpanRecord{
		rec(8, 2, 99, "backend.apply", 0, 2),
	}})
	var b bytes.Buffer
	if err := WriteWaterfall(&b, traces[0]); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "INCOMPLETE (1 roots, 1 orphans)") {
		t.Fatalf("missing incomplete marker:\n%s", b.String())
	}
}

func TestWriteTraceEvents(t *testing.T) {
	traces := Assemble(Batch{Source: "proc", Spans: []obs.SpanRecord{
		rec(42, 1, 0, "client.interaction", 0, 10),
		rec(42, 2, 1, "edge.request", 1, 8),
		rec(42, 3, 2, "backend.apply", 3, 4),
		rec(43, 4, 0, "client.interaction", 20, 5),
	}})
	var b bytes.Buffer
	if err := WriteTraceEvents(&b, traces); err != nil {
		t.Fatal(err)
	}

	// The output must be valid JSON in the trace-event dialect.
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b.Bytes(), &file); err != nil {
		t.Fatalf("trace-event JSON does not parse: %v", err)
	}
	if file.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", file.DisplayTimeUnit)
	}

	var meta, complete int
	pids := make(map[string]int) // tier lane name -> pid
	for _, ev := range file.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			pids[ev.Args["name"].(string)] = ev.Pid
		case "X":
			complete++
			if ev.Dur <= 0 {
				t.Fatalf("span %q has no duration", ev.Name)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if meta != 3 { // client, edge, backend lanes
		t.Fatalf("got %d metadata events, want 3", meta)
	}
	if complete != 4 {
		t.Fatalf("got %d span events, want 4", complete)
	}
	// Tier lanes keep the architectural top-down order.
	if !(pids["client"] < pids["edge"] && pids["edge"] < pids["backend"]) {
		t.Fatalf("tier lane order wrong: %v", pids)
	}
	// The edge.request event carries its parent linkage.
	for _, ev := range file.TraceEvents {
		if ev.Name == "edge.request" {
			if ev.Args["parent"] == nil {
				t.Fatalf("edge.request missing parent arg: %v", ev.Args)
			}
			if ev.Ts != 1000 { // 1ms after the global origin, in µs
				t.Fatalf("edge.request ts = %v µs, want 1000", ev.Ts)
			}
		}
	}
}

func TestCollectorFromLog(t *testing.T) {
	// Finished spans land in the process-wide DefaultSpans ring; swap in
	// a private one so this test sees only its own spans.
	log := obs.NewSpanLog(64)
	saved := obs.DefaultSpans
	obs.DefaultSpans = log
	defer func() { obs.DefaultSpans = saved }()

	ctx, _ := obs.WithNewTrace(context.Background())
	ctx, root := obs.StartSpan(ctx, "client.interaction")
	_, child := obs.StartSpan(ctx, "edge.request")
	child.End()
	root.End()

	c := NewCollector(FromLog("proc", log))
	if err := c.Poll(); err != nil {
		t.Fatal(err)
	}
	if c.SpanCount() != 2 {
		t.Fatalf("SpanCount = %d, want 2", c.SpanCount())
	}
	traces := c.Traces()
	if len(traces) != 1 || !traces[0].Complete {
		t.Fatalf("bad assembly from live log: %d traces", len(traces))
	}

	// A second poll re-fetches at most the high-water instant; the
	// assembly must not duplicate anything.
	if err := c.Poll(); err != nil {
		t.Fatal(err)
	}
	traces = c.Traces()
	if len(traces) != 1 || len(traces[0].Spans) != 2 {
		t.Fatalf("re-poll duplicated spans: %d traces, %d spans",
			len(traces), len(traces[0].Spans))
	}
}

func TestHTTPSource(t *testing.T) {
	recs := []obs.SpanRecord{
		rec(11, 1, 0, "client.interaction", 0, 4),
		rec(11, 2, 1, "edge.request", 1, 2),
	}
	var gotSince string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/spans" || r.URL.Query().Get("format") != "json" {
			http.NotFound(w, r)
			return
		}
		gotSince = r.URL.Query().Get("since")
		json.NewEncoder(w).Encode(recs)
	}))
	defer srv.Close()

	src := FromHTTP("edge", srv.URL)
	if src.Name() != "edge" {
		t.Fatalf("Name = %q", src.Name())
	}
	got, err := src.Fetch(time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Trace != 11 {
		t.Fatalf("fetched %d records: %+v", len(got), got)
	}
	if gotSince != "" {
		t.Fatalf("zero since must omit the parameter, sent %q", gotSince)
	}

	cut := recs[0].Start
	if _, err := src.Fetch(cut); err != nil {
		t.Fatal(err)
	}
	if gotSince == "" {
		t.Fatal("non-zero since not forwarded")
	}

	// End-to-end through the collector.
	c := NewCollector(FromHTTP("edge", srv.URL))
	if err := c.Poll(); err != nil {
		t.Fatal(err)
	}
	traces := c.Traces()
	if len(traces) != 1 || !traces[0].Complete {
		t.Fatalf("HTTP assembly: %d traces", len(traces))
	}
}

func TestHTTPSourceError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	if _, err := FromHTTP("edge", srv.URL).Fetch(time.Time{}); err == nil {
		t.Fatal("expected error on HTTP 500")
	}
}

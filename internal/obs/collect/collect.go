// Package collect turns the per-process span ring buffers of a running
// deployment into run-level trace artifacts. It gathers finished spans
// from every tier (in-process SpanLogs for harness runs, /debug/spans
// over HTTP for daemons), joins them by trace ID into trees, repairs
// cross-process clock skew, and renders the result as Chrome
// trace-event JSON (loadable in ui.perfetto.dev) or plain-text
// waterfalls — the per-hop latency decomposition the paper's Figures
// 6–8 argue from.
package collect

import (
	"fmt"
	"io"
	"sort"
	"time"

	"edgeejb/internal/obs"
)

// Span is one assembled span: the raw record, the source that exported
// it, and a skew-adjusted start time (see Assemble).
type Span struct {
	obs.SpanRecord
	// Source names the Source the record came from — in a distributed
	// deployment, one per daemon.
	Source string
	// Adjusted is the skew-corrected start time. Spans from the same
	// source as their parent keep their parent's correction; spans that
	// crossed a process boundary are re-centered inside their parent's
	// window (the parent's start and end are the wire layer's
	// request-send and response-receive timestamps, so centering
	// estimates the one-way offset the same way NTP does).
	Adjusted time.Time
	// Children are this span's assembled children, by adjusted start.
	Children []*Span
}

// End returns the span's adjusted end time.
func (s *Span) End() time.Time { return s.Adjusted.Add(s.Dur) }

// Trace is one interaction's assembled span tree.
type Trace struct {
	// ID is the trace ID every span shares.
	ID uint64
	// Spans holds every span of the trace, sorted by adjusted start.
	Spans []*Span
	// Roots are the spans with no resolvable parent. A well-formed
	// trace has exactly one; orphans (nonzero parent that was never
	// exported, e.g. evicted from a full ring) surface as extra roots.
	Roots []*Span
	// Orphans counts spans whose nonzero parent could not be resolved.
	Orphans int
	// Complete reports a single root and no orphans. Incomplete traces
	// are still rendered — with the gap visible — rather than dropped.
	Complete bool
}

// Root returns the earliest root span (nil for an empty trace).
func (t *Trace) Root() *Span {
	if len(t.Roots) == 0 {
		return nil
	}
	return t.Roots[0]
}

// Start returns the trace's earliest adjusted span start.
func (t *Trace) Start() time.Time {
	if len(t.Spans) == 0 {
		return time.Time{}
	}
	return t.Spans[0].Adjusted
}

// Duration returns the wall-clock window the trace covers, from its
// earliest adjusted start to its latest adjusted end.
func (t *Trace) Duration() time.Duration {
	var end time.Time
	for _, s := range t.Spans {
		if e := s.End(); e.After(end) {
			end = e
		}
	}
	if len(t.Spans) == 0 {
		return 0
	}
	return end.Sub(t.Spans[0].Adjusted)
}

// Tiers returns the distinct tier labels the trace touches, in order of
// first appearance.
func (t *Trace) Tiers() []string {
	var out []string
	seen := make(map[string]bool)
	for _, s := range t.Spans {
		if !seen[s.Tier] {
			seen[s.Tier] = true
			out = append(out, s.Tier)
		}
	}
	return out
}

// Batch is one source's contribution to an assembly.
type Batch struct {
	// Source labels where the spans came from (daemon name, tier, or
	// "proc" for an in-process run).
	Source string
	// Spans are the raw records, in any order.
	Spans []obs.SpanRecord
}

// Assemble joins spans from every batch into per-trace trees. Records
// may arrive out of order and duplicated across polls (duplicates by
// (trace, span) are dropped, first occurrence wins). Spans whose
// parent is missing become extra roots and mark the trace incomplete.
// Cross-source parent/child edges get clock-skew repair: the child
// subtree is shifted so the child centers inside its parent's window.
// Traces are returned sorted by start time.
func Assemble(batches ...Batch) []*Trace {
	type spanKey struct{ trace, span uint64 }
	byTrace := make(map[uint64][]*Span)
	seen := make(map[spanKey]bool)
	for _, b := range batches {
		for _, rec := range b.Spans {
			if rec.Trace == 0 || rec.Span == 0 {
				continue
			}
			k := spanKey{rec.Trace, rec.Span}
			if seen[k] {
				continue
			}
			seen[k] = true
			byTrace[rec.Trace] = append(byTrace[rec.Trace], &Span{
				SpanRecord: rec,
				Source:     b.Source,
				Adjusted:   rec.Start,
			})
		}
	}

	traces := make([]*Trace, 0, len(byTrace))
	for id, spans := range byTrace {
		traces = append(traces, assembleOne(id, spans))
	}
	sort.Slice(traces, func(i, j int) bool { return traces[i].Start().Before(traces[j].Start()) })
	return traces
}

func assembleOne(id uint64, spans []*Span) *Trace {
	t := &Trace{ID: id}
	byID := make(map[uint64]*Span, len(spans))
	for _, s := range spans {
		byID[s.Span] = s
	}
	for _, s := range spans {
		parent := byID[s.Parent]
		switch {
		case s.Parent == 0:
			t.Roots = append(t.Roots, s)
		case parent == nil || parent == s:
			t.Orphans++
			t.Roots = append(t.Roots, s)
		default:
			parent.Children = append(parent.Children, s)
		}
	}
	// Guard against parent cycles (corrupt input): any span not
	// reachable from a root is promoted to one.
	reached := make(map[*Span]bool, len(spans))
	var mark func(*Span)
	mark = func(s *Span) {
		if reached[s] {
			return
		}
		reached[s] = true
		for _, c := range s.Children {
			mark(c)
		}
	}
	for _, r := range t.Roots {
		mark(r)
	}
	for _, s := range spans {
		if !reached[s] {
			t.Orphans++
			t.Roots = append(t.Roots, s)
			// Detach the promoted span from its in-cycle parent so the
			// span graph is a forest again and tree walks terminate.
			if p := byID[s.Parent]; p != nil {
				for i, c := range p.Children {
					if c == s {
						p.Children = append(p.Children[:i], p.Children[i+1:]...)
						break
					}
				}
			}
			mark(s)
		}
	}

	for _, r := range t.Roots {
		adjust(r, 0)
	}
	t.Spans = spans
	sort.Slice(t.Spans, func(i, j int) bool { return t.Spans[i].Adjusted.Before(t.Spans[j].Adjusted) })
	sort.Slice(t.Roots, func(i, j int) bool { return t.Roots[i].Adjusted.Before(t.Roots[j].Adjusted) })
	t.Complete = len(t.Roots) == 1 && t.Orphans == 0
	return t
}

// adjust applies clock-skew correction down one subtree. shift is the
// correction inherited from the nearest same-source ancestor chain;
// when a child crossed a source boundary its own shift is recomputed so
// the child sits centered inside the parent's (already adjusted)
// window. In-process assemblies have a single source, every shift is
// zero, and timestamps pass through untouched.
func adjust(s *Span, shift time.Duration) {
	s.Adjusted = s.Start.Add(shift)
	for _, c := range s.Children {
		cshift := shift
		if c.Source != s.Source {
			want := s.Adjusted.Add((s.Dur - c.Dur) / 2)
			if want.Before(s.Adjusted) {
				// Child outlasts its parent (lost response, clock
				// trouble): pin its start to the parent's rather than
				// extrapolating backwards.
				want = s.Adjusted
			}
			cshift = want.Sub(c.Start)
		}
		adjust(c, cshift)
	}
	sort.Slice(s.Children, func(i, j int) bool {
		return s.Children[i].Adjusted.Before(s.Children[j].Adjusted)
	})
}

// Slowest returns the n traces with the longest duration, slowest
// first.
func Slowest(traces []*Trace, n int) []*Trace {
	out := append([]*Trace(nil), traces...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Duration() > out[j].Duration() })
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// Medians returns up to n traces centered on the median duration —
// the "typical interaction" complement to Slowest.
func Medians(traces []*Trace, n int) []*Trace {
	out := append([]*Trace(nil), traces...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Duration() < out[j].Duration() })
	if n >= len(out) {
		return out
	}
	lo := (len(out) - n) / 2
	return out[lo : lo+n]
}

// WriteWaterfall renders one assembled trace as an indented tree with
// tier labels, per-hop offsets from the trace start, and durations:
//
//	trace 42 — 5 spans, tiers client>edge>backend>db, 3.1ms, complete
//	+0s       [client ] client.interaction   3.1ms
//	  +0.2ms  [edge   ] edge.request         2.7ms
//	    +0.9ms  [backend] backend.apply      1.1ms
func WriteWaterfall(w io.Writer, t *Trace) error {
	status := "complete"
	if !t.Complete {
		status = fmt.Sprintf("INCOMPLETE (%d roots, %d orphans)", len(t.Roots), t.Orphans)
	}
	tiers := ""
	for i, tier := range t.Tiers() {
		if i > 0 {
			tiers += ">"
		}
		tiers += tier
	}
	if _, err := fmt.Fprintf(w, "trace %d — %d spans, tiers %s, %s, %s\n",
		t.ID, len(t.Spans), tiers, fmtDur(t.Duration()), status); err != nil {
		return err
	}
	t0 := t.Start()
	var walk func(s *Span, depth int) error
	walk = func(s *Span, depth int) error {
		if _, err := fmt.Fprintf(w, "%*s+%-9s [%-7s] %-24s %s\n",
			2*depth, "", fmtDur(s.Adjusted.Sub(t0)), s.Tier, s.Name, fmtDur(s.Dur)); err != nil {
			return err
		}
		for _, c := range s.Children {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range t.Roots {
		if err := walk(r, 0); err != nil {
			return err
		}
	}
	return nil
}

// fmtDur rounds durations for the waterfall the same way the obs text
// endpoints do.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Microsecond).String()
	}
}

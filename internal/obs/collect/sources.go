package collect

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"edgeejb/internal/obs"
)

// Source yields the spans one tier finished since a given time. The
// collector polls each source with a per-source high-water mark, so a
// source only ships what is new (modulo a one-instant overlap the
// assembler dedups).
type Source interface {
	// Name labels spans from this source in the assembly; use the
	// daemon or tier name.
	Name() string
	// Fetch returns spans that started at or after since (the zero time
	// means everything retained).
	Fetch(since time.Time) ([]obs.SpanRecord, error)
}

// logSource drains an in-process SpanLog — the source harness-driven
// runs use, where every tier shares the process and DefaultSpans.
type logSource struct {
	name string
	log  *obs.SpanLog
}

// FromLog returns a Source over an in-process span log.
func FromLog(name string, l *obs.SpanLog) Source { return logSource{name: name, log: l} }

func (s logSource) Name() string { return s.name }

func (s logSource) Fetch(since time.Time) ([]obs.SpanRecord, error) {
	return s.log.Since(since), nil
}

// httpSource polls a daemon's /debug/spans endpoint for JSON records —
// the source a distributed deployment uses, one per -debug-addr.
type httpSource struct {
	name string
	base string
	c    *http.Client
}

// FromHTTP returns a Source that polls the debug listener at base
// (e.g. "http://127.0.0.1:8100") via /debug/spans?format=json&since=.
func FromHTTP(name, base string) Source {
	return httpSource{name: name, base: base, c: &http.Client{Timeout: 10 * time.Second}}
}

func (s httpSource) Name() string { return s.name }

func (s httpSource) Fetch(since time.Time) ([]obs.SpanRecord, error) {
	u := s.base + "/debug/spans?format=json"
	if !since.IsZero() {
		u += "&since=" + url.QueryEscape(strconv.FormatInt(since.UnixNano(), 10))
	}
	resp, err := s.c.Get(u)
	if err != nil {
		return nil, fmt.Errorf("collect: poll %s: %w", s.name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("collect: poll %s: status %d: %s", s.name, resp.StatusCode, body)
	}
	var recs []obs.SpanRecord
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		return nil, fmt.Errorf("collect: poll %s: decode: %w", s.name, err)
	}
	return recs, nil
}

// Collector accumulates spans from a set of sources across polls and
// assembles them on demand. It is not safe for concurrent use.
type Collector struct {
	sources []Source
	marks   map[string]time.Time
	batches map[string]*Batch
}

// NewCollector returns a collector over the given sources.
func NewCollector(sources ...Source) *Collector {
	return &Collector{
		sources: sources,
		marks:   make(map[string]time.Time),
		batches: make(map[string]*Batch),
	}
}

// Poll fetches whatever every source finished since the previous poll.
// A source error aborts the poll; spans already gathered are kept.
func (c *Collector) Poll() error {
	for _, src := range c.sources {
		recs, err := src.Fetch(c.marks[src.Name()])
		if err != nil {
			return err
		}
		b := c.batches[src.Name()]
		if b == nil {
			b = &Batch{Source: src.Name()}
			c.batches[src.Name()] = b
		}
		b.Spans = append(b.Spans, recs...)
		for _, r := range recs {
			if r.Start.After(c.marks[src.Name()]) {
				// Re-fetching from the latest start is a deliberate
				// one-instant overlap: spans sharing that start instant
				// may land after this poll, and Assemble dedups.
				c.marks[src.Name()] = r.Start
			}
		}
	}
	return nil
}

// Traces assembles everything gathered so far.
func (c *Collector) Traces() []*Trace {
	batches := make([]Batch, 0, len(c.batches))
	for _, b := range c.batches {
		batches = append(batches, *b)
	}
	return Assemble(batches...)
}

// SpanCount reports how many raw records the collector holds
// (duplicates included until assembly).
func (c *Collector) SpanCount() int {
	n := 0
	for _, b := range c.batches {
		n += len(b.Spans)
	}
	return n
}

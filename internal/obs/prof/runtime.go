package prof

import (
	"math"
	"sync"
	"time"

	"runtime/metrics"

	"edgeejb/internal/obs"
)

// The runtime.* metric families Runtime feeds into its registry. Names
// are registered literally so the docs guard can extract them; keep
// them in sync with OBSERVABILITY.md.
const (
	// runtimeSource documents which runtime/metrics sample backs each
	// family; see newRuntime for the mapping.
	runtimeGCPauseName    = "runtime.gc_pause"
	runtimeSchedLatName   = "runtime.sched_latency"
	runtimeHeapLiveName   = "runtime.heap_live_bytes"
	runtimeHeapGoalName   = "runtime.heap_goal_bytes"
	runtimeGoroutinesName = "runtime.goroutines"
	runtimeGoroutineHW    = "runtime.goroutines_highwater"
	runtimeAllocsName     = "runtime.allocs_total"
	runtimeAllocBytesName = "runtime.alloc_bytes_total"
	runtimeGCCyclesName   = "runtime.gc_cycles_total"
	runtimeCPUName        = "runtime.cpu_ms_total"
)

// Runtime reads the Go runtime's own meters into an obs.Registry so
// they ride every existing export (text /metrics, Prometheus, per-phase
// diffs, time-series CSVs) next to the application's metrics:
//
//	runtime.gc_pause              histogram  stop-the-world GC pauses
//	runtime.sched_latency         histogram  goroutine time in runnable
//	runtime.heap_live_bytes       gauge      live heap after last GC
//	runtime.heap_goal_bytes       gauge      pacer's next-GC heap goal
//	runtime.goroutines            gauge      current goroutine count
//	runtime.goroutines_highwater  gauge      max goroutines ever sampled
//	runtime.allocs_total          counter    heap objects allocated
//	runtime.alloc_bytes_total     counter    heap bytes allocated
//	runtime.gc_cycles_total       counter    completed GC cycles
//	runtime.cpu_ms_total          counter    process CPU (user+system)
//
// Cumulative runtime metrics are turned into counter deltas; the two
// runtime histograms are replayed bucket by bucket into obs histograms
// (midpoint of each runtime bucket, ObserveN for the delta count), so
// their p50/p95/p99 come out of the same quantile machinery as every
// latency metric. Update is cheap (a handful of metrics.Read samples);
// the background loop costs nothing measurable at a 250ms-1s cadence.
type Runtime struct {
	mu sync.Mutex

	gcPause    *obs.Histogram
	schedLat   *obs.Histogram
	heapLive   *obs.Gauge
	heapGoal   *obs.Gauge
	goroutines *obs.Gauge
	highwater  *obs.Gauge
	allocs     *obs.Counter
	allocBytes *obs.Counter
	gcCycles   *obs.Counter
	cpuMS      *obs.Counter

	samples []metrics.Sample

	prevAllocs, prevAllocBytes, prevGC uint64
	prevCPU                            time.Duration
	prevGCPause, prevSchedLat          []uint64
	hw                                 int64

	stop chan struct{}
	done chan struct{}
}

// Indices into Runtime.samples; keep in sync with the names below.
const (
	sGCPause = iota
	sSchedLat
	sHeapLive
	sHeapGoal
	sGoroutines
	sAllocObjs
	sAllocBytes
	sGCCycles
	numRuntimeSamples
)

var runtimeSampleNames = [numRuntimeSamples]string{
	sGCPause:    "/sched/pauses/total/gc:seconds",
	sSchedLat:   "/sched/latencies:seconds",
	sHeapLive:   "/memory/classes/heap/objects:bytes",
	sHeapGoal:   "/gc/heap/goal:bytes",
	sGoroutines: "/sched/goroutines:goroutines",
	sAllocObjs:  "/gc/heap/allocs:objects",
	sAllocBytes: "/gc/heap/allocs:bytes",
	sGCCycles:   "/gc/cycles/total:gc-cycles",
}

// NewRuntime registers the runtime.* families in reg (obs.Default when
// nil) and primes the cumulative baselines, so the counters report
// activity from construction onward rather than since process start.
// Call Update at interesting instants (phase boundaries), or Start for
// a background cadence.
func NewRuntime(reg *obs.Registry) *Runtime {
	if reg == nil {
		reg = obs.Default
	}
	r := &Runtime{
		gcPause:    reg.Histogram(runtimeGCPauseName),
		schedLat:   reg.Histogram(runtimeSchedLatName),
		heapLive:   reg.Gauge(runtimeHeapLiveName),
		heapGoal:   reg.Gauge(runtimeHeapGoalName),
		goroutines: reg.Gauge(runtimeGoroutinesName),
		highwater:  reg.Gauge(runtimeGoroutineHW),
		allocs:     reg.Counter(runtimeAllocsName),
		allocBytes: reg.Counter(runtimeAllocBytesName),
		gcCycles:   reg.Counter(runtimeGCCyclesName),
		cpuMS:      reg.Counter(runtimeCPUName),
		samples:    make([]metrics.Sample, numRuntimeSamples),
	}
	for i, name := range runtimeSampleNames {
		r.samples[i].Name = name
	}
	// Prime the baselines: read once and discard the cumulative totals
	// accumulated before this collector existed.
	metrics.Read(r.samples)
	r.prevAllocs = counterValue(r.samples[sAllocObjs])
	r.prevAllocBytes = counterValue(r.samples[sAllocBytes])
	r.prevGC = counterValue(r.samples[sGCCycles])
	r.prevCPU = processCPU()
	r.prevGCPause = bucketCounts(r.samples[sGCPause])
	r.prevSchedLat = bucketCounts(r.samples[sSchedLat])
	r.Update()
	return r
}

// StartRuntime is NewRuntime plus a background goroutine calling Update
// every interval (1s when non-positive). Stop halts it.
func StartRuntime(reg *obs.Registry, interval time.Duration) *Runtime {
	r := NewRuntime(reg)
	if interval <= 0 {
		interval = time.Second
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	r.stop, r.done = stop, done
	// The loop selects on the captured locals, not the struct fields:
	// Stop nils the fields (for idempotency) before closing the channel,
	// and a select that re-read r.stop could block on nil forever.
	go func() {
		defer close(done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				r.Update()
			case <-stop:
				r.Update()
				return
			}
		}
	}()
	return r
}

// Stop halts the background loop after one final Update. Safe to call
// on a Runtime built with NewRuntime (no-op) and safe to call twice.
func (r *Runtime) Stop() {
	r.mu.Lock()
	stop, done := r.stop, r.done
	r.stop, r.done = nil, nil
	r.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Update reads the runtime meters once and folds the activity since the
// previous Update into the registered metrics. Serialized internally;
// safe to call from the background loop and phase boundaries at once.
func (r *Runtime) Update() {
	r.mu.Lock()
	defer r.mu.Unlock()

	metrics.Read(r.samples)

	r.heapLive.Set(int64(counterValue(r.samples[sHeapLive])))
	r.heapGoal.Set(int64(counterValue(r.samples[sHeapGoal])))
	g := int64(counterValue(r.samples[sGoroutines]))
	r.goroutines.Set(g)
	if g > r.hw {
		r.hw = g
		r.highwater.Set(g)
	}

	r.prevAllocs = advance(r.allocs, r.prevAllocs, counterValue(r.samples[sAllocObjs]))
	r.prevAllocBytes = advance(r.allocBytes, r.prevAllocBytes, counterValue(r.samples[sAllocBytes]))
	r.prevGC = advance(r.gcCycles, r.prevGC, counterValue(r.samples[sGCCycles]))

	if cpu := processCPU(); cpu > r.prevCPU {
		r.cpuMS.Add(uint64((cpu - r.prevCPU) / time.Millisecond))
		r.prevCPU = cpu
	}

	r.prevGCPause = replayHistogram(r.gcPause, r.samples[sGCPause], r.prevGCPause)
	r.prevSchedLat = replayHistogram(r.schedLat, r.samples[sSchedLat], r.prevSchedLat)
}

// advance adds (cur - prev) to c and returns cur, tolerating a meter
// that is absent (KindBad reads as 0) without going backwards.
func advance(c *obs.Counter, prev, cur uint64) uint64 {
	if cur > prev {
		c.Add(cur - prev)
		return cur
	}
	return prev
}

// counterValue extracts a scalar sample as uint64 (0 for absent or
// histogram-kind samples).
func counterValue(s metrics.Sample) uint64 {
	switch s.Value.Kind() {
	case metrics.KindUint64:
		return s.Value.Uint64()
	case metrics.KindFloat64:
		return uint64(s.Value.Float64())
	default:
		return 0
	}
}

// bucketCounts copies a runtime histogram's cumulative bucket counts
// (nil for non-histogram samples).
func bucketCounts(s metrics.Sample) []uint64 {
	if s.Value.Kind() != metrics.KindFloat64Histogram {
		return nil
	}
	h := s.Value.Float64Histogram()
	return append([]uint64(nil), h.Counts...)
}

// replayHistogram folds the bucket-count deltas of a cumulative
// runtime/metrics histogram into an obs.Histogram: each bucket's new
// observations are recorded at the bucket midpoint (edges are seconds;
// unbounded edges clamp to the finite neighbor). Returns the new
// cumulative counts to diff against next time.
func replayHistogram(dst *obs.Histogram, s metrics.Sample, prev []uint64) []uint64 {
	if s.Value.Kind() != metrics.KindFloat64Histogram {
		return prev
	}
	h := s.Value.Float64Histogram()
	for i, n := range h.Counts {
		var before uint64
		if i < len(prev) {
			before = prev[i]
		}
		if n <= before {
			continue
		}
		dst.ObserveN(bucketMidpoint(h.Buckets, i), n-before)
	}
	return append(prev[:0], h.Counts...)
}

// bucketMidpoint picks a representative duration for bucket i of a
// runtime histogram with len(Buckets) = len(Counts)+1 edges in seconds.
func bucketMidpoint(edges []float64, i int) time.Duration {
	if i+1 >= len(edges) {
		return 0
	}
	lo, hi := edges[i], edges[i+1]
	switch {
	case math.IsInf(lo, -1) && math.IsInf(hi, 1):
		return 0
	case math.IsInf(lo, -1):
		lo = 0
	case math.IsInf(hi, 1):
		hi = lo
	}
	mid := (lo + hi) / 2
	if mid < 0 {
		mid = 0
	}
	return time.Duration(mid * float64(time.Second))
}

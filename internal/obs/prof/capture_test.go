package prof

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// allocHeavily is the leaf the heap-delta test looks for: its frames
// must show up in the phase's allocation delta profile. The return
// value keeps the compiler from eliding the work.
//
//go:noinline
func allocHeavily(n int) [][]byte {
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, make([]byte, 64<<10))
	}
	return out
}

func TestCapturePhaseHeapDelta(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCapturer(Options{Dir: dir, Rates: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.StartPhase("bench"); err != nil {
		t.Fatal(err)
	}
	// ~16MB in 64KiB chunks: far above the 512KiB sampling rate, so the
	// delta profile must attribute most of it here.
	sink := allocHeavily(256)
	files, err := c.EndPhase()
	if err != nil {
		t.Fatal(err)
	}
	_ = sink

	byName := map[string]CapturedFile{}
	for _, f := range files {
		byName[f.Name] = f
		if _, err := os.Stat(filepath.Join(dir, f.Name)); err != nil {
			t.Errorf("captured file %s not on disk: %v", f.Name, err)
		}
		if f.Phase != "bench" || f.Source != "proc" {
			t.Errorf("file %s: phase=%q source=%q", f.Name, f.Phase, f.Source)
		}
	}
	for _, want := range []string{"cpu_bench.pb.gz", "heap_bench.pb.gz", "mutex_bench.pb.gz", "block_bench.pb.gz"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("missing captured file %s (have %v)", want, files)
		}
	}

	data, err := os.ReadFile(filepath.Join(dir, "heap_bench.pb.gz"))
	if err != nil {
		t.Fatal(err)
	}
	p, err := Parse(data)
	if err != nil {
		t.Fatalf("heap delta unparseable: %v", err)
	}
	idx := p.ValueIndex("alloc_space")
	if idx < 0 {
		t.Fatalf("no alloc_space in delta: %v", p.SampleTypes)
	}
	total := p.Total(idx)
	if total < 8<<20 {
		t.Fatalf("delta alloc_space = %d bytes, want >= 8MB of the ~16MB allocated", total)
	}
	var flat int64
	for _, f := range p.FlatByFunction(idx, -1) {
		if strings.Contains(f.Function, "allocHeavily") {
			flat = f.Flat
			break
		}
	}
	if flat < 8<<20 {
		t.Fatalf("allocHeavily self = %d bytes, want >= 8MB (delta mis-attributed)", flat)
	}

	// The hotspot aggregation saw the same profile.
	var found bool
	for _, r := range c.Hotspots().Alloc {
		if r.Phase == "bench" && strings.Contains(r.Function, "allocHeavily") {
			found = true
		}
	}
	if !found {
		t.Error("allocHeavily missing from hotspot rows")
	}
}

func TestCaptureGuards(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCapturer(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.EndPhase(); err == nil {
		t.Error("EndPhase without StartPhase did not error")
	}
	if err := c.StartPhase("one"); err != nil {
		t.Fatal(err)
	}
	if err := c.StartPhase("two"); err == nil {
		t.Error("second StartPhase while capturing did not error")
	} else if !strings.Contains(err.Error(), "one") {
		t.Errorf("guard error does not name the active phase: %v", err)
	}
	if _, err := c.EndPhase(); err != nil {
		t.Fatal(err)
	}

	// A remote that is not serving fails at construction with a hint
	// about -debug-addr, not mid-run.
	_, err = NewCapturer(Options{Dir: dir, Remotes: []Remote{{Name: "db", Addr: "127.0.0.1:1"}}})
	if err == nil {
		t.Fatal("unreachable remote accepted")
	}
	if !strings.Contains(err.Error(), "-debug-addr") || !strings.Contains(err.Error(), `"db"`) {
		t.Errorf("remote error lacks daemon name or -debug-addr hint: %v", err)
	}

	if _, err := NewCapturer(Options{}); err == nil {
		t.Error("empty Dir accepted")
	}
}

package prof

import "runtime"

// Sampling rates for the contention profiles. Both profiles are OFF by
// default in the Go runtime — /debug/pprof/mutex and /debug/pprof/block
// serve empty profiles until something sets these — which is why the
// daemons gate them behind -profile-rates and the harness enables them
// only while -profile is on.
const (
	// DefaultMutexFraction samples 1 in N mutex contention events.
	// Overhead: one extra atomic plus, for sampled events, a stack
	// capture on the *unlock* path of a contended mutex — invisible
	// unless the workload is pure lock churn.
	DefaultMutexFraction = 100
	// DefaultBlockRateNs samples one blocking event per N nanoseconds
	// of cumulative blocked time (channel waits, mutex waits, select).
	// 100µs keeps the sample count modest while catching anything that
	// matters at request timescales. Overhead: a timestamp on block
	// entry/exit for events at or above the rate.
	DefaultBlockRateNs = 100_000
)

// EnableProfileRates turns on mutex and block profiling at the default
// rates and returns a restore func that puts both back exactly as they
// were (block profiling has no getter, so "as it was" means off — the
// only state it can have had unless something else enabled it, in which
// case that something owns it).
func EnableProfileRates() (restore func()) {
	prevMutex := runtime.SetMutexProfileFraction(DefaultMutexFraction)
	runtime.SetBlockProfileRate(DefaultBlockRateNs)
	return func() {
		runtime.SetMutexProfileFraction(prevMutex)
		runtime.SetBlockProfileRate(0)
	}
}

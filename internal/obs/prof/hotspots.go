package prof

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// topNPerSource bounds how many functions each (phase, source) pair
// contributes to the hotspot CSVs; the printed table trims further.
const topNPerSource = 20

// Hotspot is one function's self cost within one (phase, source)
// profile. For CPU rows Flat is nanoseconds; for allocation rows Flat
// is bytes and FlatObjects the object count.
type Hotspot struct {
	Phase    string
	Source   string
	Function string
	File     string
	// Flat is the self value: CPU nanoseconds or allocated bytes.
	Flat int64
	// FlatObjects is the allocated-object count (allocation rows only).
	FlatObjects int64
	// Share is Flat over the profile's total, in [0,1].
	Share float64
}

// HotspotSet accumulates per-phase, per-source top-N tables from parsed
// profiles: self-CPU from CPU profiles, self-allocation from allocs
// delta profiles. Rows stay grouped by insertion (phase, source) order,
// descending by Flat within a group.
type HotspotSet struct {
	CPU   []Hotspot
	Alloc []Hotspot
}

// AddCPU folds a CPU profile's top self-time functions in. Profiles
// without a cpu/nanoseconds dimension are ignored.
func (h *HotspotSet) AddCPU(phase, source string, p *Profile) {
	idx := p.ValueIndex("cpu")
	if idx < 0 {
		return
	}
	h.CPU = append(h.CPU, topRows(phase, source, p, idx, -1)...)
}

// AddAlloc folds an allocation profile's top self-bytes functions in.
// Profiles without an alloc_space dimension are ignored.
func (h *HotspotSet) AddAlloc(phase, source string, p *Profile) {
	idx := p.ValueIndex("alloc_space")
	if idx < 0 {
		return
	}
	h.Alloc = append(h.Alloc, topRows(phase, source, p, idx, p.ValueIndex("alloc_objects"))...)
}

func topRows(phase, source string, p *Profile, idx, secondaryIdx int) []Hotspot {
	flat := p.FlatByFunction(idx, secondaryIdx)
	total := p.Total(idx)
	if len(flat) > topNPerSource {
		flat = flat[:topNPerSource]
	}
	rows := make([]Hotspot, 0, len(flat))
	for _, f := range flat {
		if f.Flat == 0 {
			continue
		}
		var share float64
		if total > 0 {
			share = float64(f.Flat) / float64(total)
		}
		rows = append(rows, Hotspot{
			Phase: phase, Source: source,
			Function: f.Function, File: f.File,
			Flat: f.Flat, FlatObjects: f.FlatSecondary,
			Share: share,
		})
	}
	return rows
}

// WriteCPUHotspotsCSV writes the accumulated CPU rows as
// cpu_hotspots.csv: phase,source,function,file,flat_ns,share.
func (h *HotspotSet) WriteCPUHotspotsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"phase", "source", "function", "file", "flat_ns", "share"}); err != nil {
		return err
	}
	for _, r := range h.CPU {
		rec := []string{r.Phase, r.Source, r.Function, r.File,
			strconv.FormatInt(r.Flat, 10), strconv.FormatFloat(r.Share, 'f', 4, 64)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteAllocHotspotsCSV writes the accumulated allocation rows as
// alloc_hotspots.csv:
// phase,source,function,file,alloc_bytes,alloc_objects,share.
func (h *HotspotSet) WriteAllocHotspotsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"phase", "source", "function", "file", "alloc_bytes", "alloc_objects", "share"}); err != nil {
		return err
	}
	for _, r := range h.Alloc {
		rec := []string{r.Phase, r.Source, r.Function, r.File,
			strconv.FormatInt(r.Flat, 10), strconv.FormatInt(r.FlatObjects, 10),
			strconv.FormatFloat(r.Share, 'f', 4, 64)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable prints a human-readable top-n hotspot summary (across all
// phases and sources, by share) for the -metrics dump: one block for
// self-CPU, one for allocation sites.
func (h *HotspotSet) WriteTable(w io.Writer, n int) error {
	if n <= 0 {
		n = 10
	}
	if len(h.CPU) > 0 {
		if _, err := fmt.Fprintf(w, "top self-CPU (phase/source, share of that profile):\n"); err != nil {
			return err
		}
		for _, r := range topByShare(h.CPU, n) {
			if _, err := fmt.Fprintf(w, "  %5.1f%%  %8.1fms  %-12s %-8s %s\n",
				r.Share*100, float64(r.Flat)/1e6, r.Phase, r.Source, r.Function); err != nil {
				return err
			}
		}
	}
	if len(h.Alloc) > 0 {
		if _, err := fmt.Fprintf(w, "top allocation sites (phase/source, share of that profile):\n"); err != nil {
			return err
		}
		for _, r := range topByShare(h.Alloc, n) {
			if _, err := fmt.Fprintf(w, "  %5.1f%%  %8.1fKiB %10d objs  %-12s %-8s %s\n",
				r.Share*100, float64(r.Flat)/1024, r.FlatObjects, r.Phase, r.Source, r.Function); err != nil {
				return err
			}
		}
	}
	return nil
}

func topByShare(rows []Hotspot, n int) []Hotspot {
	out := append([]Hotspot(nil), rows...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Share > out[j].Share })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

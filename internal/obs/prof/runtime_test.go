package prof

import (
	"runtime"
	"testing"
	"time"

	"edgeejb/internal/obs"

	rtmetrics "runtime/metrics"
)

// TestRuntimeSampleNamesExist pins the runtime/metrics names we read to
// the toolchain: a Go release that renames one turns the corresponding
// family into silent zeros, and this test is what catches it.
func TestRuntimeSampleNamesExist(t *testing.T) {
	known := map[string]bool{}
	for _, d := range rtmetrics.All() {
		known[d.Name] = true
	}
	for _, name := range runtimeSampleNames {
		if !known[name] {
			t.Errorf("runtime/metrics no longer exports %q", name)
		}
	}
}

func TestRuntimeRegistersAndAdvances(t *testing.T) {
	reg := obs.NewRegistry()
	rt := NewRuntime(reg)

	// Generate runtime activity: allocate and force GC cycles.
	sink := make([][]byte, 0, 256)
	for i := 0; i < 256; i++ {
		sink = append(sink, make([]byte, 32<<10))
	}
	_ = sink
	runtime.GC()
	runtime.GC()
	rt.Update()

	snap := reg.Snapshot()
	for _, name := range []string{
		"runtime.allocs_total", "runtime.alloc_bytes_total", "runtime.gc_cycles_total", "runtime.cpu_ms_total",
	} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("counter %q not registered", name)
		}
	}
	for _, name := range []string{
		"runtime.heap_live_bytes", "runtime.heap_goal_bytes", "runtime.goroutines", "runtime.goroutines_highwater",
	} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Errorf("gauge %q not registered", name)
		}
	}
	for _, name := range []string{"runtime.gc_pause", "runtime.sched_latency"} {
		if _, ok := snap.Histograms[name]; !ok {
			t.Errorf("histogram %q not registered", name)
		}
	}

	if snap.Counters["runtime.allocs_total"] == 0 || snap.Counters["runtime.alloc_bytes_total"] == 0 {
		t.Error("allocation counters did not advance across 8MB of allocation")
	}
	if snap.Counters["runtime.gc_cycles_total"] < 2 {
		t.Errorf("gc_cycles_total = %d after two forced GCs", snap.Counters["runtime.gc_cycles_total"])
	}
	if h := snap.Histograms["runtime.gc_pause"]; h.Count == 0 {
		t.Error("gc_pause histogram empty after forced GCs")
	}
	if snap.Gauges["runtime.goroutines"] < 1 || snap.Gauges["runtime.goroutines_highwater"] < snap.Gauges["runtime.goroutines"] {
		t.Errorf("goroutines=%d highwater=%d", snap.Gauges["runtime.goroutines"], snap.Gauges["runtime.goroutines_highwater"])
	}

	// Counters are monotonic: further updates never go backwards.
	for i := 0; i < 3; i++ {
		rt.Update()
		next := reg.Snapshot()
		for name, v := range snap.Counters {
			if next.Counters[name] < v {
				t.Fatalf("counter %q went backwards: %d -> %d", name, v, next.Counters[name])
			}
		}
		snap = next
	}
}

func TestStartRuntimeStop(t *testing.T) {
	reg := obs.NewRegistry()
	rt := StartRuntime(reg, time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	rt.Stop()
	rt.Stop() // idempotent
	if reg.Snapshot().Gauges["runtime.goroutines"] == 0 {
		t.Error("background sampler never updated the gauges")
	}
}

func TestBucketMidpoint(t *testing.T) {
	inf := func(sign int) float64 {
		f := 1.0
		if sign < 0 {
			f = -1.0
		}
		for i := 0; i < 2000; i++ {
			f *= 2
		}
		return f
	}
	edges := []float64{inf(-1), 0.001, 0.002, inf(1)}
	if got := bucketMidpoint(edges, 0); got != 500*time.Microsecond {
		t.Errorf("-inf..1ms midpoint = %v", got)
	}
	if got := bucketMidpoint(edges, 1); got != 1500*time.Microsecond {
		t.Errorf("1ms..2ms midpoint = %v", got)
	}
	if got := bucketMidpoint(edges, 2); got != 2*time.Millisecond {
		t.Errorf("2ms..+inf clamps to %v, want 2ms", got)
	}
	if got := bucketMidpoint(edges, 3); got != 0 {
		t.Errorf("out-of-range bucket = %v", got)
	}
}

func TestHistogramObserveN(t *testing.T) {
	var h obs.Histogram
	h.ObserveN(100*time.Microsecond, 3)
	h.ObserveN(200*time.Microsecond, 0) // no-op
	h.ObserveN(-time.Second, 2)         // clamps to zero bucket
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Sum != 300*time.Microsecond {
		t.Fatalf("sum = %v", s.Sum)
	}
	if s.Max != 100*time.Microsecond {
		t.Fatalf("max = %v", s.Max)
	}
	// Bulk and single observation land in the same bucket.
	var single obs.Histogram
	for i := 0; i < 3; i++ {
		single.Observe(100 * time.Microsecond)
	}
	if sb, hb := single.Snapshot().Buckets, s.Buckets; sb != hb {
		for i := range sb {
			if sb[i] > 0 && hb[i] != sb[i] {
				t.Fatalf("bucket %d: ObserveN %d vs Observe %d", i, hb[i], sb[i])
			}
		}
	}
}

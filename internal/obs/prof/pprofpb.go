package prof

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Profile is a parsed pprof profile.proto — the subset of the format
// the hotspot tables and delta profiles need: sample types, samples
// with their location stacks, and the location → line → function →
// string-table chain that turns a stack into symbol names. Mappings
// and labels are skipped on parse and omitted on encode; go tool pprof
// resolves symbols from the line info alone.
type Profile struct {
	// SampleTypes names each parallel position in Sample.Values
	// ("cpu"/"nanoseconds", "alloc_space"/"bytes", ...).
	SampleTypes []ValueType
	// Samples are the measurements; LocationIDs[0] is the leaf frame.
	Samples []Sample
	// Locations and Functions index the symbol tables by their proto
	// IDs.
	Locations map[uint64]*Location
	Functions map[uint64]*Function
	// TimeNanos / DurationNanos / PeriodType / Period echo the
	// profile's own metadata.
	TimeNanos     int64
	DurationNanos int64
	PeriodType    ValueType
	Period        int64
}

// ValueType is one sample-value dimension.
type ValueType struct {
	Type string
	Unit string
}

// Sample is one measured stack.
type Sample struct {
	LocationIDs []uint64
	Values      []int64
}

// Location is one program counter with its (possibly inlined) frames;
// Lines[0] is the innermost frame.
type Location struct {
	ID      uint64
	Address uint64
	Lines   []Line
}

// Line points a location at a function.
type Line struct {
	FunctionID uint64
	Line       int64
}

// Function is one symbol-table entry.
type Function struct {
	ID        uint64
	Name      string
	File      string
	StartLine int64
}

// maxDecompressed bounds gunzip output so a corrupt or hostile length
// prefix cannot balloon memory; real profiles are a few MB at most.
const maxDecompressed = 512 << 20

// Parse decodes a pprof profile, gunzipping first when the payload is
// gzip-framed (the runtime always gzips; a bare protobuf also parses).
// Truncated or corrupt input returns an error, never a panic.
func Parse(data []byte) (*Profile, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("prof: empty profile data")
	}
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip: %w", err)
		}
		raw, err := io.ReadAll(io.LimitReader(zr, maxDecompressed+1))
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip: %w", err)
		}
		if len(raw) > maxDecompressed {
			return nil, fmt.Errorf("prof: profile exceeds %d bytes decompressed", maxDecompressed)
		}
		data = raw
	}
	p := &Profile{
		Locations: make(map[uint64]*Location),
		Functions: make(map[uint64]*Function),
	}
	var strTable []string
	d := decoder{b: data}
	for !d.done() {
		num, wire, err := d.tag()
		if err != nil {
			return nil, err
		}
		switch num {
		case 1: // sample_type
			msg, err := d.fieldBytes(wire)
			if err != nil {
				return nil, err
			}
			vt, err := parseValueType(msg)
			if err != nil {
				return nil, err
			}
			p.SampleTypes = append(p.SampleTypes, vt)
		case 2: // sample
			msg, err := d.fieldBytes(wire)
			if err != nil {
				return nil, err
			}
			s, err := parseSample(msg)
			if err != nil {
				return nil, err
			}
			p.Samples = append(p.Samples, s)
		case 4: // location
			msg, err := d.fieldBytes(wire)
			if err != nil {
				return nil, err
			}
			loc, err := parseLocation(msg)
			if err != nil {
				return nil, err
			}
			p.Locations[loc.ID] = loc
		case 5: // function
			msg, err := d.fieldBytes(wire)
			if err != nil {
				return nil, err
			}
			fn, err := parseFunction(msg)
			if err != nil {
				return nil, err
			}
			p.Functions[fn.ID] = fn
		case 6: // string_table
			msg, err := d.fieldBytes(wire)
			if err != nil {
				return nil, err
			}
			strTable = append(strTable, string(msg))
		case 9:
			v, err := d.varintField(wire)
			if err != nil {
				return nil, err
			}
			p.TimeNanos = int64(v)
		case 10:
			v, err := d.varintField(wire)
			if err != nil {
				return nil, err
			}
			p.DurationNanos = int64(v)
		case 11:
			msg, err := d.fieldBytes(wire)
			if err != nil {
				return nil, err
			}
			vt, err := parseValueType(msg)
			if err != nil {
				return nil, err
			}
			p.PeriodType = vt
		case 12:
			v, err := d.varintField(wire)
			if err != nil {
				return nil, err
			}
			p.Period = int64(v)
		default:
			if err := d.skip(wire); err != nil {
				return nil, err
			}
		}
	}
	// Resolve string-table indices now that the whole table is read
	// (the runtime happens to emit it before use, but the proto makes
	// no ordering promise).
	str := func(ref string) (string, error) {
		if ref == "" {
			// Absent field: proto default 0, and index 0 is always "".
			return "", nil
		}
		idx, err := strconv.ParseUint(ref, 10, 64)
		if err != nil {
			return "", fmt.Errorf("prof: bad string ref %q", ref)
		}
		if idx >= uint64(len(strTable)) {
			return "", fmt.Errorf("prof: string index %d out of range (table has %d)", idx, len(strTable))
		}
		return strTable[idx], nil
	}
	var err error
	for i := range p.SampleTypes {
		if p.SampleTypes[i], err = resolveValueType(p.SampleTypes[i], str); err != nil {
			return nil, err
		}
	}
	if p.PeriodType, err = resolveValueType(p.PeriodType, str); err != nil {
		return nil, err
	}
	for _, fn := range p.Functions {
		if fn.Name, err = str(fn.Name); err != nil {
			return nil, err
		}
		if fn.File, err = str(fn.File); err != nil {
			return nil, err
		}
	}
	for _, s := range p.Samples {
		if len(s.Values) != len(p.SampleTypes) {
			return nil, fmt.Errorf("prof: sample has %d values, profile has %d sample types",
				len(s.Values), len(p.SampleTypes))
		}
	}
	return p, nil
}

// resolveValueType turns the numeric string-table references stashed in
// the Type/Unit fields during the first pass into real strings.
func resolveValueType(vt ValueType, str func(string) (string, error)) (ValueType, error) {
	var err error
	if vt.Type != "" {
		if vt.Type, err = str(vt.Type); err != nil {
			return vt, err
		}
	}
	if vt.Unit != "" {
		if vt.Unit, err = str(vt.Unit); err != nil {
			return vt, err
		}
	}
	return vt, nil
}

func parseValueType(msg []byte) (ValueType, error) {
	var vt ValueType
	d := decoder{b: msg}
	for !d.done() {
		num, wire, err := d.tag()
		if err != nil {
			return vt, err
		}
		switch num {
		case 1:
			v, err := d.varintField(wire)
			if err != nil {
				return vt, err
			}
			// Stash the index; Parse resolves it once the table is read.
			vt.Type = strconv.FormatUint(v, 10)
		case 2:
			v, err := d.varintField(wire)
			if err != nil {
				return vt, err
			}
			vt.Unit = strconv.FormatUint(v, 10)
		default:
			if err := d.skip(wire); err != nil {
				return vt, err
			}
		}
	}
	return vt, nil
}

func parseSample(msg []byte) (Sample, error) {
	var s Sample
	d := decoder{b: msg}
	for !d.done() {
		num, wire, err := d.tag()
		if err != nil {
			return s, err
		}
		switch num {
		case 1: // location_id, packed or repeated
			vals, err := d.packedVarints(wire)
			if err != nil {
				return s, err
			}
			s.LocationIDs = append(s.LocationIDs, vals...)
		case 2: // value, packed or repeated
			vals, err := d.packedVarints(wire)
			if err != nil {
				return s, err
			}
			for _, v := range vals {
				s.Values = append(s.Values, int64(v))
			}
		default:
			if err := d.skip(wire); err != nil {
				return s, err
			}
		}
	}
	return s, nil
}

func parseLocation(msg []byte) (*Location, error) {
	loc := &Location{}
	d := decoder{b: msg}
	for !d.done() {
		num, wire, err := d.tag()
		if err != nil {
			return nil, err
		}
		switch num {
		case 1:
			v, err := d.varintField(wire)
			if err != nil {
				return nil, err
			}
			loc.ID = v
		case 3:
			v, err := d.varintField(wire)
			if err != nil {
				return nil, err
			}
			loc.Address = v
		case 4:
			sub, err := d.fieldBytes(wire)
			if err != nil {
				return nil, err
			}
			line, err := parseLine(sub)
			if err != nil {
				return nil, err
			}
			loc.Lines = append(loc.Lines, line)
		default:
			if err := d.skip(wire); err != nil {
				return nil, err
			}
		}
	}
	return loc, nil
}

func parseLine(msg []byte) (Line, error) {
	var l Line
	d := decoder{b: msg}
	for !d.done() {
		num, wire, err := d.tag()
		if err != nil {
			return l, err
		}
		switch num {
		case 1:
			v, err := d.varintField(wire)
			if err != nil {
				return l, err
			}
			l.FunctionID = v
		case 2:
			v, err := d.varintField(wire)
			if err != nil {
				return l, err
			}
			l.Line = int64(v)
		default:
			if err := d.skip(wire); err != nil {
				return l, err
			}
		}
	}
	return l, nil
}

func parseFunction(msg []byte) (*Function, error) {
	fn := &Function{}
	d := decoder{b: msg}
	for !d.done() {
		num, wire, err := d.tag()
		if err != nil {
			return nil, err
		}
		switch num {
		case 1:
			v, err := d.varintField(wire)
			if err != nil {
				return nil, err
			}
			fn.ID = v
		case 2:
			v, err := d.varintField(wire)
			if err != nil {
				return nil, err
			}
			fn.Name = strconv.FormatUint(v, 10) // index; resolved in Parse
		case 4:
			v, err := d.varintField(wire)
			if err != nil {
				return nil, err
			}
			fn.File = strconv.FormatUint(v, 10)
		case 5:
			v, err := d.varintField(wire)
			if err != nil {
				return nil, err
			}
			fn.StartLine = int64(v)
		default:
			if err := d.skip(wire); err != nil {
				return nil, err
			}
		}
	}
	return fn, nil
}

// decoder walks protobuf wire format over a byte slice with explicit
// bounds checks; every claimed length is validated against the bytes
// actually present, so truncation surfaces as an error at the exact
// field rather than a panic or a silent short read.
type decoder struct {
	b   []byte
	pos int
}

func (d *decoder) done() bool { return d.pos >= len(d.b) }

func (d *decoder) varint() (uint64, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if d.pos >= len(d.b) {
			return 0, fmt.Errorf("prof: truncated varint at offset %d", d.pos)
		}
		b := d.b[d.pos]
		d.pos++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
	}
	return 0, fmt.Errorf("prof: varint overflows 64 bits at offset %d", d.pos)
}

func (d *decoder) tag() (num int, wire int, err error) {
	v, err := d.varint()
	if err != nil {
		return 0, 0, err
	}
	num, wire = int(v>>3), int(v&7)
	if num == 0 {
		return 0, 0, fmt.Errorf("prof: field number 0 at offset %d", d.pos)
	}
	return num, wire, nil
}

// bytes reads a length-delimited field body.
func (d *decoder) bytes() ([]byte, error) {
	n, err := d.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.b)-d.pos) {
		return nil, fmt.Errorf("prof: field length %d exceeds %d remaining bytes", n, len(d.b)-d.pos)
	}
	out := d.b[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return out, nil
}

// fieldBytes requires wire type 2 and returns the field body.
func (d *decoder) fieldBytes(wire int) ([]byte, error) {
	if wire != 2 {
		return nil, fmt.Errorf("prof: wire type %d where length-delimited expected", wire)
	}
	return d.bytes()
}

// varintField requires wire type 0 and returns the value.
func (d *decoder) varintField(wire int) (uint64, error) {
	if wire != 0 {
		return 0, fmt.Errorf("prof: wire type %d where varint expected", wire)
	}
	return d.varint()
}

// packedVarints reads a repeated varint field in either encoding:
// packed (one length-delimited blob) or one-per-tag.
func (d *decoder) packedVarints(wire int) ([]uint64, error) {
	switch wire {
	case 0:
		v, err := d.varint()
		if err != nil {
			return nil, err
		}
		return []uint64{v}, nil
	case 2:
		body, err := d.bytes()
		if err != nil {
			return nil, err
		}
		sub := decoder{b: body}
		var out []uint64
		for !sub.done() {
			v, err := sub.varint()
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("prof: wire type %d where packed varints expected", wire)
	}
}

func (d *decoder) skip(wire int) error {
	switch wire {
	case 0:
		_, err := d.varint()
		return err
	case 1:
		if len(d.b)-d.pos < 8 {
			return fmt.Errorf("prof: truncated fixed64 at offset %d", d.pos)
		}
		d.pos += 8
		return nil
	case 2:
		_, err := d.bytes()
		return err
	case 5:
		if len(d.b)-d.pos < 4 {
			return fmt.Errorf("prof: truncated fixed32 at offset %d", d.pos)
		}
		d.pos += 4
		return nil
	default:
		return fmt.Errorf("prof: unsupported wire type %d", wire)
	}
}

// ValueIndex returns the position of the sample type named typ in each
// sample's Values, or -1 when the profile does not carry it.
func (p *Profile) ValueIndex(typ string) int {
	for i, vt := range p.SampleTypes {
		if vt.Type == typ {
			return i
		}
	}
	return -1
}

// stackKey identifies a sample by its resolved frame addresses — stable
// across two captures from the same process, unlike proto location IDs,
// which each encoding assigns fresh.
func (p *Profile) stackKey(s Sample) string {
	var b bytes.Buffer
	for _, id := range s.LocationIDs {
		addr := id
		if loc := p.Locations[id]; loc != nil && loc.Address != 0 {
			addr = loc.Address
		}
		fmt.Fprintf(&b, "%x;", addr)
	}
	return b.String()
}

// Sub returns the activity between two cumulative captures of the same
// process: base's sample values are subtracted stack by stack (clamped
// at zero), and samples with no remaining activity are dropped. The
// receiver's symbol tables are kept whole. This is how a cumulative
// allocs (or mutex/block) profile becomes a per-phase delta profile.
func (p *Profile) Sub(base *Profile) *Profile {
	prev := make(map[string][]int64, len(base.Samples))
	for _, s := range base.Samples {
		key := base.stackKey(s)
		if cur, ok := prev[key]; ok {
			// Merge duplicate stacks (labels are dropped on parse, so
			// samples distinguished only by label collapse together).
			for i := range cur {
				if i < len(s.Values) {
					cur[i] += s.Values[i]
				}
			}
			continue
		}
		prev[key] = append([]int64(nil), s.Values...)
	}
	out := &Profile{
		SampleTypes:   p.SampleTypes,
		Locations:     p.Locations,
		Functions:     p.Functions,
		TimeNanos:     p.TimeNanos,
		DurationNanos: p.DurationNanos,
		PeriodType:    p.PeriodType,
		Period:        p.Period,
	}
	merged := make(map[string]*Sample)
	var order []string
	for _, s := range p.Samples {
		key := p.stackKey(s)
		if m, ok := merged[key]; ok {
			for i := range m.Values {
				if i < len(s.Values) {
					m.Values[i] += s.Values[i]
				}
			}
			continue
		}
		cp := Sample{LocationIDs: s.LocationIDs, Values: append([]int64(nil), s.Values...)}
		merged[key] = &cp
		order = append(order, key)
	}
	for _, key := range order {
		s := merged[key]
		if b, ok := prev[key]; ok {
			for i := range s.Values {
				if i < len(b) {
					s.Values[i] -= b[i]
					if s.Values[i] < 0 {
						s.Values[i] = 0
					}
				}
			}
		}
		keep := false
		for _, v := range s.Values {
			if v != 0 {
				keep = true
				break
			}
		}
		if keep {
			out.Samples = append(out.Samples, *s)
		}
	}
	return out
}

// Total sums the given value dimension across all samples.
func (p *Profile) Total(valueIdx int) int64 {
	if valueIdx < 0 {
		return 0
	}
	var total int64
	for _, s := range p.Samples {
		if valueIdx < len(s.Values) {
			total += s.Values[valueIdx]
		}
	}
	return total
}

// FlatValue is one function's self (leaf) total in a profile.
type FlatValue struct {
	Function string
	File     string
	// Flat is the self value in the profile's unit for the chosen
	// sample type (nanoseconds for CPU, bytes for alloc_space).
	Flat int64
	// FlatSecondary carries a second dimension when requested
	// (alloc_objects next to alloc_space); zero otherwise.
	FlatSecondary int64
}

// leafFrame resolves a sample's leaf frame to (function, file); frames
// the symbol tables cannot resolve fall back to a hex address so the
// value is attributed rather than dropped.
func (p *Profile) leafFrame(s Sample) (string, string) {
	if len(s.LocationIDs) == 0 {
		return "(unknown)", ""
	}
	loc := p.Locations[s.LocationIDs[0]]
	if loc == nil {
		return fmt.Sprintf("(0x%x)", s.LocationIDs[0]), ""
	}
	if len(loc.Lines) == 0 {
		return fmt.Sprintf("(0x%x)", loc.Address), ""
	}
	fn := p.Functions[loc.Lines[0].FunctionID]
	if fn == nil {
		return fmt.Sprintf("(0x%x)", loc.Address), ""
	}
	return fn.Name, fn.File
}

// FlatByFunction aggregates self values by leaf function, descending.
// secondaryIdx < 0 leaves FlatSecondary zero.
func (p *Profile) FlatByFunction(valueIdx, secondaryIdx int) []FlatValue {
	if valueIdx < 0 {
		return nil
	}
	type agg struct {
		file      string
		flat, sec int64
	}
	byFn := make(map[string]*agg)
	for _, s := range p.Samples {
		if valueIdx >= len(s.Values) {
			continue
		}
		name, file := p.leafFrame(s)
		a := byFn[name]
		if a == nil {
			a = &agg{file: file}
			byFn[name] = a
		}
		a.flat += s.Values[valueIdx]
		if secondaryIdx >= 0 && secondaryIdx < len(s.Values) {
			a.sec += s.Values[secondaryIdx]
		}
	}
	out := make([]FlatValue, 0, len(byFn))
	for name, a := range byFn {
		if a.flat == 0 && a.sec == 0 {
			continue
		}
		out = append(out, FlatValue{Function: name, File: a.file, Flat: a.flat, FlatSecondary: a.sec})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Flat != out[j].Flat {
			return out[i].Flat > out[j].Flat
		}
		return out[i].Function < out[j].Function
	})
	return out
}

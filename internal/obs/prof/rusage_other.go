//go:build !unix

package prof

import "time"

// processCPU has no portable source on this platform; the
// runtime.cpu_ms_total counter stays at zero and the summary simply
// omits its resource metric.
func processCPU() time.Duration { return 0 }

// Package prof is the resource-attribution layer of the observability
// stack: where internal/obs answers "where did the wall-clock time go",
// prof answers "where did the CPU cycles, allocations, and GC pauses
// go" — per tier and per experiment phase.
//
// It has three parts:
//
//   - Runtime telemetry: Runtime reads the Go runtime's own meters
//     (runtime/metrics plus getrusage CPU time) on an interval and
//     feeds them into an obs.Registry as ordinary counters, gauges,
//     and histograms under the runtime.* namespace. Registered there,
//     they ride every existing export for free: /metrics text and
//     Prometheus exposition, per-phase registry diffs, and the
//     time-series CSVs the artifact pipeline writes.
//   - Profile capture: Capturer brackets each measured phase with a
//     CPU profile, a heap (allocation) delta profile, and — when the
//     sampling rates are enabled — mutex and block delta profiles,
//     both in-process and by fetching /debug/pprof from every remote
//     daemon concurrently, so a real multi-process sharded deployment
//     yields per-tier profiles. Raw .pb.gz profiles land in the run's
//     artifact directory.
//   - A pprof-protobuf parser and encoder: Parse reads the gzipped
//     profile.proto format the runtime emits (bounds-checked, no
//     third-party dependencies), Profile.Sub computes the delta
//     between two cumulative captures of the same process, and
//     HotspotSet aggregates parsed profiles into the top-N self-CPU
//     and top-N allocation-site tables printed under tradebench
//     -metrics and written as cpu_hotspots.csv / alloc_hotspots.csv.
//
// The runtime.* metric names and the resource.* summary metrics they
// feed are documented in OBSERVABILITY.md; CI fails if one goes
// undocumented.
package prof

package prof

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"sort"
)

// Encode serializes the profile back to the gzipped profile.proto
// format go tool pprof reads. The string table is rebuilt from the
// resolved symbol names; mappings and labels, which Parse drops, are
// omitted (pprof symbolizes from the line info).
func Encode(p *Profile) ([]byte, error) {
	st := newStringTable()
	var body []byte
	for _, vt := range p.SampleTypes {
		body = appendMessage(body, 1, encodeValueType(st, vt))
	}
	for _, s := range p.Samples {
		var msg []byte
		msg = appendPacked(msg, 1, s.LocationIDs)
		vals := make([]uint64, len(s.Values))
		for i, v := range s.Values {
			vals[i] = uint64(v)
		}
		msg = appendPacked(msg, 2, vals)
		body = appendMessage(body, 2, msg)
	}
	for _, id := range sortedKeys(p.Locations) {
		loc := p.Locations[id]
		var msg []byte
		msg = appendVarintField(msg, 1, loc.ID)
		msg = appendVarintField(msg, 3, loc.Address)
		for _, ln := range loc.Lines {
			var lmsg []byte
			lmsg = appendVarintField(lmsg, 1, ln.FunctionID)
			lmsg = appendVarintField(lmsg, 2, uint64(ln.Line))
			msg = appendMessage(msg, 4, lmsg)
		}
		body = appendMessage(body, 4, msg)
	}
	for _, id := range sortedKeys(p.Functions) {
		fn := p.Functions[id]
		var msg []byte
		msg = appendVarintField(msg, 1, fn.ID)
		msg = appendVarintField(msg, 2, uint64(st.index(fn.Name)))
		msg = appendVarintField(msg, 4, uint64(st.index(fn.File)))
		msg = appendVarintField(msg, 5, uint64(fn.StartLine))
		body = appendMessage(body, 5, msg)
	}
	body = appendVarintField(body, 9, uint64(p.TimeNanos))
	body = appendVarintField(body, 10, uint64(p.DurationNanos))
	if p.PeriodType != (ValueType{}) {
		body = appendMessage(body, 11, encodeValueType(st, p.PeriodType))
	}
	body = appendVarintField(body, 12, uint64(p.Period))
	// The string table is referenced by index, so it must hold every
	// string interned above; field order within the message is free.
	var head []byte
	for _, s := range st.strings {
		head = appendMessage(head, 6, []byte(s))
	}
	var out bytes.Buffer
	zw := gzip.NewWriter(&out)
	if _, err := zw.Write(append(head, body...)); err != nil {
		return nil, fmt.Errorf("prof: encode: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("prof: encode: %w", err)
	}
	return out.Bytes(), nil
}

func encodeValueType(st *stringTable, vt ValueType) []byte {
	var msg []byte
	msg = appendVarintField(msg, 1, uint64(st.index(vt.Type)))
	msg = appendVarintField(msg, 2, uint64(st.index(vt.Unit)))
	return msg
}

// stringTable interns strings; index 0 is always "".
type stringTable struct {
	strings []string
	idx     map[string]int
}

func newStringTable() *stringTable {
	return &stringTable{strings: []string{""}, idx: map[string]int{"": 0}}
}

func (st *stringTable) index(s string) int {
	if i, ok := st.idx[s]; ok {
		return i
	}
	i := len(st.strings)
	st.strings = append(st.strings, s)
	st.idx[s] = i
	return i
}

func sortedKeys[V any](m map[uint64]V) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func appendVarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// appendVarintField writes tag+value, omitting proto3 zero defaults.
func appendVarintField(b []byte, field int, v uint64) []byte {
	if v == 0 {
		return b
	}
	b = appendVarint(b, uint64(field)<<3|0)
	return appendVarint(b, v)
}

func appendMessage(b []byte, field int, msg []byte) []byte {
	b = appendVarint(b, uint64(field)<<3|2)
	b = appendVarint(b, uint64(len(msg)))
	return append(b, msg...)
}

func appendPacked(b []byte, field int, vals []uint64) []byte {
	if len(vals) == 0 {
		return b
	}
	var packed []byte
	for _, v := range vals {
		packed = appendVarint(packed, v)
	}
	return appendMessage(b, field, packed)
}

package prof

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"
)

// Remote names one more process to profile alongside this one: a
// daemon's -debug-addr listener, fetched over /debug/pprof. In a real
// multi-process deployment one Remote per daemon turns a phase capture
// into per-tier profiles.
type Remote struct {
	// Name labels the daemon's artifacts and hotspot rows (e.g.
	// "edge0", "backend", "db1").
	Name string
	// Addr is the daemon's -debug-addr listen address (host:port).
	Addr string
}

// Options configures a Capturer.
type Options struct {
	// Dir receives the .pb.gz profile artifacts (typically the run's
	// artifact directory).
	Dir string
	// Remotes are additional processes to profile per phase.
	Remotes []Remote
	// RemoteCPUSeconds is how long each remote CPU profile samples
	// (the /debug/pprof/profile?seconds= parameter; 5 when zero). A
	// phase shorter than this waits for the fetch to finish; a longer
	// phase is profiled for only the first RemoteCPUSeconds.
	RemoteCPUSeconds int
	// Rates enables mutex and block profiling in this process for the
	// life of the Capturer (see EnableProfileRates), adding per-phase
	// mutex/block delta profiles to the capture. Remote daemons enable
	// their own sampling with their -profile-rates flag.
	Rates bool
	// Client overrides the HTTP client for remote fetches (per-request
	// timeouts are applied on top).
	Client *http.Client
}

// CapturedFile describes one profile artifact written into Options.Dir,
// for the caller to index in its run manifest.
type CapturedFile struct {
	// Name is the file name within Options.Dir.
	Name string
	// Desc says what the profile holds, in one line.
	Desc string
	// Phase is the experiment phase the profile covers.
	Phase string
	// Source is "proc" for this process or the Remote's name.
	Source string
}

// Capturer brackets experiment phases with profile capture: a CPU
// profile spanning the phase, allocation (and optionally mutex/block)
// delta profiles, and the same set fetched concurrently from every
// remote daemon. Parsed profiles accumulate into a HotspotSet for the
// top-N tables. Not safe for concurrent use; one phase at a time.
type Capturer struct {
	dir     string
	remotes []Remote
	cpuSec  int
	client  *http.Client
	restore func()

	hotspots HotspotSet

	phase      string
	fileSlug   string
	cpuFile    *os.File
	baseline   map[string]*Profile
	remoteBase map[string]*Profile
	cpuFetch   map[string]chan fetchResult
	rates      bool
}

type fetchResult struct {
	data []byte
	err  error
}

// profileKinds are the cumulative local profiles delta-captured per
// phase; mutex and block join when rates are on.
var baseKinds = []string{"allocs"}
var rateKinds = []string{"mutex", "block"}

// NewCapturer validates the options, preflights every remote (a daemon
// that is not serving its -debug-addr fails here, before any phase
// runs), and enables the contention-profile rates when asked. Call
// Close when done to restore them.
func NewCapturer(opts Options) (*Capturer, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("prof: capture needs a directory for profile artifacts")
	}
	cpuSec := opts.RemoteCPUSeconds
	if cpuSec <= 0 {
		cpuSec = 5
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	c := &Capturer{
		dir:     opts.Dir,
		remotes: opts.Remotes,
		cpuSec:  cpuSec,
		client:  client,
		rates:   opts.Rates,
	}
	for _, r := range opts.Remotes {
		if r.Name == "" || r.Addr == "" {
			return nil, fmt.Errorf("prof: remote needs name and address (got %q=%q)", r.Name, r.Addr)
		}
		if _, err := c.fetch(r.Addr, "/healthz", 5*time.Second); err != nil {
			return nil, fmt.Errorf("prof: daemon %q is not serving debug endpoints at %s: %w (is it running with -debug-addr=%s?)",
				r.Name, r.Addr, err, r.Addr)
		}
	}
	if opts.Rates {
		c.restore = EnableProfileRates()
	}
	return c, nil
}

// Close restores the contention-profile rates. It does not abort an
// in-flight phase; call EndPhase first.
func (c *Capturer) Close() {
	if c.restore != nil {
		c.restore()
		c.restore = nil
	}
}

// Hotspots returns the aggregation over every phase captured so far.
func (c *Capturer) Hotspots() *HotspotSet { return &c.hotspots }

// StartPhase begins capture for one named phase: snapshots the
// cumulative local profiles as deltas' baselines, starts the in-process
// CPU profile (refusing to stack on a concurrent one), and kicks off
// the remote CPU fetches so they sample the phase itself.
func (c *Capturer) StartPhase(name string) error {
	if c.phase != "" {
		return fmt.Errorf("prof: phase %q still capturing; one CPU profile per process", c.phase)
	}
	slug := fileSlug(name)

	baseline := make(map[string]*Profile)
	for _, kind := range c.localKinds() {
		p, err := lookupProfile(kind)
		if err != nil {
			return err
		}
		baseline[kind] = p
	}

	f, err := os.Create(filepath.Join(c.dir, "cpu_"+slug+".pb.gz"))
	if err != nil {
		return fmt.Errorf("prof: cpu profile file: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		os.Remove(f.Name())
		return fmt.Errorf("prof: cannot start CPU profile for phase %q: %w (a CPU profile is already active — only one per process; is something scraping /debug/pprof/profile concurrently?)", name, err)
	}

	remoteBase := make(map[string]*Profile)
	cpuFetch := make(map[string]chan fetchResult)
	for _, r := range c.remotes {
		data, err := c.fetch(r.Addr, "/debug/pprof/heap?gc=1", 15*time.Second)
		if err != nil {
			c.abortCPU(f)
			return fmt.Errorf("prof: heap baseline from %q: %w", r.Name, err)
		}
		p, err := Parse(data)
		if err != nil {
			c.abortCPU(f)
			return fmt.Errorf("prof: heap baseline from %q: %w", r.Name, err)
		}
		remoteBase[r.Name] = p
		ch := make(chan fetchResult, 1)
		addr := r.Addr
		go func() {
			data, err := c.fetch(addr, fmt.Sprintf("/debug/pprof/profile?seconds=%d", c.cpuSec),
				time.Duration(c.cpuSec)*time.Second+30*time.Second)
			ch <- fetchResult{data: data, err: err}
		}()
		cpuFetch[r.Name] = ch
	}

	c.phase, c.fileSlug, c.cpuFile = name, slug, f
	c.baseline, c.remoteBase, c.cpuFetch = baseline, remoteBase, cpuFetch
	return nil
}

// abortCPU unwinds a half-started phase.
func (c *Capturer) abortCPU(f *os.File) {
	pprof.StopCPUProfile()
	f.Close()
	os.Remove(f.Name())
}

// EndPhase stops the phase's capture, writes every profile artifact,
// folds the parsed profiles into the hotspot aggregation, and returns
// the files written (for manifest indexing). The remote CPU fetches are
// awaited here — a phase shorter than RemoteCPUSeconds blocks until the
// remote sampling window closes.
func (c *Capturer) EndPhase() ([]CapturedFile, error) {
	if c.phase == "" {
		return nil, fmt.Errorf("prof: EndPhase without StartPhase")
	}
	phase, slug := c.phase, c.fileSlug
	defer func() {
		c.phase, c.fileSlug, c.cpuFile = "", "", nil
		c.baseline, c.remoteBase, c.cpuFetch = nil, nil, nil
	}()

	var files []CapturedFile

	pprof.StopCPUProfile()
	if err := c.cpuFile.Close(); err != nil {
		return nil, fmt.Errorf("prof: cpu profile: %w", err)
	}
	cpuName := "cpu_" + slug + ".pb.gz"
	data, err := os.ReadFile(filepath.Join(c.dir, cpuName))
	if err != nil {
		return nil, fmt.Errorf("prof: cpu profile: %w", err)
	}
	cpuProf, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("prof: cpu profile for %s: %w", phase, err)
	}
	c.hotspots.AddCPU(phase, "proc", cpuProf)
	files = append(files, CapturedFile{Name: cpuName, Phase: phase, Source: "proc",
		Desc: "in-process CPU profile spanning the " + phase + " phase (go tool pprof)"})

	for _, kind := range c.localKinds() {
		post, err := lookupProfile(kind)
		if err != nil {
			return nil, err
		}
		delta := post.Sub(c.baseline[kind])
		name := profileFileName(kind, slug, "")
		if err := c.writeProfile(name, delta); err != nil {
			return nil, err
		}
		if kind == "allocs" {
			c.hotspots.AddAlloc(phase, "proc", delta)
		}
		files = append(files, CapturedFile{Name: name, Phase: phase, Source: "proc",
			Desc: "in-process " + kindDesc(kind) + " delta profile for the " + phase + " phase"})
	}

	for _, r := range c.remotes {
		res := <-c.cpuFetch[r.Name]
		if res.err != nil {
			return nil, fmt.Errorf("prof: cpu profile from %q: %w", r.Name, res.err)
		}
		name := "cpu_" + slug + "_" + fileSlug(r.Name) + ".pb.gz"
		if err := os.WriteFile(filepath.Join(c.dir, name), res.data, 0o644); err != nil {
			return nil, fmt.Errorf("prof: %s: %w", name, err)
		}
		p, err := Parse(res.data)
		if err != nil {
			return nil, fmt.Errorf("prof: cpu profile from %q: %w", r.Name, err)
		}
		c.hotspots.AddCPU(phase, r.Name, p)
		files = append(files, CapturedFile{Name: name, Phase: phase, Source: r.Name,
			Desc: fmt.Sprintf("CPU profile of daemon %q (%ds sample) during the %s phase", r.Name, c.cpuSec, phase)})

		heapData, err := c.fetch(r.Addr, "/debug/pprof/heap?gc=1", 15*time.Second)
		if err != nil {
			return nil, fmt.Errorf("prof: heap profile from %q: %w", r.Name, err)
		}
		post, err := Parse(heapData)
		if err != nil {
			return nil, fmt.Errorf("prof: heap profile from %q: %w", r.Name, err)
		}
		delta := post.Sub(c.remoteBase[r.Name])
		name = profileFileName("allocs", slug, fileSlug(r.Name))
		if err := c.writeProfile(name, delta); err != nil {
			return nil, err
		}
		c.hotspots.AddAlloc(phase, r.Name, delta)
		files = append(files, CapturedFile{Name: name, Phase: phase, Source: r.Name,
			Desc: fmt.Sprintf("allocation delta profile of daemon %q for the %s phase", r.Name, phase)})
	}
	return files, nil
}

// localKinds lists the cumulative local profiles captured per phase.
func (c *Capturer) localKinds() []string {
	if c.rates {
		return append(append([]string(nil), baseKinds...), rateKinds...)
	}
	return baseKinds
}

// profileFileName maps (kind, phase, source) to the artifact name:
// heap_evaluation.pb.gz, mutex_evaluation.pb.gz,
// heap_evaluation_db0.pb.gz.
func profileFileName(kind, slug, source string) string {
	base := kind
	if kind == "allocs" {
		base = "heap"
	}
	if source != "" {
		return base + "_" + slug + "_" + source + ".pb.gz"
	}
	return base + "_" + slug + ".pb.gz"
}

func kindDesc(kind string) string {
	switch kind {
	case "allocs":
		return "allocation (alloc_space/alloc_objects)"
	case "mutex":
		return "mutex contention"
	case "block":
		return "blocking (channel/mutex wait)"
	default:
		return kind
	}
}

func (c *Capturer) writeProfile(name string, p *Profile) error {
	data, err := Encode(p)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(c.dir, name), data, 0o644); err != nil {
		return fmt.Errorf("prof: %s: %w", name, err)
	}
	return nil
}

// lookupProfile captures a named cumulative runtime profile (allocs,
// mutex, block) and parses it. For allocs a GC runs first: the runtime
// publishes allocation samples to the profile only at GC-cycle
// boundaries, so without one the delta misses everything allocated
// since the last collection.
func lookupProfile(kind string) (*Profile, error) {
	lp := pprof.Lookup(kind)
	if lp == nil {
		return nil, fmt.Errorf("prof: no runtime profile named %q", kind)
	}
	if kind == "allocs" {
		runtime.GC()
	}
	var buf bytes.Buffer
	if err := lp.WriteTo(&buf, 0); err != nil {
		return nil, fmt.Errorf("prof: capture %s profile: %w", kind, err)
	}
	p, err := Parse(buf.Bytes())
	if err != nil {
		return nil, fmt.Errorf("prof: parse %s profile: %w", kind, err)
	}
	return p, nil
}

// fetch GETs a debug endpoint with a per-request timeout.
func (c *Capturer) fetch(addr, path string, timeout time.Duration) ([]byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxDecompressed))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		snippet := string(body)
		if len(snippet) > 120 {
			snippet = snippet[:120]
		}
		return nil, fmt.Errorf("%s: HTTP %d: %s", path, resp.StatusCode, strings.TrimSpace(snippet))
	}
	return body, nil
}

// fileSlug makes a phase or source name filename-safe.
func fileSlug(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r - 'A' + 'a')
		default:
			b.WriteRune('-')
		}
	}
	return b.String()
}

//go:build unix

package prof

import (
	"syscall"
	"time"
)

// processCPU returns the process's cumulative CPU time, user plus
// system, via getrusage — a true "cycles burned" meter, unlike the
// runtime's /cpu/classes estimates, which are GC-cycle granular and
// include idle capacity.
func processCPU() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return tvDuration(ru.Utime) + tvDuration(ru.Stime)
}

func tvDuration(tv syscall.Timeval) time.Duration {
	return time.Duration(tv.Sec)*time.Second + time.Duration(tv.Usec)*time.Microsecond
}

package prof

import (
	"bytes"
	"compress/gzip"
	"io"
	"runtime/pprof"
	"strings"
	"testing"
)

// captureAllocs grabs this process's cumulative allocation profile via
// the runtime — a "golden" input in the sense that it exercises the
// real encoder the parser must understand, on every Go version the
// tests run under.
func captureAllocs(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := pprof.Lookup("allocs").WriteTo(&buf, 0); err != nil {
		t.Fatalf("capture allocs profile: %v", err)
	}
	return buf.Bytes()
}

func TestParseRealAllocsProfile(t *testing.T) {
	// Make sure there is something to see.
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 64<<10))
	}
	_ = sink

	p, err := Parse(captureAllocs(t))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(p.SampleTypes) == 0 || len(p.Samples) == 0 || len(p.Locations) == 0 || len(p.Functions) == 0 {
		t.Fatalf("empty profile: %d types, %d samples, %d locations, %d functions",
			len(p.SampleTypes), len(p.Samples), len(p.Locations), len(p.Functions))
	}
	idx := p.ValueIndex("alloc_space")
	if idx < 0 {
		t.Fatalf("no alloc_space dimension in %v", p.SampleTypes)
	}
	if p.Total(idx) <= 0 {
		t.Fatal("zero total alloc_space")
	}
	// Every sample's locations must resolve, and at least one stack must
	// mention a real function from this test binary.
	var sawTesting bool
	for _, s := range p.Samples {
		for _, id := range s.LocationIDs {
			if _, ok := p.Locations[id]; !ok {
				t.Fatalf("sample references unknown location %d", id)
			}
		}
	}
	for _, fn := range p.Functions {
		if strings.HasPrefix(fn.Name, "testing.") {
			sawTesting = true
			break
		}
	}
	if !sawTesting {
		t.Error("no testing.* function resolved — string table mis-parsed?")
	}
}

func TestEncodeRoundTrip(t *testing.T) {
	p, err := Parse(captureAllocs(t))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	data, err := Encode(p)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	q, err := Parse(data)
	if err != nil {
		t.Fatalf("re-Parse: %v", err)
	}
	if len(q.Samples) != len(p.Samples) {
		t.Fatalf("samples: %d != %d", len(q.Samples), len(p.Samples))
	}
	for i, st := range p.SampleTypes {
		if q.SampleTypes[i] != st {
			t.Fatalf("sample type %d: %v != %v", i, q.SampleTypes[i], st)
		}
	}
	for i := range p.SampleTypes {
		if q.Total(i) != p.Total(i) {
			t.Fatalf("total[%d]: %d != %d", i, q.Total(i), p.Total(i))
		}
	}
	// Per-function flat values must survive the round trip exactly.
	idx := p.ValueIndex("alloc_space")
	want := p.FlatByFunction(idx, -1)
	got := q.FlatByFunction(idx, -1)
	if len(want) != len(got) {
		t.Fatalf("flat rows: %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Function != want[i].Function || got[i].Flat != want[i].Flat {
			t.Fatalf("flat[%d]: %+v != %+v", i, got[i], want[i])
		}
	}
	if q.TimeNanos != p.TimeNanos || q.Period != p.Period || q.PeriodType != p.PeriodType {
		t.Fatalf("metadata: %+v vs %+v", q, p)
	}
}

// TestParseTruncated feeds every prefix of a real profile to the
// parser: none may panic or over-read; each must either error or
// produce a profile.
func TestParseTruncated(t *testing.T) {
	gz := captureAllocs(t)
	zr, err := gzip.NewReader(bytes.NewReader(gz))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	// Raw proto prefixes hit the protobuf decoder's bounds checks;
	// gzipped prefixes hit the decompression framing. Both must fail
	// cleanly, never panic or over-read.
	for name, data := range map[string][]byte{"gzipped": gz, "raw": raw} {
		if len(data) > 4096 {
			data = data[:4096] // bound test time; plenty of prefixes
		}
		for n := 0; n < len(data); n++ {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s: panic at prefix %d: %v", name, n, r)
					}
				}()
				_, _ = Parse(data[:n])
			}()
		}
	}
}

func TestParseCorrupt(t *testing.T) {
	cases := map[string][]byte{
		"empty":         {},
		"garbage":       []byte("this is not a profile at all, not even close"),
		"gzip magic":    {0x1f, 0x8b},
		"truncated tag": {0x0a},
		// A length-delimited field claiming more bytes than exist.
		"overlong len": {0x0a, 0xff, 0xff, 0xff, 0x7f, 0x00},
		// Varint that never terminates.
		"runaway varint": {0x08, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80},
	}
	for name, data := range cases {
		if _, err := Parse(data); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestSubDelta(t *testing.T) {
	base := syntheticProfile(map[uint64][]int64{
		0x100: {10, 1000},
		0x200: {5, 500},
	})
	post := syntheticProfile(map[uint64][]int64{
		0x100: {15, 1500}, // grew by 5/500
		0x200: {5, 500},   // unchanged -> dropped
		0x300: {7, 700},   // new stack
	})
	d := post.Sub(base)
	if len(d.Samples) != 2 {
		t.Fatalf("delta samples = %d, want 2", len(d.Samples))
	}
	byAddr := map[uint64][]int64{}
	for _, s := range d.Samples {
		byAddr[d.Locations[s.LocationIDs[0]].Address] = s.Values
	}
	if v := byAddr[0x100]; len(v) != 2 || v[0] != 5 || v[1] != 500 {
		t.Errorf("grown stack delta = %v", v)
	}
	if v := byAddr[0x300]; len(v) != 2 || v[0] != 7 || v[1] != 700 {
		t.Errorf("new stack delta = %v", v)
	}
	// Shrinking (e.g. a counter reset) clamps to zero, never negative.
	shrunk := syntheticProfile(map[uint64][]int64{0x100: {1, 100}})
	d = shrunk.Sub(base)
	for _, s := range d.Samples {
		for _, v := range s.Values {
			if v < 0 {
				t.Fatalf("negative delta value %d", v)
			}
		}
	}
}

// syntheticProfile builds a two-dimension profile with one
// single-location stack per address.
func syntheticProfile(stacks map[uint64][]int64) *Profile {
	p := &Profile{
		SampleTypes: []ValueType{{Type: "objects", Unit: "count"}, {Type: "space", Unit: "bytes"}},
		Locations:   map[uint64]*Location{},
		Functions:   map[uint64]*Function{},
	}
	id := uint64(1)
	for addr, values := range stacks {
		p.Functions[id] = &Function{ID: id, Name: "fn_" + hexAddr(addr), File: "synthetic.go"}
		p.Locations[id] = &Location{ID: id, Address: addr, Lines: []Line{{FunctionID: id, Line: 1}}}
		p.Samples = append(p.Samples, Sample{LocationIDs: []uint64{id}, Values: append([]int64(nil), values...)})
		id++
	}
	return p
}

func hexAddr(a uint64) string {
	const digits = "0123456789abcdef"
	buf := make([]byte, 0, 16)
	for a > 0 {
		buf = append([]byte{digits[a&0xf]}, buf...)
		a >>= 4
	}
	return string(buf)
}

package obs

import (
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("Counter not stable across lookups")
	}
	if r.Gauge("a") != r.Gauge("a") {
		t.Fatal("Gauge not stable across lookups")
	}
	if r.Histogram("a") != r.Histogram("a") {
		t.Fatal("Histogram not stable across lookups")
	}
}

// TestRegistrySnapshotConcurrent hammers a registry from many writers
// while snapshots are taken; run under -race this is the data-race
// check, and the final snapshot must account for every write.
func TestRegistrySnapshotConcurrent(t *testing.T) {
	r := NewRegistry()
	const writers = 8
	const perWriter = 2000

	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() { // concurrent reader
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := r.Snapshot()
			_ = snap.Sub(snap)
			var sb strings.Builder
			_ = snap.WriteText(&sb)
		}
	}()
	var writersWG sync.WaitGroup
	for i := 0; i < writers; i++ {
		writersWG.Add(1)
		go func(i int) {
			defer writersWG.Done()
			c := r.Counter("ops")
			g := r.Gauge("level")
			h := r.Histogram("lat")
			for j := 0; j < perWriter; j++ {
				c.Inc()
				g.Set(int64(j))
				h.Observe(time.Duration(j) * time.Microsecond)
			}
		}(i)
	}
	writersWG.Wait()
	close(stop)
	reader.Wait()

	snap := r.Snapshot()
	if got := snap.Counters["ops"]; got != writers*perWriter {
		t.Fatalf("ops = %d, want %d", got, writers*perWriter)
	}
	h := snap.Histograms["lat"]
	if h.Count != writers*perWriter {
		t.Fatalf("hist count = %d, want %d", h.Count, writers*perWriter)
	}
}

func TestSnapshotSubDropsIdleMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("busy").Add(3)
	r.Counter("idle").Add(1)
	r.Histogram("h").Observe(time.Millisecond)
	before := r.Snapshot()
	r.Counter("busy").Add(2)
	diff := r.Snapshot().Sub(before)
	if got := diff.Counters["busy"]; got != 2 {
		t.Fatalf("busy = %d, want 2", got)
	}
	if _, ok := diff.Counters["idle"]; ok {
		t.Fatal("idle counter should be dropped from diff")
	}
	if _, ok := diff.Histograms["h"]; ok {
		t.Fatal("idle histogram should be dropped from diff")
	}
}

func TestSnapshotWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(7)
	r.Counter("a.count").Add(1)
	r.Gauge("depth").Set(-2)
	r.Histogram("lat").Observe(3 * time.Millisecond)
	var sb strings.Builder
	if err := r.Snapshot().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"counter a.count 1",
		"counter b.count 7",
		"gauge depth -2",
		"hist lat count=1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Counters render sorted.
	if strings.Index(out, "a.count") > strings.Index(out, "b.count") {
		t.Fatalf("counters not sorted:\n%s", out)
	}
}

// TestRegistryDiffConcurrentWriters hammers every metric kind from
// writer goroutines while a reader repeatedly diffs the registry; run
// under -race this proves Diff takes internally-consistent snapshots,
// and the monotonicity assertions prove diffs never go negative (the
// clamp in Sub) even when writers land between the two sides.
func TestRegistryDiffConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("race.counter")
			g := r.Gauge("race.gauge")
			h := r.Histogram("race.hist")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Add(1)
				h.Observe(time.Duration(i%100) * time.Microsecond)
				// Churn metric creation too, so Diff races the maps,
				// not just the values.
				r.Counter("race.churn." + strconv.Itoa(w))
			}
		}(w)
	}

	base := r.Snapshot()
	var lastCount uint64
	for i := 0; i < 200; i++ {
		d := r.Diff(base)
		if c := d.Counters["race.counter"]; c < lastCount {
			t.Fatalf("diff went backwards: %d then %d", lastCount, c)
		} else {
			lastCount = c
		}
		if h, ok := d.Histograms["race.hist"]; ok && h.Sum < 0 {
			t.Fatalf("negative histogram sum in diff: %v", h.Sum)
		}
	}
	close(stop)
	wg.Wait()

	// With writers quiesced the diff must account exactly for what
	// happened since base.
	final := r.Diff(base)
	if final.Counters["race.counter"] != r.Counter("race.counter").Value() {
		t.Fatalf("settled diff %d != counter value %d",
			final.Counters["race.counter"], r.Counter("race.counter").Value())
	}
}

func TestRegistryNumMetrics(t *testing.T) {
	r := NewRegistry()
	if r.NumMetrics() != 0 {
		t.Fatalf("empty registry NumMetrics = %d", r.NumMetrics())
	}
	r.Counter("a")
	r.Gauge("b")
	r.Histogram("c")
	r.Counter("a") // get, not create
	if got := r.NumMetrics(); got != 3 {
		t.Fatalf("NumMetrics = %d, want 3", got)
	}
}

package obs

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Trace IDs are minted once per client interaction at the edge of the
// system and ride along the context; the wire transport copies them
// into an optional frame-header field so they cross process boundaries.
// Span IDs are process-local.
type (
	traceKey struct{}
	spanKey  struct{}
	opKey    struct{}
	laneKey  struct{}
)

// WithOp returns ctx labeled with the logical operation being served
// (a trade action name like "buy"). Forensic events attribute
// themselves to the operation, so conflict matrices can break aborts
// down by interaction type. An empty op returns ctx unchanged.
func WithOp(ctx context.Context, op string) context.Context {
	if op == "" {
		return ctx
	}
	return context.WithValue(ctx, opKey{}, op)
}

// Op extracts the context's operation label ("" if none).
func Op(ctx context.Context) string {
	op, _ := ctx.Value(opKey{}).(string)
	return op
}

// WithLane returns ctx labeled with a lane — a sub-tier grouping key
// recorded on every span started under it (the shard router lanes each
// participant call as "shard<i>"). Critical-path attribution groups by
// lane, and spans recorded on the far side of a wire hop inherit the
// nearest laned ancestor's lane at attribution time, so the lane set at
// the coordinator covers the participant's whole subtree. An empty lane
// returns ctx unchanged.
func WithLane(ctx context.Context, lane string) context.Context {
	if lane == "" {
		return ctx
	}
	return context.WithValue(ctx, laneKey{}, lane)
}

// Lane extracts the context's lane label ("" if none).
func Lane(ctx context.Context) string {
	lane, _ := ctx.Value(laneKey{}).(string)
	return lane
}

// traceIDs and spanIDs are seeded at init with the wall clock so IDs
// from separately started processes (the daemons of a distributed
// deployment) do not collide in a merged span log. Span IDs must be
// distinct across processes too: trace assembly joins spans from every
// tier by (trace, span, parent), and a collision would graft one
// process's subtree onto another's.
var traceIDs, spanIDs atomic.Uint64

func init() {
	now := uint64(time.Now().UnixNano())
	traceIDs.Store(now << 16)
	spanIDs.Store(now)
}

// processTier names the tier of spans whose name prefix is not in the
// built-in table (see TierOf). Daemons set it once at startup.
var processTier atomic.Pointer[string]

// SetTier names this process's tier ("edge", "backend", "db", "proxy")
// for spans whose name prefix TierOf does not recognize. The built-in
// prefix table takes precedence, so in-process harness runs — where
// every tier shares one process — still label each span by the package
// that recorded it.
func SetTier(tier string) { processTier.Store(&tier) }

// tierByPrefix maps a span name's prefix (the segment before the first
// dot) to the tier that code runs in. slicache runs inside the edge
// application server; sqlstore and lockmgr run inside the database
// server.
var tierByPrefix = map[string]string{
	"client":   "client",
	"edge":     "edge",
	"slicache": "edge",
	"shard":    "edge",
	"backend":  "backend",
	"sqlstore": "db",
	"lockmgr":  "db",
}

// TierOf resolves the tier label recorded on spans named name: the
// built-in prefix table first, then the process tier set by SetTier,
// then "proc".
func TierOf(name string) string {
	prefix := name
	if i := strings.IndexByte(name, '.'); i >= 0 {
		prefix = name[:i]
	}
	if t, ok := tierByPrefix[prefix]; ok {
		return t
	}
	if p := processTier.Load(); p != nil && *p != "" {
		return *p
	}
	return "proc"
}

// NewTraceID mints a fresh nonzero trace ID.
func NewTraceID() uint64 {
	for {
		if id := traceIDs.Add(1); id != 0 {
			return id
		}
	}
}

// WithTrace returns ctx carrying the given trace ID. A zero ID returns
// ctx unchanged (zero means "no trace").
func WithTrace(ctx context.Context, id uint64) context.Context {
	if id == 0 {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, id)
}

// WithNewTrace plants a fresh trace ID in ctx and returns both.
func WithNewTrace(ctx context.Context) (context.Context, uint64) {
	id := NewTraceID()
	return context.WithValue(ctx, traceKey{}, id), id
}

// TraceID extracts the context's trace ID (zero if none).
func TraceID(ctx context.Context) uint64 {
	id, _ := ctx.Value(traceKey{}).(uint64)
	return id
}

// SpanID extracts the context's current span ID (zero if none). The
// wire transport copies it into the frame header so a server-side span
// parents under the client-side span that made the call.
func SpanID(ctx context.Context) uint64 {
	id, _ := ctx.Value(spanKey{}).(uint64)
	return id
}

// WithRemoteParent returns ctx carrying a trace and parent span that
// arrived from another process (the wire server plants the frame
// header's IDs with it). A zero trace returns ctx unchanged; a zero
// parent plants only the trace, so the first server-side span becomes a
// local root within the trace.
func WithRemoteParent(ctx context.Context, trace, parent uint64) context.Context {
	if trace == 0 {
		return ctx
	}
	ctx = context.WithValue(ctx, traceKey{}, trace)
	if parent != 0 {
		ctx = context.WithValue(ctx, spanKey{}, parent)
	}
	return ctx
}

// Span is one timed hop of a traced interaction. A nil *Span (returned
// by StartSpan on an untraced context) is valid and End on it is a
// no-op, so call sites need no conditionals.
type Span struct {
	rec SpanRecord
}

// StartSpan opens a span named name under the context's current span
// and returns the child context callers should pass downward. On a
// context without a trace it returns ctx unchanged and a nil span —
// untraced hot paths pay only the context lookup.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	trace := TraceID(ctx)
	if trace == 0 {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanKey{}).(uint64)
	s := &Span{rec: SpanRecord{
		Trace:  trace,
		Span:   spanIDs.Add(1),
		Parent: parent,
		Name:   name,
		Tier:   TierOf(name),
		Lane:   Lane(ctx),
		Start:  time.Now(),
	}}
	return context.WithValue(ctx, spanKey{}, s.rec.Span), s
}

// End closes the span: its duration feeds the "span.<name>" histogram
// in the Default registry and its record lands in DefaultSpans.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.rec.Dur = time.Since(s.rec.Start)
	// ObserveTrace keeps the trace ID of the extreme observation as the
	// histogram's exemplar, so a slow Prometheus bucket links back to a
	// concrete trace in the span log.
	Default.Histogram("span."+s.rec.Name).ObserveTrace(s.rec.Dur, s.rec.Trace)
	DefaultSpans.add(s.rec)
}

// SpanRecord is one finished span. Parent is the span this one ran
// under — a span ID from the same process, or, for the first span a
// request opens on the far side of a wire hop, the calling process's
// span ID carried in the frame header. Tier labels where the span ran
// (see TierOf), so trace assembly can lay one interaction out across
// client, edge, backend, and db lanes.
type SpanRecord struct {
	Trace  uint64 `json:"trace"`
	Span   uint64 `json:"span"`
	Parent uint64 `json:"parent,omitempty"`
	Name   string `json:"name"`
	Tier   string `json:"tier,omitempty"`
	// Lane is an optional sub-tier grouping key (see WithLane); the
	// shard router sets "shard<i>" on per-participant commit-path spans.
	Lane  string        `json:"lane,omitempty"`
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"dur_ns"`
}

// SpanLog is a bounded ring of recently finished spans — enough to
// reconstruct recent interactions without unbounded memory. The zero
// capacity of a NewSpanLog(0) defaults to 4096 records. Once the ring
// wraps, each new span silently evicts the oldest; the eviction is
// counted (per log, and in the process-wide `obs.spans.dropped`
// counter) so trace assembly can report incomplete traces instead of
// pretending completeness.
type SpanLog struct {
	mu      sync.Mutex
	ring    []SpanRecord
	next    int
	full    bool
	dropped uint64
}

// obsSpansDropped counts spans evicted from any SpanLog in this process
// before being read; documented in OBSERVABILITY.md.
var obsSpansDropped = Default.Counter("obs.spans.dropped")

// DefaultSpans is the process-wide span log; Span.End records into it
// and the /debug/spans endpoint serves it.
var DefaultSpans = NewSpanLog(4096)

// NewSpanLog returns a ring holding the last n spans (4096 if n <= 0).
func NewSpanLog(n int) *SpanLog {
	if n <= 0 {
		n = 4096
	}
	return &SpanLog{ring: make([]SpanRecord, n)}
}

func (l *SpanLog) add(rec SpanRecord) {
	l.mu.Lock()
	if l.full {
		l.dropped++
		obsSpansDropped.Inc()
	}
	l.ring[l.next] = rec
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
		l.full = true
	}
	l.mu.Unlock()
}

// Dropped returns how many spans this log has evicted unread — nonzero
// means traces assembled from the log may be missing hops.
func (l *SpanLog) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// snapshot copies the ring oldest-first.
func (l *SpanLog) snapshot() []SpanRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []SpanRecord
	if l.full {
		out = append(out, l.ring[l.next:]...)
	}
	out = append(out, l.ring[:l.next]...)
	return out
}

// Trace returns every logged span of one trace, sorted by start time.
func (l *SpanLog) Trace(id uint64) []SpanRecord {
	all := l.snapshot()
	out := all[:0:0]
	for _, r := range all {
		if r.Trace == id {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Since returns every logged span that started at or after t, oldest
// first — the incremental-drain primitive behind /debug/spans?since=
// and the trace collector's polling.
func (l *SpanLog) Since(t time.Time) []SpanRecord {
	all := l.snapshot()
	out := all[:0:0]
	for _, r := range all {
		if !r.Start.Before(t) {
			out = append(out, r)
		}
	}
	return out
}

// Recent returns the last n finished spans, oldest first.
func (l *SpanLog) Recent(n int) []SpanRecord {
	all := l.snapshot()
	if n > 0 && len(all) > n {
		all = all[len(all)-n:]
	}
	return all
}

// LastTrace returns the ID of the most recently finished root span's
// trace (zero when the log is empty) — a convenient handle for "show me
// the latest interaction".
func (l *SpanLog) LastTrace() uint64 {
	all := l.snapshot()
	for i := len(all) - 1; i >= 0; i-- {
		if all[i].Parent == 0 {
			return all[i].Trace
		}
	}
	if len(all) > 0 {
		return all[len(all)-1].Trace
	}
	return 0
}

// WriteTrace renders one trace as an indented tree with per-hop
// durations and offsets from the trace's first span:
//
//	trace 42 (2 spans, 3.1ms)
//	  +0s       client.interaction  3.1ms
//	    +0.2ms  edge.request        2.7ms
func WriteTrace(w io.Writer, spans []SpanRecord) error {
	if len(spans) == 0 {
		_, err := fmt.Fprintln(w, "trace: no spans")
		return err
	}
	t0 := spans[0].Start
	var total time.Duration
	for _, s := range spans {
		if end := s.Start.Add(s.Dur).Sub(t0); end > total {
			total = end
		}
	}
	if _, err := fmt.Fprintf(w, "trace %d (%d spans, %s)\n",
		spans[0].Trace, len(spans), fmtDur(total)); err != nil {
		return err
	}
	depth := make(map[uint64]int, len(spans))
	byID := make(map[uint64]SpanRecord, len(spans))
	for _, s := range spans {
		byID[s.Span] = s
	}
	var depthOf func(id uint64) int
	depthOf = func(id uint64) int {
		if d, ok := depth[id]; ok {
			return d
		}
		s, ok := byID[id]
		if !ok || s.Parent == 0 {
			depth[id] = 0
			return 0
		}
		depth[id] = -1 // cycle guard while recursing
		d := depthOf(s.Parent) + 1
		if d <= 0 {
			d = 0
		}
		depth[id] = d
		return d
	}
	for _, s := range spans {
		indent := 2 * (depthOf(s.Span) + 1)
		if _, err := fmt.Fprintf(w, "%*s+%-9s %-24s %s\n",
			indent, "", fmtDur(s.Start.Sub(t0)), s.Name, fmtDur(s.Dur)); err != nil {
			return err
		}
	}
	return nil
}

package obs

import (
	"strings"
	"testing"
	"time"
)

func TestSamplerManualSamples(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("s.count")
	h := r.Histogram("s.lat")
	s := NewSampler(r, time.Hour, 8) // ticker never fires; we drive it

	c.Inc()
	s.SampleNow()
	c.Inc()
	h.Observe(3 * time.Millisecond)
	s.SampleNow()

	got := s.Samples()
	if len(got) != 2 {
		t.Fatalf("got %d samples, want 2", len(got))
	}
	if got[0].Snap.Counters["s.count"] != 1 || got[1].Snap.Counters["s.count"] != 2 {
		t.Fatalf("counter series = %d,%d; want 1,2",
			got[0].Snap.Counters["s.count"], got[1].Snap.Counters["s.count"])
	}
	if !got[0].T.Before(got[1].T) && !got[0].T.Equal(got[1].T) {
		t.Fatalf("samples out of order: %v then %v", got[0].T, got[1].T)
	}
	if got[1].Snap.Histograms["s.lat"].Count != 1 {
		t.Fatalf("histogram missing from second sample")
	}
}

func TestSamplerRingOverwrite(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ring.count")
	s := NewSampler(r, time.Hour, 3)
	for i := 0; i < 5; i++ {
		c.Inc()
		s.SampleNow()
	}
	got := s.Samples()
	if len(got) != 3 {
		t.Fatalf("got %d samples, want ring capacity 3", len(got))
	}
	// The ring keeps the newest samples: counter values 3, 4, 5.
	for i, want := range []uint64{3, 4, 5} {
		if v := got[i].Snap.Counters["ring.count"]; v != want {
			t.Fatalf("sample %d counter = %d, want %d", i, v, want)
		}
	}
}

func TestSamplerStartStop(t *testing.T) {
	r := NewRegistry()
	s := NewSampler(r, time.Hour, 16)
	s.Start()
	s.Start() // idempotent
	s.Stop()
	s.Stop() // idempotent
	// Immediate first sample + final sample on stop.
	if n := len(s.Samples()); n < 2 {
		t.Fatalf("got %d samples after Start/Stop, want >= 2", n)
	}
}

func TestSamplesBetween(t *testing.T) {
	r := NewRegistry()
	s := NewSampler(r, time.Hour, 8)
	s.SampleNow()
	all := s.Samples()
	cut := all[0].T

	if got := s.SamplesBetween(time.Time{}, time.Time{}); len(got) != 1 {
		t.Fatalf("unbounded = %d samples, want 1", len(got))
	}
	if got := s.SamplesBetween(cut, time.Time{}); len(got) != 1 {
		t.Fatalf("from is inclusive: got %d, want 1", len(got))
	}
	if got := s.SamplesBetween(time.Time{}, cut); len(got) != 0 {
		t.Fatalf("to is exclusive: got %d, want 0", len(got))
	}
	if got := s.SamplesBetween(cut.Add(time.Second), time.Time{}); len(got) != 0 {
		t.Fatalf("future from: got %d, want 0", len(got))
	}
}

func TestWriteSamplesCSV(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.count").Add(7)
	r.Gauge("a.gauge").Set(-2)
	r.Histogram("m.lat").Observe(2 * time.Millisecond)
	s := NewSampler(r, time.Hour, 4)
	s.SampleNow()

	var b strings.Builder
	if err := WriteSamplesCSV(&b, s.Samples()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "t_unix_ms,kind,name,value,count,sum_ns,p50_ns,p95_ns,p99_ns,max_ns" {
		t.Fatalf("bad header: %q", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want header + 3 rows:\n%s", len(lines), b.String())
	}
	// One row per metric: counters, then gauges, then histograms.
	if !strings.Contains(lines[1], ",counter,z.count,7,") {
		t.Fatalf("bad counter row: %q", lines[1])
	}
	if !strings.Contains(lines[2], ",gauge,a.gauge,-2,") {
		t.Fatalf("bad gauge row: %q", lines[2])
	}
	if !strings.Contains(lines[3], ",hist,m.lat,,1,") {
		t.Fatalf("bad histogram row: %q", lines[3])
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("req.total.count").Add(3)
	r.Gauge("conns.open").Set(5)
	r.Histogram("rpc.lat").Observe(2 * time.Millisecond)
	r.Histogram("rpc.lat").Observe(8 * time.Millisecond)

	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE req_total_count_total counter",
		"req_total_count_total 3",
		"# TYPE conns_open gauge",
		"conns_open 5",
		"# TYPE rpc_lat_seconds histogram",
		`rpc_lat_seconds_bucket{le="+Inf"} 2`,
		"rpc_lat_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Buckets must be cumulative and non-decreasing; the 8ms observation
	// must not appear in a bucket below ~8ms.
	if strings.Contains(out, `le="0.001"} 2`) {
		t.Fatalf("8ms observation counted in 1ms bucket:\n%s", out)
	}
	// _sum in seconds: 10ms total.
	if !strings.Contains(out, "rpc_lat_seconds_sum 0.01") {
		t.Fatalf("missing _sum in seconds:\n%s", out)
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"slicache.hits":  "slicache_hits",
		"already_fine":   "already_fine",
		"9starts.digit":  "_starts_digit",
		"with:colon.dot": "with:colon_dot",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestTraceContext(t *testing.T) {
	ctx := context.Background()
	if TraceID(ctx) != 0 {
		t.Fatal("background context should carry no trace")
	}
	ctx2, id := WithNewTrace(ctx)
	if id == 0 || TraceID(ctx2) != id {
		t.Fatalf("WithNewTrace: id=%d, TraceID=%d", id, TraceID(ctx2))
	}
	if WithTrace(ctx, 0) != ctx {
		t.Fatal("WithTrace(0) must be a no-op")
	}
}

func TestStartSpanUntracedIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "noop")
	if sp != nil {
		t.Fatal("span on untraced context must be nil")
	}
	if ctx2 != ctx {
		t.Fatal("untraced StartSpan must return ctx unchanged")
	}
	sp.End() // must not panic
}

func TestSpanParentageAndLog(t *testing.T) {
	log := NewSpanLog(16)
	ctx, id := WithNewTrace(context.Background())
	ctx, root := StartSpan(ctx, "root")
	_, child := StartSpan(ctx, "child")
	time.Sleep(time.Millisecond)
	// Record into a private log to keep the assertion hermetic.
	child.rec.Dur = time.Since(child.rec.Start)
	log.add(child.rec)
	root.rec.Dur = time.Since(root.rec.Start)
	log.add(root.rec)

	spans := log.Trace(id)
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	var rootRec, childRec SpanRecord
	for _, s := range spans {
		switch s.Name {
		case "root":
			rootRec = s
		case "child":
			childRec = s
		}
	}
	if childRec.Parent != rootRec.Span {
		t.Fatalf("child parent = %d, want root span %d", childRec.Parent, rootRec.Span)
	}
	if rootRec.Parent != 0 {
		t.Fatalf("root parent = %d, want 0", rootRec.Parent)
	}

	var sb strings.Builder
	if err := WriteTrace(&sb, spans); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "root") || !strings.Contains(out, "child") {
		t.Fatalf("WriteTrace output missing spans:\n%s", out)
	}
}

func TestSpanEndFeedsDefaultRegistry(t *testing.T) {
	before := Default.Histogram("span.obs_test").Snapshot().Count
	ctx, _ := WithNewTrace(context.Background())
	_, sp := StartSpan(ctx, "obs_test")
	sp.End()
	after := Default.Histogram("span.obs_test").Snapshot().Count
	if after != before+1 {
		t.Fatalf("span histogram count = %d, want %d", after, before+1)
	}
}

func TestSpanLogRingWraps(t *testing.T) {
	log := NewSpanLog(4)
	for i := 1; i <= 10; i++ {
		log.add(SpanRecord{Trace: uint64(i), Span: uint64(i), Name: "s", Start: time.Now()})
	}
	recent := log.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recent))
	}
	if recent[0].Trace != 7 || recent[3].Trace != 10 {
		t.Fatalf("ring order wrong: %+v", recent)
	}
	if log.LastTrace() != 10 {
		t.Fatalf("LastTrace = %d, want 10", log.LastTrace())
	}
}

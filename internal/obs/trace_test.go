package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestTraceContext(t *testing.T) {
	ctx := context.Background()
	if TraceID(ctx) != 0 {
		t.Fatal("background context should carry no trace")
	}
	ctx2, id := WithNewTrace(ctx)
	if id == 0 || TraceID(ctx2) != id {
		t.Fatalf("WithNewTrace: id=%d, TraceID=%d", id, TraceID(ctx2))
	}
	if WithTrace(ctx, 0) != ctx {
		t.Fatal("WithTrace(0) must be a no-op")
	}
}

func TestStartSpanUntracedIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "noop")
	if sp != nil {
		t.Fatal("span on untraced context must be nil")
	}
	if ctx2 != ctx {
		t.Fatal("untraced StartSpan must return ctx unchanged")
	}
	sp.End() // must not panic
}

func TestSpanParentageAndLog(t *testing.T) {
	log := NewSpanLog(16)
	ctx, id := WithNewTrace(context.Background())
	ctx, root := StartSpan(ctx, "root")
	_, child := StartSpan(ctx, "child")
	time.Sleep(time.Millisecond)
	// Record into a private log to keep the assertion hermetic.
	child.rec.Dur = time.Since(child.rec.Start)
	log.add(child.rec)
	root.rec.Dur = time.Since(root.rec.Start)
	log.add(root.rec)

	spans := log.Trace(id)
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	var rootRec, childRec SpanRecord
	for _, s := range spans {
		switch s.Name {
		case "root":
			rootRec = s
		case "child":
			childRec = s
		}
	}
	if childRec.Parent != rootRec.Span {
		t.Fatalf("child parent = %d, want root span %d", childRec.Parent, rootRec.Span)
	}
	if rootRec.Parent != 0 {
		t.Fatalf("root parent = %d, want 0", rootRec.Parent)
	}

	var sb strings.Builder
	if err := WriteTrace(&sb, spans); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "root") || !strings.Contains(out, "child") {
		t.Fatalf("WriteTrace output missing spans:\n%s", out)
	}
}

func TestSpanEndFeedsDefaultRegistry(t *testing.T) {
	before := Default.Histogram("span.obs_test").Snapshot().Count
	ctx, _ := WithNewTrace(context.Background())
	_, sp := StartSpan(ctx, "obs_test")
	sp.End()
	after := Default.Histogram("span.obs_test").Snapshot().Count
	if after != before+1 {
		t.Fatalf("span histogram count = %d, want %d", after, before+1)
	}
}

func TestSpanLogRingWraps(t *testing.T) {
	log := NewSpanLog(4)
	for i := 1; i <= 10; i++ {
		log.add(SpanRecord{Trace: uint64(i), Span: uint64(i), Name: "s", Start: time.Now()})
	}
	recent := log.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recent))
	}
	if recent[0].Trace != 7 || recent[3].Trace != 10 {
		t.Fatalf("ring order wrong: %+v", recent)
	}
	if log.LastTrace() != 10 {
		t.Fatalf("LastTrace = %d, want 10", log.LastTrace())
	}
}

func TestSpanTierLabels(t *testing.T) {
	ctx, _ := WithNewTrace(context.Background())
	for name, tier := range map[string]string{
		"client.interaction": "client",
		"edge.request":       "edge",
		"slicache.commit":    "edge",
		"backend.apply":      "backend",
		"sqlstore.apply":     "db",
	} {
		_, sp := StartSpan(ctx, name)
		sp.End()
		if sp.rec.Tier != tier {
			t.Errorf("span %q tier = %q, want %q", name, sp.rec.Tier, tier)
		}
	}
	if got := TierOf("mystery.op"); got != "proc" {
		t.Errorf("unknown prefix tier = %q, want proc", got)
	}
}

func TestWithRemoteParent(t *testing.T) {
	ctx := WithRemoteParent(context.Background(), 0, 99)
	if TraceID(ctx) != 0 || SpanID(ctx) != 0 {
		t.Fatal("zero trace must be a no-op")
	}
	ctx = WithRemoteParent(context.Background(), 42, 99)
	if TraceID(ctx) != 42 || SpanID(ctx) != 99 {
		t.Fatalf("remote parent: trace=%d span=%d, want 42/99", TraceID(ctx), SpanID(ctx))
	}
	// The first span opened under a remote parent inherits it.
	_, sp := StartSpan(ctx, "edge.request")
	sp.End()
	if sp.rec.Parent != 99 || sp.rec.Trace != 42 {
		t.Fatalf("span under remote parent: trace=%d parent=%d, want 42/99", sp.rec.Trace, sp.rec.Parent)
	}
}

func TestSpanLogDroppedCount(t *testing.T) {
	log := NewSpanLog(4)
	before := Default.Counter("obs.spans.dropped").Value()
	for i := 1; i <= 10; i++ {
		log.add(SpanRecord{Trace: uint64(i), Span: uint64(i), Name: "s", Start: time.Now()})
	}
	if got := log.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	if got := Default.Counter("obs.spans.dropped").Value() - before; got != 6 {
		t.Fatalf("obs.spans.dropped delta = %d, want 6", got)
	}
}

func TestSpanLogSince(t *testing.T) {
	log := NewSpanLog(8)
	base := time.Now()
	for i := 0; i < 5; i++ {
		log.add(SpanRecord{Trace: 1, Span: uint64(i + 1), Name: "s",
			Start: base.Add(time.Duration(i) * time.Second)})
	}
	got := log.Since(base.Add(2 * time.Second))
	if len(got) != 3 {
		t.Fatalf("Since returned %d spans, want 3 (cut is inclusive)", len(got))
	}
	if got[0].Span != 3 {
		t.Fatalf("Since starts at span %d, want 3", got[0].Span)
	}
	if all := log.Since(time.Time{}); len(all) != 5 {
		t.Fatalf("Since(zero) returned %d, want all 5", len(all))
	}
}

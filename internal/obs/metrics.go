package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; all methods are safe for concurrent use. The padding keeps
// each counter on its own cache line: counters are allocated in batches
// (one per metric name), and unpadded they would land adjacent in
// memory, so unrelated counters hammered by different goroutines would
// false-share lines and serialize on cache-coherence traffic.
type Counter struct {
	v atomic.Uint64
	_ [56]byte
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down (queue depths, connection
// counts). The zero value is ready to use. Padded like Counter.
type Gauge struct {
	v atomic.Int64
	_ [56]byte
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// HistBuckets is the number of power-of-two latency buckets: bucket i
// counts observations with duration < 1µs<<i, and the last bucket
// absorbs everything longer (~67s and beyond). The same bucketing is
// used by the wire transport's per-op stats, so the two agree.
const HistBuckets = 27

// Histogram is a lock-free log-bucketed latency histogram. Observations
// land in power-of-two duration buckets; quantiles are therefore upper
// bounds with at most 2× resolution, which is plenty for "where did the
// millisecond go" questions. The zero value is ready to use.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds
	exTrace atomic.Uint64
	exDur   atomic.Int64 // nanoseconds
	buckets [HistBuckets]atomic.Uint64
}

// Observe records one duration. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) { h.ObserveTrace(d, 0) }

// ObserveTrace is Observe plus exemplar upkeep: when the observation is
// at least as large as the running maximum and trace is nonzero, the
// histogram retains (trace, d) as its exemplar — the handle that links a
// Prometheus bucket back to the span log's worst recent offender. A zero
// trace records the duration without touching the exemplar.
func (h *Histogram) ObserveTrace(d time.Duration, trace uint64) {
	if d < 0 {
		d = 0
	}
	idx := bits.Len64(uint64(d / time.Microsecond))
	if idx >= HistBuckets {
		idx = HistBuckets - 1
	}
	h.count.Add(1)
	h.sum.Add(int64(d))
	h.buckets[idx].Add(1)
	if trace != 0 && int64(d) >= h.max.Load() {
		// Best-effort under races: a concurrent larger observation may
		// overwrite; the exemplar only claims to be a recent extreme.
		h.exDur.Store(int64(d))
		h.exTrace.Store(trace)
	}
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// ObserveN records n equal observations of d in one shot — the bulk
// path used when replaying another histogram's bucket counts (the
// runtime-telemetry sampler folds runtime/metrics bucket deltas in this
// way). It costs the same few atomic operations as a single Observe
// regardless of n. No exemplar is recorded.
func (h *Histogram) ObserveN(d time.Duration, n uint64) {
	if n == 0 {
		return
	}
	if d < 0 {
		d = 0
	}
	idx := bits.Len64(uint64(d / time.Microsecond))
	if idx >= HistBuckets {
		idx = HistBuckets - 1
	}
	h.count.Add(n)
	h.sum.Add(int64(d) * int64(n))
	h.buckets[idx].Add(n)
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Snapshot captures the histogram's current state. Under concurrent
// Observe calls the fields may be mutually inconsistent by a few
// in-flight observations; that slack is fine for monitoring and the
// fields settle once writers stop.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = time.Duration(h.sum.Load())
	s.Max = time.Duration(h.max.Load())
	s.ExemplarTrace = h.exTrace.Load()
	s.ExemplarDur = time.Duration(h.exDur.Load())
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram, the unit the
// registry snapshots, diffs, and serves over /metrics.
type HistSnapshot struct {
	Count uint64        `json:"count"`
	Sum   time.Duration `json:"sum_ns"`
	Max   time.Duration `json:"max_ns"`
	// ExemplarTrace/ExemplarDur identify the most recent extreme
	// observation recorded with a trace ID (zero when none); the
	// Prometheus exposition emits them as an OpenMetrics exemplar.
	ExemplarTrace uint64              `json:"exemplar_trace,omitempty"`
	ExemplarDur   time.Duration       `json:"exemplar_dur_ns,omitempty"`
	Buckets       [HistBuckets]uint64 `json:"-"`
}

// Mean returns the mean observed duration (zero when empty).
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile estimates the p-th quantile (0 < p <= 1) by locating the
// bucket containing the target rank and interpolating linearly within
// it: the rank's position among the bucket's observations picks a point
// between the bucket's lower and upper edges. With power-of-two buckets
// a pure upper-bound answer can overstate a quantile by almost 2×;
// interpolation assumes observations spread evenly within the bucket,
// bounding the worst-case relative error near 50% and keeping it far
// smaller for smooth distributions (pinned by TestQuantileInterpolation).
// The estimate is clamped at the observed maximum; the overflow bucket,
// whose upper edge is unbounded, interpolates toward that maximum. An
// empty snapshot returns zero.
func (s HistSnapshot) Quantile(p float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	pos := p * float64(s.Count)
	if pos < 1 {
		pos = 1
	}
	var cum uint64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if float64(cum+n) < pos {
			cum += n
			continue
		}
		// Bucket i holds durations in [lo, hi): bucket 0 is [0, 1µs),
		// bucket i≥1 is [1µs<<(i-1), 1µs<<i). The overflow bucket and
		// any bucket holding the largest observation are capped at the
		// observed maximum instead of their nominal edge.
		var lo time.Duration
		if i > 0 {
			lo = time.Microsecond << (i - 1)
		}
		hi := time.Microsecond << i
		if i == HistBuckets-1 || (s.Max >= lo && s.Max < hi) {
			hi = max(s.Max, lo)
		}
		frac := (pos - float64(cum)) / float64(n)
		est := lo + time.Duration(frac*float64(hi-lo))
		return min(est, s.Max)
	}
	return s.Max
}

// Sub returns the activity between two snapshots of the same histogram:
// counts and sums subtract (clamped at zero against counter resets);
// Max cannot be diffed, so the later snapshot's value is kept.
func (s HistSnapshot) Sub(before HistSnapshot) HistSnapshot {
	// Max and the exemplar cannot be diffed; the later snapshot's win.
	out := HistSnapshot{Max: s.Max, ExemplarTrace: s.ExemplarTrace, ExemplarDur: s.ExemplarDur}
	if s.Count > before.Count {
		out.Count = s.Count - before.Count
	}
	if s.Sum > before.Sum {
		out.Sum = s.Sum - before.Sum
	}
	for i := range s.Buckets {
		if s.Buckets[i] > before.Buckets[i] {
			out.Buckets[i] = s.Buckets[i] - before.Buckets[i]
		}
	}
	return out
}

package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestEventLogEmitAndSince(t *testing.T) {
	l := NewEventLog(8)
	if l.Seq() != 0 {
		t.Fatalf("fresh log Seq = %d", l.Seq())
	}
	for i := 0; i < 5; i++ {
		seq := l.Emit(Event{Type: EventConflict, Bean: "quote"})
		if seq != uint64(i+1) {
			t.Fatalf("Emit #%d returned seq %d", i+1, seq)
		}
	}
	if l.Seq() != 5 {
		t.Fatalf("Seq = %d, want 5", l.Seq())
	}
	evs := l.Since(3)
	if len(evs) != 2 || evs[0].Seq != 4 || evs[1].Seq != 5 {
		t.Fatalf("Since(3) = %+v", evs)
	}
	if all := l.Since(0); len(all) != 5 {
		t.Fatalf("Since(0) returned %d events", len(all))
	}
	for i, e := range l.Since(0) {
		if e.Time.IsZero() {
			t.Fatalf("event %d has zero time", i)
		}
	}
}

func TestEventLogRingWrapsAndCountsDrops(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 7; i++ {
		l.Emit(Event{Type: EventEvict})
	}
	if l.Dropped() != 3 {
		t.Fatalf("Dropped = %d, want 3", l.Dropped())
	}
	all := l.Since(0)
	if len(all) != 4 {
		t.Fatalf("retained %d events, want 4", len(all))
	}
	// Oldest-first, and only the newest four survive.
	for i, e := range all {
		if want := uint64(i + 4); e.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, want)
		}
	}
	if r := l.Recent(2); len(r) != 2 || r[1].Seq != 7 {
		t.Fatalf("Recent(2) = %+v", r)
	}
}

func TestWriteEventsJSONL(t *testing.T) {
	l := NewEventLog(8)
	l.Emit(Event{Type: EventConflict, Op: "sell", Bean: "quote", Key: "quote/s-1",
		Trace: 11, OtherTrace: 22, Age: 3 * time.Millisecond})
	l.Emit(Event{Type: EventInvalidation, Keys: 2, Evicted: 1, Latency: time.Millisecond})

	var b strings.Builder
	if err := WriteEventsJSONL(&b, l.Since(0)); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), b.String())
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if e.Type != EventConflict || e.Bean != "quote" || e.OtherTrace != 22 || e.Age != 3*time.Millisecond {
		t.Fatalf("round-tripped event = %+v", e)
	}
	// Zero-valued fields stay out of the JSON.
	if strings.Contains(lines[1], "other_trace") || strings.Contains(lines[1], `"op"`) {
		t.Fatalf("line 2 carries zero-valued fields: %s", lines[1])
	}
}

// TestDebugEventsEndpoint exercises /debug/events in both formats plus
// incremental drains, and the 400-on-malformed-query contract shared
// with /debug/spans.
func TestDebugEventsEndpoint(t *testing.T) {
	events := NewEventLog(16)
	events.Emit(Event{Type: EventConflict, Op: "sell", Bean: "quote", Key: "quote/s-1", Trace: 5, OtherTrace: 6})
	events.Emit(Event{Type: EventDegrade, Detail: "enter"})

	srv, err := StartDebug("127.0.0.1:0", DebugOptions{
		Registry: NewRegistry(),
		Spans:    NewSpanLog(16),
		Events:   events,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string, wantStatus int) (string, http.Header) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != wantStatus {
			t.Fatalf("GET %s: status %d, want %d\n%s", path, resp.StatusCode, wantStatus, body)
		}
		return string(body), resp.Header
	}

	out, _ := get("/debug/events", 200)
	if !strings.Contains(out, "events seq=2 dropped=0") ||
		!strings.Contains(out, "conflict") || !strings.Contains(out, "degrade") {
		t.Fatalf("/debug/events text unexpected:\n%s", out)
	}

	out, hdr := get("/debug/events?format=json", 200)
	if ct := hdr.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("json Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(strings.NewReader(out))
	n := 0
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("json drain returned %d events, want 2", n)
	}

	out, _ = get("/debug/events?format=json&since=1", 200)
	if strings.Count(out, "\n") != 1 || !strings.Contains(out, "degrade") {
		t.Fatalf("since=1 drain unexpected:\n%s", out)
	}

	// Malformed queries are 400s, not silent defaults.
	get("/debug/events?since=banana", 400)
	get("/debug/events?since=-1", 400)
	get("/debug/events?format=xml", 400)
	get("/debug/spans?since=banana", 400)
	get("/debug/spans?format=xml", 400)
}

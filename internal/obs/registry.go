package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Registry is a named collection of metrics. Lookups are get-or-create
// and safe for concurrent use; hot paths should resolve their metric
// once (package-level var or struct field) and hold the pointer, so the
// steady-state cost of a metric is a single atomic operation.
//
// Default is the process-wide registry every instrumented package
// reports into and every debug endpoint serves; independent registries
// exist for tests.
type Registry struct {
	mu              sync.Mutex
	counters        map[string]*Counter
	gauges          map[string]*Gauge
	hists           map[string]*Histogram
	labeledCounters map[string]*LabeledCounter
	labeledHists    map[string]*LabeledHistogram
}

// Default is the process-wide registry.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:        make(map[string]*Counter),
		gauges:          make(map[string]*Gauge),
		hists:           make(map[string]*Histogram),
		labeledCounters: make(map[string]*LabeledCounter),
		labeledHists:    make(map[string]*LabeledHistogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// NumMetrics reports how many distinct metrics (counters + gauges +
// histograms) are registered — the liveness signal /healthz exposes.
func (r *Registry) NumMetrics() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.counters) + len(r.gauges) + len(r.hists)
}

// Diff snapshots the registry and returns the activity since before —
// shorthand for r.Snapshot().Sub(before), safe under concurrent
// writers (writers may land observations between the subtraction's two
// sides; the slack is bounded by what was in flight).
func (r *Registry) Diff(before Snapshot) Snapshot {
	return r.Snapshot().Sub(before)
}

// Snapshot captures every registered metric at (approximately) one
// point in time.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.Unlock()

	s := Snapshot{
		Counters:   make(map[string]uint64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)),
		Histograms: make(map[string]HistSnapshot, len(hists)),
	}
	for n, c := range counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range hists {
		s.Histograms[n] = h.Snapshot()
	}
	return s
}

// Snapshot is a point-in-time capture of a registry. It marshals
// directly to JSON for the /metrics?format=json endpoint.
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Sub returns the activity between two snapshots of the same registry:
// counters and histograms subtract (clamped at zero), gauges keep their
// later value (a level, not a rate). Metrics absent from before are
// reported whole; metrics with zero activity are dropped.
func (s Snapshot) Sub(before Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistSnapshot),
	}
	for n, v := range s.Counters {
		if d := v - min(v, before.Counters[n]); d > 0 {
			out.Counters[n] = d
		}
	}
	for n, v := range s.Gauges {
		out.Gauges[n] = v
	}
	for n, h := range s.Histograms {
		if d := h.Sub(before.Histograms[n]); d.Count > 0 {
			out.Histograms[n] = d
		}
	}
	return out
}

// WriteText renders the snapshot as a sorted, line-oriented text table —
// the format /metrics serves by default:
//
//	counter <name> <value>
//	gauge <name> <value>
//	hist <name> count=<n> mean=<d> p50=<d> p95=<d> p99=<d> max=<d>
func (s Snapshot) WriteText(w io.Writer) error {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "counter %s %d\n", n, s.Counters[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "gauge %s %d\n", n, s.Gauges[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		if _, err := fmt.Fprintf(w, "hist %s count=%d mean=%s p50=%s p95=%s p99=%s max=%s\n",
			n, h.Count, fmtDur(h.Mean()), fmtDur(h.Quantile(0.50)),
			fmtDur(h.Quantile(0.95)), fmtDur(h.Quantile(0.99)), fmtDur(h.Max)); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the snapshot as JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// fmtDur rounds durations for human-readable metric lines.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Microsecond).String()
	}
}

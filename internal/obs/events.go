package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// EventType classifies a forensic event. The set is small and closed:
// events are for the handful of cache-coherence incidents worth a
// structured record each, not a general logging channel.
type EventType string

// Event types. The string values are the wire/JSON representation and
// are documented in OBSERVABILITY.md (CI cross-checks them).
const (
	// EventConflict is one optimistic commit abort, recorded by the
	// losing edge with the conflicting key and winner attribution.
	EventConflict EventType = "conflict"
	// EventInvalidation is one commit notice arriving at an edge cache,
	// with push latency and the staleness window it closed.
	EventInvalidation EventType = "invalidation"
	// EventDegrade marks an edge entering or leaving degraded
	// (stale-serving) mode after losing its invalidation stream.
	EventDegrade EventType = "degrade"
	// EventEvict is one capacity (LRU) eviction from a common store.
	EventEvict EventType = "evict"
	// EventStaleRead is a commit abort whose conflicting read was served
	// from the finder-result cache: the cached result had gone stale
	// before validation caught it. A clean run's forensics log contains
	// none — the invalidation stream kept the cache coherent.
	EventStaleRead EventType = "stale_read"
	// EventTwoPC is a noteworthy two-phase-commit outcome on the sharded
	// datacenter tier: a participant's presumed abort firing, or a
	// coordinator observing a heuristic (mixed) outcome in its second
	// phase. Clean 2PC commits and aborts are counted, not evented.
	EventTwoPC EventType = "twopc"
)

// Event is one forensic incident. Only the fields meaningful for the
// event's type are set; zero-valued fields are omitted from JSON.
type Event struct {
	// Seq is the log-assigned sequence number (monotonic from 1).
	Seq uint64 `json:"seq"`
	// Time is when the event was recorded.
	Time time.Time `json:"time"`
	Type EventType `json:"type"`
	// Op is the logical operation (trade action) in whose context the
	// event occurred, when known (see WithOp).
	Op string `json:"op,omitempty"`
	// Bean is the entity type (memento table) involved.
	Bean string `json:"bean,omitempty"`
	// Key is the primary involved row ("table/id"); for invalidations
	// with several keys, the first.
	Key string `json:"key,omitempty"`
	// Trace is the trace observing the event (the conflict loser; zero
	// for events outside any traced interaction).
	Trace uint64 `json:"trace,omitempty"`
	// OtherTrace is the counterparty: the conflict winner's trace, or an
	// invalidation notice's originating committer.
	OtherTrace uint64 `json:"other_trace,omitempty"`
	// Age is the type-specific staleness: a conflict loser's
	// read-version age, the staleness window an invalidation closed, a
	// degraded-mode stale serve's entry age, or an evicted entry's
	// residence time.
	Age time.Duration `json:"age_ns,omitempty"`
	// Latency is an invalidation notice's push latency (commit at the
	// store to arrival at the edge).
	Latency time.Duration `json:"latency_ns,omitempty"`
	// Keys is how many keys an invalidation notice listed.
	Keys int `json:"keys,omitempty"`
	// Evicted is how many of those keys were actually cached (and
	// therefore dropped) at this edge.
	Evicted int `json:"evicted,omitempty"`
	// Own marks an invalidation notice for this edge's own commit (the
	// cache was already refreshed; nothing was evicted).
	Own bool `json:"own,omitempty"`
	// Detail carries a short free-form qualifier (e.g. degrade
	// "enter"/"exit").
	Detail string `json:"detail,omitempty"`
}

// EventLog is a bounded ring of recent events. Like SpanLog, once the
// ring wraps each new event evicts the oldest and the eviction is
// counted, so drains can report incompleteness instead of silently
// missing incidents.
type EventLog struct {
	mu      sync.Mutex
	ring    []Event
	next    int
	full    bool
	seq     uint64
	dropped uint64
}

// obsEventsDropped counts events evicted from any EventLog in this
// process before being read; documented in OBSERVABILITY.md.
var obsEventsDropped = Default.Counter("obs.events.dropped")

// DefaultEvents is the process-wide event log; instrumented packages
// emit into it and /debug/events serves it.
var DefaultEvents = NewEventLog(4096)

// NewEventLog returns a ring holding the last n events (4096 if n <= 0).
func NewEventLog(n int) *EventLog {
	if n <= 0 {
		n = 4096
	}
	return &EventLog{ring: make([]Event, n)}
}

// Emit appends one event, assigning its sequence number (and its time,
// when unset) and returning the sequence. Safe for concurrent use.
func (l *EventLog) Emit(e Event) uint64 {
	l.mu.Lock()
	l.seq++
	e.Seq = l.seq
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	if l.full {
		l.dropped++
		obsEventsDropped.Inc()
	}
	l.ring[l.next] = e
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
		l.full = true
	}
	seq := l.seq
	l.mu.Unlock()
	return seq
}

// Seq returns the sequence number of the most recently emitted event
// (zero when none). Callers snapshot it before a phase and pass it to
// Since afterwards to drain just that phase's events.
func (l *EventLog) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Dropped returns how many events this log evicted unread.
func (l *EventLog) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// snapshot copies the ring oldest-first.
func (l *EventLog) snapshot() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	if l.full {
		out = append(out, l.ring[l.next:]...)
	}
	out = append(out, l.ring[:l.next]...)
	return out
}

// Since returns every retained event with a sequence number greater
// than seq, oldest first — the incremental-drain primitive behind
// /debug/events?since= and the benchmark artifact writers (seq 0 drains
// everything retained).
func (l *EventLog) Since(seq uint64) []Event {
	all := l.snapshot()
	out := all[:0:0]
	for _, e := range all {
		if e.Seq > seq {
			out = append(out, e)
		}
	}
	return out
}

// Recent returns the last n events, oldest first (all retained events
// when n <= 0).
func (l *EventLog) Recent(n int) []Event {
	all := l.snapshot()
	if n > 0 && len(all) > n {
		all = all[len(all)-n:]
	}
	return all
}

// WriteEventsJSONL writes events as JSON Lines: one Event object per
// line, the events.jsonl artifact format.
func WriteEventsJSONL(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// WriteEventsText renders events one per line for the /debug/events
// text view.
func WriteEventsText(w io.Writer, events []Event) error {
	for _, e := range events {
		if _, err := fmt.Fprintf(w, "%d %s %-12s op=%s bean=%s key=%s trace=%d other=%d age=%s latency=%s keys=%d evicted=%d own=%v %s\n",
			e.Seq, e.Time.Format(time.RFC3339Nano), e.Type, e.Op, e.Bean, e.Key,
			e.Trace, e.OtherTrace, fmtDur(e.Age), fmtDur(e.Latency),
			e.Keys, e.Evicted, e.Own, e.Detail); err != nil {
			return err
		}
	}
	return nil
}

package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"reflect"
	"sync"
	"time"

	"edgeejb/internal/obs"
)

// Client is a multiplexing transport client. One-shot Calls share a
// small set of connections, distinguished by per-request IDs, so N
// concurrent calls cost one round-trip wall time instead of N
// connections or N serialized round trips. Protocols whose server-side
// state is per-connection open a pinned Stream instead.
type Client struct {
	addr          string
	dial          DialFunc
	maxShared     int
	maxPinnedIdle int
	maxFrame      int
	retry         RetryPolicy
	preflight     func(ctx context.Context, pc PreflightConn) error
	stats         *collector

	mu         sync.Mutex
	dialCond   *sync.Cond // signaled when a shared dial finishes
	shared     []*conn
	idlePinned []*conn
	conns      map[*conn]struct{}
	dialing    int
	closed     bool
}

// Option configures a Client.
type Option func(*Client)

// WithDialer replaces the default TCP dialer.
func WithDialer(d DialFunc) Option { return func(c *Client) { c.dial = d } }

// WithMaxConns caps the number of shared multiplexed connections
// (default 2). Pinned streams are not subject to the cap.
func WithMaxConns(n int) Option {
	return func(c *Client) {
		if n > 0 {
			c.maxShared = n
		}
	}
}

// WithRetry enables the default bounded retry schedule (see
// DefaultRetryPolicy). Kept as the short spelling of WithRetryPolicy;
// context cancellation and deadline expiry are never retried.
func WithRetry() Option { return WithRetryPolicy(DefaultRetryPolicy()) }

// WithRetryPolicy makes Call retry failed exchanges on fresh
// connections under the given budget, sleeping the policy's jittered
// backoff between attempts. The default is no retry: a protocol must
// opt in, and must only do so when its requests are idempotent or
// duplicate-rejected (see RetryPolicy).
func WithRetryPolicy(p RetryPolicy) Option { return func(c *Client) { c.retry = p } }

// PreflightConn is the limited view of a freshly dialed connection a
// preflight hook may use: issue handshake exchanges and install a
// negotiated body codec. The connection is not visible to any other
// caller while the hook runs.
type PreflightConn interface {
	// Call performs one request/response exchange on the new connection.
	Call(ctx context.Context, req, resp any) error
	// SetBodyCodec switches both directions of the connection to the
	// codec, effective from the next frame in each direction. Call it
	// only at a quiet point of the handshake: after the peer has
	// confirmed the switch and before any further traffic.
	SetBodyCodec(c BodyCodec)
}

// WithPreflight runs f on every freshly dialed connection — shared and
// pinned — before the connection carries any caller traffic. The
// protocol layer uses it for its codec handshake; a preflight error
// fails the dial (and is retried under the client's retry policy like
// any other dial failure).
func WithPreflight(f func(ctx context.Context, pc PreflightConn) error) Option {
	return func(c *Client) { c.preflight = f }
}

// WithMaxFrame overrides the maximum accepted frame size.
func WithMaxFrame(n int) Option {
	return func(c *Client) {
		if n > 0 {
			c.maxFrame = n
		}
	}
}

// NewClient returns a client for addr. Connections are dialed lazily.
func NewClient(addr string, opts ...Option) *Client {
	c := &Client{
		addr:          addr,
		dial:          defaultDial,
		maxShared:     2,
		maxPinnedIdle: 4,
		maxFrame:      DefaultMaxFrame,
		stats:         newCollector("client"),
		conns:         make(map[*conn]struct{}),
	}
	for _, o := range opts {
		o(c)
	}
	c.dialCond = sync.NewCond(&c.mu)
	return c
}

// Stats returns a snapshot of this client's transport counters.
func (c *Client) Stats() Stats { return c.stats.snapshot() }

// RetryPolicy returns the client's retry schedule, so protocol layers
// driving their own loops (pinned-stream opens, subscriptions) share
// one budget with the transport's one-shot calls.
func (c *Client) RetryPolicy() RetryPolicy { return c.retry }

// RecordRetry accounts one retry attempt against label in Stats.
// Protocol layers that drive their own retry loops (the stream
// handshakes the transport cannot retry for them) use it so
// Stats.Retries reflects the whole retry budget spent on a path.
func (c *Client) RecordRetry(label string) { c.stats.retry(label) }

// NumConns reports the connections currently owned by the client —
// shared, idle-pinned, and checked-out streams. Leak tests use it to
// assert that abort paths release their pinned connections.
func (c *Client) NumConns() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.conns)
}

// Close tears down every connection, including pinned streams.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := make([]*conn, 0, len(c.conns))
	for cn := range c.conns {
		conns = append(conns, cn)
	}
	c.shared, c.idlePinned = nil, nil
	c.dialCond.Broadcast()
	c.mu.Unlock()
	for _, cn := range conns {
		cn.teardown(ErrClosed)
	}
	return nil
}

// Call performs one request/response exchange on a shared connection,
// decoding the reply into resp (which must be a pointer). Under a
// retry policy, failed exchanges (including failed dials) are retried
// on fresh connections with jittered backoff; a first failure on a
// previously-used pooled connection — the stale-pool case after a
// server restart — is retried immediately without consuming backoff.
func (c *Client) Call(ctx context.Context, req, resp any) error {
	budget := c.retry.attempts()
	for attempt := 0; ; attempt++ {
		cn, err := c.sharedConn(ctx, attempt > 0)
		if err == nil {
			wasUsed := cn.isUsed()
			err = cn.roundTrip(ctx, req, resp)
			if err == nil {
				return nil
			}
			if attempt == 0 && wasUsed && budget > 1 && ctx.Err() == nil {
				c.stats.retry(labelOf(req))
				continue
			}
		}
		if errors.Is(err, ErrClosed) || ctx.Err() != nil || attempt+1 >= budget {
			return err
		}
		if !c.retry.Backoff.Sleep(attempt, ctx.Done()) {
			return err
		}
		c.stats.retry(labelOf(req))
	}
}

// sharedConn picks the least-loaded shared connection, dialing a new
// one only when every existing connection is busy and the cap allows —
// serial callers therefore reuse a single connection. forceFresh
// (retry after a stale-connection failure) always dials, even past the
// cap; broken connections prune themselves, so the overshoot is
// transient.
func (c *Client) sharedConn(ctx context.Context, forceFresh bool) (*conn, error) {
	c.mu.Lock()
	for {
		if c.closed {
			c.mu.Unlock()
			return nil, ErrClosed
		}
		if forceFresh {
			break
		}
		var best *conn
		bestLoad := -1
		for _, cn := range c.shared {
			l := cn.load()
			if l < 0 {
				continue // closed, about to be pruned
			}
			if bestLoad < 0 || l < bestLoad {
				best, bestLoad = cn, l
			}
		}
		atCap := len(c.shared)+c.dialing >= c.maxShared
		if best != nil && (bestLoad == 0 || atCap) {
			c.mu.Unlock()
			return best, nil
		}
		if !atCap {
			break
		}
		// Every slot is taken by an in-flight dial; wait for one to
		// land rather than overshooting the cap.
		c.dialCond.Wait()
	}
	c.dialing++
	c.mu.Unlock()
	cn, err := c.dialConn(ctx)
	c.mu.Lock()
	c.dialing--
	if err != nil {
		c.dialCond.Broadcast()
		c.mu.Unlock()
		return nil, err
	}
	if c.closed {
		c.dialCond.Broadcast()
		c.mu.Unlock()
		cn.teardown(ErrClosed)
		return nil, ErrClosed
	}
	c.shared = append(c.shared, cn)
	c.dialCond.Broadcast()
	c.mu.Unlock()
	return cn, nil
}

func (c *Client) dialConn(ctx context.Context) (*conn, error) {
	nc, err := c.dial(ctx, c.addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", c.addr, err)
	}
	c.stats.dial()
	cn := &conn{
		c:       c,
		nc:      nc,
		fw:      newFrameWriter(nc),
		fr:      newFrameReader(nc, c.maxFrame),
		pending: make(map[uint64]*call),
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		nc.Close()
		return nil, ErrClosed
	}
	c.conns[cn] = struct{}{}
	c.mu.Unlock()
	go cn.readLoop()
	if c.preflight != nil {
		if err := c.preflight(ctx, preflightConn{cn}); err != nil {
			err = fmt.Errorf("wire: preflight %s: %w", c.addr, err)
			cn.teardown(err)
			return nil, err
		}
	}
	return cn, nil
}

// preflightConn adapts a conn to the PreflightConn surface handed to
// WithPreflight hooks.
type preflightConn struct{ cn *conn }

func (p preflightConn) Call(ctx context.Context, req, resp any) error {
	return p.cn.roundTrip(ctx, req, resp)
}

func (p preflightConn) SetBodyCodec(c BodyCodec) { p.cn.setBodyCodec(c) }

// setBodyCodec switches both directions of the connection to c, from
// the next frame each way.
func (cn *conn) setBodyCodec(c BodyCodec) {
	cn.wmu.Lock()
	cn.fw.codec = c
	cn.wmu.Unlock()
	cn.fr.setCodec(c)
}

func (c *Client) removeConn(cn *conn) {
	c.mu.Lock()
	delete(c.conns, cn)
	for i, s := range c.shared {
		if s == cn {
			c.shared = append(c.shared[:i], c.shared[i+1:]...)
			break
		}
	}
	for i, s := range c.idlePinned {
		if s == cn {
			c.idlePinned = append(c.idlePinned[:i], c.idlePinned[i+1:]...)
			break
		}
	}
	c.mu.Unlock()
}

// OpenStream checks a pinned connection out of the idle pool, dialing
// a fresh one if the pool is empty. The stream owns the connection
// exclusively until Close (return to pool) or Hangup (discard).
func (c *Client) OpenStream(ctx context.Context) (*Stream, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	var cn *conn
	if n := len(c.idlePinned); n > 0 {
		cn = c.idlePinned[n-1]
		c.idlePinned = c.idlePinned[:n-1]
	}
	c.mu.Unlock()
	if cn != nil {
		return &Stream{c: c, cn: cn, reused: true}, nil
	}
	cn, err := c.dialConn(ctx)
	if err != nil {
		return nil, err
	}
	return &Stream{c: c, cn: cn}, nil
}

// call tracks one in-flight request on a connection. Abandoned calls
// (context expired before the reply) stay registered so the late reply
// can be decoded — into a throwaway value — keeping the connection's
// gob stream in sync.
type call struct {
	id        uint64
	label     string
	resp      any
	rtype     reflect.Type
	deadline  time.Time
	done      chan struct{}
	err       error
	start     time.Time
	completed bool
	abandoned bool
}

// complete finishes the call; the caller holds cn.mu.
func (cl *call) complete(err error) {
	if cl.completed {
		return
	}
	cl.completed = true
	cl.err = err
	close(cl.done)
}

type pushSink struct {
	label   string
	factory func() any
	deliver func(any)
	onClose func()
}

type conn struct {
	c  *Client
	nc net.Conn

	wmu sync.Mutex
	fw  *frameWriter

	fr *frameReader // reader-goroutine only

	mu      sync.Mutex
	pending map[uint64]*call
	sink    *pushSink
	nextID  uint64
	closed  bool
	err     error
	used    bool
}

// load reports in-flight calls, or -1 if the connection is closed.
func (cn *conn) load() int {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if cn.closed {
		return -1
	}
	return len(cn.pending)
}

func (cn *conn) isUsed() bool {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.used
}

// teardown closes the connection, fails every pending call, and fires
// the push sink's close hook. Idempotent.
func (cn *conn) teardown(err error) {
	cn.mu.Lock()
	if cn.closed {
		cn.mu.Unlock()
		return
	}
	cn.closed = true
	cn.err = err
	calls := make([]*call, 0, len(cn.pending))
	for _, cl := range cn.pending {
		calls = append(calls, cl)
	}
	cn.pending = make(map[uint64]*call)
	sink := cn.sink
	cn.sink = nil
	for _, cl := range calls {
		cl.complete(err)
	}
	cn.mu.Unlock()
	_ = cn.nc.Close()
	if sink != nil && sink.onClose != nil {
		sink.onClose()
	}
	cn.c.removeConn(cn)
}

// roundTrip performs one exchange on this connection. The write runs
// under the context deadline; the wait is cut short by cancellation,
// leaving the pending entry behind (abandoned) for the reader.
func (cn *conn) roundTrip(ctx context.Context, req, resp any) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	label := labelOf(req)
	deadline, _ := ctx.Deadline()
	cl := &call{
		label: label,
		resp:  resp,
		rtype: reflect.TypeOf(resp).Elem(),
		done:  make(chan struct{}),
		start: time.Now(),
	}
	cl.deadline = deadline

	cn.mu.Lock()
	if cn.closed {
		err := cn.err
		cn.mu.Unlock()
		cn.c.stats.failure(label)
		return fmt.Errorf("wire: %s on closed conn: %w", label, err)
	}
	cn.nextID++
	cl.id = cn.nextID
	cn.pending[cl.id] = cl
	cn.mu.Unlock()
	// Nudge the reader: if it is blocked with a longer (or no) read
	// deadline, this shortens it to cover the new call.
	cn.updateReadDeadline()

	cn.wmu.Lock()
	_ = cn.nc.SetWriteDeadline(deadline)
	n, werr := cn.fw.writeFrame(&frameHeader{
		ID:    cl.id,
		Kind:  kindRequest,
		Trace: obs.TraceID(ctx),
		Span:  obs.SpanID(ctx),
	}, req)
	cn.wmu.Unlock()
	if werr != nil {
		if n > 0 {
			// Part of the frame reached the socket before the failure;
			// those bytes are real traffic on the path and must count.
			cn.c.stats.sent(label, n)
		}
		cn.c.stats.failure(label)
		cn.teardown(fmt.Errorf("wire: send %s: %w", label, werr))
		if isTimeout(werr) && ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("wire: send %s: %w", label, werr)
	}
	cn.c.stats.sent(label, n)

	select {
	case <-cl.done:
		if cl.err != nil {
			cn.c.stats.failure(label)
			return fmt.Errorf("wire: %s: %w", label, cl.err)
		}
		cn.c.stats.roundTrip(label, time.Since(cl.start))
		return nil
	case <-ctx.Done():
		cn.mu.Lock()
		if cl.completed {
			done := cl.err
			cn.mu.Unlock()
			if done != nil {
				cn.c.stats.failure(label)
				return fmt.Errorf("wire: %s: %w", label, done)
			}
			cn.c.stats.roundTrip(label, time.Since(cl.start))
			return nil
		}
		cl.completed = true
		cl.abandoned = true
		cl.err = ctx.Err()
		close(cl.done)
		cn.mu.Unlock()
		cn.updateReadDeadline()
		cn.c.stats.failure(label)
		return ctx.Err()
	}
}

// updateReadDeadline sets the connection read deadline to the earliest
// deadline among pending, un-abandoned calls (zero clears it).
func (cn *conn) updateReadDeadline() {
	cn.mu.Lock()
	var min time.Time
	for _, cl := range cn.pending {
		if cl.completed || cl.deadline.IsZero() {
			continue
		}
		if min.IsZero() || cl.deadline.Before(min) {
			min = cl.deadline
		}
	}
	closed := cn.closed
	cn.mu.Unlock()
	if closed {
		return
	}
	_ = cn.nc.SetReadDeadline(min)
}

// expireOverdue fails pending calls whose deadline has passed, leaving
// them registered (abandoned) so their late replies keep the gob
// stream in sync. It runs on the reader goroutine when the read
// deadline fires.
func (cn *conn) expireOverdue() {
	now := time.Now()
	cn.mu.Lock()
	for _, cl := range cn.pending {
		if cl.completed || cl.deadline.IsZero() || now.Before(cl.deadline) {
			continue
		}
		cl.completed = true
		cl.abandoned = true
		cl.err = context.DeadlineExceeded
		close(cl.done)
	}
	cn.mu.Unlock()
}

func (cn *conn) readLoop() {
	onTimeout := func() bool {
		cn.expireOverdue()
		cn.updateReadDeadline()
		return true
	}
	for {
		size, err := cn.fr.readFrame(onTimeout)
		if err != nil {
			cn.teardown(fmt.Errorf("wire: recv: %w", err))
			return
		}
		var h frameHeader
		if err := cn.fr.decode(&h); err != nil {
			cn.teardown(fmt.Errorf("wire: recv header: %w", err))
			return
		}
		switch h.Kind {
		case kindResponse:
			if !cn.handleResponse(h.ID, size) {
				return
			}
		case kindPush:
			if !cn.handlePush(size) {
				return
			}
		default:
			cn.teardown(fmt.Errorf("wire: recv unknown frame kind %d", h.Kind))
			return
		}
		cn.updateReadDeadline()
	}
}

func (cn *conn) handleResponse(id uint64, size int) bool {
	cn.mu.Lock()
	cl, ok := cn.pending[id]
	if ok {
		delete(cn.pending, id)
	}
	cn.mu.Unlock()
	if !ok {
		cn.teardown(fmt.Errorf("wire: recv response for unknown request %d", id))
		return false
	}
	cn.c.stats.received(cl.label, size)
	// An abandoned call's caller is gone; decode into a throwaway
	// value of the right type to keep the gob stream in sync.
	target := cl.resp
	if cl.abandoned {
		target = reflect.New(cl.rtype).Interface()
	}
	if err := cn.fr.decodeBody(target); err != nil {
		cn.teardown(fmt.Errorf("wire: recv %s: %w", cl.label, err))
		return false
	}
	cn.mu.Lock()
	cn.used = true
	cl.complete(nil)
	cn.mu.Unlock()
	return true
}

func (cn *conn) handlePush(size int) bool {
	cn.mu.Lock()
	sink := cn.sink
	cn.mu.Unlock()
	if sink == nil {
		cn.teardown(fmt.Errorf("wire: recv push on connection without sink"))
		return false
	}
	cn.c.stats.push(sink.label, size, false)
	body := sink.factory()
	if err := cn.fr.decodeBody(body); err != nil {
		cn.teardown(fmt.Errorf("wire: recv push: %w", err))
		return false
	}
	sink.deliver(body)
	return true
}

// Stream is a connection pinned to one caller — the transport for
// transactions (server-side state is per-connection) and invalidation
// subscriptions (the connection carries server pushes).
type Stream struct {
	c      *Client
	cn     *conn
	reused bool

	mu     sync.Mutex
	closed bool
	pushed bool
}

// Reused reports whether the stream came from the idle pool rather
// than a fresh dial — the caller's cue to retry once if the first call
// fails (the pooled connection may be stale).
func (s *Stream) Reused() bool { return s.reused }

// Call performs one exchange on the pinned connection.
func (s *Stream) Call(ctx context.Context, req, resp any) error {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return ErrClosed
	}
	return s.cn.roundTrip(ctx, req, resp)
}

// OnPush registers the stream's push sink: factory allocates a body,
// deliver consumes each push (it must not block), and onClose fires
// exactly once when the connection dies. Register the sink BEFORE the
// call that switches the server into push mode, or an early push races
// the registration and kills the connection.
func (s *Stream) OnPush(factory func() any, deliver func(any), onClose func()) {
	s.mu.Lock()
	s.pushed = true
	s.mu.Unlock()
	cn := s.cn
	cn.mu.Lock()
	closed := cn.closed
	if !closed {
		cn.sink = &pushSink{label: "push", factory: factory, deliver: deliver, onClose: onClose}
	}
	cn.mu.Unlock()
	if closed && onClose != nil {
		onClose()
	}
}

// Close returns a healthy, push-free connection to the idle pool for
// the next OpenStream; otherwise the connection is discarded.
func (s *Stream) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	pushed := s.pushed
	s.mu.Unlock()
	cn := s.cn
	if pushed || cn.load() < 0 {
		cn.teardown(ErrClosed)
		return
	}
	c := s.c
	c.mu.Lock()
	if !c.closed && len(c.idlePinned) < c.maxPinnedIdle {
		c.idlePinned = append(c.idlePinned, cn)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	cn.teardown(ErrClosed)
}

// Hangup discards the pinned connection immediately — the cancel path
// for subscriptions and broken transactions.
func (s *Stream) Hangup() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cn.teardown(ErrClosed)
}

package wire

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"
)

// TestBackoffDelayNoMaxNeverNegative is the regression test for the
// uncapped-backoff overflow: with no Max set, repeated doubling of a
// time.Duration eventually wraps negative, and a negative delay makes
// Sleep return immediately — a zero-wait retry hammer at exactly the
// attempt counts where the peer is struggling most.
func TestBackoffDelayNoMaxNeverNegative(t *testing.T) {
	b := Backoff{Base: time.Second}
	for _, attempt := range []int{0, 1, 10, 61, 62, 63, 64, 100, 200} {
		if d := b.Delay(attempt); d <= 0 {
			t.Fatalf("Delay(%d) = %v, want > 0", attempt, d)
		}
	}
	// Sanity: a capped schedule still respects the cap at high attempts.
	capped := Backoff{Base: time.Second, Max: time.Minute}
	if d := capped.Delay(200); d != time.Minute {
		t.Fatalf("capped Delay(200) = %v, want %v", d, time.Minute)
	}
}

// failAfterWriter accepts up to limit bytes, then fails mid-write with
// a partial count — the shape a truncated TCP send has.
type failAfterWriter struct {
	limit   int
	written int
}

var errTruncated = errors.New("simulated truncated write")

func (w *failAfterWriter) Write(p []byte) (int, error) {
	room := w.limit - w.written
	if room <= 0 {
		return 0, errTruncated
	}
	if len(p) <= room {
		w.written += len(p)
		return len(p), nil
	}
	w.written += room
	return room, errTruncated
}

// TestWriteFramePartialWriteReportsFlushedBytes is the regression test
// for writeFrame returning 0 on a failed write: the bytes that DID
// reach the socket are real traffic on the measured path, and dropping
// them from Stats.BytesSent skews the byte accounting under fault
// injection.
func TestWriteFramePartialWriteReportsFlushedBytes(t *testing.T) {
	const limit = 10
	fw := newFrameWriter(&failAfterWriter{limit: limit})
	n, err := fw.writeFrame(&frameHeader{ID: 1, Kind: 1}, &testReq{Op: "echo", Payload: "partial write accounting"})
	if err == nil {
		t.Fatal("writeFrame succeeded against a failing writer")
	}
	if n != limit {
		t.Fatalf("writeFrame returned %d flushed bytes, want %d (the bytes the socket accepted)", n, limit)
	}
}

// TestWriteFrameFullFailureReportsZero pins the other edge: when the
// socket accepts nothing, no phantom bytes may be reported.
func TestWriteFrameFullFailureReportsZero(t *testing.T) {
	fw := newFrameWriter(&failAfterWriter{limit: 0})
	n, err := fw.writeFrame(&frameHeader{ID: 1, Kind: 1}, &testReq{Op: "echo"})
	if err == nil {
		t.Fatal("writeFrame succeeded against a dead writer")
	}
	if n != 0 {
		t.Fatalf("writeFrame returned %d flushed bytes, want 0", n)
	}
}

// TestReadFrameReusesPayloadBuffer is the regression test for the
// per-frame payload allocation: the reader's buffer is per-connection
// and grow-only, so same-size frames must decode into the same backing
// array rather than a fresh make([]byte, size) each.
func TestReadFrameReusesPayloadBuffer(t *testing.T) {
	var buf bytes.Buffer
	fw := newFrameWriter(&buf)
	for i := 0; i < 3; i++ {
		if _, err := fw.writeFrame(&frameHeader{ID: uint64(i + 1), Kind: 1}, &testReq{Op: "echo", Payload: "same-size payload"}); err != nil {
			t.Fatal(err)
		}
	}
	fr := newFrameReader(&buf, DefaultMaxFrame)
	if _, err := fr.readFrame(nil); err != nil {
		t.Fatal(err)
	}
	first := &fr.payload[0]
	for i := 0; i < 2; i++ {
		if _, err := fr.readFrame(nil); err != nil {
			t.Fatal(err)
		}
		if &fr.payload[0] != first {
			t.Fatalf("frame %d re-allocated the payload buffer", i+2)
		}
	}
}

// BenchmarkWireRoundTrip measures one echo round trip over a live
// connection; allocs/op is the hot-path number CI budgets (the frame
// reader's buffer reuse and the persistent gob streams are what keep
// it flat).
func BenchmarkWireRoundTrip(b *testing.B) {
	srv := NewServer(func() ConnHandler { return &testHandler{} })
	if err := srv.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c := NewClient(srv.Addr())
	defer c.Close()
	ctx := context.Background()
	req := &testReq{Op: "echo", Payload: "quote-sized payload for the round-trip benchmark", N: 7}
	resp := new(testResp)
	if err := c.Call(ctx, req, resp); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Call(ctx, req, resp); err != nil {
			b.Fatal(err)
		}
	}
}

package wire

import (
	"context"
	"strconv"
	"testing"

	"edgeejb/internal/obs"
)

// traceHandler echoes back the trace ID its handler context carries,
// recording a server-side span while traced.
type traceHandler struct{}

func (traceHandler) NewRequest() any { return new(testReq) }

func (traceHandler) Handle(ctx context.Context, sess *Session, id uint64, req any) any {
	_, sp := obs.StartSpan(ctx, "wiretest.server")
	sp.End()
	return &testResp{Payload: strconv.FormatUint(obs.TraceID(ctx), 10)}
}

func (traceHandler) Close() {}

// TestTracePropagation proves a trace ID planted in the client context
// crosses the wire into the server handler's context, and that spans
// recorded on both sides stitch into one trace.
func TestTracePropagation(t *testing.T) {
	srv := NewServer(func() ConnHandler { return traceHandler{} })
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewClient(srv.Addr())
	defer c.Close()

	// Untraced call: the header's Trace field stays zero end to end.
	resp := new(testResp)
	if err := c.Call(context.Background(), &testReq{Op: "trace"}, resp); err != nil {
		t.Fatal(err)
	}
	if resp.Payload != "0" {
		t.Fatalf("untraced call delivered trace %q, want 0", resp.Payload)
	}

	// Traced call: the server handler sees the client's trace ID.
	ctx, id := obs.WithNewTrace(context.Background())
	ctx, sp := obs.StartSpan(ctx, "wiretest.client")
	resp = new(testResp)
	if err := c.Call(ctx, &testReq{Op: "trace"}, resp); err != nil {
		t.Fatal(err)
	}
	sp.End()
	if want := strconv.FormatUint(id, 10); resp.Payload != want {
		t.Fatalf("server saw trace %q, want %q", resp.Payload, want)
	}

	// Both hops of the interaction appear under one trace ID. (Client
	// and server share this test process, so they share DefaultSpans.)
	names := make(map[string]bool)
	for _, rec := range obs.DefaultSpans.Trace(id) {
		names[rec.Name] = true
	}
	if !names["wiretest.client"] || !names["wiretest.server"] {
		t.Fatalf("trace %d spans = %v, want client and server hops", id, names)
	}
}

// TestSpanParentPropagation proves the frame header carries the caller's
// span ID, so the first server-side span parents under the client-side
// span that made the call — the edge the trace assembler joins on.
func TestSpanParentPropagation(t *testing.T) {
	srv := NewServer(func() ConnHandler { return traceHandler{} })
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewClient(srv.Addr())
	defer c.Close()

	ctx, id := obs.WithNewTrace(context.Background())
	ctx, sp := obs.StartSpan(ctx, "wiretest.client")
	clientSpan := obs.SpanID(ctx)
	if clientSpan == 0 {
		t.Fatal("no span ID on traced client context")
	}
	if err := c.Call(ctx, &testReq{Op: "trace"}, new(testResp)); err != nil {
		t.Fatal(err)
	}
	sp.End()

	var server *obs.SpanRecord
	for _, rec := range obs.DefaultSpans.Trace(id) {
		if rec.Name == "wiretest.server" {
			r := rec
			server = &r
		}
	}
	if server == nil {
		t.Fatalf("server-side span not recorded for trace %d", id)
	}
	if server.Parent != clientSpan {
		t.Fatalf("server span parent = %d, want client span %d", server.Parent, clientSpan)
	}
}

package wire

import (
	"math/bits"
	"sync"
	"time"

	"edgeejb/internal/obs"
)

// histBuckets is the number of power-of-two latency buckets; bucket i
// counts round trips with latency < 1µs<<i, the last bucket overflows.
const histBuckets = 22

// OpStats aggregates one operation label (e.g. "AutoGet", "buy").
type OpStats struct {
	Count         uint64 // completed round trips
	Errors        uint64 // failed calls (transport error, deadline, cancel)
	Retries       uint64 // retry attempts consumed by the retry policy
	BytesSent     uint64
	BytesReceived uint64
	TotalDur      time.Duration
	MaxDur        time.Duration
	Hist          [histBuckets]uint64
}

// MeanDur returns the mean round-trip latency.
func (o OpStats) MeanDur() time.Duration {
	if o.Count == 0 {
		return 0
	}
	return o.TotalDur / time.Duration(o.Count)
}

// PercentileDur returns an upper-bound estimate of the p-th percentile
// latency (0 < p <= 1) from the histogram.
func (o OpStats) PercentileDur(p float64) time.Duration {
	if o.Count == 0 {
		return 0
	}
	target := uint64(p * float64(o.Count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, n := range o.Hist {
		cum += n
		if cum >= target {
			if i == histBuckets-1 {
				return o.MaxDur
			}
			return time.Microsecond << i
		}
	}
	return o.MaxDur
}

// Stats is a point-in-time snapshot of a transport endpoint's counters.
// Bytes include the 4-byte length prefix of every frame, so client and
// server snapshots of the same path agree with on-the-wire traffic.
type Stats struct {
	Dials         uint64
	RoundTrips    uint64 // completed request/response exchanges
	Pushes        uint64 // unsolicited frames (invalidation notices)
	BytesSent     uint64
	BytesReceived uint64
	Errors        uint64 // failed calls
	Retries       uint64 // retry attempts consumed by retry policies
	Ops           map[string]OpStats
}

// Bytes returns total traffic in both directions.
func (s Stats) Bytes() uint64 { return s.BytesSent + s.BytesReceived }

// MergeStats sums endpoint snapshots — the harness uses it to total
// the shared-path traffic of every client on one side of a topology.
func MergeStats(snaps ...Stats) Stats {
	var out Stats
	out.Ops = make(map[string]OpStats)
	for _, s := range snaps {
		out.Dials += s.Dials
		out.RoundTrips += s.RoundTrips
		out.Pushes += s.Pushes
		out.BytesSent += s.BytesSent
		out.BytesReceived += s.BytesReceived
		out.Errors += s.Errors
		out.Retries += s.Retries
		for label, op := range s.Ops {
			agg := out.Ops[label]
			agg.Count += op.Count
			agg.Errors += op.Errors
			agg.Retries += op.Retries
			agg.BytesSent += op.BytesSent
			agg.BytesReceived += op.BytesReceived
			agg.TotalDur += op.TotalDur
			if op.MaxDur > agg.MaxDur {
				agg.MaxDur = op.MaxDur
			}
			for i := range op.Hist {
				agg.Hist[i] += op.Hist[i]
			}
			out.Ops[label] = agg
		}
	}
	return out
}

// wireMetrics are the process-wide obs mirrors of one endpoint role.
// The pointers are resolved once per collector so the hot paths pay a
// single atomic add per mirrored counter, never a registry lookup.
type wireMetrics struct {
	dials         *obs.Counter
	roundTrips    *obs.Counter
	pushes        *obs.Counter
	bytesSent     *obs.Counter
	bytesReceived *obs.Counter
	errors        *obs.Counter
	retries       *obs.Counter
	rtt           *obs.Histogram
}

func newWireMetrics(role string) wireMetrics {
	p := "wire." + role + "."
	return wireMetrics{
		dials:         obs.Default.Counter(p + "dials"),
		roundTrips:    obs.Default.Counter(p + "roundtrips"),
		pushes:        obs.Default.Counter(p + "pushes"),
		bytesSent:     obs.Default.Counter(p + "bytes_sent"),
		bytesReceived: obs.Default.Counter(p + "bytes_received"),
		errors:        obs.Default.Counter(p + "errors"),
		retries:       obs.Default.Counter(p + "retries"),
		rtt:           obs.Default.Histogram(p + "rtt"),
	}
}

// collector is the mutable counterpart of Stats shared by the
// connections of one Client or Server. Every count is also mirrored
// into the process-wide obs registry under wire.<role>.*, summing
// across all endpoints of that role in the process.
type collector struct {
	mu            sync.Mutex
	dials         uint64
	roundTrips    uint64
	pushes        uint64
	bytesSent     uint64
	bytesReceived uint64
	errors        uint64
	retries       uint64
	ops           map[string]*OpStats
	obs           wireMetrics
}

func newCollector(role string) *collector {
	return &collector{
		obs: newWireMetrics(role),
		ops: make(map[string]*OpStats),
	}
}

// op returns the aggregate for label; callers hold c.mu.
func (c *collector) op(label string) *OpStats {
	o := c.ops[label]
	if o == nil {
		o = &OpStats{}
		c.ops[label] = o
	}
	return o
}

func (c *collector) dial() {
	c.obs.dials.Inc()
	c.mu.Lock()
	c.dials++
	c.mu.Unlock()
}

func (c *collector) sent(label string, n int) {
	c.obs.bytesSent.Add(uint64(n))
	c.mu.Lock()
	c.bytesSent += uint64(n)
	c.op(label).BytesSent += uint64(n)
	c.mu.Unlock()
}

func (c *collector) received(label string, n int) {
	c.obs.bytesReceived.Add(uint64(n))
	c.mu.Lock()
	c.bytesReceived += uint64(n)
	c.op(label).BytesReceived += uint64(n)
	c.mu.Unlock()
}

func (c *collector) roundTrip(label string, d time.Duration) {
	c.obs.roundTrips.Inc()
	c.obs.rtt.Observe(d)
	idx := bits.Len64(uint64(d / time.Microsecond))
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	c.mu.Lock()
	c.roundTrips++
	o := c.op(label)
	o.Count++
	o.TotalDur += d
	if d > o.MaxDur {
		o.MaxDur = d
	}
	o.Hist[idx]++
	c.mu.Unlock()
}

// push records an unsolicited frame; sent selects which byte direction
// the frame counts toward (true on the server, false on the client).
func (c *collector) push(label string, n int, sent bool) {
	c.obs.pushes.Inc()
	if sent {
		c.obs.bytesSent.Add(uint64(n))
	} else {
		c.obs.bytesReceived.Add(uint64(n))
	}
	c.mu.Lock()
	c.pushes++
	o := c.op(label)
	if sent {
		c.bytesSent += uint64(n)
		o.BytesSent += uint64(n)
	} else {
		c.bytesReceived += uint64(n)
		o.BytesReceived += uint64(n)
	}
	c.mu.Unlock()
}

func (c *collector) retry(label string) {
	c.obs.retries.Inc()
	c.mu.Lock()
	c.retries++
	c.op(label).Retries++
	c.mu.Unlock()
}

func (c *collector) failure(label string) {
	c.obs.errors.Inc()
	c.mu.Lock()
	c.errors++
	c.op(label).Errors++
	c.mu.Unlock()
}

func (c *collector) snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		Dials:         c.dials,
		RoundTrips:    c.roundTrips,
		Pushes:        c.pushes,
		BytesSent:     c.bytesSent,
		BytesReceived: c.bytesReceived,
		Errors:        c.errors,
		Retries:       c.retries,
		Ops:           make(map[string]OpStats, len(c.ops)),
	}
	for label, o := range c.ops {
		s.Ops[label] = *o
	}
	return s
}

package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"sync/atomic"
)

// DefaultMaxFrame bounds a single frame's payload. Anything larger (or
// a nonsensical length prefix, e.g. from an HTTP client poking the
// port) is treated as a protocol violation and the connection dropped.
const DefaultMaxFrame = 16 << 20

// A frame is a 4-byte big-endian payload length followed by the
// payload; the payload is gob(frameHeader) ++ body. The header always
// travels through a persistent per-connection gob encoder, so gob type
// definitions are sent once per connection rather than once per
// message. That matters for the experiments: per-message typedef
// overhead would inflate exactly the small-message protocols whose byte
// counts Figure 8 compares. The body defaults to the same gob stream;
// once a BodyCodec is negotiated, the body is that codec's raw bytes —
// gob messages are self-delimiting, so after the header decode the
// remainder of the frame is exactly the body.

// BodyCodec encodes and decodes message bodies inside the frame format.
// The frame header stays gob regardless; a codec only replaces the body
// encoding, which is where the volume is. Both peers must switch at an
// agreed frame boundary (the protocol layer negotiates this).
type BodyCodec interface {
	// Name identifies the codec during negotiation and in metrics.
	Name() string
	// EncodeBody appends body's encoding to dst and returns the
	// extended slice.
	EncodeBody(dst []byte, body any) ([]byte, error)
	// DecodeBody decodes one body from data, the remainder of a frame.
	DecodeBody(data []byte, body any) error
}

// frameWriter frames messages onto a connection. Not safe for
// concurrent use; callers hold a write mutex (which also guards codec).
type frameWriter struct {
	bw      *bufio.Writer
	scratch bytes.Buffer
	enc     *gob.Encoder
	lenBuf  [4]byte
	codec   BodyCodec
	bodyBuf []byte
}

func newFrameWriter(w io.Writer) *frameWriter {
	fw := &frameWriter{bw: bufio.NewWriter(w)}
	fw.enc = gob.NewEncoder(&fw.scratch)
	return fw
}

// writeFrame encodes header+body as one frame and flushes it. On
// success it returns the frame's size on the wire (prefix included); on
// a write or flush error it returns how many of the frame's bytes still
// reached the socket, so callers can account partially-sent traffic —
// under fault injection those bytes are real load on the shared path,
// and dropping them from Stats.BytesSent skews the Figure-8 comparison.
func (fw *frameWriter) writeFrame(h *frameHeader, body any) (int, error) {
	fw.scratch.Reset()
	if err := fw.enc.Encode(h); err != nil {
		return 0, err
	}
	var bodyBytes []byte
	if fw.codec != nil {
		var err error
		fw.bodyBuf, err = fw.codec.EncodeBody(fw.bodyBuf[:0], body)
		if err != nil {
			return 0, err
		}
		bodyBytes = fw.bodyBuf
	} else if err := fw.enc.Encode(body); err != nil {
		return 0, err
	}
	n := fw.scratch.Len() + len(bodyBytes)
	binary.BigEndian.PutUint32(fw.lenBuf[:], uint32(n))
	// From here on every byte handed to bw may reach the socket even if
	// a later write fails; track acceptance so the error paths can
	// report the flushed count instead of 0.
	preBuffered := fw.bw.Buffered()
	accepted := 0
	k, err := fw.bw.Write(fw.lenBuf[:])
	accepted += k
	if err != nil {
		return fw.flushedBytes(preBuffered, accepted), err
	}
	k, err = fw.bw.Write(fw.scratch.Bytes())
	accepted += k
	if err != nil {
		return fw.flushedBytes(preBuffered, accepted), err
	}
	if len(bodyBytes) > 0 {
		k, err = fw.bw.Write(bodyBytes)
		accepted += k
		if err != nil {
			return fw.flushedBytes(preBuffered, accepted), err
		}
	}
	if err := fw.bw.Flush(); err != nil {
		return fw.flushedBytes(preBuffered, accepted), err
	}
	return n + 4, nil
}

// flushedBytes estimates how many bytes reached the socket after a
// failed write or flush: everything the buffered writer accepted (plus
// any residue already buffered before this frame) minus what still sits
// in its buffer.
func (fw *frameWriter) flushedBytes(preBuffered, accepted int) int {
	f := preBuffered + accepted - fw.bw.Buffered()
	if f < 0 {
		f = 0
	}
	return f
}

// chunkReader serves gob exactly one frame's payload. It implements
// io.ByteReader so gob.NewDecoder does NOT wrap it in its own bufio
// and read ahead past the frame boundary.
type chunkReader struct {
	buf []byte
	off int
}

func (c *chunkReader) reset(b []byte) { c.buf, c.off = b, 0 }

// rest returns the undecoded remainder of the current frame and marks
// it consumed — the body bytes once the header has been gob-decoded.
func (c *chunkReader) rest() []byte {
	b := c.buf[c.off:]
	c.off = len(c.buf)
	return b
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if c.off >= len(c.buf) {
		return 0, io.EOF
	}
	n := copy(p, c.buf[c.off:])
	c.off += n
	return n, nil
}

func (c *chunkReader) ReadByte() (byte, error) {
	if c.off >= len(c.buf) {
		return 0, io.EOF
	}
	b := c.buf[c.off]
	c.off++
	return b, nil
}

// codecRef boxes a BodyCodec for atomic publication: the codec is
// installed by a handshake running on another goroutine while the
// reader goroutine is blocked in readFrame, and the network round trip
// between those moments is not a happens-before edge the race detector
// recognizes.
type codecRef struct{ c BodyCodec }

// frameReader reads frames and decodes their messages through a
// persistent gob stream (headers always; bodies until a codec is
// installed). Reads are resumable: a deadline-induced timeout mid-frame
// preserves the partial length/payload state so the read continues
// cleanly after the wakeup is handled — the client reader relies on
// this to expire pending calls without corrupting the stream. The
// payload buffer is per-connection and grow-only: frames are decoded
// before the next readFrame, so the buffer can be reused instead of
// allocated per frame.
type frameReader struct {
	r        io.Reader
	maxFrame int
	lenBuf   [4]byte
	lenOff   int
	payload  []byte
	payOff   int
	inFrame  bool
	chunk    chunkReader
	dec      *gob.Decoder
	codec    atomic.Pointer[codecRef]
}

func newFrameReader(r io.Reader, maxFrame int) *frameReader {
	fr := &frameReader{r: r, maxFrame: maxFrame}
	fr.dec = gob.NewDecoder(&fr.chunk)
	return fr
}

// setCodec installs a body codec, effective from the next frame the
// reader starts decoding. Safe to call from a goroutine other than the
// reader's.
func (fr *frameReader) setCodec(c BodyCodec) { fr.codec.Store(&codecRef{c: c}) }

// readFrame reads the next frame into the decode buffer and returns
// its size on the wire. When a read deadline fires, onTimeout decides:
// return true to resume the (possibly partial) read, false to abort
// with the timeout error. A nil onTimeout aborts.
func (fr *frameReader) readFrame(onTimeout func() bool) (int, error) {
	for fr.lenOff < 4 {
		n, err := fr.r.Read(fr.lenBuf[fr.lenOff:])
		fr.lenOff += n
		if err != nil {
			if isTimeout(err) && onTimeout != nil && onTimeout() {
				continue
			}
			return 0, err
		}
	}
	size := int(binary.BigEndian.Uint32(fr.lenBuf[:]))
	if size <= 0 || size > fr.maxFrame {
		return 0, fmt.Errorf("wire: bad frame length %d", size)
	}
	if !fr.inFrame {
		if cap(fr.payload) < size {
			fr.payload = make([]byte, size)
		}
		fr.payload = fr.payload[:size]
		fr.payOff = 0
		fr.inFrame = true
	}
	for fr.payOff < len(fr.payload) {
		n, err := fr.r.Read(fr.payload[fr.payOff:])
		fr.payOff += n
		if err != nil {
			if isTimeout(err) && onTimeout != nil && onTimeout() {
				continue
			}
			return 0, err
		}
	}
	fr.chunk.reset(fr.payload)
	fr.inFrame = false
	fr.lenOff = 0
	return size + 4, nil
}

func (fr *frameReader) decode(v any) error { return fr.dec.Decode(v) }

// decodeBody decodes the remainder of the current frame as a message
// body: through the persistent gob stream by default, or the installed
// body codec's raw bytes.
func (fr *frameReader) decodeBody(v any) error {
	if ref := fr.codec.Load(); ref != nil && ref.c != nil {
		return ref.c.DecodeBody(fr.chunk.rest(), v)
	}
	return fr.dec.Decode(v)
}

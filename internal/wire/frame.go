package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
)

// DefaultMaxFrame bounds a single frame's payload. Anything larger (or
// a nonsensical length prefix, e.g. from an HTTP client poking the
// port) is treated as a protocol violation and the connection dropped.
const DefaultMaxFrame = 16 << 20

// A frame is a 4-byte big-endian payload length followed by the
// payload; the payload is gob(frameHeader) ++ gob(body) emitted by a
// persistent per-connection encoder, so gob type definitions are sent
// once per connection rather than once per message. That matters for
// the experiments: per-message typedef overhead would inflate exactly
// the small-message protocols whose byte counts Figure 8 compares.

// frameWriter frames messages onto a connection. Not safe for
// concurrent use; callers hold a write mutex.
type frameWriter struct {
	bw      *bufio.Writer
	scratch bytes.Buffer
	enc     *gob.Encoder
	lenBuf  [4]byte
}

func newFrameWriter(w io.Writer) *frameWriter {
	fw := &frameWriter{bw: bufio.NewWriter(w)}
	fw.enc = gob.NewEncoder(&fw.scratch)
	return fw
}

// writeFrame encodes header+body as one frame and flushes it,
// returning the frame's size on the wire (prefix included).
func (fw *frameWriter) writeFrame(h *frameHeader, body any) (int, error) {
	fw.scratch.Reset()
	if err := fw.enc.Encode(h); err != nil {
		return 0, err
	}
	if err := fw.enc.Encode(body); err != nil {
		return 0, err
	}
	n := fw.scratch.Len()
	binary.BigEndian.PutUint32(fw.lenBuf[:], uint32(n))
	if _, err := fw.bw.Write(fw.lenBuf[:]); err != nil {
		return 0, err
	}
	if _, err := fw.bw.Write(fw.scratch.Bytes()); err != nil {
		return 0, err
	}
	if err := fw.bw.Flush(); err != nil {
		return 0, err
	}
	return n + 4, nil
}

// chunkReader serves gob exactly one frame's payload. It implements
// io.ByteReader so gob.NewDecoder does NOT wrap it in its own bufio
// and read ahead past the frame boundary.
type chunkReader struct {
	buf []byte
	off int
}

func (c *chunkReader) reset(b []byte) { c.buf, c.off = b, 0 }

func (c *chunkReader) Read(p []byte) (int, error) {
	if c.off >= len(c.buf) {
		return 0, io.EOF
	}
	n := copy(p, c.buf[c.off:])
	c.off += n
	return n, nil
}

func (c *chunkReader) ReadByte() (byte, error) {
	if c.off >= len(c.buf) {
		return 0, io.EOF
	}
	b := c.buf[c.off]
	c.off++
	return b, nil
}

// frameReader reads frames and decodes their messages through a
// persistent gob stream. Reads are resumable: a deadline-induced
// timeout mid-frame preserves the partial length/payload state so the
// read continues cleanly after the wakeup is handled — the client
// reader relies on this to expire pending calls without corrupting the
// stream.
type frameReader struct {
	r        io.Reader
	maxFrame int
	lenBuf   [4]byte
	lenOff   int
	payload  []byte
	payOff   int
	chunk    chunkReader
	dec      *gob.Decoder
}

func newFrameReader(r io.Reader, maxFrame int) *frameReader {
	fr := &frameReader{r: r, maxFrame: maxFrame}
	fr.dec = gob.NewDecoder(&fr.chunk)
	return fr
}

// readFrame reads the next frame into the decode buffer and returns
// its size on the wire. When a read deadline fires, onTimeout decides:
// return true to resume the (possibly partial) read, false to abort
// with the timeout error. A nil onTimeout aborts.
func (fr *frameReader) readFrame(onTimeout func() bool) (int, error) {
	for fr.lenOff < 4 {
		n, err := fr.r.Read(fr.lenBuf[fr.lenOff:])
		fr.lenOff += n
		if err != nil {
			if isTimeout(err) && onTimeout != nil && onTimeout() {
				continue
			}
			return 0, err
		}
	}
	size := int(binary.BigEndian.Uint32(fr.lenBuf[:]))
	if size <= 0 || size > fr.maxFrame {
		return 0, fmt.Errorf("wire: bad frame length %d", size)
	}
	if fr.payload == nil {
		fr.payload = make([]byte, size)
		fr.payOff = 0
	}
	for fr.payOff < len(fr.payload) {
		n, err := fr.r.Read(fr.payload[fr.payOff:])
		fr.payOff += n
		if err != nil {
			if isTimeout(err) && onTimeout != nil && onTimeout() {
				continue
			}
			return 0, err
		}
	}
	fr.chunk.reset(fr.payload)
	fr.payload = nil
	fr.lenOff = 0
	return size + 4, nil
}

func (fr *frameReader) decode(v any) error { return fr.dec.Decode(v) }

// Package wire is the shared transport layer under every TCP protocol
// in this repository: the database driver protocol (package dbwire, and
// package backend riding on it) and the application-server client
// protocol (package appserver). Each previously carried its own framing,
// dialing, pooling, and accept-loop code; every byte the experiments
// measure crosses this one implementation instead, so the edge↔origin
// RPC path can be optimized and instrumented in a single place.
//
// The transport is a length-prefixed, gob-framed request/response
// protocol:
//
//   - Client multiplexes concurrent requests over a small set of shared
//     connections using per-request IDs (pipelining: N concurrent
//     one-shot calls cost ~1 round-trip wall time on a high-latency
//     path, instead of N connections or N serialized round trips).
//   - Stream pins one connection exclusively, for protocols whose
//     server-side state is per-connection (transactions) or that switch
//     the connection into server-push mode (invalidation
//     subscriptions).
//   - Context deadlines and cancellation propagate to the socket:
//     writes run under SetWriteDeadline, and the per-connection reader
//     holds a SetReadDeadline at the earliest pending deadline, so a
//     call against a stalled server returns by its deadline.
//   - Server drains gracefully on Close: stop accepting, finish
//     in-flight requests, bounded by a drain timeout, then force-close.
//   - Both ends keep counters and per-op latency histograms, exposed as
//     a Stats snapshot, so byte accounting on the shared path no longer
//     depends on the delay proxy alone.
package wire

import (
	"context"
	"errors"
	"net"
)

// DialFunc opens a connection to a server. The experiment harness
// supplies dialers that route through the delay proxy or wrap
// connections in byte counters.
type DialFunc func(ctx context.Context, addr string) (net.Conn, error)

// Labeler lets request bodies name themselves for per-op stats. Bodies
// that do not implement it are accounted under "call".
type Labeler interface {
	WireLabel() string
}

// ErrClosed is returned by operations on a closed Client or Server.
var ErrClosed = errors.New("wire: closed")

// Frame kinds. A request expects exactly one response with the same ID;
// push frames are unsolicited server-to-client messages tagged with the
// ID of the request that opened the push stream.
const (
	kindRequest  uint8 = 1
	kindResponse uint8 = 2
	kindPush     uint8 = 3
)

// frameHeader precedes every body on the wire, inside the same frame.
type frameHeader struct {
	ID   uint64
	Kind uint8
}

// labelOf resolves the stats label for a message body.
func labelOf(body any) string {
	if l, ok := body.(Labeler); ok {
		if s := l.WireLabel(); s != "" {
			return s
		}
	}
	return "call"
}

// isTimeout reports whether err is a deadline-induced I/O timeout.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func defaultDial(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

package wire

import (
	"context"
	"errors"
	"net"

	"edgeejb/internal/obs"
)

// DialFunc opens a connection to a server. The experiment harness
// supplies dialers that route through the delay proxy or wrap
// connections in byte counters.
type DialFunc func(ctx context.Context, addr string) (net.Conn, error)

// Labeler lets request bodies name themselves for per-op stats. Bodies
// that do not implement it are accounted under "call".
type Labeler interface {
	WireLabel() string
}

// ErrClosed is returned by operations on a closed Client or Server.
var ErrClosed = errors.New("wire: closed")

// codecConns counts connections by the body codec they settled on,
// labeled wire.codec{name=...}. Each endpoint counts its own side, so
// an in-process topology counts every negotiated connection twice
// (once as client, once as server).
var codecConns = obs.Default.LabeledCounter("wire.codec", "name")

// NoteCodec records one connection settling on the named body codec.
// The protocol layer calls this after its handshake — including for the
// gob fallback, so the codec mix under mixed-version fleets is visible.
func NoteCodec(name string) { codecConns.With(name).Inc() }

// Frame kinds. A request expects exactly one response with the same ID;
// push frames are unsolicited server-to-client messages tagged with the
// ID of the request that opened the push stream.
const (
	kindRequest  uint8 = 1
	kindResponse uint8 = 2
	kindPush     uint8 = 3
)

// frameHeader precedes every body on the wire, inside the same frame.
// Trace carries the request context's obs trace ID across the process
// boundary, and Span the caller's current span ID, so the first span
// the server opens for this request parents under the client-side span
// that made the call — a trace assembles as one tree, not a bag of
// per-process fragments. Gob omits zero fields, so untraced traffic
// pays no extra bytes for either.
type frameHeader struct {
	ID    uint64
	Kind  uint8
	Trace uint64
	Span  uint64
}

// labelOf resolves the stats label for a message body.
func labelOf(body any) string {
	if l, ok := body.(Labeler); ok {
		if s := l.WireLabel(); s != "" {
			return s
		}
	}
	return "call"
}

// isTimeout reports whether err is a deadline-induced I/O timeout.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func defaultDial(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

package wire

import (
	"context"
	"encoding/binary"
	"net"
	"testing"
	"time"
)

// TestServerSurvivesGarbageFrames mirrors dbwire's robustness test at
// the transport layer: arbitrary bytes on a raw connection must drop
// only that connection, never the server or its other clients.
func TestServerSurvivesGarbageFrames(t *testing.T) {
	srv := startTestServer(t)
	c := NewClient(srv.Addr())
	defer c.Close()
	ctx := context.Background()

	payloads := [][]byte{
		[]byte("GET / HTTP/1.1\r\n\r\n"),     // absurd length prefix
		make([]byte, 4096),                   // zero-length frame
		{0x00, 0x00, 0x00, 0x05, 1, 2, 3, 4}, // truncated payload
		{0xff, 0xff, 0xff, 0xff},             // > maxFrame
		{0x00, 0x00, 0x00, 0x04, 0, 0, 0, 0}, // framed non-gob payload
		{0x00, 0x00, 0x00, 0x01, 0x42},       // 1-byte junk frame
	}
	for _, payload := range payloads {
		raw, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		_, _ = raw.Write(payload)
		_ = raw.SetReadDeadline(time.Now().Add(2 * time.Second))
		buf := make([]byte, 64)
		_, _ = raw.Read(buf)
		_ = raw.Close()
	}

	resp := new(testResp)
	if err := c.Call(ctx, &testReq{Op: "echo", Payload: "alive"}, resp); err != nil {
		t.Fatalf("server died after garbage: %v", err)
	}
	if resp.Payload != "alive" {
		t.Fatalf("got %+v", resp)
	}
}

// TestClientRejectsOversizeFrame: a frame length beyond the limit is a
// protocol violation on the client side too.
func TestClientRejectsOversizeFrame(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// Claim a 1 GiB frame is coming.
		var pfx [4]byte
		binary.BigEndian.PutUint32(pfx[:], 1<<30)
		_, _ = conn.Write(pfx[:])
		time.Sleep(2 * time.Second)
	}()

	c := NewClient(ln.Addr().String())
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := c.Call(ctx, &testReq{Op: "echo"}, new(testResp)); err == nil {
		t.Fatal("oversize frame accepted")
	}
}

// FuzzFrameReader feeds arbitrary bytes to the framer + gob decode
// path; it must only ever return an error, never panic or over-read.
func FuzzFrameReader(f *testing.F) {
	f.Add([]byte("GET / HTTP/1.1\r\n\r\n"))
	f.Add(make([]byte, 64))
	f.Add([]byte{0x00, 0x00, 0x00, 0x05, 1, 2, 3, 4, 5})
	f.Add([]byte{0x00, 0x00, 0x00, 0x01, 0x42, 0x00, 0x00, 0x00, 0x01, 0x42})
	// A genuine frame captured from the writer, for coverage of the
	// decode path under mutation.
	{
		var sink captureWriter
		fw := newFrameWriter(&sink)
		_, _ = fw.writeFrame(&frameHeader{ID: 1, Kind: kindRequest}, &testReq{Op: "echo", Payload: "x"})
		f.Add([]byte(sink))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		fr := newFrameReader(&byteConn{data: data}, DefaultMaxFrame)
		for {
			if _, err := fr.readFrame(nil); err != nil {
				return
			}
			var h frameHeader
			if err := fr.decode(&h); err != nil {
				return
			}
			body := new(testReq)
			if err := fr.decode(body); err != nil {
				return
			}
		}
	})
}

type captureWriter []byte

func (w *captureWriter) Write(p []byte) (int, error) {
	*w = append(*w, p...)
	return len(p), nil
}

// byteConn serves a fixed byte slice then EOF, like a peer that wrote
// data and closed.
type byteConn struct {
	data []byte
	off  int
}

func (b *byteConn) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, net.ErrClosed
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}

// Package wire is the shared transport layer under every TCP protocol
// in this repository: the database driver protocol (package dbwire, and
// package backend riding on it) and the application-server client
// protocol (package appserver). Each previously carried its own framing,
// dialing, pooling, and accept-loop code; every byte the experiments
// measure crosses this one implementation instead, so the edge↔origin
// RPC path can be optimized and instrumented in a single place.
//
// The transport is a length-prefixed, gob-framed request/response
// protocol:
//
//   - Client multiplexes concurrent requests over a small set of shared
//     connections using per-request IDs (pipelining: N concurrent
//     one-shot calls cost ~1 round-trip wall time on a high-latency
//     path, instead of N connections or N serialized round trips).
//   - Stream pins one connection exclusively, for protocols whose
//     server-side state is per-connection (transactions) or that switch
//     the connection into server-push mode (invalidation
//     subscriptions).
//   - Context deadlines and cancellation propagate to the socket:
//     writes run under SetWriteDeadline, and the per-connection reader
//     holds a SetReadDeadline at the earliest pending deadline, so a
//     call against a stalled server returns by its deadline.
//   - Server drains gracefully on Close: stop accepting, finish
//     in-flight requests, bounded by a drain timeout, then force-close.
//   - Both ends keep counters and per-op latency histograms, exposed as
//     a Stats snapshot, so byte accounting on the shared path no longer
//     depends on the delay proxy alone. The same counts are mirrored
//     process-wide as the wire.client.* / wire.server.* metrics.
//   - Frame headers carry an optional trace ID, so a span tree started
//     at the client reassembles across tiers; untraced requests encode
//     byte-identically to the pre-tracing format (see OBSERVABILITY.md).
package wire

package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testReq/testResp exercise the transport without any protocol on top.
type testReq struct {
	Op      string
	Payload string
	N       int
}

func (r *testReq) WireLabel() string { return r.Op }

type testResp struct {
	Payload string
	N       int
}

// testHandler implements a tiny per-connection protocol: echo, sleep,
// a per-connection counter (proving stream pinning), and a push stream.
type testHandler struct {
	mu      sync.Mutex
	counter int
	pushers sync.WaitGroup
}

func (h *testHandler) NewRequest() any { return new(testReq) }

func (h *testHandler) Handle(ctx context.Context, sess *Session, id uint64, req any) any {
	r := req.(*testReq)
	switch r.Op {
	case "echo":
		return &testResp{Payload: r.Payload, N: r.N}
	case "sleep":
		select {
		case <-time.After(time.Duration(r.N) * time.Millisecond):
		case <-ctx.Done():
		}
		return &testResp{Payload: "slept", N: r.N}
	case "count":
		h.mu.Lock()
		h.counter++
		n := h.counter
		h.mu.Unlock()
		return &testResp{N: n}
	case "subscribe":
		h.pushers.Add(1)
		go func() {
			defer h.pushers.Done()
			for i := 1; ; i++ {
				select {
				case <-time.After(time.Millisecond):
					if sess.Push(id, &testResp{Payload: "tick", N: i}) != nil {
						return
					}
				case <-ctx.Done():
					return
				}
			}
		}()
		return &testResp{Payload: "subscribed"}
	default:
		return &testResp{Payload: "unknown op " + r.Op}
	}
}

func (h *testHandler) Close() { h.pushers.Wait() }

func startTestServer(t *testing.T, opts ...ServerOption) *Server {
	t.Helper()
	srv := NewServer(func() ConnHandler { return &testHandler{} }, opts...)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

func TestCallRoundTrip(t *testing.T) {
	srv := startTestServer(t)
	c := NewClient(srv.Addr())
	defer c.Close()
	ctx := context.Background()

	for i := 0; i < 5; i++ {
		resp := new(testResp)
		if err := c.Call(ctx, &testReq{Op: "echo", Payload: "hello", N: i}, resp); err != nil {
			t.Fatal(err)
		}
		if resp.Payload != "hello" || resp.N != i {
			t.Fatalf("echo %d => %+v", i, resp)
		}
	}
	s := c.Stats()
	if s.RoundTrips != 5 || s.Dials != 1 {
		t.Fatalf("stats = %d RTs / %d dials, want 5 / 1", s.RoundTrips, s.Dials)
	}
	if s.Ops["echo"].Count != 5 {
		t.Fatalf("echo op count = %d, want 5", s.Ops["echo"].Count)
	}
	if s.BytesSent == 0 || s.BytesReceived == 0 {
		t.Fatal("byte counters not populated")
	}
	if s.Ops["echo"].MeanDur() <= 0 {
		t.Fatal("latency not recorded")
	}
	ss := srv.Stats()
	if ss.RoundTrips != 5 {
		t.Fatalf("server RTs = %d, want 5", ss.RoundTrips)
	}
	// Client and server see the same traffic, mirrored.
	if ss.BytesReceived != s.BytesSent || ss.BytesSent != s.BytesReceived {
		t.Fatalf("byte accounting mismatch: client %d/%d vs server %d/%d",
			s.BytesSent, s.BytesReceived, ss.BytesSent, ss.BytesReceived)
	}
}

// TestConcurrentMultiplexStress hammers one client from many goroutines
// with a mix of shared one-shot calls and pinned streams; run under
// -race this doubles as the transport's synchronization audit.
func TestConcurrentMultiplexStress(t *testing.T) {
	srv := startTestServer(t)
	c := NewClient(srv.Addr())
	defer c.Close()
	ctx := context.Background()

	const goroutines = 40
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if g%4 == 0 {
					// Pinned stream: the per-connection counter must be
					// strictly increasing across calls on one stream.
					st, err := c.OpenStream(ctx)
					if err != nil {
						errs <- err
						return
					}
					last := 0
					for k := 0; k < 3; k++ {
						resp := new(testResp)
						if err := st.Call(ctx, &testReq{Op: "count"}, resp); err != nil {
							st.Hangup()
							errs <- err
							return
						}
						if resp.N <= last {
							st.Hangup()
							errs <- fmt.Errorf("stream not pinned: count went %d -> %d", last, resp.N)
							return
						}
						last = resp.N
					}
					st.Close()
				} else {
					want := fmt.Sprintf("g%d-i%d", g, i)
					resp := new(testResp)
					if err := c.Call(ctx, &testReq{Op: "echo", Payload: want, N: g*1000 + i}, resp); err != nil {
						errs <- err
						return
					}
					if resp.Payload != want || resp.N != g*1000+i {
						errs <- fmt.Errorf("cross-wired response: want %q got %+v", want, resp)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	s := c.Stats()
	if s.Errors != 0 {
		t.Fatalf("stress produced %d transport errors", s.Errors)
	}
	// 30 echo goroutines share the multiplexed conns; pinned streams
	// pool up to 4 conns. Way fewer dials than calls proves reuse.
	if s.Dials > 30 {
		t.Fatalf("%d dials for %d round trips — pooling broken", s.Dials, s.RoundTrips)
	}
}

// TestMultiplexedCallsShareOneRoundTrip: N concurrent calls over the
// shared connections must complete in ~1 round-trip wall time, not N —
// the transport pipelines them by request ID.
func TestMultiplexedCallsShareOneRoundTrip(t *testing.T) {
	srv := startTestServer(t)
	c := NewClient(srv.Addr(), WithMaxConns(1))
	defer c.Close()
	ctx := context.Background()

	// Each request parks 40ms in the handler. Serialized, 16 requests
	// would take >640ms; multiplexed over ONE connection they overlap.
	warm := new(testResp)
	if err := c.Call(ctx, &testReq{Op: "echo"}, warm); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := new(testResp)
			if err := c.Call(ctx, &testReq{Op: "sleep", N: 40}, resp); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed > 320*time.Millisecond {
		t.Fatalf("16 concurrent 40ms calls took %v — not multiplexed", elapsed)
	}
	if s := c.Stats(); s.Dials != 1 {
		t.Fatalf("dials = %d, want 1 (single shared conn)", s.Dials)
	}
}

// TestContextDeadlineOnStalledServer: a call against a server that
// accepts but never answers must return within the context deadline —
// the satellite regression for ctx being ignored on in-flight I/O.
func TestContextDeadlineOnStalledServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // accept, read nothing, answer nothing
		}
	}()

	c := NewClient(ln.Addr().String())
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()

	start := time.Now()
	resp := new(testResp)
	err = c.Call(ctx, &testReq{Op: "echo"}, resp)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("call against stalled server succeeded")
	}
	// The socket's read deadline is set to the context deadline and may
	// fire a hair before the context's own timer publishes Done, so a
	// DeadlineExceeded error with ctx.Err() still nil is a correct
	// outcome, not an early return.
	if ctx.Err() == nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("returned before deadline with %v", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("call hung %v past its 150ms deadline", elapsed)
	}
}

// TestContextCancelReleasesCall: explicit cancellation (no deadline)
// unblocks an in-flight call, and the connection survives for the
// still-pending slow call whose reply arrives later.
func TestContextCancelReleasesCall(t *testing.T) {
	srv := startTestServer(t)
	c := NewClient(srv.Addr(), WithMaxConns(1))
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		resp := new(testResp)
		done <- c.Call(ctx, &testReq{Op: "sleep", N: 2000}, resp)
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled call returned nil")
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled call did not return")
	}

	// The shared connection must still work: the orphaned reply is
	// decoded and discarded without desyncing the gob stream.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	resp := new(testResp)
	if err := c.Call(ctx2, &testReq{Op: "echo", Payload: "after-cancel"}, resp); err != nil {
		t.Fatalf("conn broken after cancelled call: %v", err)
	}
	if resp.Payload != "after-cancel" {
		t.Fatalf("got %+v", resp)
	}
}

// TestServerGracefulDrain: Close while a request is in flight lets the
// handler finish and the response reach the client.
func TestServerGracefulDrain(t *testing.T) {
	srv := startTestServer(t)
	c := NewClient(srv.Addr())
	defer c.Close()
	ctx := context.Background()

	done := make(chan error, 1)
	resp := new(testResp)
	go func() {
		done <- c.Call(ctx, &testReq{Op: "sleep", N: 200}, resp)
	}()
	time.Sleep(50 * time.Millisecond) // request is in the handler now
	srv.Close()                       // must drain, not sever

	if err := <-done; err != nil {
		t.Fatalf("in-flight call lost during drain: %v", err)
	}
	if resp.Payload != "slept" {
		t.Fatalf("got %+v", resp)
	}
}

// TestServerCloseLeaksNoGoroutines: the drain path must reap every
// handler/reader/pusher goroutine — the satellite leak-check.
func TestServerCloseLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	for round := 0; round < 3; round++ {
		srv := NewServer(func() ConnHandler { return &testHandler{} })
		if err := srv.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		c := NewClient(srv.Addr())
		ctx := context.Background()

		// Mix of finished calls, a push stream, and an in-flight sleeper.
		resp := new(testResp)
		if err := c.Call(ctx, &testReq{Op: "echo"}, resp); err != nil {
			t.Fatal(err)
		}
		st, err := c.OpenStream(ctx)
		if err != nil {
			t.Fatal(err)
		}
		got := make(chan struct{}, 1)
		st.OnPush(func() any { return new(testResp) },
			func(any) {
				select {
				case got <- struct{}{}:
				default:
				}
			}, nil)
		if err := st.Call(ctx, &testReq{Op: "subscribe"}, new(testResp)); err != nil {
			t.Fatal(err)
		}
		<-got // pusher is live
		go func() {
			_ = c.Call(ctx, &testReq{Op: "sleep", N: 100}, new(testResp))
		}()
		time.Sleep(20 * time.Millisecond)

		srv.Close()
		c.Close()
	}

	// Goroutine counts are noisy; wait for the count to settle back.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: before=%d now=%d\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestPushDelivery: pushes flow to the sink, and tearing down the
// stream fires onClose exactly once.
func TestPushDelivery(t *testing.T) {
	srv := startTestServer(t)
	c := NewClient(srv.Addr())
	defer c.Close()
	ctx := context.Background()

	st, err := c.OpenStream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var ticks atomic.Int64
	var closes atomic.Int64
	st.OnPush(
		func() any { return new(testResp) },
		func(v any) {
			if v.(*testResp).Payload == "tick" {
				ticks.Add(1)
			}
		},
		func() { closes.Add(1) },
	)
	if err := st.Call(ctx, &testReq{Op: "subscribe"}, new(testResp)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for ticks.Load() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d pushes arrived", ticks.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if c.Stats().Pushes < 3 {
		t.Fatalf("push stat = %d, want >= 3", c.Stats().Pushes)
	}

	st.Hangup()
	st.Hangup() // idempotent
	time.Sleep(50 * time.Millisecond)
	if n := closes.Load(); n != 1 {
		t.Fatalf("onClose fired %d times, want 1", n)
	}
}

// TestStreamPoolReuse: a cleanly closed stream's connection is reused
// by the next OpenStream.
func TestStreamPoolReuse(t *testing.T) {
	srv := startTestServer(t)
	c := NewClient(srv.Addr())
	defer c.Close()
	ctx := context.Background()

	st1, err := c.OpenStream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Reused() {
		t.Fatal("first stream claims reuse")
	}
	if err := st1.Call(ctx, &testReq{Op: "count"}, new(testResp)); err != nil {
		t.Fatal(err)
	}
	st1.Close()

	st2, err := c.OpenStream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Reused() {
		t.Fatal("second stream did not come from the pool")
	}
	resp := new(testResp)
	if err := st2.Call(ctx, &testReq{Op: "count"}, resp); err != nil {
		t.Fatal(err)
	}
	if resp.N != 2 {
		t.Fatalf("pooled stream landed on a different connection: count = %d", resp.N)
	}
	st2.Close()
	if d := c.Stats().Dials; d != 1 {
		t.Fatalf("dials = %d, want 1", d)
	}
}

func TestClientRejectsAfterClose(t *testing.T) {
	srv := startTestServer(t)
	c := NewClient(srv.Addr())
	if err := c.Call(context.Background(), &testReq{Op: "echo"}, new(testResp)); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := c.Call(context.Background(), &testReq{Op: "echo"}, new(testResp)); err == nil {
		t.Fatal("call on closed client succeeded")
	}
	if _, err := c.OpenStream(context.Background()); err == nil {
		t.Fatal("stream on closed client succeeded")
	}
}

func TestMergeStats(t *testing.T) {
	a := Stats{RoundTrips: 2, BytesSent: 10, Ops: map[string]OpStats{"x": {Count: 2}}}
	b := Stats{RoundTrips: 3, BytesReceived: 7, Ops: map[string]OpStats{"x": {Count: 1}, "y": {Count: 2}}}
	m := MergeStats(a, b)
	if m.RoundTrips != 5 || m.Bytes() != 17 {
		t.Fatalf("merge totals wrong: %+v", m)
	}
	if m.Ops["x"].Count != 3 || m.Ops["y"].Count != 2 {
		t.Fatalf("merge ops wrong: %+v", m.Ops)
	}
}

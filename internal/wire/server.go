package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"edgeejb/internal/obs"
)

// ConnHandler holds the per-connection state of one protocol — for the
// database protocol that is the connection's open transactions and
// subscription pushers. The Server creates one handler per accepted
// connection.
type ConnHandler interface {
	// NewRequest allocates a fresh request body to decode into (gob
	// omits zero fields, so bodies must never be reused).
	NewRequest() any
	// Handle processes one request and returns the response body (nil
	// suppresses the response). Handle runs on its own goroutine, so a
	// connection's requests execute concurrently; per-connection state
	// must be synchronized by the handler.
	Handle(ctx context.Context, sess *Session, id uint64, req any) any
	// Close releases per-connection state after the last in-flight
	// Handle has returned (or been force-cancelled).
	Close()
}

// Session is a handler's interface to its connection.
type Session struct {
	sc *serverConn
}

// Context is cancelled when the connection is torn down or the server
// force-closes; long waits inside handlers should respect it.
func (s *Session) Context() context.Context { return s.sc.ctx }

// Push writes an unsolicited frame to the client, tagged with the ID
// of the request that opened the push stream. Safe for concurrent use.
func (s *Session) Push(id uint64, body any) error {
	sc := s.sc
	sc.wmu.Lock()
	_ = sc.nc.SetWriteDeadline(time.Time{})
	n, err := sc.fw.writeFrame(&frameHeader{ID: id, Kind: kindPush}, body)
	sc.wmu.Unlock()
	if err != nil {
		if n > 0 {
			// The truncated push still put bytes on the path; account
			// them without counting a delivered push.
			sc.srv.stats.sent("push", n)
		}
		return fmt.Errorf("wire: push: %w", err)
	}
	sc.srv.stats.push("push", n, true)
	return nil
}

// SetReadCodec switches the session's inbound direction to the codec,
// effective from the next frame the reader starts. The handler calls
// this while serving the handshake request, before the client can have
// sent any frame in the new encoding.
func (s *Session) SetReadCodec(c BodyCodec) { s.sc.fr.setCodec(c) }

// SetWriteCodecAfter arms the outbound codec switch: the codec is
// installed immediately after the response to request id is written, so
// the handshake reply itself still travels in the old encoding and
// everything after it in the new one.
func (s *Session) SetWriteCodecAfter(id uint64, c BodyCodec) {
	sc := s.sc
	sc.wmu.Lock()
	sc.codecAfterID = id
	sc.codecAfter = c
	sc.wmu.Unlock()
}

// Hangup severs the connection. Push-mode handlers use it when the
// upstream source feeding their pushes dies: silently stopping would
// leave the client listening on a healthy-looking stream that will
// never deliver again, whereas a hangup makes the client's teardown
// and resubscribe machinery run. Safe for concurrent use; the reader
// goroutine observes the closed socket and performs the full teardown.
func (s *Session) Hangup() { _ = s.sc.nc.Close() }

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithDrainTimeout bounds how long Close waits for in-flight requests
// before force-closing connections (default 5s).
func WithDrainTimeout(d time.Duration) ServerOption {
	return func(s *Server) {
		if d > 0 {
			s.drainTimeout = d
		}
	}
}

// WithServerMaxFrame overrides the maximum accepted frame size.
func WithServerMaxFrame(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.maxFrame = n
		}
	}
}

// Server accepts framed connections and dispatches their requests to
// per-connection handlers. Close drains gracefully: stop accepting,
// let in-flight requests finish (bounded by the drain timeout), then
// force-close whatever remains.
type Server struct {
	newHandler   func() ConnHandler
	drainTimeout time.Duration
	maxFrame     int
	stats        *collector
	baseCtx      context.Context
	cancel       context.CancelFunc

	mu     sync.Mutex
	ln     net.Listener
	conns  map[*serverConn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer returns a server that creates one handler per connection.
func NewServer(newHandler func() ConnHandler, opts ...ServerOption) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		newHandler:   newHandler,
		drainTimeout: 5 * time.Second,
		maxFrame:     DefaultMaxFrame,
		stats:        newCollector("server"),
		baseCtx:      ctx,
		cancel:       cancel,
		conns:        make(map[*serverConn]struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Start begins listening on addr (e.g. "127.0.0.1:0").
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	s.ln = ln
	s.wg.Add(1)
	s.mu.Unlock()
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the bound listen address; Start must have succeeded.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		panic("wire: Addr before Start")
	}
	return s.ln.Addr().String()
}

// Stats returns a snapshot of this server's transport counters.
func (s *Server) Stats() Stats { return s.stats.snapshot() }

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return
		}
		ctx, cancel := context.WithCancel(s.baseCtx)
		sc := &serverConn{
			srv:    s,
			nc:     nc,
			h:      s.newHandler(),
			fw:     newFrameWriter(nc),
			fr:     newFrameReader(nc, s.maxFrame),
			ctx:    ctx,
			cancel: cancel,
			tasks:  make(chan dispatchTask),
		}
		s.conns[sc] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go sc.serve()
	}
}

func (s *Server) removeConn(sc *serverConn) {
	s.mu.Lock()
	delete(s.conns, sc)
	s.mu.Unlock()
}

// Close drains the server: stop accepting, wake every connection
// reader, wait for in-flight requests up to the drain timeout, then
// force-close stragglers and cancel their session contexts.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	conns := make([]*serverConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()

	if ln != nil {
		ln.Close()
	}
	for _, sc := range conns {
		sc.draining.Store(true)
		_ = sc.nc.SetReadDeadline(time.Now())
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(s.drainTimeout):
		// Force phase: cancel every session context (unblocking
		// handlers parked in lock or channel waits) and sever the
		// sockets, then wait for the goroutines to unwind.
		s.cancel()
		s.mu.Lock()
		for sc := range s.conns {
			_ = sc.nc.Close()
		}
		s.mu.Unlock()
		<-done
	}
	s.cancel()
}

type serverConn struct {
	srv    *Server
	nc     net.Conn
	h      ConnHandler
	ctx    context.Context
	cancel context.CancelFunc

	wmu sync.Mutex
	fw  *frameWriter
	// codecAfter, when non-nil, is installed as the write codec right
	// after the response to codecAfterID is written (see
	// Session.SetWriteCodecAfter). Guarded by wmu.
	codecAfter   BodyCodec
	codecAfterID uint64

	fr *frameReader // serve-goroutine only

	handlers sync.WaitGroup
	draining atomic.Bool

	// tasks hands requests to idle warm dispatch workers; see worker.
	tasks chan dispatchTask
}

// dispatchTask is one decoded request on its way to a handler
// goroutine.
type dispatchTask struct {
	ctx   context.Context
	id    uint64
	label string
	body  any
}

func (sc *serverConn) serve() {
	defer sc.srv.wg.Done()
	graceful := sc.readRequests()
	if graceful {
		// Drain: let in-flight handlers finish and flush their
		// responses before the socket goes away.
		sc.handlers.Wait()
		sc.cancel()
	} else {
		// Broken connection: unblock handlers first, then reap them.
		sc.cancel()
		sc.handlers.Wait()
	}
	_ = sc.nc.Close()
	sc.h.Close()
	sc.srv.removeConn(sc)
}

// readRequests decodes and dispatches frames until the connection
// breaks or the server starts draining; it reports whether the exit
// was a graceful drain.
func (sc *serverConn) readRequests() bool {
	for {
		size, err := sc.fr.readFrame(nil)
		if err != nil {
			// The only deadline ever set on a server connection is the
			// drain wakeup.
			return isTimeout(err) && sc.draining.Load()
		}
		if sc.draining.Load() {
			return true
		}
		var h frameHeader
		if err := sc.fr.decode(&h); err != nil {
			return false
		}
		if h.Kind != kindRequest {
			return false
		}
		body := sc.h.NewRequest()
		if err := sc.fr.decodeBody(body); err != nil {
			return false
		}
		label := labelOf(body)
		sc.srv.stats.received(label, size)
		sc.handlers.Add(1)
		// Requests arriving with a trace ID continue that trace on this
		// side of the process boundary, parented under the caller's span
		// (obs.WithRemoteParent is a no-op on a zero trace).
		t := dispatchTask{ctx: obs.WithRemoteParent(sc.ctx, h.Trace, h.Span), id: h.ID, label: label, body: body}
		select {
		case sc.tasks <- t:
			// Handed to an idle warm worker.
		default:
			// Every worker is busy (or none exists yet): grow the pool.
			go sc.worker(t)
		}
	}
}

// worker runs one dispatch, then parks waiting for the next request
// instead of exiting. Reusing the goroutine keeps its already-grown
// stack warm: response encoding is deep enough to outgrow a fresh
// goroutine's initial stack, and a goroutine-per-request design pays
// that stack-copy on every single call. Idle workers are reaped when
// the connection's context is cancelled at teardown.
func (sc *serverConn) worker(t dispatchTask) {
	for {
		sc.dispatch(t.ctx, t.id, t.label, t.body)
		select {
		case t = <-sc.tasks:
		case <-sc.ctx.Done():
			return
		}
	}
}

func (sc *serverConn) dispatch(ctx context.Context, id uint64, label string, body any) {
	defer sc.handlers.Done()
	start := time.Now()
	resp := sc.h.Handle(ctx, &Session{sc: sc}, id, body)
	if resp == nil {
		return
	}
	sc.wmu.Lock()
	_ = sc.nc.SetWriteDeadline(time.Time{})
	n, err := sc.fw.writeFrame(&frameHeader{ID: id, Kind: kindResponse}, resp)
	if err == nil && sc.codecAfter != nil && sc.codecAfterID == id {
		sc.fw.codec = sc.codecAfter
		sc.codecAfter = nil
	}
	sc.wmu.Unlock()
	if err != nil {
		if n > 0 {
			sc.srv.stats.sent(label, n)
		}
		sc.srv.stats.failure(label)
		// A failed response write means the stream is broken for every
		// other in-flight response too.
		if !errors.Is(err, net.ErrClosed) {
			_ = sc.nc.Close()
		}
		return
	}
	sc.srv.stats.sent(label, n)
	sc.srv.stats.roundTrip(label, time.Since(start))
}

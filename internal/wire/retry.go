package wire

import (
	"math"
	"math/rand"
	"time"
)

// Backoff computes bounded exponential backoff with jitter for retry
// loops: attempt 0 waits about Base, each further attempt doubles the
// wait, capped at Max. Jitter randomizes each wait to desynchronize
// retry storms — when a restarted server comes back, its clients should
// not all reconnect in the same instant.
//
// The zero value is usable and means "no wait" (Delay returns 0), so a
// policy with no Backoff degenerates to immediate retries.
type Backoff struct {
	// Base is the first attempt's wait.
	Base time.Duration
	// Max caps the exponential growth (default: no cap beyond Base<<attempt).
	Max time.Duration
	// Jitter in [0,1] scales each wait by a random factor drawn from
	// [1-Jitter, 1]. Zero means deterministic waits.
	Jitter float64
}

// Delay returns the wait before retry number attempt (0-based).
func (b Backoff) Delay(attempt int) time.Duration {
	if b.Base <= 0 {
		return 0
	}
	d := b.Base
	for i := 0; i < attempt; i++ {
		next := d * 2
		if next <= 0 {
			// Doubling overflowed time.Duration. Clamp instead of going
			// negative: a negative delay makes Sleep return immediately,
			// turning the backoff into a zero-wait retry hammer at exactly
			// the attempt counts where the peer is struggling most.
			next = time.Duration(math.MaxInt64)
		}
		d = next
		if b.Max > 0 && d >= b.Max {
			d = b.Max
			break
		}
	}
	if b.Max > 0 && d > b.Max {
		d = b.Max
	}
	if j := b.Jitter; j > 0 {
		if j > 1 {
			j = 1
		}
		// rand's top-level source is safe for concurrent use.
		d = time.Duration(float64(d) * (1 - j*rand.Float64()))
	}
	return d
}

// Sleep waits Delay(attempt), cut short when done closes or fires.
// It reports false if the wait was interrupted.
func (b Backoff) Sleep(attempt int, done <-chan struct{}) bool {
	d := b.Delay(attempt)
	if d <= 0 {
		select {
		case <-done:
			return false
		default:
			return true
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-done:
		return false
	case <-t.C:
		return true
	}
}

// RetryPolicy bounds transport-level retries of one-shot calls.
// MaxAttempts counts the first try: 1 (or 0) means no retry. Retries
// consume the Backoff schedule; the budget actually spent is surfaced
// in Stats.Retries and per-op OpStats.Retries.
//
// Retried requests may reach the server twice in the window where a
// connection dies after the request was applied but before the reply
// arrived, so callers must only enable retries for requests that are
// idempotent or duplicate-rejected (the dbwire protocol is both: reads
// are idempotent and commit sets are version-validated).
type RetryPolicy struct {
	MaxAttempts int
	Backoff     Backoff
}

// DefaultRetryPolicy is the bounded, jittered schedule dbwire clients
// use: up to 4 attempts, waiting ~5ms, ~10ms, ~20ms between them.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		Backoff:     Backoff{Base: 5 * time.Millisecond, Max: 100 * time.Millisecond, Jitter: 0.5},
	}
}

// attempts normalizes the budget: at least one attempt.
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

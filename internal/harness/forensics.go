package harness

import (
	"fmt"
	"io"
	"sort"

	"edgeejb/internal/obs"
)

// WriteForensics renders a sweep's transaction forensics: per delay
// point, a conflict matrix (interaction × bean type), the hottest
// conflicting keys, and the per-bean cache hit ratios. It reads the
// Counters and Events captured on each Point, so it works on any sweep
// measured by RunSweepOn.
func WriteForensics(w io.Writer, s Sweep) error {
	if _, err := fmt.Fprintf(w, "== forensics: %s / %s ==\n", s.Arch, s.Algo); err != nil {
		return err
	}
	for _, p := range s.Points {
		if err := writePointForensics(w, p); err != nil {
			return err
		}
	}
	return nil
}

func writePointForensics(w io.Writer, p Point) error {
	fmt.Fprintf(w, "\n-- delay %.1fms --\n", p.OneWayDelayMs)
	return writeForensicsBlock(w, p.Events, p.Counters)
}

// WriteThroughputForensics renders the same forensics blocks for the
// concurrent-load extension, keyed by client count instead of delay.
// This is where the conflict matrix carries real weight: the concurrent
// run races writers, so (op, bean) abort counts are non-trivial.
func WriteThroughputForensics(w io.Writer, curves []ThroughputCurve) error {
	for _, c := range curves {
		if _, err := fmt.Fprintf(w, "== forensics: %s / %s ==\n", c.Arch, c.Algo); err != nil {
			return err
		}
		for _, p := range c.Points {
			fmt.Fprintf(w, "\n-- %d clients --\n", p.Clients)
			if err := writeForensicsBlock(w, p.Events, p.Counters); err != nil {
				return err
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// writeForensicsBlock renders one measurement's conflict matrix, hot
// keys, per-bean hit ratios, and invalidation summary from its event
// slice and counter diff.
func writeForensicsBlock(w io.Writer, events []obs.Event, counters map[string]uint64) error {
	// Conflict matrix: aborts by (interaction op, bean type).
	type cell struct{ op, bean string }
	matrix := make(map[cell]int)
	hotKeys := make(map[string]int)
	conflicts := 0
	for _, e := range events {
		if e.Type != obs.EventConflict {
			continue
		}
		conflicts++
		op := e.Op
		if op == "" {
			op = "(unknown)"
		}
		matrix[cell{op, e.Bean}]++
		hotKeys[e.Key]++
	}
	if conflicts == 0 {
		fmt.Fprintln(w, "conflicts: none")
	} else {
		fmt.Fprintf(w, "conflicts: %d\n", conflicts)
		cells := make([]cell, 0, len(matrix))
		for c := range matrix {
			cells = append(cells, c)
		}
		sort.Slice(cells, func(i, j int) bool {
			if matrix[cells[i]] != matrix[cells[j]] {
				return matrix[cells[i]] > matrix[cells[j]]
			}
			if cells[i].op != cells[j].op {
				return cells[i].op < cells[j].op
			}
			return cells[i].bean < cells[j].bean
		})
		fmt.Fprintf(w, "  %-16s %-10s %s\n", "op", "bean", "aborts")
		for _, c := range cells {
			fmt.Fprintf(w, "  %-16s %-10s %d\n", c.op, c.bean, matrix[c])
		}
		fmt.Fprintln(w, "  hot keys:")
		for _, kc := range topN(hotKeys, 5) {
			fmt.Fprintf(w, "    %-24s %d\n", kc.k, kc.n)
		}
	}

	// Per-bean hit ratios from the labeled counter diffs.
	hits, misses := labeledByValue(counters, "slicache.hits"), labeledByValue(counters, "slicache.misses")
	beans := make(map[string]struct{})
	for b := range hits {
		beans[b] = struct{}{}
	}
	for b := range misses {
		beans[b] = struct{}{}
	}
	if len(beans) > 0 {
		names := make([]string, 0, len(beans))
		for b := range beans {
			names = append(names, b)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "cache by bean:\n  %-10s %8s %8s %8s\n", "bean", "hits", "misses", "ratio")
		for _, b := range names {
			h, m := hits[b], misses[b]
			ratio := 0.0
			if h+m > 0 {
				ratio = float64(h) / float64(h+m)
			}
			fmt.Fprintf(w, "  %-10s %8d %8d %7.1f%%\n", b, h, m, 100*ratio)
		}
	}

	// Invalidation-propagation summary.
	invals, evicted := 0, 0
	for _, e := range events {
		if e.Type == obs.EventInvalidation && !e.Own {
			invals++
			evicted += e.Evicted
		}
	}
	if invals > 0 {
		fmt.Fprintf(w, "invalidations: %d notices applied, %d entries evicted\n", invals, evicted)
	}
	return nil
}

type keyCount struct {
	k string
	n int
}

// topN returns the n highest-count entries, ties broken by key.
func topN(counts map[string]int, n int) []keyCount {
	out := make([]keyCount, 0, len(counts))
	for k, c := range counts {
		out = append(out, keyCount{k, c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].n != out[j].n {
			return out[i].n > out[j].n
		}
		return out[i].k < out[j].k
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// labeledByValue extracts a labeled counter family's children from a
// counter map: {label value → count} for every metric named
// base{key=value}.
func labeledByValue(counters map[string]uint64, base string) map[string]uint64 {
	out := make(map[string]uint64)
	for name, v := range counters {
		if b, _, value, ok := obs.SplitLabel(name); ok && b == base {
			out[value] += v
		}
	}
	return out
}

// WriteConflictsCSV exports conflict events, one row per abort. The
// header row is always written, so a conflict-free run yields a valid
// (if empty) CSV.
func WriteConflictsCSV(w io.Writer, events []obs.Event) error {
	if _, err := fmt.Fprintln(w, "t_unix_ms,op,bean,key,loser_trace,winner_trace,read_age_ms"); err != nil {
		return err
	}
	for _, e := range events {
		if e.Type != obs.EventConflict {
			continue
		}
		if _, err := fmt.Fprintf(w, "%d,%s,%s,%s,%d,%d,%.3f\n",
			e.Time.UnixMilli(), e.Op, e.Bean, e.Key, e.Trace, e.OtherTrace,
			float64(e.Age.Microseconds())/1000); err != nil {
			return err
		}
	}
	return nil
}

// WriteInvalidationCSV exports invalidation events, one row per notice
// received at an edge. latency_ms is the push latency (origin commit to
// arrival); staleness_ms is the window closed when the notice actually
// evicted entries (zero otherwise).
func WriteInvalidationCSV(w io.Writer, events []obs.Event) error {
	if _, err := fmt.Fprintln(w, "t_unix_ms,origin_trace,keys,evicted,own,latency_ms,staleness_ms"); err != nil {
		return err
	}
	for _, e := range events {
		if e.Type != obs.EventInvalidation {
			continue
		}
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%v,%.3f,%.3f\n",
			e.Time.UnixMilli(), e.OtherTrace, e.Keys, e.Evicted, e.Own,
			float64(e.Latency.Microseconds())/1000,
			float64(e.Age.Microseconds())/1000); err != nil {
			return err
		}
	}
	return nil
}

package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"edgeejb/internal/loadgen"
	"edgeejb/internal/stats"
)

// fakeEvaluation fabricates an Evaluation so the report renderers can be
// tested without running sweeps.
func fakeEvaluation() *Evaluation {
	mkSweep := func(arch Architecture, algo Algorithm, slope float64) Sweep {
		points := []Point{
			{OneWayDelayMs: 0, MeanLatencyMs: 0.2, SharedBytesPerInteraction: 400},
			{OneWayDelayMs: 2, MeanLatencyMs: 0.2 + 2*slope, SharedBytesPerInteraction: 410},
		}
		points[1].Load = loadgen.Result{
			Interactions: 100,
			PerAction: map[string]stats.Summary{
				"login": {N: 10, Mean: 3.5},
				"buy":   {N: 5, Mean: 7.25},
			},
		}
		return Sweep{
			Arch:   arch,
			Algo:   algo,
			Points: points,
			Fit:    stats.Fit{Slope: slope, Intercept: 0.2, R2: 0.999},
		}
	}
	eval := &Evaluation{Sweeps: make(map[Pair]Sweep)}
	for _, pair := range AllPairs() {
		slope := 2.0
		switch {
		case pair.Arch == ESRDB && pair.Algo == AlgVanillaEJB:
			slope = 23.6
		case pair.Arch == ESRDB && pair.Algo == AlgCachedEJB:
			slope = 13.0
		case pair.Arch == ESRDB:
			slope = 9.4
		case pair.Arch == ESRBES:
			slope = 3.1
		}
		eval.Sweeps[pair] = mkSweep(pair.Arch, pair.Algo, slope)
	}
	return eval
}

func TestWriteFig6ContainsSeries(t *testing.T) {
	var sb strings.Builder
	fakeEvaluation().WriteFig6(&sb)
	out := sb.String()
	for _, want := range []string{
		"Figure 6", "Clients/RAS JDBC", "ES/RBES Cached EJBs", "ES/RDB JDBC", "sensitivity",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig6 output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteFig7ContainsSeries(t *testing.T) {
	var sb strings.Builder
	fakeEvaluation().WriteFig7(&sb)
	out := sb.String()
	for _, want := range []string{"Figure 7", "ES/RDB Cached EJBs", "ES/RDB Vanilla EJBs"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig7 output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteTable2Structure(t *testing.T) {
	var sb strings.Builder
	fakeEvaluation().WriteTable2(&sb)
	out := sb.String()
	for _, want := range []string{"Table 2", "Cached EJBs", "JDBC", "Vanilla EJBs", "N/A", "13.0", "23.6", "9.4", "3.1"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 output missing %q:\n%s", want, out)
		}
	}
	// ES/RBES must have exactly two N/A cells.
	if got := strings.Count(out, "N/A"); got != 2 {
		t.Errorf("Table2 has %d N/A cells, want 2:\n%s", got, out)
	}
}

func TestWriteFig8Rows(t *testing.T) {
	var sb strings.Builder
	fakeEvaluation().WriteFig8(&sb)
	out := sb.String()
	if !strings.Contains(out, "Figure 8") || !strings.Contains(out, "bytes/interaction") {
		t.Errorf("Fig8 output malformed:\n%s", out)
	}
	if got := strings.Count(out, "bytes/interaction"); got != 3+1 { // 3 rows + header mention
		// header says "per client interaction", rows say "bytes/interaction"
		if got != 3 {
			t.Errorf("Fig8 rows = %d, want 3:\n%s", got, out)
		}
	}
}

func TestWriteTable1Complete(t *testing.T) {
	var sb strings.Builder
	WriteTable1(&sb)
	out := sb.String()
	for _, action := range []string{"login", "logout", "register", "home", "account",
		"accountUpdate", "portfolio", "quote", "buy", "sell"} {
		if !strings.Contains(out, action) {
			t.Errorf("Table1 missing action %q", action)
		}
	}
}

func TestWriteActionBreakdown(t *testing.T) {
	eval := fakeEvaluation()
	var sb strings.Builder
	WriteActionBreakdown(&sb, eval.Fig6Series())
	out := sb.String()
	for _, want := range []string{"Per-action", "login", "buy", "3.50", "7.25"} {
		if !strings.Contains(out, want) {
			t.Errorf("action breakdown missing %q:\n%s", want, out)
		}
	}
	// Table 1 ordering: login before buy.
	if strings.Index(out, "login") > strings.Index(out, "buy") {
		t.Error("actions not in Table 1 order")
	}
	// Empty input is a no-op.
	var empty strings.Builder
	WriteActionBreakdown(&empty, nil)
	if empty.Len() != 0 {
		t.Error("empty sweeps should render nothing")
	}
}

func TestWriteThroughputRendering(t *testing.T) {
	curves := []ThroughputCurve{{
		Arch: ESRBES,
		Algo: AlgCachedEJB,
		Points: []ThroughputPoint{
			{Clients: 1, Throughput: 120.5, MeanLatencyMs: 7.1},
			{Clients: 4, Throughput: 300.2, MeanLatencyMs: 13.9, Failures: 2},
		},
	}}
	var sb strings.Builder
	WriteThroughput(&sb, curves)
	out := sb.String()
	for _, want := range []string{"throughput", "ES/RBES", "120.5", "300.2"} {
		if !strings.Contains(out, want) {
			t.Errorf("throughput output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	if err := fakeEvaluation().WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig6.csv", "fig7.csv", "table2.csv", "fig8.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) < 2 {
			t.Errorf("%s has %d lines, want header + data", name, len(lines))
		}
	}
	// Spot-check table2 values.
	data, _ := os.ReadFile(filepath.Join(dir, "table2.csv"))
	if !strings.Contains(string(data), "13.0000") || !strings.Contains(string(data), "23.6000") {
		t.Errorf("table2.csv missing sensitivities:\n%s", data)
	}
}

package harness

import (
	"context"
	"fmt"
	"io"
	"time"

	"edgeejb/internal/latency"
	"edgeejb/internal/loadgen"
	"edgeejb/internal/slicache"
	"edgeejb/internal/trade"
)

// FaultOptions configures a fault-injection experiment: the Figure 6
// workload re-run with the delay proxy flipped into fault mode, so the
// question changes from "how slow is the edge?" to "does the edge
// survive the wide-area path misbehaving?".
type FaultOptions struct {
	// Pairs are the cells to harden-test; nil means the Figure 6 trio.
	Pairs []Pair
	// Populate sizes the Trade database.
	Populate trade.PopulateConfig
	// OneWayDelay is the baseline delay on the shared path.
	OneWayDelay time.Duration
	// Sessions per measured pass (default 80).
	Sessions int
	// WarmupSessions before the clean pass (default 20).
	WarmupSessions int
	// Plan is the fault schedule applied during the faulted pass. A
	// zero-value plan gets a moderate default schedule.
	Plan latency.FaultPlan
	// SessionRetries and StepTimeout configure the resilient load
	// generator (see loadgen.ResilientConfig).
	SessionRetries int
	StepTimeout    time.Duration
	// DegradeBound, when > 0, enables slicache degraded reads with that
	// staleness bound on cached-algorithm pairs.
	DegradeBound time.Duration
	// CacheOptions are extra slicache manager options applied to
	// cached-algorithm pairs (after the DegradeBound option).
	CacheOptions []slicache.ManagerOption
}

// DefaultFaultPlan returns a moderate schedule: occasional connection
// dooms, rare stalls, rare truncations. Severe enough that a run
// without retries visibly fails, mild enough that bounded backoff
// recovers nearly every session.
func DefaultFaultPlan(seed int64) latency.FaultPlan {
	return latency.FaultPlan{
		Seed:          seed,
		ResetRate:     0.08,
		ResetAfterMax: 64 * 1024,
		StallRate:     0.01,
		StallFor:      25 * time.Millisecond,
		TruncateRate:  0.005,
	}
}

// FaultReport is the outcome for one (architecture, algorithm) cell.
type FaultReport struct {
	Pair Pair
	// Clean is the resilient run with no faults injected.
	Clean loadgen.ResilientResult
	// Faulted is the same workload under the fault schedule.
	Faulted loadgen.ResilientResult
	// WireRetries is the transport-level retry count consumed on the
	// shared path during the faulted pass.
	WireRetries uint64
	// Faults are the proxy's injection counters for the faulted pass.
	Faults latency.FaultStats
	// Resubscribes/Degradations/StaleServes aggregate the edge cache
	// managers' recovery counters over the faulted pass (cached
	// algorithm only).
	Resubscribes uint64
	Degradations uint64
	StaleServes  uint64
}

// LatencyOverheadPct is the faulted pass's mean-latency overhead over
// the clean pass, in percent.
func (r FaultReport) LatencyOverheadPct() float64 {
	if r.Clean.Latency.Mean == 0 {
		return 0
	}
	return 100 * (r.Faulted.Latency.Mean - r.Clean.Latency.Mean) / r.Clean.Latency.Mean
}

// RunFaultExperiment measures each pair twice on one topology — a clean
// pass, then the same workload with the fault plan active — and reports
// session survival, retry consumption, and latency overhead. logf, if
// non-nil, receives progress lines.
func RunFaultExperiment(ctx context.Context, opts FaultOptions, logf func(format string, args ...any)) ([]FaultReport, error) {
	pairs := opts.Pairs
	if pairs == nil {
		pairs = []Pair{
			{ClientsRAS, AlgJDBC},
			{ESRBES, AlgCachedEJB},
			{ESRDB, AlgJDBC},
		}
	}
	if opts.Sessions < 1 {
		opts.Sessions = 80
	}
	if opts.WarmupSessions == 0 {
		opts.WarmupSessions = 20
	}
	if !opts.Plan.Active() {
		opts.Plan = DefaultFaultPlan(1)
	}

	var reports []FaultReport
	for _, pair := range pairs {
		rep, err := runFaultPair(ctx, pair, opts, logf)
		if err != nil {
			return reports, fmt.Errorf("harness: faults %s: %w", pair, err)
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

func runFaultPair(ctx context.Context, pair Pair, opts FaultOptions, logf func(string, ...any)) (FaultReport, error) {
	var cacheOpts []slicache.ManagerOption
	if opts.DegradeBound > 0 {
		cacheOpts = append(cacheOpts, slicache.WithDegradedReads(opts.DegradeBound))
	}
	cacheOpts = append(cacheOpts, opts.CacheOptions...)
	topo, err := Build(Options{
		Arch:         pair.Arch,
		Algo:         pair.Algo,
		OneWayDelay:  opts.OneWayDelay,
		Populate:     opts.Populate,
		CacheOptions: cacheOpts,
	})
	if err != nil {
		return FaultReport{}, err
	}
	defer topo.Close()

	client := topo.NewWebClient()
	gen := trade.NewGenerator(trade.GeneratorConfig{
		Seed:    opts.Plan.Seed,
		Users:   opts.Populate.Users,
		Symbols: opts.Populate.Symbols,
	})
	rcfg := loadgen.ResilientConfig{
		Client:         client,
		Generator:      gen,
		Sessions:       opts.Sessions,
		SessionRetries: opts.SessionRetries,
		StepTimeout:    opts.StepTimeout,
	}

	// Warmup + clean pass.
	warm := rcfg
	warm.Sessions = opts.WarmupSessions
	if opts.WarmupSessions > 0 {
		if _, err := loadgen.RunResilient(ctx, warm); err != nil {
			return FaultReport{}, fmt.Errorf("warmup: %w", err)
		}
	}
	clean, err := loadgen.RunResilient(ctx, rcfg)
	if err != nil {
		return FaultReport{}, fmt.Errorf("clean pass: %w", err)
	}
	if logf != nil {
		logf("  %s clean: %d/%d sessions, mean %.2f ms",
			pair, clean.Succeeded, clean.Succeeded+clean.Failed, clean.Latency.Mean)
	}

	// Faulted pass: count retries consumed during this pass only.
	retriesBefore := topo.SharedPathStats().Retries
	mgrBefore := sumManagerStats(topo)
	topo.Proxy.SetFaults(&opts.Plan)
	faulted, err := loadgen.RunResilient(ctx, rcfg)
	faultStats := topo.Proxy.FaultStats()
	topo.Proxy.SetFaults(nil)
	if err != nil {
		return FaultReport{}, fmt.Errorf("faulted pass: %w", err)
	}
	mgrAfter := sumManagerStats(topo)

	rep := FaultReport{
		Pair:         pair,
		Clean:        clean,
		Faulted:      faulted,
		WireRetries:  topo.SharedPathStats().Retries - retriesBefore,
		Faults:       faultStats,
		Resubscribes: mgrAfter.Resubscribes - mgrBefore.Resubscribes,
		Degradations: mgrAfter.Degradations - mgrBefore.Degradations,
		StaleServes:  mgrAfter.StaleServes - mgrBefore.StaleServes,
	}
	if logf != nil {
		logf("  %s faulted: %d/%d sessions (%.1f%%), %d wire retries, %d session retries, +%.1f%% latency",
			pair, faulted.Succeeded, faulted.Succeeded+faulted.Failed,
			100*faulted.SuccessRate(), rep.WireRetries, faulted.SessionRetries,
			rep.LatencyOverheadPct())
	}
	return rep, nil
}

// WriteFaultReport renders the fault experiment as a table.
func WriteFaultReport(w io.Writer, reports []FaultReport) {
	fmt.Fprintln(w, "Fault injection: Figure 6 workload under a faulted shared path")
	fmt.Fprintf(w, "%-26s %9s %12s %12s %10s %12s %12s\n",
		"configuration", "success", "wire-retry", "sess-retry", "overhead", "resubscribe", "stale-serve")
	for _, r := range reports {
		total := r.Faulted.Succeeded + r.Faulted.Failed
		fmt.Fprintf(w, "%-26s %8.1f%% %12d %12d %9.1f%% %12d %12d\n",
			r.Pair.String(), 100*r.Faulted.SuccessRate(), r.WireRetries,
			r.Faulted.SessionRetries, r.LatencyOverheadPct(),
			r.Resubscribes, r.StaleServes)
		fmt.Fprintf(w, "%-26s   (%d/%d sessions; faults: %d resets, %d truncations, %d stalls)\n",
			"", r.Faulted.Succeeded, total,
			r.Faults.ConnResets, r.Faults.Truncations, r.Faults.Stalls)
	}
}

// sumManagerStats aggregates the cache managers' counters (zero value
// for non-cached algorithms).
func sumManagerStats(t *Topology) slicache.ManagerStats {
	var out slicache.ManagerStats
	for _, m := range t.Managers {
		if m == nil {
			continue
		}
		s := m.Stats()
		out.Resubscribes += s.Resubscribes
		out.Degradations += s.Degradations
		out.StaleServes += s.StaleServes
	}
	return out
}

package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"edgeejb/internal/obs"
	"edgeejb/internal/obs/collect"
	"edgeejb/internal/obs/prof"
	"edgeejb/internal/regress"
)

// Artifacts is one benchmark run's output directory: traces, per-phase
// time series, registry diffs, and the figure reports, indexed by a
// MANIFEST.json so downstream tooling (and future perf PRs comparing
// runs) can find everything without guessing filenames.
type Artifacts struct {
	// Dir is the run directory (a timestamped child of the root passed
	// to NewArtifacts).
	Dir string

	manifest Manifest
}

// Manifest is the MANIFEST.json written by Close.
type Manifest struct {
	CreatedAt time.Time      `json:"created_at"`
	Args      []string       `json:"args,omitempty"`
	Traces    *TraceStats    `json:"traces,omitempty"`
	Phases    []PhaseRecord  `json:"phases,omitempty"`
	Files     []ManifestFile `json:"files"`
}

// ManifestFile indexes one artifact.
type ManifestFile struct {
	// Path is relative to the run directory.
	Path string `json:"path"`
	// Kind is one of: trace, waterfalls, timeseries, registry-diff,
	// report, csv, profile, summary, events, manifest.
	Kind string `json:"kind"`
	// Desc says what the file holds, in one line.
	Desc string `json:"desc"`
	// Phase names the experiment phase the file covers, when it covers
	// just one.
	Phase string `json:"phase,omitempty"`
}

// PhaseRecord is one experiment phase's wall-clock window.
type PhaseRecord struct {
	Name  string    `json:"name"`
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
}

// TraceStats summarizes the run's trace assembly, including how many
// spans the ring buffer evicted before collection — nonzero Dropped
// means some traces are knowingly incomplete rather than silently
// wrong.
type TraceStats struct {
	Assembled  int    `json:"assembled"`
	Complete   int    `json:"complete"`
	Incomplete int    `json:"incomplete"`
	Dropped    uint64 `json:"spans_dropped"`
}

// NewArtifacts creates a timestamped run directory under root and
// returns its artifact writer. Call Close to write MANIFEST.json.
func NewArtifacts(root string, args []string) (*Artifacts, error) {
	dir := filepath.Join(root, "run-"+time.Now().Format("20060102-150405"))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("harness: artifacts dir: %w", err)
	}
	return &Artifacts{
		Dir:      dir,
		manifest: Manifest{CreatedAt: time.Now(), Args: args},
	}, nil
}

// RecordPhase logs one experiment phase's window in the manifest.
func (a *Artifacts) RecordPhase(name string, start, end time.Time) {
	a.manifest.Phases = append(a.manifest.Phases, PhaseRecord{Name: name, Start: start, End: end})
}

// WriteFile streams fn into name inside the run directory and indexes
// it in the manifest.
func (a *Artifacts) WriteFile(name, kind, desc, phase string, fn func(io.Writer) error) error {
	f, err := os.Create(filepath.Join(a.Dir, name))
	if err != nil {
		return fmt.Errorf("harness: artifact %s: %w", name, err)
	}
	werr := fn(f)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("harness: artifact %s: %w", name, werr)
	}
	if cerr != nil {
		return fmt.Errorf("harness: artifact %s: %w", name, cerr)
	}
	a.manifest.Files = append(a.manifest.Files, ManifestFile{Path: name, Kind: kind, Desc: desc, Phase: phase})
	return nil
}

// WriteTimeSeries writes one phase's metric samples as a CSV time
// series (schema documented in OBSERVABILITY.md).
func (a *Artifacts) WriteTimeSeries(phase string, samples []obs.Sample) error {
	name := "timeseries_" + phase + ".csv"
	return a.WriteFile(name, "timeseries", "per-sample metric time series for the "+phase+" phase", phase,
		func(w io.Writer) error { return obs.WriteSamplesCSV(w, samples) })
}

// WriteRegistryDiff writes the metric activity one phase accumulated.
func (a *Artifacts) WriteRegistryDiff(phase string, diff obs.Snapshot) error {
	name := "metrics_" + phase + ".txt"
	return a.WriteFile(name, "registry-diff", "metrics accumulated by the "+phase+" phase", phase,
		func(w io.Writer) error { return diff.WriteText(w) })
}

// WriteTraces writes the assembled traces as Perfetto-loadable
// trace-event JSON plus a plain-text waterfall file holding the
// nWaterfalls slowest and nWaterfalls median traces. dropped is the
// span ring's eviction count at collection time.
func (a *Artifacts) WriteTraces(traces []*collect.Trace, nWaterfalls int, dropped uint64) error {
	stats := &TraceStats{Assembled: len(traces), Dropped: dropped}
	for _, t := range traces {
		if t.Complete {
			stats.Complete++
		} else {
			stats.Incomplete++
		}
	}
	a.manifest.Traces = stats

	err := a.WriteFile("trace.perfetto.json", "trace",
		"Chrome trace-event JSON of every assembled trace (load in ui.perfetto.dev)", "",
		func(w io.Writer) error { return collect.WriteTraceEvents(w, traces) })
	if err != nil {
		return err
	}
	return a.WriteFile("waterfalls.txt", "waterfalls",
		fmt.Sprintf("plain-text waterfalls of the %d slowest and %d median traces", nWaterfalls, nWaterfalls), "",
		func(w io.Writer) error {
			fmt.Fprintf(w, "%d traces assembled (%d complete, %d incomplete, %d spans dropped before collection)\n\n",
				stats.Assembled, stats.Complete, stats.Incomplete, dropped)
			fmt.Fprintf(w, "== %d slowest ==\n", nWaterfalls)
			for _, t := range collect.Slowest(traces, nWaterfalls) {
				if err := collect.WriteWaterfall(w, t); err != nil {
					return err
				}
				fmt.Fprintln(w)
			}
			fmt.Fprintf(w, "== %d median ==\n", nWaterfalls)
			for _, t := range collect.Medians(traces, nWaterfalls) {
				if err := collect.WriteWaterfall(w, t); err != nil {
					return err
				}
				fmt.Fprintln(w)
			}
			return nil
		})
}

// WriteEvents writes the run's forensic event artifacts: the full event
// stream as JSON Lines, plus the conflict and invalidation-latency CSV
// extracts. Headers are always written, so the files are valid (and
// indexed) even for an incident-free run.
func (a *Artifacts) WriteEvents(events []obs.Event) error {
	if err := a.WriteFile("events.jsonl", "events",
		"forensic event stream (conflict/invalidation/degrade/evict), one JSON object per line", "",
		func(w io.Writer) error { return obs.WriteEventsJSONL(w, events) }); err != nil {
		return err
	}
	if err := a.WriteFile("conflicts.csv", "csv",
		"one row per optimistic-commit abort, with loser/winner trace attribution", "",
		func(w io.Writer) error { return WriteConflictsCSV(w, events) }); err != nil {
		return err
	}
	return a.WriteFile("invalidation_latency.csv", "csv",
		"one row per invalidation notice received at an edge, with push latency and staleness window", "",
		func(w io.Writer) error { return WriteInvalidationCSV(w, events) })
}

// WriteEvalReports writes the figure/table reports and CSV exports for
// a finished evaluation.
func (a *Artifacts) WriteEvalReports(e *Evaluation) error {
	if err := a.WriteFile("report.txt", "report",
		"Figures 6-8 and Table 2, as tradebench prints them", "evaluation",
		func(w io.Writer) error { e.WriteAll(w); return nil }); err != nil {
		return err
	}
	if err := a.WriteFile("forensics.txt", "report",
		"per-point conflict matrices, hot keys, and per-bean cache hit ratios", "evaluation",
		func(w io.Writer) error {
			for _, s := range e.Fig6Series() {
				if err := WriteForensics(w, s); err != nil {
					return err
				}
				fmt.Fprintln(w)
			}
			return nil
		}); err != nil {
		return err
	}
	if err := e.WriteCSV(a.Dir); err != nil {
		return err
	}
	for _, f := range []struct{ name, desc string }{
		{"fig6.csv", "Figure 6 latency curves (architecture comparison)"},
		{"fig7.csv", "Figure 7 latency curves (ES/RDB algorithms)"},
		{"table2.csv", "Table 2 latency sensitivities"},
		{"fig8.csv", "Figure 8 bytes and wire round trips per interaction"},
	} {
		a.manifest.Files = append(a.manifest.Files,
			ManifestFile{Path: f.name, Kind: "csv", Desc: f.desc, Phase: "evaluation"})
	}
	return nil
}

// WriteCriticalPath writes the run's critical-path attribution as
// critical_path.csv — one row per (lane, tier, span) bucket with the
// blocking-path milliseconds per trace overall and in the p50/p95/p99
// root-duration tails.
func (a *Artifacts) WriteCriticalPath(attr *collect.Attribution) error {
	return a.WriteFile("critical_path.csv", "csv",
		"critical-path attribution: blocking-path ms per trace by (lane, tier, span), overall and in the slow tails", "",
		func(w io.Writer) error { return collect.WriteCriticalPathCSV(w, attr) })
}

// IndexFile records a file some other writer already placed in the run
// directory (the profile capturer streams .pb.gz files itself).
func (a *Artifacts) IndexFile(name, kind, desc, phase string) {
	a.manifest.Files = append(a.manifest.Files, ManifestFile{Path: name, Kind: kind, Desc: desc, Phase: phase})
}

// WriteProfiles indexes the per-phase profile captures and writes the
// aggregated hotspot CSVs (cpu_hotspots.csv, alloc_hotspots.csv).
func (a *Artifacts) WriteProfiles(files []prof.CapturedFile, hotspots *prof.HotspotSet) error {
	for _, f := range files {
		a.IndexFile(f.Name, "profile", f.Desc, f.Phase)
	}
	if hotspots == nil {
		return nil
	}
	if err := a.WriteFile("cpu_hotspots.csv", "csv",
		"top self-CPU functions per (phase, source), aggregated from the CPU profiles", "",
		hotspots.WriteCPUHotspotsCSV); err != nil {
		return err
	}
	return a.WriteFile("alloc_hotspots.csv", "csv",
		"top allocation sites per (phase, source), aggregated from the heap delta profiles", "",
		hotspots.WriteAllocHotspotsCSV)
}

// WriteSummary writes the run's canonical machine-readable result set
// as summary.json — the file benchdiff compares and the CI perf gate
// baselines.
func (a *Artifacts) WriteSummary(s *regress.Summary) error {
	return a.WriteFile(regress.SummaryFile, "summary",
		"canonical machine-readable run summary (latency, wire, throughput, shard, cache, and critical-path metrics) for benchdiff", "",
		func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(s)
		})
}

// Close writes MANIFEST.json. The artifacts remain readable; Close just
// finalizes the index.
func (a *Artifacts) Close() error {
	return a.WriteFile("MANIFEST.json", "manifest", "this index", "",
		func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(a.manifest)
		})
}

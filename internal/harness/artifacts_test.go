package harness

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"edgeejb/internal/obs"
	"edgeejb/internal/obs/collect"
)

func TestArtifactsLifecycle(t *testing.T) {
	root := t.TempDir()
	art, err := NewArtifacts(root, []string{"-fig6", "-out-dir", root})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(filepath.Base(art.Dir), "run-") {
		t.Fatalf("run dir not timestamped: %s", art.Dir)
	}

	// A phase window plus its two per-phase artifacts.
	start := time.Now().Add(-time.Second)
	end := time.Now()
	art.RecordPhase("fig6", start, end)

	reg := obs.NewRegistry()
	reg.Counter("test.count").Add(3)
	reg.Histogram("test.lat").Observe(2 * time.Millisecond)
	s := obs.NewSampler(reg, time.Hour, 4)
	s.SampleNow()
	if err := art.WriteTimeSeries("fig6", s.Samples()); err != nil {
		t.Fatal(err)
	}
	if err := art.WriteRegistryDiff("fig6", reg.Snapshot()); err != nil {
		t.Fatal(err)
	}

	// A tiny assembled trace set.
	base := time.Now()
	traces := collect.Assemble(collect.Batch{Source: "proc", Spans: []obs.SpanRecord{
		{Trace: 1, Span: 1, Name: "client.interaction", Tier: "client", Start: base, Dur: 5 * time.Millisecond},
		{Trace: 1, Span: 2, Parent: 1, Name: "edge.request", Tier: "edge", Start: base.Add(time.Millisecond), Dur: 3 * time.Millisecond},
	}})
	if err := art.WriteTraces(traces, 2, 7); err != nil {
		t.Fatal(err)
	}
	if err := art.Close(); err != nil {
		t.Fatal(err)
	}

	// Every indexed file exists; the manifest round-trips.
	raw, err := os.ReadFile(filepath.Join(art.Dir, "MANIFEST.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("MANIFEST.json does not parse: %v", err)
	}
	// MANIFEST.json indexes everything but itself.
	wantKinds := map[string]bool{"timeseries": false, "registry-diff": false, "trace": false, "waterfalls": false}
	for _, f := range m.Files {
		if _, err := os.Stat(filepath.Join(art.Dir, f.Path)); err != nil {
			t.Fatalf("manifest lists missing file %s: %v", f.Path, err)
		}
		if _, ok := wantKinds[f.Kind]; ok {
			wantKinds[f.Kind] = true
		}
	}
	for kind, seen := range wantKinds {
		if !seen {
			t.Fatalf("manifest missing a %q artifact: %+v", kind, m.Files)
		}
	}
	if len(m.Phases) != 1 || m.Phases[0].Name != "fig6" {
		t.Fatalf("bad phases: %+v", m.Phases)
	}
	if m.Traces == nil || m.Traces.Assembled != 1 || m.Traces.Complete != 1 || m.Traces.Dropped != 7 {
		t.Fatalf("bad trace stats: %+v", m.Traces)
	}

	// The waterfall file carries the drop count so incompleteness is
	// never silent.
	wf, err := os.ReadFile(filepath.Join(art.Dir, "waterfalls.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(wf), "7 spans dropped") {
		t.Fatalf("waterfalls.txt missing drop count:\n%s", wf)
	}
}

func TestArtifactsWriteFileError(t *testing.T) {
	art, err := NewArtifacts(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	werr := art.WriteFile("bad.txt", "report", "fails", "", func(io.Writer) error {
		return os.ErrInvalid
	})
	if werr == nil {
		t.Fatal("expected error from failing writer")
	}
	// A failed write must not be indexed.
	if err := art.Close(); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(filepath.Join(art.Dir, "MANIFEST.json"))
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, f := range m.Files {
		if f.Path == "bad.txt" {
			t.Fatal("failed artifact indexed in manifest")
		}
	}
}

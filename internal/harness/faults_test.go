package harness

import (
	"context"
	"runtime"
	"testing"
	"time"

	"edgeejb/internal/latency"
	"edgeejb/internal/trade"
)

// TestFaultExperimentSurvives runs the split-servers cell under an
// aggressive fault schedule and checks the resilience machinery holds:
// sessions overwhelmingly succeed via retries, faults were actually
// injected, and the topology tears down without leaking goroutines.
func TestFaultExperimentSurvives(t *testing.T) {
	if testing.Short() {
		t.Skip("fault experiment is seconds-long")
	}
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	reports, err := RunFaultExperiment(ctx, FaultOptions{
		Pairs:    []Pair{{ESRBES, AlgCachedEJB}},
		Populate: trade.PopulateConfig{Users: 20, Symbols: 40, HoldingsPerUser: 2, OpenBalance: 1_000_000},
		Sessions: 40,
		Plan: latency.FaultPlan{
			Seed:          11,
			ResetRate:     0.5,
			ResetAfterMax: 32 * 1024,
			StallRate:     0.02,
			StallFor:      10 * time.Millisecond,
			TruncateRate:  0.01,
		},
		DegradeBound:   5 * time.Second,
		SessionRetries: 5,
		StepTimeout:    15 * time.Second,
	}, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 {
		t.Fatalf("got %d reports, want 1", len(reports))
	}
	r := reports[0]

	if total := r.Faulted.Succeeded + r.Faulted.Failed; total != 40 {
		t.Fatalf("attempted %d sessions, want 40", total)
	}
	if rate := r.Faulted.SuccessRate(); rate < 0.95 {
		t.Fatalf("faulted success rate %.2f, want >= 0.95 (%+v)", rate, r.Faulted)
	}
	if r.Faults == (latency.FaultStats{}) {
		t.Fatal("no faults were injected")
	}
	if r.Faults.ConnResets > 0 && r.WireRetries == 0 && r.Faulted.SessionRetries == 0 {
		t.Fatalf("connections were reset but nothing retried: %+v", r)
	}
	if r.Clean.SuccessRate() != 1.0 {
		t.Fatalf("clean pass lost sessions: %+v", r.Clean)
	}

	// Everything is closed: goroutine count must settle back. A couple
	// of runtime-internal goroutines may linger.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+3 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+3 {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutines leaked: %d before, %d after\n%s",
			before, n, buf[:runtime.Stack(buf, true)])
	}
}

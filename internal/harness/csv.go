package harness

import (
	"encoding/csv"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
)

// WriteCSV exports every figure and table as CSV files in dir (created
// if needed), so the curves can be re-plotted with any tool:
//
//	fig6.csv    delay_ms, <series...>        (architecture comparison)
//	fig7.csv    delay_ms, <series...>        (ES/RDB algorithms)
//	table2.csv  algorithm, architecture, sensitivity, r2
//	fig8.csv    configuration, bytes_per_interaction, wire_round_trips_per_interaction
func (e *Evaluation) WriteCSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("harness: csv dir: %w", err)
	}
	if err := writeSweepCSV(filepath.Join(dir, "fig6.csv"), e.Fig6Series()); err != nil {
		return err
	}
	if err := writeSweepCSV(filepath.Join(dir, "fig7.csv"), e.Fig7Series()); err != nil {
		return err
	}
	if err := e.writeTable2CSV(filepath.Join(dir, "table2.csv")); err != nil {
		return err
	}
	return e.writeFig8CSV(filepath.Join(dir, "fig8.csv"))
}

func writeSweepCSV(path string, sweeps []Sweep) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("harness: %s: %w", path, err)
	}
	defer f.Close()
	w := csv.NewWriter(f)

	header := []string{"delay_ms"}
	for _, s := range sweeps {
		header = append(header, s.Arch.String()+" "+s.Algo.String())
	}
	if err := w.Write(header); err != nil {
		return err
	}
	if len(sweeps) > 0 {
		for i := range sweeps[0].Points {
			row := []string{formatFloat(sweeps[0].Points[i].OneWayDelayMs)}
			for _, s := range sweeps {
				if i < len(s.Points) {
					row = append(row, formatFloat(s.Points[i].MeanLatencyMs))
				} else {
					row = append(row, "")
				}
			}
			if err := w.Write(row); err != nil {
				return err
			}
		}
	}
	w.Flush()
	return w.Error()
}

func (e *Evaluation) writeTable2CSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("harness: %s: %w", path, err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"algorithm", "architecture", "sensitivity", "r2"}); err != nil {
		return err
	}
	for _, cell := range e.Table2() {
		row := []string{cell.Pair.Algo.String(), cell.Pair.Arch.String()}
		if cell.NA {
			row = append(row, "", "")
		} else {
			row = append(row, formatFloat(cell.Sensitivity), formatFloat(cell.R2))
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func (e *Evaluation) writeFig8CSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("harness: %s: %w", path, err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"configuration", "bytes_per_interaction", "wire_round_trips_per_interaction"}); err != nil {
		return err
	}
	for _, row := range e.Fig8Rows() {
		rec := []string{
			row.Pair.String(),
			formatFloat(row.BytesPerInteraction),
			formatFloat(row.RoundTripsPerInteraction),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func formatFloat(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		// Undefined cells (e.g. the fit of a single-delay sweep) export
		// as "n/a" rather than a literal NaN that breaks CSV consumers.
		return "n/a"
	}
	return strconv.FormatFloat(v, 'f', 4, 64)
}

package harness

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"time"

	"edgeejb/internal/loadgen"
	"edgeejb/internal/obs"
	"edgeejb/internal/stats"
	"edgeejb/internal/trade"
)

// RunOptions configures a delay sweep over one topology.
type RunOptions struct {
	// Delays are the one-way delays to sweep (the x-axis of Figures
	// 6–7). Zero is a legitimate point (LAN baseline).
	Delays []time.Duration
	// Sessions measured per delay point (paper: 300).
	Sessions int
	// WarmupSessions run once, before the first point (paper: 400).
	WarmupSessions int
	// Batches for batched latency means (paper: 20).
	Batches int
	// Workload sizes the session generator; Users/Symbols should match
	// the topology's Populate config.
	Workload trade.GeneratorConfig
}

// DefaultRunOptions returns a laptop-scale run: delays scaled to keep
// wall-clock reasonable (latency sensitivity is a slope and is
// invariant to the delay scale; see DESIGN.md §7).
func DefaultRunOptions() RunOptions {
	return RunOptions{
		Delays: []time.Duration{
			0, time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond,
		},
		Sessions:       25,
		WarmupSessions: 8,
		Batches:        20,
		Workload:       trade.GeneratorConfig{Seed: 42, Users: 50, Symbols: 100},
	}
}

// Point is one delay point of a sweep.
type Point struct {
	// OneWayDelayMs is the injected one-way delay, in milliseconds.
	OneWayDelayMs float64
	// MeanLatencyMs is the mean client-interaction latency (Figure 6/7
	// y-axis).
	MeanLatencyMs float64
	// SharedBytesPerInteraction is the traffic on the shared
	// (high-latency) path divided by measured interactions (Figure 8),
	// as counted by the wire transport on the sending side of that path.
	SharedBytesPerInteraction float64
	// SharedRoundTripsPerInteraction is the number of wire round trips
	// on the shared path per client interaction — the "communication
	// cost" the paper's algorithms compete on.
	SharedRoundTripsPerInteraction float64
	// Load is the full measurement for this point.
	Load loadgen.Result
	// Spans maps span names (client.interaction, edge.request,
	// slicache.commit, backend.apply, ...) to the latency histograms
	// they accumulated during this point, diffed from the process-wide
	// obs registry. The harness runs every tier in-process, so the map
	// covers the whole edge → backend → store path and decomposes
	// MeanLatencyMs into per-hop time.
	Spans map[string]obs.HistSnapshot
	// Counters is the full counter diff for the point, including labeled
	// children like slicache.hits{bean=quote} — the raw material of the
	// per-bean hit-ratio tables in the forensics report.
	Counters map[string]uint64
	// Events are the forensic events (conflicts, invalidations,
	// degradations, evictions) emitted during this point.
	Events []obs.Event
}

// Sweep is one (architecture, algorithm) latency curve.
type Sweep struct {
	Arch   Architecture
	Algo   Algorithm
	Points []Point
	// Fit is the least-squares line through (delay, latency): Fit.Slope
	// is the paper's latency sensitivity (Table 2).
	Fit stats.Fit
}

// Sensitivity returns the latency-sensitivity slope (dimensionless:
// ms of client latency per ms of one-way delay).
func (s Sweep) Sensitivity() float64 { return s.Fit.Slope }

// RunSweep builds the topology, warms it up, then measures every delay
// point. The topology is built once and the delay adjusted in place, so
// caches stay warm across points exactly as a long-running edge server's
// would.
func RunSweep(ctx context.Context, opts Options, run RunOptions) (Sweep, error) {
	if len(run.Delays) == 0 {
		return Sweep{}, fmt.Errorf("harness: sweep needs at least one delay point")
	}
	opts.OneWayDelay = run.Delays[0]
	topo, err := Build(opts)
	if err != nil {
		return Sweep{}, err
	}
	defer topo.Close()
	return RunSweepOn(ctx, topo, run)
}

// RunSweepOn measures an already-built topology. Used directly by tests
// and ablations that need access to the topology's internals.
func RunSweepOn(ctx context.Context, topo *Topology, run RunOptions) (Sweep, error) {
	client := topo.NewWebClient()
	defer client.Close()
	gen := trade.NewGenerator(run.Workload)

	// One warmup at the first delay point.
	topo.SetDelay(run.Delays[0])
	if run.WarmupSessions > 0 {
		if _, err := loadgen.Run(ctx, loadgen.Config{
			Client:    client,
			Generator: gen,
			Sessions:  run.WarmupSessions,
			Batches:   run.Batches,
		}); err != nil {
			return Sweep{}, fmt.Errorf("harness: warmup: %w", err)
		}
	}

	sweep := Sweep{Arch: topo.Arch, Algo: topo.Algo}
	for _, d := range run.Delays {
		topo.SetDelay(d)
		before := topo.SharedPathStats()
		obsBefore := obs.Default.Snapshot()
		seqBefore := obs.DefaultEvents.Seq()
		res, err := loadgen.Run(ctx, loadgen.Config{
			Client:    client,
			Generator: gen,
			Sessions:  run.Sessions,
			Batches:   run.Batches,
		})
		if err != nil {
			return Sweep{}, fmt.Errorf("harness: delay %v: %w", d, err)
		}
		after := topo.SharedPathStats()
		diff := obs.Default.Diff(obsBefore)
		point := Point{
			OneWayDelayMs: float64(d) / float64(time.Millisecond),
			MeanLatencyMs: res.MeanLatencyMs(),
			Load:          res,
			Spans:         spanDiff(diff),
			Counters:      diff.Counters,
			Events:        obs.DefaultEvents.Since(seqBefore),
		}
		if res.Interactions > 0 {
			point.SharedBytesPerInteraction =
				float64(after.Bytes()-before.Bytes()) / float64(res.Interactions)
			point.SharedRoundTripsPerInteraction =
				float64(after.RoundTrips-before.RoundTrips) / float64(res.Interactions)
		}
		sweep.Points = append(sweep.Points, point)
	}

	xs := make([]float64, len(sweep.Points))
	ys := make([]float64, len(sweep.Points))
	for i, p := range sweep.Points {
		xs[i] = p.OneWayDelayMs
		ys[i] = p.MeanLatencyMs
	}
	if len(xs) >= 2 {
		fit, err := stats.LinearFit(xs, ys)
		switch {
		case err == nil:
			sweep.Fit = fit
		case errors.Is(err, stats.ErrDegenerate) || errors.Is(err, stats.ErrInsufficientData):
			// A single-delay sweep (or repeated delay points) has no
			// sensitivity to fit. The measured points are still valid —
			// mark the fit undefined instead of failing the whole sweep;
			// report writers render NaN as "n/a".
			nan := math.NaN()
			sweep.Fit = stats.Fit{Slope: nan, Intercept: nan, R2: nan}
		default:
			return Sweep{}, fmt.Errorf("harness: fit: %w", err)
		}
	}
	return sweep, nil
}

// spanDiff extracts the span latency histograms from a registry diff,
// keyed by bare span name.
func spanDiff(diff obs.Snapshot) map[string]obs.HistSnapshot {
	spans := make(map[string]obs.HistSnapshot)
	for name, h := range diff.Histograms {
		if rest, ok := strings.CutPrefix(name, "span."); ok {
			spans[rest] = h
		}
	}
	return spans
}

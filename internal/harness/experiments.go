package harness

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"edgeejb/internal/slicache"
	"edgeejb/internal/stats"
	"edgeejb/internal/trade"
)

// Pair is one (architecture, algorithm) evaluation cell.
type Pair struct {
	Arch Architecture
	Algo Algorithm
}

// String renders the cell name.
func (p Pair) String() string { return p.Arch.String() + " / " + p.Algo.String() }

// AllPairs lists every cell the paper evaluates: three algorithms under
// ES/RDB and Clients/RAS, and cached EJBs under ES/RBES (the only
// algorithm that architecture admits).
func AllPairs() []Pair {
	return []Pair{
		{ESRDB, AlgCachedEJB},
		{ESRDB, AlgJDBC},
		{ESRDB, AlgVanillaEJB},
		{ESRBES, AlgCachedEJB},
		{ClientsRAS, AlgCachedEJB},
		{ClientsRAS, AlgJDBC},
		{ClientsRAS, AlgVanillaEJB},
	}
}

// EvalConfig sizes a full evaluation.
type EvalConfig struct {
	Run      RunOptions
	Populate trade.PopulateConfig
	// CacheOptions configures every slicache manager the evaluation
	// builds; only the cache-enabled cells are affected. The tradebench
	// -finder-cache flag threads through here.
	CacheOptions []slicache.ManagerOption
	// Codec selects the dbwire body codec for every topology the
	// evaluation builds ("" = dbwire default, binary). The tradebench
	// -codec flag threads through here.
	Codec string
	// Batch enables multi-statement batching in the pessimistic managers
	// (the tradebench -batch flag).
	Batch bool
}

// DefaultEvalConfig returns the laptop-scale evaluation described in
// DESIGN.md §7.
func DefaultEvalConfig() EvalConfig {
	return EvalConfig{
		Run:      DefaultRunOptions(),
		Populate: trade.DefaultPopulate(),
	}
}

// Evaluation holds every sweep needed to regenerate Figures 6–8 and
// Table 2.
type Evaluation struct {
	Sweeps map[Pair]Sweep
	Config EvalConfig
}

// RunEvaluation measures every (architecture, algorithm) cell. logf, if
// non-nil, receives progress lines.
func RunEvaluation(ctx context.Context, cfg EvalConfig, logf func(format string, args ...any)) (*Evaluation, error) {
	eval := &Evaluation{
		Sweeps: make(map[Pair]Sweep),
		Config: cfg,
	}
	for _, pair := range AllPairs() {
		if logf != nil {
			logf("running %s (delays %v, %d sessions/point)...",
				pair, cfg.Run.Delays, cfg.Run.Sessions)
		}
		start := time.Now()
		sweep, err := RunSweep(ctx, Options{
			Arch:         pair.Arch,
			Algo:         pair.Algo,
			Populate:     cfg.Populate,
			CacheOptions: cfg.CacheOptions,
			Codec:        cfg.Codec,
			Batch:        cfg.Batch,
		}, cfg.Run)
		if err != nil {
			return nil, fmt.Errorf("harness: %s: %w", pair, err)
		}
		eval.Sweeps[pair] = sweep
		if logf != nil {
			logf("  %s: sensitivity %.1f (R²=%.3f) in %v",
				pair, sweep.Sensitivity(), sweep.Fit.R2, time.Since(start).Round(time.Millisecond))
		}
	}
	return eval, nil
}

// Fig6Series returns the three series of Figure 6: the classic
// datacenter architecture, the cache-enabled split-servers edge
// architecture, and the best algorithm of the shared-database edge
// architecture (JDBC, per §4.4).
func (e *Evaluation) Fig6Series() []Sweep {
	return []Sweep{
		e.Sweeps[Pair{ClientsRAS, AlgJDBC}],
		e.Sweeps[Pair{ESRBES, AlgCachedEJB}],
		e.Sweeps[Pair{ESRDB, AlgJDBC}],
	}
}

// Fig7Series returns the three ES/RDB series of Figure 7.
func (e *Evaluation) Fig7Series() []Sweep {
	return []Sweep{
		e.Sweeps[Pair{ESRDB, AlgCachedEJB}],
		e.Sweeps[Pair{ESRDB, AlgJDBC}],
		e.Sweeps[Pair{ESRDB, AlgVanillaEJB}],
	}
}

// Table2Cell is one sensitivity entry of Table 2.
type Table2Cell struct {
	Pair        Pair
	Sensitivity float64
	R2          float64
	// NA marks the cells the paper leaves as N/A (non-cached algorithms
	// under ES/RBES).
	NA bool
}

// Table2 assembles the sensitivity table. Row order matches the paper:
// algorithms × {ES/RDB, ES/RBES, Clients/RAS}.
func (e *Evaluation) Table2() []Table2Cell {
	algos := []Algorithm{AlgCachedEJB, AlgJDBC, AlgVanillaEJB}
	archs := []Architecture{ESRDB, ESRBES, ClientsRAS}
	var cells []Table2Cell
	for _, algo := range algos {
		for _, arch := range archs {
			pair := Pair{arch, algo}
			if arch == ESRBES && algo != AlgCachedEJB {
				cells = append(cells, Table2Cell{Pair: pair, NA: true})
				continue
			}
			s, ok := e.Sweeps[pair]
			if !ok {
				cells = append(cells, Table2Cell{Pair: pair, NA: true})
				continue
			}
			cells = append(cells, Table2Cell{
				Pair:        pair,
				Sensitivity: s.Sensitivity(),
				R2:          s.Fit.R2,
			})
		}
	}
	return cells
}

// BandwidthRow is one bar of Figure 8.
type BandwidthRow struct {
	Pair Pair
	// BytesPerInteraction is traffic on the shared (high-latency) path
	// per client interaction, averaged over the sweep's points.
	BytesPerInteraction float64
	// RoundTripsPerInteraction is the number of wire round trips on the
	// shared path per client interaction, averaged the same way.
	RoundTripsPerInteraction float64
}

// Fig8Rows reports shared-path bandwidth for the three Figure 6
// configurations.
func (e *Evaluation) Fig8Rows() []BandwidthRow {
	series := []Pair{
		{ClientsRAS, AlgJDBC},
		{ESRBES, AlgCachedEJB},
		{ESRDB, AlgJDBC},
	}
	rows := make([]BandwidthRow, 0, len(series))
	for _, pair := range series {
		s, ok := e.Sweeps[pair]
		if !ok {
			continue
		}
		var bytesVals, rtVals []float64
		for _, p := range s.Points {
			bytesVals = append(bytesVals, p.SharedBytesPerInteraction)
			rtVals = append(rtVals, p.SharedRoundTripsPerInteraction)
		}
		rows = append(rows, BandwidthRow{
			Pair:                     pair,
			BytesPerInteraction:      stats.Mean(bytesVals),
			RoundTripsPerInteraction: stats.Mean(rtVals),
		})
	}
	return rows
}

// WriteFig6 renders Figure 6 as a text table.
func (e *Evaluation) WriteFig6(w io.Writer) {
	fmt.Fprintln(w, "Figure 6: Comparison of High-Latency Architectures")
	fmt.Fprintln(w, "(mean client-interaction latency in ms vs one-way delay in ms)")
	writeSweepTable(w, e.Fig6Series())
}

// WriteFig7 renders Figure 7 as a text table.
func (e *Evaluation) WriteFig7(w io.Writer) {
	fmt.Fprintln(w, "Figure 7: Edge-Servers Accessing Remote Database (ES/RDB)")
	fmt.Fprintln(w, "(mean client-interaction latency in ms vs one-way delay in ms)")
	writeSweepTable(w, e.Fig7Series())
}

// WriteTable2 renders Table 2.
func (e *Evaluation) WriteTable2(w io.Writer) {
	fmt.Fprintln(w, "Table 2: Algorithm Sensitivity to Communication Latency")
	fmt.Fprintf(w, "%-14s %12s %12s %12s\n", "Algorithm", "ES/RDB", "ES/RBES", "Clients/RAS")
	cells := e.Table2()
	byAlgo := make(map[Algorithm]map[Architecture]Table2Cell)
	for _, c := range cells {
		if byAlgo[c.Pair.Algo] == nil {
			byAlgo[c.Pair.Algo] = make(map[Architecture]Table2Cell)
		}
		byAlgo[c.Pair.Algo][c.Pair.Arch] = c
	}
	for _, algo := range []Algorithm{AlgCachedEJB, AlgJDBC, AlgVanillaEJB} {
		row := byAlgo[algo]
		fmt.Fprintf(w, "%-14s %12s %12s %12s\n", algo,
			formatCell(row[ESRDB]), formatCell(row[ESRBES]), formatCell(row[ClientsRAS]))
	}
}

// WriteFig8 renders Figure 8.
func (e *Evaluation) WriteFig8(w io.Writer) {
	fmt.Fprintln(w, "Figure 8: Bandwidth (bytes on the shared path per client interaction)")
	for _, row := range e.Fig8Rows() {
		fmt.Fprintf(w, "%-28s %8.0f bytes/interaction %8.1f wire-RTs/interaction\n",
			row.Pair, row.BytesPerInteraction, row.RoundTripsPerInteraction)
	}
}

// WriteAll renders every figure and table.
func (e *Evaluation) WriteAll(w io.Writer) {
	e.WriteFig6(w)
	fmt.Fprintln(w)
	e.WriteFig7(w)
	fmt.Fprintln(w)
	e.WriteTable2(w)
	fmt.Fprintln(w)
	e.WriteFig8(w)
}

func formatCell(c Table2Cell) string {
	if c.NA || math.IsNaN(c.Sensitivity) {
		return "N/A"
	}
	return fmt.Sprintf("%.1f", c.Sensitivity)
}

func writeSweepTable(w io.Writer, sweeps []Sweep) {
	if len(sweeps) == 0 {
		return
	}
	header := fmt.Sprintf("%-14s", "delay(ms)")
	for _, s := range sweeps {
		header += fmt.Sprintf(" %24s", s.Arch.String()+" "+s.Algo.String())
	}
	fmt.Fprintln(w, header)
	for i := range sweeps[0].Points {
		line := fmt.Sprintf("%-14.1f", sweeps[0].Points[i].OneWayDelayMs)
		for _, s := range sweeps {
			if i < len(s.Points) {
				line += fmt.Sprintf(" %24.2f", s.Points[i].MeanLatencyMs)
			} else {
				line += fmt.Sprintf(" %24s", "-")
			}
		}
		fmt.Fprintln(w, line)
	}
	foot := fmt.Sprintf("%-14s", "sensitivity")
	for _, s := range sweeps {
		if math.IsNaN(s.Sensitivity()) {
			foot += fmt.Sprintf(" %17s %7s", "n/a", "")
		} else {
			foot += fmt.Sprintf(" %17.1f (R²%.2f)", s.Sensitivity(), s.Fit.R2)
		}
	}
	fmt.Fprintln(w, foot)
	fmt.Fprintln(w, strings.Repeat("-", len(header)))
}

// WriteLatencyBreakdown renders where one sweep's client latency is
// spent, derived from the trace spans collected at each delay point:
// each span's mean duration (ms) and how many of that span a client
// interaction caused on average. Reading down a column shows which
// hops absorb the injected delay — a cache hit leaves slicache.miss_fetch
// flat while vanilla EJBs drag sqlstore.apply up with every ms.
func WriteLatencyBreakdown(w io.Writer, s Sweep) {
	names := make(map[string]struct{})
	for _, p := range s.Points {
		for n := range p.Spans {
			names[n] = struct{}{}
		}
	}
	if len(names) == 0 {
		return
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	fmt.Fprintf(w, "Latency breakdown: %s %s\n", s.Arch, s.Algo)
	fmt.Fprintln(w, "(per delay point: mean span duration in ms × spans per interaction)")
	header := fmt.Sprintf("%-10s", "delay(ms)")
	for _, n := range sorted {
		header += fmt.Sprintf(" %22s", n)
	}
	fmt.Fprintln(w, header)
	for _, p := range s.Points {
		line := fmt.Sprintf("%-10.1f", p.OneWayDelayMs)
		for _, n := range sorted {
			h, ok := p.Spans[n]
			if !ok || h.Count == 0 || p.Load.Interactions == 0 {
				line += fmt.Sprintf(" %22s", "-")
				continue
			}
			meanMs := float64(h.Mean()) / float64(time.Millisecond)
			perIxn := float64(h.Count) / float64(p.Load.Interactions)
			line += fmt.Sprintf(" %14.2f ×%6.2f", meanMs, perIxn)
		}
		fmt.Fprintln(w, line)
	}
}

// WriteTable1 renders Table 1 (the Trade runtime and database usage
// characteristics) from the implementation itself.
func WriteTable1(w io.Writer) {
	fmt.Fprintln(w, "Table 1: Trade Runtime and Database Usage Characteristics")
	fmt.Fprintf(w, "%-14s %-24s %-32s\n", "Trade Action", "CMP Bean Operation", "DB Activity (C/R/U/D)")
	for _, a := range trade.Actions {
		fmt.Fprintf(w, "%-14s %-24s %-32s\n", a, a.CMPOperation(), a.DBActivity())
	}
}

package harness

import (
	"context"
	"testing"
	"time"

	"edgeejb/internal/trade"
)

// TestSmokeAllPairs drives a couple of sessions through every
// (architecture, algorithm) cell at zero delay.
func TestSmokeAllPairs(t *testing.T) {
	for _, pair := range AllPairs() {
		pair := pair
		t.Run(pair.String(), func(t *testing.T) {
			topo, err := Build(Options{
				Arch:     pair.Arch,
				Algo:     pair.Algo,
				Populate: trade.PopulateConfig{Users: 10, Symbols: 20, HoldingsPerUser: 2},
			})
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			defer topo.Close()

			sweep, err := RunSweepOn(context.Background(), topo, RunOptions{
				Delays:         []time.Duration{0},
				Sessions:       3,
				WarmupSessions: 1,
				Batches:        4,
				Workload:       trade.GeneratorConfig{Seed: 7, Users: 10, Symbols: 20},
			})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			p := sweep.Points[0]
			if p.Load.Interactions == 0 {
				t.Fatal("no interactions measured")
			}
			if p.Load.Failures > 0 {
				t.Fatalf("%d failed interactions", p.Load.Failures)
			}
			t.Logf("%s: %d interactions, mean %.2fms, shared bytes/interaction %.0f",
				pair, p.Load.Interactions, p.MeanLatencyMs, p.SharedBytesPerInteraction)
		})
	}
}

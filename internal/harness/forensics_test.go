package harness

import (
	"strings"
	"testing"
	"time"

	"edgeejb/internal/obs"
)

func forensicsFixture() Sweep {
	return Sweep{
		Arch: ESRBES,
		Algo: AlgCachedEJB,
		Points: []Point{{
			OneWayDelayMs: 2,
			Counters: map[string]uint64{
				"slicache.hits{bean=quote}":     30,
				"slicache.misses{bean=quote}":   10,
				"slicache.hits{bean=account}":   5,
				"slicache.misses{bean=account}": 5,
				"slicache.requests":             50, // unlabeled: ignored
			},
			Events: []obs.Event{
				{Type: obs.EventConflict, Op: "sell", Bean: "quote", Key: "quote/s-1", Trace: 1, OtherTrace: 2, Age: 3 * time.Millisecond, Time: time.Unix(1000, 0)},
				{Type: obs.EventConflict, Op: "sell", Bean: "quote", Key: "quote/s-1", Trace: 3, OtherTrace: 4, Time: time.Unix(1001, 0)},
				{Type: obs.EventConflict, Op: "buy", Bean: "account", Key: "account/u-1", Time: time.Unix(1002, 0)},
				{Type: obs.EventInvalidation, Keys: 2, Evicted: 1, Latency: time.Millisecond, OtherTrace: 9, Time: time.Unix(1003, 0)},
				{Type: obs.EventInvalidation, Own: true, Keys: 1, Time: time.Unix(1004, 0)},
			},
		}},
	}
}

func TestWriteForensics(t *testing.T) {
	var b strings.Builder
	if err := WriteForensics(&b, forensicsFixture()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"== forensics: ES/RBES / Cached EJBs ==",
		"-- delay 2.0ms --",
		"conflicts: 3",
		"sell", "quote", "buy", "account",
		"quote/s-1",
		"cache by bean:",
		"75.0%", // quote hit ratio 30/40
		"invalidations: 1 notices applied, 1 entries evicted",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("forensics report missing %q:\n%s", want, out)
		}
	}
	// The (op, bean) matrix is sorted by abort count: sell/quote first.
	if strings.Index(out, "sell") > strings.Index(out, "buy") {
		t.Fatalf("matrix not sorted by count:\n%s", out)
	}
}

func TestForensicsCSVWriters(t *testing.T) {
	s := forensicsFixture()
	var c strings.Builder
	if err := WriteConflictsCSV(&c, s.Points[0].Events); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(c.String()), "\n")
	if len(lines) != 4 { // header + 3 conflicts
		t.Fatalf("conflicts.csv rows = %d, want 4:\n%s", len(lines), c.String())
	}
	if lines[0] != "t_unix_ms,op,bean,key,loser_trace,winner_trace,read_age_ms" {
		t.Fatalf("conflicts.csv header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "sell,quote,quote/s-1,1,2,3.000") {
		t.Fatalf("conflicts.csv row 1 = %q", lines[1])
	}

	var i strings.Builder
	if err := WriteInvalidationCSV(&i, s.Points[0].Events); err != nil {
		t.Fatal(err)
	}
	lines = strings.Split(strings.TrimSpace(i.String()), "\n")
	if len(lines) != 3 { // header + 2 invalidations
		t.Fatalf("invalidation csv rows = %d, want 3:\n%s", len(lines), i.String())
	}
	if lines[0] != "t_unix_ms,origin_trace,keys,evicted,own,latency_ms,staleness_ms" {
		t.Fatalf("invalidation csv header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "9,2,1,false,1.000") {
		t.Fatalf("invalidation csv row 1 = %q", lines[1])
	}

	// Empty event sets still yield valid headed CSVs.
	var e strings.Builder
	if err := WriteConflictsCSV(&e, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(e.String()) != "t_unix_ms,op,bean,key,loser_trace,winner_trace,read_age_ms" {
		t.Fatalf("empty conflicts.csv = %q", e.String())
	}
}

package harness

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"edgeejb/internal/loadgen"
	"edgeejb/internal/obs"
	"edgeejb/internal/slicache"
	"edgeejb/internal/trade"
)

// ShardScalingOptions configures the shard-scaling extension: the same
// concurrent Trade workload run against datacenter tiers of increasing
// shard count, reporting throughput, the 2PC fraction the placement
// leaves cross-shard, and the per-shard commit balance.
//
// The whole benchmark runs on one host, so real CPU parallelism cannot
// carry the scaling story. DBCommitService models the datacenter
// instead: each shard's store serializes an artificial per-commit-set
// validation service time, so one shard saturates at roughly
// 1/DBCommitService commit sets per second and N shards at N times
// that — minus what cross-shard coordination costs. What the curve
// measures is therefore the routing and 2PC overhead, which is real,
// not the host's core count.
type ShardScalingOptions struct {
	// ShardCounts is the sweep (e.g. 1, 2, 4). A count of 1 builds the
	// classic unsharded ES/RBES topology — the baseline.
	ShardCounts []int
	// Clients is the number of concurrent virtual clients.
	Clients int
	// SessionsPerClient measured per client per point.
	SessionsPerClient int
	// WarmupSessions before each point's measurement.
	WarmupSessions int
	// DBCommitService is the modeled per-commit-set validation service
	// time on every shard (see above). Zero disables the model, leaving
	// the curve dominated by the single host's real capacity.
	DBCommitService time.Duration
	// OneWayDelay on the edge↔backend path.
	OneWayDelay time.Duration
	// Populate sizes the Trade database.
	Populate trade.PopulateConfig
	// Workload sizes the generators.
	Workload trade.GeneratorConfig
	// CacheOptions are extra slicache options.
	CacheOptions []slicache.ManagerOption
	// Codec selects the dbwire body codec.
	Codec string
}

// DefaultShardScalingOptions returns a laptop-scale sweep sized so the
// modeled commit service, not the workload generator, is the
// bottleneck: enough clients to saturate one shard's ~500 commit
// sets/second and leave headroom for four shards.
func DefaultShardScalingOptions() ShardScalingOptions {
	return ShardScalingOptions{
		ShardCounts:       []int{1, 2, 4},
		Clients:           24,
		SessionsPerClient: 4,
		WarmupSessions:    4,
		DBCommitService:   2 * time.Millisecond,
		Populate:          trade.PopulateConfig{Seed: 42, Users: 50, Symbols: 100, HoldingsPerUser: 4},
		Workload:          trade.GeneratorConfig{Seed: 42, Users: 50, Symbols: 100},
	}
}

// ShardScalingPoint is one shard count's measurement.
type ShardScalingPoint struct {
	Shards        int
	Throughput    float64 // interactions/second
	MeanLatencyMs float64
	Failures      int
	Interactions  int
	// Commit-path split, from the router's counters (the unsharded
	// baseline reports everything as fast path).
	FastpathCommits uint64
	TwoPCCommits    uint64
	TwoPCAborts     uint64
	ReadonlyCommits uint64
	ScatterQueries  uint64
	// PerShardCommits maps shard index to commit sets it committed.
	PerShardCommits map[int]uint64
}

// CommittedPerSec scales throughput by the committed fraction: the
// quantity the acceptance curve compares across shard counts.
func (p ShardScalingPoint) CommittedPerSec() float64 {
	if p.Interactions == 0 {
		return 0
	}
	return p.Throughput * float64(p.Interactions-p.Failures) / float64(p.Interactions)
}

// TwoPCFraction is the share of committed sets that needed cross-shard
// two-phase commit.
func (p ShardScalingPoint) TwoPCFraction() float64 {
	total := p.FastpathCommits + p.TwoPCCommits + p.ReadonlyCommits
	if total == 0 {
		return 0
	}
	return float64(p.TwoPCCommits) / float64(total)
}

// RunShardScaling sweeps shard counts, building a fresh topology per
// point (shard count is a build-time property of the tier).
func RunShardScaling(ctx context.Context, opts ShardScalingOptions, logf func(string, ...any)) ([]ShardScalingPoint, error) {
	if len(opts.ShardCounts) == 0 {
		return nil, fmt.Errorf("harness: shard scaling needs shard counts")
	}
	var points []ShardScalingPoint
	for _, n := range opts.ShardCounts {
		if n < 1 {
			return nil, fmt.Errorf("harness: bad shard count %d", n)
		}
		if logf != nil {
			logf("running shard scaling: %d shard(s), %d clients...", n, opts.Clients)
		}
		topo, err := Build(Options{
			Arch:            ESRBES,
			Algo:            AlgCachedEJB,
			Shards:          n,
			OneWayDelay:     opts.OneWayDelay,
			Populate:        opts.Populate,
			CacheOptions:    opts.CacheOptions,
			Codec:           opts.Codec,
			DBCommitService: opts.DBCommitService,
		})
		if err != nil {
			return points, err
		}
		before := obs.Default.Snapshot()
		res, err := loadgen.RunConcurrent(ctx, loadgen.ConcurrentConfig{
			NewClient:         topo.NewWebClient,
			Clients:           opts.Clients,
			SessionsPerClient: opts.SessionsPerClient,
			WarmupSessions:    opts.WarmupSessions,
			Workload:          opts.Workload,
		})
		diff := obs.Default.Diff(before)
		topo.Close()
		if err != nil {
			return points, fmt.Errorf("harness: %d shards: %w", n, err)
		}

		p := ShardScalingPoint{
			Shards:          n,
			Throughput:      res.Throughput,
			MeanLatencyMs:   res.Latency.Mean,
			Failures:        res.Failures,
			Interactions:    res.Interactions,
			FastpathCommits: diff.Counters["shard.fastpath_commits"],
			TwoPCCommits:    diff.Counters["shard.2pc_commits"],
			TwoPCAborts:     diff.Counters["shard.2pc_aborts"],
			ReadonlyCommits: diff.Counters["shard.readonly_commits"],
			ScatterQueries:  diff.Counters["shard.scatter_queries"],
			PerShardCommits: make(map[int]uint64),
		}
		if n == 1 {
			// The unsharded baseline has no router; every optimistic commit
			// is shard 0's fast path.
			p.FastpathCommits = diff.Counters["sqlstore.opt_commits"]
			p.PerShardCommits[0] = p.FastpathCommits
		} else {
			for i := 0; i < n; i++ {
				p.PerShardCommits[i] = diff.Counters["shard.commits{shard="+strconv.Itoa(i)+"}"]
			}
		}
		points = append(points, p)
		if logf != nil {
			logf("  %d shard(s): %.1f committed/s, 2PC fraction %.1f%%, %d failures",
				n, p.CommittedPerSec(), 100*p.TwoPCFraction(), p.Failures)
		}
	}
	return points, nil
}

// WriteShardScaling renders the sweep as a text table.
func WriteShardScaling(w io.Writer, points []ShardScalingPoint) {
	fmt.Fprintln(w, "Extension: shard-scaling the datacenter tier (not in the paper;")
	fmt.Fprintln(w, "the paper's back end is a single server — this partitions it)")
	fmt.Fprintf(w, "%8s %14s %10s %10s %10s %10s %10s\n",
		"shards", "committed/s", "mean ms", "failures", "2pc-frac", "2pc", "fastpath")
	for _, p := range points {
		fmt.Fprintf(w, "%8d %14.1f %10.2f %10d %9.1f%% %10d %10d\n",
			p.Shards, p.CommittedPerSec(), p.MeanLatencyMs, p.Failures,
			100*p.TwoPCFraction(), p.TwoPCCommits, p.FastpathCommits)
	}
	if len(points) > 1 && points[0].Shards == 1 {
		base := points[0].CommittedPerSec()
		if base > 0 {
			fmt.Fprintf(w, "speedup vs 1 shard:")
			for _, p := range points[1:] {
				fmt.Fprintf(w, "  %dx shards = %.2fx", p.Shards, p.CommittedPerSec()/base)
			}
			fmt.Fprintln(w)
		}
	}
}

// WriteShardsCSV exports the sweep in long format, one row per
// (shard count, shard): the per-shard commit balance plus the point's
// aggregate columns repeated, so the file slices either way.
func WriteShardsCSV(w io.Writer, points []ShardScalingPoint) error {
	cw := csv.NewWriter(w)
	header := []string{
		"shard_count", "shard", "shard_commits",
		"committed_per_sec", "mean_ms", "failures", "interactions",
		"fastpath_commits", "twopc_commits", "twopc_aborts",
		"readonly_commits", "scatter_queries", "twopc_fraction",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, p := range points {
		shards := make([]int, 0, len(p.PerShardCommits))
		for s := range p.PerShardCommits {
			shards = append(shards, s)
		}
		sort.Ints(shards)
		for _, s := range shards {
			rec := []string{
				strconv.Itoa(p.Shards),
				strconv.Itoa(s),
				strconv.FormatUint(p.PerShardCommits[s], 10),
				strconv.FormatFloat(p.CommittedPerSec(), 'f', 2, 64),
				strconv.FormatFloat(p.MeanLatencyMs, 'f', 3, 64),
				strconv.Itoa(p.Failures),
				strconv.Itoa(p.Interactions),
				strconv.FormatUint(p.FastpathCommits, 10),
				strconv.FormatUint(p.TwoPCCommits, 10),
				strconv.FormatUint(p.TwoPCAborts, 10),
				strconv.FormatUint(p.ReadonlyCommits, 10),
				strconv.FormatUint(p.ScatterQueries, 10),
				strconv.FormatFloat(p.TwoPCFraction(), 'f', 4, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

package harness

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"edgeejb/internal/backend"
	"edgeejb/internal/dbwire"
	"edgeejb/internal/memento"
	"edgeejb/internal/obs"
	"edgeejb/internal/slicache"
	"edgeejb/internal/sqlstore"
	"edgeejb/internal/storeapi"
)

// TestForensicsSmoke is the end-to-end acceptance test for transaction
// forensics: two edges behind a real back-end server race on one quote
// row, and the loser's conflict event must name the conflicting bean
// key and the winner's trace, with the invalidation notice's push
// latency recorded on the way.
func TestForensicsSmoke(t *testing.T) {
	store := sqlstore.New()
	defer store.Close()
	quoteKey := memento.Key{Table: "quote", ID: "s-0"}
	store.Seed(memento.Memento{Key: quoteKey, Fields: memento.Fields{"price": memento.Int(100)}})
	ctx := context.Background()

	// Database tier behind its wire server.
	dbSrv := dbwire.NewServer(storeapi.Local(store))
	if err := dbSrv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer dbSrv.Close()

	// Back-end server (split-servers): relays edge commits to the store.
	backendDB := dbwire.Dial(dbSrv.Addr())
	defer backendDB.Close()
	backendSrv := backend.NewServer(backendDB)
	if err := backendSrv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer backendSrv.Close()

	// Two edge caches, each on its own connection to the back end.
	newEdge := func() *slicache.Manager {
		conn := dbwire.Dial(backendSrv.Addr())
		t.Cleanup(func() { _ = conn.Close() })
		mgr := slicache.NewManager(conn, slicache.WithShipping(slicache.WholeSet))
		t.Cleanup(mgr.Close)
		if err := mgr.Start(ctx); err != nil {
			t.Fatal(err)
		}
		return mgr
	}
	edgeA, edgeB := newEdge(), newEdge()

	seq0 := obs.DefaultEvents.Seq()
	obsBefore := obs.Default.Snapshot()

	// The loser (edge B) reads the quote first.
	loserCtx, loserTrace := obs.WithNewTrace(ctx)
	loserCtx = obs.WithOp(loserCtx, "sell")
	dtB, err := edgeB.Begin(loserCtx)
	if err != nil {
		t.Fatal(err)
	}
	mB, err := dtB.Load(loserCtx, quoteKey)
	if err != nil {
		t.Fatal(err)
	}

	// The winner (edge A) reads and commits a write through the back end.
	winnerCtx, winnerTrace := obs.WithNewTrace(ctx)
	dtA, err := edgeA.Begin(winnerCtx)
	if err != nil {
		t.Fatal(err)
	}
	mA, err := dtA.Load(winnerCtx, quoteKey)
	if err != nil {
		t.Fatal(err)
	}
	mA.Fields["price"] = memento.Int(110)
	if err := dtA.Store(winnerCtx, mA); err != nil {
		t.Fatal(err)
	}
	if err := dtA.Commit(winnerCtx); err != nil {
		t.Fatal(err)
	}

	// Wait for the winner's invalidation notice to reach the loser's edge.
	deadline := time.Now().Add(5 * time.Second)
	for edgeB.Stats().NoticesApplied < 1 {
		if time.Now().After(deadline) {
			t.Fatal("invalidation notice never reached edge B")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The loser now commits its stale read-set and must lose.
	mB.Fields["price"] = memento.Int(90)
	if err := dtB.Store(loserCtx, mB); err != nil {
		t.Fatal(err)
	}
	err = dtB.Commit(loserCtx)
	if !errors.Is(err, sqlstore.ErrConflict) {
		t.Fatalf("loser commit: got %v, want ErrConflict", err)
	}
	var ce *sqlstore.ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("loser error %T lost attribution across edge+backend", err)
	}
	if ce.Key != quoteKey || ce.WinnerTrace != winnerTrace {
		t.Errorf("wire conflict = (key %v, winner %d), want (%v, %d)",
			ce.Key, ce.WinnerTrace, quoteKey, winnerTrace)
	}

	// The conflict event names the bean key and both traces.
	events := obs.DefaultEvents.Since(seq0)
	var conflict *obs.Event
	for i := range events {
		if events[i].Type == obs.EventConflict {
			conflict = &events[i]
		}
	}
	if conflict == nil {
		t.Fatal("no conflict event emitted")
	}
	if conflict.Key != quoteKey.String() || conflict.Bean != "quote" {
		t.Errorf("conflict event key = %q bean = %q, want %q / %q",
			conflict.Key, conflict.Bean, quoteKey.String(), "quote")
	}
	if conflict.Trace != loserTrace || conflict.OtherTrace != winnerTrace {
		t.Errorf("conflict event traces = (%d, %d), want loser %d winner %d",
			conflict.Trace, conflict.OtherTrace, loserTrace, winnerTrace)
	}
	if conflict.Op != "sell" {
		t.Errorf("conflict event op = %q, want %q", conflict.Op, "sell")
	}
	if conflict.Age < 0 {
		t.Errorf("negative read age %v", conflict.Age)
	}

	// An invalidation event for the winner's commit reached edge B.
	var inval *obs.Event
	for i := range events {
		e := events[i]
		if e.Type == obs.EventInvalidation && !e.Own && e.OtherTrace == winnerTrace {
			inval = &events[i]
		}
	}
	if inval == nil {
		t.Fatal("no foreign invalidation event for the winner's commit")
	}
	if inval.Evicted < 1 {
		t.Errorf("invalidation evicted %d entries, want >= 1", inval.Evicted)
	}
	if inval.Latency < 0 || inval.Latency > time.Minute {
		t.Errorf("absurd push latency %v", inval.Latency)
	}

	// The push-latency histogram recorded the notice.
	diff := obs.Default.Diff(obsBefore)
	if got := diff.Histograms["slicache.invalidation_latency"].Count; got < 1 {
		t.Errorf("invalidation latency observations = %d, want >= 1", got)
	}
	if got := labeledByValue(diff.Counters, "slicache.conflicts")["quote"]; got != 1 {
		t.Errorf("slicache.conflicts{bean=quote} diff = %d, want 1", got)
	}

	// The same events drain into non-empty run artifacts.
	art, err := NewArtifacts(t.TempDir(), []string{"forensics-smoke"})
	if err != nil {
		t.Fatal(err)
	}
	if err := art.WriteEvents(events); err != nil {
		t.Fatal(err)
	}
	if err := art.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(art.Dir, "MANIFEST.json"))
	if err != nil {
		t.Fatal(err)
	}
	var manifest Manifest
	if err := json.Unmarshal(raw, &manifest); err != nil {
		t.Fatal(err)
	}
	indexed := make(map[string]bool)
	for _, f := range manifest.Files {
		indexed[f.Path] = true
	}
	for name, needle := range map[string]string{
		"events.jsonl":             `"type":"conflict"`,
		"conflicts.csv":            quoteKey.String(),
		"invalidation_latency.csv": "latency_ms",
	} {
		if !indexed[name] {
			t.Errorf("%s not indexed in MANIFEST.json", name)
		}
		body, err := os.ReadFile(filepath.Join(art.Dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(body), needle) {
			t.Errorf("%s missing %q:\n%s", name, needle, body)
		}
	}
	// conflicts.csv carries at least one data row beyond the header.
	body, _ := os.ReadFile(filepath.Join(art.Dir, "conflicts.csv"))
	if lines := strings.Count(strings.TrimSpace(string(body)), "\n"); lines < 1 {
		t.Errorf("conflicts.csv has no data rows:\n%s", body)
	}
}

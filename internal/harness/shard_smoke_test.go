package harness

import (
	"context"
	"sync"
	"testing"
	"time"

	"edgeejb/internal/latency"
	"edgeejb/internal/loadgen"
	"edgeejb/internal/obs"
	"edgeejb/internal/trade"
)

// TestShardedSmoke drives the Figure 6 workload through a two-shard
// datacenter tier and checks the decision rule actually exercised every
// path: single-shard fast-path commits, cross-shard 2PC (a buy whose
// quote lives on the other shard), and per-shard commit attribution on
// both shards. It also asserts a cross-shard commit renders as one
// waterfall: the coordinator's 2PC span with a prepare and a
// commit-prepared child per participant.
func TestShardedSmoke(t *testing.T) {
	log := obs.NewSpanLog(1 << 16)
	saved := obs.DefaultSpans
	obs.DefaultSpans = log
	defer func() { obs.DefaultSpans = saved }()
	obsBefore := obs.Default.Snapshot()

	topo, err := Build(Options{
		Arch:     ESRBES,
		Algo:     AlgCachedEJB,
		Shards:   2,
		Populate: trade.PopulateConfig{Users: 10, Symbols: 20, HoldingsPerUser: 2},
	})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	defer topo.Close()
	if len(topo.Stores) != 2 || len(topo.Backends) != 2 {
		t.Fatalf("topology has %d stores, %d backends, want 2 each",
			len(topo.Stores), len(topo.Backends))
	}

	sweep, err := RunSweepOn(context.Background(), topo, RunOptions{
		Delays:         []time.Duration{0},
		Sessions:       10,
		WarmupSessions: 1,
		Batches:        4,
		Workload:       trade.GeneratorConfig{Seed: 7, Users: 10, Symbols: 20},
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	p := sweep.Points[0]
	if p.Load.Interactions == 0 {
		t.Fatal("no interactions measured")
	}
	if p.Load.Failures > 0 {
		t.Fatalf("%d failed interactions", p.Load.Failures)
	}

	diff := obs.Default.Diff(obsBefore)
	if diff.Counters["shard.fastpath_commits"] == 0 {
		t.Error("no single-shard fast-path commits; placement or routing broke")
	}
	if diff.Counters["shard.2pc_commits"] == 0 {
		t.Error("no cross-shard 2PC commits; the workload's foreign-quote buys vanished")
	}
	if diff.Counters["shard.2pc_heuristics"] != 0 {
		t.Errorf("%d heuristic 2PC outcomes on a healthy run", diff.Counters["shard.2pc_heuristics"])
	}
	for _, name := range []string{"shard.commits{shard=0}", "shard.commits{shard=1}"} {
		if diff.Counters[name] == 0 {
			t.Errorf("%s = 0; one shard took all commits", name)
		}
	}
	if diff.Counters["sqlstore.prepares"] == 0 || diff.Counters["sqlstore.prepared_commits"] == 0 {
		t.Error("participant prepare counters silent during 2PC")
	}

	// One cross-shard commit as a waterfall: under a single trace, the
	// 2PC span plus two prepares and two commit-prepareds.
	type shape struct{ twopc, prepare, commitPrep int }
	byTrace := make(map[uint64]*shape)
	for _, rec := range log.Recent(1 << 16) {
		s := byTrace[rec.Trace]
		if s == nil {
			s = &shape{}
			byTrace[rec.Trace] = s
		}
		switch rec.Name {
		case "shard.2pc":
			s.twopc++
		case "shard.prepare":
			s.prepare++
		case "shard.commit_prepared":
			s.commitPrep++
		}
	}
	found := false
	for _, s := range byTrace {
		if s.twopc >= 1 && s.prepare >= 2 && s.commitPrep >= 2 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no trace shows coordinator + both participants (2pc span with 2 prepares and 2 commit-prepareds)")
	}
	t.Logf("fastpath=%d 2pc=%d readonly=%d scatter=%d",
		diff.Counters["shard.fastpath_commits"], diff.Counters["shard.2pc_commits"],
		diff.Counters["shard.readonly_commits"], diff.Counters["shard.scatter_queries"])
}

// TestShardedBaselineMatchesUnsharded checks -shards semantics at the
// boundary: Shards <= 1 builds the classic single-pair topology (no
// sharded state), and the sharded build refuses unsupported cells.
func TestShardedBaselineMatchesUnsharded(t *testing.T) {
	topo, err := Build(Options{
		Arch:     ESRBES,
		Algo:     AlgCachedEJB,
		Shards:   1,
		Populate: trade.PopulateConfig{Users: 5, Symbols: 10, HoldingsPerUser: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()
	if topo.Stores != nil || topo.Ring != nil {
		t.Error("Shards=1 must build the unsharded topology")
	}

	if _, err := Build(Options{Arch: ESRDB, Algo: AlgJDBC, Shards: 2}); err == nil {
		t.Error("sharding outside ES/RBES+cached must be rejected")
	}
}

// TestShardFaultChaosTwoEdges races two edge servers' sessions across a
// two-shard tier while every shard's wide-area proxy injects faults:
// connection resets, stalls and truncations land mid-2PC as well as
// mid-fast-path. The resilient machinery (wire retries, presumed abort,
// session retries) must keep nearly every session alive and leave no
// shard wedged with prepared transactions.
func TestShardFaultChaosTwoEdges(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run is seconds-long")
	}
	topo, err := Build(Options{
		Arch:        ESRBES,
		Algo:        AlgCachedEJB,
		Shards:      2,
		EdgeServers: 2,
		Populate:    trade.PopulateConfig{Users: 20, Symbols: 40, HoldingsPerUser: 2},
	})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	defer topo.Close()

	plan := latency.FaultPlan{
		Seed:          11,
		ResetRate:     0.10,
		ResetAfterMax: 48 * 1024,
		StallRate:     0.01,
		StallFor:      10 * time.Millisecond,
		TruncateRate:  0.005,
	}
	for _, p := range topo.proxies {
		planCopy := plan
		p.SetFaults(&planCopy)
		defer p.SetFaults(nil)
	}

	var wg sync.WaitGroup
	results := make([]loadgen.ResilientResult, 2)
	errs := make([]error, 2)
	for edge := 0; edge < 2; edge++ {
		client, err := topo.NewWebClientFor(edge)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(edge int) {
			defer wg.Done()
			results[edge], errs[edge] = loadgen.RunResilient(context.Background(), loadgen.ResilientConfig{
				Client: client,
				Generator: trade.NewGenerator(trade.GeneratorConfig{
					Seed: int64(100 + edge), Users: 20, Symbols: 40,
				}),
				Sessions:       25,
				SessionRetries: 5,
				StepTimeout:    15 * time.Second,
			})
		}(edge)
	}
	wg.Wait()

	faulted := false
	for _, p := range topo.proxies {
		if p.FaultStats() != (latency.FaultStats{}) {
			faulted = true
		}
	}
	if !faulted {
		t.Fatal("no faults were injected on any shard's path")
	}
	for edge := 0; edge < 2; edge++ {
		if errs[edge] != nil {
			t.Fatalf("edge %d: %v", edge, errs[edge])
		}
		r := results[edge]
		if rate := r.SuccessRate(); rate < 0.9 {
			t.Errorf("edge %d success rate %.2f, want >= 0.9 (%+v)", edge, rate, r)
		}
	}
	// No shard is left wedged: every in-doubt transaction was decided or
	// presumed aborted.
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		wedged := 0
		for _, s := range topo.Stores {
			wedged += s.PreparedCount()
		}
		if wedged == 0 {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	for i, s := range topo.Stores {
		if n := s.PreparedCount(); n != 0 {
			t.Errorf("shard %d wedged with %d prepared transactions", i, n)
		}
	}
}

package harness

import (
	"context"
	"strings"
	"testing"
	"time"

	"edgeejb/internal/trade"
)

// TestESRDBMultiEdgeInvalidation: in the shared-database architecture,
// edge caches subscribe to the DATABASE's invalidation stream directly.
// An update committed through edge 0 must invalidate edge 1's stale
// entry even with no back-end server in the deployment.
func TestESRDBMultiEdgeInvalidation(t *testing.T) {
	topo, err := Build(Options{
		Arch:        ESRDB,
		Algo:        AlgCachedEJB,
		EdgeServers: 2,
		Populate:    trade.PopulateConfig{Users: 4, Symbols: 8, HoldingsPerUser: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()
	ctx := context.Background()
	user := trade.UserID(1)

	c0, err := topo.NewWebClientFor(0)
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1, err := topo.NewWebClientFor(1)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	if resp, err := c1.DoStep(ctx, trade.Step{Action: trade.ActionAccount, UserID: user}); err != nil || !resp.OK {
		t.Fatalf("warm edge 1: %v / %+v", err, resp)
	}
	if resp, err := c0.DoStep(ctx, trade.Step{
		Action: trade.ActionAccountUpdate, UserID: user,
		Address: "9 Shared DB Way", Email: "rdb@example.test",
	}); err != nil || !resp.OK {
		t.Fatalf("update via edge 0: %v / %+v", err, resp)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		resp, err := c1.DoStep(ctx, trade.Step{Action: trade.ActionAccount, UserID: user})
		if err != nil {
			t.Fatal(err)
		}
		if resp.OK && strings.Contains(string(resp.Body), "9 Shared DB Way") {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("edge 1 never saw the update committed through edge 0")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSweepRequiresDelays: RunSweep validates its inputs.
func TestSweepRequiresDelays(t *testing.T) {
	_, err := RunSweep(context.Background(), Options{
		Arch: ClientsRAS, Algo: AlgJDBC,
		Populate: trade.PopulateConfig{Users: 2, Symbols: 2},
	}, RunOptions{})
	if err == nil {
		t.Fatal("empty delay sweep accepted")
	}
}

// TestCacheOptionsReachManagers: ablation options passed at Build time
// must configure every edge's manager.
func TestCacheOptionsReachManagers(t *testing.T) {
	topo, err := Build(Options{
		Arch:     ESRBES,
		Algo:     AlgCachedEJB,
		Populate: trade.PopulateConfig{Users: 2, Symbols: 2, HoldingsPerUser: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()
	if topo.Managers[0] == nil {
		t.Fatal("cached topology missing manager")
	}
	if got := topo.Managers[0].Shipping(); got.String() != "whole-set" {
		t.Errorf("ES/RBES shipping = %v, want whole-set", got)
	}

	topo2, err := Build(Options{
		Arch:     ESRDB,
		Algo:     AlgCachedEJB,
		Populate: trade.PopulateConfig{Users: 2, Symbols: 2, HoldingsPerUser: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer topo2.Close()
	if got := topo2.Managers[0].Shipping(); got.String() != "per-image" {
		t.Errorf("ES/RDB shipping = %v, want per-image", got)
	}
	// Non-cached algorithms have nil manager slots.
	topo3, err := Build(Options{
		Arch:     ESRDB,
		Algo:     AlgJDBC,
		Populate: trade.PopulateConfig{Users: 2, Symbols: 2, HoldingsPerUser: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer topo3.Close()
	if topo3.Managers[0] != nil {
		t.Error("JDBC topology has a cache manager")
	}
}

package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"edgeejb/internal/obs"
	"edgeejb/internal/obs/collect"
	"edgeejb/internal/trade"
)

// TestTraceAssemblySmoke is the end-to-end check CI runs on the tracing
// pipeline: a short in-process ES/RBES sweep, spans collected from the
// process ring, assembled into trees, and rendered as trace-event JSON.
// It asserts the ISSUE acceptance criteria — every assembled trace has
// a root, at least one write interaction (a buy or sell, the only
// actions that reach backend.apply) spans the edge, backend, and db
// tiers as one complete tree, and the Perfetto export parses.
func TestTraceAssemblySmoke(t *testing.T) {
	// Isolate this test's spans in a private ring big enough that
	// nothing is evicted mid-run.
	log := obs.NewSpanLog(1 << 16)
	saved := obs.DefaultSpans
	obs.DefaultSpans = log
	defer func() { obs.DefaultSpans = saved }()

	topo, err := Build(Options{
		Arch:     ESRBES,
		Algo:     AlgCachedEJB,
		Populate: trade.PopulateConfig{Users: 10, Symbols: 20, HoldingsPerUser: 2},
	})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	defer topo.Close()

	if _, err := RunSweepOn(context.Background(), topo, RunOptions{
		Delays:         []time.Duration{0},
		Sessions:       4,
		WarmupSessions: 1,
		Batches:        4,
		Workload:       trade.GeneratorConfig{Seed: 7, Users: 10, Symbols: 20},
	}); err != nil {
		t.Fatalf("run: %v", err)
	}

	c := collect.NewCollector(collect.FromLog("proc", log))
	if err := c.Poll(); err != nil {
		t.Fatal(err)
	}
	traces := c.Traces()
	if len(traces) == 0 {
		t.Fatal("sweep produced no traces")
	}
	if dropped := log.Dropped(); dropped != 0 {
		t.Fatalf("span ring evicted %d spans; grow the test ring", dropped)
	}

	crossTier := 0
	for _, tr := range traces {
		if len(tr.Roots) == 0 {
			t.Fatalf("trace %d has no root", tr.ID)
		}
		if !tr.Complete {
			t.Fatalf("trace %d incomplete (%d roots, %d orphans) with zero drops",
				tr.ID, len(tr.Roots), tr.Orphans)
		}
		tiers := make(map[string]bool)
		for _, tier := range tr.Tiers() {
			tiers[tier] = true
		}
		if tiers["edge"] && tiers["backend"] && tiers["db"] {
			crossTier++
			// The cross-tier hops must hang off the one root, not float.
			if root := tr.Root(); root.Name != "client.interaction" {
				t.Fatalf("cross-tier trace %d rooted at %q", tr.ID, root.Name)
			}
		}
	}
	if crossTier == 0 {
		t.Fatal("no trace spans edge+backend+db; commit path lost its spans or parenting broke")
	}
	t.Logf("%d traces assembled, %d cross-tier through the back end", len(traces), crossTier)

	// The Perfetto export must be valid trace-event JSON with one event
	// per span.
	var buf bytes.Buffer
	if err := collect.WriteTraceEvents(&buf, traces); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Pid int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("Perfetto JSON does not parse: %v", err)
	}
	spans := 0
	for _, ev := range file.TraceEvents {
		if ev.Ph == "X" {
			spans++
			if ev.Pid == 0 {
				t.Fatal("span event missing its tier lane")
			}
		}
	}
	want := 0
	for _, tr := range traces {
		want += len(tr.Spans)
	}
	if spans != want {
		t.Fatalf("Perfetto export has %d span events, assembly has %d spans", spans, want)
	}
}

package harness

import (
	"context"
	"fmt"
	"net"

	"edgeejb/internal/appserver"
	"edgeejb/internal/backend"
	"edgeejb/internal/component"
	"edgeejb/internal/dbwire"
	"edgeejb/internal/latency"
	"edgeejb/internal/memento"
	"edgeejb/internal/shard"
	"edgeejb/internal/slicache"
	"edgeejb/internal/sqlstore"
	"edgeejb/internal/storeapi"
	"edgeejb/internal/trade"
)

// buildSharded assembles the partitioned datacenter tier: N independent
// back-end/database pairs, each behind its own delay proxy, with every
// edge server routing by key over one dbwire connection per shard.
// Single-shard commit sets keep the classic one-frame ES/RBES fast
// path; cross-shard write sets run edge-coordinated two-phase commit.
func buildSharded(opts Options) (topo *Topology, err error) {
	if opts.Arch != ESRBES {
		return nil, fmt.Errorf("harness: sharding requires %s (got %s)", ESRBES, opts.Arch)
	}
	if opts.Algo != AlgCachedEJB {
		return nil, fmt.Errorf("harness: sharding requires %s (got %s)", AlgCachedEJB, opts.Algo)
	}

	var dbOpts []dbwire.Option
	if opts.Codec != "" {
		dbOpts = append(dbOpts, dbwire.WithCodec(opts.Codec))
	}

	t := &Topology{Arch: opts.Arch, Algo: opts.Algo, Shards: opts.Shards}
	defer func() {
		if err != nil {
			t.Close()
		}
	}()

	t.Ring = shard.NewRing(opts.Shards, shard.WithPlacement(trade.ShardPlacement))

	// Database + back-end tier, one pair per shard. Every shard derives
	// the identical population and keeps exactly the rows the ring
	// assigns to it; disjoint transaction-ID bases keep the merged
	// invalidation stream's own-commit filtering sound.
	rows := trade.PopulationRows(opts.Populate)
	shardAddrs := make([]string, opts.Shards)
	for i := 0; i < opts.Shards; i++ {
		storeOpts := []sqlstore.Option{
			sqlstore.WithLockTimeout(opts.LockTimeout),
			sqlstore.WithTxIDBase(uint64(i) << 40),
		}
		if opts.DBCommitService > 0 {
			storeOpts = append(storeOpts, sqlstore.WithCommitServiceTime(opts.DBCommitService))
		}
		store := sqlstore.New(storeOpts...)
		t.Stores = append(t.Stores, store)
		_ = store.CreateIndex(trade.TableHolding, "accountID")
		var owned []memento.Memento
		for _, m := range rows {
			if t.Ring.Of(m.Key) == i {
				owned = append(owned, m)
			}
		}
		store.Seed(owned...)

		dbServer := dbwire.NewServer(storeapi.Local(store))
		if err := dbServer.Start("127.0.0.1:0"); err != nil {
			return nil, fmt.Errorf("harness: start db server (shard %d): %w", i, err)
		}
		t.closers = append(t.closers, dbServer.Close)

		backendDB := dbwire.Dial(dbServer.Addr(), dbOpts...)
		t.closers = append(t.closers, func() { _ = backendDB.Close() })
		be := backend.NewServer(backendDB)
		if err := be.Start("127.0.0.1:0"); err != nil {
			return nil, fmt.Errorf("harness: start back-end server (shard %d): %w", i, err)
		}
		t.closers = append(t.closers, be.Close)
		t.Backends = append(t.Backends, be)

		proxy := latency.NewProxy(be.Addr(), opts.OneWayDelay)
		if err := proxy.Start("127.0.0.1:0"); err != nil {
			return nil, fmt.Errorf("harness: start delay proxy (shard %d): %w", i, err)
		}
		t.closers = append(t.closers, proxy.Close)
		t.proxies = append(t.proxies, proxy)
		shardAddrs[i] = proxy.Addr()
	}
	t.Store = t.Stores[0]
	t.Backend = t.Backends[0]
	t.Proxy = t.proxies[0]

	// Application-server tier: each edge gets a router over one
	// connection per shard, feeding the cache's whole-set commit path.
	registry, err := trade.NewEntityRegistry()
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	for e := 0; e < opts.EdgeServers; e++ {
		conns := make([]storeapi.Conn, opts.Shards)
		for i, addr := range shardAddrs {
			dbClient := dbwire.Dial(addr, dbOpts...)
			t.DBClients = append(t.DBClients, dbClient)
			t.closers = append(t.closers, func() { _ = dbClient.Close() })
			conns[i] = dbClient
		}
		router, err := shard.NewRouter(t.Ring, conns,
			shard.WithQueryAffinity(trade.QueryShardPlacement))
		if err != nil {
			return nil, fmt.Errorf("harness: edge %d router: %w", e, err)
		}

		cacheOpts := append([]slicache.ManagerOption{slicache.WithShipping(slicache.WholeSet)},
			opts.CacheOptions...)
		mgr := slicache.NewManager(router, cacheOpts...)
		if err := mgr.Start(ctx); err != nil {
			return nil, fmt.Errorf("harness: start cache manager (edge %d): %w", e, err)
		}
		t.closers = append(t.closers, mgr.Close)
		t.Managers = append(t.Managers, mgr)

		svc := trade.NewService(component.NewContainer(registry, mgr))
		t.Services = append(t.Services, svc)
		app := appserver.NewServer(svc)
		if err := app.Start("127.0.0.1:0"); err != nil {
			return nil, fmt.Errorf("harness: start app server %d: %w", e, err)
		}
		t.closers = append(t.closers, app.Close)
		t.AppServers = append(t.AppServers, app)
	}

	t.clientAddr = t.AppServers[0].Addr()
	t.clientDial = func(ctx context.Context, addr string) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr)
	}
	return t, nil
}

// Package harness assembles the three high-latency architectures of §3
// on loopback TCP — edge servers sharing a remote database (ES/RDB),
// edge servers sharing a remote back-end server (ES/RBES), and clients
// talking to a remote application server (Clients/RAS) — with the delay
// proxy interposed on the architecture's high-latency path, and runs the
// paper's experiments against them.
//
// Paper mapping: RunSweep measures one latency curve of Figures 6–7
// (mean client-interaction latency vs one-way delay); Sweep.Sensitivity
// is the fitted slope of Table 2; Fig8Rows reports the shared-path
// bytes per interaction of Figure 8; WriteTable1 derives Table 1 from
// the implementation itself. Each delay point also captures a diff of
// the process-wide obs registry, so Point.Spans decomposes the measured
// latency into per-hop trace-span histograms (WriteLatencyBreakdown;
// see OBSERVABILITY.md).
package harness

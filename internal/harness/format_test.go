package harness

import (
	"math"
	"testing"
)

// TestFormatFloatNA: undefined values export as "n/a" instead of
// literal NaN/Inf strings, which downstream CSV consumers choke on.
func TestFormatFloatNA(t *testing.T) {
	if got := formatFloat(math.NaN()); got != "n/a" {
		t.Errorf("formatFloat(NaN) = %q, want n/a", got)
	}
	if got := formatFloat(math.Inf(1)); got != "n/a" {
		t.Errorf("formatFloat(+Inf) = %q, want n/a", got)
	}
	if got := formatFloat(1.5); got != "1.5000" {
		t.Errorf("formatFloat(1.5) = %q", got)
	}
}

// TestFormatCellNaNSensitivity: a sweep whose fit is undefined renders
// its Table 2 cell as N/A.
func TestFormatCellNaNSensitivity(t *testing.T) {
	c := Table2Cell{Sensitivity: math.NaN()}
	if got := formatCell(c); got != "N/A" {
		t.Errorf("formatCell(NaN) = %q, want N/A", got)
	}
}

package harness

import (
	"fmt"
	"io"
	"sort"

	"edgeejb/internal/trade"
)

// WriteActionBreakdown renders mean per-action latency at the largest
// swept delay for the given sweeps — the per-action view behind the
// aggregate curves: it shows WHERE each architecture pays its round
// trips (e.g. under vanilla EJBs, portfolio and sell dominate because
// of the N+1 finder loads).
func WriteActionBreakdown(w io.Writer, sweeps []Sweep) {
	if len(sweeps) == 0 {
		return
	}
	fmt.Fprintln(w, "Per-action mean latency (ms) at the largest swept delay")
	header := fmt.Sprintf("%-14s", "action")
	for _, s := range sweeps {
		header += fmt.Sprintf(" %24s", s.Arch.String()+" "+s.Algo.String())
	}
	fmt.Fprintln(w, header)

	actions := actionNames(sweeps)
	for _, action := range actions {
		line := fmt.Sprintf("%-14s", action)
		for _, s := range sweeps {
			if len(s.Points) == 0 {
				line += fmt.Sprintf(" %24s", "-")
				continue
			}
			last := s.Points[len(s.Points)-1]
			sum, ok := last.Load.PerAction[action]
			if !ok || sum.N == 0 {
				line += fmt.Sprintf(" %24s", "-")
				continue
			}
			line += fmt.Sprintf(" %24.2f", sum.Mean)
		}
		fmt.Fprintln(w, line)
	}
}

// actionNames returns the union of measured action names in Table 1
// order, with any extras appended alphabetically.
func actionNames(sweeps []Sweep) []string {
	seen := make(map[string]bool)
	for _, s := range sweeps {
		for _, p := range s.Points {
			for name := range p.Load.PerAction {
				seen[name] = true
			}
		}
	}
	var ordered []string
	for _, a := range trade.Actions {
		if seen[a.String()] {
			ordered = append(ordered, a.String())
			delete(seen, a.String())
		}
	}
	var rest []string
	for name := range seen {
		rest = append(rest, name)
	}
	sort.Strings(rest)
	return append(ordered, rest...)
}

package harness

import (
	"testing"
	"time"

	"edgeejb/internal/loadgen"
	"edgeejb/internal/obs"
	"edgeejb/internal/obs/collect"
	"edgeejb/internal/regress"
	"edgeejb/internal/stats"
)

func TestBuildSummaryNaming(t *testing.T) {
	eval := &Evaluation{Sweeps: map[Pair]Sweep{
		{ESRDB, AlgVanillaEJB}: {
			Arch: ESRDB, Algo: AlgVanillaEJB,
			Points: []Point{
				{
					OneWayDelayMs:                  0,
					MeanLatencyMs:                  1.5,
					SharedRoundTripsPerInteraction: 12.0,
					SharedBytesPerInteraction:      4000,
					Load:                           loadgen.Result{Interactions: 100, BatchMeans: []float64{1.4, 1.6}},
				},
				{
					OneWayDelayMs:                  0.5,
					MeanLatencyMs:                  13.5,
					SharedRoundTripsPerInteraction: 12.2,
					SharedBytesPerInteraction:      4100,
					Load:                           loadgen.Result{Interactions: 100, BatchMeans: []float64{13.4, 13.6}},
				},
			},
			Fit: stats.Fit{Slope: 24.0, R2: 0.99},
		},
	}}
	attr := &collect.Attribution{
		Traces: 10,
		Rows: []collect.AttrRow{
			{Key: collect.PathKey{Tier: "edge", Name: "edge.request"}, Total: 20 * time.Millisecond},
			{Key: collect.PathKey{Lane: "shard1", Tier: "edge", Name: "shard.prepare"}, Total: 10 * time.Millisecond},
		},
	}
	s := BuildSummary(SummaryInput{
		Args: []string{"-fig7"},
		Eval: eval,
		Throughput: []ThroughputCurve{{
			Arch: ESRBES, Algo: AlgCachedEJB,
			Points: []ThroughputPoint{{Clients: 4, Throughput: 120.5, Interactions: 500}},
		}},
		Shards: []ShardScalingPoint{{
			Shards: 2, Throughput: 200, Interactions: 400, Failures: 0,
			FastpathCommits: 90, TwoPCCommits: 10,
		}},
		Attribution: attr,
		Counters: map[string]uint64{
			"slicache.finder_hits":   80,
			"slicache.finder_misses": 20,
		},
		Runtime: &obs.Snapshot{
			Counters: map[string]uint64{
				"runtime.allocs_total":      1_000_000,
				"runtime.alloc_bytes_total": 64_000_000,
				"runtime.cpu_ms_total":      2_000,
			},
			Gauges: map[string]int64{"runtime.goroutines_highwater": 42},
			Histograms: map[string]obs.HistSnapshot{
				"runtime.gc_pause": func() obs.HistSnapshot {
					var h obs.Histogram
					h.ObserveN(100*time.Microsecond, 50)
					return h.Snapshot()
				}(),
			},
		},
	})
	if s.Schema != regress.SchemaV2 {
		t.Fatalf("schema = %q", s.Schema)
	}

	// Every namespace present, with paper names slugged.
	wantKeys := []string{
		"latency.es-rdb.vanilla-ejbs.d0ms.mean_ms",
		"latency.es-rdb.vanilla-ejbs.d0.5ms.mean_ms",
		"wire.es-rdb.vanilla-ejbs.rts_per_interaction",
		"wire.es-rdb.vanilla-ejbs.bytes_per_interaction",
		"sensitivity.es-rdb.vanilla-ejbs",
		"throughput.es-rbes.cached-ejbs.c4.ixn_per_s",
		"shards.s2.committed_per_s",
		"shards.s2.twopc_fraction",
		"cache.finder_hit_ratio",
		"critpath.edge.edge.request.ms_per_trace",
		"critpath.edge.shard.prepare.shard1.ms_per_trace",
		"resource.allocs_per_interaction",
		"resource.alloc_bytes_per_interaction",
		"resource.cpu_sec_per_1k_interactions",
		"resource.gc_pause_p99_ms",
		"resource.goroutine_high_water",
	}
	for _, k := range wantKeys {
		if _, ok := s.Metrics[k]; !ok {
			t.Errorf("missing metric %q (have %v)", k, s.Names())
		}
	}

	// Kind and direction spot checks: the gate semantics ride on these.
	if m := s.Metrics["wire.es-rdb.vanilla-ejbs.rts_per_interaction"]; m.Kind != regress.KindCount ||
		m.Better != regress.LowerIsBetter || m.Mean != 12.1 || len(m.Samples) != 2 {
		t.Errorf("wire rts metric = %+v", m)
	}
	if m := s.Metrics["latency.es-rdb.vanilla-ejbs.d0ms.mean_ms"]; m.Kind != regress.KindTime ||
		m.Mean != 1.5 || len(m.Samples) != 2 {
		t.Errorf("latency metric = %+v", m)
	}
	if m := s.Metrics["sensitivity.es-rdb.vanilla-ejbs"]; m.Kind != regress.KindCount || m.Mean != 24.0 {
		t.Errorf("sensitivity metric = %+v", m)
	}
	if m := s.Metrics["throughput.es-rbes.cached-ejbs.c4.ixn_per_s"]; m.Kind != regress.KindRate ||
		m.Better != regress.HigherIsBetter {
		t.Errorf("throughput metric = %+v", m)
	}
	if m := s.Metrics["shards.s2.twopc_fraction"]; m.Kind != regress.KindRatio || m.Mean != 0.1 {
		t.Errorf("twopc fraction metric = %+v", m)
	}
	if m := s.Metrics["cache.finder_hit_ratio"]; m.Kind != regress.KindRatio || m.Mean != 0.8 ||
		m.Better != regress.HigherIsBetter {
		t.Errorf("hit ratio metric = %+v", m)
	}
	if m := s.Metrics["critpath.edge.edge.request.ms_per_trace"]; m.Mean != 2.0 {
		t.Errorf("critpath metric = %+v", m)
	}

	// Resource attribution: interactions sum across eval (200),
	// throughput (500), and shards (400) phases = 1100.
	if m := s.Metrics["resource.allocs_per_interaction"]; m.Kind != regress.KindCount ||
		m.Better != regress.LowerIsBetter || m.Mean < 909 || m.Mean > 910 || m.N != 1100 {
		t.Errorf("allocs/ixn metric = %+v", m)
	}
	// s/kixn is numerically ms/ixn: 2000ms over 1100 interactions.
	if m := s.Metrics["resource.cpu_sec_per_1k_interactions"]; m.Kind != regress.KindTime ||
		m.Mean < 1.8 || m.Mean > 1.9 {
		t.Errorf("cpu metric = %+v", m)
	}
	if m := s.Metrics["resource.gc_pause_p99_ms"]; m.Kind != regress.KindTime || m.Mean <= 0 {
		t.Errorf("gc pause metric = %+v", m)
	}
	if m := s.Metrics["resource.goroutine_high_water"]; m.Kind != regress.KindCount || m.Mean != 42 {
		t.Errorf("goroutine high-water metric = %+v", m)
	}

	// Stable kinds survive a round trip through Compare with the
	// cross-machine gate: a self-compare must be clean.
	rep := regress.Compare(s, s, regress.Options{Gate: regress.GateStable})
	if rep.Regressions != 0 {
		t.Fatalf("self-compare regressions = %d", rep.Regressions)
	}
}

func TestBuildSummaryEmptyInput(t *testing.T) {
	s := BuildSummary(SummaryInput{})
	if len(s.Metrics) != 0 {
		t.Fatalf("empty input produced metrics: %v", s.Names())
	}
	// NaN sensitivity (single-delay sweep) must not leak into the JSON:
	// NaN is not valid JSON and would poison every later Load.
	s = BuildSummary(SummaryInput{Eval: &Evaluation{Sweeps: map[Pair]Sweep{
		{ESRDB, AlgJDBC}: {
			Arch: ESRDB, Algo: AlgJDBC,
			Points: []Point{{OneWayDelayMs: 0, MeanLatencyMs: 1}},
			Fit:    stats.Fit{Slope: nan(), R2: nan()},
		},
	}}})
	for name := range s.Metrics {
		if name == "sensitivity.es-rdb.jdbc" {
			t.Fatal("NaN sensitivity emitted")
		}
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

package harness

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"edgeejb/internal/appserver"
	"edgeejb/internal/backend"
	"edgeejb/internal/component"
	"edgeejb/internal/dbwire"
	"edgeejb/internal/latency"
	"edgeejb/internal/shard"
	"edgeejb/internal/slicache"
	"edgeejb/internal/sqlstore"
	"edgeejb/internal/storeapi"
	"edgeejb/internal/trade"
	"edgeejb/internal/wire"
)

// Architecture selects where the high-latency path sits (§3).
type Architecture int

// The three architectures of §3.
const (
	// ESRDB: edge servers share a remote database; delay between
	// application servers and the database (Figure 3).
	ESRDB Architecture = iota + 1
	// ESRBES: cache-enhanced edge servers share a remote back-end
	// server; delay between edge servers and the back-end (Figure 4).
	ESRBES
	// ClientsRAS: clients access a remote application server; delay
	// between clients and the application server (Figure 5).
	ClientsRAS
)

// String names the architecture as the paper does.
func (a Architecture) String() string {
	switch a {
	case ESRDB:
		return "ES/RDB"
	case ESRBES:
		return "ES/RBES"
	case ClientsRAS:
		return "Clients/RAS"
	default:
		return "invalid"
	}
}

// Algorithm selects the data-access implementation (§4.3).
type Algorithm int

// The three algorithms compared in the evaluation.
const (
	// AlgJDBC is the hand-optimized pure-JDBC implementation.
	AlgJDBC Algorithm = iota + 1
	// AlgVanillaEJB is non-cached BMP entity beans (Trade2 EJB-ALT).
	AlgVanillaEJB
	// AlgCachedEJB is the SLI caching framework (the contribution).
	AlgCachedEJB
)

// String names the algorithm as the paper does.
func (a Algorithm) String() string {
	switch a {
	case AlgJDBC:
		return "JDBC"
	case AlgVanillaEJB:
		return "Vanilla EJBs"
	case AlgCachedEJB:
		return "Cached EJBs"
	default:
		return "invalid"
	}
}

// Options configures a topology build.
type Options struct {
	// Arch is the architecture; required.
	Arch Architecture
	// Algo is the data-access algorithm; required. ES/RBES supports only
	// AlgCachedEJB ("this architecture is meaningless to anything but a
	// EJB-caching architecture", §3).
	Algo Algorithm
	// OneWayDelay is the initial delay injected on the high-latency
	// path; adjustable later via Topology.SetDelay.
	OneWayDelay time.Duration
	// EdgeServers is the number of edge application servers (≥ 1). Only
	// the edge architectures use more than one.
	EdgeServers int
	// Populate sizes the initial Trade database.
	Populate trade.PopulateConfig
	// CacheOptions are extra slicache options (ablations). Shipping is
	// set by the architecture and must not be overridden here.
	CacheOptions []slicache.ManagerOption
	// LockTimeout overrides the datastore lock-wait timeout.
	LockTimeout time.Duration
	// Codec selects the dbwire body codec ("binary" negotiated per
	// connection, or "gob" to skip negotiation). Empty means the dbwire
	// default (binary).
	Codec string
	// Batch makes the pessimistic managers (JDBC, BMP) coalesce
	// independent statements of one interaction into multi-statement
	// frames. Off by default so existing round-trip accounting holds.
	Batch bool
	// Shards partitions the datacenter tier into N independent
	// backend/database pairs behind a key-routing edge (≤ 1 keeps the
	// classic single-pair topology byte-for-byte). Sharding requires
	// ES/RBES with the cached algorithm: whole-set commit shipping is
	// the unit the router routes.
	Shards int
	// DBCommitService is the modeled per-commit-set validation service
	// time applied to every database shard (sqlstore.WithCommitServiceTime);
	// zero disables it. The shard-scaling experiment sets it so commit
	// capacity reflects the modeled datacenter rather than the test
	// host's core count.
	DBCommitService time.Duration
}

// Topology is a fully wired deployment of one architecture.
type Topology struct {
	// Arch and Algo echo the build options.
	Arch Architecture
	Algo Algorithm

	// Store is the persistent datastore (for stats and test inspection).
	// Sharded topologies alias it to shard 0; see Stores.
	Store *sqlstore.Store

	// Stores holds every database shard's store (len == Shards; nil on
	// unsharded topologies).
	Stores []*sqlstore.Store

	// Ring is the key→shard map (sharded topologies only).
	Ring *shard.Ring

	// Shards echoes the build option (0 or 1 = unsharded).
	Shards int

	// Proxy is the delay proxy on the high-latency path. Sharded
	// topologies alias it to shard 0's proxy; SetDelay covers all.
	Proxy *latency.Proxy

	proxies []*latency.Proxy

	// Backend is the back-end server (ES/RBES only, nil otherwise;
	// sharded topologies alias it to shard 0 — see Backends).
	Backend *backend.Server

	// Backends holds every shard's back-end server (sharded only).
	Backends []*backend.Server

	// AppServers are the application servers; index 0 is the default
	// target for web clients.
	AppServers []*appserver.Server

	// Services are the trade services behind each application server.
	Services []*trade.Service

	// Managers are the SLI cache managers per edge (cached algorithm
	// only, nil entries otherwise).
	Managers []*slicache.Manager

	// DBClients are the datastore clients used by each edge server (for
	// round-trip accounting in tests).
	DBClients []*dbwire.Client

	clientAddr string
	clientDial appserver.DialFunc
	closers    []func()

	// webMu guards webClients: every client handed out by NewWebClient
	// (and NewWebClientFor under Clients/RAS) is tracked so the shared
	// client↔server path can be measured from wire.Stats.
	webMu      sync.Mutex
	webClients []*appserver.Client
}

// Build assembles and starts a topology. Callers must Close it.
func Build(opts Options) (topo *Topology, err error) {
	if opts.EdgeServers < 1 {
		opts.EdgeServers = 1
	}
	if opts.Arch == ESRBES && opts.Algo != AlgCachedEJB {
		return nil, fmt.Errorf("harness: %s supports only %s", ESRBES, AlgCachedEJB)
	}
	if opts.Arch == ClientsRAS && opts.EdgeServers != 1 {
		return nil, fmt.Errorf("harness: %s has no edge servers to multiply", ClientsRAS)
	}
	if opts.LockTimeout <= 0 {
		opts.LockTimeout = 5 * time.Second
	}
	if opts.Shards > 1 {
		return buildSharded(opts)
	}

	var dbOpts []dbwire.Option
	if opts.Codec != "" {
		dbOpts = append(dbOpts, dbwire.WithCodec(opts.Codec))
	}

	t := &Topology{Arch: opts.Arch, Algo: opts.Algo}
	defer func() {
		if err != nil {
			t.Close()
		}
	}()

	// Database tier.
	storeOpts := []sqlstore.Option{sqlstore.WithLockTimeout(opts.LockTimeout)}
	if opts.DBCommitService > 0 {
		storeOpts = append(storeOpts, sqlstore.WithCommitServiceTime(opts.DBCommitService))
	}
	t.Store = sqlstore.New(storeOpts...)
	trade.Populate(t.Store, opts.Populate)
	dbServer := dbwire.NewServer(storeapi.Local(t.Store))
	if err := dbServer.Start("127.0.0.1:0"); err != nil {
		return nil, fmt.Errorf("harness: start db server: %w", err)
	}
	t.closers = append(t.closers, dbServer.Close)

	// Delay proxy placement and the address edge servers dial.
	edgeDBAddr := ""
	switch opts.Arch {
	case ESRDB:
		// Delay between application servers and the database.
		if err := t.startProxy(dbServer.Addr(), opts.OneWayDelay); err != nil {
			return nil, err
		}
		edgeDBAddr = t.Proxy.Addr()

	case ESRBES:
		// Back-end next to the database (low-latency wire); delay
		// between the edge servers and the back-end.
		backendDB := dbwire.Dial(dbServer.Addr(), dbOpts...)
		t.closers = append(t.closers, func() { _ = backendDB.Close() })
		t.Backend = backend.NewServer(backendDB)
		if err := t.Backend.Start("127.0.0.1:0"); err != nil {
			return nil, fmt.Errorf("harness: start back-end server: %w", err)
		}
		t.closers = append(t.closers, t.Backend.Close)
		if err := t.startProxy(t.Backend.Addr(), opts.OneWayDelay); err != nil {
			return nil, err
		}
		edgeDBAddr = t.Proxy.Addr()

	case ClientsRAS:
		// Application server next to the database; delay between the
		// clients and the application server (proxy started after the
		// app server below).
		edgeDBAddr = dbServer.Addr()

	default:
		return nil, fmt.Errorf("harness: invalid architecture %d", opts.Arch)
	}

	// Application-server tier.
	registry, err := trade.NewEntityRegistry()
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	for i := 0; i < opts.EdgeServers; i++ {
		dbClient := dbwire.Dial(edgeDBAddr, dbOpts...)
		t.DBClients = append(t.DBClients, dbClient)
		t.closers = append(t.closers, func() { _ = dbClient.Close() })

		var mgrOpts []component.ManagerOption
		if opts.Batch {
			mgrOpts = append(mgrOpts, component.WithBatching(true))
		}
		var rm component.ResourceManager
		var mgr *slicache.Manager
		switch opts.Algo {
		case AlgJDBC:
			rm = component.NewJDBCManager(dbClient, mgrOpts...)
		case AlgVanillaEJB:
			rm = component.NewBMPManager(dbClient, mgrOpts...)
		case AlgCachedEJB:
			shipping := slicache.PerImage
			if opts.Arch == ESRBES {
				shipping = slicache.WholeSet
			}
			cacheOpts := append([]slicache.ManagerOption{slicache.WithShipping(shipping)},
				opts.CacheOptions...)
			mgr = slicache.NewManager(dbClient, cacheOpts...)
			if err := mgr.Start(ctx); err != nil {
				return nil, fmt.Errorf("harness: start cache manager: %w", err)
			}
			t.closers = append(t.closers, mgr.Close)
			rm = mgr
		default:
			return nil, fmt.Errorf("harness: invalid algorithm %d", opts.Algo)
		}
		t.Managers = append(t.Managers, mgr)

		svc := trade.NewService(component.NewContainer(registry, rm))
		t.Services = append(t.Services, svc)
		app := appserver.NewServer(svc)
		if err := app.Start("127.0.0.1:0"); err != nil {
			return nil, fmt.Errorf("harness: start app server %d: %w", i, err)
		}
		t.closers = append(t.closers, app.Close)
		t.AppServers = append(t.AppServers, app)
	}

	// Where web clients connect.
	switch opts.Arch {
	case ClientsRAS:
		if err := t.startProxy(t.AppServers[0].Addr(), opts.OneWayDelay); err != nil {
			return nil, err
		}
		t.clientAddr = t.Proxy.Addr()
	default:
		// Edge architectures: the client/edge path is local and fast.
		t.clientAddr = t.AppServers[0].Addr()
	}
	t.clientDial = func(ctx context.Context, addr string) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr)
	}
	return t, nil
}

func (t *Topology) startProxy(target string, delay time.Duration) error {
	t.Proxy = latency.NewProxy(target, delay)
	if err := t.Proxy.Start("127.0.0.1:0"); err != nil {
		return fmt.Errorf("harness: start delay proxy: %w", err)
	}
	t.closers = append(t.closers, t.Proxy.Close)
	return nil
}

// SetDelay changes the one-way delay on the high-latency path (every
// shard's proxy on sharded topologies).
func (t *Topology) SetDelay(d time.Duration) {
	if len(t.proxies) > 0 {
		for _, p := range t.proxies {
			p.SetDelay(d)
		}
		return
	}
	t.Proxy.SetDelay(d)
}

// SharedPathCounter returns the byte counter for the shared
// (high-latency) path — the quantity Figure 8 reports.
func (t *Topology) SharedPathCounter() *latency.Counter { return t.Proxy.Counter() }

// SharedPathStats aggregates transport statistics for the clients on
// the architecture's shared (high-latency) path: web clients for
// Clients/RAS, the edge servers' datastore clients otherwise. Unlike
// SharedPathCounter it also carries round trips and per-op latency.
func (t *Topology) SharedPathStats() wire.Stats {
	var snaps []wire.Stats
	switch t.Arch {
	case ClientsRAS:
		t.webMu.Lock()
		for _, c := range t.webClients {
			snaps = append(snaps, c.WireStats())
		}
		t.webMu.Unlock()
	default:
		for _, c := range t.DBClients {
			snaps = append(snaps, c.WireStats())
		}
	}
	return wire.MergeStats(snaps...)
}

// NewWebClient returns a client wired to the architecture's client
// entry point (through the proxy for Clients/RAS, to edge server 0
// otherwise).
func (t *Topology) NewWebClient() *appserver.Client {
	c := appserver.NewClient(t.clientAddr, appserver.WithDialer(t.clientDial))
	t.webMu.Lock()
	t.webClients = append(t.webClients, c)
	t.webMu.Unlock()
	return c
}

// NewWebClientFor returns a client pinned to a specific edge server
// (edge architectures with several edges).
func (t *Topology) NewWebClientFor(edge int) (*appserver.Client, error) {
	if edge < 0 || edge >= len(t.AppServers) {
		return nil, fmt.Errorf("harness: no edge server %d", edge)
	}
	if t.Arch == ClientsRAS {
		return t.NewWebClient(), nil
	}
	return appserver.NewClient(t.AppServers[edge].Addr()), nil
}

// Close tears the whole topology down in reverse build order.
func (t *Topology) Close() {
	for i := len(t.closers) - 1; i >= 0; i-- {
		t.closers[i]()
	}
	t.closers = nil
	if len(t.Stores) > 0 {
		for _, s := range t.Stores {
			s.Close()
		}
		return
	}
	if t.Store != nil {
		t.Store.Close()
	}
}

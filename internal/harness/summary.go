package harness

import (
	"strconv"
	"strings"
	"time"

	"edgeejb/internal/obs/collect"
	"edgeejb/internal/regress"
)

// SummaryInput collects everything a run measured for the canonical
// machine-readable summary.json. Every field is optional; the builder
// emits metrics only for what ran.
type SummaryInput struct {
	// Args echoes the command line.
	Args []string
	// Eval is the figure evaluation, when one ran.
	Eval *Evaluation
	// Throughput holds the concurrency-extension curves.
	Throughput []ThroughputCurve
	// Shards holds the shard-scaling sweep.
	Shards []ShardScalingPoint
	// Attribution is the run's critical-path aggregation.
	Attribution *collect.Attribution
	// Counters is the whole run's counter diff (finder-cache ratios).
	Counters map[string]uint64
}

// slug lowercases a paper-style name into a metric-path segment:
// "ES/RDB" -> "es-rdb", "Vanilla EJBs" -> "vanilla-ejbs".
func slug(s string) string {
	s = strings.ToLower(s)
	s = strings.ReplaceAll(s, "/", "-")
	s = strings.ReplaceAll(s, " ", "-")
	return s
}

// pairSlug names one evaluation cell: "es-rdb.jdbc".
func pairSlug(p Pair) string { return slug(p.Arch.String()) + "." + slug(p.Algo.String()) }

// fmtDelay renders a delay-point label without trailing zeros: "0",
// "1", "0.5".
func fmtDelay(ms float64) string { return strconv.FormatFloat(ms, 'f', -1, 64) }

// BuildSummary flattens a run's measurements into the summary.json
// metric namespace (documented in OBSERVABILITY.md):
//
//	latency.<pair>.d<D>ms.mean_ms      time   per delay point, with batch means
//	sensitivity.<pair>                 count  Table 2 slope (delay-scale invariant)
//	wire.<pair>.rts_per_interaction    count  shared-path round trips
//	wire.<pair>.bytes_per_interaction  count  shared-path bytes
//	throughput.<pair>.c<N>.ixn_per_s   rate   per concurrency level
//	shards.s<N>.committed_per_s        rate   shard-scaling sweep
//	shards.s<N>.twopc_fraction         ratio  cross-shard 2PC share
//	cache.finder_hit_ratio             ratio  whole-run finder cache
//	critpath.<tier>.<span>[.<lane>].ms_per_trace  time  blocking-path shares
//
// "count" and "ratio" metrics are protocol properties that reproduce
// across machines; "time" and "rate" only compare within one host.
func BuildSummary(in SummaryInput) *regress.Summary {
	s := &regress.Summary{
		Schema:    regress.SchemaV1,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		Args:      in.Args,
		Metrics:   make(map[string]regress.Metric),
	}
	if in.Eval != nil {
		for pair, sweep := range in.Eval.Sweeps {
			ps := pairSlug(pair)
			var rts, bytesPer []float64
			for _, p := range sweep.Points {
				s.Metrics["latency."+ps+".d"+fmtDelay(p.OneWayDelayMs)+"ms.mean_ms"] = regress.Metric{
					Unit:    "ms",
					Kind:    regress.KindTime,
					Better:  regress.LowerIsBetter,
					Mean:    p.MeanLatencyMs,
					N:       p.Load.Interactions,
					Samples: p.Load.BatchMeans,
				}
				rts = append(rts, p.SharedRoundTripsPerInteraction)
				bytesPer = append(bytesPer, p.SharedBytesPerInteraction)
			}
			s.Metrics["wire."+ps+".rts_per_interaction"] = regress.Metric{
				Unit:    "rt/ixn",
				Kind:    regress.KindCount,
				Better:  regress.LowerIsBetter,
				Mean:    mean(rts),
				N:       len(rts),
				Samples: rts,
			}
			s.Metrics["wire."+ps+".bytes_per_interaction"] = regress.Metric{
				Unit:    "B/ixn",
				Kind:    regress.KindCount,
				Better:  regress.LowerIsBetter,
				Mean:    mean(bytesPer),
				N:       len(bytesPer),
				Samples: bytesPer,
			}
			if sens := sweep.Sensitivity(); !isNaN(sens) {
				s.Metrics["sensitivity."+ps] = regress.Metric{
					Unit:   "ms/ms",
					Kind:   regress.KindCount,
					Better: regress.LowerIsBetter,
					Mean:   sens,
					N:      len(sweep.Points),
				}
			}
		}
	}
	for _, curve := range in.Throughput {
		ps := pairSlug(Pair{curve.Arch, curve.Algo})
		for _, p := range curve.Points {
			s.Metrics["throughput."+ps+".c"+strconv.Itoa(p.Clients)+".ixn_per_s"] = regress.Metric{
				Unit:   "ixn/s",
				Kind:   regress.KindRate,
				Better: regress.HigherIsBetter,
				Mean:   p.Throughput,
				N:      p.Interactions,
			}
		}
	}
	for _, p := range in.Shards {
		base := "shards.s" + strconv.Itoa(p.Shards)
		s.Metrics[base+".committed_per_s"] = regress.Metric{
			Unit:   "commit/s",
			Kind:   regress.KindRate,
			Better: regress.HigherIsBetter,
			Mean:   p.CommittedPerSec(),
			N:      p.Interactions,
		}
		s.Metrics[base+".twopc_fraction"] = regress.Metric{
			Kind:   regress.KindRatio,
			Better: regress.LowerIsBetter,
			Mean:   p.TwoPCFraction(),
			N:      int(p.FastpathCommits + p.TwoPCCommits + p.ReadonlyCommits),
		}
	}
	if hits, misses := in.Counters["slicache.finder_hits"], in.Counters["slicache.finder_misses"]; hits+misses > 0 {
		s.Metrics["cache.finder_hit_ratio"] = regress.Metric{
			Kind:   regress.KindRatio,
			Better: regress.HigherIsBetter,
			Mean:   float64(hits) / float64(hits+misses),
			N:      int(hits + misses),
		}
	}
	if a := in.Attribution; a != nil && a.Traces > 0 {
		for _, r := range a.Rows {
			name := "critpath." + r.Key.Tier + "." + r.Key.Name
			if r.Key.Lane != "" {
				name += "." + r.Key.Lane
			}
			s.Metrics[name+".ms_per_trace"] = regress.Metric{
				Unit:   "ms",
				Kind:   regress.KindTime,
				Better: regress.LowerIsBetter,
				Mean:   float64(r.Total) / float64(a.Traces) / 1e6,
				N:      a.Traces,
			}
		}
	}
	return s
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// isNaN avoids importing math for one comparison.
func isNaN(f float64) bool { return f != f }

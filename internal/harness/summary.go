package harness

import (
	"strconv"
	"strings"
	"time"

	"edgeejb/internal/obs"
	"edgeejb/internal/obs/collect"
	"edgeejb/internal/regress"
)

// SummaryInput collects everything a run measured for the canonical
// machine-readable summary.json. Every field is optional; the builder
// emits metrics only for what ran.
type SummaryInput struct {
	// Args echoes the command line.
	Args []string
	// Eval is the figure evaluation, when one ran.
	Eval *Evaluation
	// Throughput holds the concurrency-extension curves.
	Throughput []ThroughputCurve
	// Shards holds the shard-scaling sweep.
	Shards []ShardScalingPoint
	// Attribution is the run's critical-path aggregation.
	Attribution *collect.Attribution
	// Counters is the whole run's counter diff (finder-cache ratios).
	Counters map[string]uint64
	// Runtime is the whole run's runtime.* registry diff (from
	// prof.Runtime), feeding the resource.* attribution metrics. Nil
	// when the runtime sampler was not running.
	Runtime *obs.Snapshot
}

// slug lowercases a paper-style name into a metric-path segment:
// "ES/RDB" -> "es-rdb", "Vanilla EJBs" -> "vanilla-ejbs".
func slug(s string) string {
	s = strings.ToLower(s)
	s = strings.ReplaceAll(s, "/", "-")
	s = strings.ReplaceAll(s, " ", "-")
	return s
}

// pairSlug names one evaluation cell: "es-rdb.jdbc".
func pairSlug(p Pair) string { return slug(p.Arch.String()) + "." + slug(p.Algo.String()) }

// fmtDelay renders a delay-point label without trailing zeros: "0",
// "1", "0.5".
func fmtDelay(ms float64) string { return strconv.FormatFloat(ms, 'f', -1, 64) }

// BuildSummary flattens a run's measurements into the summary.json
// metric namespace (documented in OBSERVABILITY.md):
//
//	latency.<pair>.d<D>ms.mean_ms      time   per delay point, with batch means
//	sensitivity.<pair>                 count  Table 2 slope (delay-scale invariant)
//	wire.<pair>.rts_per_interaction    count  shared-path round trips
//	wire.<pair>.bytes_per_interaction  count  shared-path bytes
//	throughput.<pair>.c<N>.ixn_per_s   rate   per concurrency level
//	shards.s<N>.committed_per_s        rate   shard-scaling sweep
//	shards.s<N>.twopc_fraction         ratio  cross-shard 2PC share
//	cache.finder_hit_ratio             ratio  whole-run finder cache
//	critpath.<tier>.<span>[.<lane>].ms_per_trace  time  blocking-path shares
//	resource.allocs_per_interaction        count  heap objects per committed ixn
//	resource.alloc_bytes_per_interaction   count  heap bytes per committed ixn
//	resource.cpu_sec_per_1k_interactions   time   process CPU per 1k ixn
//	resource.gc_pause_p99_ms               time   whole-run GC pause p99
//	resource.goroutine_high_water          count  max goroutines sampled
//
// "count" and "ratio" metrics are protocol properties that reproduce
// across machines; "time" and "rate" only compare within one host. The
// resource.* allocation counts are same-build deterministic enough to
// gate (the gate scripts widen goroutine_high_water's budget, which
// breathes with scheduling).
func BuildSummary(in SummaryInput) *regress.Summary {
	s := &regress.Summary{
		Schema:    regress.SchemaV2,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		Args:      in.Args,
		Metrics:   make(map[string]regress.Metric),
	}
	if in.Eval != nil {
		for pair, sweep := range in.Eval.Sweeps {
			ps := pairSlug(pair)
			var rts, bytesPer []float64
			for _, p := range sweep.Points {
				s.Metrics["latency."+ps+".d"+fmtDelay(p.OneWayDelayMs)+"ms.mean_ms"] = regress.Metric{
					Unit:    "ms",
					Kind:    regress.KindTime,
					Better:  regress.LowerIsBetter,
					Mean:    p.MeanLatencyMs,
					N:       p.Load.Interactions,
					Samples: p.Load.BatchMeans,
				}
				rts = append(rts, p.SharedRoundTripsPerInteraction)
				bytesPer = append(bytesPer, p.SharedBytesPerInteraction)
			}
			s.Metrics["wire."+ps+".rts_per_interaction"] = regress.Metric{
				Unit:    "rt/ixn",
				Kind:    regress.KindCount,
				Better:  regress.LowerIsBetter,
				Mean:    mean(rts),
				N:       len(rts),
				Samples: rts,
			}
			s.Metrics["wire."+ps+".bytes_per_interaction"] = regress.Metric{
				Unit:    "B/ixn",
				Kind:    regress.KindCount,
				Better:  regress.LowerIsBetter,
				Mean:    mean(bytesPer),
				N:       len(bytesPer),
				Samples: bytesPer,
			}
			if sens := sweep.Sensitivity(); !isNaN(sens) {
				s.Metrics["sensitivity."+ps] = regress.Metric{
					Unit:   "ms/ms",
					Kind:   regress.KindCount,
					Better: regress.LowerIsBetter,
					Mean:   sens,
					N:      len(sweep.Points),
				}
			}
		}
	}
	for _, curve := range in.Throughput {
		ps := pairSlug(Pair{curve.Arch, curve.Algo})
		for _, p := range curve.Points {
			s.Metrics["throughput."+ps+".c"+strconv.Itoa(p.Clients)+".ixn_per_s"] = regress.Metric{
				Unit:   "ixn/s",
				Kind:   regress.KindRate,
				Better: regress.HigherIsBetter,
				Mean:   p.Throughput,
				N:      p.Interactions,
			}
		}
	}
	for _, p := range in.Shards {
		base := "shards.s" + strconv.Itoa(p.Shards)
		s.Metrics[base+".committed_per_s"] = regress.Metric{
			Unit:   "commit/s",
			Kind:   regress.KindRate,
			Better: regress.HigherIsBetter,
			Mean:   p.CommittedPerSec(),
			N:      p.Interactions,
		}
		s.Metrics[base+".twopc_fraction"] = regress.Metric{
			Kind:   regress.KindRatio,
			Better: regress.LowerIsBetter,
			Mean:   p.TwoPCFraction(),
			N:      int(p.FastpathCommits + p.TwoPCCommits + p.ReadonlyCommits),
		}
	}
	if hits, misses := in.Counters["slicache.finder_hits"], in.Counters["slicache.finder_misses"]; hits+misses > 0 {
		s.Metrics["cache.finder_hit_ratio"] = regress.Metric{
			Kind:   regress.KindRatio,
			Better: regress.HigherIsBetter,
			Mean:   float64(hits) / float64(hits+misses),
			N:      int(hits + misses),
		}
	}
	addResourceMetrics(s, in)
	if a := in.Attribution; a != nil && a.Traces > 0 {
		for _, r := range a.Rows {
			name := "critpath." + r.Key.Tier + "." + r.Key.Name
			if r.Key.Lane != "" {
				name += "." + r.Key.Lane
			}
			s.Metrics[name+".ms_per_trace"] = regress.Metric{
				Unit:   "ms",
				Kind:   regress.KindTime,
				Better: regress.LowerIsBetter,
				Mean:   float64(r.Total) / float64(a.Traces) / 1e6,
				N:      a.Traces,
			}
		}
	}
	return s
}

// addResourceMetrics normalizes the run's runtime.* diff by its
// interaction count into the resource.* attribution family. Each metric
// is emitted only when its inputs are nonzero, so a run without the
// sampler (or on a platform without getrusage) just omits the family.
func addResourceMetrics(s *regress.Summary, in SummaryInput) {
	rt := in.Runtime
	if rt == nil {
		return
	}
	ixn := totalInteractions(in)
	if ixn > 0 {
		if allocs := rt.Counters["runtime.allocs_total"]; allocs > 0 {
			s.Metrics["resource.allocs_per_interaction"] = regress.Metric{
				Unit:   "obj/ixn",
				Kind:   regress.KindCount,
				Better: regress.LowerIsBetter,
				Mean:   float64(allocs) / float64(ixn),
				N:      ixn,
			}
		}
		if bytes := rt.Counters["runtime.alloc_bytes_total"]; bytes > 0 {
			s.Metrics["resource.alloc_bytes_per_interaction"] = regress.Metric{
				Unit:   "B/ixn",
				Kind:   regress.KindCount,
				Better: regress.LowerIsBetter,
				Mean:   float64(bytes) / float64(ixn),
				N:      ixn,
			}
		}
		// CPU seconds per thousand interactions: ms/ixn happens to be
		// the same number, since the 1e3 factors cancel.
		if cpuMS := rt.Counters["runtime.cpu_ms_total"]; cpuMS > 0 {
			s.Metrics["resource.cpu_sec_per_1k_interactions"] = regress.Metric{
				Unit:   "s/kixn",
				Kind:   regress.KindTime,
				Better: regress.LowerIsBetter,
				Mean:   float64(cpuMS) / float64(ixn),
				N:      ixn,
			}
		}
	}
	if h, ok := rt.Histograms["runtime.gc_pause"]; ok && h.Count > 0 {
		s.Metrics["resource.gc_pause_p99_ms"] = regress.Metric{
			Unit:   "ms",
			Kind:   regress.KindTime,
			Better: regress.LowerIsBetter,
			Mean:   float64(h.Quantile(0.99)) / 1e6,
			N:      int(h.Count),
		}
	}
	if hw := rt.Gauges["runtime.goroutines_highwater"]; hw > 0 {
		s.Metrics["resource.goroutine_high_water"] = regress.Metric{
			Unit:   "goroutines",
			Kind:   regress.KindCount,
			Better: regress.LowerIsBetter,
			Mean:   float64(hw),
		}
	}
}

// totalInteractions sums every committed interaction the run measured,
// across the figure sweeps, throughput curves, and shard sweep.
func totalInteractions(in SummaryInput) int {
	n := 0
	if in.Eval != nil {
		for _, sweep := range in.Eval.Sweeps {
			for _, p := range sweep.Points {
				n += p.Load.Interactions
			}
		}
	}
	for _, curve := range in.Throughput {
		for _, p := range curve.Points {
			n += p.Interactions
		}
	}
	for _, p := range in.Shards {
		n += p.Interactions
	}
	return n
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// isNaN avoids importing math for one comparison.
func isNaN(f float64) bool { return f != f }

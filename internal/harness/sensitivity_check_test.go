package harness

import (
	"context"
	"testing"
	"time"

	"edgeejb/internal/trade"
)

// TestSensitivityOrdering verifies the central qualitative result of the
// paper (Table 2): Clients/RAS ≈ 2, ES/RBES cached is close to it, and
// within ES/RDB the ordering is JDBC < Cached < Vanilla, with every
// ES/RDB algorithm far above Clients/RAS.
func TestSensitivityOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("sensitivity sweep uses real injected delays")
	}
	run := RunOptions{
		Delays:         []time.Duration{0, time.Millisecond, 2 * time.Millisecond},
		Sessions:       10,
		WarmupSessions: 4,
		Batches:        5,
		Workload:       trade.GeneratorConfig{Seed: 11, Users: 20, Symbols: 40},
	}
	pop := trade.PopulateConfig{Users: 20, Symbols: 40, HoldingsPerUser: 3}

	sens := make(map[Pair]float64)
	for _, pair := range AllPairs() {
		sweep, err := RunSweep(context.Background(), Options{
			Arch:     pair.Arch,
			Algo:     pair.Algo,
			Populate: pop,
		}, run)
		if err != nil {
			t.Fatalf("%s: %v", pair, err)
		}
		sens[pair] = sweep.Sensitivity()
		t.Logf("%-28s sensitivity %.2f (R²=%.3f)", pair, sweep.Sensitivity(), sweep.Fit.R2)
	}

	ras := sens[Pair{ClientsRAS, AlgJDBC}]
	if ras < 1.8 || ras > 2.5 {
		t.Errorf("Clients/RAS sensitivity %.2f outside [1.8, 2.5] (paper: 2.0)", ras)
	}
	rbes := sens[Pair{ESRBES, AlgCachedEJB}]
	rdbCached := sens[Pair{ESRDB, AlgCachedEJB}]
	rdbJDBC := sens[Pair{ESRDB, AlgJDBC}]
	rdbVanilla := sens[Pair{ESRDB, AlgVanillaEJB}]

	// The non-edge architecture is least sensitive; ES/RBES is close
	// behind (paper: 2.0 vs 3.1).
	if !(rbes >= ras-0.2) {
		t.Errorf("expected ES/RBES (%.2f) >= Clients/RAS (%.2f)", rbes, ras)
	}
	if !(rbes < 0.6*rdbJDBC) {
		t.Errorf("expected ES/RBES (%.2f) well below best ES/RDB (%.2f)", rbes, rdbJDBC)
	}
	// Within ES/RDB, cached EJBs should land near JDBC. The paper's
	// tooled prototype measured 13.0 vs 9.4; our from-scratch SLI
	// runtime has none of that tooling overhead, so the two are nearly
	// equal (see EXPERIMENTS.md).
	if rdbCached < 0.8*rdbJDBC || rdbCached > 1.6*rdbJDBC {
		t.Errorf("expected ES/RDB cached (%.2f) within [0.8, 1.6]x of JDBC (%.2f)", rdbCached, rdbJDBC)
	}
	// Caching must strongly reduce vanilla-EJB sensitivity (paper:
	// 23.6 -> 13.0).
	if !(rdbCached < 0.75*rdbVanilla) {
		t.Errorf("expected ES/RDB cached (%.2f) < 0.75x vanilla (%.2f)", rdbCached, rdbVanilla)
	}
	if !(rdbJDBC < rdbVanilla) {
		t.Errorf("expected ES/RDB JDBC (%.2f) < vanilla (%.2f)", rdbJDBC, rdbVanilla)
	}
}

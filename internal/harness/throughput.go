package harness

import (
	"context"
	"fmt"
	"io"
	"time"

	"edgeejb/internal/loadgen"
	"edgeejb/internal/obs"
	"edgeejb/internal/trade"
)

// ThroughputOptions configures the multi-client throughput extension:
// the paper factored queuing out ("one virtual client"); this experiment
// puts it back, sweeping the number of concurrent clients at a fixed
// delay and reporting throughput, latency, and failure (conflict
// exhaustion) rates per architecture.
type ThroughputOptions struct {
	// ClientCounts is the concurrency sweep (e.g. 1, 2, 4, 8).
	ClientCounts []int
	// OneWayDelay on the architecture's high-latency path.
	OneWayDelay time.Duration
	// SessionsPerClient measured per client per point.
	SessionsPerClient int
	// WarmupSessions before the first point.
	WarmupSessions int
	// Workload sizes the generators.
	Workload trade.GeneratorConfig
}

// DefaultThroughputOptions returns a laptop-scale concurrency sweep.
func DefaultThroughputOptions() ThroughputOptions {
	return ThroughputOptions{
		ClientCounts:      []int{1, 2, 4, 8},
		OneWayDelay:       2 * time.Millisecond,
		SessionsPerClient: 6,
		WarmupSessions:    4,
		Workload:          trade.GeneratorConfig{Seed: 42, Users: 50, Symbols: 100},
	}
}

// ThroughputPoint is one concurrency level's measurement.
type ThroughputPoint struct {
	Clients       int
	Throughput    float64 // interactions/second
	MeanLatencyMs float64
	Failures      int
	Interactions  int
	// Counters is the full counter diff for the point, including
	// labeled children like slicache.conflicts{bean=quote}. Unlike the
	// single-virtual-client sweep, the concurrent run actually races
	// writers, so this is where real conflict forensics come from.
	Counters map[string]uint64
	// Events are the forensic events emitted during this point.
	Events []obs.Event
}

// ThroughputCurve is one architecture's throughput-vs-concurrency curve.
type ThroughputCurve struct {
	Arch   Architecture
	Algo   Algorithm
	Points []ThroughputPoint
}

// RunThroughput builds the topology once and sweeps concurrency levels.
func RunThroughput(ctx context.Context, opts Options, topts ThroughputOptions) (ThroughputCurve, error) {
	if len(topts.ClientCounts) == 0 {
		return ThroughputCurve{}, fmt.Errorf("harness: throughput needs client counts")
	}
	opts.OneWayDelay = topts.OneWayDelay
	topo, err := Build(opts)
	if err != nil {
		return ThroughputCurve{}, err
	}
	defer topo.Close()

	curve := ThroughputCurve{Arch: topo.Arch, Algo: topo.Algo}
	warmup := topts.WarmupSessions
	for _, n := range topts.ClientCounts {
		obsBefore := obs.Default.Snapshot()
		seqBefore := obs.DefaultEvents.Seq()
		res, err := loadgen.RunConcurrent(ctx, loadgen.ConcurrentConfig{
			NewClient:         topo.NewWebClient,
			Clients:           n,
			SessionsPerClient: topts.SessionsPerClient,
			WarmupSessions:    warmup,
			Workload:          topts.Workload,
		})
		if err != nil {
			return ThroughputCurve{}, fmt.Errorf("harness: %d clients: %w", n, err)
		}
		warmup = 0 // warm once
		curve.Points = append(curve.Points, ThroughputPoint{
			Clients:       n,
			Throughput:    res.Throughput,
			MeanLatencyMs: res.Latency.Mean,
			Failures:      res.Failures,
			Interactions:  res.Interactions,
			Counters:      obs.Default.Diff(obsBefore).Counters,
			Events:        obs.DefaultEvents.Since(seqBefore),
		})
	}
	return curve, nil
}

// WriteThroughput renders one or more curves as a text table.
func WriteThroughput(w io.Writer, curves []ThroughputCurve) {
	fmt.Fprintln(w, "Extension: throughput under concurrent load (not in the paper;")
	fmt.Fprintln(w, "the paper measured a single virtual client to factor out queuing)")
	for _, c := range curves {
		fmt.Fprintf(w, "\n%s / %s\n", c.Arch, c.Algo)
		fmt.Fprintf(w, "%8s %16s %16s %10s\n", "clients", "interactions/s", "mean ms", "failures")
		for _, p := range c.Points {
			fmt.Fprintf(w, "%8d %16.1f %16.2f %10d\n", p.Clients, p.Throughput, p.MeanLatencyMs, p.Failures)
		}
	}
}

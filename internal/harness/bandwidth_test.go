package harness

import (
	"context"
	"strings"
	"testing"
	"time"

	"edgeejb/internal/trade"
)

// TestBandwidthOrdering verifies Figure 8's qualitative result: the
// Clients/RAS architecture transmits far more bytes per interaction on
// the shared path than either edge architecture, because the whole
// presentation payload crosses it.
func TestBandwidthOrdering(t *testing.T) {
	run := RunOptions{
		Delays:         []time.Duration{0},
		Sessions:       6,
		WarmupSessions: 2,
		Batches:        4,
		Workload:       trade.GeneratorConfig{Seed: 21, Users: 10, Symbols: 20},
	}
	pop := trade.PopulateConfig{Users: 10, Symbols: 20, HoldingsPerUser: 2}

	bytesFor := func(arch Architecture, algo Algorithm) float64 {
		t.Helper()
		sweep, err := RunSweep(context.Background(), Options{
			Arch: arch, Algo: algo, Populate: pop,
		}, run)
		if err != nil {
			t.Fatalf("%s/%s: %v", arch, algo, err)
		}
		return sweep.Points[0].SharedBytesPerInteraction
	}

	ras := bytesFor(ClientsRAS, AlgJDBC)
	rbes := bytesFor(ESRBES, AlgCachedEJB)
	rdb := bytesFor(ESRDB, AlgJDBC)
	t.Logf("bytes/interaction: Clients/RAS %.0f, ES/RBES %.0f, ES/RDB %.0f", ras, rbes, rdb)

	// Paper: >7000 for Clients/RAS vs 3000 (ES/RBES) and 2000 (ES/RDB).
	if ras < 6000 {
		t.Errorf("Clients/RAS = %.0f bytes/interaction, want > 6000 (paper: >7000)", ras)
	}
	if !(ras > 2*rbes) {
		t.Errorf("Clients/RAS (%.0f) should far exceed ES/RBES (%.0f)", ras, rbes)
	}
	if !(ras > 2*rdb) {
		t.Errorf("Clients/RAS (%.0f) should far exceed ES/RDB (%.0f)", ras, rdb)
	}
	if rbes <= 0 || rdb <= 0 {
		t.Error("edge architectures should still transmit some shared-path traffic")
	}
}

// TestTopologyValidation covers the build-time constraints.
func TestTopologyValidation(t *testing.T) {
	if _, err := Build(Options{Arch: ESRBES, Algo: AlgJDBC}); err == nil {
		t.Error("ES/RBES with a non-cached algorithm must be rejected")
	}
	if _, err := Build(Options{Arch: ClientsRAS, Algo: AlgJDBC, EdgeServers: 2}); err == nil {
		t.Error("Clients/RAS with multiple edges must be rejected")
	}
	if _, err := Build(Options{Arch: Architecture(9), Algo: AlgJDBC}); err == nil {
		t.Error("invalid architecture accepted")
	}
	if _, err := Build(Options{Arch: ESRDB, Algo: Algorithm(9)}); err == nil {
		t.Error("invalid algorithm accepted")
	}
}

// TestMultipleEdgeServersShareState: a write through edge 0 must be
// visible through edge 1 — the single-logical-image property across a
// cluster of cache-enhanced edge servers.
func TestMultipleEdgeServersShareState(t *testing.T) {
	topo, err := Build(Options{
		Arch:        ESRBES,
		Algo:        AlgCachedEJB,
		EdgeServers: 2,
		Populate:    trade.PopulateConfig{Users: 4, Symbols: 8, HoldingsPerUser: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()
	ctx := context.Background()
	user := trade.UserID(0)

	c0, err := topo.NewWebClientFor(0)
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1, err := topo.NewWebClientFor(1)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	// Warm edge 1's cache with the user's profile.
	if resp, err := c1.DoStep(ctx, trade.Step{Action: trade.ActionAccount, UserID: user}); err != nil || !resp.OK {
		t.Fatalf("warm read via edge 1: %v / %+v", err, resp)
	}
	// Update the profile through edge 0.
	if resp, err := c0.DoStep(ctx, trade.Step{
		Action:  trade.ActionAccountUpdate,
		UserID:  user,
		Address: "42 Invalidation Ave",
		Email:   "shared@example.test",
	}); err != nil || !resp.OK {
		t.Fatalf("update via edge 0: %v / %+v", err, resp)
	}
	// Edge 1 must serve the new state. Invalidation is asynchronous, so
	// poll briefly; even without the notice the optimistic validation
	// would prevent edge 1 from committing stale writes — here we check
	// read freshness, which the notice provides.
	deadline := time.Now().Add(3 * time.Second)
	for {
		resp, err := c1.DoStep(ctx, trade.Step{Action: trade.ActionAccount, UserID: user})
		if err != nil {
			t.Fatal(err)
		}
		if resp.OK && strings.Contains(string(resp.Body), "42 Invalidation Ave") {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("edge 1 never observed edge 0's committed update")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

package trade

import (
	"context"
	"testing"

	"edgeejb/internal/backend"
	"edgeejb/internal/component"
	"edgeejb/internal/dbwire"
	"edgeejb/internal/slicache"
	"edgeejb/internal/sqlstore"
	"edgeejb/internal/storeapi"
)

// These tests pin the per-action wire round-trip counts that produce the
// paper's latency sensitivities: every round trip on the high-latency
// path costs two one-way delays, so the measured Table 2 slopes are
// (approximately) twice the weighted-average round trips per
// interaction. If a refactor changes these counts, the figures change —
// so the counts are pinned here, per algorithm, over a REAL dbwire
// connection.

// rtEnv wires a trade service over a real wire client so round trips
// can be counted.
type rtEnv struct {
	svc    *Service
	client *dbwire.Client
	mgr    *slicache.Manager
}

func newRTEnv(t *testing.T, algo string) *rtEnv {
	t.Helper()
	store := sqlstore.New()
	t.Cleanup(store.Close)
	Populate(store, PopulateConfig{Users: 4, Symbols: 8, HoldingsPerUser: 2, OpenBalance: 100_000})

	dbSrv := dbwire.NewServer(storeapi.Local(store))
	if err := dbSrv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dbSrv.Close)

	var (
		client *dbwire.Client
		rm     component.ResourceManager
		mgr    *slicache.Manager
	)
	switch algo {
	case "jdbc":
		client = dbwire.Dial(dbSrv.Addr())
		rm = component.NewJDBCManager(client)
	case "bmp":
		client = dbwire.Dial(dbSrv.Addr())
		rm = component.NewBMPManager(client)
	case "sli-combined":
		client = dbwire.Dial(dbSrv.Addr())
		mgr = slicache.NewManager(client, slicache.WithShipping(slicache.PerImage))
		rm = mgr
	case "sli-split":
		// The edge counts round trips to the BACK-END; the back-end's
		// own database accesses are on the low-latency path.
		dbClient := dbwire.Dial(dbSrv.Addr())
		t.Cleanup(func() { _ = dbClient.Close() })
		be := backend.NewServer(dbClient)
		if err := be.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(be.Close)
		client = dbwire.Dial(be.Addr())
		mgr = slicache.NewManager(client, slicache.WithShipping(slicache.WholeSet))
		rm = mgr
	default:
		t.Fatalf("unknown algo %s", algo)
	}
	t.Cleanup(func() { _ = client.Close() })
	if mgr != nil {
		t.Cleanup(mgr.Close)
	}

	reg, err := NewEntityRegistry()
	if err != nil {
		t.Fatal(err)
	}
	return &rtEnv{
		svc:    NewService(component.NewContainer(reg, rm)),
		client: client,
		mgr:    mgr,
	}
}

// measure returns the wire round trips consumed by fn.
func (e *rtEnv) measure(t *testing.T, fn func(ctx context.Context) error) uint64 {
	t.Helper()
	ctx := context.Background()
	before := e.client.RoundTrips()
	if err := fn(ctx); err != nil {
		t.Fatal(err)
	}
	return e.client.RoundTrips() - before
}

func TestRoundTripsHomeAction(t *testing.T) {
	user := UserID(0)
	home := func(e *rtEnv) func(context.Context) error {
		return func(ctx context.Context) error { _, err := e.svc.Home(ctx, user); return err }
	}

	// JDBC: begin + select + commit.
	jdbc := newRTEnv(t, "jdbc")
	if got := jdbc.measure(t, home(jdbc)); got != 3 {
		t.Errorf("jdbc home = %d RTs, want 3", got)
	}
	// Vanilla EJB: begin + find + ejbLoad + ejbStore + commit.
	bmp := newRTEnv(t, "bmp")
	if got := bmp.measure(t, home(bmp)); got != 5 {
		t.Errorf("bmp home = %d RTs, want 5", got)
	}
	// Cached (split), warm: a single whole-set validation round trip.
	sli := newRTEnv(t, "sli-split")
	cold := sli.measure(t, home(sli)) // warms the cache
	if got := sli.measure(t, home(sli)); got != 1 {
		t.Errorf("sli-split warm home = %d RTs, want 1 (cold was %d)", got, cold)
	}
	if cold != 2 { // miss fetch + commit validation
		t.Errorf("sli-split cold home = %d RTs, want 2", cold)
	}
	// Cached (combined), warm: begin + CheckVersion + commit.
	slic := newRTEnv(t, "sli-combined")
	_ = slic.measure(t, home(slic))
	if got := slic.measure(t, home(slic)); got != 3 {
		t.Errorf("sli-combined warm home = %d RTs, want 3", got)
	}
}

func TestRoundTripsPortfolioAction(t *testing.T) {
	user := UserID(1) // seeded with 2 holdings
	portfolio := func(e *rtEnv) func(context.Context) error {
		return func(ctx context.Context) error { _, err := e.svc.Portfolio(ctx, user); return err }
	}

	// JDBC: begin + select + commit = 3 regardless of result size.
	jdbc := newRTEnv(t, "jdbc")
	if got := jdbc.measure(t, portfolio(jdbc)); got != 3 {
		t.Errorf("jdbc portfolio = %d RTs, want 3", got)
	}
	// Vanilla EJB: begin + finder + N ejbLoads + N ejbStores + commit =
	// 3 + 2N with N = 2 holdings: the N+1 pattern that makes vanilla the
	// most latency-sensitive algorithm.
	bmp := newRTEnv(t, "bmp")
	if got := bmp.measure(t, portfolio(bmp)); got != 7 {
		t.Errorf("bmp portfolio = %d RTs, want 7", got)
	}
	// Cached (split): finder query + whole-set commit = 2, every time
	// (the finder must always consult the persistent store, §2.2).
	sli := newRTEnv(t, "sli-split")
	_ = sli.measure(t, portfolio(sli))
	if got := sli.measure(t, portfolio(sli)); got != 2 {
		t.Errorf("sli-split portfolio = %d RTs, want 2", got)
	}
	// Cached (combined): finder query + begin + N validations (N = 2
	// holdings) + commit.
	slic := newRTEnv(t, "sli-combined")
	_ = slic.measure(t, portfolio(slic))
	if got := slic.measure(t, portfolio(slic)); got != 1+1+2+1 {
		t.Errorf("sli-combined portfolio = %d RTs, want 5", got)
	}
}

// TestRoundTripsOrderingAcrossAlgorithms drives one full session per
// algorithm and pins the qualitative ordering: split-cached ≪ jdbc ≤
// combined-cached < vanilla.
func TestRoundTripsOrderingAcrossAlgorithms(t *testing.T) {
	session := []Step{
		{Action: ActionLogin, UserID: UserID(2), SessionID: "rt"},
		{Action: ActionHome, UserID: UserID(2)},
		{Action: ActionQuote, UserID: UserID(2), Symbol: SymbolID(1)},
		{Action: ActionPortfolio, UserID: UserID(2)},
		{Action: ActionBuy, UserID: UserID(2), Symbol: SymbolID(1), Quantity: 2},
		{Action: ActionSell, UserID: UserID(2)},
		{Action: ActionLogout, UserID: UserID(2)},
	}
	runSession := func(e *rtEnv) uint64 {
		return e.measure(t, func(ctx context.Context) error {
			for _, s := range session {
				var err error
				switch s.Action {
				case ActionLogin:
					_, err = e.svc.Login(ctx, s.UserID, s.SessionID)
				case ActionHome:
					_, err = e.svc.Home(ctx, s.UserID)
				case ActionQuote:
					_, err = e.svc.GetQuote(ctx, s.Symbol)
				case ActionPortfolio:
					_, err = e.svc.Portfolio(ctx, s.UserID)
				case ActionBuy:
					_, err = e.svc.Buy(ctx, s.UserID, s.Symbol, s.Quantity)
				case ActionSell:
					_, err = e.svc.Sell(ctx, s.UserID)
				case ActionLogout:
					err = e.svc.Logout(ctx, s.UserID)
				}
				if err != nil {
					return err
				}
			}
			return nil
		})
	}

	counts := make(map[string]uint64)
	for _, algo := range []string{"jdbc", "bmp", "sli-combined", "sli-split"} {
		e := newRTEnv(t, algo)
		_ = runSession(e) // warm caches / sessions
		counts[algo] = runSession(e)
	}
	t.Logf("session round trips: %v", counts)

	if !(counts["sli-split"] < counts["jdbc"]) {
		t.Errorf("split-cached (%d) should beat jdbc (%d)", counts["sli-split"], counts["jdbc"])
	}
	if !(counts["jdbc"] < counts["bmp"]) {
		t.Errorf("jdbc (%d) should beat vanilla (%d)", counts["jdbc"], counts["bmp"])
	}
	if !(counts["sli-combined"] < counts["bmp"]) {
		t.Errorf("combined-cached (%d) should beat vanilla (%d)", counts["sli-combined"], counts["bmp"])
	}
	// The split/combined gap is the architectural point of Figure 6.
	if !(2*counts["sli-split"] <= counts["sli-combined"]) {
		t.Errorf("split (%d) should be at most half of combined (%d)", counts["sli-split"], counts["sli-combined"])
	}
}

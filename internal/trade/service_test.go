package trade

import (
	"context"
	"fmt"
	"testing"

	"edgeejb/internal/component"
	"edgeejb/internal/slicache"
	"edgeejb/internal/sqlstore"
	"edgeejb/internal/storeapi"
)

// newService builds the trade service over a fresh populated store with
// the given resource-manager constructor, so every service test runs
// against all three algorithms.
func newService(t *testing.T, buildRM func(storeapi.Conn) component.ResourceManager) (*Service, *sqlstore.Store) {
	t.Helper()
	store := sqlstore.New()
	t.Cleanup(store.Close)
	Populate(store, PopulateConfig{Users: 5, Symbols: 10, HoldingsPerUser: 2, OpenBalance: 10_000})
	reg, err := NewEntityRegistry()
	if err != nil {
		t.Fatal(err)
	}
	rm := buildRM(storeapi.Local(store))
	return NewService(component.NewContainer(reg, rm)), store
}

// allRMs lists the three algorithms of §4.3.
func allRMs() map[string]func(storeapi.Conn) component.ResourceManager {
	return map[string]func(storeapi.Conn) component.ResourceManager{
		"jdbc": func(c storeapi.Conn) component.ResourceManager { return component.NewJDBCManager(c) },
		"bmp":  func(c storeapi.Conn) component.ResourceManager { return component.NewBMPManager(c) },
		"sli":  func(c storeapi.Conn) component.ResourceManager { return slicache.NewManager(c) },
	}
}

func TestServiceActionsUnderEveryAlgorithm(t *testing.T) {
	for name, build := range allRMs() {
		build := build
		t.Run(name, func(t *testing.T) {
			svc, _ := newService(t, build)
			ctx := context.Background()
			user := UserID(0)

			login, err := svc.Login(ctx, user, "sess-1")
			if err != nil {
				t.Fatalf("login: %v", err)
			}
			if login.Balance != 10_000 {
				t.Errorf("login balance = %v", login.Balance)
			}

			home, err := svc.Home(ctx, user)
			if err != nil {
				t.Fatalf("home: %v", err)
			}
			if home.Balance != 10_000 {
				t.Errorf("home balance = %v", home.Balance)
			}

			acct, err := svc.Account(ctx, user)
			if err != nil {
				t.Fatalf("account: %v", err)
			}
			if acct.FullName == "" {
				t.Error("account missing profile data")
			}

			if err := svc.AccountUpdate(ctx, user, "9 New Rd", "new@example.test"); err != nil {
				t.Fatalf("account update: %v", err)
			}
			acct2, err := svc.Account(ctx, user)
			if err != nil {
				t.Fatal(err)
			}
			if acct2.Address != "9 New Rd" || acct2.Email != "new@example.test" {
				t.Errorf("update not visible: %+v", acct2)
			}

			pf, err := svc.Portfolio(ctx, user)
			if err != nil {
				t.Fatalf("portfolio: %v", err)
			}
			if len(pf.Holdings) != 2 {
				t.Errorf("portfolio size = %d, want 2 seeded", len(pf.Holdings))
			}

			q, err := svc.GetQuote(ctx, SymbolID(1))
			if err != nil {
				t.Fatalf("quote: %v", err)
			}
			if q.Price <= 0 {
				t.Errorf("quote price = %v", q.Price)
			}

			buy, err := svc.Buy(ctx, user, SymbolID(1), 3)
			if err != nil {
				t.Fatalf("buy: %v", err)
			}
			wantBalance := 10_000 - 3*q.Price
			if diff := buy.Balance - wantBalance; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("buy balance = %v, want %v", buy.Balance, wantBalance)
			}
			pf2, _ := svc.Portfolio(ctx, user)
			if len(pf2.Holdings) != 3 {
				t.Errorf("portfolio after buy = %d, want 3", len(pf2.Holdings))
			}

			sell, err := svc.Sell(ctx, user)
			if err != nil {
				t.Fatalf("sell: %v", err)
			}
			if !sell.Sold {
				t.Error("sell found nothing to sell")
			}
			pf3, _ := svc.Portfolio(ctx, user)
			if len(pf3.Holdings) != 2 {
				t.Errorf("portfolio after sell = %d, want 2", len(pf3.Holdings))
			}

			if err := svc.Register(ctx, "fresh-user", "Fresh User", "f@example.test", 500); err != nil {
				t.Fatalf("register: %v", err)
			}
			if _, err := svc.Login(ctx, "fresh-user", "sess-2"); err != nil {
				t.Fatalf("login as registered user: %v", err)
			}

			if err := svc.Logout(ctx, user); err != nil {
				t.Fatalf("logout: %v", err)
			}
		})
	}
}

func TestLoginUpdatesRegistry(t *testing.T) {
	svc, store := newService(t, func(c storeapi.Conn) component.ResourceManager {
		return component.NewJDBCManager(c)
	})
	ctx := context.Background()
	user := UserID(1)
	if _, err := svc.Login(ctx, user, "sess-9"); err != nil {
		t.Fatal(err)
	}
	res, err := storeapi.Local(store).AutoGet(ctx, TableRegistry, user)
	if err != nil {
		t.Fatal(err)
	}
	reg := &Registry{}
	if err := reg.LoadMemento(res.Mem); err != nil {
		t.Fatal(err)
	}
	if !reg.Active || reg.SessionID != "sess-9" || reg.Visits != 1 {
		t.Errorf("registry after login = %+v", reg)
	}
	if err := svc.Logout(ctx, user); err != nil {
		t.Fatal(err)
	}
	res, _ = storeapi.Local(store).AutoGet(ctx, TableRegistry, user)
	_ = reg.LoadMemento(res.Mem)
	if reg.Active || reg.SessionID != "" {
		t.Errorf("registry after logout = %+v", reg)
	}
}

func TestBuyInsufficientFunds(t *testing.T) {
	svc, _ := newService(t, func(c storeapi.Conn) component.ResourceManager {
		return component.NewJDBCManager(c)
	})
	ctx := context.Background()
	if _, err := svc.Buy(ctx, UserID(0), SymbolID(0), 1e9); err == nil {
		t.Fatal("expected insufficient-funds error")
	}
	// The failed buy must not have deducted anything.
	home, err := svc.Home(ctx, UserID(0))
	if err != nil {
		t.Fatal(err)
	}
	if home.Balance != 10_000 {
		t.Errorf("balance after failed buy = %v, want 10000", home.Balance)
	}
}

func TestSellEmptyPortfolio(t *testing.T) {
	svc, _ := newService(t, func(c storeapi.Conn) component.ResourceManager {
		return component.NewJDBCManager(c)
	})
	ctx := context.Background()
	user := UserID(2)
	// Drain the portfolio.
	for i := 0; i < 2; i++ {
		if _, err := svc.Sell(ctx, user); err != nil {
			t.Fatal(err)
		}
	}
	res, err := svc.Sell(ctx, user)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sold {
		t.Error("sold from an empty portfolio")
	}
}

func TestBuySellConservesValue(t *testing.T) {
	// Buying then selling the same quantity at an unchanged quote must
	// restore the balance exactly — a money-conservation invariant
	// across the whole component stack.
	for name, build := range allRMs() {
		build := build
		t.Run(name, func(t *testing.T) {
			svc, _ := newService(t, build)
			ctx := context.Background()
			user := UserID(3)
			// Empty the seeded portfolio first so Sell hits our buy.
			for {
				res, err := svc.Sell(ctx, user)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Sold {
					break
				}
			}
			before, err := svc.Home(ctx, user)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := svc.Buy(ctx, user, SymbolID(4), 5); err != nil {
				t.Fatal(err)
			}
			if _, err := svc.Sell(ctx, user); err != nil {
				t.Fatal(err)
			}
			after, err := svc.Home(ctx, user)
			if err != nil {
				t.Fatal(err)
			}
			if diff := after.Balance - before.Balance; diff > 1e-6 || diff < -1e-6 {
				t.Errorf("balance drifted by %v across buy+sell", diff)
			}
		})
	}
}

func TestRegisterDuplicateFails(t *testing.T) {
	svc, _ := newService(t, func(c storeapi.Conn) component.ResourceManager {
		return component.NewJDBCManager(c)
	})
	ctx := context.Background()
	if err := svc.Register(ctx, UserID(0), "Dup", "d@example.test", 100); err == nil {
		t.Fatal("duplicate register succeeded")
	}
}

func TestServiceSetClock(t *testing.T) {
	svc, store := newService(t, func(c storeapi.Conn) component.ResourceManager {
		return component.NewJDBCManager(c)
	})
	svc.SetClock(func() string { return "2026-07-06T00:00:00Z" })
	ctx := context.Background()
	if _, err := svc.Buy(ctx, UserID(0), SymbolID(0), 1); err != nil {
		t.Fatal(err)
	}
	qres, err := storeapi.Local(store).AutoQuery(ctx, HoldingsByAccount(UserID(0)))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range qres.Mems {
		if m.Fields["purchaseDate"].Str == "2026-07-06T00:00:00Z" {
			found = true
		}
	}
	if !found {
		t.Error("clock override not used for purchase date")
	}
}

func ExampleService_GetQuote() {
	store := sqlstore.New()
	defer store.Close()
	store.Seed((&Quote{Symbol: "s-0", Company: "ACME", Price: 42}).ToMemento())
	reg, _ := NewEntityRegistry()
	svc := NewService(component.NewContainer(reg, component.NewJDBCManager(storeapi.Local(store))))
	q, _ := svc.GetQuote(context.Background(), "s-0")
	fmt.Printf("%s trades at $%.2f\n", q.Symbol, q.Price)
	// Output: s-0 trades at $42.00
}

func TestBrowseBundle(t *testing.T) {
	for name, build := range allRMs() {
		build := build
		t.Run(name, func(t *testing.T) {
			svc, _ := newService(t, build)
			ctx := context.Background()
			res, err := svc.BrowseBundle(ctx, UserID(0), SymbolID(2))
			if err != nil {
				t.Fatal(err)
			}
			if res.Home.Balance != 10_000 {
				t.Errorf("bundle home balance = %v", res.Home.Balance)
			}
			if res.Quote.Price <= 0 {
				t.Errorf("bundle quote price = %v", res.Quote.Price)
			}
			if len(res.Portfolio.Holdings) != 2 {
				t.Errorf("bundle portfolio = %d holdings, want 2", len(res.Portfolio.Holdings))
			}
		})
	}
}

func TestMarketSummaryOrdering(t *testing.T) {
	for name, build := range allRMs() {
		build := build
		t.Run(name, func(t *testing.T) {
			svc, _ := newService(t, build)
			ctx := context.Background()
			res, err := svc.MarketSummary(ctx, 4)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Top) != 4 {
				t.Fatalf("top = %d quotes, want 4", len(res.Top))
			}
			for i := 1; i < len(res.Top); i++ {
				if res.Top[i].Price > res.Top[i-1].Price {
					t.Errorf("summary not descending by price: %v then %v",
						res.Top[i-1].Price, res.Top[i].Price)
				}
			}
			if res.Volume <= 0 {
				t.Error("volume not aggregated")
			}
			// Default n.
			res, err = svc.MarketSummary(ctx, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Top) != 5 {
				t.Errorf("default top = %d, want 5", len(res.Top))
			}
		})
	}
}

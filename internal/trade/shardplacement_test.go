package trade

import (
	"testing"

	"edgeejb/internal/memento"
	"edgeejb/internal/shard"
)

func TestShardPlacementCoLocatesUser(t *testing.T) {
	user := UserID(3)
	keys := []memento.Key{
		{Table: TableAccount, ID: user},
		{Table: TableProfile, ID: user},
		{Table: TableRegistry, ID: user},
		{Table: TableHolding, ID: "h-" + user + "-seed0"},
		{Table: TableHolding, ID: "h-" + user + "-12345"},
	}
	want := ShardPlacement(keys[0])
	for _, k := range keys[1:] {
		if got := ShardPlacement(k); got != want {
			t.Errorf("placement(%v) = %q, want %q (user co-location)", k, got, want)
		}
	}
	// So the whole working set lands on one shard, whatever the count.
	for _, n := range []int{2, 3, 4, 7} {
		ring := shard.NewRing(n, shard.WithPlacement(ShardPlacement))
		first := ring.Of(keys[0])
		for _, k := range keys[1:] {
			if got := ring.Of(k); got != first {
				t.Errorf("n=%d: %v on shard %d, account on %d", n, k, got, first)
			}
		}
	}
}

func TestShardPlacementQuotesSpread(t *testing.T) {
	a := ShardPlacement(memento.Key{Table: TableQuote, ID: SymbolID(1)})
	b := ShardPlacement(memento.Key{Table: TableQuote, ID: SymbolID(2)})
	if a == b {
		t.Errorf("distinct quotes share placement %q", a)
	}
}

func TestHoldingOwner(t *testing.T) {
	tests := []struct {
		id    string
		owner string
		ok    bool
	}{
		{"h-uid-3-seed0", "uid-3", true},
		{"h-uid-12-1754", "uid-12", true},
		{"h-x-y-z", "x-y", true}, // owner may itself contain dashes
		{"not-a-holding", "", false},
		{"h-", "", false},
		{"h-nodash", "", false},
	}
	for _, tt := range tests {
		owner, ok := holdingOwner(tt.id)
		if owner != tt.owner || ok != tt.ok {
			t.Errorf("holdingOwner(%q) = (%q, %v), want (%q, %v)", tt.id, owner, ok, tt.owner, tt.ok)
		}
	}
}

func TestQueryShardPlacement(t *testing.T) {
	user := UserID(5)
	q := memento.Query{
		Table: TableHolding,
		Where: []memento.Predicate{memento.Where("accountID", memento.String(user))},
	}
	p, ok := QueryShardPlacement(q)
	if !ok || p != "user/"+user {
		t.Fatalf("QueryShardPlacement = (%q, %v), want (user/%s, true)", p, ok, user)
	}
	// The pin agrees with the rows' placement: the finder probes the
	// shard that actually stores the user's holdings.
	if p != ShardPlacement(memento.Key{Table: TableHolding, ID: "h-" + user + "-seed1"}) {
		t.Error("finder pin and holding placement disagree")
	}
	// Non-holding or non-equality queries scatter.
	if _, ok := QueryShardPlacement(memento.Query{Table: TableQuote}); ok {
		t.Error("quote query should not be pinned")
	}
	if _, ok := QueryShardPlacement(memento.Query{Table: TableHolding}); ok {
		t.Error("unfiltered holding query should not be pinned")
	}
}

func TestPopulationRowsMatchPopulate(t *testing.T) {
	cfg := PopulateConfig{Users: 5, Symbols: 7, HoldingsPerUser: 2, OpenBalance: 100}
	rows := PopulationRows(cfg)
	want := 7 + 5*(3+2)
	if len(rows) != want {
		t.Fatalf("PopulationRows: %d rows, want %d", len(rows), want)
	}
	// Deterministic: two derivations agree row for row, so every shard
	// filtering the same population sees the same universe.
	again := PopulationRows(cfg)
	for i := range rows {
		if rows[i].Key != again[i].Key {
			t.Fatalf("row %d key flapped: %v vs %v", i, rows[i].Key, again[i].Key)
		}
	}
}

package trade

import (
	"context"
	"fmt"

	"edgeejb/internal/component"
)

// BrowseBundleResult is the combined result of a batched browse.
type BrowseBundleResult struct {
	Home      HomeResult
	Quote     QuoteResult
	Portfolio PortfolioResult
}

// BrowseBundle runs Home + Quote + Portfolio as ONE transaction instead
// of three. This implements the batching idea the paper sketches as
// future work: "workflow techniques could batch the commit of multiple
// client requests as a single transaction" (§4.4) — under the SLI cache
// the whole bundle costs a single commit round trip on the high-latency
// path, where three separate requests would cost three.
func (s *Service) BrowseBundle(ctx context.Context, userID, symbol string) (BrowseBundleResult, error) {
	var out BrowseBundleResult
	err := s.container.ExecuteRetry(ctx, s.attempts, func(tx *component.Tx) error {
		acct := &Account{UserID: userID}
		if err := tx.Find(acct); err != nil {
			return fmt.Errorf("bundle home %s: %w", userID, err)
		}
		out.Home = HomeResult{UserID: userID, Balance: acct.Balance, Open: acct.OpenBalance}

		q := &Quote{Symbol: symbol}
		if err := tx.Find(q); err != nil {
			return fmt.Errorf("bundle quote %s: %w", symbol, err)
		}
		out.Quote = QuoteResult{Symbol: symbol, Price: q.Price}

		out.Portfolio = PortfolioResult{UserID: userID}
		ents, err := tx.FindWhere(HoldingsByAccount(userID))
		if err != nil {
			return fmt.Errorf("bundle portfolio %s: %w", userID, err)
		}
		for _, e := range ents {
			h, ok := e.(*Holding)
			if !ok {
				return fmt.Errorf("bundle portfolio %s: unexpected entity %T", userID, e)
			}
			out.Portfolio.Holdings = append(out.Portfolio.Holdings, *h)
		}
		return nil
	})
	return out, err
}

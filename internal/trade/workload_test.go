package trade

import (
	"math"
	"testing"

	"edgeejb/internal/sqlstore"
)

func TestActionStringRoundTrip(t *testing.T) {
	for _, a := range Actions {
		got, err := ParseAction(a.String())
		if err != nil {
			t.Errorf("ParseAction(%q): %v", a.String(), err)
			continue
		}
		if got != a {
			t.Errorf("round trip %v -> %v", a, got)
		}
	}
	if _, err := ParseAction("bogus"); err == nil {
		t.Error("ParseAction accepted bogus action")
	}
}

func TestTable1Metadata(t *testing.T) {
	// Every action carries its Table 1 row.
	for _, a := range Actions {
		if a.Description() == "" {
			t.Errorf("%v missing description", a)
		}
		if a.CMPOperation() == "" {
			t.Errorf("%v missing CMP operation", a)
		}
		if a.DBActivity() == "" {
			t.Errorf("%v missing DB activity", a)
		}
	}
	// Spot-check against the paper's Table 1.
	if got := ActionBuy.DBActivity(); got != "Quote R; Account R,U; Holding C,R" {
		t.Errorf("buy DB activity = %q", got)
	}
	if got := ActionRegister.CMPOperation(); got != "Multi-Bean Create" {
		t.Errorf("register CMP = %q", got)
	}
}

func TestSessionShape(t *testing.T) {
	g := NewGenerator(GeneratorConfig{Seed: 1, Users: 10, Symbols: 10})
	for i := 0; i < 50; i++ {
		steps := g.Session()
		if len(steps) < 3 {
			t.Fatalf("session too short: %d steps", len(steps))
		}
		if steps[0].Action != ActionLogin {
			t.Fatalf("session does not start with login: %v", steps[0].Action)
		}
		if steps[len(steps)-1].Action != ActionLogout {
			t.Fatalf("session does not end with logout")
		}
		user := steps[0].UserID
		for _, s := range steps {
			if s.UserID != user {
				t.Fatalf("session switched users: %s vs %s", s.UserID, user)
			}
			if s.Action == ActionLogin && s.SessionID == "" {
				t.Fatal("login without session id")
			}
		}
	}
}

func TestSessionLengthMean(t *testing.T) {
	g := NewGenerator(GeneratorConfig{Seed: 7, Users: 10, Symbols: 10, ActionsPerSession: 11})
	const sessions = 2000
	total := 0
	for i := 0; i < sessions; i++ {
		total += len(g.Session())
	}
	mean := float64(total) / sessions
	// "a single session consists of about 11 individual trade actions".
	if math.Abs(mean-11) > 1.5 {
		t.Errorf("mean session length = %.2f, want about 11", mean)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1 := NewGenerator(GeneratorConfig{Seed: 42, Users: 10, Symbols: 10})
	g2 := NewGenerator(GeneratorConfig{Seed: 42, Users: 10, Symbols: 10})
	for i := 0; i < 20; i++ {
		s1, s2 := g1.Session(), g2.Session()
		if len(s1) != len(s2) {
			t.Fatalf("session %d lengths differ", i)
		}
		for j := range s1 {
			if s1[j] != s2[j] {
				t.Fatalf("session %d step %d differ: %+v vs %+v", i, j, s1[j], s2[j])
			}
		}
	}
}

func TestMixWeightsRespected(t *testing.T) {
	// An all-quotes mix must generate only quote actions mid-session.
	g := NewGenerator(GeneratorConfig{
		Seed: 3, Users: 5, Symbols: 5,
		Mix: Mix{Quote: 1},
	})
	for i := 0; i < 20; i++ {
		steps := g.Session()
		for _, s := range steps[1 : len(steps)-1] {
			if s.Action != ActionQuote {
				t.Fatalf("unexpected action %v under quote-only mix", s.Action)
			}
		}
	}
}

func TestRegisterStepsUseFreshUserIDs(t *testing.T) {
	g := NewGenerator(GeneratorConfig{
		Seed: 5, Users: 5, Symbols: 5,
		Mix: Mix{Register: 1},
	})
	seen := make(map[string]bool)
	for i := 0; i < 10; i++ {
		for _, s := range g.Session() {
			if s.Action != ActionRegister {
				continue
			}
			if s.NewUserID == "" {
				t.Fatal("register step without new user id")
			}
			if seen[s.NewUserID] {
				t.Fatalf("duplicate new user id %s", s.NewUserID)
			}
			seen[s.NewUserID] = true
		}
	}
	if len(seen) == 0 {
		t.Fatal("register-only mix generated no registers")
	}
}

func TestPopulateCounts(t *testing.T) {
	store := sqlstore.New()
	defer store.Close()
	Populate(store, PopulateConfig{Users: 7, Symbols: 13, HoldingsPerUser: 3})
	if got := store.RowCount(TableAccount); got != 7 {
		t.Errorf("accounts = %d, want 7", got)
	}
	if got := store.RowCount(TableProfile); got != 7 {
		t.Errorf("profiles = %d, want 7", got)
	}
	if got := store.RowCount(TableRegistry); got != 7 {
		t.Errorf("registries = %d, want 7", got)
	}
	if got := store.RowCount(TableQuote); got != 13 {
		t.Errorf("quotes = %d, want 13", got)
	}
	if got := store.RowCount(TableHolding); got != 21 {
		t.Errorf("holdings = %d, want 21", got)
	}
}

func TestPopulateDefaultsApplied(t *testing.T) {
	store := sqlstore.New()
	defer store.Close()
	Populate(store, PopulateConfig{})
	def := DefaultPopulate()
	if got := store.RowCount(TableAccount); got != def.Users {
		t.Errorf("default users = %d, want %d", got, def.Users)
	}
	if got := store.RowCount(TableQuote); got != def.Symbols {
		t.Errorf("default symbols = %d, want %d", got, def.Symbols)
	}
}

package trade

import (
	"fmt"
	"math/rand"
	"sync"
)

// Action enumerates the Trade actions of Table 1.
type Action int

// Trade actions.
const (
	ActionLogin Action = iota + 1
	ActionLogout
	ActionRegister
	ActionHome
	ActionAccount
	ActionAccountUpdate
	ActionPortfolio
	ActionQuote
	ActionBuy
	ActionSell
)

// Actions lists every action in Table 1 order.
var Actions = []Action{
	ActionLogin, ActionLogout, ActionRegister, ActionHome, ActionAccount,
	ActionAccountUpdate, ActionPortfolio, ActionQuote, ActionBuy, ActionSell,
}

// String returns the action name used in requests and reports.
func (a Action) String() string {
	switch a {
	case ActionLogin:
		return "login"
	case ActionLogout:
		return "logout"
	case ActionRegister:
		return "register"
	case ActionHome:
		return "home"
	case ActionAccount:
		return "account"
	case ActionAccountUpdate:
		return "accountUpdate"
	case ActionPortfolio:
		return "portfolio"
	case ActionQuote:
		return "quote"
	case ActionBuy:
		return "buy"
	case ActionSell:
		return "sell"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// ParseAction maps an action name back to its Action.
func ParseAction(s string) (Action, error) {
	for _, a := range Actions {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("trade: unknown action %q", s)
}

// Description returns Table 1's description of the action.
func (a Action) Description() string {
	switch a {
	case ActionLogin:
		return "User sign in, session creation"
	case ActionLogout:
		return "User sign-off, session destroy"
	case ActionRegister:
		return "Create a new user profile and account"
	case ActionHome:
		return "Personalized home page including current market conditions"
	case ActionAccount:
		return "Review current user profile information"
	case ActionAccountUpdate:
		return "\"Account\" followed by user profile update"
	case ActionPortfolio:
		return "View users current security holdings"
	case ActionQuote:
		return "View a current security quote"
	case ActionBuy:
		return "\"Quote\" followed by a security purchase"
	case ActionSell:
		return "\"Portfolio\" followed by the sell of a holding"
	default:
		return ""
	}
}

// CMPOperation returns Table 1's CMP bean operation for the action.
func (a Action) CMPOperation() string {
	switch a {
	case ActionLogin, ActionLogout:
		return "Update"
	case ActionRegister:
		return "Multi-Bean Create"
	case ActionHome, ActionAccount, ActionPortfolio, ActionQuote:
		return "Read"
	case ActionAccountUpdate:
		return "Read/Update"
	case ActionBuy, ActionSell:
		return "Multi-Bean Read/Update"
	default:
		return ""
	}
}

// DBActivity returns Table 1's database activity for the action
// (C/R/U/D per entity).
func (a Action) DBActivity() string {
	switch a {
	case ActionLogin:
		return "Registry R,U; Account R"
	case ActionLogout:
		return "Registry R,U"
	case ActionRegister:
		return "Account C; Profile C; Registry C"
	case ActionHome:
		return "Account R"
	case ActionAccount:
		return "Profile R"
	case ActionAccountUpdate:
		return "Profile R,U"
	case ActionPortfolio:
		return "Holding R"
	case ActionQuote:
		return "Quote R"
	case ActionBuy:
		return "Quote R; Account R,U; Holding C,R"
	case ActionSell:
		return "Quote R; Account R,U; Holding D,R"
	default:
		return ""
	}
}

// Step is one client interaction in a session.
type Step struct {
	Action   Action
	UserID   string
	Symbol   string
	Quantity float64
	// NewUserID is set for register steps.
	NewUserID string
	FullName  string
	Email     string
	Address   string
	SessionID string
}

// Mix is the relative weight of each mid-session action. Login and
// logout bracket every session and are not part of the mix.
type Mix struct {
	Home          int
	Account       int
	AccountUpdate int
	Portfolio     int
	Quote         int
	Buy           int
	Sell          int
	Register      int
}

// DefaultMix is a browse-heavy brokerage mix in the spirit of Trade2's
// runtime characteristics: quotes and page views dominate, with a
// meaningful stream of buys and sells.
func DefaultMix() Mix {
	return Mix{
		Home:          20,
		Account:       10,
		AccountUpdate: 4,
		Portfolio:     14,
		Quote:         26,
		Buy:           12,
		Sell:          10,
		Register:      4,
	}
}

func (m Mix) total() int {
	return m.Home + m.Account + m.AccountUpdate + m.Portfolio + m.Quote + m.Buy + m.Sell + m.Register
}

// Generator produces random sessions: a login, a geometric number of
// mid-session actions (mean ActionsPerSession-2), and a logout — "a
// single session consists of about 11 individual trade actions" (§4.2).
type Generator struct {
	// mu serializes session generation: the load generator calls Session
	// from many client goroutines against one shared Generator, and
	// *rand.Rand is not safe for concurrent use. (An unguarded rng
	// silently corrupts its state under races — torn session IDs and a
	// skewed action mix — rather than crashing.)
	mu    sync.Mutex
	rng   *rand.Rand
	mix   Mix
	users int
	syms  int
	// mean number of actions per session including login/logout.
	actionsPerSession int
	nextUser          int
	nextSession       int
}

// GeneratorConfig sizes the generator.
type GeneratorConfig struct {
	// Seed makes the workload reproducible.
	Seed int64
	// Users is the number of pre-registered users (see Populate).
	Users int
	// Symbols is the number of pre-seeded quote symbols.
	Symbols int
	// ActionsPerSession is the mean session length including login and
	// logout; the paper reports about 11. Defaults to 11.
	ActionsPerSession int
	// Mix overrides the mid-session action weights; zero value means
	// DefaultMix.
	Mix Mix
}

// NewGenerator builds a workload generator.
func NewGenerator(cfg GeneratorConfig) *Generator {
	if cfg.ActionsPerSession <= 2 {
		cfg.ActionsPerSession = 11
	}
	if cfg.Users < 1 {
		cfg.Users = 50
	}
	if cfg.Symbols < 1 {
		cfg.Symbols = 100
	}
	mix := cfg.Mix
	if mix.total() == 0 {
		mix = DefaultMix()
	}
	return &Generator{
		rng:               rand.New(rand.NewSource(cfg.Seed)),
		mix:               mix,
		users:             cfg.Users,
		syms:              cfg.Symbols,
		actionsPerSession: cfg.ActionsPerSession,
	}
}

// UserID returns the canonical ID of pre-registered user n.
func UserID(n int) string { return fmt.Sprintf("uid-%d", n) }

// SymbolID returns the canonical ID of pre-seeded symbol n.
func SymbolID(n int) string { return fmt.Sprintf("s-%d", n) }

// Session generates the steps of one client session. It is safe for
// concurrent use.
func (g *Generator) Session() []Step {
	g.mu.Lock()
	defer g.mu.Unlock()
	user := UserID(g.rng.Intn(g.users))
	g.nextSession++
	sessionID := fmt.Sprintf("sess-%d", g.nextSession)

	// Geometric-ish session length with the configured mean, at least
	// one mid-session action.
	mean := g.actionsPerSession - 2
	n := 1
	for n < mean*4 && g.rng.Float64() > 1.0/float64(mean) {
		n++
	}

	steps := make([]Step, 0, n+2)
	steps = append(steps, Step{Action: ActionLogin, UserID: user, SessionID: sessionID})
	for i := 0; i < n; i++ {
		steps = append(steps, g.step(user))
	}
	steps = append(steps, Step{Action: ActionLogout, UserID: user})
	return steps
}

func (g *Generator) step(user string) Step {
	pick := g.rng.Intn(g.mix.total())
	symbol := SymbolID(g.rng.Intn(g.syms))
	switch {
	case pick < g.mix.Home:
		return Step{Action: ActionHome, UserID: user}
	case pick < g.mix.Home+g.mix.Account:
		return Step{Action: ActionAccount, UserID: user}
	case pick < g.mix.Home+g.mix.Account+g.mix.AccountUpdate:
		return Step{
			Action:  ActionAccountUpdate,
			UserID:  user,
			Address: fmt.Sprintf("%d Main St", g.rng.Intn(10000)),
			Email:   user + "@example.test",
		}
	case pick < g.mix.Home+g.mix.Account+g.mix.AccountUpdate+g.mix.Portfolio:
		return Step{Action: ActionPortfolio, UserID: user}
	case pick < g.mix.Home+g.mix.Account+g.mix.AccountUpdate+g.mix.Portfolio+g.mix.Quote:
		return Step{Action: ActionQuote, UserID: user, Symbol: symbol}
	case pick < g.mix.Home+g.mix.Account+g.mix.AccountUpdate+g.mix.Portfolio+g.mix.Quote+g.mix.Buy:
		return Step{
			Action:   ActionBuy,
			UserID:   user,
			Symbol:   symbol,
			Quantity: float64(1 + g.rng.Intn(10)),
		}
	case pick < g.mix.Home+g.mix.Account+g.mix.AccountUpdate+g.mix.Portfolio+g.mix.Quote+g.mix.Buy+g.mix.Sell:
		return Step{Action: ActionSell, UserID: user}
	default:
		g.nextUser++
		newUser := fmt.Sprintf("new-%d", g.nextUser)
		return Step{
			Action:    ActionRegister,
			UserID:    user,
			NewUserID: newUser,
			FullName:  "New User " + newUser,
			Email:     newUser + "@example.test",
		}
	}
}

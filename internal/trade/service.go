package trade

import (
	"context"
	"fmt"
	"sync/atomic"

	"edgeejb/internal/component"
)

// Service is the Trade session bean: one method per trade action, each
// running as a single container transaction, matching Table 1's
// per-action CMP operations and database activity. The service is
// algorithm-agnostic: the container's resource manager decides whether
// access is JDBC, vanilla EJB or cached EJB.
type Service struct {
	container *component.Container
	attempts  int
	seq       atomic.Uint64
	clock     func() string
}

// NewService builds the session-bean layer over a container. Optimistic
// conflicts are retried up to three times per action (the standard
// client loop for detection-based concurrency control).
func NewService(c *component.Container) *Service {
	return &Service{
		container: c,
		attempts:  3,
		clock:     func() string { return "2004-11-15T10:00:00Z" },
	}
}

// SetClock overrides the timestamp source (tests use deterministic
// clocks; the default is a fixed instant so runs are reproducible).
func (s *Service) SetClock(clock func() string) { s.clock = clock }

// Container exposes the underlying container (examples use it).
func (s *Service) Container() *component.Container { return s.container }

// LoginResult is what the login page renders.
type LoginResult struct {
	UserID     string
	SessionID  string
	LoginCount int64
	Balance    float64
}

// Login signs the user in: Registry R,U + Account R (Table 1).
func (s *Service) Login(ctx context.Context, userID, sessionID string) (LoginResult, error) {
	var out LoginResult
	err := s.container.ExecuteRetry(ctx, s.attempts, func(tx *component.Tx) error {
		reg := &Registry{UserID: userID}
		if err := tx.Find(reg); err != nil {
			return fmt.Errorf("login %s: %w", userID, err)
		}
		reg.SessionID = sessionID
		reg.Active = true
		reg.Visits++
		if err := tx.Update(reg); err != nil {
			return err
		}
		acct := &Account{UserID: userID}
		if err := tx.Find(acct); err != nil {
			return fmt.Errorf("login %s: %w", userID, err)
		}
		out = LoginResult{
			UserID:     userID,
			SessionID:  sessionID,
			LoginCount: acct.LoginCount,
			Balance:    acct.Balance,
		}
		return nil
	})
	return out, err
}

// Logout signs the user off: Registry R,U (Table 1).
func (s *Service) Logout(ctx context.Context, userID string) error {
	return s.container.ExecuteRetry(ctx, s.attempts, func(tx *component.Tx) error {
		reg := &Registry{UserID: userID}
		if err := tx.Find(reg); err != nil {
			return fmt.Errorf("logout %s: %w", userID, err)
		}
		reg.Active = false
		reg.SessionID = ""
		return tx.Update(reg)
	})
}

// Register creates a new user: Account C, Profile C, Registry C
// (Table 1's multi-bean create).
func (s *Service) Register(ctx context.Context, userID, fullName, email string, openBalance float64) error {
	return s.container.ExecuteRetry(ctx, s.attempts, func(tx *component.Tx) error {
		if err := tx.Create(&Account{
			UserID:      userID,
			Balance:     openBalance,
			OpenBalance: openBalance,
		}); err != nil {
			return fmt.Errorf("register %s: %w", userID, err)
		}
		if err := tx.Create(&Profile{
			UserID:   userID,
			FullName: fullName,
			Email:    email,
			Password: "pw-" + userID,
		}); err != nil {
			return err
		}
		return tx.Create(&Registry{UserID: userID, Created: s.clock()})
	})
}

// HomeResult is what the personalized home page renders.
type HomeResult struct {
	UserID  string
	Balance float64
	Open    float64
}

// Home renders the personalized home page: Account R (Table 1).
func (s *Service) Home(ctx context.Context, userID string) (HomeResult, error) {
	var out HomeResult
	err := s.container.ExecuteRetry(ctx, s.attempts, func(tx *component.Tx) error {
		acct := &Account{UserID: userID}
		if err := tx.Find(acct); err != nil {
			return fmt.Errorf("home %s: %w", userID, err)
		}
		out = HomeResult{UserID: userID, Balance: acct.Balance, Open: acct.OpenBalance}
		return nil
	})
	return out, err
}

// AccountResult is what the account page renders.
type AccountResult struct {
	UserID   string
	FullName string
	Address  string
	Email    string
}

// Account reviews the user profile: Profile R (Table 1).
func (s *Service) Account(ctx context.Context, userID string) (AccountResult, error) {
	var out AccountResult
	err := s.container.ExecuteRetry(ctx, s.attempts, func(tx *component.Tx) error {
		p := &Profile{UserID: userID}
		if err := tx.Find(p); err != nil {
			return fmt.Errorf("account %s: %w", userID, err)
		}
		out = AccountResult{UserID: userID, FullName: p.FullName, Address: p.Address, Email: p.Email}
		return nil
	})
	return out, err
}

// AccountUpdate edits the profile: Profile R,U (Table 1).
func (s *Service) AccountUpdate(ctx context.Context, userID, newAddress, newEmail string) error {
	return s.container.ExecuteRetry(ctx, s.attempts, func(tx *component.Tx) error {
		p := &Profile{UserID: userID}
		if err := tx.Find(p); err != nil {
			return fmt.Errorf("account update %s: %w", userID, err)
		}
		p.Address = newAddress
		p.Email = newEmail
		return tx.Update(p)
	})
}

// PortfolioResult is what the portfolio page renders.
type PortfolioResult struct {
	UserID   string
	Holdings []Holding
}

// Portfolio lists the user's holdings: Holding R via the custom finder
// (Table 1).
func (s *Service) Portfolio(ctx context.Context, userID string) (PortfolioResult, error) {
	var out PortfolioResult
	err := s.container.ExecuteRetry(ctx, s.attempts, func(tx *component.Tx) error {
		out = PortfolioResult{UserID: userID}
		ents, err := tx.FindWhere(HoldingsByAccount(userID))
		if err != nil {
			return fmt.Errorf("portfolio %s: %w", userID, err)
		}
		out.Holdings = out.Holdings[:0]
		for _, e := range ents {
			h, ok := e.(*Holding)
			if !ok {
				return fmt.Errorf("portfolio %s: unexpected entity %T", userID, e)
			}
			out.Holdings = append(out.Holdings, *h)
		}
		return nil
	})
	return out, err
}

// QuoteResult is what the quote page renders.
type QuoteResult struct {
	Symbol string
	Price  float64
}

// GetQuote views one security quote: Quote R (Table 1).
func (s *Service) GetQuote(ctx context.Context, symbol string) (QuoteResult, error) {
	var out QuoteResult
	err := s.container.ExecuteRetry(ctx, s.attempts, func(tx *component.Tx) error {
		q := &Quote{Symbol: symbol}
		if err := tx.Find(q); err != nil {
			return fmt.Errorf("quote %s: %w", symbol, err)
		}
		out = QuoteResult{Symbol: symbol, Price: q.Price}
		return nil
	})
	return out, err
}

// BuyResult is what the buy confirmation renders.
type BuyResult struct {
	HoldingID string
	Symbol    string
	Quantity  float64
	Price     float64
	Total     float64
	Balance   float64
}

// Buy is "Quote followed by a security purchase": Quote R, Account R,U,
// Holding C,R (Table 1's multi-bean read/update).
func (s *Service) Buy(ctx context.Context, userID, symbol string, quantity float64) (BuyResult, error) {
	var out BuyResult
	holdingID := fmt.Sprintf("h-%s-%d", userID, s.seq.Add(1))
	err := s.container.ExecuteRetry(ctx, s.attempts, func(tx *component.Tx) error {
		q := &Quote{Symbol: symbol}
		if err := tx.Find(q); err != nil {
			return fmt.Errorf("buy %s: %w", symbol, err)
		}
		total := q.Price * quantity
		acct := &Account{UserID: userID}
		if err := tx.Find(acct); err != nil {
			return fmt.Errorf("buy %s: %w", userID, err)
		}
		if acct.Balance < total {
			return fmt.Errorf("buy %s: insufficient funds (%.2f < %.2f)", userID, acct.Balance, total)
		}
		acct.Balance -= total
		if err := tx.Update(acct); err != nil {
			return err
		}
		h := &Holding{
			HoldingID:     holdingID,
			AccountID:     userID,
			Symbol:        symbol,
			Quantity:      quantity,
			PurchasePrice: q.Price,
			PurchaseDate:  s.clock(),
		}
		if err := tx.Create(h); err != nil {
			return err
		}
		// Holding "C, R": the confirmation page reads the new holding
		// back through the home.
		confirm := &Holding{HoldingID: holdingID}
		if err := tx.Find(confirm); err != nil {
			return fmt.Errorf("buy confirm %s: %w", holdingID, err)
		}
		out = BuyResult{
			HoldingID: confirm.HoldingID,
			Symbol:    symbol,
			Quantity:  quantity,
			Price:     q.Price,
			Total:     total,
			Balance:   acct.Balance,
		}
		return nil
	})
	return out, err
}

// SellResult is what the sell confirmation renders.
type SellResult struct {
	HoldingID string
	Symbol    string
	Quantity  float64
	Price     float64
	Proceeds  float64
	Balance   float64
	// Sold is false when the portfolio was empty and there was nothing
	// to sell; the action still ran its finder transaction.
	Sold bool
}

// Sell is "Portfolio followed by the sell of a holding": the custom
// finder (Holding R), then Quote R, Account R,U, Holding D (Table 1).
// It sells the first holding in the portfolio.
func (s *Service) Sell(ctx context.Context, userID string) (SellResult, error) {
	var out SellResult
	err := s.container.ExecuteRetry(ctx, s.attempts, func(tx *component.Tx) error {
		out = SellResult{}
		ents, err := tx.FindWhere(HoldingsByAccount(userID))
		if err != nil {
			return fmt.Errorf("sell %s: %w", userID, err)
		}
		if len(ents) == 0 {
			return nil // nothing to sell; commit the (read-only) finder
		}
		h, ok := ents[0].(*Holding)
		if !ok {
			return fmt.Errorf("sell %s: unexpected entity %T", userID, ents[0])
		}
		q := &Quote{Symbol: h.Symbol}
		if err := tx.Find(q); err != nil {
			return fmt.Errorf("sell %s: %w", h.Symbol, err)
		}
		proceeds := q.Price * h.Quantity
		acct := &Account{UserID: userID}
		if err := tx.Find(acct); err != nil {
			return fmt.Errorf("sell %s: %w", userID, err)
		}
		acct.Balance += proceeds
		if err := tx.Update(acct); err != nil {
			return err
		}
		if err := tx.Remove(h); err != nil {
			return err
		}
		out = SellResult{
			HoldingID: h.HoldingID,
			Symbol:    h.Symbol,
			Quantity:  h.Quantity,
			Price:     q.Price,
			Proceeds:  proceeds,
			Balance:   acct.Balance,
			Sold:      true,
		}
		return nil
	})
	return out, err
}

package trade

import (
	"strings"

	"edgeejb/internal/memento"
)

// ShardPlacement co-locates each user's working set on one shard: the
// account, profile and registry rows share the placement "user/<id>",
// and a holding is placed by the account that owns it (parsed from the
// holding ID, which both Populate and Buy mint as "h-<user>-<suffix>").
// Quotes are market-wide, not per-user, so they spread by symbol.
//
// With this placement the default Trade2 mix keeps almost every commit
// set on a single shard: login/logout, register, account update and
// sell-without-foreign-quote touch only the user's rows. The genuinely
// cross-shard cases are buys and sells whose quote read lands on
// another shard — a read-proof-only second participant — which is what
// the router's 2PC fraction measures.
func ShardPlacement(k memento.Key) string {
	switch k.Table {
	case TableAccount, TableProfile, TableRegistry:
		return "user/" + k.ID
	case TableHolding:
		if owner, ok := holdingOwner(k.ID); ok {
			return "user/" + owner
		}
		return k.Table + "/" + k.ID
	default:
		return k.Table + "/" + k.ID
	}
}

// holdingOwner extracts the owning account from a holding ID of the
// form "h-<user>-<suffix>". The user ID may itself contain dashes
// ("uid-3"), so the suffix is the final dash-separated segment.
func holdingOwner(id string) (string, bool) {
	rest, ok := strings.CutPrefix(id, "h-")
	if !ok {
		return "", false
	}
	i := strings.LastIndexByte(rest, '-')
	if i <= 0 {
		return "", false
	}
	return rest[:i], true
}

// QueryShardPlacement is the finder-affinity hook for the shard
// router: a holdings-by-account finder (an equality on accountID) is
// pinned to the owning user's placement, so the portfolio and sell
// paths probe one shard instead of scattering to all of them.
func QueryShardPlacement(q memento.Query) (string, bool) {
	if q.Table != TableHolding {
		return "", false
	}
	for _, p := range q.Where {
		if p.Field == "accountID" && p.Op == memento.OpEq && p.Value.Kind == memento.KindString {
			return "user/" + p.Value.Str, true
		}
	}
	return "", false
}

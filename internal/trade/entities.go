package trade

import (
	"fmt"

	"edgeejb/internal/component"
	"edgeejb/internal/memento"
)

// Table names for the five entity-bean types.
const (
	TableAccount  = "account"
	TableProfile  = "profile"
	TableHolding  = "holding"
	TableQuote    = "quote"
	TableRegistry = "registry"
)

// Account is the brokerage account entity (cash balance, login
// bookkeeping).
type Account struct {
	UserID      string
	Balance     float64
	OpenBalance float64
	LoginCount  int64
	LastLogin   string
}

var _ component.Entity = (*Account)(nil)

// PrimaryKey implements component.Entity.
func (a *Account) PrimaryKey() memento.Key {
	return memento.Key{Table: TableAccount, ID: a.UserID}
}

// ToMemento implements component.Entity.
func (a *Account) ToMemento() memento.Memento {
	return memento.Memento{
		Key: a.PrimaryKey(),
		Fields: memento.Fields{
			"balance":     memento.Float(a.Balance),
			"openBalance": memento.Float(a.OpenBalance),
			"loginCount":  memento.Int(a.LoginCount),
			"lastLogin":   memento.String(a.LastLogin),
		},
	}
}

// LoadMemento implements component.Entity.
func (a *Account) LoadMemento(m memento.Memento) error {
	if m.Key.Table != TableAccount {
		return fmt.Errorf("trade: memento %s is not an account", m.Key)
	}
	a.UserID = m.Key.ID
	a.Balance = m.Fields["balance"].F
	a.OpenBalance = m.Fields["openBalance"].F
	a.LoginCount = m.Fields["loginCount"].Int
	a.LastLogin = m.Fields["lastLogin"].Str
	return nil
}

// Profile is the user-profile entity.
type Profile struct {
	UserID     string
	FullName   string
	Address    string
	Email      string
	CreditCard string
	Password   string
}

var _ component.Entity = (*Profile)(nil)

// PrimaryKey implements component.Entity.
func (p *Profile) PrimaryKey() memento.Key {
	return memento.Key{Table: TableProfile, ID: p.UserID}
}

// ToMemento implements component.Entity.
func (p *Profile) ToMemento() memento.Memento {
	return memento.Memento{
		Key: p.PrimaryKey(),
		Fields: memento.Fields{
			"fullName":   memento.String(p.FullName),
			"address":    memento.String(p.Address),
			"email":      memento.String(p.Email),
			"creditCard": memento.String(p.CreditCard),
			"password":   memento.String(p.Password),
		},
	}
}

// LoadMemento implements component.Entity.
func (p *Profile) LoadMemento(m memento.Memento) error {
	if m.Key.Table != TableProfile {
		return fmt.Errorf("trade: memento %s is not a profile", m.Key)
	}
	p.UserID = m.Key.ID
	p.FullName = m.Fields["fullName"].Str
	p.Address = m.Fields["address"].Str
	p.Email = m.Fields["email"].Str
	p.CreditCard = m.Fields["creditCard"].Str
	p.Password = m.Fields["password"].Str
	return nil
}

// Quote is the security-quote entity.
type Quote struct {
	Symbol  string
	Company string
	Price   float64
	Open    float64
	Low     float64
	High    float64
	Volume  float64
}

var _ component.Entity = (*Quote)(nil)

// PrimaryKey implements component.Entity.
func (q *Quote) PrimaryKey() memento.Key {
	return memento.Key{Table: TableQuote, ID: q.Symbol}
}

// ToMemento implements component.Entity.
func (q *Quote) ToMemento() memento.Memento {
	return memento.Memento{
		Key: q.PrimaryKey(),
		Fields: memento.Fields{
			"company": memento.String(q.Company),
			"price":   memento.Float(q.Price),
			"open":    memento.Float(q.Open),
			"low":     memento.Float(q.Low),
			"high":    memento.Float(q.High),
			"volume":  memento.Float(q.Volume),
		},
	}
}

// LoadMemento implements component.Entity.
func (q *Quote) LoadMemento(m memento.Memento) error {
	if m.Key.Table != TableQuote {
		return fmt.Errorf("trade: memento %s is not a quote", m.Key)
	}
	q.Symbol = m.Key.ID
	q.Company = m.Fields["company"].Str
	q.Price = m.Fields["price"].F
	q.Open = m.Fields["open"].F
	q.Low = m.Fields["low"].F
	q.High = m.Fields["high"].F
	q.Volume = m.Fields["volume"].F
	return nil
}

// Holding is one position in a user's portfolio.
type Holding struct {
	HoldingID     string
	AccountID     string
	Symbol        string
	Quantity      float64
	PurchasePrice float64
	PurchaseDate  string
}

var _ component.Entity = (*Holding)(nil)

// PrimaryKey implements component.Entity.
func (h *Holding) PrimaryKey() memento.Key {
	return memento.Key{Table: TableHolding, ID: h.HoldingID}
}

// ToMemento implements component.Entity.
func (h *Holding) ToMemento() memento.Memento {
	return memento.Memento{
		Key: h.PrimaryKey(),
		Fields: memento.Fields{
			"accountID":     memento.String(h.AccountID),
			"symbol":        memento.String(h.Symbol),
			"quantity":      memento.Float(h.Quantity),
			"purchasePrice": memento.Float(h.PurchasePrice),
			"purchaseDate":  memento.String(h.PurchaseDate),
		},
	}
}

// LoadMemento implements component.Entity.
func (h *Holding) LoadMemento(m memento.Memento) error {
	if m.Key.Table != TableHolding {
		return fmt.Errorf("trade: memento %s is not a holding", m.Key)
	}
	h.HoldingID = m.Key.ID
	h.AccountID = m.Fields["accountID"].Str
	h.Symbol = m.Fields["symbol"].Str
	h.Quantity = m.Fields["quantity"].F
	h.PurchasePrice = m.Fields["purchasePrice"].F
	h.PurchaseDate = m.Fields["purchaseDate"].Str
	return nil
}

// Registry is the HTTP-session registry entity: Trade2 keeps session
// state (login/logout bookkeeping) in a registry bean.
type Registry struct {
	UserID    string
	SessionID string
	Active    bool
	Created   string
	Visits    int64
}

var _ component.Entity = (*Registry)(nil)

// PrimaryKey implements component.Entity.
func (r *Registry) PrimaryKey() memento.Key {
	return memento.Key{Table: TableRegistry, ID: r.UserID}
}

// ToMemento implements component.Entity.
func (r *Registry) ToMemento() memento.Memento {
	return memento.Memento{
		Key: r.PrimaryKey(),
		Fields: memento.Fields{
			"sessionID": memento.String(r.SessionID),
			"active":    memento.Bool(r.Active),
			"created":   memento.String(r.Created),
			"visits":    memento.Int(r.Visits),
		},
	}
}

// LoadMemento implements component.Entity.
func (r *Registry) LoadMemento(m memento.Memento) error {
	if m.Key.Table != TableRegistry {
		return fmt.Errorf("trade: memento %s is not a registry entry", m.Key)
	}
	r.UserID = m.Key.ID
	r.SessionID = m.Fields["sessionID"].Str
	r.Active = m.Fields["active"].Bool
	r.Created = m.Fields["created"].Str
	r.Visits = m.Fields["visits"].Int
	return nil
}

// NewEntityRegistry returns the component registry describing all five
// Trade entity types.
func NewEntityRegistry() (*component.Registry, error) {
	return component.NewRegistry(
		component.Descriptor{Table: TableAccount, New: func() component.Entity { return &Account{} }},
		component.Descriptor{Table: TableProfile, New: func() component.Entity { return &Profile{} }},
		component.Descriptor{Table: TableHolding, New: func() component.Entity { return &Holding{} }},
		component.Descriptor{Table: TableQuote, New: func() component.Entity { return &Quote{} }},
		component.Descriptor{Table: TableRegistry, New: func() component.Entity { return &Registry{} }},
	)
}

// HoldingsByAccount is the custom finder used by Portfolio and Sell.
func HoldingsByAccount(accountID string) memento.Query {
	return memento.Query{
		Table: TableHolding,
		Where: []memento.Predicate{memento.Where("accountID", memento.String(accountID))},
	}
}

package trade

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"edgeejb/internal/component"
	"edgeejb/internal/memento"
)

// TestEntityMementoRoundTrip: every entity type must survive
// ToMemento -> LoadMemento unchanged (property-based).
func TestEntityMementoRoundTrip(t *testing.T) {
	tests := []struct {
		name  string
		make  func(rng *rand.Rand) component.Entity
		blank func() component.Entity
	}{
		{
			name: "account",
			make: func(rng *rand.Rand) component.Entity {
				return &Account{
					UserID:      UserID(rng.Intn(100)),
					Balance:     rng.Float64() * 1000,
					OpenBalance: rng.Float64() * 1000,
					LoginCount:  rng.Int63n(50),
					LastLogin:   "2004-11-15T10:00:00Z",
				}
			},
			blank: func() component.Entity { return &Account{} },
		},
		{
			name: "profile",
			make: func(rng *rand.Rand) component.Entity {
				return &Profile{
					UserID:     UserID(rng.Intn(100)),
					FullName:   "Full Name",
					Address:    "1 Main St",
					Email:      "x@example.test",
					CreditCard: "4111",
					Password:   "pw",
				}
			},
			blank: func() component.Entity { return &Profile{} },
		},
		{
			name: "quote",
			make: func(rng *rand.Rand) component.Entity {
				return &Quote{
					Symbol:  SymbolID(rng.Intn(100)),
					Company: "ACME",
					Price:   rng.Float64() * 200,
					Open:    rng.Float64() * 200,
					Low:     rng.Float64() * 200,
					High:    rng.Float64() * 200,
					Volume:  float64(rng.Intn(1000)),
				}
			},
			blank: func() component.Entity { return &Quote{} },
		},
		{
			name: "holding",
			make: func(rng *rand.Rand) component.Entity {
				return &Holding{
					HoldingID:     "h-1",
					AccountID:     UserID(rng.Intn(100)),
					Symbol:        SymbolID(rng.Intn(100)),
					Quantity:      float64(rng.Intn(50)),
					PurchasePrice: rng.Float64() * 200,
					PurchaseDate:  "2004-11-01",
				}
			},
			blank: func() component.Entity { return &Holding{} },
		},
		{
			name: "registry",
			make: func(rng *rand.Rand) component.Entity {
				return &Registry{
					UserID:    UserID(rng.Intn(100)),
					SessionID: "sess-1",
					Active:    rng.Intn(2) == 0,
					Created:   "2004-11-01",
					Visits:    rng.Int63n(100),
				}
			},
			blank: func() component.Entity { return &Registry{} },
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				orig := tt.make(rng)
				m := orig.ToMemento()
				restored := tt.blank()
				if err := restored.LoadMemento(m); err != nil {
					return false
				}
				return reflect.DeepEqual(orig, restored)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestLoadMementoRejectsWrongTable(t *testing.T) {
	wrong := memento.Memento{Key: memento.Key{Table: "quote", ID: "x"}}
	entities := []component.Entity{&Account{}, &Profile{}, &Holding{}, &Registry{}}
	for _, e := range entities {
		if err := e.LoadMemento(wrong); err == nil {
			t.Errorf("%T accepted a quote memento", e)
		}
	}
	if err := (&Quote{}).LoadMemento(memento.Memento{Key: memento.Key{Table: "account", ID: "x"}}); err == nil {
		t.Error("Quote accepted an account memento")
	}
}

func TestNewEntityRegistryCoversAllTables(t *testing.T) {
	r, err := NewEntityRegistry()
	if err != nil {
		t.Fatal(err)
	}
	for _, table := range []string{TableAccount, TableProfile, TableHolding, TableQuote, TableRegistry} {
		d, err := r.Lookup(table)
		if err != nil {
			t.Errorf("missing descriptor for %s", table)
			continue
		}
		e := d.New()
		if e.PrimaryKey().Table != table {
			t.Errorf("descriptor for %s constructs %s entities", table, e.PrimaryKey().Table)
		}
	}
}

func TestHoldingsByAccountFinder(t *testing.T) {
	q := HoldingsByAccount("uid-3")
	h := &Holding{HoldingID: "h-1", AccountID: "uid-3"}
	if !q.Matches(h.ToMemento()) {
		t.Error("finder missed a matching holding")
	}
	other := &Holding{HoldingID: "h-2", AccountID: "uid-4"}
	if q.Matches(other.ToMemento()) {
		t.Error("finder matched a different account's holding")
	}
}

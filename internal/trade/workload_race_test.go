package trade

import (
	"fmt"
	"sync"
	"testing"
)

// TestChaosConcurrentSessionGeneration drives one shared Generator from
// many goroutines, the way the load generator does. Pre-fix the shared
// *rand.Rand and session counters were unguarded: the race detector
// flagged it and concurrent sessions could draw duplicate session IDs.
func TestChaosConcurrentSessionGeneration(t *testing.T) {
	const (
		workers  = 8
		sessions = 200
	)
	g := NewGenerator(GeneratorConfig{Seed: 42, Users: 50, Symbols: 100})

	var mu sync.Mutex
	seen := make(map[string]int, workers*sessions)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < sessions; i++ {
				steps := g.Session()
				if len(steps) < 3 {
					t.Errorf("session too short: %d steps", len(steps))
					return
				}
				login := steps[0]
				if login.Action != ActionLogin || login.SessionID == "" {
					t.Errorf("malformed login step: %+v", login)
					return
				}
				mu.Lock()
				seen[login.SessionID]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if len(seen) != workers*sessions {
		t.Fatalf("got %d distinct session IDs, want %d", len(seen), workers*sessions)
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("session ID %s issued %d times", id, n)
		}
	}
	// The counter must have advanced exactly once per session.
	last := fmt.Sprintf("sess-%d", workers*sessions)
	if seen[last] != 1 {
		t.Fatalf("session counter skipped: %s never issued", last)
	}
}

package trade

import (
	"context"
	"fmt"

	"edgeejb/internal/component"
	"edgeejb/internal/memento"
)

// MarketSummaryResult is the market-overview block Trade renders on its
// home page ("personalized home page including current market
// conditions").
type MarketSummaryResult struct {
	// Top holds the most expensive securities, descending by price.
	Top []Quote
	// Volume is the total traded volume across the summary.
	Volume float64
}

// TopQuotes is the ordered custom finder behind the market summary: the
// n highest-priced securities.
func TopQuotes(n int) memento.Query {
	return memento.Query{
		Table:   TableQuote,
		OrderBy: "price",
		Desc:    true,
		Limit:   n,
	}
}

// MarketSummary returns the top-n securities by price. It is a separate
// action rather than part of Home so the Table 1 per-action database
// activity stays exactly as the paper specifies; the workload generator
// does not include it in the default mix for the same reason.
func (s *Service) MarketSummary(ctx context.Context, n int) (MarketSummaryResult, error) {
	if n < 1 {
		n = 5
	}
	var out MarketSummaryResult
	err := s.container.ExecuteRetry(ctx, s.attempts, func(tx *component.Tx) error {
		out = MarketSummaryResult{}
		ents, err := tx.FindWhere(TopQuotes(n))
		if err != nil {
			return fmt.Errorf("market summary: %w", err)
		}
		for _, e := range ents {
			q, ok := e.(*Quote)
			if !ok {
				return fmt.Errorf("market summary: unexpected entity %T", e)
			}
			out.Top = append(out.Top, *q)
			out.Volume += q.Volume
		}
		return nil
	})
	return out, err
}

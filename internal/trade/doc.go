// Package trade reimplements the Trade2 benchmark application the paper
// evaluates (§4.2): "an online brokerage firm providing web-based
// services such as login, buy, sell, get quote and more". The entity
// beans, the per-action CMP operations and the per-action database
// activity follow Table 1 of the paper exactly; the session logic
// drives one transaction per trade action, and the workload generator
// produces random sessions of about 11 actions bracketed by login and
// logout.
package trade

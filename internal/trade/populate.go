package trade

import (
	"fmt"
	"math/rand"

	"edgeejb/internal/memento"
	"edgeejb/internal/sqlstore"
)

// PopulateConfig sizes the initial Trade database.
type PopulateConfig struct {
	// Seed makes the population reproducible.
	Seed int64
	// Users is the number of registered users; each gets an account, a
	// profile and a registry entry.
	Users int
	// Symbols is the number of quoted securities.
	Symbols int
	// HoldingsPerUser is the initial number of positions per user.
	HoldingsPerUser int
	// OpenBalance is each account's starting cash balance.
	OpenBalance float64
}

// DefaultPopulate returns a small but realistic database: enough users
// and symbols that the cache working set is non-trivial, enough holdings
// that portfolio finders return several rows.
func DefaultPopulate() PopulateConfig {
	return PopulateConfig{
		Users:           50,
		Symbols:         100,
		HoldingsPerUser: 4,
		OpenBalance:     1_000_000,
	}
}

// Populate seeds a store with the initial Trade database.
func Populate(store *sqlstore.Store, cfg PopulateConfig) {
	// The portfolio finder probes holdings by account; index that field
	// the way the Trade schema indexes its HOLDING.ACCOUNT_ACCOUNTID
	// column. Errors are impossible here (fresh store, valid names).
	_ = store.CreateIndex(TableHolding, "accountID")
	store.Seed(PopulationRows(cfg)...)
}

// PopulationRows builds the initial Trade database rows without
// installing them, so a sharded deployment can seed each shard's store
// with exactly the rows it owns (filter by the ring) while every shard
// derives the identical population from the same config and seed.
func PopulationRows(cfg PopulateConfig) []memento.Memento {
	if cfg.Users < 1 {
		cfg.Users = DefaultPopulate().Users
	}
	if cfg.Symbols < 1 {
		cfg.Symbols = DefaultPopulate().Symbols
	}
	if cfg.OpenBalance <= 0 {
		cfg.OpenBalance = DefaultPopulate().OpenBalance
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	mems := make([]memento.Memento, 0, cfg.Symbols+cfg.Users*(3+cfg.HoldingsPerUser))
	for i := 0; i < cfg.Symbols; i++ {
		price := 10 + rng.Float64()*190
		q := &Quote{
			Symbol:  SymbolID(i),
			Company: fmt.Sprintf("Company %d Inc.", i),
			Price:   price,
			Open:    price,
			Low:     price * 0.95,
			High:    price * 1.05,
			Volume:  float64(rng.Intn(1_000_000)),
		}
		mems = append(mems, q.ToMemento())
	}
	for u := 0; u < cfg.Users; u++ {
		user := UserID(u)
		acct := &Account{
			UserID:      user,
			Balance:     cfg.OpenBalance,
			OpenBalance: cfg.OpenBalance,
		}
		prof := &Profile{
			UserID:   user,
			FullName: fmt.Sprintf("Trade User %d", u),
			Address:  fmt.Sprintf("%d Wall St", u),
			Email:    user + "@example.test",
			Password: "pw-" + user,
		}
		reg := &Registry{UserID: user, Created: "2004-11-01T00:00:00Z"}
		mems = append(mems, acct.ToMemento(), prof.ToMemento(), reg.ToMemento())
		for h := 0; h < cfg.HoldingsPerUser; h++ {
			sym := SymbolID(rng.Intn(cfg.Symbols))
			hold := &Holding{
				HoldingID:     fmt.Sprintf("h-%s-seed%d", user, h),
				AccountID:     user,
				Symbol:        sym,
				Quantity:      float64(1 + rng.Intn(20)),
				PurchasePrice: 10 + rng.Float64()*190,
				PurchaseDate:  "2004-11-01T00:00:00Z",
			}
			mems = append(mems, hold.ToMemento())
		}
	}
	return mems
}

package latency

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// startEcho runs a TCP echo server and returns its address.
func startEcho(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				_, _ = io.Copy(c, c)
			}()
		}
	}()
	return ln.Addr().String()
}

func startFaultProxy(t *testing.T, target string, plan *FaultPlan) *Proxy {
	t.Helper()
	p := NewProxy(target, 0)
	if err := p.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	p.SetFaults(plan)
	return p
}

// echoOnce writes payload through the proxy and reads it back.
func echoOnce(conn net.Conn, payload []byte) error {
	if _, err := conn.Write(payload); err != nil {
		return err
	}
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(conn, got); err != nil {
		return err
	}
	if !bytes.Equal(got, payload) {
		return io.ErrUnexpectedEOF
	}
	return nil
}

// TestFaultConnReset: a doomed connection must fail with a transport
// error once its byte budget runs out, and the proxy must account the
// reset.
func TestFaultConnReset(t *testing.T) {
	p := startFaultProxy(t, startEcho(t), &FaultPlan{
		Seed:          1,
		ResetRate:     1.0,
		ResetAfterMax: 256,
	})
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	payload := bytes.Repeat([]byte("x"), 128)
	var echoErr error
	for i := 0; i < 64; i++ {
		if echoErr = echoOnce(conn, payload); echoErr != nil {
			break
		}
	}
	if echoErr == nil {
		t.Fatal("doomed connection survived 8KB of echo traffic")
	}
	if st := p.FaultStats(); st.ConnResets == 0 {
		t.Fatalf("no reset accounted: %+v", st)
	}
}

// TestFaultTruncation: with certain truncation, the first multi-byte
// chunk must arrive short and the connection then reset.
func TestFaultTruncation(t *testing.T) {
	p := startFaultProxy(t, startEcho(t), &FaultPlan{
		Seed:         2,
		TruncateRate: 1.0,
	})
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	payload := bytes.Repeat([]byte("y"), 4096)
	if _, err := conn.Write(payload); err == nil {
		// The write may succeed locally; the read must then observe a
		// short, reset stream.
		got, rerr := io.ReadAll(conn)
		if rerr == nil && len(got) >= len(payload) {
			t.Fatal("payload fully delivered despite certain truncation")
		}
	}
	if st := p.FaultStats(); st.Truncations == 0 || st.ConnResets == 0 {
		t.Fatalf("truncation not accounted: %+v", p.FaultStats())
	}
}

// TestFaultStall: certain stalls must delay delivery by at least the
// stall duration.
func TestFaultStall(t *testing.T) {
	const stall = 60 * time.Millisecond
	p := startFaultProxy(t, startEcho(t), &FaultPlan{
		Seed:      3,
		StallRate: 1.0,
		StallFor:  stall,
	})
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	if err := echoOnce(conn, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	// Request and reply each cross the proxy once: two stalls minimum.
	if elapsed := time.Since(start); elapsed < 2*stall {
		t.Fatalf("echo took %v, want >= %v", elapsed, 2*stall)
	}
	if st := p.FaultStats(); st.Stalls < 2 {
		t.Fatalf("stalls not accounted: %+v", st)
	}
}

// TestFaultBlackholeWindow: connections arriving inside a blackhole
// window must be refused; after the window the path works again.
func TestFaultBlackholeWindow(t *testing.T) {
	p := startFaultProxy(t, startEcho(t), &FaultPlan{
		Seed:           4,
		BlackholeEvery: 10 * time.Second,
		BlackholeFor:   300 * time.Millisecond,
	})
	// The window opens at SetFaults time, so this dial lands inside it.
	conn, err := net.Dial("tcp", p.Addr())
	if err == nil {
		_ = conn.SetDeadline(time.Now().Add(3 * time.Second))
		if echoOnce(conn, []byte("ping")) == nil {
			t.Fatal("echo succeeded during blackhole window")
		}
		conn.Close()
	}
	if st := p.FaultStats(); st.BlackholedConns == 0 {
		t.Fatalf("blackholed connection not accounted: %+v", st)
	}

	time.Sleep(350 * time.Millisecond) // window over
	conn2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	_ = conn2.SetDeadline(time.Now().Add(5 * time.Second))
	if err := echoOnce(conn2, []byte("ping")); err != nil {
		t.Fatalf("echo after blackhole window: %v", err)
	}
}

// TestFaultDisable: SetFaults(nil) must return the proxy to a clean
// path.
func TestFaultDisable(t *testing.T) {
	p := startFaultProxy(t, startEcho(t), &FaultPlan{Seed: 5, ResetRate: 1, ResetAfterMax: 1})
	p.SetFaults(nil)
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	for i := 0; i < 16; i++ {
		if err := echoOnce(conn, bytes.Repeat([]byte("z"), 512)); err != nil {
			t.Fatalf("clean echo %d: %v", i, err)
		}
	}
	if st := p.FaultStats(); st != (FaultStats{}) {
		t.Fatalf("faults injected while disabled: %+v", st)
	}
}

// TestFaultCloseDuringStall: closing the proxy while a chunk is held in
// a stall or blackhole must not hang.
func TestFaultCloseDuringStall(t *testing.T) {
	p := startFaultProxy(t, startEcho(t), &FaultPlan{
		Seed:      6,
		StallRate: 1.0,
		StallFor:  30 * time.Second,
	})
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("stuck")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the chunk enter the stall
	done := make(chan struct{})
	go func() {
		p.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("proxy Close hung during injected stall")
	}
}

package latency

import (
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// FaultPlan configures fault injection on a proxied path. All faults
// are probabilistic and seeded, so a schedule is reproducible; the
// zero value injects nothing. A plan applies to one proxy — each path
// of a topology carries its own plan.
type FaultPlan struct {
	// Seed makes the fault schedule reproducible.
	Seed int64

	// ResetRate is the per-connection probability that the connection
	// is doomed: after a uniformly random number of forwarded bytes in
	// [1, ResetAfterMax] it is reset abruptly (RST, not FIN). When the
	// cut lands mid-chunk the peer sees a partial frame first — the
	// truncation case protocols must survive.
	ResetRate float64
	// ResetAfterMax bounds the doomed connection's byte budget
	// (default 16384).
	ResetAfterMax int

	// StallRate is the per-chunk probability of an injected stall of
	// StallFor before the chunk is delivered. Stalls model a peer that
	// stops reading or a path that loses and retransmits; they are how
	// context deadlines on in-flight calls get exercised.
	StallRate float64
	// StallFor is the duration of each injected stall (default 20ms).
	StallFor time.Duration

	// TruncateRate is the per-chunk probability that the chunk is cut
	// at a random byte boundary — delivering a partial frame — and the
	// connection reset immediately after.
	TruncateRate float64

	// BlackholeEvery/BlackholeFor open periodic blackhole windows: for
	// BlackholeFor out of every BlackholeEvery, the path delivers
	// nothing — established connections stall and new connections are
	// reset on accept. Both must be positive to take effect, and
	// BlackholeFor must be less than BlackholeEvery.
	BlackholeEvery time.Duration
	BlackholeFor   time.Duration
}

func (p FaultPlan) blackholes() bool {
	return p.BlackholeEvery > 0 && p.BlackholeFor > 0 && p.BlackholeFor < p.BlackholeEvery
}

// Active reports whether the plan injects any fault at all.
func (p FaultPlan) Active() bool {
	return p.ResetRate > 0 || p.StallRate > 0 || p.TruncateRate > 0 || p.blackholes()
}

// FaultStats counts the faults a proxy has injected.
type FaultStats struct {
	// ConnResets counts abruptly reset connections (doomed-budget and
	// post-truncation resets).
	ConnResets uint64
	// Truncations counts chunks delivered partially before a reset.
	Truncations uint64
	// Stalls counts injected per-chunk stalls.
	Stalls uint64
	// BlackholedConns counts connections refused during blackhole
	// windows.
	BlackholedConns uint64
	// BlackholedChunks counts chunks held back by a blackhole window.
	BlackholedChunks uint64
}

// injector is the runtime state behind one SetFaults call.
type injector struct {
	plan  FaultPlan
	start time.Time

	mu  sync.Mutex
	rng *rand.Rand

	connResets       atomic.Uint64
	truncations      atomic.Uint64
	stalls           atomic.Uint64
	blackholedConns  atomic.Uint64
	blackholedChunks atomic.Uint64
}

func newInjector(plan FaultPlan) *injector {
	if plan.ResetAfterMax <= 0 {
		plan.ResetAfterMax = 16 * 1024
	}
	if plan.StallFor <= 0 {
		plan.StallFor = 20 * time.Millisecond
	}
	return &injector{
		plan:  plan,
		start: time.Now(),
		rng:   rand.New(rand.NewSource(plan.Seed)),
	}
}

func (f *injector) stats() FaultStats {
	return FaultStats{
		ConnResets:       f.connResets.Load(),
		Truncations:      f.truncations.Load(),
		Stalls:           f.stalls.Load(),
		BlackholedConns:  f.blackholedConns.Load(),
		BlackholedChunks: f.blackholedChunks.Load(),
	}
}

func (f *injector) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	f.mu.Lock()
	v := f.rng.Float64()
	f.mu.Unlock()
	return v < p
}

// intn returns a uniform int in [0, n).
func (f *injector) intn(n int) int {
	f.mu.Lock()
	v := f.rng.Intn(n)
	f.mu.Unlock()
	return v
}

// blackholeWait returns how long the current blackhole window has left
// (zero when the path is open).
func (f *injector) blackholeWait() time.Duration {
	if !f.plan.blackholes() {
		return 0
	}
	phase := time.Since(f.start) % f.plan.BlackholeEvery
	if phase < f.plan.BlackholeFor {
		return f.plan.BlackholeFor - phase
	}
	return 0
}

// connFaults is the per-connection-pair fault state: the shared doomed
// byte budget and the abrupt closer for both legs.
type connFaults struct {
	inj *injector
	// remaining is the doomed byte budget; negative means the
	// connection is not doomed.
	remaining atomic.Int64
	doomed    bool
	reset     sync.Once
	client    net.Conn
	target    net.Conn
}

func newConnFaults(inj *injector, client, target net.Conn) *connFaults {
	cf := &connFaults{inj: inj, client: client, target: target}
	if inj.roll(inj.plan.ResetRate) {
		cf.doomed = true
		cf.remaining.Store(int64(1 + inj.intn(inj.plan.ResetAfterMax)))
	} else {
		cf.remaining.Store(-1)
	}
	return cf
}

// abort resets both legs of the proxied connection abruptly: linger 0
// turns the close into a TCP RST, so peers observe "connection reset"
// mid-operation rather than a clean EOF.
func (cf *connFaults) abort() {
	cf.reset.Do(func() {
		cf.inj.connResets.Add(1)
		obsFaultResets.Inc()
		for _, c := range []net.Conn{cf.client, cf.target} {
			if tc, ok := c.(*net.TCPConn); ok {
				_ = tc.SetLinger(0)
			}
			_ = c.Close()
		}
	})
}

// admit decides the fate of data about to be written: it blocks through
// blackhole windows and injected stalls, then returns how many of the n
// bytes may be delivered and whether the connection must be reset
// afterwards. done interrupts waits (proxy shutdown).
func (cf *connFaults) admit(n int, done <-chan struct{}) (allowed int, kill bool) {
	f := cf.inj
	for {
		wait := f.blackholeWait()
		if wait <= 0 {
			break
		}
		f.blackholedChunks.Add(1)
		obsFaultBlackholedChunks.Inc()
		if !sleepInterruptible(wait, done) {
			return 0, true
		}
	}
	if f.roll(f.plan.StallRate) {
		f.stalls.Add(1)
		obsFaultStalls.Inc()
		if !sleepInterruptible(f.plan.StallFor, done) {
			return 0, true
		}
	}
	if cf.doomed {
		left := cf.remaining.Add(int64(-n))
		if left < 0 {
			allowed = n + int(left)
			if allowed < 0 {
				allowed = 0
			}
			if allowed > 0 && allowed < n {
				f.truncations.Add(1)
				obsFaultTruncations.Inc()
			}
			return allowed, true
		}
	}
	if n > 1 && f.roll(f.plan.TruncateRate) {
		f.truncations.Add(1)
		obsFaultTruncations.Inc()
		return f.intn(n-1) + 1, true
	}
	return n, false
}

// faultHolder lazily binds a proxied connection pair to the proxy's
// CURRENT injector. Long-lived connections (the wire client pools them)
// predate most SetFaults calls, so the binding cannot happen at accept
// time: each delivered chunk re-checks the proxy's injector and rebinds
// when a new plan has been installed (or detaches when cleared).
type faultHolder struct {
	p              *Proxy
	client, target net.Conn

	mu sync.Mutex
	cf *connFaults
}

// current returns the connection's fault state under the proxy's
// current plan, or nil when injection is off.
func (h *faultHolder) current() *connFaults {
	inj := h.p.faults.Load()
	if inj == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.cf == nil || h.cf.inj != inj {
		h.cf = newConnFaults(inj, h.client, h.target)
	}
	return h.cf
}

func sleepInterruptible(d time.Duration, done <-chan struct{}) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-done:
		return false
	case <-t.C:
		return true
	}
}

package latency

import (
	"errors"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Counter accumulates byte counts for one path, split by direction. It
// is safe for concurrent use and may be shared by many connections.
type Counter struct {
	toTarget   atomic.Uint64
	fromTarget atomic.Uint64
	conns      atomic.Uint64
}

// AddToTarget records n bytes flowing toward the target (requests).
func (c *Counter) AddToTarget(n int) { c.toTarget.Add(uint64(n)) }

// AddFromTarget records n bytes flowing back from the target (responses).
func (c *Counter) AddFromTarget(n int) { c.fromTarget.Add(uint64(n)) }

// ToTarget returns the bytes sent toward the target so far.
func (c *Counter) ToTarget() uint64 { return c.toTarget.Load() }

// FromTarget returns the bytes received from the target so far.
func (c *Counter) FromTarget() uint64 { return c.fromTarget.Load() }

// Total returns bytes in both directions.
func (c *Counter) Total() uint64 { return c.toTarget.Load() + c.fromTarget.Load() }

// Conns returns the number of connections accounted so far.
func (c *Counter) Conns() uint64 { return c.conns.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() {
	c.toTarget.Store(0)
	c.fromTarget.Store(0)
	c.conns.Store(0)
}

// CountingConn wraps a net.Conn, attributing written bytes as
// "to target" and read bytes as "from target" on a Counter.
type CountingConn struct {
	net.Conn

	counter *Counter
}

// NewCountingConn wraps conn so all traffic is recorded on counter.
func NewCountingConn(conn net.Conn, counter *Counter) *CountingConn {
	counter.conns.Add(1)
	return &CountingConn{Conn: conn, counter: counter}
}

// Read records bytes received from the target.
func (c *CountingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.counter.AddFromTarget(n)
	}
	return n, err
}

// Write records bytes sent toward the target.
func (c *CountingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if n > 0 {
		c.counter.AddToTarget(n)
	}
	return n, err
}

// Proxy is a TCP delay proxy. Every byte forwarded in either direction
// is held for the configured one-way delay before delivery, emulating a
// wide-area path on a loopback interface. The proxy also counts the
// bytes it forwards, which is how the bandwidth experiment (Figure 8)
// measures traffic on the shared path.
type Proxy struct {
	target  string
	delay   atomic.Int64 // one-way delay in nanoseconds
	counter *Counter
	faults  atomic.Pointer[injector]

	ln     net.Listener
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	done   chan struct{}
	wg     sync.WaitGroup
}

// NewProxy creates a proxy that will forward connections to target with
// the given one-way delay. Call Start to begin listening.
func NewProxy(target string, oneWayDelay time.Duration) *Proxy {
	p := &Proxy{
		target:  target,
		counter: &Counter{},
		conns:   make(map[net.Conn]struct{}),
		done:    make(chan struct{}),
	}
	p.delay.Store(int64(oneWayDelay))
	return p
}

// Counter returns the proxy's byte counter for the proxied path.
func (p *Proxy) Counter() *Counter { return p.counter }

// SetDelay changes the one-way delay; it applies to bytes forwarded
// after the call, including on established connections. This is how the
// experiment harness sweeps the delay axis without rebuilding topology.
func (p *Proxy) SetDelay(d time.Duration) { p.delay.Store(int64(d)) }

// Delay returns the current one-way delay.
func (p *Proxy) Delay() time.Duration { return time.Duration(p.delay.Load()) }

// SetFaults switches the proxy into (or out of) fault-injection mode.
// A nil or inactive plan disables injection; a live plan applies to
// connections and chunks forwarded after the call. Each SetFaults call
// starts a fresh schedule (new seed state, new blackhole phase, zeroed
// FaultStats).
func (p *Proxy) SetFaults(plan *FaultPlan) {
	if plan == nil || !plan.Active() {
		p.faults.Store(nil)
		return
	}
	p.faults.Store(newInjector(*plan))
}

// FaultStats returns the counters of the current fault plan (zero when
// fault injection is off).
func (p *Proxy) FaultStats() FaultStats {
	if f := p.faults.Load(); f != nil {
		return f.stats()
	}
	return FaultStats{}
}

// Start begins listening on addr (use "127.0.0.1:0" for an ephemeral
// port) and serving connections in the background.
func (p *Proxy) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		_ = ln.Close()
		return errors.New("latency: proxy closed")
	}
	p.ln = ln
	p.mu.Unlock()
	p.wg.Add(1)
	go p.acceptLoop(ln)
	return nil
}

// Addr returns the proxy's listen address. It panics if Start has not
// been called.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Close stops the listener and tears down every proxied connection,
// waiting for the forwarding goroutines to exit.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	close(p.done)
	ln := p.ln
	for c := range p.conns {
		_ = c.Close()
	}
	p.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	p.wg.Wait()
}

func (p *Proxy) acceptLoop(ln net.Listener) {
	defer p.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		if !p.track(conn) {
			_ = conn.Close()
			return
		}
		p.wg.Add(1)
		go p.serve(conn)
	}
}

func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.conns, c)
}

func (p *Proxy) serve(client net.Conn) {
	defer p.wg.Done()
	defer p.untrack(client)
	defer client.Close()

	inj := p.faults.Load()
	if inj != nil && inj.blackholeWait() > 0 {
		// The path is blackholed: refuse the connection abruptly.
		inj.blackholedConns.Add(1)
		obsFaultBlackholedConns.Inc()
		if tc, ok := client.(*net.TCPConn); ok {
			_ = tc.SetLinger(0)
		}
		return
	}

	target, err := net.Dial("tcp", p.target)
	if err != nil {
		return
	}
	if !p.track(target) {
		_ = target.Close()
		return
	}
	defer p.untrack(target)
	defer target.Close()
	p.counter.conns.Add(1)
	obsProxyConns.Inc()

	fh := &faultHolder{p: p, client: client, target: target}

	done := make(chan struct{}, 2)
	go func() {
		p.pump(target, client, p.counter.AddToTarget, fh)
		// Half-close toward the target so request streams terminate.
		if tc, ok := target.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
		done <- struct{}{}
	}()
	go func() {
		p.pump(client, target, p.counter.AddFromTarget, fh)
		if cc, ok := client.(*net.TCPConn); ok {
			_ = cc.CloseWrite()
		}
		done <- struct{}{}
	}()
	<-done
	<-done
}

// chunk is one delayed segment in flight.
type chunk struct {
	data []byte
	due  time.Time
}

// sleepUntil sleeps to a deadline accurately: timer sleep for the bulk,
// then cooperative yielding for the tail. Plain time.Sleep can overshoot
// by around a millisecond on coarse-timer kernels, which at
// millisecond-scale injected delays badly inflates the measured latency
// sensitivities; the experiments need the injected delay to be accurate,
// so the last stretch busy-yields instead of sleeping. The yield loop
// calls runtime.Gosched, so other goroutines (the servers under test,
// which are idle while a delay elapses anyway) keep running.
func sleepUntil(due time.Time) {
	const spinWindow = 2 * time.Millisecond
	if wait := time.Until(due) - spinWindow; wait > 0 {
		time.Sleep(wait)
	}
	for time.Now().Before(due) {
		runtime.Gosched()
	}
}

// pump forwards src to dst, modeling one-way propagation delay: every
// chunk is delivered delay after it was read, but chunks overlap in
// flight (pipelining), so a large message spanning several TCP segments
// pays the delay once, not once per segment — the behavior of a real
// wide-area path, and of the paper's delay proxy. cf, when non-nil,
// injects the fault plan on the delivery side: stalls and blackhole
// windows hold chunks back, truncation delivers a partial chunk, and a
// doomed byte budget resets the connection pair mid-stream. The fault
// state is re-resolved per chunk via fh, so plans installed after the
// connection was accepted still apply to it.
func (p *Proxy) pump(dst io.Writer, src io.Reader, account func(int), fh *faultHolder) {
	inflight := make(chan chunk, 256)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		drain := func() {
			for range inflight {
			}
		}
		for c := range inflight {
			sleepUntil(c.due)
			data := c.data
			kill := false
			cf := fh.current()
			if cf != nil {
				var allowed int
				allowed, kill = cf.admit(len(data), p.done)
				data = data[:allowed]
			}
			if len(data) > 0 {
				if _, err := dst.Write(data); err != nil {
					// Drain remaining chunks so the reader never blocks.
					drain()
					return
				}
				account(len(data))
			}
			if kill {
				cf.abort()
				drain()
				return
			}
		}
	}()
	buf := make([]byte, 32*1024)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			data := make([]byte, n)
			copy(data, buf[:n])
			inflight <- chunk{data: data, due: time.Now().Add(p.Delay())}
		}
		if err != nil {
			close(inflight)
			<-writerDone
			return
		}
	}
}

// Package latency provides the experiment plumbing the paper calls the
// "delay proxy" (§4.1): a TCP proxy that interposes a configurable
// one-way delay on a designated communication path, transparently to
// both endpoints, plus byte-counting connection wrappers used to measure
// the bandwidth consumed on the shared (high-latency) path (Figure 8).
//
// Beyond the paper, the proxy can inject WAN faults on the same path —
// abrupt connection resets, stalls, partial-frame truncations, and
// blackhole windows — which the fault-tolerance experiments use to
// verify the edge keeps serving under disconnection. Injected faults
// are counted by the latency.fault_* metrics (see OBSERVABILITY.md).
package latency

package latency

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// echoServer accepts connections and echoes fixed-size responses.
func echoServer(t *testing.T, respSize int) (addr string, closeFn func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer c.Close()
				buf := make([]byte, 64<<10)
				resp := bytes.Repeat([]byte{'r'}, respSize)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
					if _, err := c.Write(resp); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String(), func() {
		_ = ln.Close()
		wg.Wait()
	}
}

func roundTrip(t *testing.T, conn net.Conn, respSize int) time.Duration {
	t.Helper()
	begin := time.Now()
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(conn, make([]byte, respSize)); err != nil {
		t.Fatal(err)
	}
	return time.Since(begin)
}

func TestProxyForwardsTransparently(t *testing.T) {
	addr, closeSrv := echoServer(t, 128)
	defer closeSrv()
	p := NewProxy(addr, 0)
	if err := p.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 5; i++ {
		roundTrip(t, conn, 128)
	}
	if got := p.Counter().ToTarget(); got != 5*4 {
		t.Errorf("bytes to target = %d, want 20", got)
	}
	if got := p.Counter().FromTarget(); got != 5*128 {
		t.Errorf("bytes from target = %d, want 640", got)
	}
	if p.Counter().Conns() != 1 {
		t.Errorf("conns = %d, want 1", p.Counter().Conns())
	}
}

func TestProxyInjectsDelay(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	addr, closeSrv := echoServer(t, 64)
	defer closeSrv()
	p := NewProxy(addr, 0)
	if err := p.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 20; i++ {
		roundTrip(t, conn, 64) // warm up
	}

	base := measureMean(t, conn, 30, 64)
	p.SetDelay(2 * time.Millisecond)
	delayed := measureMean(t, conn, 30, 64)

	// Round trip = 2 crossings; expect close to base + 4ms.
	extra := delayed - base
	if extra < 3600*time.Microsecond || extra > 5500*time.Microsecond {
		t.Errorf("2ms one-way delay added %v per round trip, want ~4ms", extra)
	}
}

// TestProxyPipelinesLargeMessages checks that a message spanning many
// TCP segments pays the one-way delay once, not once per segment.
func TestProxyPipelinesLargeMessages(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const size = 256 << 10 // definitely multiple segments
	addr, closeSrv := echoServer(t, size)
	defer closeSrv()
	p := NewProxy(addr, 0)
	if err := p.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 3; i++ {
		roundTrip(t, conn, size)
	}
	base := measureMean(t, conn, 10, size)
	p.SetDelay(2 * time.Millisecond)
	delayed := measureMean(t, conn, 10, size)
	extra := delayed - base
	// Serial per-chunk delays would be tens of milliseconds here.
	if extra > 8*time.Millisecond {
		t.Errorf("large response paid %v extra; per-segment delays are not pipelined", extra)
	}
}

func measureMean(t *testing.T, conn net.Conn, n, respSize int) time.Duration {
	t.Helper()
	var total time.Duration
	for i := 0; i < n; i++ {
		total += roundTrip(t, conn, respSize)
	}
	return total / time.Duration(n)
}

func TestSetDelayAppliesToLiveConnections(t *testing.T) {
	addr, closeSrv := echoServer(t, 64)
	defer closeSrv()
	p := NewProxy(addr, 0)
	if err := p.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Delay() != 0 {
		t.Error("initial delay not zero")
	}
	p.SetDelay(3 * time.Millisecond)
	if p.Delay() != 3*time.Millisecond {
		t.Error("SetDelay not visible")
	}
}

func TestProxyCloseUnblocksClients(t *testing.T) {
	addr, closeSrv := echoServer(t, 64)
	defer closeSrv()
	p := NewProxy(addr, 0)
	if err := p.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	roundTrip(t, conn, 64)

	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = conn.Read(make([]byte, 1))
	}()
	p.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("client read not unblocked by proxy close")
	}
	p.Close() // idempotent
}

func TestProxyTargetUnreachable(t *testing.T) {
	p := NewProxy("127.0.0.1:1", 0) // nothing listens on port 1
	if err := p.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// The proxy should just close the connection.
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("expected closed connection")
	}
}

func TestCountingConn(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	var counter Counter
	cc := NewCountingConn(client, &counter)
	defer cc.Close()

	go func() {
		buf := make([]byte, 16)
		n, _ := server.Read(buf)
		_, _ = server.Write(buf[:n])
	}()
	if _, err := cc.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(cc, buf); err != nil {
		t.Fatal(err)
	}
	if counter.ToTarget() != 5 || counter.FromTarget() != 5 {
		t.Errorf("counter = %d/%d, want 5/5", counter.ToTarget(), counter.FromTarget())
	}
	if counter.Total() != 10 || counter.Conns() != 1 {
		t.Errorf("total/conns = %d/%d", counter.Total(), counter.Conns())
	}
	counter.Reset()
	if counter.Total() != 0 || counter.Conns() != 0 {
		t.Error("reset did not zero the counter")
	}
}

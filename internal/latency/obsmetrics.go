package latency

import "edgeejb/internal/obs"

// Process-wide obs mirrors of the delay proxy's traffic and injected
// faults, summed across every Proxy in the process. The per-proxy
// counters remain the chaos tests' source of truth; these feed /metrics
// on delayproxy. Names are documented in OBSERVABILITY.md.
var (
	obsProxyConns            = obs.Default.Counter("latency.proxy_conns")
	obsFaultResets           = obs.Default.Counter("latency.fault_resets")
	obsFaultStalls           = obs.Default.Counter("latency.fault_stalls")
	obsFaultTruncations      = obs.Default.Counter("latency.fault_truncations")
	obsFaultBlackholedConns  = obs.Default.Counter("latency.fault_blackholed_conns")
	obsFaultBlackholedChunks = obs.Default.Counter("latency.fault_blackholed_chunks")
)

package regress

import (
	"fmt"
	"io"
	"math"
	"sort"

	"edgeejb/internal/stats"
)

// Verdict is the outcome of comparing one metric across two runs.
type Verdict string

const (
	// Unchanged: the difference is inside the tolerance budget.
	Unchanged Verdict = "unchanged"
	// Improved: outside tolerance, significant (when testable), and in
	// the metric's better direction.
	Improved Verdict = "improved"
	// Regressed: outside tolerance, significant (when testable), and in
	// the worse direction.
	Regressed Verdict = "regressed"
	// Inconclusive: outside tolerance but the Welch test cannot
	// distinguish the runs — the tolerance was exceeded by noise.
	Inconclusive Verdict = "inconclusive"
	// Added: present only in the new run.
	Added Verdict = "added"
	// Removed: present only in the old run.
	Removed Verdict = "removed"
)

// GateFunc decides which metrics arm the exit-code gate.
type GateFunc func(name string, k Kind) bool

// GateAll gates every metric — for same-machine A/B comparisons.
func GateAll(string, Kind) bool { return true }

// GateStable gates only machine-independent kinds — for comparing
// against a checked-in baseline from different hardware.
func GateStable(_ string, k Kind) bool { return k.Stable() }

// GateNone reports differences without gating any.
func GateNone(string, Kind) bool { return false }

// GateKinds gates exactly the listed kinds.
func GateKinds(kinds ...Kind) GateFunc {
	set := make(map[Kind]bool, len(kinds))
	for _, k := range kinds {
		set[k] = true
	}
	return func(_ string, k Kind) bool { return set[k] }
}

// Options configures a comparison. The zero value uses per-kind default
// tolerances and gates nothing.
type Options struct {
	// Tolerance overrides the per-kind default budget for specific
	// metric names (relative fraction; absolute for ratio metrics).
	Tolerance map[string]float64
	// Gate decides which metrics can turn the report red (GateNone when
	// nil).
	Gate GateFunc
}

// Result is one metric's comparison.
type Result struct {
	Name   string
	Kind   Kind
	Better Direction
	Unit   string
	// Old and New are the two means (zero for Added/Removed sides).
	Old, New float64
	// Delta is New - Old; Rel is Delta relative to Old (for ratio
	// metrics Rel holds the absolute difference instead, matching the
	// tolerance semantics).
	Delta, Rel float64
	// Tol is the budget applied.
	Tol float64
	// Exceeds reports |Rel| > Tol.
	Exceeds bool
	// Test is the Welch comparison when both runs carried >= 2 samples.
	Test *stats.TwoSample
	// Verdict is the outcome.
	Verdict Verdict
	// Gated reports whether this metric arms the exit code.
	Gated bool
}

// worse reports whether the delta moved in the metric's worse
// direction.
func (r *Result) worse() bool {
	if r.Better == HigherIsBetter {
		return r.Delta < 0
	}
	return r.Delta > 0
}

// Report is a full two-run comparison.
type Report struct {
	Results []Result
	// Regressions counts gated Regressed results — the exit-code
	// signal. Improvements and Inconclusive count gated results too.
	Regressions   int
	Improvements  int
	Inconclusives int
}

// Compare diffs two summaries metric by metric. A metric regresses only
// if it exceeds its tolerance budget AND, when both runs carry samples,
// a Welch two-sample test finds the difference significant at the 95%
// level; tolerance-only exceedances with an insignificant test come
// back Inconclusive instead.
func Compare(oldS, newS *Summary, opts Options) *Report {
	gate := opts.Gate
	if gate == nil {
		gate = GateNone
	}
	names := make(map[string]bool)
	for n := range oldS.Metrics {
		names[n] = true
	}
	for n := range newS.Metrics {
		names[n] = true
	}
	rep := &Report{}
	for name := range names {
		om, inOld := oldS.Metrics[name]
		nm, inNew := newS.Metrics[name]
		r := Result{Name: name}
		switch {
		case !inNew:
			r.Kind, r.Better, r.Unit = om.Kind, om.Better, om.Unit
			r.Old = om.Mean
			r.Verdict = Removed
		case !inOld:
			r.Kind, r.Better, r.Unit = nm.Kind, nm.Better, nm.Unit
			r.New = nm.Mean
			r.Verdict = Added
		default:
			r.Kind, r.Better, r.Unit = nm.Kind, nm.Better, nm.Unit
			r.Old, r.New = om.Mean, nm.Mean
			r.Delta = nm.Mean - om.Mean
			r.Tol = r.Kind.DefaultTolerance()
			if t, ok := opts.Tolerance[name]; ok {
				r.Tol = t
			}
			if r.Kind == KindRatio {
				r.Rel = r.Delta
			} else if om.Mean != 0 {
				r.Rel = r.Delta / math.Abs(om.Mean)
			} else if r.Delta != 0 {
				r.Rel = math.Inf(1)
			}
			r.Exceeds = math.Abs(r.Rel) > r.Tol
			if len(om.Samples) >= 2 && len(nm.Samples) >= 2 {
				if t, err := stats.WelchTest(om.Samples, nm.Samples); err == nil {
					r.Test = &t
				}
			}
			switch {
			case !r.Exceeds:
				r.Verdict = Unchanged
			case r.Test != nil && !r.Test.Significant:
				r.Verdict = Inconclusive
			case r.worse():
				r.Verdict = Regressed
			default:
				r.Verdict = Improved
			}
		}
		r.Gated = gate(name, r.Kind)
		if r.Gated {
			switch r.Verdict {
			case Regressed:
				rep.Regressions++
			case Improved:
				rep.Improvements++
			case Inconclusive:
				rep.Inconclusives++
			}
		}
		rep.Results = append(rep.Results, r)
	}
	sort.Slice(rep.Results, func(i, j int) bool {
		return rep.Results[i].Name < rep.Results[j].Name
	})
	return rep
}

// verdictMark is the one-character gutter flag for the table.
func verdictMark(v Verdict, gated bool) string {
	switch v {
	case Regressed:
		if gated {
			return "✗"
		}
		return "!"
	case Improved:
		return "✓"
	case Inconclusive:
		return "?"
	case Added, Removed:
		return "±"
	default:
		return " "
	}
}

// WriteTable renders the comparison. With all=false only non-unchanged
// rows print (plus a count of the suppressed ones); all=true prints
// everything.
func (rep *Report) WriteTable(w io.Writer, all bool) error {
	if _, err := fmt.Fprintf(w, "%-1s %-44s %12s %12s %9s %8s  %s\n",
		"", "metric", "old", "new", "delta", "budget", "verdict"); err != nil {
		return err
	}
	suppressed := 0
	for _, r := range rep.Results {
		if !all && r.Verdict == Unchanged {
			suppressed++
			continue
		}
		delta := ""
		switch r.Verdict {
		case Added:
			delta = "(new)"
		case Removed:
			delta = "(gone)"
		default:
			if r.Kind == KindRatio {
				delta = fmt.Sprintf("%+.3f", r.Rel)
			} else if math.IsInf(r.Rel, 0) {
				delta = "+inf"
			} else {
				delta = fmt.Sprintf("%+.1f%%", 100*r.Rel)
			}
		}
		budget := ""
		if r.Verdict != Added && r.Verdict != Removed {
			if r.Kind == KindRatio {
				budget = fmt.Sprintf("±%.3f", r.Tol)
			} else {
				budget = fmt.Sprintf("±%.0f%%", 100*r.Tol)
			}
		}
		verdict := string(r.Verdict)
		if r.Test != nil && (r.Verdict == Regressed || r.Verdict == Improved) {
			verdict += " (95% CI)"
		}
		if r.Gated && r.Verdict == Regressed {
			verdict += " [gated]"
		}
		if _, err := fmt.Fprintf(w, "%-1s %-44s %12.4f %12.4f %9s %8s  %s\n",
			verdictMark(r.Verdict, r.Gated), r.Name, r.Old, r.New, delta, budget, verdict); err != nil {
			return err
		}
	}
	if !all && suppressed > 0 {
		if _, err := fmt.Fprintf(w, "  (%d unchanged metrics hidden; -all shows them)\n", suppressed); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "verdict: %d regressed, %d improved, %d inconclusive (gated metrics)\n",
		rep.Regressions, rep.Improvements, rep.Inconclusives)
	return err
}

package regress

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func metric(kind Kind, better Direction, mean float64, samples ...float64) Metric {
	return Metric{Kind: kind, Better: better, Mean: mean, N: len(samples), Samples: samples}
}

func TestCompareVerdicts(t *testing.T) {
	oldS := &Summary{Schema: SchemaV1, Metrics: map[string]Metric{
		// Tight samples, large move: regressed.
		"latency.up": metric(KindTime, LowerIsBetter, 10, 10, 10.1, 9.9, 10.05),
		// Tight samples, large drop: improved.
		"latency.down": metric(KindTime, LowerIsBetter, 10, 10, 10.1, 9.9, 10.05),
		// Within budget: unchanged.
		"latency.flat": metric(KindTime, LowerIsBetter, 10, 10, 10.1, 9.9, 10.05),
		// Huge noise, mean moved past tolerance: inconclusive.
		"latency.noisy": metric(KindTime, LowerIsBetter, 10, 2, 18, 4, 16),
		// Throughput dropping is a regression for higher-is-better.
		"throughput.x": metric(KindRate, HigherIsBetter, 100, 99, 100, 101, 100),
		// Ratio compared by absolute difference.
		"cache.hit": metric(KindRatio, HigherIsBetter, 0.90),
		// Disappears in the new run.
		"gone.metric": metric(KindCount, LowerIsBetter, 5),
	}}
	newS := &Summary{Schema: SchemaV1, Metrics: map[string]Metric{
		"latency.up":    metric(KindTime, LowerIsBetter, 15, 15, 15.1, 14.9, 15.05),
		"latency.down":  metric(KindTime, LowerIsBetter, 6, 6, 6.1, 5.9, 6.05),
		"latency.flat":  metric(KindTime, LowerIsBetter, 10.5, 10.5, 10.6, 10.4, 10.55),
		"latency.noisy": metric(KindTime, LowerIsBetter, 14, 6, 22, 8, 20),
		"throughput.x":  metric(KindRate, HigherIsBetter, 60, 59, 60, 61, 60),
		"cache.hit":     metric(KindRatio, HigherIsBetter, 0.70),
		"new.metric":    metric(KindCount, LowerIsBetter, 3),
	}}
	rep := Compare(oldS, newS, Options{Gate: GateAll})
	want := map[string]Verdict{
		"latency.up":    Regressed,
		"latency.down":  Improved,
		"latency.flat":  Unchanged,
		"latency.noisy": Inconclusive,
		"throughput.x":  Regressed,
		"cache.hit":     Regressed,
		"gone.metric":   Removed,
		"new.metric":    Added,
	}
	got := make(map[string]Verdict)
	for _, r := range rep.Results {
		got[r.Name] = r.Verdict
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s: verdict %s, want %s", name, got[name], v)
		}
	}
	if rep.Regressions != 3 {
		t.Errorf("Regressions = %d, want 3", rep.Regressions)
	}
	if rep.Improvements != 1 {
		t.Errorf("Improvements = %d, want 1", rep.Improvements)
	}

	// Results come back name-sorted for stable output.
	for i := 1; i < len(rep.Results); i++ {
		if rep.Results[i-1].Name > rep.Results[i].Name {
			t.Fatalf("results not sorted: %s > %s", rep.Results[i-1].Name, rep.Results[i].Name)
		}
	}

	var buf bytes.Buffer
	if err := rep.WriteTable(&buf, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, needle := range []string{"latency.up", "regressed", "3 regressed", "unchanged metrics hidden"} {
		if !strings.Contains(out, needle) {
			t.Errorf("table missing %q:\n%s", needle, out)
		}
	}
	if strings.Contains(out, "latency.flat") {
		t.Errorf("table shows unchanged row without -all:\n%s", out)
	}
}

func TestCompareIdenticalIsClean(t *testing.T) {
	s := &Summary{Schema: SchemaV1, Metrics: map[string]Metric{
		"a": metric(KindTime, LowerIsBetter, 10, 10, 10.2, 9.8),
		"b": metric(KindCount, LowerIsBetter, 3.63),
		"c": metric(KindRatio, HigherIsBetter, 0.98),
	}}
	rep := Compare(s, s, Options{Gate: GateAll})
	if rep.Regressions != 0 || rep.Improvements != 0 || rep.Inconclusives != 0 {
		t.Fatalf("self-compare not clean: %+v", rep)
	}
	for _, r := range rep.Results {
		if r.Verdict != Unchanged {
			t.Errorf("%s: %s, want unchanged", r.Name, r.Verdict)
		}
	}
}

func TestCompareGating(t *testing.T) {
	oldS := &Summary{Schema: SchemaV1, Metrics: map[string]Metric{
		"time.x":  metric(KindTime, LowerIsBetter, 10),
		"count.x": metric(KindCount, LowerIsBetter, 4),
	}}
	newS := &Summary{Schema: SchemaV1, Metrics: map[string]Metric{
		"time.x":  metric(KindTime, LowerIsBetter, 20),
		"count.x": metric(KindCount, LowerIsBetter, 5),
	}}
	// Stable gating: only count.x (a stable kind) arms the gate even
	// though both regressed.
	rep := Compare(oldS, newS, Options{Gate: GateStable})
	if rep.Regressions != 1 {
		t.Fatalf("stable-gated regressions = %d, want 1", rep.Regressions)
	}
	for _, r := range rep.Results {
		if r.Name == "time.x" && (r.Gated || r.Verdict != Regressed) {
			t.Errorf("time.x: gated=%v verdict=%s, want ungated regressed", r.Gated, r.Verdict)
		}
	}
	if rep := Compare(oldS, newS, Options{Gate: GateNone}); rep.Regressions != 0 {
		t.Fatalf("none-gated regressions = %d, want 0", rep.Regressions)
	}
	if rep := Compare(oldS, newS, Options{Gate: GateKinds(KindTime)}); rep.Regressions != 1 {
		t.Fatalf("kind-gated regressions = %d, want 1", rep.Regressions)
	}
}

func TestCompareToleranceOverride(t *testing.T) {
	oldS := &Summary{Schema: SchemaV1, Metrics: map[string]Metric{
		"wire.rts": metric(KindCount, LowerIsBetter, 4.0),
	}}
	newS := &Summary{Schema: SchemaV1, Metrics: map[string]Metric{
		"wire.rts": metric(KindCount, LowerIsBetter, 4.5),
	}}
	// 12.5% over the default 4% count budget: regressed.
	if rep := Compare(oldS, newS, Options{Gate: GateAll}); rep.Regressions != 1 {
		t.Fatalf("default tolerance: regressions = %d, want 1", rep.Regressions)
	}
	// A widened per-metric budget absorbs it.
	rep := Compare(oldS, newS, Options{
		Gate:      GateAll,
		Tolerance: map[string]float64{"wire.rts": 0.20},
	})
	if rep.Regressions != 0 {
		t.Fatalf("overridden tolerance: regressions = %d, want 0", rep.Regressions)
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	oldS := &Summary{Schema: SchemaV1, Metrics: map[string]Metric{
		"conflicts": metric(KindCount, LowerIsBetter, 0),
	}}
	newS := &Summary{Schema: SchemaV1, Metrics: map[string]Metric{
		"conflicts": metric(KindCount, LowerIsBetter, 7),
	}}
	rep := Compare(oldS, newS, Options{Gate: GateAll})
	if rep.Results[0].Verdict != Regressed {
		t.Fatalf("zero baseline growth: %s, want regressed", rep.Results[0].Verdict)
	}
	// And zero -> zero is unchanged, not a divide-by-zero artifact.
	rep = Compare(oldS, oldS, Options{Gate: GateAll})
	if rep.Results[0].Verdict != Unchanged {
		t.Fatalf("zero self-compare: %s, want unchanged", rep.Results[0].Verdict)
	}
}

func TestLoadSaveRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := &Summary{
		Schema:    SchemaV1,
		CreatedAt: "2026-01-02T03:04:05Z",
		Args:      []string{"-fig6"},
		Metrics: map[string]Metric{
			"latency.x": metric(KindTime, LowerIsBetter, 1.5, 1.4, 1.6),
		},
	}
	file := filepath.Join(dir, "sub", SummaryFile)
	if err := Save(file, s); err != nil {
		t.Fatal(err)
	}

	// Load by exact file.
	got, err := Load(file)
	if err != nil {
		t.Fatal(err)
	}
	if got.Metrics["latency.x"].Mean != 1.5 || len(got.Metrics["latency.x"].Samples) != 2 {
		t.Fatalf("round trip lost data: %+v", got.Metrics["latency.x"])
	}
	// Load by containing directory.
	if _, err := Load(filepath.Join(dir, "sub")); err != nil {
		t.Fatalf("dir load: %v", err)
	}

	// Load by artifact root: newest run-* wins.
	root := t.TempDir()
	for _, run := range []struct {
		name string
		mean float64
	}{
		{"run-20260101-000000", 1.0},
		{"run-20260102-000000", 2.0},
	} {
		rs := &Summary{Schema: SchemaV1, Metrics: map[string]Metric{
			"m": metric(KindTime, LowerIsBetter, run.mean),
		}}
		if err := Save(filepath.Join(root, run.name, SummaryFile), rs); err != nil {
			t.Fatal(err)
		}
	}
	got, err = Load(root)
	if err != nil {
		t.Fatal(err)
	}
	if got.Metrics["m"].Mean != 2.0 {
		t.Fatalf("artifact-root load picked mean %v, want the newest run (2.0)", got.Metrics["m"].Mean)
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file: want error")
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("empty dir: want error")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"someone/elses/v9","metrics":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong schema: err = %v, want schema complaint", err)
	}
	garbage := filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(garbage, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(garbage); err == nil {
		t.Fatal("garbage json: want error")
	}
}

func TestKindProperties(t *testing.T) {
	if !KindCount.Stable() || !KindRatio.Stable() {
		t.Error("count and ratio must be stable kinds")
	}
	if KindTime.Stable() || KindRate.Stable() {
		t.Error("time and rate must not be stable kinds")
	}
	for _, k := range []Kind{KindTime, KindRate, KindCount, KindRatio} {
		if tol := k.DefaultTolerance(); tol <= 0 || tol > 0.5 {
			t.Errorf("%s default tolerance %v out of sane range", k, tol)
		}
	}
}

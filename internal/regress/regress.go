// Package regress defines the canonical machine-readable result
// summary a benchmark run emits (summary.json) and the artifact-diff
// engine that compares two of them — the regression gate that keeps
// the paper's reproduced numbers from drifting as the codebase grows.
//
// A Summary is a flat map of named metrics. Each metric carries its
// batch-mean samples when the harness has them, so a comparison can
// run a Welch two-sample test instead of eyeballing means: a verdict
// of "regressed" requires BOTH the tolerance budget to be exceeded AND
// the difference to be statistically significant (when samples exist),
// which is what keeps a noisy 6-batch run from tripping the CI gate
// one time in twenty per metric.
//
// Metric kinds split along a line that matters for CI: "count" and
// "ratio" metrics (wire round trips per interaction, bytes per
// interaction, cache hit ratios, sensitivity slopes) are properties of
// the protocol and workload, not the machine — they reproduce across
// hosts and gate against a checked-in baseline. "time" and "rate"
// metrics depend on the host and only gate meaningfully in same-machine
// A/B comparisons.
package regress

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// SchemaV1 is the original summary.json schema. V2 added the
// resource.* metric family (allocs, CPU, GC pauses per interaction) —
// a pure addition, so Load accepts both and comparisons between a v1
// baseline and a v2 run simply have no resource metrics in common.
// Load rejects unknown schemas rather than mis-parsing them.
const (
	SchemaV1 = "edgeejb/summary/v1"
	SchemaV2 = "edgeejb/summary/v2"
)

// SummaryFile is the filename a run writes and Load resolves inside
// artifact directories.
const SummaryFile = "summary.json"

// Kind classifies what a metric measures, which decides its default
// tolerance and whether it is machine-independent.
type Kind string

const (
	// KindTime is a latency or duration (host-dependent).
	KindTime Kind = "time"
	// KindRate is a throughput (host-dependent).
	KindRate Kind = "rate"
	// KindCount is a per-interaction count — wire round trips, bytes,
	// sensitivity slopes. Protocol-determined: stable across hosts.
	KindCount Kind = "count"
	// KindRatio is a dimensionless fraction in [0,1] — hit ratios,
	// conflict rates. Compared by absolute difference, and stable.
	KindRatio Kind = "ratio"
)

// Stable reports whether the kind is machine-independent — safe to
// gate against a baseline produced on different hardware.
func (k Kind) Stable() bool { return k == KindCount || k == KindRatio }

// DefaultTolerance is the per-kind budget a difference must exceed
// before it can be a verdict at all: a relative fraction for time,
// rate, and count; an absolute difference for ratio.
func (k Kind) DefaultTolerance() float64 {
	switch k {
	case KindTime:
		return 0.25
	case KindRate:
		return 0.20
	case KindCount:
		return 0.04
	case KindRatio:
		return 0.05
	default:
		return 0.25
	}
}

// Direction says which way a metric should move.
type Direction string

const (
	// LowerIsBetter marks latencies, counts, conflict ratios.
	LowerIsBetter Direction = "lower"
	// HigherIsBetter marks throughputs and hit ratios.
	HigherIsBetter Direction = "higher"
)

// Metric is one named measurement in a Summary.
type Metric struct {
	// Unit is for display only (ms, ixn/s, rt/ixn, B/ixn, "").
	Unit string `json:"unit,omitempty"`
	// Kind decides tolerance semantics and baseline stability.
	Kind Kind `json:"kind"`
	// Better is the improvement direction.
	Better Direction `json:"better"`
	// Mean is the headline value.
	Mean float64 `json:"mean"`
	// N is how many raw observations fed the metric.
	N int `json:"n,omitempty"`
	// Samples are batch means (or per-point values) when available;
	// two summaries that both carry samples are compared with a Welch
	// two-sample test instead of tolerance alone.
	Samples []float64 `json:"samples,omitempty"`
}

// Summary is one run's canonical machine-readable result set.
type Summary struct {
	// Schema is SchemaV2 for new runs; Load also accepts SchemaV1.
	Schema string `json:"schema"`
	// CreatedAt is when the run finished, RFC3339 (informational).
	CreatedAt string `json:"created_at,omitempty"`
	// Args echoes the command line that produced the run.
	Args []string `json:"args,omitempty"`
	// Metrics maps metric name to measurement. Names are dotted paths
	// (latency.es-rdb.d0ms.mean_ms, wire.es-rdb.rts_per_interaction);
	// OBSERVABILITY.md documents the namespace.
	Metrics map[string]Metric `json:"metrics"`
}

// Names returns the metric names in sorted order.
func (s *Summary) Names() []string {
	out := make([]string, 0, len(s.Metrics))
	for name := range s.Metrics {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Load reads a Summary from path, which may be the summary.json itself,
// a run directory containing one, or an artifact root of run-* children
// (the newest run with a summary is used — run directory names embed
// their timestamp, so lexical order is chronological).
func Load(path string) (*Summary, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("regress: %w", err)
	}
	file := path
	if fi.IsDir() {
		file, err = resolveDir(path)
		if err != nil {
			return nil, err
		}
	}
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, fmt.Errorf("regress: %w", err)
	}
	var s Summary
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("regress: parse %s: %w", file, err)
	}
	if s.Schema != SchemaV1 && s.Schema != SchemaV2 {
		return nil, fmt.Errorf("regress: %s: schema %q, want %q or %q", file, s.Schema, SchemaV1, SchemaV2)
	}
	if s.Metrics == nil {
		s.Metrics = map[string]Metric{}
	}
	return &s, nil
}

// resolveDir finds the summary.json under an artifact directory.
func resolveDir(dir string) (string, error) {
	direct := filepath.Join(dir, SummaryFile)
	if _, err := os.Stat(direct); err == nil {
		return direct, nil
	}
	runs, err := filepath.Glob(filepath.Join(dir, "run-*", SummaryFile))
	if err != nil || len(runs) == 0 {
		return "", fmt.Errorf("regress: no %s under %s (looked for %s and run-*/%s)",
			SummaryFile, dir, direct, SummaryFile)
	}
	sort.Strings(runs)
	return runs[len(runs)-1], nil
}

// Save writes the summary as indented JSON to path, creating parent
// directories as needed.
func Save(path string, s *Summary) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("regress: %w", err)
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("regress: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

package sqlstore

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"edgeejb/internal/memento"
	"edgeejb/internal/obs"
)

// TestConflictAttribution drives the classic first-committer-wins race
// and asserts the loser's error names the conflicting key, the winner's
// trace, and both versions — the raw material of the conflict forensics.
func TestConflictAttribution(t *testing.T) {
	s := New()
	defer s.Close()
	s.Seed(mem("t", "x", 0, intFields(1))) // version 1
	key := memento.Key{Table: "t", ID: "x"}

	winnerCtx, winnerTrace := obs.WithNewTrace(context.Background())
	loserCtx, _ := obs.WithNewTrace(context.Background())

	// Both read version 1; the winner commits first.
	before := time.Now()
	winRes, err := s.ApplyCommitSet(winnerCtx, memento.CommitSet{
		Writes: []memento.Memento{mem("t", "x", 1, intFields(2))},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.ApplyCommitSet(loserCtx, memento.CommitSet{
		Writes: []memento.Memento{mem("t", "x", 1, intFields(3))},
	})
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("loser: got %v, want ErrConflict", err)
	}
	var ce *ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("loser error %T does not unwrap to *ConflictError", err)
	}
	if ce.Key != key {
		t.Errorf("conflict key = %v, want %v", ce.Key, key)
	}
	if ce.Expected != 1 || ce.Actual != 2 {
		t.Errorf("versions = (expected %d, actual %d), want (1, 2)", ce.Expected, ce.Actual)
	}
	if ce.WinnerTrace != winnerTrace {
		t.Errorf("winner trace = %d, want %d", ce.WinnerTrace, winnerTrace)
	}
	if ce.WinnerTx != winRes.TxID {
		t.Errorf("winner tx = %d, want %d", ce.WinnerTx, winRes.TxID)
	}
	if ce.CommittedAt.Before(before) || ce.CommittedAt.After(time.Now()) {
		t.Errorf("winner commit time %v outside test window", ce.CommittedAt)
	}
	if !strings.Contains(ce.Error(), ErrConflict.Error()) || ce.Detail == "" {
		t.Errorf("Error() = %q, Detail = %q", ce.Error(), ce.Detail)
	}
}

// TestConflictAttributionStaleRead covers the read-proof path: a stale
// read proof (not a write-write race) must also attribute the winner.
func TestConflictAttributionStaleRead(t *testing.T) {
	s := New()
	defer s.Close()
	s.Seed(mem("t", "x", 0, intFields(1)))

	winnerCtx, winnerTrace := obs.WithNewTrace(context.Background())
	if _, err := s.ApplyCommitSet(winnerCtx, memento.CommitSet{
		Writes: []memento.Memento{mem("t", "x", 1, intFields(2))},
	}); err != nil {
		t.Fatal(err)
	}

	_, err := s.ApplyCommitSet(context.Background(), memento.CommitSet{
		Reads: []memento.ReadProof{{Key: memento.Key{Table: "t", ID: "x"}, Version: 1}},
	})
	var ce *ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want *ConflictError", err)
	}
	if ce.WinnerTrace != winnerTrace {
		t.Errorf("winner trace = %d, want %d", ce.WinnerTrace, winnerTrace)
	}
}

// TestConflictWithoutKnownWinner: a conflict against state the store
// never saw committed (a seeded row) carries zero attribution rather
// than a bogus one.
func TestConflictWithoutKnownWinner(t *testing.T) {
	s := New()
	defer s.Close()
	s.Seed(mem("t", "x", 0, intFields(1)))

	_, err := s.ApplyCommitSet(context.Background(), memento.CommitSet{
		Reads: []memento.ReadProof{{Key: memento.Key{Table: "t", ID: "x"}, Version: 9}},
	})
	var ce *ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want *ConflictError", err)
	}
	if ce.WinnerTrace != 0 || ce.WinnerTx != 0 || !ce.CommittedAt.IsZero() {
		t.Errorf("seeded-row conflict carries attribution: %+v", ce)
	}
}

// TestNoticeStamping asserts commit notices carry the origin commit time
// and trace, the inputs to the edge's invalidation-latency histogram.
func TestNoticeStamping(t *testing.T) {
	s := New()
	defer s.Close()
	s.Seed(mem("t", "a", 0, intFields(1)))

	ch, cancel := s.Subscribe(8)
	defer cancel()

	ctx, trace := obs.WithNewTrace(context.Background())
	before := time.Now()
	if _, err := s.ApplyCommitSet(ctx, memento.CommitSet{
		Writes: []memento.Memento{mem("t", "a", 1, intFields(2))},
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-ch:
		if n.OriginTrace != trace {
			t.Errorf("notice origin trace = %d, want %d", n.OriginTrace, trace)
		}
		if n.CommittedAt.Before(before) || n.CommittedAt.After(time.Now()) {
			t.Errorf("notice commit time %v outside test window", n.CommittedAt)
		}
	case <-time.After(time.Second):
		t.Fatal("no notice delivered")
	}
}

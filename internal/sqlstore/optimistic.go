package sqlstore

import (
	"context"
	"fmt"

	"edgeejb/internal/memento"
	"edgeejb/internal/obs"
)

// ApplyResult reports the outcome of an optimistic commit.
type ApplyResult struct {
	// TxID is the internal datastore transaction that applied the set.
	TxID uint64
	// TxIDs lists every participating transaction when the set committed
	// across several shards (one per participant store). Single-store
	// commits leave it nil; TxID alone identifies the commit. It never
	// crosses the wire — the shard router fills it in edge-side from the
	// per-participant responses.
	TxIDs []uint64
	// NewVersions maps every written or created key to its new row
	// version, so callers (edge caches) can refresh their copies instead
	// of invalidating them.
	NewVersions map[memento.Key]uint64
}

// ApplyCommitSet validates and applies an optimistic transaction's
// commit set atomically: every read proof must still hold (the row is at
// the recorded version, or still absent), every create key must be
// absent, every remove target must still exist at its recorded version.
// On any violation the whole set is rejected with ErrConflict and the
// store is unchanged.
//
// This is the "optimistic commit logic" that runs on the back-end server
// in the split-servers configuration, and directly inside the database
// tier for combined-servers commits; in the latter case the edge server
// instead drives the same validation statement-by-statement over the
// wire (Tx.CheckVersion / Tx.CheckedPut / Tx.CheckedDelete), paying one
// round trip per memento image.
func (s *Store) ApplyCommitSet(ctx context.Context, cs memento.CommitSet) (ApplyResult, error) {
	ctx, sp := obs.StartSpan(ctx, "sqlstore.apply")
	defer sp.End()
	res, notice, err := s.applyOneDeferred(ctx, cs)
	if err != nil {
		return ApplyResult{}, err
	}
	s.broadcast(notice)
	return res, nil
}

// ApplySetResult is one commit set's outcome within a grouped apply.
type ApplySetResult struct {
	Res ApplyResult
	Err error
}

// ApplyCommitSets validates and applies several independent commit sets
// in one pass — the backend's group commit. Sets apply in slice order,
// each as its own atomic transaction validating against the state the
// earlier sets left behind, so an intra-batch conflict is attributed to
// the earlier set's transaction exactly as if the sets had arrived
// serially: the loser's ConflictError names the winner's tx and trace.
// One set's rejection never poisons the others (per-set Err), and all
// invalidation notices fan out in a single subscriber pass after the
// last set applies.
func (s *Store) ApplyCommitSets(ctx context.Context, sets []memento.CommitSet) []ApplySetResult {
	ctx, sp := obs.StartSpan(ctx, "sqlstore.apply_group")
	defer sp.End()
	out := make([]ApplySetResult, len(sets))
	notices := make([]Notice, 0, len(sets))
	for i := range sets {
		res, notice, err := s.applyOneDeferred(ctx, sets[i])
		out[i] = ApplySetResult{Res: res, Err: err}
		if err == nil {
			notices = append(notices, notice)
		}
	}
	s.broadcastAll(notices)
	return out
}

// applyOneDeferred runs one commit set's validate-and-apply, returning
// the invalidation notice instead of broadcasting it — the caller
// decides whether to fan out immediately (single apply) or batch the
// fan-out (group commit).
func (s *Store) applyOneDeferred(ctx context.Context, cs memento.CommitSet) (ApplyResult, Notice, error) {
	tx, err := s.Begin(ctx)
	if err != nil {
		return ApplyResult{}, Notice{}, err
	}
	res, err := s.applyCommitSetTx(ctx, tx, cs)
	if err != nil {
		tx.Abort()
		s.stats.optFail.Add(1)
		obsOptConflicts.Inc()
		return ApplyResult{}, Notice{}, err
	}
	s.serveCommit(1)
	notice, err := tx.commit()
	if err != nil {
		return ApplyResult{}, Notice{}, err
	}
	s.stats.optOK.Add(1)
	obsOptCommits.Inc()
	res.TxID = tx.ID()
	return res, notice, nil
}

func (s *Store) applyCommitSetTx(ctx context.Context, tx *Tx, cs memento.CommitSet) (ApplyResult, error) {
	// Validate reads first: cheapest failures first, and reads take only
	// shared locks.
	for _, r := range cs.Reads {
		want := r.Version
		if r.Absent {
			want = 0
		}
		if err := tx.CheckVersion(ctx, r.Key, want); err != nil {
			return ApplyResult{}, err
		}
	}
	newVersions := make(map[memento.Key]uint64, len(cs.Writes)+len(cs.Creates))
	for _, w := range cs.Writes {
		if err := tx.CheckedPut(ctx, w); err != nil {
			return ApplyResult{}, err
		}
		newVersions[w.Key] = w.Version + 1
	}
	for _, c := range cs.Creates {
		create := c
		create.Version = 0 // creates must observe key absence
		if err := tx.CheckedPut(ctx, create); err != nil {
			return ApplyResult{}, err
		}
		newVersions[c.Key] = 1
	}
	for _, r := range cs.Removes {
		if r.Version == 0 {
			return ApplyResult{}, fmt.Errorf("%w: remove of never-persisted %s", ErrConflict, r.Key)
		}
		if err := tx.CheckedDelete(ctx, r.Key, r.Version); err != nil {
			return ApplyResult{}, err
		}
	}
	return ApplyResult{NewVersions: newVersions}, nil
}

package sqlstore

import (
	"time"

	"edgeejb/internal/memento"
)

// ConflictError is the attributed form of ErrConflict: an optimistic
// validation failure that names the first conflicting key and, when the
// store still remembers it, the transaction that won the race. Edge
// caches use it to emit forensic conflict events that pair the loser's
// trace with the winner's, so a single abort can be followed across
// tiers from both sides.
//
// errors.Is(err, ErrConflict) remains true for a ConflictError, so
// existing retry/abort logic is unaffected.
type ConflictError struct {
	// Key is the first row whose validation failed.
	Key memento.Key
	// Expected is the version the loser read; Actual is the committed
	// version found at validation (zero when the row was removed, or when
	// the conflict is existence-based rather than version-based).
	Expected, Actual uint64
	// WinnerTx and WinnerTrace identify the last transaction that wrote
	// Key, when the store still remembers it (zero otherwise). WinnerTrace
	// is the trace ID the winner's Begin context carried.
	WinnerTx, WinnerTrace uint64
	// CommittedAt is when the winner's write was installed (zero when
	// unknown).
	CommittedAt time.Time
	// Detail is the human-readable tail of the message, matching the
	// plain-error text this type replaced.
	Detail string
}

func (e *ConflictError) Error() string { return ErrConflict.Error() + ": " + e.Detail }

func (e *ConflictError) Unwrap() error { return ErrConflict }

// writerInfo remembers the last committed writer of a row for conflict
// attribution.
type writerInfo struct {
	txID  uint64
	trace uint64
	at    time.Time
}

// lastWriter looks up the most recent committed writer of key.
func (s *Store) lastWriter(key memento.Key) (writerInfo, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	w, ok := s.writers[key]
	return w, ok
}

// conflictErr builds an attributed conflict error for key, filling the
// winner's identity from the store's last-writer table.
func (s *Store) conflictErr(key memento.Key, expected, actual uint64, detail string) *ConflictError {
	e := &ConflictError{Key: key, Expected: expected, Actual: actual, Detail: detail}
	if w, ok := s.lastWriter(key); ok {
		e.WinnerTx = w.txID
		e.WinnerTrace = w.trace
		e.CommittedAt = w.at
	}
	return e
}

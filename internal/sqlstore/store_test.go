package sqlstore

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"edgeejb/internal/memento"
)

func mem(table, id string, version uint64, fields memento.Fields) memento.Memento {
	return memento.Memento{
		Key:     memento.Key{Table: table, ID: id},
		Version: version,
		Fields:  fields,
	}
}

func intFields(v int64) memento.Fields { return memento.Fields{"v": memento.Int(v)} }

func mustBegin(t *testing.T, s *Store) *Tx {
	t.Helper()
	tx, err := s.Begin(context.Background())
	if err != nil {
		t.Fatalf("begin: %v", err)
	}
	return tx
}

func TestSeedAndGet(t *testing.T) {
	s := New()
	defer s.Close()
	s.Seed(mem("t", "1", 0, intFields(10)))

	tx := mustBegin(t, s)
	defer tx.Abort()
	m, err := tx.Get(context.Background(), "t", "1")
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != 1 {
		t.Errorf("seeded version = %d, want 1", m.Version)
	}
	if m.Fields["v"].Int != 10 {
		t.Errorf("field v = %d, want 10", m.Fields["v"].Int)
	}
}

func TestGetNotFound(t *testing.T) {
	s := New()
	defer s.Close()
	tx := mustBegin(t, s)
	defer tx.Abort()
	if _, err := tx.Get(context.Background(), "t", "missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expected ErrNotFound, got %v", err)
	}
}

func TestPutCommitBumpsVersion(t *testing.T) {
	s := New()
	defer s.Close()
	ctx := context.Background()
	s.Seed(mem("t", "1", 0, intFields(1)))

	for want := uint64(2); want <= 4; want++ {
		tx := mustBegin(t, s)
		if err := tx.Put(ctx, mem("t", "1", 0, intFields(int64(want)))); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		v, err := s.CurrentVersion(memento.Key{Table: "t", ID: "1"})
		if err != nil {
			t.Fatal(err)
		}
		if v != want {
			t.Fatalf("version = %d, want %d", v, want)
		}
	}
}

func TestWritesInvisibleUntilCommit(t *testing.T) {
	s := New(WithLockTimeout(50 * time.Millisecond))
	defer s.Close()
	ctx := context.Background()
	s.Seed(mem("t", "1", 0, intFields(1)))

	writer := mustBegin(t, s)
	if err := writer.Put(ctx, mem("t", "1", 0, intFields(2))); err != nil {
		t.Fatal(err)
	}
	// Writer sees its own buffered write.
	m, err := writer.Get(ctx, "t", "1")
	if err != nil {
		t.Fatal(err)
	}
	if m.Fields["v"].Int != 2 {
		t.Errorf("writer sees v=%d, want its own write 2", m.Fields["v"].Int)
	}
	// A concurrent reader blocks on the X lock (no dirty reads) and
	// times out.
	reader := mustBegin(t, s)
	defer reader.Abort()
	if _, err := reader.Get(ctx, "t", "1"); !errors.Is(err, ErrConflict) {
		t.Fatalf("expected lock-timeout conflict, got %v", err)
	}
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}
	reader2 := mustBegin(t, s)
	defer reader2.Abort()
	m, err = reader2.Get(ctx, "t", "1")
	if err != nil {
		t.Fatal(err)
	}
	if m.Fields["v"].Int != 2 {
		t.Errorf("after commit v=%d, want 2", m.Fields["v"].Int)
	}
}

func TestAbortDiscardsWrites(t *testing.T) {
	s := New()
	defer s.Close()
	ctx := context.Background()
	s.Seed(mem("t", "1", 0, intFields(1)))

	tx := mustBegin(t, s)
	if err := tx.Put(ctx, mem("t", "1", 0, intFields(99))); err != nil {
		t.Fatal(err)
	}
	tx.Abort()

	tx2 := mustBegin(t, s)
	defer tx2.Abort()
	m, err := tx2.Get(ctx, "t", "1")
	if err != nil {
		t.Fatal(err)
	}
	if m.Fields["v"].Int != 1 {
		t.Errorf("after abort v=%d, want 1", m.Fields["v"].Int)
	}
}

func TestInsertSemantics(t *testing.T) {
	s := New()
	defer s.Close()
	ctx := context.Background()
	s.Seed(mem("t", "exists", 0, intFields(1)))

	tx := mustBegin(t, s)
	defer tx.Abort()
	if err := tx.Insert(ctx, mem("t", "exists", 0, intFields(2))); !errors.Is(err, ErrExists) {
		t.Fatalf("insert over committed row: got %v, want ErrExists", err)
	}
	if err := tx.Insert(ctx, mem("t", "new", 0, intFields(3))); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(ctx, mem("t", "new", 0, intFields(4))); !errors.Is(err, ErrExists) {
		t.Fatalf("insert over buffered insert: got %v, want ErrExists", err)
	}
	// Delete-then-insert in one transaction is allowed.
	if err := tx.Delete(ctx, "t", "exists"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(ctx, mem("t", "exists", 0, intFields(5))); err != nil {
		t.Fatalf("insert after delete: %v", err)
	}
}

func TestDeleteSemantics(t *testing.T) {
	s := New()
	defer s.Close()
	ctx := context.Background()
	s.Seed(mem("t", "1", 0, intFields(1)))

	tx := mustBegin(t, s)
	if err := tx.Delete(ctx, "t", "missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete missing: got %v, want ErrNotFound", err)
	}
	if err := tx.Delete(ctx, "t", "1"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Get(ctx, "t", "1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after buffered delete: got %v, want ErrNotFound", err)
	}
	if err := tx.Delete(ctx, "t", "1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: got %v, want ErrNotFound", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if s.RowCount("t") != 0 {
		t.Error("row survived committed delete")
	}
}

func TestQueryWithBufferedWrites(t *testing.T) {
	s := New()
	defer s.Close()
	ctx := context.Background()
	s.Seed(
		mem("h", "1", 0, memento.Fields{"acct": memento.String("u1")}),
		mem("h", "2", 0, memento.Fields{"acct": memento.String("u1")}),
		mem("h", "3", 0, memento.Fields{"acct": memento.String("u2")}),
	)
	q := memento.Query{
		Table: "h",
		Where: []memento.Predicate{memento.Where("acct", memento.String("u1"))},
	}

	tx := mustBegin(t, s)
	defer tx.Abort()
	// Delete one match, update another out of the result set, insert a
	// fresh match.
	if err := tx.Delete(ctx, "h", "1"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Put(ctx, mem("h", "2", 0, memento.Fields{"acct": memento.String("u9")})); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(ctx, mem("h", "4", 0, memento.Fields{"acct": memento.String("u1")})); err != nil {
		t.Fatal(err)
	}
	got, err := tx.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Key.ID != "4" {
		t.Fatalf("query = %v, want only h/4", got)
	}
}

func TestQueryLimitAndOrder(t *testing.T) {
	s := New()
	defer s.Close()
	ctx := context.Background()
	for i := 9; i >= 0; i-- {
		s.Seed(mem("t", fmt.Sprintf("%02d", i), 0, intFields(int64(i))))
	}
	tx := mustBegin(t, s)
	defer tx.Abort()
	got, err := tx.Query(ctx, memento.Query{Table: "t", Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("limit ignored: %d rows", len(got))
	}
	for i, m := range got {
		if want := fmt.Sprintf("%02d", i); m.Key.ID != want {
			t.Errorf("row %d = %s, want %s (sorted)", i, m.Key.ID, want)
		}
	}
}

func TestQueryBlocksConcurrentWriter(t *testing.T) {
	s := New(WithLockTimeout(50 * time.Millisecond))
	defer s.Close()
	ctx := context.Background()
	s.Seed(mem("t", "1", 0, intFields(1)))

	q := mustBegin(t, s)
	defer q.Abort()
	if _, err := q.Query(ctx, memento.Query{Table: "t"}); err != nil {
		t.Fatal(err)
	}
	// A writer needs table IX, incompatible with the query's table S:
	// phantom protection for pessimistic transactions.
	w := mustBegin(t, s)
	defer w.Abort()
	if err := w.Insert(ctx, mem("t", "2", 0, intFields(2))); !errors.Is(err, ErrConflict) {
		t.Fatalf("expected writer to block on table lock, got %v", err)
	}
}

func TestTxDoneSemantics(t *testing.T) {
	s := New()
	defer s.Close()
	ctx := context.Background()
	tx := mustBegin(t, s)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("double commit: got %v", err)
	}
	if _, err := tx.Get(ctx, "t", "1"); !errors.Is(err, ErrTxDone) {
		t.Fatalf("get after commit: got %v", err)
	}
	tx.Abort() // must be a no-op, not a panic
}

func TestLocksReleasedOnCommitAndAbort(t *testing.T) {
	s := New(WithLockTimeout(50 * time.Millisecond))
	defer s.Close()
	ctx := context.Background()
	s.Seed(mem("t", "1", 0, intFields(1)))

	tx1 := mustBegin(t, s)
	if _, err := tx1.GetForUpdate(ctx, "t", "1"); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := mustBegin(t, s)
	if _, err := tx2.GetForUpdate(ctx, "t", "1"); err != nil {
		t.Fatalf("lock leaked past commit: %v", err)
	}
	tx2.Abort()
	tx3 := mustBegin(t, s)
	defer tx3.Abort()
	if _, err := tx3.GetForUpdate(ctx, "t", "1"); err != nil {
		t.Fatalf("lock leaked past abort: %v", err)
	}
}

func TestCheckVersion(t *testing.T) {
	s := New()
	defer s.Close()
	ctx := context.Background()
	s.Seed(mem("t", "1", 0, intFields(1))) // version 1

	tx := mustBegin(t, s)
	defer tx.Abort()
	key := memento.Key{Table: "t", ID: "1"}
	if err := tx.CheckVersion(ctx, key, 1); err != nil {
		t.Errorf("matching version: %v", err)
	}
	if err := tx.CheckVersion(ctx, key, 2); !errors.Is(err, ErrConflict) {
		t.Errorf("stale version: got %v, want ErrConflict", err)
	}
	if err := tx.CheckVersion(ctx, key, 0); !errors.Is(err, ErrConflict) {
		t.Errorf("absence proof over existing row: got %v, want ErrConflict", err)
	}
	missing := memento.Key{Table: "t", ID: "nope"}
	if err := tx.CheckVersion(ctx, missing, 0); err != nil {
		t.Errorf("absence proof over missing row: %v", err)
	}
	if err := tx.CheckVersion(ctx, missing, 1); !errors.Is(err, ErrConflict) {
		t.Errorf("existence proof over missing row: got %v, want ErrConflict", err)
	}
}

func TestCheckedPutAndDelete(t *testing.T) {
	s := New()
	defer s.Close()
	ctx := context.Background()
	s.Seed(mem("t", "1", 0, intFields(1))) // version 1
	key := memento.Key{Table: "t", ID: "1"}

	// Stale write rejected.
	tx := mustBegin(t, s)
	if err := tx.CheckedPut(ctx, mem("t", "1", 99, intFields(2))); !errors.Is(err, ErrConflict) {
		t.Fatalf("stale CheckedPut: got %v", err)
	}
	tx.Abort()

	// Current write accepted; version bumps.
	tx = mustBegin(t, s)
	if err := tx.CheckedPut(ctx, mem("t", "1", 1, intFields(2))); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.CurrentVersion(key); v != 2 {
		t.Fatalf("version = %d, want 2", v)
	}

	// Checked insert (version 0) over existing row rejected.
	tx = mustBegin(t, s)
	if err := tx.CheckedPut(ctx, mem("t", "1", 0, intFields(3))); !errors.Is(err, ErrConflict) {
		t.Fatalf("checked insert over row: got %v", err)
	}
	tx.Abort()

	// Checked delete with stale version rejected; with current version
	// applied.
	tx = mustBegin(t, s)
	if err := tx.CheckedDelete(ctx, key, 1); !errors.Is(err, ErrConflict) {
		t.Fatalf("stale CheckedDelete: got %v", err)
	}
	tx.Abort()
	tx = mustBegin(t, s)
	if err := tx.CheckedDelete(ctx, key, 2); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if s.RowCount("t") != 0 {
		t.Error("checked delete did not remove row")
	}
}

func TestClosedStore(t *testing.T) {
	s := New()
	s.Close()
	s.Close() // idempotent
	if _, err := s.Begin(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("begin on closed store: got %v", err)
	}
}

func TestStatsCounting(t *testing.T) {
	s := New()
	defer s.Close()
	ctx := context.Background()
	s.Seed(mem("t", "1", 0, intFields(1)))

	tx := mustBegin(t, s)
	_, _ = tx.Get(ctx, "t", "1")
	_ = tx.Put(ctx, mem("t", "1", 0, intFields(2)))
	_, _ = tx.Query(ctx, memento.Query{Table: "t"})
	_ = tx.Commit()

	st := s.Stats()
	if st.Begins != 1 || st.Commits != 1 || st.Gets != 1 || st.Puts != 1 || st.Queries != 1 {
		t.Errorf("unexpected stats: %+v", st)
	}
	if st.RowsLive != 1 || st.TablesLive != 1 {
		t.Errorf("unexpected gauges: %+v", st)
	}
}

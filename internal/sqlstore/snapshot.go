package sqlstore

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sort"

	"edgeejb/internal/memento"
)

// Snapshots give the database server process (cmd/dbserverd) durability
// across restarts: the full committed state — rows with their versions,
// plus index definitions — is serialized with encoding/gob. A snapshot
// is a point-in-time copy taken under the store mutex, so it is always
// transactionally consistent; in-flight transactions are excluded (their
// buffered writes are not committed state).

// snapshotHeader identifies the format.
const snapshotMagic = "edgeejb-sqlstore-v1"

// snapshot is the on-disk representation.
type snapshot struct {
	Magic  string
	Tables []snapshotTable
}

type snapshotTable struct {
	Name    string
	Indexes []string
	Rows    []memento.Memento
}

// Dump writes a consistent snapshot of the committed state to w.
func (s *Store) Dump(w io.Writer) error {
	snap := s.capture()
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("sqlstore: encode snapshot: %w", err)
	}
	return nil
}

// capture builds the snapshot under the store mutex.
func (s *Store) capture() snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	snap := snapshot{Magic: snapshotMagic}
	names := make([]string, 0, len(s.tables))
	for name := range s.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := s.tables[name]
		st := snapshotTable{Name: name}
		for field := range t.indexes {
			st.Indexes = append(st.Indexes, field)
		}
		sort.Strings(st.Indexes)
		ids := make([]string, 0, len(t.rows))
		for id := range t.rows {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			st.Rows = append(st.Rows, t.rows[id].Clone())
		}
		snap.Tables = append(snap.Tables, st)
	}
	return snap
}

// Restore replaces the store's committed state with a snapshot read from
// r. It must be called before the store is shared (no locking against
// concurrent transactions is attempted; the caller owns the store).
// Row versions are restored exactly, so optimistic caches built against
// the pre-snapshot store remain coherent.
func (s *Store) Restore(r io.Reader) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("sqlstore: decode snapshot: %w", err)
	}
	if snap.Magic != snapshotMagic {
		return fmt.Errorf("sqlstore: not a snapshot (magic %q)", snap.Magic)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.tables = make(map[string]*table, len(snap.Tables))
	for _, st := range snap.Tables {
		t := newTable()
		s.tables[st.Name] = t
		for _, field := range st.Indexes {
			t.indexes[field] = newIndex(field)
		}
		for _, m := range st.Rows {
			row := m.Clone()
			t.rows[row.Key.ID] = row
			for _, ix := range t.indexes {
				ix.insert(row.Key.ID, row.Fields)
			}
		}
	}
	return nil
}

// DumpFile writes a snapshot atomically: to a temporary file first,
// renamed over path on success.
func (s *Store) DumpFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("sqlstore: snapshot file: %w", err)
	}
	if err := s.Dump(f); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("sqlstore: close snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("sqlstore: install snapshot: %w", err)
	}
	return nil
}

// RestoreFile loads a snapshot from path.
func (s *Store) RestoreFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("sqlstore: open snapshot: %w", err)
	}
	defer f.Close()
	return s.Restore(f)
}

package sqlstore

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"edgeejb/internal/memento"
)

func acctRow(id, acct string, qty int64) memento.Memento {
	return memento.Memento{
		Key: memento.Key{Table: "h", ID: id},
		Fields: memento.Fields{
			"acct": memento.String(acct),
			"qty":  memento.Int(qty),
		},
	}
}

func acctQuery(acct string) memento.Query {
	return memento.Query{
		Table: "h",
		Where: []memento.Predicate{memento.Where("acct", memento.String(acct))},
	}
}

func queryAll(t *testing.T, s *Store, q memento.Query) []memento.Memento {
	t.Helper()
	tx := mustBegin(t, s)
	defer tx.Abort()
	out, err := tx.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestIndexProbeMatchesScan(t *testing.T) {
	s := New()
	defer s.Close()
	for i := 0; i < 30; i++ {
		s.Seed(acctRow(fmt.Sprintf("%02d", i), fmt.Sprintf("u%d", i%5), int64(i)))
	}
	scan := queryAll(t, s, acctQuery("u3"))

	if err := s.CreateIndex("h", "acct"); err != nil {
		t.Fatal(err)
	}
	probed := queryAll(t, s, acctQuery("u3"))
	if !reflect.DeepEqual(scan, probed) {
		t.Fatalf("indexed result differs:\nscan:  %v\nprobe: %v", scan, probed)
	}
	st := s.Stats()
	if st.IndexProbes == 0 {
		t.Error("query after CreateIndex did not probe the index")
	}
}

func TestIndexMaintainedAcrossCommits(t *testing.T) {
	s := New()
	defer s.Close()
	ctx := context.Background()
	if err := s.CreateIndex("h", "acct"); err != nil {
		t.Fatal(err)
	}
	s.Seed(acctRow("1", "a", 1), acctRow("2", "a", 2), acctRow("3", "b", 3))

	tx := mustBegin(t, s)
	// Move row 1 from account a to b; delete row 2; insert row 4 in a.
	if err := tx.Put(ctx, acctRow("1", "b", 1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete(ctx, "h", "2"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(ctx, acctRow("4", "a", 4)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	gotA := queryAll(t, s, acctQuery("a"))
	if len(gotA) != 1 || gotA[0].Key.ID != "4" {
		t.Fatalf("account a after commit = %v, want only h/4", gotA)
	}
	gotB := queryAll(t, s, acctQuery("b"))
	if len(gotB) != 2 || gotB[0].Key.ID != "1" || gotB[1].Key.ID != "3" {
		t.Fatalf("account b after commit = %v, want h/1 and h/3", gotB)
	}
}

func TestIndexInvisibleToUncommittedWrites(t *testing.T) {
	s := New()
	defer s.Close()
	ctx := context.Background()
	if err := s.CreateIndex("h", "acct"); err != nil {
		t.Fatal(err)
	}
	s.Seed(acctRow("1", "a", 1))

	tx := mustBegin(t, s)
	defer tx.Abort()
	if err := tx.Put(ctx, acctRow("1", "b", 1)); err != nil {
		t.Fatal(err)
	}
	// The writer's own query sees the buffered move (via overlay)...
	got, err := tx.Query(ctx, acctQuery("b"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("own buffered write invisible to indexed query: %v", got)
	}
	got, err = tx.Query(ctx, acctQuery("a"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("moved-away row still returned: %v", got)
	}
}

func TestCreateIndexValidation(t *testing.T) {
	s := New()
	defer s.Close()
	if err := s.CreateIndex("", "f"); err == nil {
		t.Error("empty table accepted")
	}
	if err := s.CreateIndex("t", ""); err == nil {
		t.Error("empty field accepted")
	}
	if err := s.CreateIndex("t", "f"); err != nil {
		t.Errorf("index on empty table: %v", err)
	}
	if err := s.CreateIndex("t", "f"); err != nil {
		t.Errorf("duplicate CreateIndex should be a no-op: %v", err)
	}
	got := s.Indexes("t")
	if len(got) != 1 || got[0] != "f" {
		t.Errorf("Indexes = %v", got)
	}
	s.Close()
	if err := s.CreateIndex("t", "g"); err != ErrClosed {
		t.Errorf("CreateIndex on closed store: %v", err)
	}
}

func TestIndexDistinguishesValueKinds(t *testing.T) {
	s := New()
	defer s.Close()
	if err := s.CreateIndex("t", "v"); err != nil {
		t.Fatal(err)
	}
	s.Seed(
		memento.Memento{Key: memento.Key{Table: "t", ID: "int"}, Fields: memento.Fields{"v": memento.Int(1)}},
		memento.Memento{Key: memento.Key{Table: "t", ID: "float"}, Fields: memento.Fields{"v": memento.Float(1)}},
		memento.Memento{Key: memento.Key{Table: "t", ID: "str"}, Fields: memento.Fields{"v": memento.String("1")}},
	)
	got := queryAll(t, s, memento.Query{
		Table: "t",
		Where: []memento.Predicate{memento.Where("v", memento.Int(1))},
	})
	if len(got) != 1 || got[0].Key.ID != "int" {
		t.Fatalf("kind collision: %v", got)
	}
}

// Property: for random data and random equality queries, the indexed
// store and an unindexed store return identical results.
func TestIndexEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		plain := New()
		defer plain.Close()
		indexed := New()
		defer indexed.Close()
		if err := indexed.CreateIndex("h", "acct"); err != nil {
			return false
		}
		n := 1 + rng.Intn(40)
		for i := 0; i < n; i++ {
			row := acctRow(fmt.Sprintf("%03d", i), fmt.Sprintf("u%d", rng.Intn(6)), rng.Int63n(100))
			plain.Seed(row)
			indexed.Seed(row)
		}
		ctx := context.Background()
		for probe := 0; probe < 3; probe++ {
			q := acctQuery(fmt.Sprintf("u%d", rng.Intn(6)))
			txP, _ := plain.Begin(ctx)
			wantRows, err := txP.Query(ctx, q)
			txP.Abort()
			if err != nil {
				return false
			}
			txI, _ := indexed.Begin(ctx)
			gotRows, err := txI.Query(ctx, q)
			txI.Abort()
			if err != nil {
				return false
			}
			if !reflect.DeepEqual(wantRows, gotRows) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQueryOrderBy(t *testing.T) {
	s := New()
	defer s.Close()
	s.Seed(
		acctRow("1", "a", 30),
		acctRow("2", "a", 10),
		acctRow("3", "a", 20),
	)
	q := acctQuery("a")
	q.OrderBy = "qty"
	got := queryAll(t, s, q)
	ids := []string{got[0].Key.ID, got[1].Key.ID, got[2].Key.ID}
	if !reflect.DeepEqual(ids, []string{"2", "3", "1"}) {
		t.Fatalf("ascending order = %v", ids)
	}
	q.Desc = true
	got = queryAll(t, s, q)
	ids = []string{got[0].Key.ID, got[1].Key.ID, got[2].Key.ID}
	if !reflect.DeepEqual(ids, []string{"1", "3", "2"}) {
		t.Fatalf("descending order = %v", ids)
	}
	q.Limit = 1
	got = queryAll(t, s, q)
	if len(got) != 1 || got[0].Key.ID != "1" {
		t.Fatalf("order+limit = %v", got)
	}
}

// TestOrderByWithIndex: ordering applies after an index probe too.
func TestOrderByWithIndex(t *testing.T) {
	s := New()
	defer s.Close()
	if err := s.CreateIndex("h", "acct"); err != nil {
		t.Fatal(err)
	}
	s.Seed(acctRow("1", "a", 3), acctRow("2", "a", 1), acctRow("3", "b", 2))
	q := acctQuery("a")
	q.OrderBy = "qty"
	got := queryAll(t, s, q)
	if len(got) != 2 || got[0].Key.ID != "2" || got[1].Key.ID != "1" {
		t.Fatalf("indexed ordered query = %v", got)
	}
}

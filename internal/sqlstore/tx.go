package sqlstore

import (
	"context"
	"errors"
	"fmt"

	"edgeejb/internal/lockmgr"
	"edgeejb/internal/memento"
	"edgeejb/internal/obs"
)

// pendingWrite is a buffered mutation applied at commit.
type pendingWrite struct {
	mem    memento.Memento
	remove bool
}

// Tx is a pessimistic, strict-two-phase-locking transaction. All methods
// must be called from a single goroutine. Locks are held until Commit or
// Abort; writes are buffered and installed atomically at commit.
type Tx struct {
	s      *Store
	id     lockmgr.Owner
	trace  uint64
	writes map[memento.Key]pendingWrite
	done   bool
}

// Begin starts a pessimistic transaction. The context's trace ID (if
// any) is remembered so a commit can be attributed to the interaction
// that issued it — both on the invalidation notice and in the
// last-writer table consulted when a later transaction conflicts.
func (s *Store) Begin(ctx context.Context) (*Tx, error) {
	if s.isClosed() {
		return nil, ErrClosed
	}
	s.stats.begins.Add(1)
	obsTxBegins.Inc()
	return &Tx{
		s:      s,
		id:     lockmgr.Owner(s.nextTx.Add(1)),
		trace:  obs.TraceID(ctx),
		writes: make(map[memento.Key]pendingWrite),
	}, nil
}

// ID returns the store-assigned transaction identifier.
func (tx *Tx) ID() uint64 { return uint64(tx.id) }

func (tx *Tx) check() error {
	if tx.done {
		return ErrTxDone
	}
	if tx.s.isClosed() {
		return ErrClosed
	}
	return nil
}

// lockRow acquires a row lock plus the matching table intention lock.
func (tx *Tx) lockRow(ctx context.Context, key memento.Key, mode lockmgr.Mode) error {
	tableMode := lockmgr.IntentExclusive
	if mode == lockmgr.Shared {
		// Row reads need no table-level presence: a table S lock held by
		// a query does not conflict with concurrent row reads.
		if err := tx.s.lm.Acquire(ctx, tx.id, rowRes(key), mode); err != nil {
			tx.s.noteLockErr(err)
			return translateLockErr(err)
		}
		return nil
	}
	if err := tx.s.lm.Acquire(ctx, tx.id, tableRes(key.Table), tableMode); err != nil {
		tx.s.noteLockErr(err)
		return translateLockErr(err)
	}
	if err := tx.s.lm.Acquire(ctx, tx.id, rowRes(key), mode); err != nil {
		tx.s.noteLockErr(err)
		return translateLockErr(err)
	}
	return nil
}

// Get reads a row under a shared lock. The transaction's own buffered
// writes are visible to it.
func (tx *Tx) Get(ctx context.Context, table, id string) (memento.Memento, error) {
	if err := tx.check(); err != nil {
		return memento.Memento{}, err
	}
	tx.s.stats.gets.Add(1)
	key := memento.Key{Table: table, ID: id}
	if w, ok := tx.writes[key]; ok {
		if w.remove {
			return memento.Memento{}, fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return w.mem.Clone(), nil
	}
	if err := tx.lockRow(ctx, key, lockmgr.Shared); err != nil {
		return memento.Memento{}, err
	}
	m, ok := tx.s.readRow(key)
	if !ok {
		return memento.Memento{}, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return m.Clone(), nil
}

// GetForUpdate reads a row under an exclusive lock, the classic
// SELECT ... FOR UPDATE used ahead of an update to avoid upgrade
// deadlocks.
func (tx *Tx) GetForUpdate(ctx context.Context, table, id string) (memento.Memento, error) {
	if err := tx.check(); err != nil {
		return memento.Memento{}, err
	}
	tx.s.stats.gets.Add(1)
	key := memento.Key{Table: table, ID: id}
	if w, ok := tx.writes[key]; ok {
		if w.remove {
			return memento.Memento{}, fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return w.mem.Clone(), nil
	}
	if err := tx.lockRow(ctx, key, lockmgr.Exclusive); err != nil {
		return memento.Memento{}, err
	}
	m, ok := tx.s.readRow(key)
	if !ok {
		return memento.Memento{}, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return m.Clone(), nil
}

// Put upserts a row under an exclusive lock. The stored version is
// assigned at commit time (previous version + 1, or 1 for new rows);
// the memento's Version field is ignored.
func (tx *Tx) Put(ctx context.Context, m memento.Memento) error {
	if err := tx.check(); err != nil {
		return err
	}
	tx.s.stats.puts.Add(1)
	if err := tx.lockRow(ctx, m.Key, lockmgr.Exclusive); err != nil {
		return err
	}
	tx.writes[m.Key] = pendingWrite{mem: m.Clone()}
	return nil
}

// Insert creates a row, failing with ErrExists if the key already has a
// committed row or a buffered write in this transaction.
func (tx *Tx) Insert(ctx context.Context, m memento.Memento) error {
	if err := tx.check(); err != nil {
		return err
	}
	tx.s.stats.inserts.Add(1)
	if err := tx.lockRow(ctx, m.Key, lockmgr.Exclusive); err != nil {
		return err
	}
	if w, ok := tx.writes[m.Key]; ok && !w.remove {
		return fmt.Errorf("%w: %s", ErrExists, m.Key)
	} else if !ok {
		if _, exists := tx.s.readRow(m.Key); exists {
			return fmt.Errorf("%w: %s", ErrExists, m.Key)
		}
	}
	tx.writes[m.Key] = pendingWrite{mem: m.Clone()}
	return nil
}

// Delete removes a row under an exclusive lock, failing with ErrNotFound
// if it does not exist.
func (tx *Tx) Delete(ctx context.Context, table, id string) error {
	if err := tx.check(); err != nil {
		return err
	}
	tx.s.stats.deletes.Add(1)
	key := memento.Key{Table: table, ID: id}
	if err := tx.lockRow(ctx, key, lockmgr.Exclusive); err != nil {
		return err
	}
	if w, ok := tx.writes[key]; ok {
		if w.remove {
			return fmt.Errorf("%w: %s", ErrNotFound, key)
		}
	} else if _, exists := tx.s.readRow(key); !exists {
		return fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	tx.writes[key] = pendingWrite{remove: true}
	return nil
}

// Query runs a predicate query under a table shared lock (blocking
// concurrent writers to the table, which is what prevents phantoms for
// pessimistic transactions). The transaction's buffered writes are
// merged into the result.
func (tx *Tx) Query(ctx context.Context, q memento.Query) ([]memento.Memento, error) {
	if err := tx.check(); err != nil {
		return nil, err
	}
	tx.s.stats.queries.Add(1)
	if err := tx.s.lm.Acquire(ctx, tx.id, tableRes(q.Table), lockmgr.Shared); err != nil {
		tx.s.noteLockErr(err)
		return nil, translateLockErr(err)
	}
	rows := tx.s.scanTable(q)
	if len(tx.writes) == 0 {
		return rows, nil
	}
	// Overlay this transaction's own buffered writes.
	out := rows[:0]
	for _, m := range rows {
		if w, ok := tx.writes[m.Key]; ok {
			if w.remove || !q.Matches(w.mem) {
				continue
			}
			mm := w.mem.Clone()
			mm.Version = m.Version
			out = append(out, mm)
			continue
		}
		out = append(out, m)
	}
	// Add buffered writes the scan could not have surfaced: keys whose
	// committed row is absent, or whose committed row does not match the
	// query even though the buffered state does (an update that moves a
	// row INTO the result set).
	for key, w := range tx.writes {
		if w.remove || key.Table != q.Table || !q.Matches(w.mem) {
			continue
		}
		if committed, exists := tx.s.readRow(key); exists {
			if q.Matches(committed) {
				continue // already overlaid in the scan pass
			}
			mm := w.mem.Clone()
			mm.Version = committed.Version
			out = append(out, mm)
			continue
		}
		out = append(out, w.mem.Clone())
	}
	q.Sort(out)
	return q.Cap(out), nil
}

// CheckVersion verifies that a row is still at the given version (or,
// for version 0, that it still does not exist). The combined-servers
// optimistic commit path calls it once per read-set element — each call
// is a wire round trip, which is exactly the per-memento cost the paper
// attributes to the ES/RDB cached configuration.
func (tx *Tx) CheckVersion(ctx context.Context, key memento.Key, version uint64) error {
	if err := tx.check(); err != nil {
		return err
	}
	tx.s.stats.vchecks.Add(1)
	if err := tx.lockRow(ctx, key, lockmgr.Shared); err != nil {
		return err
	}
	m, ok := tx.s.readRow(key)
	if version == 0 {
		if ok {
			return tx.s.conflictErr(key, 0, m.Version,
				fmt.Sprintf("%s created concurrently", key))
		}
		return nil
	}
	if !ok {
		return tx.s.conflictErr(key, version, 0,
			fmt.Sprintf("%s removed concurrently", key))
	}
	if m.Version != version {
		return tx.s.conflictErr(key, version, m.Version,
			fmt.Sprintf("%s at v%d, expected v%d", key, m.Version, version))
	}
	return nil
}

// CheckedPut updates a row only if it is still at m.Version; with
// m.Version == 0 it acts as a checked insert (the key must not exist).
func (tx *Tx) CheckedPut(ctx context.Context, m memento.Memento) error {
	if err := tx.check(); err != nil {
		return err
	}
	tx.s.stats.puts.Add(1)
	if err := tx.lockRow(ctx, m.Key, lockmgr.Exclusive); err != nil {
		return err
	}
	if err := tx.verifyVersionLocked(m.Key, m.Version); err != nil {
		return err
	}
	tx.writes[m.Key] = pendingWrite{mem: m.Clone()}
	return nil
}

// CheckedDelete removes a row only if it is still at the given version.
func (tx *Tx) CheckedDelete(ctx context.Context, key memento.Key, version uint64) error {
	if err := tx.check(); err != nil {
		return err
	}
	tx.s.stats.deletes.Add(1)
	if err := tx.lockRow(ctx, key, lockmgr.Exclusive); err != nil {
		return err
	}
	if version == 0 {
		return fmt.Errorf("%w: cannot delete unversioned %s", ErrConflict, key)
	}
	if err := tx.verifyVersionLocked(key, version); err != nil {
		return err
	}
	tx.writes[key] = pendingWrite{remove: true}
	return nil
}

// verifyVersionLocked checks a key's committed version against an
// expectation, accounting for this transaction's own buffered writes
// (a second checked write to the same key in one transaction sees its
// own earlier write as current).
func (tx *Tx) verifyVersionLocked(key memento.Key, version uint64) error {
	if w, ok := tx.writes[key]; ok {
		// Our own buffered state supersedes the committed row.
		if w.remove {
			if version != 0 {
				return fmt.Errorf("%w: %s removed in this transaction", ErrConflict, key)
			}
			return nil
		}
		return nil
	}
	m, ok := tx.s.readRow(key)
	if version == 0 {
		if ok {
			return tx.s.conflictErr(key, 0, m.Version,
				fmt.Sprintf("%s created concurrently", key))
		}
		return nil
	}
	if !ok {
		return tx.s.conflictErr(key, version, 0,
			fmt.Sprintf("%s removed concurrently", key))
	}
	if m.Version != version {
		return tx.s.conflictErr(key, version, m.Version,
			fmt.Sprintf("%s at v%d, expected v%d", key, m.Version, version))
	}
	return nil
}

// Commit installs the transaction's buffered writes atomically, releases
// all locks, and broadcasts an invalidation notice for the mutated keys.
func (tx *Tx) Commit() error {
	n, err := tx.commit()
	if err != nil {
		return err
	}
	tx.s.broadcast(n)
	return nil
}

// commit installs the buffered writes and releases locks, returning the
// invalidation notice WITHOUT broadcasting it. Group commit uses this
// to apply several transactions and fan their notices out in one pass;
// Commit is commit + immediate broadcast.
func (tx *Tx) commit() (Notice, error) {
	if tx.done {
		return Notice{}, ErrTxDone
	}
	tx.done = true
	keys, writes, at := tx.s.applyWrites(tx.writes, uint64(tx.id), tx.trace)
	tx.s.lm.ReleaseAll(tx.id)
	tx.s.stats.commits.Add(1)
	obsTxCommits.Inc()
	return Notice{TxID: uint64(tx.id), Keys: keys, Writes: writes, CommittedAt: at, OriginTrace: tx.trace}, nil
}

// Abort discards buffered writes and releases all locks. Aborting a
// finished transaction is a no-op.
func (tx *Tx) Abort() {
	if tx.done {
		return
	}
	tx.done = true
	tx.writes = nil
	tx.s.lm.ReleaseAll(tx.id)
	tx.s.stats.aborts.Add(1)
	obsTxAborts.Inc()
}

func (s *Store) noteLockErr(err error) {
	if errors.Is(err, lockmgr.ErrTimeout) || errors.Is(err, lockmgr.ErrDeadlock) {
		s.stats.lockTimeouts.Add(1)
		obsLockTimeouts.Inc()
	}
}

// rowRes and tableRes build lock-manager resource identities.
func rowRes(key memento.Key) lockmgr.Resource { return key }

type tableLock string

func tableRes(table string) lockmgr.Resource { return tableLock(table) }

package sqlstore

import (
	"context"
	"errors"
	"testing"
	"time"

	"edgeejb/internal/memento"
)

// TestApplyCommitSetsIntraBatchAttribution pins the grouped apply's
// serial-equivalence: sets apply in slice order against the state the
// earlier sets left behind, so a loser inside the batch gets a
// ConflictError naming the intra-batch winner — attribution identical
// to the sets arriving one at a time.
func TestApplyCommitSetsIntraBatchAttribution(t *testing.T) {
	s := New()
	defer s.Close()
	k := memento.Key{Table: "t", ID: "1"}
	s.Seed(memento.Memento{Key: k, Fields: memento.Fields{"n": memento.Int(10)}})

	notices, cancel := s.Subscribe(8)
	defer cancel()

	write := func(n int64) memento.CommitSet {
		return memento.CommitSet{Writes: []memento.Memento{{
			Key: k, Version: 1, Fields: memento.Fields{"n": memento.Int(n)},
		}}}
	}
	out := s.ApplyCommitSets(context.Background(), []memento.CommitSet{
		write(11), // winner: row is at version 1
		write(12), // loser: version 1 is stale once the winner applies
		{Creates: []memento.Memento{{ // independent: must not be poisoned
			Key:    memento.Key{Table: "t", ID: "2"},
			Fields: memento.Fields{"n": memento.Int(2)},
		}}},
	})
	if out[0].Err != nil {
		t.Fatalf("winner: %v", out[0].Err)
	}
	if out[2].Err != nil {
		t.Fatalf("independent set rejected alongside the loser: %v", out[2].Err)
	}
	var ce *ConflictError
	if !errors.As(out[1].Err, &ce) {
		t.Fatalf("loser error = %v, want *ConflictError", out[1].Err)
	}
	if ce.WinnerTx != out[0].Res.TxID {
		t.Errorf("loser names winner tx %d, want %d", ce.WinnerTx, out[0].Res.TxID)
	}
	if ce.Expected != 1 || ce.Actual != 2 {
		t.Errorf("conflict versions = %d -> %d, want 1 -> 2", ce.Expected, ce.Actual)
	}

	// Fan-out: exactly the two applied sets notify, the loser never
	// does, and both notices arrive from the single post-batch pass.
	got := map[uint64]bool{}
	for i := 0; i < 2; i++ {
		select {
		case n := <-notices:
			got[n.TxID] = true
		case <-time.After(2 * time.Second):
			t.Fatalf("notice %d never arrived", i+1)
		}
	}
	if !got[out[0].Res.TxID] || !got[out[2].Res.TxID] {
		t.Errorf("notices from txs %v, want winner %d and create %d",
			got, out[0].Res.TxID, out[2].Res.TxID)
	}
	select {
	case n := <-notices:
		t.Errorf("unexpected extra notice from tx %d", n.TxID)
	default:
	}
}

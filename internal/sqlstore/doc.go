// Package sqlstore implements the persistent datastore that plays the
// role of the paper's DB2 database server: a multi-table, in-memory
// relational store with ACID transactions, multi-granularity pessimistic
// locking (row S/X locks under table intention locks), predicate
// queries, and per-row versions.
//
// Two access paths exist, mirroring the paper:
//
//   - Pessimistic transactions (Begin / Tx) hold strict two-phase locks
//     until commit. The JDBC and vanilla-EJB resource managers use this
//     path, one wire round trip per statement.
//   - Optimistic commit-set application (ApplyCommitSet) validates a
//     whole transaction's read versions and applies its after-images in
//     one internal pessimistic transaction. The back-end server of the
//     split-servers configuration uses this path; it is timed as a
//     "sqlstore.apply" trace span.
//
// Every committed mutation is broadcast as a Notice so that
// cache-enhanced application servers can invalidate stale entries
// ("invalidation when notified by the server about an update", §1.4).
// Transaction outcomes feed the sqlstore.* metrics (see
// OBSERVABILITY.md).
package sqlstore

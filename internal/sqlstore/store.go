package sqlstore

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"edgeejb/internal/lockmgr"
	"edgeejb/internal/memento"
)

// Sentinel errors. ErrConflict and ErrNotFound are part of the public
// contract of every tier above the store: resource managers translate
// them into transaction aborts and entity-not-found conditions.
var (
	// ErrNotFound reports that no row exists for the requested key.
	ErrNotFound = errors.New("sqlstore: row not found")
	// ErrExists reports an insert of a key that already has a row.
	ErrExists = errors.New("sqlstore: row already exists")
	// ErrConflict reports an optimistic validation failure: the row
	// changed since the transaction read it.
	ErrConflict = errors.New("sqlstore: version conflict")
	// ErrTxDone reports use of a transaction after Commit or Abort.
	ErrTxDone = errors.New("sqlstore: transaction already finished")
	// ErrClosed reports use of a closed store.
	ErrClosed = errors.New("sqlstore: store closed")
)

// Notice announces a committed transaction's mutated keys. Edge caches
// subscribe to notices and invalidate the listed entries.
type Notice struct {
	// TxID is the committing transaction's store-assigned identifier.
	TxID uint64
	// Keys lists every row the transaction created, updated or removed.
	Keys []memento.Key
	// Writes describes the same mutations richly enough for
	// footprint-overlap invalidation: each entry carries the row's field
	// state before and after the write, so a subscriber can test whether
	// a cached predicate query's result set gained or lost a row — not
	// just whether a known key changed version. Subscribers must treat
	// the descriptors (and their field maps) as read-only; they are
	// shared across subscribers. Peers that predate this field decode it
	// as empty and fall back to key-only (conservative) invalidation.
	Writes []memento.WriteDesc
	// CommittedAt is when the writes were installed, stamped by the
	// store. Edges use it to measure invalidation push latency and the
	// staleness window each notice closes.
	CommittedAt time.Time
	// OriginTrace is the trace ID the committing transaction's Begin
	// context carried (zero when the commit was untraced), so an edge can
	// attribute an invalidation to the interaction that caused it.
	OriginTrace uint64
}

// Stats counts store activity; all fields are monotonically increasing.
type Stats struct {
	Begins         uint64
	Commits        uint64
	Aborts         uint64
	Gets           uint64
	Puts           uint64
	Inserts        uint64
	Deletes        uint64
	Queries        uint64
	OptimisticOK   uint64
	OptimisticFail uint64
	NoticesSent    uint64
	VersionChecks  uint64
	LockTimeouts   uint64
	IndexProbes    uint64
	TableScans     uint64
	RowsLive       uint64 // gauge, not a counter
	TablesLive     uint64 // gauge, not a counter
}

type table struct {
	rows    map[string]memento.Memento
	indexes map[string]*index
}

func newTable() *table {
	return &table{
		rows:    make(map[string]memento.Memento),
		indexes: make(map[string]*index),
	}
}

// Store is the persistent datastore. It is safe for concurrent use.
type Store struct {
	lm *lockmgr.Manager

	mu      sync.RWMutex
	tables  map[string]*table
	writers map[memento.Key]writerInfo
	closed  bool

	nextTx atomic.Uint64

	subMu   sync.Mutex
	subs    map[int]chan Notice
	nextSub int

	// Two-phase-commit participant state: transactions validated under
	// Prepare and held (locks included) until the coordinator decides or
	// the presumed-abort TTL expires. See prepare.go.
	prepMu     sync.Mutex
	prepared   map[string]*preparedTx
	prepareTTL time.Duration

	// commitService is the modeled per-commit-set validation service
	// time (see WithCommitServiceTime); serviceMu serializes the modeled
	// commit processor.
	commitService time.Duration
	serviceMu     sync.Mutex

	stats struct {
		begins, commits, aborts               atomic.Uint64
		gets, puts, inserts, deletes, queries atomic.Uint64
		optOK, optFail, notices, vchecks      atomic.Uint64
		lockTimeouts                          atomic.Uint64
		indexProbes, tableScans               atomic.Uint64
	}
}

// Option configures a Store.
type Option interface {
	apply(*config)
}

type config struct {
	lockTimeout   time.Duration
	prepareTTL    time.Duration
	commitService time.Duration
	txIDBase      uint64
}

type txIDBaseOption uint64

func (o txIDBaseOption) apply(c *config) { c.txIDBase = uint64(o) }

// WithTxIDBase offsets the store's transaction-ID counter. A sharded
// deployment gives each shard a disjoint base (shard index << 40) so
// transaction IDs are globally unique across the tier: edges track
// their own commits by TxID over a merged invalidation stream, and two
// shards independently counting from zero would collide constantly.
func WithTxIDBase(base uint64) Option { return txIDBaseOption(base) }

type lockTimeoutOption time.Duration

func (o lockTimeoutOption) apply(c *config) { c.lockTimeout = time.Duration(o) }

// WithLockTimeout sets the lock-wait timeout used for deadlock
// resolution. The default is one second.
func WithLockTimeout(d time.Duration) Option { return lockTimeoutOption(d) }

// New returns an empty store.
func New(opts ...Option) *Store {
	cfg := config{lockTimeout: time.Second, prepareTTL: 10 * time.Second}
	for _, o := range opts {
		o.apply(&cfg)
	}
	s := &Store{
		lm:            lockmgr.New(lockmgr.WithTimeout(cfg.lockTimeout)),
		tables:        make(map[string]*table),
		writers:       make(map[memento.Key]writerInfo),
		subs:          make(map[int]chan Notice),
		prepareTTL:    cfg.prepareTTL,
		commitService: cfg.commitService,
	}
	s.nextTx.Store(cfg.txIDBase)
	return s
}

// Close shuts the store down: future operations fail and subscribers are
// drained. Close is idempotent.
func (s *Store) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.abortAllPrepared()
	s.lm.Close()
	s.subMu.Lock()
	for id, ch := range s.subs {
		close(ch)
		delete(s.subs, id)
	}
	s.subMu.Unlock()
}

// Subscribe registers for commit notices. The returned channel receives
// a Notice for every committed mutation until cancel is called or the
// store closes; the channel is closed on either event. Slow subscribers
// never block commits: when the channel's buffer is full the notice is
// coalesced by dropping it, which is safe because notices are
// invalidation hints, not state transfer — a dropped hint only means a
// subsequent optimistic commit discovers staleness at validation time.
func (s *Store) Subscribe(buffer int) (<-chan Notice, func()) {
	if buffer < 1 {
		buffer = 64
	}
	ch := make(chan Notice, buffer)
	s.subMu.Lock()
	id := s.nextSub
	s.nextSub++
	s.subs[id] = ch
	s.subMu.Unlock()

	var once sync.Once
	cancel := func() {
		once.Do(func() {
			s.subMu.Lock()
			if c, ok := s.subs[id]; ok {
				delete(s.subs, id)
				close(c)
			}
			s.subMu.Unlock()
		})
	}
	return ch, cancel
}

func (s *Store) broadcast(n Notice) {
	if len(n.Keys) == 0 {
		return
	}
	s.subMu.Lock()
	defer s.subMu.Unlock()
	for _, ch := range s.subs {
		select {
		case ch <- n:
			s.stats.notices.Add(1)
		default:
			// Drop rather than block the committer; see Subscribe.
		}
	}
}

// broadcastAll fans several notices out under a single subscriber-map
// acquisition — the group-commit fast path: one coalesced batch causes
// one fan-out pass, not one per transaction.
func (s *Store) broadcastAll(ns []Notice) {
	if len(ns) == 0 {
		return
	}
	s.subMu.Lock()
	defer s.subMu.Unlock()
	for _, n := range ns {
		if len(n.Keys) == 0 {
			continue
		}
		for _, ch := range s.subs {
			select {
			case ch <- n:
				s.stats.notices.Add(1)
			default:
				// Drop rather than block the committer; see Subscribe.
			}
		}
	}
}

// Stats returns a snapshot of the store's activity counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	var rows uint64
	for _, t := range s.tables {
		rows += uint64(len(t.rows))
	}
	ntables := uint64(len(s.tables))
	s.mu.RUnlock()
	return Stats{
		Begins:         s.stats.begins.Load(),
		Commits:        s.stats.commits.Load(),
		Aborts:         s.stats.aborts.Load(),
		Gets:           s.stats.gets.Load(),
		Puts:           s.stats.puts.Load(),
		Inserts:        s.stats.inserts.Load(),
		Deletes:        s.stats.deletes.Load(),
		Queries:        s.stats.queries.Load(),
		OptimisticOK:   s.stats.optOK.Load(),
		OptimisticFail: s.stats.optFail.Load(),
		NoticesSent:    s.stats.notices.Load(),
		VersionChecks:  s.stats.vchecks.Load(),
		LockTimeouts:   s.stats.lockTimeouts.Load(),
		IndexProbes:    s.stats.indexProbes.Load(),
		TableScans:     s.stats.tableScans.Load(),
		RowsLive:       rows,
		TablesLive:     ntables,
	}
}

// readRow returns the committed row for key, if any.
func (s *Store) readRow(key memento.Key) (memento.Memento, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t := s.tables[key.Table]
	if t == nil {
		return memento.Memento{}, false
	}
	m, ok := t.rows[key.ID]
	return m, ok
}

// scanTable returns every committed row of a table matching q, in the
// query's order. When an equality predicate is indexed, the planner
// probes the index and re-checks the remaining predicates on the
// candidates; otherwise it scans the whole table.
func (s *Store) scanTable(q memento.Query) []memento.Memento {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t := s.tables[q.Table]
	if t == nil {
		return nil
	}
	var out []memento.Memento
	if probe := t.plan(q); probe != nil {
		s.stats.indexProbes.Add(1)
		probe(func(id string) {
			m, exists := t.rows[id]
			if exists && q.Matches(m) {
				out = append(out, m.Clone())
			}
		})
	} else {
		s.stats.tableScans.Add(1)
		for _, m := range t.rows {
			if q.Matches(m) {
				out = append(out, m.Clone())
			}
		}
	}
	q.Sort(out)
	return q.Cap(out)
}

// applyWrites installs a transaction's buffered writes under the store
// mutex, bumping row versions and recording the committer as each row's
// last writer (for conflict attribution). It assumes the caller holds
// the required locks and has already validated. The returned time is
// the install instant, stamped onto the commit's invalidation notice;
// the write descriptors capture each row's before/after field images
// for footprint-overlap invalidation at the edges.
func (s *Store) applyWrites(writes map[memento.Key]pendingWrite, txID, trace uint64) ([]memento.Key, []memento.WriteDesc, time.Time) {
	if len(writes) == 0 {
		return nil, nil, time.Time{}
	}
	keys := make([]memento.Key, 0, len(writes))
	descs := make([]memento.WriteDesc, 0, len(writes))
	s.mu.Lock()
	defer s.mu.Unlock()
	at := time.Now()
	for key, w := range writes {
		s.writers[key] = writerInfo{txID: txID, trace: trace, at: at}
		t := s.tables[key.Table]
		if t == nil {
			t = newTable()
			s.tables[key.Table] = t
		}
		prev, hadPrev := t.rows[key.ID]
		desc := memento.WriteDesc{Key: key}
		if hadPrev {
			// prev is immutable once installed (applyWrites always installs
			// fresh clones), so the descriptor can share its field map.
			desc.Before = prev.Fields
		}
		if w.remove {
			delete(t.rows, key.ID)
		} else {
			m := w.mem.Clone()
			if hadPrev {
				m.Version = prev.Version + 1
			} else {
				m.Version = 1
			}
			t.rows[key.ID] = m
			desc.After = m.Fields
		}
		for _, ix := range t.indexes {
			if hadPrev {
				ix.remove(key.ID, prev.Fields)
			}
			if !w.remove {
				ix.insert(key.ID, t.rows[key.ID].Fields)
			}
		}
		keys = append(keys, key)
		descs = append(descs, desc)
	}
	less := func(a, b memento.Key) bool {
		if a.Table != b.Table {
			return a.Table < b.Table
		}
		return a.ID < b.ID
	}
	sort.Slice(keys, func(i, j int) bool { return less(keys[i], keys[j]) })
	sort.Slice(descs, func(i, j int) bool { return less(descs[i].Key, descs[j].Key) })
	return keys, descs, at
}

// Seed installs rows directly, without locking or notices. It is meant
// for test fixtures and initial database population before the store is
// shared; each memento's version is forced to 1.
func (s *Store) Seed(mems ...memento.Memento) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range mems {
		t := s.tables[m.Key.Table]
		if t == nil {
			t = newTable()
			s.tables[m.Key.Table] = t
		}
		prev, hadPrev := t.rows[m.Key.ID]
		mm := m.Clone()
		mm.Version = 1
		t.rows[m.Key.ID] = mm
		for _, ix := range t.indexes {
			if hadPrev {
				ix.remove(m.Key.ID, prev.Fields)
			}
			ix.insert(m.Key.ID, mm.Fields)
		}
	}
}

// RowCount returns the number of live rows in a table.
func (s *Store) RowCount(tableName string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t := s.tables[tableName]
	if t == nil {
		return 0
	}
	return len(t.rows)
}

// CurrentVersion returns the committed version of a row, or 0 with
// ErrNotFound if it does not exist. It performs a dirty read and is
// intended for tests and diagnostics.
func (s *Store) CurrentVersion(key memento.Key) (uint64, error) {
	m, ok := s.readRow(key)
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return m.Version, nil
}

func (s *Store) isClosed() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.closed
}

func translateLockErr(err error) error {
	if errors.Is(err, lockmgr.ErrTimeout) || errors.Is(err, lockmgr.ErrDeadlock) {
		return fmt.Errorf("%w: %v", ErrConflict, err)
	}
	return err
}

package sqlstore

import (
	"fmt"
	"sort"
	"strconv"

	"edgeejb/internal/memento"
)

// Secondary indexes. A single-field index accelerates equality probes
// (the access path the Trade application's custom finders use — holdings
// by accountID) and ordered range probes (price < x and friends). The
// planner in scanTable prefers an indexed equality predicate, then an
// indexed range predicate, then falls back to a full table scan,
// re-checking every predicate on each candidate either way, so indexes
// are purely an optimization and never change results.
//
// Indexes are maintained synchronously under the store mutex at commit
// time (applyWrites) and at Seed, so they are always consistent with
// committed state. Uncommitted (buffered) writes are invisible to
// indexes, exactly as they are invisible to scans.

// index is a secondary index over one field of one table. It maintains
// two structures in lockstep: a hash map for O(1) equality probes and a
// value-ordered list for range probes (OpLt/OpLe/OpGt/OpGe). The ordered
// list is a sorted slice with binary-search lookup and O(n) insertion —
// the right trade-off for an in-memory store whose tables are bounded by
// RAM and whose reads far outnumber writes; swap in a balanced tree if a
// table's write rate ever makes insertion the bottleneck.
type index struct {
	field string
	// byValue maps an encoded field value to the set of row IDs whose
	// committed image holds that value.
	byValue map[string]map[string]struct{}
	// ordered holds one entry per distinct value, sorted by
	// memento.Value ordering; each points at the same ID set as byValue.
	ordered []*orderedBucket
}

// orderedBucket is one distinct indexed value and its row IDs.
type orderedBucket struct {
	value memento.Value
	ids   map[string]struct{}
}

// valueHash encodes a Value into a map key. Kind-prefixed so that, for
// example, Int(1) and Float(1) never collide.
func valueHash(v memento.Value) string {
	switch v.Kind {
	case memento.KindString:
		return "s\x00" + v.Str
	case memento.KindInt:
		return "i\x00" + strconv.FormatInt(v.Int, 10)
	case memento.KindFloat:
		return "f\x00" + strconv.FormatFloat(v.F, 'b', -1, 64)
	case memento.KindBool:
		return "b\x00" + strconv.FormatBool(v.Bool)
	default:
		return "z\x00"
	}
}

func newIndex(field string) *index {
	return &index{field: field, byValue: make(map[string]map[string]struct{})}
}

func (ix *index) insert(id string, fields memento.Fields) {
	v, ok := fields[ix.field]
	if !ok {
		return // rows without the field are unindexed; scans still find them
	}
	h := valueHash(v)
	set := ix.byValue[h]
	if set == nil {
		set = make(map[string]struct{})
		ix.byValue[h] = set
		ix.insertOrdered(v, set)
	}
	set[id] = struct{}{}
}

func (ix *index) remove(id string, fields memento.Fields) {
	v, ok := fields[ix.field]
	if !ok {
		return
	}
	h := valueHash(v)
	if set := ix.byValue[h]; set != nil {
		delete(set, id)
		if len(set) == 0 {
			delete(ix.byValue, h)
			ix.removeOrdered(v)
		}
	}
}

// lookup returns the row IDs whose indexed field equals v.
func (ix *index) lookup(v memento.Value) map[string]struct{} {
	return ix.byValue[valueHash(v)]
}

// insertOrdered places a new distinct value's bucket into the sorted
// list. Called only when the value was not present.
func (ix *index) insertOrdered(v memento.Value, ids map[string]struct{}) {
	pos := sort.Search(len(ix.ordered), func(i int) bool {
		return ix.ordered[i].value.Compare(v) >= 0
	})
	ix.ordered = append(ix.ordered, nil)
	copy(ix.ordered[pos+1:], ix.ordered[pos:])
	ix.ordered[pos] = &orderedBucket{value: v, ids: ids}
}

// removeOrdered drops a now-empty value bucket from the sorted list.
func (ix *index) removeOrdered(v memento.Value) {
	pos := sort.Search(len(ix.ordered), func(i int) bool {
		return ix.ordered[i].value.Compare(v) >= 0
	})
	if pos < len(ix.ordered) && ix.ordered[pos].value.Equal(v) {
		ix.ordered = append(ix.ordered[:pos], ix.ordered[pos+1:]...)
	}
}

// lookupRange returns the buckets satisfying `field op v` for an
// ordered comparison operator. Bucket order follows
// memento.Value.Compare — the same total order Predicate.Matches
// evaluates with — so the probe returns exactly the matching buckets;
// the caller still re-checks every predicate on each candidate row, so
// indexes can never change query results.
func (ix *index) lookupRange(op memento.Op, v memento.Value) []*orderedBucket {
	n := len(ix.ordered)
	// Find the boundary positions around value v in the total order used
	// by Value.Compare (which is also what Predicate.Matches uses).
	lo := sort.Search(n, func(i int) bool { return ix.ordered[i].value.Compare(v) >= 0 })
	hi := sort.Search(n, func(i int) bool { return ix.ordered[i].value.Compare(v) > 0 })
	switch op {
	case memento.OpLt:
		return ix.ordered[:lo]
	case memento.OpLe:
		return ix.ordered[:hi]
	case memento.OpGt:
		return ix.ordered[hi:]
	case memento.OpGe:
		return ix.ordered[lo:]
	default:
		return nil
	}
}

// CreateIndex builds a hash index on table.field from the current
// committed rows and maintains it across future commits. Creating the
// same index twice is a no-op; the table need not exist yet.
func (s *Store) CreateIndex(tableName, field string) error {
	if tableName == "" || field == "" {
		return fmt.Errorf("sqlstore: index needs table and field")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	t := s.tables[tableName]
	if t == nil {
		t = newTable()
		s.tables[tableName] = t
	}
	if _, exists := t.indexes[field]; exists {
		return nil
	}
	ix := newIndex(field)
	for id, m := range t.rows {
		ix.insert(id, m.Fields)
	}
	t.indexes[field] = ix
	return nil
}

// Indexes lists the indexed fields of a table, for diagnostics.
func (s *Store) Indexes(tableName string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t := s.tables[tableName]
	if t == nil {
		return nil
	}
	out := make([]string, 0, len(t.indexes))
	for f := range t.indexes {
		out = append(out, f)
	}
	return out
}

// plan selects an access path for q: an indexed equality probe if any
// equality predicate has an index (most selective), else an indexed
// range probe, else nil (full scan). Called with s.mu held (read).
// Every predicate is re-checked on the candidates regardless, so the
// planner affects cost only, never results.
func (t *table) plan(q memento.Query) func(yield func(id string)) {
	for _, p := range q.Where {
		if p.Op != memento.OpEq {
			continue
		}
		if ix, ok := t.indexes[p.Field]; ok {
			set := ix.lookup(p.Value)
			return func(yield func(id string)) {
				for id := range set {
					yield(id)
				}
			}
		}
	}
	for _, p := range q.Where {
		switch p.Op {
		case memento.OpLt, memento.OpLe, memento.OpGt, memento.OpGe:
		default:
			continue
		}
		if ix, ok := t.indexes[p.Field]; ok {
			buckets := ix.lookupRange(p.Op, p.Value)
			return func(yield func(id string)) {
				for _, b := range buckets {
					for id := range b.ids {
						yield(id)
					}
				}
			}
		}
	}
	return nil
}

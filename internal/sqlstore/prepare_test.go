package sqlstore

import (
	"context"
	"errors"
	"testing"
	"time"

	"edgeejb/internal/memento"
)

func prepKey(id string) memento.Key { return memento.Key{Table: "t", ID: id} }

func TestPrepareCommitPrepared(t *testing.T) {
	s := New()
	defer s.Close()
	ctx := context.Background()
	s.Seed(mem("t", "w", 0, intFields(1)))

	cs := memento.CommitSet{
		Writes:  []memento.Memento{mem("t", "w", 1, intFields(2))},
		Creates: []memento.Memento{mem("t", "c", 0, intFields(3))},
	}
	if err := s.Prepare(ctx, "g1", cs); err != nil {
		t.Fatal(err)
	}
	if n := s.PreparedCount(); n != 1 {
		t.Fatalf("prepared count = %d, want 1", n)
	}
	// Nothing is visible until the decision.
	if v, _ := s.CurrentVersion(prepKey("w")); v != 1 {
		t.Fatalf("prepare leaked: version = %d, want 1", v)
	}

	res, err := s.CommitPrepared(ctx, "g1")
	if err != nil {
		t.Fatal(err)
	}
	if res.TxID == 0 {
		t.Error("missing TxID")
	}
	if got := res.NewVersions[prepKey("w")]; got != 2 {
		t.Errorf("write new version = %d, want 2", got)
	}
	if v, _ := s.CurrentVersion(prepKey("w")); v != 2 {
		t.Errorf("committed version = %d, want 2", v)
	}
	if v, _ := s.CurrentVersion(prepKey("c")); v != 1 {
		t.Errorf("created version = %d, want 1", v)
	}
	if n := s.PreparedCount(); n != 0 {
		t.Errorf("prepared count = %d after commit, want 0", n)
	}
	// The decision is not idempotent: the gid is forgotten.
	if _, err := s.CommitPrepared(ctx, "g1"); !errors.Is(err, ErrConflict) {
		t.Errorf("second CommitPrepared: got %v, want ErrConflict", err)
	}
}

func TestPrepareAbortPrepared(t *testing.T) {
	s := New()
	defer s.Close()
	ctx := context.Background()
	s.Seed(mem("t", "w", 0, intFields(1)))

	cs := memento.CommitSet{Writes: []memento.Memento{mem("t", "w", 1, intFields(2))}}
	if err := s.Prepare(ctx, "g1", cs); err != nil {
		t.Fatal(err)
	}
	if err := s.AbortPrepared(ctx, "g1"); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.CurrentVersion(prepKey("w")); v != 1 {
		t.Errorf("abort leaked: version = %d, want 1", v)
	}
	// Aborting an unknown gid is presumed-abort-idempotent.
	if err := s.AbortPrepared(ctx, "nope"); err != nil {
		t.Errorf("abort of unknown gid: %v, want nil", err)
	}
	// After abort the row is unlocked: a fresh commit goes through.
	if _, err := s.ApplyCommitSet(ctx, cs); err != nil {
		t.Fatalf("commit after abort: %v", err)
	}
}

func TestPrepareConflictVotesNo(t *testing.T) {
	s := New()
	defer s.Close()
	ctx := context.Background()
	s.Seed(mem("t", "w", 0, intFields(1)))

	stale := memento.CommitSet{Writes: []memento.Memento{mem("t", "w", 9, intFields(2))}}
	if err := s.Prepare(ctx, "g1", stale); !errors.Is(err, ErrConflict) {
		t.Fatalf("got %v, want ErrConflict", err)
	}
	if n := s.PreparedCount(); n != 0 {
		t.Fatalf("a no vote must hold nothing: prepared count = %d", n)
	}
	// The no vote released its locks.
	ok := memento.CommitSet{Writes: []memento.Memento{mem("t", "w", 1, intFields(2))}}
	if _, err := s.ApplyCommitSet(ctx, ok); err != nil {
		t.Fatalf("commit after no vote: %v", err)
	}
}

func TestPrepareDuplicateGid(t *testing.T) {
	s := New()
	defer s.Close()
	ctx := context.Background()
	s.Seed(mem("t", "a", 0, intFields(1)), mem("t", "b", 0, intFields(1)))

	csA := memento.CommitSet{Writes: []memento.Memento{mem("t", "a", 1, intFields(2))}}
	csB := memento.CommitSet{Writes: []memento.Memento{mem("t", "b", 1, intFields(2))}}
	if err := s.Prepare(ctx, "g1", csA); err != nil {
		t.Fatal(err)
	}
	if err := s.Prepare(ctx, "g1", csB); !errors.Is(err, ErrConflict) {
		t.Fatalf("duplicate gid: got %v, want ErrConflict", err)
	}
	// The first prepare is still decided normally.
	if _, err := s.CommitPrepared(ctx, "g1"); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.CurrentVersion(prepKey("a")); v != 2 {
		t.Errorf("version = %d, want 2", v)
	}
}

// TestPresumedAbortUnwedgesShard is the coordinator-crash scenario: a
// participant prepared (holding locks) never hears the decision. The
// prepare TTL fires, the transaction presumed-aborts, and the rows it
// held become writable again — the shard unwedges by itself.
func TestPresumedAbortUnwedgesShard(t *testing.T) {
	s := New(WithPrepareTTL(50 * time.Millisecond))
	defer s.Close()
	ctx := context.Background()
	s.Seed(mem("t", "w", 0, intFields(1)))

	cs := memento.CommitSet{Writes: []memento.Memento{mem("t", "w", 1, intFields(2))}}
	if err := s.Prepare(ctx, "orphan", cs); err != nil {
		t.Fatal(err)
	}

	// The coordinator "crashed": nobody decides. Wait out the TTL.
	deadline := time.Now().Add(5 * time.Second)
	for s.PreparedCount() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := s.PreparedCount(); n != 0 {
		t.Fatalf("prepared count = %d after TTL, want 0", n)
	}

	// Nothing was installed, and the rows are writable again.
	if v, _ := s.CurrentVersion(prepKey("w")); v != 1 {
		t.Fatalf("presumed abort leaked: version = %d, want 1", v)
	}
	if _, err := s.ApplyCommitSet(ctx, cs); err != nil {
		t.Fatalf("commit after presumed abort: %v", err)
	}
	// A late decision finds the gid gone: commit fails (the coordinator
	// learns the outcome), abort succeeds silently.
	if _, err := s.CommitPrepared(ctx, "orphan"); !errors.Is(err, ErrConflict) {
		t.Errorf("late commit: got %v, want ErrConflict", err)
	}
	if err := s.AbortPrepared(ctx, "orphan"); err != nil {
		t.Errorf("late abort: %v, want nil", err)
	}
}

func TestCloseAbortsPrepared(t *testing.T) {
	s := New()
	ctx := context.Background()
	s.Seed(mem("t", "w", 0, intFields(1)))
	cs := memento.CommitSet{Writes: []memento.Memento{mem("t", "w", 1, intFields(2))}}
	if err := s.Prepare(ctx, "g1", cs); err != nil {
		t.Fatal(err)
	}
	s.Close() // must not deadlock on the parked transaction's locks
	if n := s.PreparedCount(); n != 0 {
		t.Errorf("prepared count = %d after Close, want 0", n)
	}
}

func TestWithTxIDBase(t *testing.T) {
	s := New(WithTxIDBase(uint64(3) << 40))
	defer s.Close()
	ctx := context.Background()
	res, err := s.ApplyCommitSet(ctx, memento.CommitSet{
		Creates: []memento.Memento{mem("t", "c", 0, intFields(1))},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TxID <= uint64(3)<<40 {
		t.Fatalf("TxID = %d, want above the shard base %d", res.TxID, uint64(3)<<40)
	}
}

package sqlstore

import (
	"bytes"
	"context"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"edgeejb/internal/memento"
)

func TestSnapshotRoundTrip(t *testing.T) {
	src := New()
	defer src.Close()
	if err := src.CreateIndex("h", "acct"); err != nil {
		t.Fatal(err)
	}
	src.Seed(
		acctRow("1", "a", 10),
		acctRow("2", "b", 20),
		mem("other", "x", 0, intFields(5)),
	)
	// Commit a change so versions differ from 1.
	ctx := context.Background()
	tx := mustBegin(t, src)
	if err := tx.Put(ctx, acctRow("1", "a", 11)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := src.Dump(&buf); err != nil {
		t.Fatal(err)
	}

	dst := New()
	defer dst.Close()
	if err := dst.Restore(&buf); err != nil {
		t.Fatal(err)
	}

	// Rows, versions and values must match exactly.
	for _, key := range []memento.Key{
		{Table: "h", ID: "1"}, {Table: "h", ID: "2"}, {Table: "other", ID: "x"},
	} {
		vSrc, err := src.CurrentVersion(key)
		if err != nil {
			t.Fatal(err)
		}
		vDst, err := dst.CurrentVersion(key)
		if err != nil {
			t.Fatalf("%s missing after restore: %v", key, err)
		}
		if vSrc != vDst {
			t.Errorf("%s version %d != %d", key, vDst, vSrc)
		}
	}
	// Indexes are restored and functional.
	if got := dst.Indexes("h"); len(got) != 1 || got[0] != "acct" {
		t.Errorf("restored indexes = %v", got)
	}
	got := queryAll(t, dst, acctQuery("a"))
	if len(got) != 1 || got[0].Fields["qty"].Int != 11 {
		t.Errorf("restored indexed query = %v", got)
	}
	if dst.Stats().IndexProbes == 0 {
		t.Error("restored store did not use its index")
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	s := New()
	defer s.Close()
	if err := s.Restore(strings.NewReader("not a snapshot")); err == nil {
		t.Fatal("garbage accepted")
	}
	var buf bytes.Buffer
	other := New()
	defer other.Close()
	if err := other.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt the magic by re-encoding a wrong struct is cumbersome;
	// instead truncate the stream.
	trunc := buf.Bytes()[:buf.Len()/2]
	if err := s.Restore(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

func TestSnapshotFileAtomicInstall(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.gob")

	s := New()
	defer s.Close()
	s.Seed(mem("t", "1", 0, intFields(7)))
	if err := s.DumpFile(path); err != nil {
		t.Fatal(err)
	}
	s2 := New()
	defer s2.Close()
	if err := s2.RestoreFile(path); err != nil {
		t.Fatal(err)
	}
	if v, err := s2.CurrentVersion(memento.Key{Table: "t", ID: "1"}); err != nil || v != 1 {
		t.Fatalf("restored row: v=%d err=%v", v, err)
	}
	if err := s2.RestoreFile(filepath.Join(dir, "missing.gob")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// Property: dump∘restore is the identity on committed state, for random
// stores.
func TestSnapshotIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := New()
		defer src.Close()
		tables := []string{"a", "b"}
		n := rng.Intn(20)
		for i := 0; i < n; i++ {
			src.Seed(memento.Memento{
				Key: memento.Key{
					Table: tables[rng.Intn(len(tables))],
					ID:    string(rune('a' + rng.Intn(10))),
				},
				Fields: memento.Fields{"v": memento.Int(rng.Int63n(1000))},
			})
		}
		var buf bytes.Buffer
		if err := src.Dump(&buf); err != nil {
			return false
		}
		dst := New()
		defer dst.Close()
		if err := dst.Restore(&buf); err != nil {
			return false
		}
		// Compare full scans per table.
		ctx := context.Background()
		for _, table := range tables {
			q := memento.Query{Table: table}
			txS, _ := src.Begin(ctx)
			wantRows, err := txS.Query(ctx, q)
			txS.Abort()
			if err != nil {
				return false
			}
			txD, _ := dst.Begin(ctx)
			gotRows, err := txD.Query(ctx, q)
			txD.Abort()
			if err != nil {
				return false
			}
			if len(wantRows) != len(gotRows) {
				return false
			}
			for i := range wantRows {
				if !wantRows[i].Equal(gotRows[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

package sqlstore

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"edgeejb/internal/memento"
)

func TestApplyCommitSetHappyPath(t *testing.T) {
	s := New()
	defer s.Close()
	ctx := context.Background()
	s.Seed(
		mem("t", "r", 0, intFields(1)),
		mem("t", "w", 0, intFields(1)),
		mem("t", "d", 0, intFields(1)),
	)

	cs := memento.CommitSet{
		Reads:   []memento.ReadProof{{Key: memento.Key{Table: "t", ID: "r"}, Version: 1}},
		Writes:  []memento.Memento{mem("t", "w", 1, intFields(2))},
		Creates: []memento.Memento{mem("t", "c", 0, intFields(3))},
		Removes: []memento.ReadProof{{Key: memento.Key{Table: "t", ID: "d"}, Version: 1}},
	}
	res, err := s.ApplyCommitSet(ctx, cs)
	if err != nil {
		t.Fatal(err)
	}
	if res.TxID == 0 {
		t.Error("missing TxID")
	}
	if got := res.NewVersions[memento.Key{Table: "t", ID: "w"}]; got != 2 {
		t.Errorf("write new version = %d, want 2", got)
	}
	if got := res.NewVersions[memento.Key{Table: "t", ID: "c"}]; got != 1 {
		t.Errorf("create new version = %d, want 1", got)
	}
	if v, _ := s.CurrentVersion(memento.Key{Table: "t", ID: "w"}); v != 2 {
		t.Errorf("committed write version = %d, want 2", v)
	}
	if v, _ := s.CurrentVersion(memento.Key{Table: "t", ID: "c"}); v != 1 {
		t.Errorf("created row version = %d, want 1", v)
	}
	if _, err := s.CurrentVersion(memento.Key{Table: "t", ID: "d"}); !errors.Is(err, ErrNotFound) {
		t.Error("removed row still present")
	}
}

func TestApplyCommitSetConflicts(t *testing.T) {
	ctx := context.Background()
	key := func(id string) memento.Key { return memento.Key{Table: "t", ID: id} }

	tests := []struct {
		name string
		cs   memento.CommitSet
	}{
		{"stale read", memento.CommitSet{
			Reads: []memento.ReadProof{{Key: key("a"), Version: 99}},
		}},
		{"absent read now present", memento.CommitSet{
			Reads: []memento.ReadProof{{Key: key("a"), Absent: true}},
		}},
		{"stale write", memento.CommitSet{
			Writes: []memento.Memento{mem("t", "a", 42, intFields(0))},
		}},
		{"create over existing", memento.CommitSet{
			Creates: []memento.Memento{mem("t", "a", 0, intFields(0))},
		}},
		{"remove of missing", memento.CommitSet{
			Removes: []memento.ReadProof{{Key: key("gone"), Version: 1}},
		}},
		{"remove with stale version", memento.CommitSet{
			Removes: []memento.ReadProof{{Key: key("a"), Version: 9}},
		}},
		{"remove never persisted", memento.CommitSet{
			Removes: []memento.ReadProof{{Key: key("a"), Version: 0}},
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := New()
			defer s.Close()
			s.Seed(mem("t", "a", 0, intFields(1))) // version 1
			if _, err := s.ApplyCommitSet(ctx, tt.cs); !errors.Is(err, ErrConflict) {
				t.Fatalf("got %v, want ErrConflict", err)
			}
			// The store must be unchanged.
			if v, _ := s.CurrentVersion(key("a")); v != 1 {
				t.Errorf("row version changed to %d after rejected commit", v)
			}
			if s.RowCount("t") != 1 {
				t.Error("row count changed after rejected commit")
			}
		})
	}
}

func TestApplyCommitSetAtomicOnPartialConflict(t *testing.T) {
	s := New()
	defer s.Close()
	ctx := context.Background()
	s.Seed(mem("t", "w", 0, intFields(1)))

	// The write is valid, the remove conflicts; nothing must apply.
	cs := memento.CommitSet{
		Writes:  []memento.Memento{mem("t", "w", 1, intFields(2))},
		Removes: []memento.ReadProof{{Key: memento.Key{Table: "t", ID: "gone"}, Version: 1}},
	}
	if _, err := s.ApplyCommitSet(ctx, cs); !errors.Is(err, ErrConflict) {
		t.Fatalf("got %v, want ErrConflict", err)
	}
	if v, _ := s.CurrentVersion(memento.Key{Table: "t", ID: "w"}); v != 1 {
		t.Errorf("partial commit leaked: version = %d, want 1", v)
	}
}

func TestFirstCommitterWins(t *testing.T) {
	s := New()
	defer s.Close()
	ctx := context.Background()
	s.Seed(mem("t", "x", 0, intFields(0)))

	// Two optimistic transactions that both read version 1 and write.
	w1 := memento.CommitSet{Writes: []memento.Memento{mem("t", "x", 1, intFields(1))}}
	w2 := memento.CommitSet{Writes: []memento.Memento{mem("t", "x", 1, intFields(2))}}
	if _, err := s.ApplyCommitSet(ctx, w1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ApplyCommitSet(ctx, w2); !errors.Is(err, ErrConflict) {
		t.Fatalf("second committer: got %v, want ErrConflict", err)
	}
}

func TestCommitNotices(t *testing.T) {
	s := New()
	defer s.Close()
	ctx := context.Background()
	s.Seed(mem("t", "a", 0, intFields(1)))

	ch, cancel := s.Subscribe(8)
	defer cancel()

	res, err := s.ApplyCommitSet(ctx, memento.CommitSet{
		Writes: []memento.Memento{mem("t", "a", 1, intFields(2))},
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-ch:
		if n.TxID != res.TxID {
			t.Errorf("notice TxID = %d, want %d", n.TxID, res.TxID)
		}
		if len(n.Keys) != 1 || n.Keys[0] != (memento.Key{Table: "t", ID: "a"}) {
			t.Errorf("notice keys = %v", n.Keys)
		}
	case <-time.After(time.Second):
		t.Fatal("no notice delivered")
	}

	// Read-only transactions produce no notices.
	tx := mustBegin(t, s)
	if _, err := tx.Get(ctx, "t", "a"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-ch:
		t.Fatalf("unexpected notice %v for read-only commit", n)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestSubscribeCancelClosesChannel(t *testing.T) {
	s := New()
	defer s.Close()
	ch, cancel := s.Subscribe(1)
	cancel()
	cancel() // idempotent
	if _, ok := <-ch; ok {
		t.Fatal("channel should be closed after cancel")
	}
}

func TestCloseClosesSubscribers(t *testing.T) {
	s := New()
	ch, _ := s.Subscribe(1)
	s.Close()
	if _, ok := <-ch; ok {
		t.Fatal("channel should be closed after store close")
	}
}

// TestConcurrentTransfersConserveBalance is the classic serializability
// invariant: concurrent optimistic transfers between accounts, with
// retries on conflict, must conserve the total balance.
func TestConcurrentTransfersConserveBalance(t *testing.T) {
	s := New()
	defer s.Close()
	ctx := context.Background()
	const (
		accounts  = 4
		transfers = 30
		workers   = 4
		initial   = 1000
	)
	for i := 0; i < accounts; i++ {
		s.Seed(mem("acct", fmt.Sprintf("%d", i), 0, intFields(initial)))
	}

	read := func(id string) (memento.Memento, error) {
		tx, err := s.Begin(ctx)
		if err != nil {
			return memento.Memento{}, err
		}
		defer tx.Abort()
		m, err := tx.Get(ctx, "acct", id)
		if err != nil {
			return memento.Memento{}, err
		}
		return m, tx.Commit()
	}

	transfer := func(rng *rand.Rand) error {
		for attempt := 0; attempt < 50; attempt++ {
			from := fmt.Sprintf("%d", rng.Intn(accounts))
			to := fmt.Sprintf("%d", rng.Intn(accounts))
			if from == to {
				continue
			}
			mFrom, err := read(from)
			if err != nil {
				return err
			}
			mTo, err := read(to)
			if err != nil {
				return err
			}
			amount := int64(1 + rng.Intn(10))
			cs := memento.CommitSet{Writes: []memento.Memento{
				mem("acct", from, mFrom.Version, intFields(mFrom.Fields["v"].Int-amount)),
				mem("acct", to, mTo.Version, intFields(mTo.Fields["v"].Int+amount)),
			}}
			_, err = s.ApplyCommitSet(ctx, cs)
			if err == nil {
				return nil
			}
			if !errors.Is(err, ErrConflict) {
				return err
			}
		}
		return errors.New("transfer starved")
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		seed := int64(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < transfers; i++ {
				if err := transfer(rng); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var total int64
	for i := 0; i < accounts; i++ {
		m, err := read(fmt.Sprintf("%d", i))
		if err != nil {
			t.Fatal(err)
		}
		total += m.Fields["v"].Int
	}
	if total != accounts*initial {
		t.Fatalf("balance not conserved: total = %d, want %d", total, accounts*initial)
	}
}

// Property: applying a commit set built from a read of the current state
// always succeeds, and bumps exactly the written versions.
func TestApplyCurrentStateProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		defer s.Close()
		ctx := context.Background()
		n := 1 + rng.Intn(5)
		for i := 0; i < n; i++ {
			s.Seed(mem("t", fmt.Sprintf("%d", i), 0, intFields(rng.Int63n(100))))
		}
		id := fmt.Sprintf("%d", rng.Intn(n))
		key := memento.Key{Table: "t", ID: id}
		v, err := s.CurrentVersion(key)
		if err != nil {
			return false
		}
		res, err := s.ApplyCommitSet(ctx, memento.CommitSet{
			Writes: []memento.Memento{mem("t", id, v, intFields(rng.Int63n(100)))},
		})
		if err != nil {
			return false
		}
		nv, err := s.CurrentVersion(key)
		return err == nil && nv == v+1 && res.NewVersions[key] == v+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
